// Package iotaxo is a full reproduction of "Towards an I/O Tracing
// Framework Taxonomy" (Konwinski, Bent, Nunez, Quist; Supercomputing 2007)
// as a Go library.
//
// The paper's contribution — a taxonomy for classifying I/O tracing
// frameworks — lives in internal/core. The three surveyed frameworks
// (LANL-Trace, Tracefs, //TRACE) are reimplemented against a deterministic
// discrete-event simulation of the paper's testbed: a 32-node cluster with
// gigabit Ethernet, per-node clocks with skew and drift, a Linux-like
// kernel/VFS layer, an MPI + MPI-IO library, and a RAID-5 parallel file
// system with 252 drives and 64 KB stripes.
//
// Every framework — the surveyed three plus the future-work multi-layer
// analyzer and path-based tracer — registers an implementation of the
// internal/framework interface. Workloads are a registry too: the paper's
// three mpi_io_test access patterns plus checkpoint/restart, metadata
// storm, analytics scan, and producer-consumer scenarios all implement the
// internal/workload Workload interface, and internal/harness measures any
// registered framework on any registered workload through one generic
// sweep engine (Sweep, MatrixSweep).
//
// See README.md for a guided tour of the layers, the streaming trace
// pipeline, and the command-line tools. The root-level benchmarks in
// bench_test.go regenerate every table and figure of the paper's
// evaluation section.
package iotaxo
