package iotaxo_test

// One benchmark per table and figure of the paper's evaluation section,
// plus ablation benchmarks and micro-benchmarks of the
// hot library paths. Benchmarks run heavily scaled-down configurations so
// `go test -bench=. -benchmem` completes quickly; the key experimental
// quantity of each benchmark is exposed via b.ReportMetric, and
// cmd/tracebench regenerates the full tables.

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"strings"
	"testing"

	"iotaxo/internal/cluster"
	"iotaxo/internal/core"
	"iotaxo/internal/disk"
	"iotaxo/internal/framework"
	"iotaxo/internal/harness"
	"iotaxo/internal/interpose"
	"iotaxo/internal/lanltrace"
	"iotaxo/internal/mpi"
	"iotaxo/internal/partrace"
	"iotaxo/internal/replay"
	"iotaxo/internal/sim"
	"iotaxo/internal/trace"
	"iotaxo/internal/tracefs"
	"iotaxo/internal/workload"
)

// benchOptions is the smallest configuration that still exhibits the
// paper's overhead shapes.
func benchOptions() harness.Options {
	return harness.Options{
		Ranks:        4,
		PerRankBytes: 1 << 20,
		BlockSizes:   []int64{64 << 10, 1 << 20},
		Seed:         1,
		Mode:         lanltrace.ModeLtrace,
	}
}

// --- FIG1: sample outputs ---

func BenchmarkFigure1_SampleOutputs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := harness.Figure1(benchOptions())
		if !strings.Contains(out.Raw, "SYS_pwrite") {
			b.Fatal("figure 1 raw output malformed")
		}
	}
}

// --- FIG2/FIG3/FIG4: bandwidth vs block size, traced vs untraced ---

func benchFigure(b *testing.B, fig func(harness.Options) harness.FigureResult) {
	var lastOvh float64
	for i := 0; i < b.N; i++ {
		res := fig(benchOptions())
		lastOvh = res.Points[0].BandwidthOvhFrac
	}
	b.ReportMetric(lastOvh*100, "ovh64KB_%")
}

func BenchmarkFigure2_N1Strided(b *testing.B)    { benchFigure(b, harness.Figure2) }
func BenchmarkFigure3_N1NonStrided(b *testing.B) { benchFigure(b, harness.Figure3) }
func BenchmarkFigure4_NN(b *testing.B)           { benchFigure(b, harness.Figure4) }

// --- TAB1/TAB2: taxonomy tables ---

func BenchmarkTable1_Template(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(core.Table1Template()) == 0 {
			b.Fatal("empty template")
		}
	}
}

func BenchmarkTable2_Summary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if !strings.Contains(core.PaperTable2(), "//TRACE") {
			b.Fatal("table 2 malformed")
		}
	}
}

// --- TXT-OV: in-text bandwidth overhead table ---

func BenchmarkInTextOverheadTable(b *testing.B) {
	o := benchOptions()
	var small, large float64
	for i := 0; i < b.N; i++ {
		res := harness.InTextOverheads(o)
		small = res.Cells[0].BwOvhFrac
		large = res.Cells[1].BwOvhFrac
	}
	b.ReportMetric(small*100, "ovh64KB_%")
	b.ReportMetric(large*100, "ovh8MB_%")
}

// --- TXT-ELAPSED: elapsed-time overhead range ---

func BenchmarkElapsedTimeRange(b *testing.B) {
	o := benchOptions()
	var mn, mx float64
	for i := 0; i < b.N; i++ {
		res := harness.ElapsedRange(o)
		mn, mx = res.Min, res.Max
	}
	b.ReportMetric(mn*100, "min_%")
	b.ReportMetric(mx*100, "max_%")
}

// --- TXT-TRACEFS: Tracefs overhead and feature ablation ---

func BenchmarkTracefsOverhead(b *testing.B) {
	o := benchOptions()
	var worst float64
	for i := 0; i < b.N; i++ {
		worst = harness.TracefsExperiment(o).MaxOverhead()
	}
	b.ReportMetric(worst*100, "worst_%")
}

func BenchmarkTracefsFeatureAblation(b *testing.B) {
	// Isolated ablation: the marginal cost of each output-pipeline feature
	// on a fixed stream of records, without the workload around it.
	recs := make([]trace.Record, 256)
	for i := range recs {
		recs[i] = trace.Record{
			Name: "VFS_write", Path: "/work/f001", Offset: int64(i) * 8192,
			Bytes: 8192, Args: []string{`"/work/f001"`, "0", "8192"},
		}
	}
	for _, cfg := range []struct {
		name     string
		compress bool
	}{{"plain", false}, {"compressed", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var buf bytes.Buffer
				w := trace.NewBinaryWriter(&buf, trace.BinaryOptions{Compress: cfg.compress})
				for j := range recs {
					w.Write(&recs[j])
				}
				w.Close()
			}
		})
	}
}

// --- TXT-PTRACE: //TRACE fidelity/overhead frontier ---

func BenchmarkParallelTraceFidelity(b *testing.B) {
	factory := func() *cluster.Cluster {
		cfg := cluster.Default()
		cfg.ComputeNodes = 4
		return cluster.New(cfg)
	}
	params := workload.Params{
		Pattern: workload.N1Strided, BlockSize: 128 << 10, NObj: 4,
		Path: "/pfs/bench.out", BarrierEvery: 2,
	}
	program := func(p *sim.Proc, r *mpi.Rank) { workload.Program(p, r, params, nil) }
	var fid float64
	for i := 0; i < b.N; i++ {
		cfg := partrace.DefaultConfig()
		cfg.SampledRanks = 4
		gen, err := partrace.New(cfg).Generate(factory, program)
		if err != nil {
			b.Fatal(err)
		}
		res, err := replay.Execute(factory(), gen.Trace)
		if err != nil {
			b.Fatal(err)
		}
		fid = replay.Fidelity(gen.Trace.OriginalElapsed, res.Elapsed)
	}
	b.ReportMetric(fid*100, "fidelity_err_%")
}

// --- MATRIX: framework x workload overhead matrix ---

// BenchmarkMatrixSweep measures every registered framework on every
// registered workload through the one generic sweep path: the engine
// behind `tracebench -exp matrix` and the measured Table 2. One
// sub-benchmark per workload keeps the BENCH series tracking the full
// matrix as the workload axis grows.
func BenchmarkMatrixSweep(b *testing.B) {
	for _, w := range workload.All() {
		w := w
		b.Run(w.Name(), func(b *testing.B) {
			o := harness.MatrixSmokeOptions()
			o.Workloads = []workload.Workload{w}
			var cells int
			for i := 0; i < b.N; i++ {
				m, err := harness.MatrixSweep(o)
				if err != nil {
					b.Fatal(err)
				}
				cells = len(m.Cells)
				if cells == 0 {
					b.Fatal("empty matrix")
				}
			}
			b.ReportMetric(float64(cells), "cells")
			b.ReportMetric(float64(cells/len(o.Workloads)), "frameworks")
		})
	}
}

// BenchmarkMatrixSweepWarm measures the memoized sweep path: a shared
// cache is populated once, then every iteration re-runs the full-registry
// smoke matrix against it, so the engine schedules zero simulations and
// the benchmark isolates sweep assembly plus cache lookups — the floor a
// warm `tracebench -exp matrix` pays.
func BenchmarkMatrixSweepWarm(b *testing.B) {
	o := harness.MatrixSmokeOptions()
	o.Cache = harness.NewCache("")
	if _, err := harness.MatrixSweep(o); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var hits int64
	for i := 0; i < b.N; i++ {
		m, err := harness.MatrixSweep(o)
		if err != nil {
			b.Fatal(err)
		}
		if m.Stats.Executed != 0 {
			b.Fatalf("warm sweep executed %d simulations, want 0", m.Stats.Executed)
		}
		hits = m.Stats.Hits()
	}
	b.ReportMetric(float64(hits), "cache_hits")
}

// --- SCALING: overhead vs rank count ---

// BenchmarkScaleSweep measures the rank-scaling engine on a small ladder:
// the engine behind `tracebench -exp scaling` and `iotaxo -exp scaling`.
// The key metric is the top rung's elapsed overhead; wall time per op
// tracks whether the hot-path trims keep high-rank rungs CI-affordable.
func BenchmarkScaleSweep(b *testing.B) {
	for _, mode := range []harness.ScaleMode{harness.WeakScaling, harness.StrongScaling} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			o := harness.ScaleSmokeOptions()
			o.ScaleMode = mode
			var topOvh float64
			for i := 0; i < b.N; i++ {
				res, err := harness.ScaleSweep(
					workloadFramework(), workload.PatternWorkload(workload.N1Strided), o)
				if err != nil {
					b.Fatal(err)
				}
				top := res.Points[len(res.Points)-1]
				if top.Ranks != 16 {
					b.Fatalf("top rung = %d ranks", top.Ranks)
				}
				topOvh = top.ElapsedOvhFrac
			}
			b.ReportMetric(topOvh*100, "ovh16ranks_%")
		})
	}
}

// workloadFramework returns the tracer the scaling benchmarks sweep:
// LANL-Trace, the paper's headline (and costliest single-run) framework.
func workloadFramework() framework.Framework {
	return framework.MustLookup("LANL-Trace")
}

// benchSimRanks drives one untraced job (one 64 KB object per rank) end to
// end — cluster construction included — at the given rank count. It is the
// proving-ground benchmark for the per-event hot paths: rank counts past
// the scaling ladder's default top rung must stay affordable for CI.
func benchSimRanks(b *testing.B, ranks int) {
	cfg := cluster.Default()
	cfg.ComputeNodes = ranks
	params := workload.Params{
		Pattern: workload.NToN, BlockSize: 64 << 10, NObj: 1,
		Path: fmt.Sprintf("/pfs/scale%d", ranks),
	}
	var events float64
	for i := 0; i < b.N; i++ {
		c := cluster.New(cfg)
		res := workload.Run(c.World, params)
		if res.Ranks != ranks || res.Bytes != int64(ranks)*params.BlockSize {
			b.Fatalf("ranks=%d bytes=%d", res.Ranks, res.Bytes)
		}
		if n := c.Env.Spawned("net.courier"); n != 0 {
			b.Fatalf("%d courier procs spawned, want 0", n)
		}
		var n int64
		for _, k := range c.Kernels {
			n += k.SyscallCount
		}
		events = float64(n)
	}
	b.ReportMetric(events, "syscalls")
	b.ReportMetric(events/float64(ranks), "syscalls/rank")
}

func BenchmarkSim1024Ranks(b *testing.B) { benchSimRanks(b, 1024) }

// BenchmarkSim4096Ranks is the scaling ladder's new top rung, reachable now
// that network message delivery is a pure event chain (zero goroutines and
// zero Proc allocations per message) instead of one courier goroutine per
// in-flight message.
func BenchmarkSim4096Ranks(b *testing.B) { benchSimRanks(b, 4096) }

// BenchmarkSim16384Ranks is the ladder's CI smoke rung, reachable now that
// the PFS servers and RAID arrays serve requests as pure event chains and
// cluster construction draws ranks, interfaces, and mailboxes from
// preallocated slabs.
func BenchmarkSim16384Ranks(b *testing.B) { benchSimRanks(b, 16384) }

// BenchmarkSim65536Ranks is the ladder's top: the rank regime modern
// tracers target, two orders of magnitude past the paper's testbed.
// Skipped in -short (CI's benchmark smoke) — roughly 40 s per iteration;
// run it manually or via `tracebench -bench-ladder`.
func BenchmarkSim65536Ranks(b *testing.B) {
	if testing.Short() {
		b.Skip("65536-rank rung skipped in -short mode")
	}
	benchSimRanks(b, 65536)
}

// BenchmarkServerSweep measures the storage-scaling engine on the smoke
// ladder: the engine behind `tracebench -exp servers` and `iotaxo -exp
// servers`. The key metric is the overhead gap between the 1-server and
// top-rung points — the server axis exists to expose tracer cost once the
// file system stops being the bottleneck.
func BenchmarkServerSweep(b *testing.B) {
	o := harness.ServerSmokeOptions()
	var gap float64
	for i := 0; i < b.N; i++ {
		res, err := harness.ServerSweep(
			workloadFramework(), workload.PatternWorkload(workload.N1Strided), o)
		if err != nil {
			b.Fatal(err)
		}
		first, last := res.Points[0], res.Points[len(res.Points)-1]
		gap = (last.BandwidthOvhFrac - first.BandwidthOvhFrac) * 100
	}
	b.ReportMetric(gap, "ovh_gap_pct")
}

// --- Ablations ---

// BenchmarkAblationZeroCostHooks shows the overhead curves collapse when
// per-event interposition charges are removed: the design decision behind
// the paper's inverse-blocksize overhead law.
func BenchmarkAblationZeroCostHooks(b *testing.B) {
	run := func(model interpose.CostModel) sim.Duration {
		cfg := cluster.Default()
		cfg.ComputeNodes = 4
		c := cluster.New(cfg)
		fw := lanltrace.New(lanltrace.Config{
			Mode:         lanltrace.ModeLtrace,
			SyscallModel: model,
			LibModel:     model,
		})
		params := workload.Params{
			Pattern: workload.N1Strided, BlockSize: 64 << 10, NObj: 8,
			Path: "/pfs/abl.out",
		}
		rep := fw.Run(c.World, params.CommandLine(), func(p *sim.Proc, r *mpi.Rank) {
			workload.Program(p, r, params, nil)
		})
		return rep.Elapsed
	}
	var ratio float64
	for i := 0; i < b.N; i++ {
		full := run(interpose.LtraceBreakpoint())
		zero := run(interpose.Zero())
		ratio = float64(full) / float64(zero)
		if ratio <= 1 {
			b.Fatal("zero-cost hooks did not collapse the overhead")
		}
	}
	b.ReportMetric(ratio, "traced/zero_ratio")
}

// BenchmarkAblationRAIDSmallWrite quantifies the read-modify-write penalty
// behind the low-blocksize bandwidth droop.
func BenchmarkAblationRAIDSmallWrite(b *testing.B) {
	run := func(disable bool) sim.Duration {
		env := sim.NewEnv(1)
		cfg := disk.DefaultArray()
		cfg.DisableSmallWritePenalty = disable
		a := disk.NewArray(env, cfg)
		var elapsed sim.Duration
		env.Go("w", func(p *sim.Proc) {
			start := p.Now()
			for i := int64(0); i < 64; i++ {
				if err := a.Write(p, i*4096, 4096); err != nil {
					b.Error(err)
				}
			}
			elapsed = p.Now() - start
		})
		env.Run()
		return elapsed
	}
	var ratio float64
	for i := 0; i < b.N; i++ {
		with := run(false)
		without := run(true)
		ratio = float64(with) / float64(without)
	}
	b.ReportMetric(ratio, "rmw_penalty_ratio")
}

// --- Micro-benchmarks of the hot library paths ---

func BenchmarkSimKernelEvents(b *testing.B) {
	env := sim.NewEnv(1)
	n := 0
	var schedule func()
	schedule = func() {
		n++
		if n < b.N {
			env.After(1, schedule)
		}
	}
	b.ResetTimer()
	env.After(1, schedule)
	env.Run()
}

func BenchmarkSimProcessSwitch(b *testing.B) {
	env := sim.NewEnv(1)
	env.Go("switcher", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	env.Run()
}

func BenchmarkBinaryTraceEncode(b *testing.B) {
	rec := trace.Record{
		Name: "SYS_pwrite", Node: "host13.lanl.gov", Rank: 7, PID: 10378,
		Args: []string{"3", "65536", "32768"}, Ret: "32768",
		Path: "/pfs/mpi_io_test.out", Offset: 65536, Bytes: 32768,
	}
	var buf bytes.Buffer
	w := trace.NewBinaryWriter(&buf, trace.BinaryOptions{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Write(&rec); err != nil {
			b.Fatal(err)
		}
	}
	w.Close()
	b.SetBytes(int64(buf.Len()) / int64(b.N))
}

func BenchmarkTextTraceParse(b *testing.B) {
	line := "# node=n rank=0 pid=1\n10:59:47.105818 SYS_open(\"/etc/hosts\", 0, 0666) = 3 <0.000034>\n"
	b.SetBytes(int64(len(line)))
	for i := 0; i < b.N; i++ {
		if _, err := trace.NewTextReader(strings.NewReader(line)).ReadAll(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFilterMatch(b *testing.B) {
	f := tracefs.MustCompileFilter(`op in {read, write} && path ~ "/pfs/*" && bytes >= 4096`)
	rec := trace.Record{Name: "VFS_write", Path: "/pfs/data/x", Bytes: 8192}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !f.Match(&rec) {
			b.Fatal("filter should match")
		}
	}
}

// --- Streaming pipeline and parallel block codec ---

// codecRecords builds a realistic multi-megabyte trace: varied paths,
// strided offsets, a mix of call types. ~70 encoded bytes per record.
func codecRecords(n int) []trace.Record {
	recs := make([]trace.Record, n)
	names := []string{"SYS_pwrite", "SYS_pread", "MPI_File_write_at", "VFS_write"}
	for i := range recs {
		name := names[i%len(names)]
		path := fmt.Sprintf("/pfs/out/rank%03d/part-%04d.dat", i%64, i%1024)
		recs[i] = trace.Record{
			Time: sim.Time(i) * sim.Microsecond, Dur: 30 * sim.Microsecond,
			Node: fmt.Sprintf("host%02d.lanl.gov", i%32), Rank: i % 64, PID: 9000 + i%64,
			Class: trace.ClassSyscall, Name: name,
			Args: []string{"3", fmt.Sprint(int64(i) * 65536), "65536"}, Ret: "65536",
			Path: path, Offset: int64(i) * 65536, Bytes: 65536, UID: 500, GID: 500,
		}
	}
	return recs
}

// BenchmarkBinaryCodecWriter compares the serial block encoder against the
// worker-pool encoder on a multi-MB compressed trace: the tentpole's
// headline speedup. Both produce byte-identical output.
func BenchmarkBinaryCodecWriter(b *testing.B) {
	recs := codecRecords(60000)
	opts := trace.BinaryOptions{Compress: true, RecordsPerBlock: 512}
	var encoded int64
	{
		var buf bytes.Buffer
		trace.WriteAll(trace.NewBinaryWriter(&buf, opts), recs)
		encoded = int64(buf.Len())
	}
	b.Run("serial", func(b *testing.B) {
		b.SetBytes(encoded)
		for i := 0; i < b.N; i++ {
			if err := trace.WriteAll(trace.NewBinaryWriter(io.Discard, opts), recs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.SetBytes(encoded)
		for i := 0; i < b.N; i++ {
			if err := trace.WriteAll(trace.NewParallelBinaryWriter(io.Discard, opts, 0), recs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBinaryCodecReader compares serial and prefetching worker-pool
// decode of the same compressed stream.
func BenchmarkBinaryCodecReader(b *testing.B) {
	recs := codecRecords(60000)
	opts := trace.BinaryOptions{Compress: true, RecordsPerBlock: 512}
	var buf bytes.Buffer
	if err := trace.WriteAll(trace.NewBinaryWriter(&buf, opts), recs); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	drain := func(src trace.Source) error {
		_, err := trace.Copy(trace.SinkFunc(func(r *trace.Record) error { return nil }), src)
		return err
	}
	b.Run("serial", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if err := drain(trace.NewBinaryReader(bytes.NewReader(data))); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if err := drain(trace.NewParallelBinaryReader(bytes.NewReader(data), 0)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBinaryConversionMemory demonstrates the memory contract of the
// cmd/traceconv streaming path: converting binary to text holds O(block)
// records live, while the seed's load-everything path holds O(trace). The
// peak_live_MB metric is live heap above baseline at the conversion's
// high-water mark (sampled under forced GC).
func BenchmarkBinaryConversionMemory(b *testing.B) {
	recs := codecRecords(100000)
	var buf bytes.Buffer
	if err := trace.WriteAll(trace.NewBinaryWriter(&buf, trace.BinaryOptions{RecordsPerBlock: 512}), recs); err != nil {
		b.Fatal(err)
	}
	recs = nil
	data := buf.Bytes()

	liveAbove := func(base uint64) float64 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc < base {
			return 0
		}
		return float64(ms.HeapAlloc-base) / 1e6
	}
	baseline := func() uint64 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}

	b.Run("slice", func(b *testing.B) {
		var peak float64
		for i := 0; i < b.N; i++ {
			base := baseline()
			all, err := trace.NewBinaryReader(bytes.NewReader(data)).ReadAll()
			if err != nil {
				b.Fatal(err)
			}
			// The whole trace is live here — the high-water mark.
			if mb := liveAbove(base); mb > peak {
				peak = mb
			}
			w := trace.NewTextSink(io.Discard)
			for j := range all {
				w.Write(&all[j])
			}
			w.Close()
		}
		b.ReportMetric(peak, "peak_live_MB")
	})
	b.Run("stream", func(b *testing.B) {
		var peak float64
		for i := 0; i < b.N; i++ {
			base := baseline()
			w := trace.NewTextSink(io.Discard)
			var n int64
			_, err := trace.Copy(trace.SinkFunc(func(r *trace.Record) error {
				if n%20000 == 10000 { // sample mid-stream
					if mb := liveAbove(base); mb > peak {
						peak = mb
					}
				}
				n++
				return w.Write(r)
			}), trace.NewBinaryReader(bytes.NewReader(data)))
			if err != nil {
				b.Fatal(err)
			}
			w.Close()
		}
		b.ReportMetric(peak, "peak_live_MB")
	})
}

// BenchmarkCollectiveIOAblation reports the two-phase-I/O speedup at
// sub-stripe block size (the RAID-5 RMW-avoidance win).
func BenchmarkCollectiveIOAblation(b *testing.B) {
	run := func(collective bool) float64 {
		cfg := cluster.Default()
		cfg.ComputeNodes = 4
		c := cluster.New(cfg)
		res := workload.Run(c.World, workload.Params{
			Pattern: workload.N1Strided, BlockSize: 8 << 10, NObj: 16,
			Path: "/pfs/coll", Collective: collective,
		})
		return res.BandwidthBps()
	}
	var speedup float64
	for i := 0; i < b.N; i++ {
		speedup = run(true) / run(false)
	}
	b.ReportMetric(speedup, "collective_speedup_x")
}

// --- Columnar v2 codec ---

// BenchmarkColumnarEncode measures the v2 block encoder on the same
// realistic stream as the v1 codec benchmarks, plain and deflated.
func BenchmarkColumnarEncode(b *testing.B) {
	recs := codecRecords(60000)
	for _, c := range []struct {
		name     string
		compress bool
	}{{"plain", false}, {"compressed", true}} {
		b.Run(c.name, func(b *testing.B) {
			var encoded int64
			{
				var buf bytes.Buffer
				trace.WriteAll(trace.NewColumnarWriter(&buf, trace.ColumnarOptions{Compress: c.compress}), recs)
				encoded = int64(buf.Len())
			}
			b.SetBytes(encoded)
			for i := 0; i < b.N; i++ {
				if err := trace.WriteAll(trace.NewColumnarWriter(io.Discard, trace.ColumnarOptions{Compress: c.compress}), recs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkColumnarDecode measures full-stream record materialization:
// the sequential source against the indexed worker-pool scan.
func BenchmarkColumnarDecode(b *testing.B) {
	recs := codecRecords(60000)
	var buf bytes.Buffer
	if err := trace.WriteAll(trace.NewColumnarWriter(&buf, trace.ColumnarOptions{Compress: true}), recs); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	drain := func(src trace.Source) error {
		_, err := trace.Copy(trace.SinkFunc(func(r *trace.Record) error { return nil }), src)
		return err
	}
	b.Run("sequential", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if err := drain(trace.NewColumnarSource(bytes.NewReader(data))); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scan", func(b *testing.B) {
		cr, err := trace.NewColumnarReader(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if err := drain(cr.Scan(trace.MatchAll(), 0)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkColumnarQuery measures the serving path: a 10% time-window
// aggregate via column views (index-pruned) against the same answer from a
// full record scan. Records are time-ordered, so the footer index prunes
// the window query to ~10% of the blocks.
func BenchmarkColumnarQuery(b *testing.B) {
	recs := codecRecords(60000)
	var buf bytes.Buffer
	if err := trace.WriteAll(trace.NewColumnarWriter(&buf, trace.ColumnarOptions{}), recs); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	cr, err := trace.NewColumnarReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		b.Fatal(err)
	}
	window := trace.MatchAll().WithWindow(
		recs[len(recs)*45/100].Time, recs[len(recs)*55/100].Time)
	sumBytes := func(q trace.Query) (int64, trace.ScanStats, error) {
		var total int64
		stats, err := cr.ScanViews(q, 0, func(v *trace.BlockView, rows []int) error {
			bs, err := v.Bytes()
			if err != nil {
				return err
			}
			for _, i := range rows {
				total += bs[i]
			}
			return nil
		})
		return total, stats, err
	}
	want, stats, err := sumBytes(window)
	if err != nil {
		b.Fatal(err)
	}
	if stats.BlocksDecoded*5 > stats.BlocksTotal {
		b.Fatalf("window query decoded %d of %d blocks; index is not pruning", stats.BlocksDecoded, stats.BlocksTotal)
	}
	b.Run("indexed-window", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			got, _, err := sumBytes(window)
			if err != nil {
				b.Fatal(err)
			}
			if got != want {
				b.Fatalf("sum %d != %d", got, want)
			}
		}
	})
	b.Run("full-scan", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			var got int64
			_, err := trace.Copy(trace.SinkFunc(func(r *trace.Record) error {
				if window.Matches(r) {
					got += r.Bytes
				}
				return nil
			}), trace.NewColumnarSource(bytes.NewReader(data)))
			if err != nil {
				b.Fatal(err)
			}
			if got != want {
				b.Fatalf("sum %d != %d", got, want)
			}
		}
	})
}
