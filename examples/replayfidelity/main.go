// Replayfidelity: the //TRACE pipeline end to end, sweeping the sampling
// knob to show the fidelity/overhead trade-off the paper describes:
// "//TRACE provides for user-control over replay accuracy by using sampling
// for their node-throttling technique", with elapsed overhead "ranging
// between ~0% to 205%" and replay fidelity "as low as 6%".
package main

import (
	"bytes"
	"fmt"

	"iotaxo/internal/cluster"
	"iotaxo/internal/mpi"
	"iotaxo/internal/partrace"
	"iotaxo/internal/replay"
	"iotaxo/internal/sim"
	"iotaxo/internal/workload"
)

func main() {
	const ranks = 8
	factory := func() *cluster.Cluster {
		cfg := cluster.Default()
		cfg.ComputeNodes = ranks
		return cluster.New(cfg)
	}
	params := workload.Params{
		Pattern:      workload.N1Strided,
		BlockSize:    256 << 10,
		NObj:         8,
		Path:         "/pfs/app.out",
		BarrierEvery: 2,
	}
	program := func(p *sim.Proc, r *mpi.Rank) { workload.Program(p, r, params, nil) }

	fmt.Printf("%8s %6s %12s %8s %16s %16s\n",
		"sampled", "runs", "overhead %", "deps", "replay elapsed", "fidelity err %")
	for _, sampled := range []int{0, 1, 2, 4, ranks} {
		cfg := partrace.DefaultConfig()
		cfg.SampledRanks = sampled
		gen, err := partrace.New(cfg).Generate(factory, program)
		if err != nil {
			panic(err)
		}
		res, err := replay.Execute(factory(), gen.Trace)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%8d %6d %12.0f %8d %16v %16.1f\n",
			sampled, gen.Runs, gen.OverheadFrac()*100, gen.DepCount,
			res.Elapsed, replay.Fidelity(gen.Trace.OriginalElapsed, res.Elapsed)*100)
	}

	// Show that the replayable trace is a portable, human-readable
	// artifact: serialize, parse back, and verify the replayed application
	// reproduces the original I/O signature byte for byte.
	cfg := partrace.DefaultConfig()
	cfg.SampledRanks = ranks
	gen, err := partrace.New(cfg).Generate(factory, program)
	if err != nil {
		panic(err)
	}
	var buf bytes.Buffer
	if err := gen.Trace.WriteText(&buf); err != nil {
		panic(err)
	}
	fmt.Printf("\nreplayable trace: %d bytes of human-readable text; first lines:\n", buf.Len())
	for i, line := range bytes.Split(buf.Bytes(), []byte("\n")) {
		if i > 5 {
			fmt.Println("...")
			break
		}
		fmt.Printf("  %s\n", line)
	}

	parsed, err := replay.ParseText(&buf)
	if err != nil {
		panic(err)
	}
	orig := factory()
	workload.Run(orig.World, params)
	oSize, oDigest, oWrites, _ := orig.PFS.Snapshot(params.Path)
	rep := factory()
	if _, err := replay.Execute(rep, parsed); err != nil {
		panic(err)
	}
	rSize, rDigest, rWrites, _ := rep.PFS.Snapshot(params.Path)
	fmt.Printf("\nI/O signature: original (size=%d digest=%x writes=%d)\n", oSize, oDigest, oWrites)
	fmt.Printf("               replayed (size=%d digest=%x writes=%d)\n", rSize, rDigest, rWrites)
	if oSize == rSize && oDigest == rDigest && oWrites == rWrites {
		fmt.Println("               identical - the pseudo-application reproduces the original I/O")
	}
}
