// Classifynew: using the taxonomy as its authors intended — "to provide the
// developers of I/O Tracing Frameworks a language to categorize the
// functionality and performance" of a NEW tool. We implement a hypothetical
// eBPF-style in-kernel tracer against the framework registry interface,
// register it, and let the generic harness classify AND measure it: the
// one-file integration the registry exists for.
package main

import (
	"fmt"

	"iotaxo/internal/cluster"
	"iotaxo/internal/core"
	"iotaxo/internal/framework"
	"iotaxo/internal/harness"
	"iotaxo/internal/interpose"
	"iotaxo/internal/sim"
	"iotaxo/internal/trace"
	"iotaxo/internal/workload"
)

// kprobeTrace is the hypothetical framework: cheap in-kernel probes on the
// library-call boundary, binary output.
type kprobeTrace struct{}

func (kprobeTrace) Name() string { return "KProbeTrace (hypothetical)" }

func (kprobeTrace) Classification() *core.Classification {
	return &core.Classification{
		Name:             "KProbeTrace (hypothetical)",
		ParallelFSCompat: true,
		EaseOfInstall:    3, // kernel >= feature gate, but no module build
		Anonymization:    2, // hash-based path scrubbing only
		EventTypes: []core.EventType{
			core.EventSyscalls, core.EventFSOps, core.EventNetwork,
		},
		TraceGranularity: 4, // per-probe predicates
		ReplayableTraces: true,
		ReplayFidelity: core.FidelityReport{
			Supported: true, ErrorFrac: 0.15,
		},
		RevealsDeps:       false,
		Intrusiveness:     1, // passive: no recompilation, no LD_PRELOAD
		AnalysisTools:     true,
		DataFormat:        core.FormatBinary,
		AccountsSkewDrift: "No",
		ElapsedOverhead: core.OverheadReport{
			Description: "projected from per-probe costs", // replaced by measurement below
		},
		Notes: []string{
			"hypothetical framework used to demonstrate the taxonomy API",
		},
	}
}

// Attach hooks every rank's library boundary with a cheap in-kernel probe
// cost model, collecting records per rank.
func (kprobeTrace) Attach(c *cluster.Cluster) framework.Session {
	s := &kprobeSession{c: c}
	model := interpose.CostModel{
		EnterCost:     150 * sim.Nanosecond,
		ExitCost:      250 * sim.Nanosecond,
		PerOutputByte: 5 * sim.Nanosecond,
	}
	for i := 0; i < c.World.Size(); i++ {
		col := &interpose.Collector{}
		rec := interpose.NewRecorder(model, col)
		c.World.Rank(i).AttachLibHook(rec)
		s.cols = append(s.cols, col)
		s.recs = append(s.recs, rec)
	}
	return s
}

type kprobeSession struct {
	c    *cluster.Cluster
	cols []*interpose.Collector
	recs []*interpose.Recorder
}

func (s *kprobeSession) Run(spec workload.Spec) (framework.Report, error) {
	res := framework.RunWorkload(s.c, spec)
	rep := framework.Report{Result: res, TracingElapsed: res.Elapsed, Runs: 1}
	for _, r := range s.recs {
		rep.TraceEvents += r.Events
		rep.TraceBytes += r.OutputBytes
	}
	return rep, nil
}

func (s *kprobeSession) Sources() []trace.Source {
	out := make([]trace.Source, len(s.cols))
	for i, col := range s.cols {
		out[i] = col.Source()
	}
	return out
}

func main() {
	fw := kprobeTrace{}
	if err := fw.Classification().Validate(); err != nil {
		panic(err)
	}

	// Registering makes the framework visible to everything registry-driven:
	// harness.MatrixSweep, `iotaxo -list`, `tracebench -exp matrix`.
	framework.Register(fw)
	fmt.Println("=== Registry after Register ===")
	for _, name := range framework.Names() {
		fmt.Println(" -", name)
	}

	fmt.Println("\n=== Table 1 card for the new framework ===")
	fmt.Print(core.RenderCard(fw.Classification()))

	// The generic engine measures the new framework with zero extra code:
	// elapsed overhead is folded into the classification by MatrixSweepOf.
	o := harness.QuickOptions()
	o.Ranks = 4
	o.PerRankBytes = 1 << 20
	o.BlockSizes = []int64{64 << 10, 1 << 20}
	m, err := harness.MatrixSweepOf(o, fw)
	if err != nil {
		panic(err)
	}
	measured := m.Classifications()[0]
	fmt.Println("\n=== Measured on the simulated cluster ===")
	fmt.Print(m.Format())
	fmt.Printf("\nElapsed time overhead: %s\n", measured.ElapsedOverhead)

	fmt.Println("\n=== Side-by-side with the paper's subjects (Table 2 extended) ===")
	all := append(core.AllPaperClassifications(), measured)
	fmt.Print(core.RenderComparison(all...))

	fmt.Println("\n=== Markdown for the project README ===")
	fmt.Print(core.RenderMarkdown(measured))
}
