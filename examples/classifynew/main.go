// Classifynew: using the taxonomy as its authors intended — "to provide the
// developers of I/O Tracing Frameworks a language to categorize the
// functionality and performance" of a NEW tool. We classify a hypothetical
// eBPF-style in-kernel tracer, validate the classification, and render its
// Table 1 card next to the paper's three subjects.
package main

import (
	"fmt"

	"iotaxo/internal/core"
)

func main() {
	hypothetical := &core.Classification{
		Name:             "KProbeTrace (hypothetical)",
		ParallelFSCompat: true,
		EaseOfInstall:    3, // kernel >= feature gate, but no module build
		Anonymization:    2, // hash-based path scrubbing only
		EventTypes: []core.EventType{
			core.EventSyscalls, core.EventFSOps, core.EventNetwork,
		},
		TraceGranularity: 4, // per-probe predicates
		ReplayableTraces: true,
		ReplayFidelity: core.FidelityReport{
			Supported: true, ErrorFrac: 0.15,
		},
		RevealsDeps:       false,
		Intrusiveness:     1, // passive: no recompilation, no LD_PRELOAD
		AnalysisTools:     true,
		DataFormat:        core.FormatBinary,
		AccountsSkewDrift: "No",
		ElapsedOverhead: core.OverheadReport{
			Measured:    true,
			ElapsedMin:  0.01,
			ElapsedMax:  0.09,
			Description: "projected from per-probe costs",
		},
		Notes: []string{
			"hypothetical framework used to demonstrate the taxonomy API",
		},
	}

	if err := hypothetical.Validate(); err != nil {
		panic(err)
	}

	fmt.Println("=== Table 1 card for the new framework ===")
	fmt.Print(core.RenderCard(hypothetical))

	fmt.Println("\n=== Side-by-side with the paper's subjects (Table 2 extended) ===")
	all := append(core.AllPaperClassifications(), hypothetical)
	fmt.Print(core.RenderComparison(all...))

	fmt.Println("\n=== Markdown for the project README ===")
	fmt.Print(core.RenderMarkdown(hypothetical))
}
