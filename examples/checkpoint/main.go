// Checkpoint: the workload class the paper's intro motivates — a parallel
// scientific application periodically dumping state to the parallel file
// system — measured untraced and under each of the three surveyed tracing
// frameworks, demonstrating the taxonomy's central trade-offs:
//
//   - LANL-Trace works out of the box but costs the most wall time;
//   - Tracefs is cheap but cannot mount over the parallel file system
//     without porting work (the paper's compatibility finding);
//   - //TRACE is cheap per run but needs extra runs to discover
//     dependencies.
package main

import (
	"errors"
	"fmt"

	"iotaxo/internal/cluster"
	"iotaxo/internal/lanltrace"
	"iotaxo/internal/mpi"
	"iotaxo/internal/partrace"
	"iotaxo/internal/pfs"
	"iotaxo/internal/sim"
	"iotaxo/internal/tracefs"
	"iotaxo/internal/vfs"
	"iotaxo/internal/workload"
)

func newCluster() *cluster.Cluster {
	cfg := cluster.Default()
	cfg.ComputeNodes = 8
	return cluster.New(cfg)
}

// checkpointParams: each rank writes 8 x 256 KiB strided blocks per
// checkpoint, with a barrier between checkpoints.
var checkpointParams = workload.Params{
	Pattern:      workload.N1Strided,
	BlockSize:    256 << 10,
	NObj:         8,
	Path:         "/pfs/checkpoint.ckpt",
	BarrierEvery: 2,
}

func program(p *sim.Proc, r *mpi.Rank) {
	workload.Program(p, r, checkpointParams, nil)
}

func main() {
	fmt.Println("checkpoint workload:", checkpointParams.CommandLine())

	// 1. Untraced baseline.
	base := workload.Run(newCluster().World, checkpointParams)
	fmt.Printf("\n%-28s elapsed %-14v bandwidth %6.1f MB/s\n",
		"untraced:", base.Elapsed, base.BandwidthBps()/1e6)

	// 2. LANL-Trace (ltrace mode).
	c := newCluster()
	lt := lanltrace.New(lanltrace.DefaultConfig())
	rep := lt.Run(c.World, checkpointParams.CommandLine(), program)
	fmt.Printf("%-28s elapsed %-14v overhead %5.1f%%  (%d events)\n",
		"LANL-Trace (ltrace):", rep.Elapsed,
		100*float64(rep.Elapsed-base.Elapsed)/float64(base.Elapsed), rep.TraceEvents)

	// 3. Tracefs: demonstrate the compatibility finding, then measure it
	// where it does mount (on a node's local file system via ForceStack it
	// would need porting; here we show the refusal).
	pc := pfs.NewClient(c.PFS, cluster.NodeName(0))
	_, err := tracefs.Mount(pc, tracefs.DefaultConfig())
	if errors.Is(err, vfs.ErrIncompatible) {
		fmt.Printf("%-28s %v\n", "Tracefs on parallel FS:", err)
	}
	forced := tracefs.DefaultConfig()
	forced.ForceStack = true
	if _, err := tracefs.Mount(pc, forced); err == nil {
		fmt.Printf("%-28s mounts after simulated porting work (ForceStack)\n", "Tracefs (forced):")
	}

	// 4. //TRACE with two probe runs.
	pt := partrace.New(partrace.DefaultConfig())
	gen, err := pt.Generate(newCluster, program)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%-28s total %-16v overhead %5.0f%%  (%d runs, %d dependency edges)\n",
		"//TRACE (2 probes):", gen.TracingElapsed, gen.OverheadFrac()*100, gen.Runs, gen.DepCount)

	fmt.Println("\nconclusion: pick by requirement, as the taxonomy advises —")
	fmt.Println("  fast setup + parallel FS  -> LANL-Trace (pay elapsed time)")
	fmt.Println("  rich features + low cost  -> Tracefs (pay porting/installation)")
	fmt.Println("  replayable + dependencies -> //TRACE (pay extra runs)")
}
