// Quickstart: build a small simulated cluster, run an MPI-IO application
// under LANL-Trace, and print the three outputs the framework produces
// (Figure 1 of the paper): raw per-process traces, aggregate barrier timing
// for skew/drift accounting, and the call summary.
package main

import (
	"fmt"

	"iotaxo/internal/cluster"
	"iotaxo/internal/lanltrace"
	"iotaxo/internal/mpi"
	"iotaxo/internal/sim"
)

func main() {
	// A 4-node testbed: gigabit network, RAID-5 parallel file system,
	// per-node clocks with realistic skew and drift.
	cfg := cluster.Small()
	c := cluster.New(cfg)

	// The application: every rank writes four 64 KiB blocks to a shared
	// file at rank-strided offsets, bracketed by barriers.
	app := func(p *sim.Proc, r *mpi.Rank) {
		r.Init(p)
		r.Barrier(p)
		f, err := r.FileOpen(p, "/pfs/quickstart.out", mpi.ModeCreate|mpi.ModeWronly)
		if err != nil {
			panic(err)
		}
		for i := 0; i < 4; i++ {
			off := int64(i*c.Ranks()+r.RankID()) * 65536
			if _, err := f.WriteAt(p, off, 65536); err != nil {
				panic(err)
			}
		}
		f.Close(p)
		r.Barrier(p)
	}

	// Trace it with LANL-Trace in ltrace mode (library + system calls).
	fw := lanltrace.New(lanltrace.DefaultConfig())
	rep := fw.Run(c.World, "/quickstart.exe", app)

	fmt.Println("=== Raw trace data (rank 0) ===")
	fmt.Print(rep.RawTraceText(0))

	fmt.Println("\n=== Aggregate timing information ===")
	fmt.Print(rep.AggregateTimingText())

	fmt.Println("\n=== Call summary ===")
	fmt.Print(rep.CallSummaryText())

	// The timing job exists to correct clock skew and drift: show the
	// per-node estimates it yields.
	fmt.Println("\n=== Clock estimates from the barrier timing job ===")
	est, err := rep.ClockEstimates()
	if err != nil {
		panic(err)
	}
	for node, e := range est {
		fmt.Printf("%-18s %v\n", node, e)
	}

	fmt.Printf("\napplication elapsed (traced): %v, trace volume: %d bytes in %d events\n",
		rep.Elapsed, rep.TraceBytes, rep.TraceEvents)
}
