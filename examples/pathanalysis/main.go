// Pathanalysis: the paper's future work, realized. Section 6 proposes (a)
// extending the taxonomy to "path based event tracing in distributed
// applications" and (b) "a common framework for diverse trace aggregation
// ... a single trace-data API".
//
// This example runs a coordinator/worker application that is traced THREE
// ways at once — LANL-Trace at the syscall/library boundary, X-Trace-style
// path tracing inside the application, and //TRACE-style replayable ops —
// then aggregates all of them through the single trace-data API and asks
// cross-framework questions none of them can answer alone.
package main

import (
	"fmt"

	"iotaxo/internal/aggregate"
	"iotaxo/internal/cluster"
	"iotaxo/internal/core"
	"iotaxo/internal/lanltrace"
	"iotaxo/internal/mpi"
	"iotaxo/internal/pathtrace"
	"iotaxo/internal/sim"
	"iotaxo/internal/trace"
)

func main() {
	cfg := cluster.Small()
	c := cluster.New(cfg)
	pt := pathtrace.NewTracer()

	// The application: rank 0 dispatches work to every other rank; each
	// worker checkpoints to the parallel file system and replies. Path
	// baggage rides inside the MPI payloads.
	app := func(p *sim.Proc, r *mpi.Rank) {
		size := r.CommSize(p)
		if r.RankID() == 0 {
			ctx := pt.StartTask(p, r.Node(), 0, "job-start")
			var replies []pathtrace.Baggage
			for w := 1; w < size; w++ {
				r.SendData(p, w, 100, 2048, ctx.Baggage(p, fmt.Sprintf("dispatch->%d", w)))
			}
			for w := 1; w < size; w++ {
				_, raw := r.RecvData(p, w, 200)
				replies = append(replies, raw.(pathtrace.Baggage))
			}
			ctx.Merge(p, "job-complete", replies...)
			return
		}
		_, raw := r.RecvData(p, 0, 100)
		ctx := pt.Join(p, raw.(pathtrace.Baggage), r.Node(), r.RankID(), "worker-start")
		f, err := r.FileOpen(p, fmt.Sprintf("/pfs/part.%d", r.RankID()), mpi.ModeCreate|mpi.ModeWronly)
		if err != nil {
			panic(err)
		}
		f.WriteAt(p, 0, 512<<10)
		f.Close(p)
		ctx.Record(p, "checkpoint-written")
		r.SendData(p, 0, 200, 64, ctx.Baggage(p, "reply"))
	}

	// Trace it with LANL-Trace while the path tracer runs inside.
	fw := lanltrace.New(lanltrace.StraceConfig())
	rep := fw.Run(c.World, "/job.exe", app)

	// The causal path view.
	fmt.Println("=== Path-based causal view (X-Trace style) ===")
	g := pt.Graph(1)
	if err := g.Validate(); err != nil {
		panic(err)
	}
	fmt.Print(g.Format())
	fmt.Println("critical path:")
	for _, e := range g.CriticalPath() {
		fmt.Printf("  %v  rank %d  %s\n", e.Time, e.Rank, e.Label)
	}

	// The single trace-data API over both frameworks.
	fmt.Println("\n=== Aggregated through the single trace-data API ===")
	agg := aggregate.New(aggregate.FromLANLTrace(rep))
	// Path events adapt through the generic record source.
	var pathRecs []trace.Record
	for _, e := range pt.Events() {
		pathRecs = append(pathRecs, trace.Record{
			Time: e.Time, Node: e.Node, Rank: e.Rank,
			Class: trace.ClassLibCall, Name: "PATH_" + e.Label, Ret: "0",
		})
	}
	agg.Add(aggregate.FromRecords("PathTrace", pathRecs, aggregate.Capabilities{
		EventClasses: []trace.EventClass{trace.ClassLibCall},
	}))

	sums, err := agg.Summarize()
	if err != nil {
		panic(err)
	}
	fmt.Print(aggregate.FormatSummaries(sums))

	// A cross-framework query: all I/O that happened on the critical path
	// worker (the rank whose reply arrived last).
	cp := g.CriticalPath()
	slowest := -1
	for _, e := range cp {
		if e.Rank > 0 {
			slowest = e.Rank
		}
	}
	events, err := agg.Select(aggregate.Query{Rank: slowest, OnlyIO: true})
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nI/O on the critical-path worker (rank %d): %d operations\n", slowest, len(events))
	for _, e := range events {
		fmt.Printf("  [%s] %s %s %d bytes\n", e.Source, e.Name, e.Path, e.Bytes)
	}

	// And the taxonomy card for the path tracer, as the future work asks.
	fmt.Println("\n=== PathTrace in the extended taxonomy ===")
	fmt.Print(core.RenderCard(pathtrace.Classification()))
}
