// Anonymizedrelease: the trace-publication workflow the paper's
// anonymization axis exists for ("Often traces are collected for
// distribution, such as recently published traces by LANL. In such cases,
// it is often desirable to anonymize personal or sensitive data.")
//
// The pipeline: trace an I/O-intensive job with Tracefs (binary output with
// CBC field encryption), then produce a public release with the true
// randomizer, and verify no sensitive identifier survives — while showing
// that the encrypted variant is still reversible with the key, the reason
// the paper rates Tracefs "Advanced" rather than "Very advanced".
package main

import (
	"fmt"

	"iotaxo/internal/anonymize"
	"iotaxo/internal/clocks"
	"iotaxo/internal/disk"
	"iotaxo/internal/sim"
	"iotaxo/internal/trace"
	"iotaxo/internal/tracefs"
	"iotaxo/internal/vfs"
)

func main() {
	env := sim.NewEnv(1)
	lower := vfs.NewMemFS(env, "ext3", disk.DefaultDisk())

	// Mount Tracefs with CBC encryption of path/uid/gid, as its kernel
	// module offers.
	key := []byte("0123456789abcdef")
	spec, _ := anonymize.ParseSpec("path,uid,gid")
	cfg := tracefs.DefaultConfig()
	cfg.Encrypt = true
	cfg.Key = key
	cfg.EncryptSpec = spec
	cfg.Compress = true
	tfs, err := tracefs.Mount(lower, cfg)
	if err != nil {
		panic(err)
	}

	k := vfs.NewKernel(env, "node1", clocks.New(0, 0), vfs.DefaultKernelConfig())
	k.Mount("/", tfs)
	pc := k.Spawn(vfs.Cred{UID: 4711, GID: 812, User: "secretuser"})

	// The sensitive workload.
	env.Go("app", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			path := fmt.Sprintf("/projects/weapons-sim/run%02d.dat", i)
			fd, err := pc.Open(p, path, vfs.OCreate|vfs.OWronly, 0o600)
			if err != nil {
				panic(err)
			}
			for j := 0; j < 8; j++ {
				pc.PWrite(p, fd, int64(j)*8192, 8192)
			}
			pc.Close(p, fd)
		}
	})
	env.Run()

	recs, err := tfs.TraceRecords()
	if err != nil {
		panic(err)
	}
	fmt.Printf("captured %d VFS records, %d bytes of compressed+encrypted binary trace\n",
		len(recs), tfs.OutputBytes())

	sensitive := []string{"weapons", "projects", "secretuser"}
	fmt.Printf("sensitive text visible in encrypted trace: %v\n",
		anonymize.ContainsAny(recs, sensitive))

	// Tracefs encryption is reversible with the key — the paper's caveat.
	dec, _ := anonymize.NewEncryptor(spec, key)
	recovered, err := dec.DecryptValue(recs[0].Path)
	if err != nil {
		panic(err)
	}
	fmt.Printf("key holder recovers record 0 path: %q\n", recovered)

	// For a public release, the key holder first decrypts the paths (each
	// CBC value carries a unique IV, so encrypted strings never repeat and
	// would defeat consistent pseudonyms), then applies true anonymization:
	// consistent random pseudonyms with a salt that is then discarded.
	cleartext := make([]trace.Record, len(recs))
	for i := range recs {
		cleartext[i] = recs[i].Clone()
		if p, err := dec.DecryptValue(cleartext[i].Path); err == nil {
			cleartext[i].Path = p
		}
	}
	public := anonymize.Records(cleartext, anonymize.NewRandomizer(spec, []byte("release-salt-2007")))
	fmt.Printf("\npublic release after randomization: %d records\n", len(public))
	fmt.Printf("sensitive text visible: %v\n", anonymize.ContainsAny(public, sensitive))
	fmt.Printf("record 0 path -> %q (structure preserved, content gone)\n", public[0].Path)

	// Consistency survives, so access-pattern analysis still works: all
	// writes to the same original file share one pseudonym.
	paths := map[string]int{}
	for _, r := range public {
		if r.Name == "VFS_write" {
			paths[r.Path]++
		}
	}
	fmt.Printf("distinct pseudonymous files with writes: %d (expected 4)\n", len(paths))
}
