// Package vfs models the per-node operating system pieces the paper's
// tracing frameworks attach to: a system-call surface with per-process file
// descriptor tables (where strace/LANL-Trace interposes), a mount table, and
// a stackable virtual-file-system layer boundary (where Tracefs sits).
//
// File data is modelled metadata-only: reads and writes carry (offset,
// length) and cost virtual time, and each file maintains an order-independent
// digest of the extents written so integration tests can assert that a traced
// run leaves the file system in exactly the same end state as an untraced
// run.
package vfs

import (
	"errors"

	"iotaxo/internal/sim"
)

// Sentinel errors for the syscall surface.
var (
	ErrNotExist     = errors.New("vfs: no such file")
	ErrExist        = errors.New("vfs: file exists")
	ErrBadFD        = errors.New("vfs: bad file descriptor")
	ErrReadOnly     = errors.New("vfs: file not open for writing")
	ErrWriteOnly    = errors.New("vfs: file not open for reading")
	ErrNoMount      = errors.New("vfs: no filesystem mounted for path")
	ErrIncompatible = errors.New("vfs: filesystem does not support vnode stacking")
)

// OpenFlag mirrors the POSIX open(2) flag subset the simulation needs.
type OpenFlag int

const (
	ORdonly OpenFlag = 0x0
	OWronly OpenFlag = 0x1
	ORdwr   OpenFlag = 0x2
	OCreate OpenFlag = 0x40
	OTrunc  OpenFlag = 0x200
)

// accessMode extracts the read/write mode bits.
func (f OpenFlag) accessMode() OpenFlag { return f & 0x3 }

// CanRead reports whether the flags permit reading.
func (f OpenFlag) CanRead() bool { return f.accessMode() == ORdonly || f.accessMode() == ORdwr }

// CanWrite reports whether the flags permit writing.
func (f OpenFlag) CanWrite() bool { return f.accessMode() == OWronly || f.accessMode() == ORdwr }

// Cred is the caller's identity, carried for the anonymization axis.
type Cred struct {
	UID, GID int
	User     string
}

// FileAttr is stat(2) output.
type FileAttr struct {
	Path string
	Size int64
	UID  int
	GID  int
	Mode int
}

// StatfsInfo is statfs(2) output: enough for MPI-IO to discover what kind of
// file system it is talking to (Figure 1 shows SYS_statfs64 issued inside
// MPI_File_open).
type StatfsInfo struct {
	FSType      string
	BlockSize   int64
	BytesFree   int64
	SupportsPFS bool // true when the FS is the parallel file system
}

// File is an open file handle inside a mounted file system. All byte counts
// are modelled, not materialized; implementations charge virtual time on the
// calling process.
type File interface {
	// ReadAt transfers length bytes at offset, returning bytes read (short
	// reads occur at EOF).
	ReadAt(p *sim.Proc, offset, length int64) (int64, error)
	// WriteAt transfers length bytes at offset.
	WriteAt(p *sim.Proc, offset, length int64) (int64, error)
	// Sync flushes buffered state to stable storage.
	Sync(p *sim.Proc) error
	// Close releases the handle.
	Close(p *sim.Proc) error
	// Attr returns current metadata.
	Attr() FileAttr
}

// Filesystem is anything mountable into a node's mount table. The method
// set is deliberately the VFS operation vector Tracefs wraps.
type Filesystem interface {
	FSName() string
	Open(p *sim.Proc, path string, flags OpenFlag, mode int, cred Cred) (File, error)
	Stat(p *sim.Proc, path string) (FileAttr, error)
	Unlink(p *sim.Proc, path string, cred Cred) error
	Statfs(p *sim.Proc) (StatfsInfo, error)
}

// Stackable is implemented by file systems that support being wrapped by a
// stackable layer such as Tracefs. The paper found Tracefs incompatible
// "out of the box" with LANL's parallel file system; the parallel FS client
// here reports false and tracefs refuses to stack on it without the
// force-compatibility option.
type Stackable interface {
	VNodeStackingSupported() bool
}

// CanStack reports whether fs supports vnode stacking. File systems that do
// not implement Stackable are assumed to be ordinary local file systems and
// stack fine.
func CanStack(fs Filesystem) bool {
	if s, ok := fs.(Stackable); ok {
		return s.VNodeStackingSupported()
	}
	return true
}
