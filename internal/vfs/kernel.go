package vfs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"iotaxo/internal/clocks"
	"iotaxo/internal/sim"
	"iotaxo/internal/trace"
)

// SyscallHook observes system calls made by one process: the attachment
// point for strace-style tracers (LANL-Trace). Enter runs before the call
// executes and Exit after; both may charge virtual time on p (ptrace stops
// the tracee twice per call), and Exit receives the completed record.
type SyscallHook interface {
	Enter(p *sim.Proc, name string)
	Exit(p *sim.Proc, rec *trace.Record)
}

// KernelConfig tunes per-node kernel costs.
type KernelConfig struct {
	SyscallCost sim.Duration // base user/kernel crossing cost per syscall
}

// DefaultKernelConfig matches a 2007-era Linux 2.6 node.
func DefaultKernelConfig() KernelConfig {
	return KernelConfig{SyscallCost: 1 * sim.Microsecond}
}

// Kernel is one node's operating system: mount table, process table, and
// the syscall boundary where tracers interpose.
type Kernel struct {
	env     *sim.Env
	node    string
	clock   *clocks.Clock
	cfg     KernelConfig
	mounts  []mountEntry
	procs   []*ProcCtx
	nextPID int

	// SyscallCount aggregates all syscalls served, for analysis.
	SyscallCount int64
}

type mountEntry struct {
	prefix string
	fs     Filesystem
}

// NewKernel creates a kernel for the named node. clock supplies the node's
// local wall time for trace timestamps; pass clocks.New(0,0) for a perfect
// clock.
func NewKernel(env *sim.Env, node string, clock *clocks.Clock, cfg KernelConfig) *Kernel {
	return &Kernel{env: env, node: node, clock: clock, cfg: cfg}
}

// Node returns the node name.
func (k *Kernel) Node() string { return k.node }

// Clock returns the node's wall clock.
func (k *Kernel) Clock() *clocks.Clock { return k.clock }

// LocalTime converts the current global instant to this node's wall time.
func (k *Kernel) LocalTime(global sim.Time) sim.Time { return k.clock.Local(global) }

// Mount attaches fs at the given path prefix. Longest prefix wins at
// resolution time; mounting an already-mounted prefix replaces it (the
// remount instrumentation layers rely on).
func (k *Kernel) Mount(prefix string, fs Filesystem) {
	for i := range k.mounts {
		if k.mounts[i].prefix == prefix {
			k.mounts[i].fs = fs
			return
		}
	}
	k.mounts = append(k.mounts, mountEntry{prefix: prefix, fs: fs})
	sort.SliceStable(k.mounts, func(i, j int) bool {
		return len(k.mounts[i].prefix) > len(k.mounts[j].prefix)
	})
}

// MountedAt returns the file system currently mounted at exactly prefix.
func (k *Kernel) MountedAt(prefix string) (Filesystem, bool) {
	for _, m := range k.mounts {
		if m.prefix == prefix {
			return m.fs, true
		}
	}
	return nil, false
}

// Resolve returns the file system serving path.
func (k *Kernel) Resolve(path string) (Filesystem, error) {
	for _, m := range k.mounts {
		if strings.HasPrefix(path, m.prefix) {
			return m.fs, nil
		}
	}
	return nil, fmt.Errorf("%w: %s", ErrNoMount, path)
}

// Spawn creates a process context on this node.
func (k *Kernel) Spawn(cred Cred) *ProcCtx {
	k.nextPID++
	pc := &ProcCtx{
		kernel: k,
		pid:    10000 + k.nextPID,
		cred:   cred,
		nextFD: 3, // 0,1,2 reserved as on Unix
		rank:   -1,
	}
	k.procs = append(k.procs, pc)
	return pc
}

// Procs returns the node's process table in spawn order.
func (k *Kernel) Procs() []*ProcCtx { return k.procs }

// ProcCtx is one process's kernel-side state: credentials, fd table, and the
// tracer hooks attached to it.
type ProcCtx struct {
	kernel *Kernel
	pid    int
	rank   int
	cred   Cred
	// fds is the descriptor table, indexed by fd-3 (0,1,2 reserved as on
	// Unix). Descriptor numbers are never reused — they appear verbatim in
	// trace records, so reuse would change trace output — which makes the
	// table an append-only slice of values instead of a map of pointers:
	// one allocation per process at 65536 ranks instead of one per open.
	// A closed entry keeps its slot with file == nil.
	fds    []fdEntry
	nextFD int
	hooks  []SyscallHook
}

type fdEntry struct {
	file  File
	path  string
	pos   int64
	flags OpenFlag
}

// PID returns the process id.
func (pc *ProcCtx) PID() int { return pc.pid }

// Cred returns the process credentials.
func (pc *ProcCtx) Cred() Cred { return pc.cred }

// SetRank labels the process with its MPI rank for trace records.
func (pc *ProcCtx) SetRank(rank int) { pc.rank = rank }

// Rank returns the MPI rank label (-1 when not set).
func (pc *ProcCtx) Rank() int { return pc.rank }

// Kernel returns the owning kernel.
func (pc *ProcCtx) Kernel() *Kernel { return pc.kernel }

// AttachHook installs a syscall hook (tracer) on this process.
func (pc *ProcCtx) AttachHook(h SyscallHook) { pc.hooks = append(pc.hooks, h) }

// DetachHooks removes all tracer hooks.
func (pc *ProcCtx) DetachHooks() { pc.hooks = nil }

// Traced reports whether any hook is attached.
func (pc *ProcCtx) Traced() bool { return len(pc.hooks) > 0 }

// syscall wraps the execution of one system call with hook entry/exit, the
// base kernel-crossing cost, and record construction. args renders the
// call's formatted argument list; it is only invoked when a tracer is
// attached, so untraced runs — half of every overhead sweep — pay no
// string-formatting or slice-allocation cost per call. Laziness cannot
// change simulated time: argument rendering charges no virtual cost.
func (pc *ProcCtx) syscall(p *sim.Proc, name string, args func() []string, body func() (ret string, rec func(*trace.Record))) string {
	for _, h := range pc.hooks {
		h.Enter(p, name)
	}
	// Unconditional span allocation (pure counter, schedule-neutral): child
	// layers inherit the context even when only a deeper tracer is attached.
	span := p.Env().NextSpanID()
	parent := p.SetSpan(span)
	start := p.Now()
	p.Sleep(pc.kernel.cfg.SyscallCost)
	ret, enrich := body()
	dur := p.Now() - start
	p.SetSpan(parent)
	pc.kernel.SyscallCount++
	if len(pc.hooks) > 0 {
		rec := trace.Record{
			Time:   pc.kernel.LocalTime(start),
			Dur:    dur,
			Node:   pc.kernel.node,
			Rank:   pc.rank,
			PID:    pc.pid,
			Class:  trace.ClassSyscall,
			Name:   name,
			Args:   args(),
			Ret:    ret,
			UID:    pc.cred.UID,
			GID:    pc.cred.GID,
			Span:   span,
			Parent: parent,
		}
		if enrich != nil {
			enrich(&rec)
		}
		for _, h := range pc.hooks {
			h.Exit(p, &rec)
		}
	}
	return ret
}

func errnoString(err error) string {
	if err == nil {
		return "0"
	}
	return "-1 " + err.Error()
}

// Open opens path, returning a file descriptor.
func (pc *ProcCtx) Open(p *sim.Proc, path string, flags OpenFlag, mode int) (int, error) {
	var fd int
	var err error
	pc.syscall(p, "SYS_open",
		func() []string {
			return []string{strconv.Quote(path), fmt.Sprintf("%#x", int(flags)), fmt.Sprintf("%#o", mode)}
		},
		func() (string, func(*trace.Record)) {
			var fs Filesystem
			fs, err = pc.kernel.Resolve(path)
			if err != nil {
				return errnoString(err), nil
			}
			var f File
			f, err = fs.Open(p, path, flags, mode, pc.cred)
			if err != nil {
				return errnoString(err), nil
			}
			fd = pc.nextFD
			pc.nextFD++
			pc.fds = append(pc.fds, fdEntry{file: f, path: path, flags: flags})
			return strconv.Itoa(fd), func(r *trace.Record) { r.Path = path }
		})
	if err != nil {
		return -1, err
	}
	return fd, nil
}

func (pc *ProcCtx) fd(fd int) (*fdEntry, error) {
	i := fd - 3
	if i < 0 || i >= len(pc.fds) || pc.fds[i].file == nil {
		return nil, fmt.Errorf("%w: %d", ErrBadFD, fd)
	}
	return &pc.fds[i], nil
}

// PWrite writes length bytes at offset through fd.
func (pc *ProcCtx) PWrite(p *sim.Proc, fd int, offset, length int64) (int64, error) {
	var n int64
	var err error
	pc.syscall(p, "SYS_pwrite",
		func() []string {
			return []string{strconv.Itoa(fd), strconv.FormatInt(offset, 10), strconv.FormatInt(length, 10)}
		},
		func() (string, func(*trace.Record)) {
			var e *fdEntry
			e, err = pc.fd(fd)
			if err != nil {
				return errnoString(err), nil
			}
			if !e.flags.CanWrite() {
				err = ErrReadOnly
				return errnoString(err), nil
			}
			n, err = e.file.WriteAt(p, offset, length)
			if err != nil {
				return errnoString(err), nil
			}
			path := e.path
			return strconv.FormatInt(n, 10), func(r *trace.Record) {
				r.Path, r.Offset, r.Bytes = path, offset, n
			}
		})
	return n, err
}

// Write writes length bytes at the fd's current position, advancing it.
func (pc *ProcCtx) Write(p *sim.Proc, fd int, length int64) (int64, error) {
	var n int64
	var err error
	pc.syscall(p, "SYS_write",
		func() []string { return []string{strconv.Itoa(fd), strconv.FormatInt(length, 10)} },
		func() (string, func(*trace.Record)) {
			var e *fdEntry
			e, err = pc.fd(fd)
			if err != nil {
				return errnoString(err), nil
			}
			if !e.flags.CanWrite() {
				err = ErrReadOnly
				return errnoString(err), nil
			}
			off := e.pos
			n, err = e.file.WriteAt(p, off, length)
			if err != nil {
				return errnoString(err), nil
			}
			e.pos += n
			path := e.path
			return strconv.FormatInt(n, 10), func(r *trace.Record) {
				r.Path, r.Offset, r.Bytes = path, off, n
			}
		})
	return n, err
}

// PRead reads length bytes at offset through fd.
func (pc *ProcCtx) PRead(p *sim.Proc, fd int, offset, length int64) (int64, error) {
	var n int64
	var err error
	pc.syscall(p, "SYS_pread",
		func() []string {
			return []string{strconv.Itoa(fd), strconv.FormatInt(offset, 10), strconv.FormatInt(length, 10)}
		},
		func() (string, func(*trace.Record)) {
			var e *fdEntry
			e, err = pc.fd(fd)
			if err != nil {
				return errnoString(err), nil
			}
			if !e.flags.CanRead() {
				err = ErrWriteOnly
				return errnoString(err), nil
			}
			n, err = e.file.ReadAt(p, offset, length)
			if err != nil {
				return errnoString(err), nil
			}
			path := e.path
			return strconv.FormatInt(n, 10), func(r *trace.Record) {
				r.Path, r.Offset, r.Bytes = path, offset, n
			}
		})
	return n, err
}

// Read reads length bytes at the fd's position, advancing it.
func (pc *ProcCtx) Read(p *sim.Proc, fd int, length int64) (int64, error) {
	var n int64
	var err error
	pc.syscall(p, "SYS_read",
		func() []string { return []string{strconv.Itoa(fd), strconv.FormatInt(length, 10)} },
		func() (string, func(*trace.Record)) {
			var e *fdEntry
			e, err = pc.fd(fd)
			if err != nil {
				return errnoString(err), nil
			}
			if !e.flags.CanRead() {
				err = ErrWriteOnly
				return errnoString(err), nil
			}
			off := e.pos
			n, err = e.file.ReadAt(p, off, length)
			if err != nil {
				return errnoString(err), nil
			}
			e.pos += n
			path := e.path
			return strconv.FormatInt(n, 10), func(r *trace.Record) {
				r.Path, r.Offset, r.Bytes = path, off, n
			}
		})
	return n, err
}

// Close closes fd.
func (pc *ProcCtx) Close(p *sim.Proc, fd int) error {
	var err error
	pc.syscall(p, "SYS_close", func() []string { return []string{strconv.Itoa(fd)} },
		func() (string, func(*trace.Record)) {
			var e *fdEntry
			e, err = pc.fd(fd)
			if err != nil {
				return errnoString(err), nil
			}
			err = e.file.Close(p)
			e.file = nil // slot retired; fd numbers are never reused
			return errnoString(err), nil
		})
	return err
}

// Fsync flushes fd to stable storage.
func (pc *ProcCtx) Fsync(p *sim.Proc, fd int) error {
	var err error
	pc.syscall(p, "SYS_fsync", func() []string { return []string{strconv.Itoa(fd)} },
		func() (string, func(*trace.Record)) {
			var e *fdEntry
			e, err = pc.fd(fd)
			if err != nil {
				return errnoString(err), nil
			}
			err = e.file.Sync(p)
			return errnoString(err), nil
		})
	return err
}

// Stat returns file metadata.
func (pc *ProcCtx) Stat(p *sim.Proc, path string) (FileAttr, error) {
	var attr FileAttr
	var err error
	pc.syscall(p, "SYS_stat", func() []string { return []string{strconv.Quote(path)} },
		func() (string, func(*trace.Record)) {
			var fs Filesystem
			fs, err = pc.kernel.Resolve(path)
			if err != nil {
				return errnoString(err), nil
			}
			attr, err = fs.Stat(p, path)
			if err != nil {
				return errnoString(err), nil
			}
			return "0", func(r *trace.Record) { r.Path = path }
		})
	return attr, err
}

// Statfs returns file system information for the mount serving path.
func (pc *ProcCtx) Statfs(p *sim.Proc, path string) (StatfsInfo, error) {
	var info StatfsInfo
	var err error
	pc.syscall(p, "SYS_statfs64", func() []string { return []string{strconv.Quote(path), "84"} },
		func() (string, func(*trace.Record)) {
			var fs Filesystem
			fs, err = pc.kernel.Resolve(path)
			if err != nil {
				return errnoString(err), nil
			}
			info, err = fs.Statfs(p)
			return errnoString(err), func(r *trace.Record) { r.Path = path }
		})
	return info, err
}

// Unlink removes a file.
func (pc *ProcCtx) Unlink(p *sim.Proc, path string) error {
	var err error
	pc.syscall(p, "SYS_unlink", func() []string { return []string{strconv.Quote(path)} },
		func() (string, func(*trace.Record)) {
			var fs Filesystem
			fs, err = pc.kernel.Resolve(path)
			if err != nil {
				return errnoString(err), nil
			}
			err = fs.Unlink(p, path, pc.cred)
			return errnoString(err), func(r *trace.Record) { r.Path = path }
		})
	return err
}

// Fcntl models the descriptor-flag fiddling MPI stacks perform on startup
// (Figure 1 shows SYS_fcntl64 during MPI_File_open). It is a metadata no-op.
func (pc *ProcCtx) Fcntl(p *sim.Proc, fd, cmd, arg int) error {
	var err error
	pc.syscall(p, "SYS_fcntl64",
		func() []string { return []string{strconv.Itoa(fd), strconv.Itoa(cmd), strconv.Itoa(arg)} },
		func() (string, func(*trace.Record)) {
			_, err = pc.fd(fd)
			return errnoString(err), nil
		})
	return err
}

// MMapRegion is a memory mapping of a file range. Stores through the
// mapping bypass the syscall boundary entirely — strace-based tracers cannot
// see them (the paper: ltrace/strace "cannot track memory-mapped I/Os") —
// but the backing file system (where Tracefs stacks) observes the writeback.
type MMapRegion struct {
	pc     *ProcCtx
	file   File
	path   string
	offset int64
	length int64
}

// MMap maps length bytes of fd at offset.
func (pc *ProcCtx) MMap(p *sim.Proc, fd int, offset, length int64) (*MMapRegion, error) {
	var region *MMapRegion
	var err error
	pc.syscall(p, "SYS_mmap",
		func() []string {
			return []string{strconv.Itoa(fd), strconv.FormatInt(offset, 10), strconv.FormatInt(length, 10)}
		},
		func() (string, func(*trace.Record)) {
			var e *fdEntry
			e, err = pc.fd(fd)
			if err != nil {
				return errnoString(err), nil
			}
			region = &MMapRegion{pc: pc, file: e.file, path: e.path, offset: offset, length: length}
			path := e.path
			return "0x2aaaaaaab000", func(r *trace.Record) {
				r.Path, r.Offset, r.Bytes = path, offset, length
			}
		})
	return region, err
}

// Store writes length bytes at offset within the mapping. No syscall is
// issued: the write reaches the file system as page writeback.
func (m *MMapRegion) Store(p *sim.Proc, offset, length int64) error {
	if offset+length > m.length {
		return fmt.Errorf("vfs: store beyond mapping (%d+%d > %d)", offset, length, m.length)
	}
	_, err := m.file.WriteAt(p, m.offset+offset, length)
	return err
}

// SyscallNames lists the syscall surface, for documentation and for
// granularity-filter validation.
func SyscallNames() []string {
	return []string{
		"SYS_open", "SYS_close", "SYS_read", "SYS_write", "SYS_pread",
		"SYS_pwrite", "SYS_fsync", "SYS_stat", "SYS_statfs64", "SYS_unlink",
		"SYS_fcntl64", "SYS_mmap",
	}
}
