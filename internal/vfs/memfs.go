package vfs

import (
	"fmt"
	"sort"

	"iotaxo/internal/disk"
	"iotaxo/internal/fnvhash"
	"iotaxo/internal/sim"
)

// MemFS is a local file system (the "ext3" of the simulation): metadata in
// memory, I/O cost charged against a single local disk. It supports vnode
// stacking, so Tracefs mounts on top of it — matching the paper, where
// Tracefs worked on ext3 and NFS but not on the parallel file system.
type MemFS struct {
	name  string
	env   *sim.Env
	disk  *disk.Disk
	files map[string]*memFile

	// OpCount counts VFS operations served, for tests and analysis.
	OpCount int64
}

type memFile struct {
	attr   FileAttr
	digest uint64 // XOR of per-extent hashes: order-independent
	writes int64
	reads  int64
	open   int // open handle count
}

// NewMemFS creates a local file system named name (e.g. "ext3") whose I/O
// lands on a disk with the given configuration.
func NewMemFS(env *sim.Env, name string, dcfg disk.Config) *MemFS {
	return &MemFS{
		name:  name,
		env:   env,
		disk:  disk.NewDisk(env, dcfg),
		files: make(map[string]*memFile),
	}
}

// FSName implements Filesystem.
func (m *MemFS) FSName() string { return m.name }

// VNodeStackingSupported implements Stackable: local FSes stack fine.
func (m *MemFS) VNodeStackingSupported() bool { return true }

// Open implements Filesystem.
func (m *MemFS) Open(p *sim.Proc, path string, flags OpenFlag, mode int, cred Cred) (File, error) {
	m.OpCount++
	f, ok := m.files[path]
	if !ok {
		if flags&OCreate == 0 {
			return nil, fmt.Errorf("%w: %s", ErrNotExist, path)
		}
		f = &memFile{attr: FileAttr{Path: path, UID: cred.UID, GID: cred.GID, Mode: mode}}
		m.files[path] = f
	}
	if flags&OTrunc != 0 && flags.CanWrite() {
		f.attr.Size = 0
		f.digest = 0
	}
	f.open++
	// Metadata lookup cost: one small disk read (inode).
	if err := m.disk.Read(p, pathPos(path), 512); err != nil {
		return nil, err
	}
	return &memHandle{fs: m, f: f, flags: flags}, nil
}

// Stat implements Filesystem.
func (m *MemFS) Stat(p *sim.Proc, path string) (FileAttr, error) {
	m.OpCount++
	f, ok := m.files[path]
	if !ok {
		return FileAttr{}, fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	if err := m.disk.Read(p, pathPos(path), 512); err != nil {
		return FileAttr{}, err
	}
	return f.attr, nil
}

// Unlink implements Filesystem.
func (m *MemFS) Unlink(p *sim.Proc, path string, cred Cred) error {
	m.OpCount++
	if _, ok := m.files[path]; !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	delete(m.files, path)
	return m.disk.Write(p, pathPos(path), 512)
}

// Statfs implements Filesystem.
func (m *MemFS) Statfs(p *sim.Proc) (StatfsInfo, error) {
	m.OpCount++
	return StatfsInfo{FSType: m.name, BlockSize: 4096, BytesFree: 1 << 40}, nil
}

// Preload creates a file with the given size at zero simulated cost: used
// when assembling a node image (e.g. /etc/hosts) before the run starts.
func (m *MemFS) Preload(path string, size int64) {
	m.files[path] = &memFile{attr: FileAttr{Path: path, Size: size, Mode: 0o644}}
}

// Snapshot returns (size, digest, writes) for a path: the end-state triple
// integration tests compare between traced and untraced runs.
func (m *MemFS) Snapshot(path string) (int64, uint64, int64, bool) {
	f, ok := m.files[path]
	if !ok {
		return 0, 0, 0, false
	}
	return f.attr.Size, f.digest, f.writes, true
}

// Paths lists all files, sorted.
func (m *MemFS) Paths() []string {
	out := make([]string, 0, len(m.files))
	for p := range m.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// memHandle is an open handle on a MemFS file.
type memHandle struct {
	fs     *MemFS
	f      *memFile
	flags  OpenFlag
	closed bool
}

// extentHash digests one written extent; it and pathPos run on every
// simulated I/O operation, so both go through the shared allocation-free
// FNV-1a in internal/fnvhash — the same implementation pfs uses, keeping
// end-state digest comparisons uniform across file systems.
func extentHash(path string, off, n int64) uint64 {
	return fnvhash.Int64(fnvhash.Int64(fnvhash.String(fnvhash.Offset64, path), off), n)
}

func pathPos(path string) int64 {
	return int64(fnvhash.String(fnvhash.Offset64, path) % (1 << 38)) // spread inodes over the disk
}

// WriteAt implements File.
func (h *memHandle) WriteAt(p *sim.Proc, offset, length int64) (int64, error) {
	if h.closed {
		return 0, ErrBadFD
	}
	h.fs.OpCount++
	if err := h.fs.disk.Write(p, pathPos(h.f.attr.Path)+offset, length); err != nil {
		return 0, err
	}
	if end := offset + length; end > h.f.attr.Size {
		h.f.attr.Size = end
	}
	h.f.digest ^= extentHash(h.f.attr.Path, offset, length)
	h.f.writes++
	return length, nil
}

// ReadAt implements File.
func (h *memHandle) ReadAt(p *sim.Proc, offset, length int64) (int64, error) {
	if h.closed {
		return 0, ErrBadFD
	}
	h.fs.OpCount++
	if offset >= h.f.attr.Size {
		return 0, nil // EOF
	}
	if offset+length > h.f.attr.Size {
		length = h.f.attr.Size - offset
	}
	if err := h.fs.disk.Read(p, pathPos(h.f.attr.Path)+offset, length); err != nil {
		return 0, err
	}
	h.f.reads++
	return length, nil
}

// Sync implements File: a short disk flush.
func (h *memHandle) Sync(p *sim.Proc) error {
	if h.closed {
		return ErrBadFD
	}
	h.fs.OpCount++
	return h.fs.disk.Write(p, pathPos(h.f.attr.Path), 512)
}

// Close implements File.
func (h *memHandle) Close(p *sim.Proc) error {
	if h.closed {
		return ErrBadFD
	}
	h.closed = true
	h.f.open--
	h.fs.OpCount++
	return nil
}

// Attr implements File.
func (h *memHandle) Attr() FileAttr { return h.f.attr }
