package vfs

import (
	"errors"
	"testing"
	"testing/quick"

	"iotaxo/internal/clocks"
	"iotaxo/internal/disk"
	"iotaxo/internal/sim"
	"iotaxo/internal/trace"
)

func newTestKernel(env *sim.Env) (*Kernel, *MemFS) {
	k := NewKernel(env, "node1", clocks.New(0, 0), DefaultKernelConfig())
	fs := NewMemFS(env, "ext3", disk.DefaultDisk())
	k.Mount("/", fs)
	return k, fs
}

func inProc(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	env := sim.NewEnv(1)
	env.Go("test", fn)
	env.Run()
}

func TestOpenWriteReadClose(t *testing.T) {
	env := sim.NewEnv(1)
	k, fs := newTestKernel(env)
	pc := k.Spawn(Cred{UID: 500, GID: 100})
	env.Go("app", func(p *sim.Proc) {
		fd, err := pc.Open(p, "/data/file1", OCreate|ORdwr, 0o644)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		if n, err := pc.PWrite(p, fd, 0, 4096); n != 4096 || err != nil {
			t.Errorf("pwrite: n=%d err=%v", n, err)
		}
		if n, err := pc.PRead(p, fd, 0, 4096); n != 4096 || err != nil {
			t.Errorf("pread: n=%d err=%v", n, err)
		}
		if err := pc.Close(p, fd); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	env.Run()
	size, _, writes, ok := fs.Snapshot("/data/file1")
	if !ok || size != 4096 || writes != 1 {
		t.Fatalf("snapshot: size=%d writes=%d ok=%v", size, writes, ok)
	}
}

func TestSequentialWriteAdvancesPosition(t *testing.T) {
	env := sim.NewEnv(1)
	k, fs := newTestKernel(env)
	pc := k.Spawn(Cred{})
	env.Go("app", func(p *sim.Proc) {
		fd, _ := pc.Open(p, "/f", OCreate|OWronly, 0o644)
		pc.Write(p, fd, 100)
		pc.Write(p, fd, 100)
		pc.Write(p, fd, 100)
		pc.Close(p, fd)
	})
	env.Run()
	size, _, _, _ := fs.Snapshot("/f")
	if size != 300 {
		t.Fatalf("size = %d, want 300", size)
	}
}

func TestOpenMissingWithoutCreate(t *testing.T) {
	env := sim.NewEnv(1)
	k, _ := newTestKernel(env)
	pc := k.Spawn(Cred{})
	var err error
	env.Go("app", func(p *sim.Proc) {
		_, err = pc.Open(p, "/nope", ORdonly, 0)
	})
	env.Run()
	if !errors.Is(err, ErrNotExist) {
		t.Fatalf("err = %v", err)
	}
}

func TestWriteOnReadOnlyFD(t *testing.T) {
	env := sim.NewEnv(1)
	k, _ := newTestKernel(env)
	pc := k.Spawn(Cred{})
	var werr, rerr error
	env.Go("app", func(p *sim.Proc) {
		fd, _ := pc.Open(p, "/f", OCreate|OWronly, 0o644)
		pc.Close(p, fd)
		fd, _ = pc.Open(p, "/f", ORdonly, 0)
		_, werr = pc.PWrite(p, fd, 0, 10)
		fdw, _ := pc.Open(p, "/f", OWronly, 0)
		_, rerr = pc.PRead(p, fdw, 0, 10)
	})
	env.Run()
	if !errors.Is(werr, ErrReadOnly) {
		t.Fatalf("write err = %v", werr)
	}
	if !errors.Is(rerr, ErrWriteOnly) {
		t.Fatalf("read err = %v", rerr)
	}
}

func TestBadFD(t *testing.T) {
	env := sim.NewEnv(1)
	k, _ := newTestKernel(env)
	pc := k.Spawn(Cred{})
	var err error
	env.Go("app", func(p *sim.Proc) {
		_, err = pc.PWrite(p, 42, 0, 10)
	})
	env.Run()
	if !errors.Is(err, ErrBadFD) {
		t.Fatalf("err = %v", err)
	}
}

func TestTruncate(t *testing.T) {
	env := sim.NewEnv(1)
	k, fs := newTestKernel(env)
	pc := k.Spawn(Cred{})
	env.Go("app", func(p *sim.Proc) {
		fd, _ := pc.Open(p, "/f", OCreate|OWronly, 0o644)
		pc.PWrite(p, fd, 0, 1000)
		pc.Close(p, fd)
		fd, _ = pc.Open(p, "/f", OWronly|OTrunc, 0)
		pc.Close(p, fd)
	})
	env.Run()
	size, digest, _, _ := fs.Snapshot("/f")
	if size != 0 || digest != 0 {
		t.Fatalf("truncate left size=%d digest=%d", size, digest)
	}
}

func TestShortReadAtEOF(t *testing.T) {
	env := sim.NewEnv(1)
	k, _ := newTestKernel(env)
	pc := k.Spawn(Cred{})
	var n int64
	env.Go("app", func(p *sim.Proc) {
		fd, _ := pc.Open(p, "/f", OCreate|ORdwr, 0o644)
		pc.PWrite(p, fd, 0, 100)
		n, _ = pc.PRead(p, fd, 50, 500)
	})
	env.Run()
	if n != 50 {
		t.Fatalf("short read n = %d, want 50", n)
	}
}

func TestUnlinkAndStat(t *testing.T) {
	env := sim.NewEnv(1)
	k, _ := newTestKernel(env)
	pc := k.Spawn(Cred{UID: 7})
	var statErr error
	var attr FileAttr
	env.Go("app", func(p *sim.Proc) {
		fd, _ := pc.Open(p, "/f", OCreate|OWronly, 0o600)
		pc.PWrite(p, fd, 0, 123)
		pc.Close(p, fd)
		attr, _ = pc.Stat(p, "/f")
		pc.Unlink(p, "/f")
		_, statErr = pc.Stat(p, "/f")
	})
	env.Run()
	if attr.Size != 123 || attr.UID != 7 {
		t.Fatalf("attr = %+v", attr)
	}
	if !errors.Is(statErr, ErrNotExist) {
		t.Fatalf("stat after unlink: %v", statErr)
	}
}

func TestStatfsReportsFSType(t *testing.T) {
	env := sim.NewEnv(1)
	k, _ := newTestKernel(env)
	pc := k.Spawn(Cred{})
	var info StatfsInfo
	env.Go("app", func(p *sim.Proc) {
		info, _ = pc.Statfs(p, "/anything")
	})
	env.Run()
	if info.FSType != "ext3" {
		t.Fatalf("fstype = %q", info.FSType)
	}
}

func TestMountLongestPrefixWins(t *testing.T) {
	env := sim.NewEnv(1)
	k := NewKernel(env, "n", clocks.New(0, 0), DefaultKernelConfig())
	root := NewMemFS(env, "ext3", disk.DefaultDisk())
	scratch := NewMemFS(env, "scratchfs", disk.DefaultDisk())
	k.Mount("/", root)
	k.Mount("/scratch", scratch)
	fs, err := k.Resolve("/scratch/run1/file")
	if err != nil || fs.FSName() != "scratchfs" {
		t.Fatalf("resolve: %v %v", fs, err)
	}
	fs, err = k.Resolve("/etc/hosts")
	if err != nil || fs.FSName() != "ext3" {
		t.Fatalf("resolve: %v %v", fs, err)
	}
}

func TestNoMountError(t *testing.T) {
	env := sim.NewEnv(1)
	k := NewKernel(env, "n", clocks.New(0, 0), DefaultKernelConfig())
	_, err := k.Resolve("/x")
	if !errors.Is(err, ErrNoMount) {
		t.Fatalf("err = %v", err)
	}
}

// recordingHook collects syscall records for hook tests.
type recordingHook struct {
	entered int
	recs    []trace.Record
	cost    sim.Duration
}

func (h *recordingHook) Enter(p *sim.Proc, name string) {
	h.entered++
	if h.cost > 0 {
		p.Sleep(h.cost)
	}
}

func (h *recordingHook) Exit(p *sim.Proc, rec *trace.Record) {
	h.recs = append(h.recs, rec.Clone())
	if h.cost > 0 {
		p.Sleep(h.cost)
	}
}

func TestSyscallHookSeesRecords(t *testing.T) {
	env := sim.NewEnv(1)
	k, _ := newTestKernel(env)
	pc := k.Spawn(Cred{UID: 11, GID: 22})
	pc.SetRank(3)
	hook := &recordingHook{}
	pc.AttachHook(hook)
	env.Go("app", func(p *sim.Proc) {
		fd, _ := pc.Open(p, "/f", OCreate|OWronly, 0o644)
		pc.PWrite(p, fd, 4096, 8192)
		pc.Close(p, fd)
	})
	env.Run()
	if hook.entered != 3 {
		t.Fatalf("entered = %d, want 3", hook.entered)
	}
	if len(hook.recs) != 3 {
		t.Fatalf("recs = %d, want 3", len(hook.recs))
	}
	w := hook.recs[1]
	if w.Name != "SYS_pwrite" || w.Offset != 4096 || w.Bytes != 8192 || w.Path != "/f" {
		t.Fatalf("write record: %+v", w)
	}
	if w.Rank != 3 || w.UID != 11 || w.Node != "node1" {
		t.Fatalf("identity fields: %+v", w)
	}
	if w.Dur <= 0 {
		t.Fatalf("duration not positive: %v", w.Dur)
	}
}

func TestHookCostSlowsSyscalls(t *testing.T) {
	elapsed := func(withHook bool) sim.Time {
		env := sim.NewEnv(1)
		k, _ := newTestKernel(env)
		pc := k.Spawn(Cred{})
		if withHook {
			pc.AttachHook(&recordingHook{cost: 50 * sim.Microsecond})
		}
		var end sim.Time
		env.Go("app", func(p *sim.Proc) {
			fd, _ := pc.Open(p, "/f", OCreate|OWronly, 0o644)
			for i := 0; i < 10; i++ {
				pc.PWrite(p, fd, int64(i*100), 100)
			}
			pc.Close(p, fd)
			end = p.Now()
		})
		env.Run()
		return end
	}
	plain, traced := elapsed(false), elapsed(true)
	if traced <= plain {
		t.Fatalf("hook cost had no effect: %v vs %v", traced, plain)
	}
	// 12 syscalls x 2 stops x 50 µs = 1.2 ms minimum extra.
	if traced-plain < 1200*sim.Microsecond {
		t.Fatalf("hook overhead too small: %v", traced-plain)
	}
}

func TestHookTimestampUsesLocalClock(t *testing.T) {
	env := sim.NewEnv(1)
	k := NewKernel(env, "skewed", clocks.New(5*sim.Second, 0), DefaultKernelConfig())
	fs := NewMemFS(env, "ext3", disk.DefaultDisk())
	k.Mount("/", fs)
	pc := k.Spawn(Cred{})
	hook := &recordingHook{}
	pc.AttachHook(hook)
	env.Go("app", func(p *sim.Proc) {
		pc.Open(p, "/f", OCreate|OWronly, 0o644)
	})
	env.Run()
	if len(hook.recs) == 0 || hook.recs[0].Time < 5*sim.Second {
		t.Fatalf("timestamp not skewed: %+v", hook.recs)
	}
}

func TestMMapBypassesSyscallHooks(t *testing.T) {
	env := sim.NewEnv(1)
	k, fs := newTestKernel(env)
	pc := k.Spawn(Cred{})
	hook := &recordingHook{}
	pc.AttachHook(hook)
	env.Go("app", func(p *sim.Proc) {
		fd, _ := pc.Open(p, "/f", OCreate|ORdwr, 0o644)
		region, err := pc.MMap(p, fd, 0, 1<<20)
		if err != nil {
			t.Errorf("mmap: %v", err)
			return
		}
		// 16 stores through the mapping: invisible to the syscall hook.
		for i := 0; i < 16; i++ {
			if err := region.Store(p, int64(i*4096), 4096); err != nil {
				t.Errorf("store: %v", err)
			}
		}
		pc.Close(p, fd)
	})
	env.Run()
	// Hook sees open, mmap, close only.
	var names []string
	for _, r := range hook.recs {
		names = append(names, r.Name)
	}
	if len(hook.recs) != 3 {
		t.Fatalf("hook saw %v, want 3 records", names)
	}
	// But the file system did receive the data.
	size, _, writes, _ := fs.Snapshot("/f")
	if size != 16*4096 || writes != 16 {
		t.Fatalf("mmap data lost: size=%d writes=%d", size, writes)
	}
}

func TestMMapStoreBeyondMapping(t *testing.T) {
	env := sim.NewEnv(1)
	k, _ := newTestKernel(env)
	pc := k.Spawn(Cred{})
	var err error
	env.Go("app", func(p *sim.Proc) {
		fd, _ := pc.Open(p, "/f", OCreate|ORdwr, 0o644)
		region, _ := pc.MMap(p, fd, 0, 4096)
		err = region.Store(p, 4000, 200)
	})
	env.Run()
	if err == nil {
		t.Fatal("expected error for store past end of mapping")
	}
}

func TestDetachHooks(t *testing.T) {
	env := sim.NewEnv(1)
	k, _ := newTestKernel(env)
	pc := k.Spawn(Cred{})
	hook := &recordingHook{}
	pc.AttachHook(hook)
	if !pc.Traced() {
		t.Fatal("Traced() = false after attach")
	}
	pc.DetachHooks()
	if pc.Traced() {
		t.Fatal("Traced() = true after detach")
	}
	env.Go("app", func(p *sim.Proc) {
		pc.Open(p, "/f", OCreate|OWronly, 0o644)
	})
	env.Run()
	if len(hook.recs) != 0 {
		t.Fatal("detached hook still saw records")
	}
}

func TestDigestOrderIndependent(t *testing.T) {
	writeExtents := func(order []int) uint64 {
		env := sim.NewEnv(1)
		k, fs := newTestKernel(env)
		pc := k.Spawn(Cred{})
		env.Go("app", func(p *sim.Proc) {
			fd, _ := pc.Open(p, "/f", OCreate|OWronly, 0o644)
			for _, i := range order {
				pc.PWrite(p, fd, int64(i)*1000, 1000)
			}
			pc.Close(p, fd)
		})
		env.Run()
		_, digest, _, _ := fs.Snapshot("/f")
		return digest
	}
	a := writeExtents([]int{0, 1, 2, 3})
	b := writeExtents([]int{3, 1, 0, 2})
	if a != b {
		t.Fatalf("digest order-dependent: %x vs %x", a, b)
	}
	c := writeExtents([]int{0, 1, 2})
	if a == c {
		t.Fatal("different extents produced same digest")
	}
}

// Property: fd numbers are unique among open descriptors.
func TestFDUniquenessProperty(t *testing.T) {
	f := func(nOpen uint8) bool {
		n := int(nOpen)%20 + 1
		env := sim.NewEnv(1)
		k, _ := newTestKernel(env)
		pc := k.Spawn(Cred{})
		ok := true
		env.Go("app", func(p *sim.Proc) {
			seen := make(map[int]bool)
			for i := 0; i < n; i++ {
				fd, err := pc.Open(p, "/f", OCreate|ORdwr, 0o644)
				if err != nil || seen[fd] {
					ok = false
					return
				}
				seen[fd] = true
			}
		})
		env.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSyscallCountAccumulates(t *testing.T) {
	env := sim.NewEnv(1)
	k, _ := newTestKernel(env)
	pc := k.Spawn(Cred{})
	env.Go("app", func(p *sim.Proc) {
		fd, _ := pc.Open(p, "/f", OCreate|OWronly, 0o644)
		pc.PWrite(p, fd, 0, 10)
		pc.Fsync(p, fd)
		pc.Fcntl(p, fd, 1, 0)
		pc.Close(p, fd)
	})
	env.Run()
	if k.SyscallCount != 5 {
		t.Fatalf("SyscallCount = %d, want 5", k.SyscallCount)
	}
}

func TestSyscallNamesNonEmpty(t *testing.T) {
	if len(SyscallNames()) < 10 {
		t.Fatal("syscall surface suspiciously small")
	}
}

func TestCanStack(t *testing.T) {
	env := sim.NewEnv(1)
	fs := NewMemFS(env, "ext3", disk.DefaultDisk())
	if !CanStack(fs) {
		t.Fatal("MemFS should stack")
	}
}

func TestAccessorsAndSequentialRead(t *testing.T) {
	env := sim.NewEnv(1)
	k, fs := newTestKernel(env)
	if k.Node() != "node1" || k.Clock() == nil {
		t.Fatal("kernel accessors")
	}
	if _, ok := k.MountedAt("/"); !ok {
		t.Fatal("MountedAt missed root mount")
	}
	if _, ok := k.MountedAt("/nope"); ok {
		t.Fatal("MountedAt invented a mount")
	}
	pc := k.Spawn(Cred{UID: 3, GID: 4})
	pc.SetRank(9)
	if pc.PID() < 10000 || pc.Cred().UID != 3 || pc.Rank() != 9 || pc.Kernel() != k {
		t.Fatal("proc accessors")
	}
	fs.Preload("/preloaded", 1000)
	if got := fs.Paths(); len(got) != 1 || got[0] != "/preloaded" {
		t.Fatalf("paths: %v", got)
	}
	env.Go("app", func(p *sim.Proc) {
		fd, err := pc.Open(p, "/preloaded", ORdonly, 0)
		if err != nil {
			t.Errorf("open preloaded: %v", err)
			return
		}
		// Sequential reads advance the position and stop at EOF.
		if n, _ := pc.Read(p, fd, 600); n != 600 {
			t.Errorf("read1 = %d", n)
		}
		if n, _ := pc.Read(p, fd, 600); n != 400 {
			t.Errorf("read2 = %d", n)
		}
		if n, _ := pc.Read(p, fd, 600); n != 0 {
			t.Errorf("read3 = %d", n)
		}
		pc.Close(p, fd)
	})
	env.Run()
}

func TestMountReplacesSamePrefix(t *testing.T) {
	env := sim.NewEnv(1)
	k := NewKernel(env, "n", clocks.New(0, 0), DefaultKernelConfig())
	a := NewMemFS(env, "first", disk.DefaultDisk())
	b := NewMemFS(env, "second", disk.DefaultDisk())
	k.Mount("/x", a)
	k.Mount("/x", b)
	fs, err := k.Resolve("/x/file")
	if err != nil || fs.FSName() != "second" {
		t.Fatalf("remount: %v %v", fs, err)
	}
}

func TestHandleAttrAndCanStackNonStackable(t *testing.T) {
	env := sim.NewEnv(1)
	k, _ := newTestKernel(env)
	pc := k.Spawn(Cred{})
	env.Go("app", func(p *sim.Proc) {
		fd, _ := pc.Open(p, "/af", OCreate|OWronly, 0o600)
		pc.PWrite(p, fd, 0, 77)
		pc.Fsync(p, fd)
		pc.Close(p, fd)
		attr, err := pc.Stat(p, "/af")
		if err != nil || attr.Size != 77 {
			t.Errorf("attr: %+v %v", attr, err)
		}
	})
	env.Run()
	if !CanStack(fakeNonStackable{}) == false {
		// fakeNonStackable reports false: CanStack must honor it.
	}
	if CanStack(fakeNonStackable{}) {
		t.Fatal("CanStack ignored VNodeStackingSupported=false")
	}
}

type fakeNonStackable struct{ Filesystem }

func (fakeNonStackable) VNodeStackingSupported() bool { return false }
