// Package pfs simulates the parallel file system of the paper's testbed:
// files striped in 64 KB units across object storage servers, each server
// backed by a RAID-5 group (the paper: "RAID 5 with a stripe width of 64
// kilobytes across 252 hard drives"), with a metadata server handling opens,
// stats and unlinks.
//
// The package also provides an NFS-like single-server configuration used to
// reproduce the Tracefs compatibility story: the NFS personality supports
// vnode stacking (Tracefs mounts on it), the parallel personality does not.
package pfs

import (
	"fmt"
	"sort"

	"iotaxo/internal/disk"
	"iotaxo/internal/fnvhash"
	"iotaxo/internal/netsim"
	"iotaxo/internal/sim"
	"iotaxo/internal/trace"
)

// Port is the network port the PFS protocol listens on.
const Port = 7100

// reqHeader approximates the protocol header bytes per request.
const reqHeader = 128

// Config describes a deployment.
type Config struct {
	Name        string // FS type reported by statfs (e.g. "panfs", "nfs")
	Servers     int    // object storage server count
	StripeUnit  int64  // bytes per stripe unit across servers
	Array       disk.ArrayConfig
	ServerProcs int  // concurrent handlers per server
	Stackable   bool // whether the client supports vnode stacking
	MetaCost    sim.Duration
}

// DefaultParallel approximates the paper's testbed: 12 object servers, each
// a 21-drive RAID-5 group (252 drives total), 64 KB stripes, and a client
// that does NOT support vnode stacking (Tracefs cannot mount on it out of
// the box).
func DefaultParallel() Config {
	return Config{
		Name:       "panfs",
		Servers:    12,
		StripeUnit: 64 << 10,
		Array: disk.ArrayConfig{
			Disks:      21,
			StripeUnit: 64 << 10,
			Disk:       disk.DefaultDisk(),
		},
		ServerProcs: 8,
		Stackable:   false,
		MetaCost:    200 * sim.Microsecond,
	}
}

// DefaultNFS is a single-server file system that stacks fine under Tracefs.
func DefaultNFS() Config {
	return Config{
		Name:       "nfs",
		Servers:    1,
		StripeUnit: 64 << 10,
		Array: disk.ArrayConfig{
			Disks:      5,
			StripeUnit: 64 << 10,
			Disk:       disk.DefaultDisk(),
		},
		ServerProcs: 4,
		Stackable:   true,
		MetaCost:    150 * sim.Microsecond,
	}
}

// fix applies defaults to a partially-specified config.
func (c Config) fix() Config {
	if c.Servers <= 0 {
		c.Servers = 1
	}
	if c.StripeUnit <= 0 {
		c.StripeUnit = 64 << 10
	}
	if c.ServerProcs <= 0 {
		c.ServerProcs = 4
	}
	if c.Array.Disks == 0 {
		c.Array = disk.DefaultArray()
	}
	if c.Name == "" {
		c.Name = "pfs"
	}
	return c
}

// System is one running deployment: a metadata server plus object servers,
// all registered as nodes on the cluster network.
type System struct {
	cfg     Config
	net     *netsim.Network
	env     *sim.Env
	mdsNode string
	servers []*server
	meta    *metaServer

	// tracer, when set, receives one ClassPFSOp record per served request
	// (data servers and the metadata server alike).
	tracer func(*trace.Record)
}

// SetTracer installs (or, with nil fn, removes) a request tracer on the
// deployment. The same sink is also installed as the DISK tracer on every
// object server's RAID group, labelled with the owning server's node, so one
// call arms the two deepest layers of the causal chain.
func (s *System) SetTracer(fn func(*trace.Record)) {
	s.tracer = fn
	for _, srv := range s.servers {
		srv.array.SetTracer(srv.node, fn)
	}
}

// New builds and starts a deployment. Node names are derived from cfg.Name
// so several systems can share one network.
func New(net_ *netsim.Network, cfg Config) *System {
	cfg = cfg.fix()
	s := &System{cfg: cfg, net: net_, env: net_.Env(), mdsNode: cfg.Name + "-mds"}
	net_.AddNode(s.mdsNode)
	s.meta = newMetaServer(s)
	s.meta.start()
	for i := 0; i < cfg.Servers; i++ {
		srv := newServer(s, i)
		s.servers = append(s.servers, srv)
		srv.start()
	}
	return s
}

// Config returns the deployment configuration.
func (s *System) Config() Config { return s.cfg }

// ServerNode returns the node name of object server i.
func (s *System) ServerNode(i int) string { return fmt.Sprintf("%s-oss%d", s.cfg.Name, i) }

// MDSNode returns the metadata server's node name.
func (s *System) MDSNode() string { return s.mdsNode }

// Array returns object server i's RAID group (failure injection in tests).
func (s *System) Array(i int) *disk.Array { return s.servers[i].array }

// extentHash mirrors the vfs digest — both go through internal/fnvhash's
// allocation-free FNV-1a — so end-state comparisons are uniform.
func extentHash(path string, off, n int64) uint64 {
	return fnvhash.Int64(fnvhash.Int64(fnvhash.String(fnvhash.Offset64, path), off), n)
}

// Snapshot aggregates (size, digest, writes) for a path across all object
// servers: the end-state triple integration tests compare.
func (s *System) Snapshot(path string) (size int64, digest uint64, writes int64, ok bool) {
	if _, exists := s.meta.files[path]; !exists {
		return 0, 0, 0, false
	}
	for _, srv := range s.servers {
		if st, ok2 := srv.objects[path]; ok2 {
			if st.maxEnd > size {
				size = st.maxEnd
			}
			digest ^= st.digest
			writes += st.writes
		}
	}
	return size, digest, writes, true
}

// Paths lists files known to the metadata server, sorted.
func (s *System) Paths() []string {
	out := make([]string, 0, len(s.meta.files))
	for p := range s.meta.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// --- striping math ---

// stripeRange is a contiguous server-local byte range assigned to one
// server's object.
type stripeRange struct {
	server int
	phys   int64 // server-local byte position within the object
	length int64
}

// mapRange splits a logical byte range into per-server pieces.
// Logical unit u = off/StripeUnit is stored on server u % Servers at
// server-local position (u/Servers)*StripeUnit + off%StripeUnit, so
// sequential logical I/O stays sequential on each server's object. The
// mapping is invertible: servers reconstruct logical offsets from physical
// positions for digest bookkeeping (see logicalOffset).
func (s *System) mapRange(off, length int64) []stripeRange {
	var out []stripeRange
	su := s.cfg.StripeUnit
	n := int64(s.cfg.Servers)
	for length > 0 {
		u := off / su
		within := off % su
		chunk := su - within
		if chunk > length {
			chunk = length
		}
		out = append(out, stripeRange{
			server: int(u % n),
			phys:   (u/n)*su + within,
			length: chunk,
		})
		off += chunk
		length -= chunk
	}
	return out
}

// logicalOffset inverts the striping map for a server-local position.
func (s *System) logicalOffset(serverIdx int, phys int64) int64 {
	su := s.cfg.StripeUnit
	unitOnServer := phys / su
	within := phys % su
	logicalUnit := unitOnServer*int64(s.cfg.Servers) + int64(serverIdx)
	return logicalUnit*su + within
}

// coalesce merges physically adjacent ranges per server to cut message
// counts, the way real PFS clients batch stripe units into one RPC per
// server.
func coalesce(rs []stripeRange) map[int][]stripeRange {
	grouped := make(map[int][]stripeRange)
	for _, r := range rs {
		list := grouped[r.server]
		if n := len(list); n > 0 && list[n-1].phys+list[n-1].length == r.phys {
			list[n-1].length += r.length
			grouped[r.server] = list
			continue
		}
		grouped[r.server] = append(list, r)
	}
	return grouped
}
