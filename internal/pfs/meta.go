package pfs

import (
	"iotaxo/internal/disk"
	"iotaxo/internal/netsim"
	"iotaxo/internal/sim"
	"iotaxo/internal/trace"
)

// metaFile is the metadata server's record of one file.
type metaFile struct {
	size int64
	uid  int
	gid  int
	mode int
}

// metaServer serves opens, stats, unlinks and size updates. It journals
// namespace mutations to a local disk.
type metaServer struct {
	sys     *System
	inbox   *sim.Mailbox[netsim.Message]
	journal *disk.Disk
	files   map[string]*metaFile
	jpos    int64

	Requests int64
}

func newMetaServer(sys *System) *metaServer {
	return &metaServer{
		sys:     sys,
		inbox:   sys.net.Listen(sys.mdsNode, Port),
		journal: disk.NewDisk(sys.env, disk.DefaultDisk()),
		files:   make(map[string]*metaFile),
	}
}

// start arms the event-driven serve chain. Like the data servers, the
// metadata server runs with zero processes (the retired engine kept one
// permanent ".serve" loop): requests are received by a re-arming GetThen and
// handled as an event chain. Service stays strictly serial — the next
// request is accepted only after the current response has fully left the
// NIC, exactly where the retired serve loop cycled back into Get.
func (m *metaServer) start() { m.armServe() }

func (m *metaServer) armServe() {
	m.inbox.GetThen(func(msg netsim.Message) {
		m.Requests++
		reqSpan := msg.Span
		raw, respond := m.sys.net.ServeRequestThen(m.sys.mdsNode, msg)
		req, ok := raw.(metaReq)
		if !ok {
			respond(reqHeader, metaResp{Err: "pfs: bad metadata request"}, m.armServe)
			return
		}
		m.handleThen(req, reqSpan, func(resp metaResp) {
			respond(reqHeader, resp, m.armServe)
		})
	})
}

const oCreate = 0x40 // mirrors vfs.OCreate without importing it
const oTrunc = 0x200

// handleThen services one metadata request as an event chain: the fixed
// CPU cost first (one scheduled event, where the retired handler slept),
// then the namespace mutation with journal writes chained through the
// journal disk.
func (m *metaServer) handleThen(req metaReq, parent uint64, done func(metaResp)) {
	// Unconditional span allocation (pure counter), tracer-gated emission:
	// the PFS_meta_* record covers the whole request including the fixed
	// CPU cost and any journal writes.
	span := m.sys.env.NextSpanID()
	start := m.sys.env.Now()
	inner := done
	done = func(resp metaResp) {
		if m.sys.tracer != nil {
			ret := "0"
			if resp.Err != "" {
				ret = "-1 " + resp.Err
			}
			m.sys.tracer(&trace.Record{
				Time: start, Dur: m.sys.env.Now() - start,
				Node: m.sys.mdsNode, Rank: -1,
				Class: trace.ClassPFSOp, Name: "PFS_meta_" + req.Op,
				Ret: ret, Path: req.Path,
				Span: span, Parent: parent,
			})
		}
		inner(resp)
	}
	cost := m.sys.cfg.MetaCost
	if cost < 0 {
		cost = 0 // mirror Sleep's clamp
	}
	m.sys.env.After(cost, func() {
		switch req.Op {
		case "open":
			f, ok := m.files[req.Path]
			finish := func() {
				if req.Flags&oTrunc != 0 {
					f.size = 0
					m.journalWriteThen(func() {
						done(metaResp{Size: f.size, UID: f.uid, GID: f.gid, Mode: f.mode})
					})
					return
				}
				done(metaResp{Size: f.size, UID: f.uid, GID: f.gid, Mode: f.mode})
			}
			if !ok {
				if req.Flags&oCreate == 0 {
					done(metaResp{Err: "ENOENT"})
					return
				}
				f = &metaFile{uid: req.UID, gid: req.GID, mode: req.Mode}
				m.files[req.Path] = f
				m.journalWriteThen(finish)
				return
			}
			finish()
		case "stat":
			f, ok := m.files[req.Path]
			if !ok {
				done(metaResp{Err: "ENOENT"})
				return
			}
			done(metaResp{Size: f.size, UID: f.uid, GID: f.gid, Mode: f.mode})
		case "unlink":
			if _, ok := m.files[req.Path]; !ok {
				done(metaResp{Err: "ENOENT"})
				return
			}
			delete(m.files, req.Path)
			m.journalWriteThen(func() { done(metaResp{}) })
		case "setsize":
			f, ok := m.files[req.Path]
			if !ok {
				done(metaResp{Err: "ENOENT"})
				return
			}
			if req.Size > f.size {
				f.size = req.Size
			}
			done(metaResp{Size: f.size})
		default:
			done(metaResp{Err: "pfs: unknown metadata op " + req.Op})
		}
	})
}

// journalWriteThen appends a journal record for a namespace mutation,
// calling done when the write leaves the journal disk. As in the retired
// blocking version, the journal position advances after the write completes
// and write errors are ignored (the journal disk never fails in these
// simulations).
func (m *metaServer) journalWriteThen(done func()) {
	m.journal.WriteThen(m.jpos, 4096, func(error) {
		m.jpos += 4096
		done()
	})
}
