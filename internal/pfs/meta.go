package pfs

import (
	"iotaxo/internal/disk"
	"iotaxo/internal/netsim"
	"iotaxo/internal/sim"
)

// metaFile is the metadata server's record of one file.
type metaFile struct {
	size int64
	uid  int
	gid  int
	mode int
}

// metaServer serves opens, stats, unlinks and size updates. It journals
// namespace mutations to a local disk.
type metaServer struct {
	sys     *System
	inbox   *sim.Mailbox[netsim.Message]
	journal *disk.Disk
	files   map[string]*metaFile
	jpos    int64

	Requests int64
}

func newMetaServer(sys *System) *metaServer {
	return &metaServer{
		sys:     sys,
		inbox:   sys.net.Listen(sys.mdsNode, Port),
		journal: disk.NewDisk(sys.env, disk.DefaultDisk()),
		files:   make(map[string]*metaFile),
	}
}

func (m *metaServer) start() {
	m.sys.env.Go(m.sys.mdsNode+".serve", func(p *sim.Proc) {
		for {
			msg := m.inbox.Get(p)
			m.Requests++
			raw, respond := m.sys.net.ServeRequest(m.sys.mdsNode, msg)
			req, ok := raw.(metaReq)
			if !ok {
				respond(p, reqHeader, metaResp{Err: "pfs: bad metadata request"})
				continue
			}
			resp := m.handle(p, req)
			respond(p, reqHeader, resp)
		}
	})
}

const oCreate = 0x40 // mirrors vfs.OCreate without importing it
const oTrunc = 0x200

func (m *metaServer) handle(p *sim.Proc, req metaReq) metaResp {
	p.Sleep(m.sys.cfg.MetaCost)
	switch req.Op {
	case "open":
		f, ok := m.files[req.Path]
		if !ok {
			if req.Flags&oCreate == 0 {
				return metaResp{Err: "ENOENT"}
			}
			f = &metaFile{uid: req.UID, gid: req.GID, mode: req.Mode}
			m.files[req.Path] = f
			m.journalWrite(p)
		}
		if req.Flags&oTrunc != 0 {
			f.size = 0
			m.journalWrite(p)
		}
		return metaResp{Size: f.size, UID: f.uid, GID: f.gid, Mode: f.mode}
	case "stat":
		f, ok := m.files[req.Path]
		if !ok {
			return metaResp{Err: "ENOENT"}
		}
		return metaResp{Size: f.size, UID: f.uid, GID: f.gid, Mode: f.mode}
	case "unlink":
		if _, ok := m.files[req.Path]; !ok {
			return metaResp{Err: "ENOENT"}
		}
		delete(m.files, req.Path)
		m.journalWrite(p)
		return metaResp{}
	case "setsize":
		f, ok := m.files[req.Path]
		if !ok {
			return metaResp{Err: "ENOENT"}
		}
		if req.Size > f.size {
			f.size = req.Size
		}
		return metaResp{Size: f.size}
	default:
		return metaResp{Err: "pfs: unknown metadata op " + req.Op}
	}
}

// journalWrite appends a journal record for a namespace mutation.
func (m *metaServer) journalWrite(p *sim.Proc) {
	m.journal.Write(p, m.jpos, 4096)
	m.jpos += 4096
}
