package pfs

import (
	"fmt"

	"iotaxo/internal/sim"
	"iotaxo/internal/vfs"
)

// Client is one compute node's view of the file system: it implements
// vfs.Filesystem so kernels mount it like any other FS. Each node gets its
// own Client (state such as outstanding size updates is per node).
type Client struct {
	sys  *System
	node string
}

// NewClient returns a client for the given compute node, which must already
// be registered on the network.
func NewClient(sys *System, node string) *Client {
	return &Client{sys: sys, node: node}
}

// FSName implements vfs.Filesystem.
func (c *Client) FSName() string { return c.sys.cfg.Name }

// VNodeStackingSupported implements vfs.Stackable: the parallel personality
// bypasses the generic vnode layer (as 2007 PFS clients did), so Tracefs
// cannot stack on it; the NFS personality supports stacking.
func (c *Client) VNodeStackingSupported() bool { return c.sys.cfg.Stackable }

func respErr(s string) error {
	if s == "" {
		return nil
	}
	if s == "ENOENT" {
		return vfs.ErrNotExist
	}
	return fmt.Errorf("pfs: %s", s)
}

// metaCall round-trips one metadata request.
func (c *Client) metaCall(p *sim.Proc, req metaReq) (metaResp, error) {
	raw := c.sys.net.Call(p, c.node, c.sys.mdsNode, Port, reqHeader, req)
	resp, ok := raw.(metaResp)
	if !ok {
		return metaResp{}, fmt.Errorf("pfs: bad metadata response %T", raw)
	}
	return resp, respErr(resp.Err)
}

// Open implements vfs.Filesystem.
func (c *Client) Open(p *sim.Proc, path string, flags vfs.OpenFlag, mode int, cred vfs.Cred) (vfs.File, error) {
	resp, err := c.metaCall(p, metaReq{
		Op: "open", Path: path, Flags: int(flags), Mode: mode,
		UID: cred.UID, GID: cred.GID,
	})
	if err != nil {
		return nil, err
	}
	if flags&vfs.OTrunc != 0 && flags.CanWrite() {
		// Truncation invalidates every server's object state. One event
		// chain per server instead of a forked process (the kickoff events
		// below occupy the same schedule slots the "pfs.trunc" spawn
		// dispatches did); the caller parks until every server confirmed.
		wg := sim.NewWaitGroup(c.sys.env)
		span := p.Span() // captured: the After(0) closures run off-process
		for i := 0; i < c.sys.cfg.Servers; i++ {
			node := c.sys.ServerNode(i)
			wg.Add(1)
			c.sys.env.After(0, func() {
				c.sys.net.CallThenSpan(c.node, node, Port, reqHeader,
					truncReq{Path: path}, span, func(any) { wg.Done() })
			})
		}
		wg.Wait(p)
		resp.Size = 0
	}
	return &clientFile{
		client: c,
		path:   path,
		flags:  flags,
		attr: vfs.FileAttr{
			Path: path, Size: resp.Size, UID: resp.UID, GID: resp.GID, Mode: resp.Mode,
		},
	}, nil
}

// Stat implements vfs.Filesystem.
func (c *Client) Stat(p *sim.Proc, path string) (vfs.FileAttr, error) {
	resp, err := c.metaCall(p, metaReq{Op: "stat", Path: path})
	if err != nil {
		return vfs.FileAttr{}, err
	}
	return vfs.FileAttr{Path: path, Size: resp.Size, UID: resp.UID, GID: resp.GID, Mode: resp.Mode}, nil
}

// Unlink implements vfs.Filesystem.
func (c *Client) Unlink(p *sim.Proc, path string, cred vfs.Cred) error {
	_, err := c.metaCall(p, metaReq{Op: "unlink", Path: path, UID: cred.UID, GID: cred.GID})
	return err
}

// Statfs implements vfs.Filesystem.
func (c *Client) Statfs(p *sim.Proc) (vfs.StatfsInfo, error) {
	// Statfs is answered from the client's cached superblock: no RPC.
	p.Sleep(2 * sim.Microsecond)
	return vfs.StatfsInfo{
		FSType:      c.sys.cfg.Name,
		BlockSize:   c.sys.cfg.StripeUnit,
		BytesFree:   1 << 45,
		SupportsPFS: c.sys.cfg.Servers > 1,
	}, nil
}

// clientFile is an open handle.
type clientFile struct {
	client *Client
	path   string
	flags  vfs.OpenFlag
	attr   vfs.FileAttr
	maxEnd int64 // highest byte written through this handle
	closed bool
}

// transfer fans one logical range out to the owning servers and waits for
// all of them (one RPC per server, physically-adjacent units batched). Each
// RPC is a pure event chain — the retired engine forked one "pfs.io"
// process per server per call, the single largest source of goroutine churn
// in the simulator. The kickoff events below take the schedule slots those
// spawn dispatches occupied and the responses accumulate in arrival order,
// so the schedule (and firstErr selection) is identical.
func (f *clientFile) transfer(p *sim.Proc, offset, length int64, write bool) (int64, error) {
	sys := f.client.sys
	grouped := coalesce(sys.mapRange(offset, length))
	var total int64
	var firstErr error
	wg := sim.NewWaitGroup(sys.env)
	span := p.Span() // captured: the After(0) closures run off-process
	for srv := 0; srv < sys.cfg.Servers; srv++ {
		ranges := grouped[srv]
		if len(ranges) == 0 {
			continue
		}
		node := sys.ServerNode(srv)
		var bytes int64
		for _, r := range ranges {
			bytes += r.length
		}
		reqSize := int64(reqHeader)
		if write {
			reqSize += bytes // write data travels with the request
		}
		wg.Add(1)
		sys.env.After(0, func() {
			sys.net.CallThenSpan(f.client.node, node, Port, reqSize,
				ioReq{Path: f.path, Ranges: ranges, Write: write}, span, func(raw any) {
					defer wg.Done()
					resp, ok := raw.(ioResp)
					if !ok {
						if firstErr == nil {
							firstErr = fmt.Errorf("pfs: bad io response %T", raw)
						}
						return
					}
					if resp.Err != "" && firstErr == nil {
						firstErr = fmt.Errorf("pfs: %s", resp.Err)
					}
					total += resp.N
				})
		})
	}
	wg.Wait(p)
	return total, firstErr
}

// WriteAt implements vfs.File.
func (f *clientFile) WriteAt(p *sim.Proc, offset, length int64) (int64, error) {
	if f.closed {
		return 0, vfs.ErrBadFD
	}
	n, err := f.transfer(p, offset, length, true)
	if end := offset + n; end > f.maxEnd {
		f.maxEnd = end
	}
	if end := offset + n; end > f.attr.Size {
		f.attr.Size = end
	}
	return n, err
}

// ReadAt implements vfs.File.
func (f *clientFile) ReadAt(p *sim.Proc, offset, length int64) (int64, error) {
	if f.closed {
		return 0, vfs.ErrBadFD
	}
	if offset >= f.attr.Size {
		return 0, nil
	}
	if offset+length > f.attr.Size {
		length = f.attr.Size - offset
	}
	return f.transfer(p, offset, length, false)
}

// Sync implements vfs.File: pushes the size update to the metadata server.
func (f *clientFile) Sync(p *sim.Proc) error {
	if f.closed {
		return vfs.ErrBadFD
	}
	if f.maxEnd > 0 {
		_, err := f.client.metaCall(p, metaReq{Op: "setsize", Path: f.path, Size: f.maxEnd})
		return err
	}
	return nil
}

// Close implements vfs.File: size update + handle release.
func (f *clientFile) Close(p *sim.Proc) error {
	if f.closed {
		return vfs.ErrBadFD
	}
	err := f.Sync(p)
	f.closed = true
	return err
}

// Attr implements vfs.File.
func (f *clientFile) Attr() vfs.FileAttr { return f.attr }
