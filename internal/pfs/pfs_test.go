package pfs

import (
	"errors"
	"testing"
	"testing/quick"

	"iotaxo/internal/disk"
	"iotaxo/internal/netsim"
	"iotaxo/internal/sim"
	"iotaxo/internal/vfs"
)

// smallConfig is a fast deployment for tests.
func smallConfig() Config {
	return Config{
		Name:       "panfs",
		Servers:    4,
		StripeUnit: 64 << 10,
		Array: disk.ArrayConfig{
			Disks:      5,
			StripeUnit: 64 << 10,
			Disk:       disk.DefaultDisk(),
		},
		ServerProcs: 4,
		Stackable:   false,
		MetaCost:    100 * sim.Microsecond,
	}
}

func testDeployment(seed int64) (*sim.Env, *netsim.Network, *System, *Client) {
	env := sim.NewEnv(seed)
	net_ := netsim.New(env, netsim.GigabitEthernet())
	net_.AddNode("client0")
	sys := New(net_, smallConfig())
	cl := NewClient(sys, "client0")
	return env, net_, sys, cl
}

func TestOpenWriteCloseSnapshot(t *testing.T) {
	env, _, sys, cl := testDeployment(1)
	env.Go("app", func(p *sim.Proc) {
		f, err := cl.Open(p, "/pfs/out", vfs.OCreate|vfs.OWronly, 0o644, vfs.Cred{UID: 1})
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		if n, err := f.WriteAt(p, 0, 256<<10); n != 256<<10 || err != nil {
			t.Errorf("write: n=%d err=%v", n, err)
		}
		if err := f.Close(p); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	env.Run()
	size, digest, writes, ok := sys.Snapshot("/pfs/out")
	if !ok {
		t.Fatal("file unknown to snapshot")
	}
	if size != 256<<10 {
		t.Fatalf("size = %d, want %d", size, 256<<10)
	}
	if digest == 0 || writes == 0 {
		t.Fatalf("digest=%x writes=%d", digest, writes)
	}
}

func TestWriteStripesAcrossServers(t *testing.T) {
	env, _, sys, cl := testDeployment(1)
	env.Go("app", func(p *sim.Proc) {
		f, _ := cl.Open(p, "/pfs/big", vfs.OCreate|vfs.OWronly, 0o644, vfs.Cred{})
		// 16 stripe units: every server should hold data.
		f.WriteAt(p, 0, 16*sys.Config().StripeUnit)
		f.Close(p)
	})
	env.Run()
	for i := 0; i < sys.Config().Servers; i++ {
		if sys.servers[i].objects["/pfs/big"] == nil {
			t.Fatalf("server %d holds no data", i)
		}
	}
}

func TestReadAfterWrite(t *testing.T) {
	env, _, _, cl := testDeployment(1)
	var n int64
	env.Go("app", func(p *sim.Proc) {
		f, _ := cl.Open(p, "/pfs/f", vfs.OCreate|vfs.ORdwr, 0o644, vfs.Cred{})
		f.WriteAt(p, 0, 128<<10)
		n, _ = f.ReadAt(p, 0, 128<<10)
		f.Close(p)
	})
	env.Run()
	if n != 128<<10 {
		t.Fatalf("read n = %d", n)
	}
}

func TestStatSeesSizeAfterClose(t *testing.T) {
	env, _, _, cl := testDeployment(1)
	var before, after vfs.FileAttr
	env.Go("app", func(p *sim.Proc) {
		f, _ := cl.Open(p, "/pfs/f", vfs.OCreate|vfs.OWronly, 0o644, vfs.Cred{UID: 9, GID: 8})
		f.WriteAt(p, 0, 100<<10)
		before, _ = cl.Stat(p, "/pfs/f")
		f.Close(p)
		after, _ = cl.Stat(p, "/pfs/f")
	})
	env.Run()
	if before.Size != 0 {
		t.Fatalf("size visible before close: %d", before.Size)
	}
	if after.Size != 100<<10 || after.UID != 9 || after.GID != 8 {
		t.Fatalf("attr after close: %+v", after)
	}
}

func TestOpenMissingFails(t *testing.T) {
	env, _, _, cl := testDeployment(1)
	var err error
	env.Go("app", func(p *sim.Proc) {
		_, err = cl.Open(p, "/pfs/missing", vfs.ORdonly, 0, vfs.Cred{})
	})
	env.Run()
	if !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("err = %v", err)
	}
}

func TestUnlink(t *testing.T) {
	env, _, sys, cl := testDeployment(1)
	env.Go("app", func(p *sim.Proc) {
		f, _ := cl.Open(p, "/pfs/f", vfs.OCreate|vfs.OWronly, 0o644, vfs.Cred{})
		f.WriteAt(p, 0, 1000)
		f.Close(p)
		if err := cl.Unlink(p, "/pfs/f", vfs.Cred{}); err != nil {
			t.Errorf("unlink: %v", err)
		}
	})
	env.Run()
	if _, _, _, ok := sys.Snapshot("/pfs/f"); ok {
		t.Fatal("file still known after unlink")
	}
}

func TestTruncateClearsServers(t *testing.T) {
	env, _, sys, cl := testDeployment(1)
	env.Go("app", func(p *sim.Proc) {
		f, _ := cl.Open(p, "/pfs/f", vfs.OCreate|vfs.OWronly, 0o644, vfs.Cred{})
		f.WriteAt(p, 0, 512<<10)
		f.Close(p)
		f2, _ := cl.Open(p, "/pfs/f", vfs.OWronly|vfs.OTrunc, 0, vfs.Cred{})
		f2.Close(p)
	})
	env.Run()
	size, digest, _, ok := sys.Snapshot("/pfs/f")
	if !ok {
		t.Fatal("file vanished")
	}
	if size != 0 || digest != 0 {
		t.Fatalf("truncate left size=%d digest=%x", size, digest)
	}
}

func TestConcurrentDisjointWritersN1(t *testing.T) {
	// The paper's N-1 pattern: N clients write disjoint regions of one file.
	env := sim.NewEnv(1)
	net_ := netsim.New(env, netsim.GigabitEthernet())
	const N = 4
	var clients []*Client
	for i := 0; i < N; i++ {
		net_.AddNode(clientName(i))
	}
	sys := New(net_, smallConfig())
	for i := 0; i < N; i++ {
		clients = append(clients, NewClient(sys, clientName(i)))
	}
	const chunk = 256 << 10
	for i := 0; i < N; i++ {
		i := i
		env.Go("writer", func(p *sim.Proc) {
			f, err := clients[i].Open(p, "/pfs/shared", vfs.OCreate|vfs.OWronly, 0o644, vfs.Cred{})
			if err != nil {
				t.Errorf("open: %v", err)
				return
			}
			f.WriteAt(p, int64(i)*chunk, chunk)
			f.Close(p)
		})
	}
	env.Run()
	size, _, writes, ok := sys.Snapshot("/pfs/shared")
	if !ok || size != N*chunk {
		t.Fatalf("size = %d, want %d", size, N*chunk)
	}
	if writes != N*chunk/(64<<10) {
		t.Fatalf("writes = %d, want %d", writes, N*chunk/(64<<10))
	}
}

func clientName(i int) string {
	return "client" + string(rune('0'+i))
}

func TestEndStateIndependentOfWriterOrder(t *testing.T) {
	// Same extents written in different interleavings must produce identical
	// snapshots: the invariant tracing-overhead comparisons rely on.
	runPattern := func(delays []sim.Duration) (int64, uint64, int64) {
		env := sim.NewEnv(1)
		net_ := netsim.New(env, netsim.GigabitEthernet())
		for i := 0; i < 3; i++ {
			net_.AddNode(clientName(i))
		}
		sys := New(net_, smallConfig())
		for i := 0; i < 3; i++ {
			i := i
			cl := NewClient(sys, clientName(i))
			env.Go("w", func(p *sim.Proc) {
				p.Sleep(delays[i])
				f, _ := cl.Open(p, "/pfs/f", vfs.OCreate|vfs.OWronly, 0o644, vfs.Cred{})
				f.WriteAt(p, int64(i)*100<<10, 100<<10)
				f.Close(p)
			})
		}
		env.Run()
		s, d, w, _ := sys.Snapshot("/pfs/f")
		return s, d, w
	}
	s1, d1, w1 := runPattern([]sim.Duration{0, 0, 0})
	s2, d2, w2 := runPattern([]sim.Duration{5 * sim.Millisecond, 0, 11 * sim.Millisecond})
	if s1 != s2 || d1 != d2 || w1 != w2 {
		t.Fatalf("end state depends on interleaving: (%d,%x,%d) vs (%d,%x,%d)", s1, d1, w1, s2, d2, w2)
	}
}

func TestLargerBlocksFasterPerByte(t *testing.T) {
	// The core phenomenon behind Figures 2-4: bandwidth rises with block
	// size because per-request costs amortize.
	elapsed := func(block int64) sim.Time {
		env, _, _, cl := testDeployment(1)
		const total = 4 << 20
		var end sim.Time
		env.Go("app", func(p *sim.Proc) {
			f, _ := cl.Open(p, "/pfs/f", vfs.OCreate|vfs.OWronly, 0o644, vfs.Cred{})
			for off := int64(0); off < total; off += block {
				f.WriteAt(p, off, block)
			}
			f.Close(p)
			end = p.Now()
		})
		env.Run()
		return end
	}
	small := elapsed(16 << 10)
	large := elapsed(1 << 20)
	if large >= small {
		t.Fatalf("large blocks not faster: %v vs %v", large, small)
	}
}

func TestNFSPersonalityStacks(t *testing.T) {
	env := sim.NewEnv(1)
	net_ := netsim.New(env, netsim.GigabitEthernet())
	net_.AddNode("c")
	nfs := New(net_, DefaultNFS())
	cl := NewClient(nfs, "c")
	if !vfs.CanStack(cl) {
		t.Fatal("NFS client should support stacking")
	}
	env2, _, _, pcl := testDeployment(2)
	_ = env2
	if vfs.CanStack(pcl) {
		t.Fatal("parallel client must not support stacking")
	}
	if cl.FSName() != "nfs" {
		t.Fatalf("name = %s", cl.FSName())
	}
}

func TestStatfsPersonality(t *testing.T) {
	env, _, _, cl := testDeployment(1)
	var info vfs.StatfsInfo
	env.Go("app", func(p *sim.Proc) {
		info, _ = cl.Statfs(p)
	})
	env.Run()
	if info.FSType != "panfs" || !info.SupportsPFS {
		t.Fatalf("statfs: %+v", info)
	}
}

func TestServerRAIDFailurePropagates(t *testing.T) {
	env, _, sys, cl := testDeployment(1)
	// Fail two drives in server 0's group: writes hitting it must error.
	sys.Array(0).Disk(0).Fail()
	sys.Array(0).Disk(1).Fail()
	var err error
	env.Go("app", func(p *sim.Proc) {
		f, _ := cl.Open(p, "/pfs/f", vfs.OCreate|vfs.OWronly, 0o644, vfs.Cred{})
		_, err = f.WriteAt(p, 0, 16*sys.Config().StripeUnit)
	})
	env.Run()
	if err == nil {
		t.Fatal("write through failed RAID group did not error")
	}
}

// Property: mapRange covers the request exactly and the inverse map returns
// the original logical offsets.
func TestStripingRoundTripProperty(t *testing.T) {
	env := sim.NewEnv(1)
	net_ := netsim.New(env, netsim.GigabitEthernet())
	net_.AddNode("c")
	sys := New(net_, smallConfig())
	f := func(offRaw uint32, lenRaw uint16) bool {
		off := int64(offRaw) % (1 << 22)
		length := int64(lenRaw)%(1<<18) + 1
		pieces := sys.mapRange(off, length)
		var total int64
		cursor := off
		for _, pc := range pieces {
			logical := sys.logicalOffset(pc.server, pc.phys)
			if logical != cursor {
				return false
			}
			cursor += pc.length
			total += pc.length
		}
		return total == length
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: coalesce preserves total bytes and per-server assignment.
func TestCoalescePreservesBytesProperty(t *testing.T) {
	env := sim.NewEnv(1)
	net_ := netsim.New(env, netsim.GigabitEthernet())
	net_.AddNode("c")
	sys := New(net_, smallConfig())
	f := func(offRaw uint32, lenRaw uint32) bool {
		off := int64(offRaw) % (1 << 22)
		length := int64(lenRaw)%(1<<20) + 1
		pieces := sys.mapRange(off, length)
		var rawTotal int64
		for _, pc := range pieces {
			rawTotal += pc.length
		}
		grouped := coalesce(pieces)
		var coTotal int64
		for srv, list := range grouped {
			for _, r := range list {
				if r.server != srv {
					return false
				}
				coTotal += r.length
			}
		}
		return rawTotal == coTotal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCoalesceReducesMessages(t *testing.T) {
	env := sim.NewEnv(1)
	net_ := netsim.New(env, netsim.GigabitEthernet())
	net_.AddNode("c")
	sys := New(net_, smallConfig())
	// A write spanning 8 full rounds of the stripe: 32 units over 4 servers
	// must coalesce to exactly one range per server.
	pieces := sys.mapRange(0, 32*sys.Config().StripeUnit)
	grouped := coalesce(pieces)
	for srv, list := range grouped {
		if len(list) != 1 {
			t.Fatalf("server %d got %d ranges, want 1", srv, len(list))
		}
	}
	if len(grouped) != 4 {
		t.Fatalf("grouped servers = %d", len(grouped))
	}
}
