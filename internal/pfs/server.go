package pfs

import (
	"iotaxo/internal/disk"
	"iotaxo/internal/fnvhash"
	"iotaxo/internal/netsim"
	"iotaxo/internal/sim"
	"iotaxo/internal/trace"
)

// Wire protocol request/response types. Payloads travel by reference inside
// the simulator; Size fields on messages model the bytes on the wire.

type ioReq struct {
	Path   string
	Ranges []stripeRange // phys ranges on this server
	Write  bool
}

type ioResp struct {
	N   int64
	Err string
}

type truncReq struct{ Path string }

type metaReq struct {
	Op    string // "open", "stat", "unlink", "setsize"
	Path  string
	Flags int
	Size  int64
	UID   int
	GID   int
	Mode  int
}

type metaResp struct {
	Err  string
	Size int64
	UID  int
	GID  int
	Mode int
}

// objState is one server's view of one file's object.
type objState struct {
	maxEnd  int64  // highest logical byte written through this server
	digest  uint64 // XOR of logical-extent hashes
	writes  int64
	physEnd int64 // highest server-local byte (for reads)
}

// server is one object storage server: a node, a RAID group, and a pool of
// request handlers.
type server struct {
	sys   *System
	idx   int
	node  string
	array *disk.Array
	inbox *sim.Mailbox[netsim.Message]
	pool  *sim.Resource

	objects map[string]*objState

	// Stats.
	Requests int64
}

func newServer(sys *System, idx int) *server {
	node := sys.ServerNode(idx)
	sys.net.AddNode(node)
	return &server{
		sys:     sys,
		idx:     idx,
		node:    node,
		array:   disk.NewArray(sys.env, sys.cfg.Array),
		inbox:   sys.net.Listen(node, Port),
		pool:    sim.NewResource(sys.env, sys.cfg.ServerProcs),
		objects: make(map[string]*objState),
	}
}

// start arms the event-driven dispatch chain. The server runs with zero
// processes: requests are received by a re-arming GetThen on the inbox,
// admitted through the handler pool with AcquireThen, and handled as pure
// event chains — no goroutine is created per request (the retired engine
// forked one short-lived ".worker" process per message, plus a permanent
// ".dispatch" loop).
//
// The event sequencing mirrors the retired process engine exactly: the
// GetThen callback fires where the dispatch process woke, the After(0)
// kickoff below occupies the slot of the worker's spawn-dispatch event, and
// AcquireThen queues on the same FIFO the worker's Acquire parked on — so
// simulated timestamps are byte-identical while goroutine churn drops to
// zero.
func (s *server) start() { s.armDispatch() }

// armDispatch registers the next-request callback. Re-arming from inside the
// callback mirrors the dispatch loop cycling back into Get, including
// consuming a burst of queued messages within one wake.
func (s *server) armDispatch() {
	s.inbox.GetThen(func(msg netsim.Message) {
		s.Requests++
		reqSpan := msg.Span
		req, respond := s.sys.net.ServeRequestThen(s.node, msg)
		s.sys.env.After(0, func() {
			s.pool.AcquireThen(func() {
				s.handleThen(req, reqSpan, respond, s.pool.Release)
			})
		})
		s.armDispatch()
	})
}

// handleThen services one request while holding a pool unit; done releases
// it once the response has fully left the server's NIC (the same point the
// retired worker's deferred Release ran).
func (s *server) handleThen(req any, parent uint64, respond func(int64, any, func()), done func()) {
	// Span allocation is unconditional (pure counter, schedule-neutral);
	// record emission stays tracer-gated.
	span := s.sys.env.NextSpanID()
	start := s.sys.env.Now()
	switch r := req.(type) {
	case ioReq:
		s.handleIOThen(r, span, func(n int64, err error) {
			if s.sys.tracer != nil {
				name := "PFS_read"
				if r.Write {
					name = "PFS_write"
				}
				ret := "0"
				if err != nil {
					ret = "-1 " + err.Error()
				}
				var off int64
				if len(r.Ranges) > 0 {
					off = s.sys.logicalOffset(s.idx, r.Ranges[0].phys)
				}
				s.sys.tracer(&trace.Record{
					Time: start, Dur: s.sys.env.Now() - start,
					Node: s.node, Rank: -1,
					Class: trace.ClassPFSOp, Name: name, Ret: ret,
					Path: r.Path, Offset: off, Bytes: n,
					Span: span, Parent: parent,
				})
			}
			resp := ioResp{N: n}
			if err != nil {
				resp.Err = err.Error()
			}
			respSize := int64(reqHeader)
			if !r.Write {
				respSize += n // read data travels back
			}
			respond(respSize, resp, done)
		})
	case truncReq:
		delete(s.objects, r.Path)
		if s.sys.tracer != nil {
			s.sys.tracer(&trace.Record{
				Time: start, Dur: 0, Node: s.node, Rank: -1,
				Class: trace.ClassPFSOp, Name: "PFS_trunc", Ret: "0",
				Path: r.Path, Span: span, Parent: parent,
			})
		}
		respond(reqHeader, ioResp{}, done)
	default:
		respond(reqHeader, ioResp{Err: "pfs: bad request"}, done)
	}
}

// handleIOThen runs the per-range transfers serially as an event chain,
// mirroring the retired worker's loop: digest state updates after each write
// completes, reads clamp against the object's physical end as it stands when
// the range is reached, and the first error aborts the remaining ranges.
func (s *server) handleIOThen(r ioReq, span uint64, done func(int64, error)) {
	st, ok := s.objects[r.Path]
	if !ok {
		st = &objState{}
		s.objects[r.Path] = st
	}
	base := objectBase(r.Path)
	var total int64
	var step func(i int)
	step = func(i int) {
		for ; i < len(r.Ranges); i++ {
			rg := r.Ranges[i]
			next := i + 1
			if r.Write {
				s.array.WriteThenSpan(base+rg.phys, rg.length, span, func(err error) {
					if err != nil {
						done(total, err)
						return
					}
					s.recordWrite(st, r.Path, rg)
					total += rg.length
					step(next)
				})
				return
			}
			length := rg.length
			if rg.phys >= st.physEnd {
				continue // hole / EOF on this server
			}
			if rg.phys+length > st.physEnd {
				length = st.physEnd - rg.phys
			}
			add := length
			s.array.ReadThenSpan(base+rg.phys, length, span, func(err error) {
				if err != nil {
					done(total, err)
					return
				}
				total += add
				step(next)
			})
			return
		}
		done(total, nil)
	}
	step(0)
}

// objectBase allocates each file its own extent on the array so distinct
// files do not false-share physical positions (and stripe rows).
func objectBase(path string) int64 {
	const extent = int64(1) << 36 // 64 GiB per object extent
	return int64(fnvhash.String(fnvhash.Offset64, path)%1024) * extent
}

// recordWrite updates digest state, decomposing the physical range into
// stripe-unit-aligned pieces whose logical offsets are reconstructed via the
// inverse striping map.
func (s *server) recordWrite(st *objState, path string, rg stripeRange) {
	su := s.sys.cfg.StripeUnit
	phys, length := rg.phys, rg.length
	for length > 0 {
		within := phys % su
		chunk := su - within
		if chunk > length {
			chunk = length
		}
		logOff := s.sys.logicalOffset(s.idx, phys)
		st.digest ^= extentHash(path, logOff, chunk)
		st.writes++
		if end := logOff + chunk; end > st.maxEnd {
			st.maxEnd = end
		}
		phys += chunk
		length -= chunk
	}
	if rg.phys+rg.length > st.physEnd {
		st.physEnd = rg.phys + rg.length
	}
}
