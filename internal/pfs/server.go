package pfs

import (
	"iotaxo/internal/disk"
	"iotaxo/internal/fnvhash"
	"iotaxo/internal/netsim"
	"iotaxo/internal/sim"
)

// Wire protocol request/response types. Payloads travel by reference inside
// the simulator; Size fields on messages model the bytes on the wire.

type ioReq struct {
	Path   string
	Ranges []stripeRange // phys ranges on this server
	Write  bool
}

type ioResp struct {
	N   int64
	Err string
}

type truncReq struct{ Path string }

type metaReq struct {
	Op    string // "open", "stat", "unlink", "setsize"
	Path  string
	Flags int
	Size  int64
	UID   int
	GID   int
	Mode  int
}

type metaResp struct {
	Err  string
	Size int64
	UID  int
	GID  int
	Mode int
}

// objState is one server's view of one file's object.
type objState struct {
	maxEnd  int64  // highest logical byte written through this server
	digest  uint64 // XOR of logical-extent hashes
	writes  int64
	physEnd int64 // highest server-local byte (for reads)
}

// server is one object storage server: a node, a RAID group, and a pool of
// request handlers.
type server struct {
	sys   *System
	idx   int
	node  string
	array *disk.Array
	inbox *sim.Mailbox[netsim.Message]
	pool  *sim.Resource

	objects map[string]*objState

	// Stats.
	Requests int64
}

func newServer(sys *System, idx int) *server {
	node := sys.ServerNode(idx)
	sys.net.AddNode(node)
	return &server{
		sys:     sys,
		idx:     idx,
		node:    node,
		array:   disk.NewArray(sys.env, sys.cfg.Array),
		inbox:   sys.net.Listen(node, Port),
		pool:    sim.NewResource(sys.env, sys.cfg.ServerProcs),
		objects: make(map[string]*objState),
	}
}

// start launches the dispatch loop.
func (s *server) start() {
	s.sys.env.Go(s.node+".dispatch", func(p *sim.Proc) {
		for {
			msg := s.inbox.Get(p)
			s.Requests++
			req, respond := s.sys.net.ServeRequest(s.node, msg)
			s.sys.env.Go(s.node+".worker", func(w *sim.Proc) {
				s.pool.Acquire(w)
				defer s.pool.Release()
				s.handle(w, req, respond)
			})
		}
	})
}

func (s *server) handle(p *sim.Proc, req any, respond func(*sim.Proc, int64, any)) {
	switch r := req.(type) {
	case ioReq:
		n, err := s.handleIO(p, r)
		resp := ioResp{N: n}
		if err != nil {
			resp.Err = err.Error()
		}
		respSize := int64(reqHeader)
		if !r.Write {
			respSize += n // read data travels back
		}
		respond(p, respSize, resp)
	case truncReq:
		delete(s.objects, r.Path)
		respond(p, reqHeader, ioResp{})
	default:
		respond(p, reqHeader, ioResp{Err: "pfs: bad request"})
	}
}

func (s *server) handleIO(p *sim.Proc, r ioReq) (int64, error) {
	st, ok := s.objects[r.Path]
	if !ok {
		st = &objState{}
		s.objects[r.Path] = st
	}
	base := objectBase(r.Path)
	var total int64
	for _, rg := range r.Ranges {
		if r.Write {
			if err := s.array.Write(p, base+rg.phys, rg.length); err != nil {
				return total, err
			}
			s.recordWrite(st, r.Path, rg)
			total += rg.length
		} else {
			length := rg.length
			if rg.phys >= st.physEnd {
				continue // hole / EOF on this server
			}
			if rg.phys+length > st.physEnd {
				length = st.physEnd - rg.phys
			}
			if err := s.array.Read(p, base+rg.phys, length); err != nil {
				return total, err
			}
			total += length
		}
	}
	return total, nil
}

// objectBase allocates each file its own extent on the array so distinct
// files do not false-share physical positions (and stripe rows).
func objectBase(path string) int64 {
	const extent = int64(1) << 36 // 64 GiB per object extent
	return int64(fnvhash.String(fnvhash.Offset64, path)%1024) * extent
}

// recordWrite updates digest state, decomposing the physical range into
// stripe-unit-aligned pieces whose logical offsets are reconstructed via the
// inverse striping map.
func (s *server) recordWrite(st *objState, path string, rg stripeRange) {
	su := s.sys.cfg.StripeUnit
	phys, length := rg.phys, rg.length
	for length > 0 {
		within := phys % su
		chunk := su - within
		if chunk > length {
			chunk = length
		}
		logOff := s.sys.logicalOffset(s.idx, phys)
		st.digest ^= extentHash(path, logOff, chunk)
		st.writes++
		if end := logOff + chunk; end > st.maxEnd {
			st.maxEnd = end
		}
		phys += chunk
		length -= chunk
	}
	if rg.phys+rg.length > st.physEnd {
		st.physEnd = rg.phys + rg.length
	}
}
