package aggregate

import (
	"strings"
	"testing"

	"iotaxo/internal/cluster"
	"iotaxo/internal/lanltrace"
	"iotaxo/internal/mpi"
	"iotaxo/internal/partrace"
	"iotaxo/internal/replay"
	"iotaxo/internal/sim"
	"iotaxo/internal/trace"
	"iotaxo/internal/workload"
)

func mkRecords(n int, class trace.EventClass, startAt sim.Time) []trace.Record {
	out := make([]trace.Record, n)
	for i := range out {
		out[i] = trace.Record{
			Time:  startAt + sim.Time(i)*sim.Millisecond,
			Class: class,
			Name:  "SYS_pwrite",
			Path:  "/pfs/data",
			Bytes: 4096,
			Rank:  i % 2,
		}
	}
	return out
}

func TestMergedOrdersAcrossSources(t *testing.T) {
	a := New(
		FromRecords("A", mkRecords(3, trace.ClassSyscall, 10*sim.Millisecond), Capabilities{}),
		FromRecords("B", mkRecords(3, trace.ClassFSOp, 0), Capabilities{}),
	)
	events, err := a.Merged()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 6 {
		t.Fatalf("events = %d", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].Time < events[i-1].Time {
			t.Fatal("not time ordered")
		}
	}
	if events[0].Source != "B" {
		t.Fatalf("first event source = %s", events[0].Source)
	}
}

func TestSelectFilters(t *testing.T) {
	recs := mkRecords(10, trace.ClassSyscall, 0)
	recs[3].Path = "/home/other"
	recs[4].Bytes = 0
	a := New(FromRecords("A", recs, Capabilities{}))

	got, _ := a.Select(Query{PathGlob: "/pfs/*", Rank: -1})
	if len(got) != 9 {
		t.Fatalf("path filter: %d", len(got))
	}
	got, _ = a.Select(Query{OnlyIO: true, Rank: -1})
	if len(got) != 9 {
		t.Fatalf("io filter: %d", len(got))
	}
	got, _ = a.Select(Query{Rank: 1})
	if len(got) != 5 {
		t.Fatalf("rank filter: %d", len(got))
	}
	got, _ = a.Select(Query{From: 5 * sim.Millisecond, To: 8 * sim.Millisecond, Rank: -1})
	if len(got) != 3 {
		t.Fatalf("window filter: %d", len(got))
	}
	got, _ = a.Select(Query{Classes: []trace.EventClass{trace.ClassFSOp}, Rank: -1})
	if len(got) != 0 {
		t.Fatalf("class filter: %d", len(got))
	}
	got, _ = a.Select(Query{Source: "nope", Rank: -1})
	if len(got) != 0 {
		t.Fatalf("source filter: %d", len(got))
	}
}

func TestLANLTraceSourceCorrectsSkew(t *testing.T) {
	cfg := cluster.Small()
	cfg.MaxSkew = 200 * sim.Millisecond
	c := cluster.New(cfg)
	fw := lanltrace.New(lanltrace.StraceConfig())
	params := workload.Params{
		Pattern: workload.N1Strided, BlockSize: 64 << 10, NObj: 2, Path: "/pfs/f",
	}
	rep := fw.Run(c.World, params.CommandLine(), func(p *sim.Proc, r *mpi.Rank) {
		workload.Program(p, r, params, nil)
	})
	src := FromLANLTrace(rep)
	if !src.Capabilities().SkewCorrected {
		t.Fatal("LANL-Trace source should be skew corrected")
	}
	recs, err := src.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no records")
	}
	// Corrected first-barrier-adjacent syscalls across nodes should sit
	// within a few ms of each other despite 200 ms skews: check the spread
	// of the earliest record per node.
	first := make(map[string]sim.Time)
	for _, r := range recs {
		if t0, ok := first[r.Node]; !ok || r.Time < t0 {
			first[r.Node] = r.Time
		}
	}
	var lo, hi sim.Time
	started := false
	for _, t0 := range first {
		if !started {
			lo, hi, started = t0, t0, true
			continue
		}
		if t0 < lo {
			lo = t0
		}
		if t0 > hi {
			hi = t0
		}
	}
	if hi-lo > 50*sim.Millisecond {
		t.Fatalf("corrected per-node starts spread %v, want well under the 200ms skew", hi-lo)
	}
}

func TestReplayableSource(t *testing.T) {
	factory := func() *cluster.Cluster {
		cfg := cluster.Small()
		cfg.MaxSkew = 0
		cfg.MaxDrift = 0
		return cluster.New(cfg)
	}
	params := workload.Params{
		Pattern: workload.N1Strided, BlockSize: 64 << 10, NObj: 2,
		Path: "/pfs/f", BarrierEvery: 1,
	}
	gen, err := partrace.New(partrace.DefaultConfig()).Generate(factory, func(p *sim.Proc, r *mpi.Rank) {
		workload.Program(p, r, params, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	src := FromReplayable(gen.Trace)
	if !src.Capabilities().Replayable {
		t.Fatal("replayable capability missing")
	}
	recs, err := src.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != gen.Trace.OpCount() {
		t.Fatalf("records = %d, ops = %d", len(recs), gen.Trace.OpCount())
	}
	for _, r := range recs {
		if r.Class != trace.ClassMPI {
			t.Fatalf("class = %v", r.Class)
		}
	}
	_ = replay.Fidelity // keep import meaningful
}

func TestSummaries(t *testing.T) {
	a := New(
		FromRecords("A", mkRecords(4, trace.ClassSyscall, 0), Capabilities{}),
		FromRecords("B", mkRecords(2, trace.ClassFSOp, sim.Second), Capabilities{}),
	)
	sums, err := a.Summarize()
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 2 || sums[0].Records != 4 || sums[1].Records != 2 {
		t.Fatalf("sums: %+v", sums)
	}
	if sums[0].IOBytes != 4*4096 {
		t.Fatalf("io bytes = %d", sums[0].IOBytes)
	}
	out := FormatSummaries(sums)
	if !strings.Contains(out, "A") || !strings.Contains(out, "B") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestTimelineCSV(t *testing.T) {
	a := New(FromRecords("A", mkRecords(2, trace.ClassSyscall, 0), Capabilities{}))
	csv, err := a.TimelineCSV()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 || !strings.HasPrefix(lines[0], "time_ns,") {
		t.Fatalf("csv:\n%s", csv)
	}
}

func TestSourcesMutationIsolation(t *testing.T) {
	recs := mkRecords(1, trace.ClassSyscall, 0)
	src := FromRecords("A", recs, Capabilities{})
	got, _ := src.Records()
	got[0].Path = "/mutated"
	again, _ := src.Records()
	if again[0].Path == "/mutated" {
		t.Fatal("source exposes shared storage")
	}
}

func TestAddAndSources(t *testing.T) {
	a := New()
	a.Add(FromRecords("X", nil, Capabilities{}))
	a.Add(FromRecords("Y", nil, Capabilities{}))
	names := a.Sources()
	if len(names) != 2 || names[0] != "X" || names[1] != "Y" {
		t.Fatalf("sources: %v", names)
	}
}
