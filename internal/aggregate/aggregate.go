// Package aggregate implements the paper's future-work proposal (Section 6):
// "We intend to build a common framework for diverse trace aggregation.
// With such a framework, we would be able to present a single trace-data
// API to developers for use while building trace analysis tools or for use
// directly in distributed applications."
//
// Source is that single trace-data API: every tracing framework in the
// repository exposes its data through an adapter, and Aggregator merges any
// mix of sources onto one timeline (applying per-node clock correction when
// the source supports it) with provenance preserved, queryable by event
// class, path glob, rank and time window.
package aggregate

import (
	"fmt"
	"io"
	"path"
	"sort"
	"strings"

	"iotaxo/internal/analysis"
	"iotaxo/internal/clocks"
	"iotaxo/internal/lanltrace"
	"iotaxo/internal/replay"
	"iotaxo/internal/sim"
	"iotaxo/internal/trace"
	"iotaxo/internal/tracefs"
)

// Capabilities describes what a source's data can support, mirroring the
// taxonomy axes that matter to analysis tools.
type Capabilities struct {
	EventClasses  []trace.EventClass
	SkewCorrected bool // timestamps mapped onto a shared timeline
	Replayable    bool
}

// Source is the single trace-data API.
type Source interface {
	// Name identifies the producing framework.
	Name() string
	// Open returns a streaming cursor over the source's events. Each call
	// returns an independent cursor; records are safe for the caller to
	// mutate.
	Open() (trace.Source, error)
	// Records returns the source's events. Implementations return copies;
	// callers may mutate the result.
	Records() ([]trace.Record, error)
	// Capabilities describes the data.
	Capabilities() Capabilities
}

// Event is one record with provenance.
type Event struct {
	trace.Record
	Source string
}

// --- adapters ---

// streamSource is the generic adapter: open returns a fresh streaming
// cursor each call. Each open func must yield records the caller may
// mutate — sources backed by shared storage clone on the way out (lead
// with trace.CloneTransform); decoders and generators that produce fresh
// records per pull need not pay for a second copy.
type streamSource struct {
	name string
	caps Capabilities
	open func() (trace.Source, error)
}

func (s *streamSource) Name() string               { return s.name }
func (s *streamSource) Capabilities() Capabilities { return s.caps }

func (s *streamSource) Open() (trace.Source, error) {
	return s.open()
}

func (s *streamSource) Records() ([]trace.Record, error) {
	src, err := s.Open()
	if err != nil {
		return nil, err
	}
	recs, err := trace.Collect(src)
	if err != nil {
		return nil, err
	}
	if recs == nil {
		recs = []trace.Record{}
	}
	return recs, nil
}

// FromRecords wraps a plain record slice (e.g. parsed from a file).
func FromRecords(name string, recs []trace.Record, caps Capabilities) Source {
	return &streamSource{
		name: name,
		caps: caps,
		open: func() (trace.Source, error) {
			// The slice's storage is shared; clone so callers may mutate.
			return trace.TransformSource(trace.SliceSource(recs), trace.CloneTransform), nil
		},
	}
}

// FromStream wraps a streaming source factory directly — the adapter for
// on-disk traces that should never be materialized whole. The factory's
// records must be safe for callers to mutate; wrap shared storage with
// trace.CloneTransform.
func FromStream(name string, caps Capabilities, open func() (trace.Source, error)) Source {
	return &streamSource{name: name, caps: caps, open: open}
}

// FromLANLTrace adapts a LANL-Trace report. Skew correction uses the
// report's own barrier timing job; records are mapped onto rank 0's clock —
// the analysis the aggregate timing output exists for.
func FromLANLTrace(rep *lanltrace.Report) Source {
	caps := Capabilities{
		EventClasses:  []trace.EventClass{trace.ClassSyscall, trace.ClassLibCall, trace.ClassMPI},
		SkewCorrected: true,
	}
	return &streamSource{
		name: "LANL-Trace",
		caps: caps,
		open: func() (trace.Source, error) {
			est, err := rep.ClockEstimates()
			if err != nil {
				// No timing job: fall back to raw local timestamps. The
				// collectors' storage is shared, so clone on the way out
				// (CorrectingSource below already does).
				return trace.TransformSource(rep.RecordSource(), trace.CloneTransform), nil
			}
			return analysis.CorrectingSource(rep.RecordSource(), est), nil
		},
	}
}

// FromTracefs adapts a mounted Tracefs layer. Tracefs has no parallel
// awareness, so records stay on the node's local clock; node labels the
// records since the layer itself does not know its host.
func FromTracefs(fs *tracefs.FS, node string, clock *clocks.Clock) Source {
	return &streamSource{
		name: "Tracefs",
		caps: Capabilities{
			EventClasses: []trace.EventClass{trace.ClassFSOp},
		},
		open: func() (trace.Source, error) {
			label := trace.Transform(func(r *trace.Record) (bool, error) {
				if r.Node == "" {
					r.Node = node
				}
				return true, nil
			})
			return trace.TransformSource(fs.OpenTrace(), label), nil
		},
	}
}

// FromReplayable adapts a //TRACE replayable trace: each op becomes an MPI
// I/O record with timestamps reconstructed from the cumulative think times
// (the best the format carries).
func FromReplayable(tr *replay.Trace) Source {
	return &streamSource{
		name: "//TRACE",
		caps: Capabilities{
			EventClasses: []trace.EventClass{trace.ClassMPI},
			Replayable:   true,
		},
		open: func() (trace.Source, error) {
			return &replayableSource{tr: tr}, nil
		},
	}
}

// replayableSource generates one MPI record per op on demand, instead of
// expanding the whole replayable trace up front.
type replayableSource struct {
	tr   *replay.Trace
	rank int
	op   int
	t    sim.Time
}

func (s *replayableSource) Next() (trace.Record, error) {
	for s.rank < len(s.tr.Ops) {
		ops := s.tr.Ops[s.rank]
		if s.op >= len(ops) {
			s.rank++
			s.op = 0
			s.t = 0
			continue
		}
		op := ops[s.op]
		s.op++
		s.t += op.Compute
		name := ""
		switch op.Kind {
		case replay.OpOpen:
			name = "MPI_File_open"
		case replay.OpWrite:
			name = "MPI_File_write_at"
		case replay.OpRead:
			name = "MPI_File_read_at"
		case replay.OpClose:
			name = "MPI_File_close"
		}
		return trace.Record{
			Time:   s.t,
			Rank:   s.rank,
			Class:  trace.ClassMPI,
			Name:   name,
			Path:   op.Path,
			Offset: op.Offset,
			Bytes:  op.Bytes,
			Ret:    "0",
		}, nil
	}
	return trace.Record{}, io.EOF
}

// --- the aggregator ---

// Aggregator merges sources.
type Aggregator struct {
	sources []Source
}

// New returns an aggregator over the given sources.
func New(sources ...Source) *Aggregator {
	return &Aggregator{sources: sources}
}

// Add appends a source.
func (a *Aggregator) Add(s Source) { a.sources = append(a.sources, s) }

// Sources lists source names in order.
func (a *Aggregator) Sources() []string {
	out := make([]string, len(a.sources))
	for i, s := range a.sources {
		out[i] = s.Name()
	}
	return out
}

// Merged returns all events ordered by timestamp with provenance. Events
// are pulled through each source's streaming cursor; the slice exists only
// because a global sort needs random access.
func (a *Aggregator) Merged() ([]Event, error) {
	var out []Event
	for _, s := range a.sources {
		src, err := s.Open()
		if err != nil {
			return nil, fmt.Errorf("aggregate: source %s: %w", s.Name(), err)
		}
		name := s.Name()
		_, err = trace.Copy(trace.SinkFunc(func(r *trace.Record) error {
			out = append(out, Event{Record: *r, Source: name})
			return nil
		}), src)
		if err != nil {
			return nil, fmt.Errorf("aggregate: source %s: %w", name, err)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out, nil
}

// Query selects events. Zero values mean "any".
type Query struct {
	Classes  []trace.EventClass
	PathGlob string
	Rank     int // -1 = any
	From, To sim.Time
	OnlyIO   bool
	Source   string
}

// matches reports whether an event satisfies the query.
func (q Query) matches(e *Event) bool {
	if len(q.Classes) > 0 {
		ok := false
		for _, c := range q.Classes {
			if e.Class == c {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if q.PathGlob != "" {
		ok, _ := path.Match(q.PathGlob, e.Path)
		if !ok && strings.HasSuffix(q.PathGlob, "/*") {
			ok = strings.HasPrefix(e.Path, strings.TrimSuffix(q.PathGlob, "*"))
		}
		if !ok {
			return false
		}
	}
	if q.Rank >= 0 && e.Rank != q.Rank {
		return false
	}
	if q.From != 0 && e.Time < q.From {
		return false
	}
	if q.To != 0 && e.Time >= q.To {
		return false
	}
	if q.OnlyIO && !e.IsIO() {
		return false
	}
	if q.Source != "" && e.Source != q.Source {
		return false
	}
	return true
}

// Select returns the matching events in timestamp order.
func (a *Aggregator) Select(q Query) ([]Event, error) {
	all, err := a.Merged()
	if err != nil {
		return nil, err
	}
	var out []Event
	for i := range all {
		if q.matches(&all[i]) {
			out = append(out, all[i])
		}
	}
	return out, nil
}

// Summary aggregates per-source statistics: the quick health check an
// analysis tool runs before digging in.
type Summary struct {
	Source  string
	Records int
	IOBytes int64
	First   sim.Time
	Last    sim.Time
	Classes map[trace.EventClass]int
}

// Summarize reports per-source statistics, folding each source's stream in
// O(1) memory.
func (a *Aggregator) Summarize() ([]Summary, error) {
	var out []Summary
	for _, s := range a.sources {
		src, err := s.Open()
		if err != nil {
			return nil, fmt.Errorf("aggregate: source %s: %w", s.Name(), err)
		}
		sum := Summary{Source: s.Name(), Classes: make(map[trace.EventClass]int)}
		_, err = trace.Copy(trace.SinkFunc(func(r *trace.Record) error {
			sum.Records++
			sum.Classes[r.Class]++
			if r.IsIO() {
				sum.IOBytes += r.Bytes
			}
			if sum.Records == 1 || r.Time < sum.First {
				sum.First = r.Time
			}
			if end := r.Time + r.Dur; end > sum.Last {
				sum.Last = end
			}
			return nil
		}), src)
		if err != nil {
			return nil, fmt.Errorf("aggregate: source %s: %w", s.Name(), err)
		}
		out = append(out, sum)
	}
	return out, nil
}

// FormatSummaries renders the per-source overview.
func FormatSummaries(sums []Summary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %12s %16s %16s %s\n",
		"source", "records", "io bytes", "first", "last", "classes")
	for _, s := range sums {
		var classes []string
		for c, n := range s.Classes {
			classes = append(classes, fmt.Sprintf("%s:%d", c, n))
		}
		sort.Strings(classes)
		fmt.Fprintf(&b, "%-12s %8d %12d %16v %16v %s\n",
			s.Source, s.Records, s.IOBytes, s.First, s.Last, strings.Join(classes, " "))
	}
	return b.String()
}

// TimelineCSV exports the merged timeline for external tooling.
func (a *Aggregator) TimelineCSV() (string, error) {
	events, err := a.Merged()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("time_ns,source,node,rank,class,name,path,offset,bytes,dur_ns\n")
	for _, e := range events {
		fmt.Fprintf(&b, "%d,%s,%s,%d,%s,%s,%s,%d,%d,%d\n",
			int64(e.Time), e.Source, e.Node, e.Rank, e.Class, e.Name,
			e.Path, e.Offset, e.Bytes, int64(e.Dur))
	}
	return b.String(), nil
}
