package multilayer

import (
	"reflect"
	"testing"

	"iotaxo/internal/cluster"
	"iotaxo/internal/mpi"
	"iotaxo/internal/sim"
	"iotaxo/internal/workload"
)

// TestSpanJoinMatchesWindowedOracle pins the tentpole refactor: the exact
// span-join Analyze must reproduce the slack-windowed correlation (kept as
// AnalyzeWindowed, the oracle) bit for bit across a spread of workload
// shapes. Run under -race in CI, this also exercises the tracer hooks and
// span allocator for data races.
func TestSpanJoinMatchesWindowedOracle(t *testing.T) {
	trials := []workload.Params{
		{Pattern: workload.N1NonStrided, BlockSize: 64 << 10, NObj: 3, Path: "/pfs/a.out"},
		{Pattern: workload.N1Strided, BlockSize: 128 << 10, NObj: 4, Path: "/pfs/b.out"},
		{Pattern: workload.N1Strided, BlockSize: 32 << 10, NObj: 6, Path: "/pfs/c.out", BarrierEvery: 2},
		{Pattern: workload.NToN, BlockSize: 256 << 10, NObj: 2, Path: "/pfs/d.out"},
		{Pattern: workload.NToN, BlockSize: 16 << 10, NObj: 5, Path: "/pfs/e.out", ReadBack: true},
		{Pattern: workload.N1NonStrided, BlockSize: 8 << 10, NObj: 8, Path: "/pfs/f.out", ReadBack: true, BarrierEvery: 3},
	}
	for _, params := range trials {
		params := params
		t.Run(params.Pattern.String()+"/"+params.Path, func(t *testing.T) {
			t.Parallel()
			cfg := cluster.Small()
			cfg.MaxSkew = 0
			cfg.MaxDrift = 0
			c := cluster.New(cfg)
			s := Attach(c)
			c.World.RunToCompletion(func(p *sim.Proc, r *mpi.Rank) {
				workload.Program(p, r, params, nil)
			})
			exact := s.Analyze()
			oracle := s.AnalyzeWindowed()
			if exact.Orphan != oracle.Orphan {
				t.Fatalf("orphans: span join %d, windowed oracle %d", exact.Orphan, oracle.Orphan)
			}
			if !reflect.DeepEqual(exact.Calls, oracle.Calls) {
				if len(exact.Calls) != len(oracle.Calls) {
					t.Fatalf("call counts: span join %d, windowed oracle %d",
						len(exact.Calls), len(oracle.Calls))
				}
				for i := range exact.Calls {
					if !reflect.DeepEqual(exact.Calls[i], oracle.Calls[i]) {
						t.Fatalf("call %d diverges:\n span join: %+v\n  windowed: %+v",
							i, exact.Calls[i], oracle.Calls[i])
					}
				}
			}
			if len(exact.Calls) == 0 {
				t.Fatal("no correlated calls — workload did not trace")
			}
		})
	}
}
