package multilayer

import (
	"iotaxo/internal/cluster"
	"iotaxo/internal/core"
	"iotaxo/internal/framework"
	"iotaxo/internal/trace"
	"iotaxo/internal/workload"
)

// AsFramework adapts the multi-layer analyzer to the common framework
// registry interface: attaching instruments every rank at the library,
// syscall, and VFS boundaries simultaneously.
func AsFramework() framework.Framework { return fwAdapter{} }

func init() { framework.Register(AsFramework()) }

type fwAdapter struct{}

func (fwAdapter) Name() string                         { return "Multi-Layer Trace Analysis" }
func (fwAdapter) Classification() *core.Classification { return Classification() }

func (fwAdapter) Attach(c *cluster.Cluster) framework.Session {
	return &fwSession{c: c, ml: Attach(c)}
}

type fwSession struct {
	c  *cluster.Cluster
	ml *Session
}

// Run executes the workload with all three probe layers active.
func (s *fwSession) Run(spec workload.Spec) (framework.Report, error) {
	res := framework.RunWorkload(s.c, spec)
	rep := framework.Report{
		Result:         res,
		TracingElapsed: res.Elapsed,
		Runs:           1,
	}
	count := func(recs []trace.Record) {
		rep.TraceEvents += int64(len(recs))
		for i := range recs {
			rep.TraceBytes += recs[i].EstimatedTextSize()
		}
	}
	for _, col := range s.ml.lib {
		count(col.Records)
	}
	for _, col := range s.ml.sys {
		count(col.Records)
	}
	for _, fl := range s.ml.fs {
		count(fl.col.Records)
	}
	return rep, nil
}

// Sources streams the three per-layer trace files.
func (s *fwSession) Sources() []trace.Source {
	return []trace.Source{
		s.ml.LayerSource(LayerLibrary),
		s.ml.LayerSource(LayerSyscall),
		s.ml.LayerSource(LayerFS),
	}
}

// Analyzer exposes the attached multi-layer session for cross-layer
// latency attribution (Analyze, Totals).
func (s *fwSession) Analyzer() *Session { return s.ml }
