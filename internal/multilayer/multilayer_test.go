package multilayer

import (
	"strings"
	"testing"

	"iotaxo/internal/cluster"
	"iotaxo/internal/mpi"
	"iotaxo/internal/sim"
	"iotaxo/internal/workload"
)

func testCluster() *cluster.Cluster {
	cfg := cluster.Small()
	cfg.MaxSkew = 0
	cfg.MaxDrift = 0
	return cluster.New(cfg)
}

func runTraced(t *testing.T) (*Session, *cluster.Cluster) {
	t.Helper()
	c := testCluster()
	s := Attach(c)
	params := workload.Params{
		Pattern:   workload.N1Strided,
		BlockSize: 128 << 10,
		NObj:      4,
		Path:      "/pfs/ml.out",
	}
	c.World.RunToCompletion(func(p *sim.Proc, r *mpi.Rank) {
		workload.Program(p, r, params, nil)
	})
	return s, c
}

func TestEveryWriteCorrelatesAcrossLayers(t *testing.T) {
	s, _ := runTraced(t)
	b := s.Analyze()
	writes := 0
	for _, cb := range b.Calls {
		if cb.Name != "MPI_File_write_at" {
			continue
		}
		writes++
		if cb.NestedSyscalls == 0 {
			t.Fatalf("write with no nested syscall: %+v", cb)
		}
		if cb.NestedFSOps == 0 {
			t.Fatalf("write with no nested FS op: %+v", cb)
		}
	}
	// 4 ranks x 4 objects.
	if writes != 16 {
		t.Fatalf("writes correlated = %d, want 16", writes)
	}
}

func TestLayerDecompositionSumsToTotal(t *testing.T) {
	s, _ := runTraced(t)
	b := s.Analyze()
	for _, cb := range b.Calls {
		sum := cb.Library + cb.Kernel + cb.Storage
		// Clamping can only shrink components, so sum <= total always; for
		// I/O calls the decomposition should be near-exact.
		if sum > cb.Total {
			t.Fatalf("decomposition exceeds total: %+v", cb)
		}
		if cb.Name == "MPI_File_write_at" && float64(sum) < 0.9*float64(cb.Total) {
			t.Fatalf("decomposition lost >10%% of %s: %+v", cb.Name, cb)
		}
	}
}

func TestStorageDominatesForLargeWrites(t *testing.T) {
	// For 128 KB writes on the simulated PFS, time below the VFS (network,
	// servers, disks) must dominate the thin library/kernel layers.
	s, _ := runTraced(t)
	tot := s.Analyze().Totals()
	if tot.Storage < tot.Library || tot.Storage < tot.Kernel {
		t.Fatalf("storage layer not dominant: %+v", tot)
	}
}

func TestEndStateUnchangedByInstrumentation(t *testing.T) {
	params := workload.Params{
		Pattern: workload.N1Strided, BlockSize: 128 << 10, NObj: 4, Path: "/pfs/ml.out",
	}
	plain := testCluster()
	workload.Run(plain.World, params)
	s1, d1, w1, _ := plain.PFS.Snapshot(params.Path)

	instrumented := testCluster()
	Attach(instrumented)
	instrumented.World.RunToCompletion(func(p *sim.Proc, r *mpi.Rank) {
		workload.Program(p, r, params, nil)
	})
	s2, d2, w2, _ := instrumented.PFS.Snapshot(params.Path)
	if s1 != s2 || d1 != d2 || w1 != w2 {
		t.Fatalf("instrumentation altered data: (%d,%x,%d) vs (%d,%x,%d)", s1, d1, w1, s2, d2, w2)
	}
}

func TestFormatOutput(t *testing.T) {
	s, _ := runTraced(t)
	out := s.Analyze().Format()
	for _, want := range []string{"library", "kernel", "storage", "MPI I/O calls"} {
		if !strings.Contains(out, want) {
			t.Fatalf("format missing %q:\n%s", want, out)
		}
	}
}

func TestEmptyBreakdownFormat(t *testing.T) {
	var b Breakdown
	if !strings.Contains(b.Format(), "no calls") {
		t.Fatal("empty format")
	}
}

func TestLayerStrings(t *testing.T) {
	if LayerLibrary.String() != "library" || LayerSyscall.String() != "kernel" || LayerFS.String() != "storage" {
		t.Fatal("layer strings")
	}
}

func TestClassificationValidates(t *testing.T) {
	c := Classification()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if !bool(c.AnalysisTools) {
		t.Fatal("multi-layer analysis is an analysis tool by definition")
	}
	if len(c.EventTypes) != 3 {
		t.Fatalf("event types = %v", c.EventTypes)
	}
}
