package multilayer

import (
	"reflect"
	"strings"
	"testing"

	"iotaxo/internal/sim"
	"iotaxo/internal/trace"
)

// naiveAnalyze is the original all-pairs O(lib x sys x fs) correlation,
// kept as the oracle for the windowed sweep in Analyze.
func naiveAnalyze(s *Session) Breakdown {
	const slack = 50 * sim.Microsecond
	var out Breakdown
	fsByRank := make(map[int][]trace.Record)
	for _, fl := range s.fs {
		fsByRank[fl.rank] = append(fsByRank[fl.rank], fl.col.Records...)
	}
	for rank := range s.lib {
		libRecs := s.lib[rank].Records
		sysRecs := s.sys[rank].Records
		fsRecs := fsByRank[rank]
		usedSys := make([]bool, len(sysRecs))
		usedFS := make([]bool, len(fsRecs))
		for i := range libRecs {
			mpiRec := &libRecs[i]
			if !strings.HasPrefix(mpiRec.Name, "MPI_File_") {
				continue
			}
			cb := CallBreakdown{
				Rank: mpiRec.Rank, Name: mpiRec.Name, Path: mpiRec.Path,
				Bytes: mpiRec.Bytes, Total: mpiRec.Dur,
			}
			var sysTime, fsTime sim.Duration
			for j := range sysRecs {
				if usedSys[j] || !within(&sysRecs[j], mpiRec, slack) {
					continue
				}
				usedSys[j] = true
				cb.NestedSyscalls++
				sysTime += sysRecs[j].Dur
				for k := range fsRecs {
					if usedFS[k] || !within(&fsRecs[k], &sysRecs[j], slack) {
						continue
					}
					usedFS[k] = true
					cb.NestedFSOps++
					fsTime += fsRecs[k].Dur
				}
			}
			cb.Library = cb.Total - sysTime
			cb.Kernel = sysTime - fsTime
			cb.Storage = fsTime
			if cb.Library < 0 {
				cb.Library = 0
			}
			if cb.Kernel < 0 {
				cb.Kernel = 0
			}
			out.Calls = append(out.Calls, cb)
		}
		for j := range sysRecs {
			if !usedSys[j] {
				out.Orphan++
			}
		}
		for k := range fsRecs {
			if !usedFS[k] {
				out.Orphan++
			}
		}
	}
	return out
}

// TestAnalyzeMatchesNaiveScan pins the windowed interval sweep to the
// original quadratic correlation on a real traced run.
func TestAnalyzeMatchesNaiveScan(t *testing.T) {
	s, _ := runTraced(t)
	fast := s.Analyze()
	slow := naiveAnalyze(s)
	// Analyze sorts calls by rank (stable); apply the same ordering here.
	sortCalls := func(calls []CallBreakdown) {
		for i := 1; i < len(calls); i++ {
			for j := i; j > 0 && calls[j-1].Rank > calls[j].Rank; j-- {
				calls[j-1], calls[j] = calls[j], calls[j-1]
			}
		}
	}
	sortCalls(slow.Calls)
	if fast.Orphan != slow.Orphan {
		t.Fatalf("orphans: fast %d, naive %d", fast.Orphan, slow.Orphan)
	}
	if len(fast.Calls) != len(slow.Calls) {
		t.Fatalf("calls: fast %d, naive %d", len(fast.Calls), len(slow.Calls))
	}
	if !reflect.DeepEqual(fast.Calls, slow.Calls) {
		for i := range fast.Calls {
			if !reflect.DeepEqual(fast.Calls[i], slow.Calls[i]) {
				t.Fatalf("call %d diverged:\nfast  %+v\nnaive %+v", i, fast.Calls[i], slow.Calls[i])
			}
		}
	}
}
