// Package multilayer implements multi-layer event trace analysis in the
// spirit of Lu & Shen (ICPP'07) — reference [6] of the paper, and the
// framework its future work says is next in line for classification ("we
// are working on using our taxonomy for full classification of more I/O
// Tracing Frameworks [6]").
//
// The tracer observes the same application simultaneously at three layers —
// the MPI library boundary, the system-call boundary, and the VFS/file-
// system boundary — then correlates events by interval containment within
// each rank to attribute every I/O call's latency to a layer:
//
//	library  = MPI call time not spent in system calls
//	kernel   = system-call time not spent in the file system
//	storage  = file-system time (client striping, network, servers, disks)
//
// This is the cross-layer picture none of the single-layer frameworks can
// produce: exactly why a taxonomy user might pick it despite the heavier
// deployment.
package multilayer

import (
	"fmt"
	"sort"
	"strings"

	"iotaxo/internal/cluster"
	"iotaxo/internal/core"
	"iotaxo/internal/interpose"
	"iotaxo/internal/sim"
	"iotaxo/internal/trace"
	"iotaxo/internal/vfs"
)

// Layer identifies an instrumentation layer.
type Layer int

// The instrumented layers. The first three are the classic Lu & Shen
// probes; the net/PFS/disk layers are the server-side extension that the
// causal-span propagation makes attributable.
const (
	LayerLibrary Layer = iota
	LayerSyscall
	LayerFS
	LayerNet
	LayerPFS
	LayerDisk
)

// String implements fmt.Stringer.
func (l Layer) String() string {
	switch l {
	case LayerLibrary:
		return "library"
	case LayerSyscall:
		return "kernel"
	case LayerFS:
		return "storage"
	case LayerNet:
		return "net"
	case LayerPFS:
		return "pfs"
	case LayerDisk:
		return "disk"
	default:
		return fmt.Sprintf("layer(%d)", int(l))
	}
}

// Session is an attached multi-layer tracer.
type Session struct {
	cluster *cluster.Cluster
	lib     []*interpose.Collector // per rank
	sys     []*interpose.Collector // per rank
	fs      []*fsLayer             // per compute node

	// Server-side layers, fed by the netsim / pfs / disk tracers. These
	// records carry Rank -1 and global (env) timestamps; the span fields
	// tie them back into the per-rank causal chains.
	netCol  interpose.Collector
	pfsCol  interpose.Collector
	diskCol interpose.Collector
}

// Attach instruments every rank of the cluster at all three layers. Must
// run before the application; the hooks use the cheap in-process cost
// models (multi-layer tracing is implemented as compiled-in probes, not
// ptrace).
func Attach(c *cluster.Cluster) *Session {
	s := &Session{cluster: c}
	// firstRank maps each node to the first rank it hosts (the common
	// one-rank-per-node case; with multiple ranks per node FS events
	// attribute to the first).
	firstRank := make(map[string]int, c.World.Size())
	for i := 0; i < c.World.Size(); i++ {
		r := c.World.Rank(i)
		libCol := &interpose.Collector{}
		sysCol := &interpose.Collector{}
		r.AttachLibHook(interpose.NewRecorder(interpose.Preload(), libCol))
		r.Proc().AttachHook(interpose.NewRecorder(interpose.VFSHook(), sysCol))
		s.lib = append(s.lib, libCol)
		s.sys = append(s.sys, sysCol)
		if _, seen := firstRank[r.Node()]; !seen {
			firstRank[r.Node()] = i
		}
	}
	for _, k := range c.Kernels {
		lower, ok := k.MountedAt(cluster.PFSMount)
		if !ok {
			continue
		}
		rank, ok := firstRank[k.Node()]
		if !ok {
			rank = -1
		}
		fl := &fsLayer{lower: lower, kernel: k, rank: rank}
		k.Mount(cluster.PFSMount, fl)
		s.fs = append(s.fs, fl)
	}
	// Arm the three server-side layers. The network tracer emits one
	// delivery record per message; the PFS tracer covers both the request
	// handlers and (routed by class) the RAID groups beneath them.
	c.Net.SetTracer(func(r *trace.Record) { s.netCol.Emit(r) })
	c.PFS.SetTracer(func(r *trace.Record) {
		if r.Class == trace.ClassDiskIO {
			s.diskCol.Emit(r)
			return
		}
		s.pfsCol.Emit(r)
	})
	return s
}

// fsLayer is the VFS-boundary probe: a thin instrumenting wrapper that
// timestamps with the node's local clock so intervals nest consistently
// with the syscall layer's records. Records land in a Collector, the same
// pipeline stand-in for a trace file the other two layers use.
type fsLayer struct {
	lower  vfs.Filesystem
	kernel *vfs.Kernel
	rank   int

	col interpose.Collector
}

func (f *fsLayer) FSName() string               { return f.lower.FSName() }
func (f *fsLayer) VNodeStackingSupported() bool { return vfs.CanStack(f.lower) }

// begin opens the FS op's causal span. It must run BEFORE the lower layer is
// called so that the client's RPCs (and everything beneath them) record this
// span as their parent; emit closes it.
func (f *fsLayer) begin(p *sim.Proc) (span, parent uint64, start sim.Time) {
	span = p.Env().NextSpanID()
	parent = p.SetSpan(span)
	return span, parent, p.Now()
}

func (f *fsLayer) emit(name, path string, offset, bytes int64, start sim.Time, span, parent uint64, p *sim.Proc) {
	p.SetSpan(parent)
	local := f.kernel.LocalTime(start)
	f.col.Emit(&trace.Record{
		Time:   local,
		Dur:    p.Now() - start,
		Node:   f.kernel.Node(),
		Rank:   f.rank,
		Class:  trace.ClassFSOp,
		Name:   name,
		Path:   path,
		Offset: offset,
		Bytes:  bytes,
		Ret:    "0",
		Span:   span,
		Parent: parent,
	})
}

// Open implements vfs.Filesystem.
func (f *fsLayer) Open(p *sim.Proc, path string, flags vfs.OpenFlag, mode int, cred vfs.Cred) (vfs.File, error) {
	span, parent, start := f.begin(p)
	file, err := f.lower.Open(p, path, flags, mode, cred)
	f.emit("VFS_open", path, 0, 0, start, span, parent, p)
	if err != nil {
		return nil, err
	}
	return &fsLayerFile{layer: f, lower: file, path: path}, nil
}

// Stat implements vfs.Filesystem.
func (f *fsLayer) Stat(p *sim.Proc, path string) (vfs.FileAttr, error) {
	span, parent, start := f.begin(p)
	attr, err := f.lower.Stat(p, path)
	f.emit("VFS_lookup", path, 0, 0, start, span, parent, p)
	return attr, err
}

// Unlink implements vfs.Filesystem.
func (f *fsLayer) Unlink(p *sim.Proc, path string, cred vfs.Cred) error {
	span, parent, start := f.begin(p)
	err := f.lower.Unlink(p, path, cred)
	f.emit("VFS_unlink", path, 0, 0, start, span, parent, p)
	return err
}

// Statfs implements vfs.Filesystem (not recorded: metadata chatter).
func (f *fsLayer) Statfs(p *sim.Proc) (vfs.StatfsInfo, error) { return f.lower.Statfs(p) }

type fsLayerFile struct {
	layer *fsLayer
	lower vfs.File
	path  string
}

func (h *fsLayerFile) WriteAt(p *sim.Proc, offset, length int64) (int64, error) {
	span, parent, start := h.layer.begin(p)
	n, err := h.lower.WriteAt(p, offset, length)
	h.layer.emit("VFS_write", h.path, offset, n, start, span, parent, p)
	return n, err
}

func (h *fsLayerFile) ReadAt(p *sim.Proc, offset, length int64) (int64, error) {
	span, parent, start := h.layer.begin(p)
	n, err := h.lower.ReadAt(p, offset, length)
	h.layer.emit("VFS_read", h.path, offset, n, start, span, parent, p)
	return n, err
}

func (h *fsLayerFile) Sync(p *sim.Proc) error {
	span, parent, start := h.layer.begin(p)
	err := h.lower.Sync(p)
	h.layer.emit("VFS_sync", h.path, 0, 0, start, span, parent, p)
	return err
}

func (h *fsLayerFile) Close(p *sim.Proc) error {
	span, parent, start := h.layer.begin(p)
	err := h.lower.Close(p)
	h.layer.emit("VFS_close", h.path, 0, 0, start, span, parent, p)
	return err
}

func (h *fsLayerFile) Attr() vfs.FileAttr { return h.lower.Attr() }

// LayerSource streams one layer's records across all ranks/nodes, in the
// order they were collected — the per-layer trace file read back.
func (s *Session) LayerSource(l Layer) trace.Source {
	var srcs []trace.Source
	switch l {
	case LayerLibrary:
		for _, c := range s.lib {
			srcs = append(srcs, c.Source())
		}
	case LayerSyscall:
		for _, c := range s.sys {
			srcs = append(srcs, c.Source())
		}
	case LayerFS:
		for _, fl := range s.fs {
			srcs = append(srcs, fl.col.Source())
		}
	case LayerNet:
		srcs = append(srcs, s.netCol.Source())
	case LayerPFS:
		srcs = append(srcs, s.pfsCol.Source())
	case LayerDisk:
		srcs = append(srcs, s.diskCol.Source())
	}
	return trace.ChainSources(srcs...)
}

// AllSource streams every layer's records back to back, client layers first,
// then the server-side net/PFS/disk layers.
func (s *Session) AllSource() trace.Source {
	return trace.ChainSources(
		s.LayerSource(LayerLibrary),
		s.LayerSource(LayerSyscall),
		s.LayerSource(LayerFS),
		s.LayerSource(LayerNet),
		s.LayerSource(LayerPFS),
		s.LayerSource(LayerDisk),
	)
}

// --- correlation ---

// CallBreakdown attributes one MPI I/O call's latency across layers.
type CallBreakdown struct {
	Rank    int
	Name    string
	Path    string
	Bytes   int64
	Total   sim.Duration
	Library sim.Duration
	Kernel  sim.Duration
	Storage sim.Duration
	// NestedSyscalls and NestedFSOps count the correlated events.
	NestedSyscalls int
	NestedFSOps    int
}

// Breakdown is the analysis result.
type Breakdown struct {
	Calls  []CallBreakdown
	Orphan int // syscall/FS events not attributable to any MPI call
}

// within reports interval containment with a small tolerance for the probe
// costs charged between layers.
func within(inner, outer *trace.Record, slack sim.Duration) bool {
	return inner.Time >= outer.Time-slack &&
		inner.Time+inner.Dur <= outer.Time+outer.Dur+slack
}

// searchFrom returns the first index in time-sorted recs whose start time
// is >= t: the left edge of an interval's candidate window.
func searchFrom(recs []trace.Record, t sim.Time) int {
	return sort.Search(len(recs), func(i int) bool { return recs[i].Time >= t })
}

// sortedByTime returns recs ordered by start time. Per-rank records are
// emitted by a single sequential process and thus already time-ordered, so
// this is normally a copy; the stable sort keeps emission order on ties,
// preserving the matching semantics of an in-order scan.
func sortedByTime(recs []trace.Record) []trace.Record {
	out := make([]trace.Record, len(recs))
	copy(out, recs)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}

// Analyze correlates the three client layers' events per rank by exact
// causal join: every record carries the span of the operation that issued it
// (Parent), so a syscall belongs to the MPI call whose span it names and an
// FS op to the syscall whose span it names — no time windows, no slack, no
// ambiguity between back-to-back calls. AnalyzeWindowed retains the interval
// sweep as a cross-check oracle.
func (s *Session) Analyze() Breakdown {
	var out Breakdown
	fsByRank := make(map[int][]trace.Record)
	for _, fl := range s.fs {
		fsByRank[fl.rank] = append(fsByRank[fl.rank], fl.col.Records...)
	}
	for rank := range s.lib {
		libRecs := s.lib[rank].Records
		sysRecs := s.sys[rank].Records
		fsRecs := fsByRank[rank]
		sysByParent := make(map[uint64][]int, len(sysRecs))
		for j := range sysRecs {
			sysByParent[sysRecs[j].Parent] = append(sysByParent[sysRecs[j].Parent], j)
		}
		fsByParent := make(map[uint64][]int, len(fsRecs))
		for k := range fsRecs {
			fsByParent[fsRecs[k].Parent] = append(fsByParent[fsRecs[k].Parent], k)
		}
		var attributedSys, attributedFS int
		for i := range libRecs {
			mpiRec := &libRecs[i]
			if !strings.HasPrefix(mpiRec.Name, "MPI_File_") {
				continue
			}
			cb := CallBreakdown{
				Rank:  mpiRec.Rank,
				Name:  mpiRec.Name,
				Path:  mpiRec.Path,
				Bytes: mpiRec.Bytes,
				Total: mpiRec.Dur,
			}
			var sysTime, fsTime sim.Duration
			for _, j := range sysByParent[mpiRec.Span] {
				cb.NestedSyscalls++
				attributedSys++
				sysTime += sysRecs[j].Dur
				for _, k := range fsByParent[sysRecs[j].Span] {
					cb.NestedFSOps++
					attributedFS++
					fsTime += fsRecs[k].Dur
				}
			}
			cb.Library = cb.Total - sysTime
			cb.Kernel = sysTime - fsTime
			cb.Storage = fsTime
			if cb.Library < 0 {
				cb.Library = 0
			}
			if cb.Kernel < 0 {
				cb.Kernel = 0
			}
			out.Calls = append(out.Calls, cb)
		}
		out.Orphan += len(sysRecs) - attributedSys
		out.Orphan += len(fsRecs) - attributedFS
	}
	sort.SliceStable(out.Calls, func(i, j int) bool { return out.Calls[i].Rank < out.Calls[j].Rank })
	return out
}

// AnalyzeWindowed correlates the layers by interval containment, the
// pre-span approach. Because each layer's records are time-sorted, the
// candidates nested inside an interval form a contiguous window: a binary
// search finds its left edge and a bounded forward sweep consumes it,
// replacing the all-pairs O(lib x sys x fs) scan with
// O((lib + sys + fs) log n + matches). Kept as the oracle the exact span
// join is tested against.
func (s *Session) AnalyzeWindowed() Breakdown {
	const slack = 50 * sim.Microsecond
	var out Breakdown
	// Index FS records by rank.
	fsByRank := make(map[int][]trace.Record)
	for _, fl := range s.fs {
		fsByRank[fl.rank] = append(fsByRank[fl.rank], fl.col.Records...)
	}
	for rank := range s.lib {
		libRecs := sortedByTime(s.lib[rank].Records)
		sysRecs := sortedByTime(s.sys[rank].Records)
		fsRecs := sortedByTime(fsByRank[rank])
		usedSys := make([]bool, len(sysRecs))
		usedFS := make([]bool, len(fsRecs))

		for i := range libRecs {
			mpiRec := &libRecs[i]
			if !strings.HasPrefix(mpiRec.Name, "MPI_File_") {
				continue
			}
			cb := CallBreakdown{
				Rank:  mpiRec.Rank,
				Name:  mpiRec.Name,
				Path:  mpiRec.Path,
				Bytes: mpiRec.Bytes,
				Total: mpiRec.Dur,
			}
			var sysTime, fsTime sim.Duration
			mpiEnd := mpiRec.Time + mpiRec.Dur
			for j := searchFrom(sysRecs, mpiRec.Time-slack); j < len(sysRecs) && sysRecs[j].Time <= mpiEnd+slack; j++ {
				if usedSys[j] || !within(&sysRecs[j], mpiRec, slack) {
					continue
				}
				usedSys[j] = true
				cb.NestedSyscalls++
				sysTime += sysRecs[j].Dur
				sysEnd := sysRecs[j].Time + sysRecs[j].Dur
				for k := searchFrom(fsRecs, sysRecs[j].Time-slack); k < len(fsRecs) && fsRecs[k].Time <= sysEnd+slack; k++ {
					if usedFS[k] || !within(&fsRecs[k], &sysRecs[j], slack) {
						continue
					}
					usedFS[k] = true
					cb.NestedFSOps++
					fsTime += fsRecs[k].Dur
				}
			}
			cb.Library = cb.Total - sysTime
			cb.Kernel = sysTime - fsTime
			cb.Storage = fsTime
			if cb.Library < 0 {
				cb.Library = 0
			}
			if cb.Kernel < 0 {
				cb.Kernel = 0
			}
			out.Calls = append(out.Calls, cb)
		}
		for j := range sysRecs {
			if !usedSys[j] {
				out.Orphan++
			}
		}
		for k := range fsRecs {
			if !usedFS[k] {
				out.Orphan++
			}
		}
	}
	sort.SliceStable(out.Calls, func(i, j int) bool { return out.Calls[i].Rank < out.Calls[j].Rank })
	return out
}

// LayerTotals sums the attribution across calls.
type LayerTotals struct {
	Total, Library, Kernel, Storage sim.Duration
	Calls                           int
}

// Totals aggregates the breakdown.
func (b Breakdown) Totals() LayerTotals {
	var t LayerTotals
	for _, c := range b.Calls {
		t.Total += c.Total
		t.Library += c.Library
		t.Kernel += c.Kernel
		t.Storage += c.Storage
		t.Calls++
	}
	return t
}

// Format renders the per-layer latency attribution.
func (b Breakdown) Format() string {
	t := b.Totals()
	var out strings.Builder
	out.WriteString("# multi-layer latency attribution (MPI I/O calls)\n")
	if t.Total == 0 {
		out.WriteString("# no calls observed\n")
		return out.String()
	}
	pct := func(d sim.Duration) float64 { return 100 * float64(d) / float64(t.Total) }
	fmt.Fprintf(&out, "%-10s %14s %8s\n", "layer", "time", "share")
	fmt.Fprintf(&out, "%-10s %14v %7.1f%%\n", "library", t.Library, pct(t.Library))
	fmt.Fprintf(&out, "%-10s %14v %7.1f%%\n", "kernel", t.Kernel, pct(t.Kernel))
	fmt.Fprintf(&out, "%-10s %14v %7.1f%%\n", "storage", t.Storage, pct(t.Storage))
	fmt.Fprintf(&out, "# %d MPI I/O calls, %d orphan lower-layer events\n", t.Calls, b.Orphan)
	return out.String()
}

// Classification positions the multi-layer analyzer in the taxonomy — the
// classification exercise the paper's future work announces for [6].
func Classification() *core.Classification {
	return &core.Classification{
		Name:             "Multi-Layer Trace Analysis",
		ParallelFSCompat: true,
		EaseOfInstall:    3, // probes at three layers, but no kernel module
		Anonymization:    core.ScaleNone,
		EventTypes: []core.EventType{
			core.EventLibCalls, core.EventSyscalls, core.EventFSOps,
		},
		TraceGranularity:  2,
		ReplayableTraces:  false,
		ReplayFidelity:    core.FidelityReport{Supported: false},
		RevealsDeps:       false,
		Intrusiveness:     2, // compiled-in probes, but no source changes
		AnalysisTools:     true,
		DataFormat:        core.FormatHumanReadable,
		AccountsSkewDrift: "No",
		CrossLayerSlicing: true,
		ElapsedOverhead: core.OverheadReport{
			Measured:    false,
			Description: "in-process probes at three layers; low single digits",
		},
		Notes: []string{
			"cross-layer latency attribution: library vs kernel vs storage",
			"classification exercise from the paper's future work [6]",
		},
	}
}
