// Package netsim models a switched cluster interconnect — the paper's
// testbed used gigabit Ethernet over copper — on top of the DES kernel.
//
// Each node owns a full-duplex network interface. A message from A to B
// serializes on A's transmit side (back-to-back sends from one node queue at
// its NIC), crosses the switch after a fixed latency, serializes on B's
// receive side (modelling incast: many clients writing to one server contend
// for the server's ingress), and is then delivered to the mailbox listening
// on the destination port. Per-message software overhead and frame headers
// make small messages proportionally expensive, which is one of the two
// mechanisms behind the paper's bandwidth-versus-blocksize curves.
package netsim

import (
	"fmt"
	"sort"

	"iotaxo/internal/sim"
	"iotaxo/internal/trace"
)

// Config fixes the interconnect's physical parameters.
type Config struct {
	BandwidthBps  float64      // per-direction link bandwidth, bytes/second
	Latency       sim.Duration // one-way propagation + switch latency
	FrameOverhead int64        // header bytes added to every message
	PerMessageCPU sim.Duration // software send/receive cost per message
}

// GigabitEthernet returns parameters approximating the paper's testbed
// interconnect: 1 Gb/s links, ~60 µs one-way latency through the switch,
// Ethernet+IP+TCP framing, and a small per-message software cost.
func GigabitEthernet() Config {
	return Config{
		BandwidthBps:  125e6, // 1 Gb/s
		Latency:       60 * sim.Microsecond,
		FrameOverhead: 66,
		PerMessageCPU: 8 * sim.Microsecond,
	}
}

// Message is one unit of transfer between nodes.
type Message struct {
	From    string
	To      string
	Port    int
	Size    int64 // payload bytes (framing added by the network)
	Payload any

	// Span is the causal span the message travels under: the sender's
	// current span (stamped automatically by Send/Call, explicitly by the
	// event-chain variants). When a network tracer is attached, delivery
	// records a ClassNetMsg child span and rewrites this field to it, so the
	// receiver's records parent to the network hop.
	Span uint64
}

// Iface is one node's network interface. The tx/rx resources are embedded
// by value (slab-friendly: a 65536-node network allocates interfaces in
// large chunks instead of three objects per node) and the node's listening
// ports live in a small inline table — nodes listen on one or two ports
// (the PFS service port, one MPI rank port), so a linear scan beats a
// per-node map.
type Iface struct {
	name  string
	tx    sim.Resource
	rx    sim.Resource
	ports []portEntry

	// Stats, observable by analysis tooling.
	BytesSent     int64
	BytesReceived int64
	MsgsSent      int64
	MsgsReceived  int64
}

// portEntry binds one listening port to its mailbox.
type portEntry struct {
	port int
	box  *sim.Mailbox[Message]
}

// box returns the mailbox listening on port, or nil.
func (i *Iface) box(port int) *sim.Mailbox[Message] {
	for _, e := range i.ports {
		if e.port == port {
			return e.box
		}
	}
	return nil
}

// arenaChunk is the slab size for interface and mailbox arenas: large
// enough to amortize allocation at 65536 nodes, small enough not to waste
// memory on unit-test networks.
const arenaChunk = 256

// Network connects named nodes through a single switch.
type Network struct {
	env    *sim.Env
	cfg    Config
	ifaces map[string]*Iface

	// Construction arenas: interfaces and mailboxes are handed out from
	// chunked slabs (pointers into a chunk stay valid because a chunk is
	// never grown, only replaced when full).
	ifaceArena []Iface
	boxArena   []sim.Mailbox[Message]

	// tracer, when set, receives one ClassNetMsg record per message
	// delivery. Untraced networks pay nothing on the delivery path.
	tracer func(*trace.Record)
}

// SetTracer installs (or, with nil, removes) the delivery tracer.
func (n *Network) SetTracer(fn func(*trace.Record)) { n.tracer = fn }

// New returns an empty network with the given configuration.
func New(env *sim.Env, cfg Config) *Network {
	if cfg.BandwidthBps <= 0 {
		panic("netsim: bandwidth must be positive")
	}
	return &Network{
		env:    env,
		cfg:    cfg,
		ifaces: make(map[string]*Iface),
	}
}

// Env returns the owning simulation environment.
func (n *Network) Env() *sim.Env { return n.env }

// Config returns the interconnect parameters.
func (n *Network) Config() Config { return n.cfg }

// AddNode registers a node name and returns its interface. Adding the same
// name twice is an error caught by panic (configuration bug).
func (n *Network) AddNode(name string) *Iface {
	if _, dup := n.ifaces[name]; dup {
		panic(fmt.Sprintf("netsim: duplicate node %q", name))
	}
	if len(n.ifaceArena) == cap(n.ifaceArena) {
		n.ifaceArena = make([]Iface, 0, arenaChunk)
	}
	n.ifaceArena = append(n.ifaceArena, Iface{name: name})
	ifc := &n.ifaceArena[len(n.ifaceArena)-1]
	ifc.tx.Init(n.env, 1)
	ifc.rx.Init(n.env, 1)
	n.ifaces[name] = ifc
	return ifc
}

// Iface returns the interface of a registered node.
func (n *Network) Iface(name string) *Iface {
	ifc, ok := n.ifaces[name]
	if !ok {
		panic(fmt.Sprintf("netsim: unknown node %q", name))
	}
	return ifc
}

// Listen returns (creating if needed) the mailbox for (node, port). Layered
// protocols — the parallel file system, MPI — each claim a port.
func (n *Network) Listen(node string, port int) *sim.Mailbox[Message] {
	ifc, ok := n.ifaces[node]
	if !ok {
		panic(fmt.Sprintf("netsim: Listen on unknown node %q", node))
	}
	if mb := ifc.box(port); mb != nil {
		return mb
	}
	if len(n.boxArena) == cap(n.boxArena) {
		n.boxArena = make([]sim.Mailbox[Message], 0, arenaChunk)
	}
	n.boxArena = append(n.boxArena, sim.Mailbox[Message]{})
	mb := &n.boxArena[len(n.boxArena)-1]
	mb.Init(n.env)
	ifc.ports = append(ifc.ports, portEntry{port: port, box: mb})
	return mb
}

// mtuPayload is the payload capacity of one frame (standard Ethernet MTU
// minus IP+TCP headers).
const mtuPayload = 1460

// wireBytes is the on-wire size of a message including framing: one frame
// per started MTU payload (ceiling division — an exact multiple of 1460 must
// not be charged an extra empty frame), minimum one frame so zero-byte
// control messages still cost a header.
func (n *Network) wireBytes(payload int64) int64 {
	frames := (payload + mtuPayload - 1) / mtuPayload
	if frames < 1 {
		frames = 1
	}
	return payload + frames*n.cfg.FrameOverhead
}

// TransferTime reports the uncontended one-way time for a payload of the
// given size: useful for analytical checks and tests.
func (n *Network) TransferTime(payload int64) sim.Duration {
	return n.cfg.PerMessageCPU +
		sim.DurationOf(n.wireBytes(payload), n.cfg.BandwidthBps) +
		n.cfg.Latency +
		sim.DurationOf(n.wireBytes(payload), n.cfg.BandwidthBps)
}

// Send transmits msg from the calling process. The caller blocks for the
// sender-side software cost and transmit serialization (as a kernel send
// blocks while the NIC queue drains); propagation, receive serialization and
// delivery proceed asynchronously as a pure event chain — no goroutine or
// process is allocated per message, so in-flight message count never adds to
// the runtime's live goroutine population.
func (n *Network) Send(p *sim.Proc, msg Message) {
	src := n.Iface(msg.From)
	dst := n.Iface(msg.To)
	dstBox := dst.box(msg.Port)
	if dstBox == nil {
		panic(fmt.Sprintf("netsim: send to %s:%d with no listener", msg.To, msg.Port))
	}
	wire := n.wireBytes(msg.Size)
	if msg.Span == 0 {
		msg.Span = p.Span()
	}
	p.Sleep(n.cfg.PerMessageCPU)
	src.tx.HoldFor(p, sim.DurationOf(wire, n.cfg.BandwidthBps))
	src.BytesSent += wire
	src.MsgsSent++
	n.deliver(dst, dstBox, msg, wire)
}

// SendThen transmits msg as a pure event chain, calling done when the
// sender-side cost is paid (the point at which a process calling Send would
// resume). The event sequencing mirrors Send hop for hop — per-message CPU
// as one scheduled event (where Send's caller slept), transmit serialization
// on the source tx resource, sender stats, then the shared asynchronous
// delivery chain — so chained and process-driven sends contending for one
// NIC produce identical schedules. No goroutine or process is involved at
// any point.
func (n *Network) SendThen(msg Message, done func()) {
	src := n.Iface(msg.From)
	dst := n.Iface(msg.To)
	dstBox := dst.box(msg.Port)
	if dstBox == nil {
		panic(fmt.Sprintf("netsim: send to %s:%d with no listener", msg.To, msg.Port))
	}
	wire := n.wireBytes(msg.Size)
	n.env.After(n.cfg.PerMessageCPU, func() {
		src.tx.HoldForThen(sim.DurationOf(wire, n.cfg.BandwidthBps), func() {
			src.BytesSent += wire
			src.MsgsSent++
			n.deliver(dst, dstBox, msg, wire)
			done()
		})
	})
}

// deliver runs the asynchronous half of a transfer — switch latency, receive
// serialization, receiver stats, mailbox delivery — as a chain of scheduled
// events. It replaces the per-message "net.courier" process the simulator
// used to spawn: event sequencing mirrors that courier hop for hop (spawn
// dispatch at the current instant, latency sleep, rx hold, release-then-
// deliver), so simulated timestamps are identical while live goroutines stay
// O(processes) instead of O(in-flight messages).
func (n *Network) deliver(dst *Iface, box *sim.Mailbox[Message], msg Message, wire int64) {
	rxTime := sim.DurationOf(wire, n.cfg.BandwidthBps)
	start := n.env.Now()
	n.env.After(0, func() {
		n.env.After(n.cfg.Latency, func() {
			dst.rx.HoldForThen(rxTime, func() {
				dst.BytesReceived += wire
				dst.MsgsReceived++
				if n.tracer != nil {
					// Record the hop as a child span and hand that span to
					// the receiver, so its records parent to the network
					// layer; with no tracer the sender's span passes through
					// untouched and the chain simply skips this layer.
					span := n.env.NextSpanID()
					n.tracer(&trace.Record{
						Time:   start,
						Dur:    n.env.Now() - start,
						Node:   dst.name,
						Rank:   -1,
						Class:  trace.ClassNetMsg,
						Name:   "NET_deliver",
						Ret:    "0",
						Bytes:  msg.Size,
						Span:   span,
						Parent: msg.Span,
					})
					msg.Span = span
				}
				box.Put(msg)
			})
		})
	})
}

// Call performs a synchronous request/response exchange: it sends req to
// (To, Port) and blocks until a reply arrives on the caller's private reply
// mailbox, which is passed to the server inside the request payload.
//
// Request/response protocols (the PFS client, MPI rendezvous) are built on
// this helper. The reply payload is returned as-is.
type rpc struct {
	Req   any
	Reply *sim.Mailbox[Message]
}

// Call sends req and waits for the matching reply. replySize is the payload
// size of the response message travelling back.
func (n *Network) Call(p *sim.Proc, from, to string, port int, reqSize int64, req any) any {
	reply := sim.NewMailbox[Message](n.env)
	n.Send(p, Message{From: from, To: to, Port: port, Size: reqSize,
		Payload: rpc{Req: req, Reply: reply}})
	resp := reply.Get(p)
	return resp.Payload
}

// CallThen performs the request/response exchange of Call as a pure event
// chain: done receives the reply payload at the instant a process blocked in
// Call would resume. The private reply mailbox is consumed with GetThen, so
// no process parks anywhere on the path.
func (n *Network) CallThen(from, to string, port int, reqSize int64, req any, done func(resp any)) {
	n.CallThenSpan(from, to, port, reqSize, req, 0, done)
}

// CallThenSpan is CallThen carrying an explicit causal span for the request
// message. Event-chain callers have no process to stamp from, so they capture
// the span before entering the chain and pass it here.
func (n *Network) CallThenSpan(from, to string, port int, reqSize int64, req any, span uint64, done func(resp any)) {
	reply := sim.NewMailbox[Message](n.env)
	n.SendThen(Message{From: from, To: to, Port: port, Size: reqSize,
		Payload: rpc{Req: req, Reply: reply}, Span: span}, func() {
		reply.GetThen(func(m Message) { done(m.Payload) })
	})
}

// ServeRequest unwraps a message received by a server loop. If the message
// was produced by Call, it returns the inner request and a respond function
// that sends respSize payload bytes back to the caller; otherwise respond is
// nil and the raw payload is returned.
func (n *Network) ServeRequest(server string, msg Message) (req any, respond func(p *sim.Proc, respSize int64, resp any)) {
	call, ok := msg.Payload.(rpc)
	if !ok {
		return msg.Payload, nil
	}
	reply := call.Reply
	from := msg.From
	reqSpan := msg.Span
	return call.Req, func(p *sim.Proc, respSize int64, resp any) {
		// The response travels the reverse path: serialize on the server's
		// tx, cross the switch, serialize on the client's rx, delivered by
		// the same zero-goroutine event chain as Send. It rides under the
		// request's span, so the reply hop joins the same causal subtree.
		src := n.Iface(server)
		dst := n.Iface(from)
		wire := n.wireBytes(respSize)
		p.Sleep(n.cfg.PerMessageCPU)
		src.tx.HoldFor(p, sim.DurationOf(wire, n.cfg.BandwidthBps))
		src.BytesSent += wire
		src.MsgsSent++
		n.deliver(dst, reply, Message{From: server, To: from, Size: respSize, Payload: resp, Span: reqSpan}, wire)
	}
}

// ServeRequestThen is the event-chain twin of ServeRequest, for server loops
// that run without a process. The returned respond function transmits the
// response as a pure event chain and calls done at the instant a process
// calling the blocking respond would have resumed (after paying per-message
// CPU and tx serialization); the server's release of per-request state (a
// worker-pool unit, the next dispatch) chains off done.
func (n *Network) ServeRequestThen(server string, msg Message) (req any, respond func(respSize int64, resp any, done func())) {
	call, ok := msg.Payload.(rpc)
	if !ok {
		return msg.Payload, nil
	}
	reply := call.Reply
	from := msg.From
	reqSpan := msg.Span
	return call.Req, func(respSize int64, resp any, done func()) {
		src := n.Iface(server)
		dst := n.Iface(from)
		wire := n.wireBytes(respSize)
		n.env.After(n.cfg.PerMessageCPU, func() {
			src.tx.HoldForThen(sim.DurationOf(wire, n.cfg.BandwidthBps), func() {
				src.BytesSent += wire
				src.MsgsSent++
				n.deliver(dst, reply, Message{From: server, To: from, Size: respSize, Payload: resp, Span: reqSpan}, wire)
				done()
			})
		})
	}
}

// Nodes returns the registered node names, sorted.
func (n *Network) Nodes() []string {
	out := make([]string, 0, len(n.ifaces))
	for name := range n.ifaces {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
