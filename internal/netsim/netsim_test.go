package netsim

import (
	"sort"
	"testing"
	"testing/quick"

	"iotaxo/internal/sim"
)

func testNet(env *sim.Env) *Network {
	n := New(env, Config{
		BandwidthBps:  125e6,
		Latency:       60 * sim.Microsecond,
		FrameOverhead: 66,
		PerMessageCPU: 8 * sim.Microsecond,
	})
	n.AddNode("a")
	n.AddNode("b")
	n.AddNode("c")
	return n
}

func TestSendDelivers(t *testing.T) {
	env := sim.NewEnv(1)
	n := testNet(env)
	inbox := n.Listen("b", 7)
	var got Message
	var at sim.Time
	env.Go("recv", func(p *sim.Proc) {
		got = inbox.Get(p)
		at = p.Now()
	})
	env.Go("send", func(p *sim.Proc) {
		n.Send(p, Message{From: "a", To: "b", Port: 7, Size: 1000, Payload: "hi"})
	})
	env.Run()
	if got.Payload != "hi" || got.From != "a" {
		t.Fatalf("got %+v", got)
	}
	if want := n.TransferTime(1000); at != want {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
}

func TestListenUnknownNodePanics(t *testing.T) {
	env := sim.NewEnv(1)
	n := testNet(env)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.Listen("nosuch", 1)
}

func TestDuplicateNodePanics(t *testing.T) {
	env := sim.NewEnv(1)
	n := New(env, GigabitEthernet())
	n.AddNode("x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.AddNode("x")
}

func TestTxSerialization(t *testing.T) {
	// Two back-to-back sends from one node must serialize on its NIC.
	env := sim.NewEnv(1)
	n := testNet(env)
	inbox := n.Listen("b", 1)
	var arrivals []sim.Time
	env.Go("recv", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			inbox.Get(p)
			arrivals = append(arrivals, p.Now())
		}
	})
	env.Go("send", func(p *sim.Proc) {
		n.Send(p, Message{From: "a", To: "b", Port: 1, Size: 1 << 20})
		n.Send(p, Message{From: "a", To: "b", Port: 1, Size: 1 << 20})
	})
	env.Run()
	if len(arrivals) != 2 {
		t.Fatalf("got %d arrivals", len(arrivals))
	}
	gap := arrivals[1] - arrivals[0]
	serial := sim.DurationOf(1<<20+((1<<20)/1460+1)*66, 125e6)
	// Pipeline: second message is one serialization behind the first, plus
	// the second per-message CPU charge.
	if gap < serial {
		t.Fatalf("messages did not serialize: gap %v < %v", gap, serial)
	}
}

func TestIncastRxContention(t *testing.T) {
	// Two senders to one receiver: aggregate delivery time must reflect the
	// receiver's single ingress link.
	env := sim.NewEnv(1)
	n := testNet(env)
	inbox := n.Listen("c", 1)
	var last sim.Time
	env.Go("recv", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			inbox.Get(p)
			last = p.Now()
		}
	})
	const size = 4 << 20
	env.Go("s1", func(p *sim.Proc) {
		n.Send(p, Message{From: "a", To: "c", Port: 1, Size: size})
	})
	env.Go("s2", func(p *sim.Proc) {
		n.Send(p, Message{From: "b", To: "c", Port: 1, Size: size})
	})
	env.Run()
	rxSerial := sim.DurationOf(size+((size)/1460+1)*66, 125e6)
	if last < 2*rxSerial {
		t.Fatalf("incast finished too fast: %v < %v", last, 2*rxSerial)
	}
}

func TestCallRoundTrip(t *testing.T) {
	env := sim.NewEnv(1)
	n := testNet(env)
	inbox := n.Listen("b", 2)
	env.Go("server", func(p *sim.Proc) {
		msg := inbox.Get(p)
		req, respond := n.ServeRequest("b", msg)
		if req != "ping" {
			t.Errorf("server got %v", req)
		}
		respond(p, 100, "pong")
	})
	var reply any
	env.Go("client", func(p *sim.Proc) {
		reply = n.Call(p, "a", "b", 2, 100, "ping")
	})
	env.Run()
	if reply != "pong" {
		t.Fatalf("reply = %v", reply)
	}
}

func TestServeRequestRawPayload(t *testing.T) {
	env := sim.NewEnv(1)
	n := testNet(env)
	req, respond := n.ServeRequest("b", Message{Payload: 42})
	if req != 42 || respond != nil {
		t.Fatalf("raw payload mishandled: req=%v respondNil=%v", req, respond == nil)
	}
	_ = env
}

func TestStatsAccumulate(t *testing.T) {
	env := sim.NewEnv(1)
	n := testNet(env)
	n.Listen("b", 1)
	env.Go("send", func(p *sim.Proc) {
		n.Send(p, Message{From: "a", To: "b", Port: 1, Size: 500})
	})
	env.Run()
	if n.Iface("a").MsgsSent != 1 || n.Iface("a").BytesSent <= 500 {
		t.Fatalf("sender stats: %+v", n.Iface("a"))
	}
	if n.Iface("b").MsgsReceived != 1 {
		t.Fatalf("receiver stats: %+v", n.Iface("b"))
	}
}

// TestTransferTimeFrameCount pins the frame accounting at and around exact
// MTU multiples: a 1460-byte payload fits one frame and 2920 bytes fit two —
// the old `payload/1460 + 1` charged each an extra empty frame.
func TestTransferTimeFrameCount(t *testing.T) {
	env := sim.NewEnv(1)
	n := testNet(env)
	expect := func(payload, frames int64) sim.Duration {
		wire := payload + frames*n.cfg.FrameOverhead
		oneWay := sim.DurationOf(wire, n.cfg.BandwidthBps)
		return n.cfg.PerMessageCPU + oneWay + n.cfg.Latency + oneWay
	}
	for _, c := range []struct {
		payload, frames int64
	}{
		{0, 1}, // zero-byte control message still costs a header
		{1, 1},
		{1459, 1},
		{1460, 1}, // exact MTU multiple: one frame, not two
		{1461, 2},
		{2919, 2},
		{2920, 2}, // two exact frames
		{2921, 3},
	} {
		if got, want := n.TransferTime(c.payload), expect(c.payload, c.frames); got != want {
			t.Errorf("TransferTime(%d) = %v, want %v (%d frames)", c.payload, got, want, c.frames)
		}
	}
}

func TestNodesSorted(t *testing.T) {
	env := sim.NewEnv(1)
	n := New(env, GigabitEthernet())
	for _, name := range []string{"zeta", "alpha", "mid", "beta"} {
		n.AddNode(name)
	}
	got := n.Nodes()
	if !sort.StringsAreSorted(got) {
		t.Fatalf("Nodes() not sorted: %v", got)
	}
	if len(got) != 4 || got[0] != "alpha" || got[3] != "zeta" {
		t.Fatalf("Nodes() = %v", got)
	}
}

// TestDeliverySpawnsNoProcs is the per-message allocation regression test:
// message delivery is a pure event chain, so no process (and therefore no
// goroutine or resume channel) may be created per message.
func TestDeliverySpawnsNoProcs(t *testing.T) {
	env := sim.NewEnv(1)
	n := testNet(env)
	inbox := n.Listen("b", 1)
	const msgs = 64
	env.Go("recv", func(p *sim.Proc) {
		for i := 0; i < msgs; i++ {
			inbox.Get(p)
		}
	})
	env.Go("send", func(p *sim.Proc) {
		for i := 0; i < msgs; i++ {
			n.Send(p, Message{From: "a", To: "b", Port: 1, Size: 4096})
		}
	})
	env.Run()
	if got := n.Iface("b").MsgsReceived; got != msgs {
		t.Fatalf("delivered %d messages, want %d", got, msgs)
	}
	if spawned := env.Spawned("net.courier"); spawned != 0 {
		t.Fatalf("%d courier procs spawned for %d messages, want 0", spawned, msgs)
	}
}

// courierSend is the retired goroutine-per-message delivery engine, kept
// here as the reference implementation: the eventized Send must reproduce
// its schedule exactly.
func courierSend(n *Network, p *sim.Proc, msg Message) {
	src := n.Iface(msg.From)
	dst := n.Iface(msg.To)
	dstBox := dst.box(msg.Port)
	wire := n.wireBytes(msg.Size)
	p.Sleep(n.cfg.PerMessageCPU)
	src.tx.HoldFor(p, sim.DurationOf(wire, n.cfg.BandwidthBps))
	src.BytesSent += wire
	src.MsgsSent++
	n.env.Go("net.courier", func(c *sim.Proc) {
		c.Sleep(n.cfg.Latency)
		dst.rx.HoldFor(c, sim.DurationOf(wire, n.cfg.BandwidthBps))
		dst.BytesReceived += wire
		dst.MsgsReceived++
		dstBox.Put(msg)
	})
}

// TestEventDeliveryMatchesCourierReference drives a contended incast
// scenario — randomized sizes and jittered start times, three senders into
// one receiver — through both engines and requires every delivery timestamp
// to match: the byte-identical-output guarantee of the refactor.
func TestEventDeliveryMatchesCourierReference(t *testing.T) {
	type send struct {
		from  string
		after sim.Duration
		size  int64
	}
	var plan []send
	{
		env := sim.NewEnv(42)
		for _, from := range []string{"a", "b", "c"} {
			for i := 0; i < 10; i++ {
				plan = append(plan, send{
					from:  from,
					after: sim.Duration(env.Rand().Int63n(int64(200 * sim.Microsecond))),
					size:  env.Rand().Int63n(1 << 18),
				})
			}
		}
	}
	run := func(engine func(*Network, *sim.Proc, Message)) []sim.Time {
		env := sim.NewEnv(1)
		n := New(env, GigabitEthernet())
		n.AddNode("a")
		n.AddNode("b")
		n.AddNode("c")
		n.AddNode("sink")
		inbox := n.Listen("sink", 1)
		var arrivals []sim.Time
		env.Go("recv", func(p *sim.Proc) {
			for i := 0; i < len(plan); i++ {
				inbox.Get(p)
				arrivals = append(arrivals, p.Now())
			}
		})
		bySender := map[string][]send{}
		for _, s := range plan {
			bySender[s.from] = append(bySender[s.from], s)
		}
		for _, from := range []string{"a", "b", "c"} {
			mine := bySender[from]
			from := from
			env.Go("send."+from, func(p *sim.Proc) {
				for _, s := range mine {
					p.Sleep(s.after)
					engine(n, p, Message{From: s.from, To: "sink", Port: 1, Size: s.size})
				}
			})
		}
		env.Run()
		return arrivals
	}
	ref := run(courierSend)
	got := run(func(n *Network, p *sim.Proc, m Message) { n.Send(p, m) })
	if len(ref) != len(plan) || len(got) != len(plan) {
		t.Fatalf("deliveries: ref %d, event %d, want %d", len(ref), len(got), len(plan))
	}
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatalf("delivery %d: courier engine at %v, event engine at %v", i, ref[i], got[i])
		}
	}
}

// Property: TransferTime is monotone nondecreasing in payload size.
func TestTransferTimeMonotoneProperty(t *testing.T) {
	env := sim.NewEnv(1)
	n := testNet(env)
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return n.TransferTime(x) <= n.TransferTime(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	_ = env
}

// Property: per-byte cost falls as messages grow (framing amortization).
func TestLargeMessagesMoreEfficient(t *testing.T) {
	env := sim.NewEnv(1)
	n := testNet(env)
	small := n.TransferTime(1024).Seconds() / 1024
	large := n.TransferTime(1<<22).Seconds() / float64(1<<22)
	if large >= small {
		t.Fatalf("per-byte cost did not fall: small %g, large %g", small, large)
	}
	_ = env
}

func TestGigabitEthernetDefaults(t *testing.T) {
	cfg := GigabitEthernet()
	if cfg.BandwidthBps != 125e6 {
		t.Fatalf("bandwidth = %v", cfg.BandwidthBps)
	}
	if cfg.Latency <= 0 || cfg.PerMessageCPU <= 0 || cfg.FrameOverhead <= 0 {
		t.Fatalf("bad defaults: %+v", cfg)
	}
}
