package netsim

import (
	"testing"
	"testing/quick"

	"iotaxo/internal/sim"
)

func testNet(env *sim.Env) *Network {
	n := New(env, Config{
		BandwidthBps:  125e6,
		Latency:       60 * sim.Microsecond,
		FrameOverhead: 66,
		PerMessageCPU: 8 * sim.Microsecond,
	})
	n.AddNode("a")
	n.AddNode("b")
	n.AddNode("c")
	return n
}

func TestSendDelivers(t *testing.T) {
	env := sim.NewEnv(1)
	n := testNet(env)
	inbox := n.Listen("b", 7)
	var got Message
	var at sim.Time
	env.Go("recv", func(p *sim.Proc) {
		got = inbox.Get(p)
		at = p.Now()
	})
	env.Go("send", func(p *sim.Proc) {
		n.Send(p, Message{From: "a", To: "b", Port: 7, Size: 1000, Payload: "hi"})
	})
	env.Run()
	if got.Payload != "hi" || got.From != "a" {
		t.Fatalf("got %+v", got)
	}
	if want := n.TransferTime(1000); at != want {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
}

func TestListenUnknownNodePanics(t *testing.T) {
	env := sim.NewEnv(1)
	n := testNet(env)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.Listen("nosuch", 1)
}

func TestDuplicateNodePanics(t *testing.T) {
	env := sim.NewEnv(1)
	n := New(env, GigabitEthernet())
	n.AddNode("x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.AddNode("x")
}

func TestTxSerialization(t *testing.T) {
	// Two back-to-back sends from one node must serialize on its NIC.
	env := sim.NewEnv(1)
	n := testNet(env)
	inbox := n.Listen("b", 1)
	var arrivals []sim.Time
	env.Go("recv", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			inbox.Get(p)
			arrivals = append(arrivals, p.Now())
		}
	})
	env.Go("send", func(p *sim.Proc) {
		n.Send(p, Message{From: "a", To: "b", Port: 1, Size: 1 << 20})
		n.Send(p, Message{From: "a", To: "b", Port: 1, Size: 1 << 20})
	})
	env.Run()
	if len(arrivals) != 2 {
		t.Fatalf("got %d arrivals", len(arrivals))
	}
	gap := arrivals[1] - arrivals[0]
	serial := sim.DurationOf(1<<20+((1<<20)/1460+1)*66, 125e6)
	// Pipeline: second message is one serialization behind the first, plus
	// the second per-message CPU charge.
	if gap < serial {
		t.Fatalf("messages did not serialize: gap %v < %v", gap, serial)
	}
}

func TestIncastRxContention(t *testing.T) {
	// Two senders to one receiver: aggregate delivery time must reflect the
	// receiver's single ingress link.
	env := sim.NewEnv(1)
	n := testNet(env)
	inbox := n.Listen("c", 1)
	var last sim.Time
	env.Go("recv", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			inbox.Get(p)
			last = p.Now()
		}
	})
	const size = 4 << 20
	env.Go("s1", func(p *sim.Proc) {
		n.Send(p, Message{From: "a", To: "c", Port: 1, Size: size})
	})
	env.Go("s2", func(p *sim.Proc) {
		n.Send(p, Message{From: "b", To: "c", Port: 1, Size: size})
	})
	env.Run()
	rxSerial := sim.DurationOf(size+((size)/1460+1)*66, 125e6)
	if last < 2*rxSerial {
		t.Fatalf("incast finished too fast: %v < %v", last, 2*rxSerial)
	}
}

func TestCallRoundTrip(t *testing.T) {
	env := sim.NewEnv(1)
	n := testNet(env)
	inbox := n.Listen("b", 2)
	env.Go("server", func(p *sim.Proc) {
		msg := inbox.Get(p)
		req, respond := n.ServeRequest("b", msg)
		if req != "ping" {
			t.Errorf("server got %v", req)
		}
		respond(p, 100, "pong")
	})
	var reply any
	env.Go("client", func(p *sim.Proc) {
		reply = n.Call(p, "a", "b", 2, 100, "ping")
	})
	env.Run()
	if reply != "pong" {
		t.Fatalf("reply = %v", reply)
	}
}

func TestServeRequestRawPayload(t *testing.T) {
	env := sim.NewEnv(1)
	n := testNet(env)
	req, respond := n.ServeRequest("b", Message{Payload: 42})
	if req != 42 || respond != nil {
		t.Fatalf("raw payload mishandled: req=%v respondNil=%v", req, respond == nil)
	}
	_ = env
}

func TestStatsAccumulate(t *testing.T) {
	env := sim.NewEnv(1)
	n := testNet(env)
	n.Listen("b", 1)
	env.Go("send", func(p *sim.Proc) {
		n.Send(p, Message{From: "a", To: "b", Port: 1, Size: 500})
	})
	env.Run()
	if n.Iface("a").MsgsSent != 1 || n.Iface("a").BytesSent <= 500 {
		t.Fatalf("sender stats: %+v", n.Iface("a"))
	}
	if n.Iface("b").MsgsReceived != 1 {
		t.Fatalf("receiver stats: %+v", n.Iface("b"))
	}
}

// Property: TransferTime is monotone nondecreasing in payload size.
func TestTransferTimeMonotoneProperty(t *testing.T) {
	env := sim.NewEnv(1)
	n := testNet(env)
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return n.TransferTime(x) <= n.TransferTime(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	_ = env
}

// Property: per-byte cost falls as messages grow (framing amortization).
func TestLargeMessagesMoreEfficient(t *testing.T) {
	env := sim.NewEnv(1)
	n := testNet(env)
	small := n.TransferTime(1024).Seconds() / 1024
	large := n.TransferTime(1<<22).Seconds() / float64(1<<22)
	if large >= small {
		t.Fatalf("per-byte cost did not fall: small %g, large %g", small, large)
	}
	_ = env
}

func TestGigabitEthernetDefaults(t *testing.T) {
	cfg := GigabitEthernet()
	if cfg.BandwidthBps != 125e6 {
		t.Fatalf("bandwidth = %v", cfg.BandwidthBps)
	}
	if cfg.Latency <= 0 || cfg.PerMessageCPU <= 0 || cfg.FrameOverhead <= 0 {
		t.Fatalf("bad defaults: %+v", cfg)
	}
}
