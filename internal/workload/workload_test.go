package workload

import (
	"strings"
	"testing"
	"testing/quick"

	"iotaxo/internal/cluster"
	"iotaxo/internal/sim"
)

func testCluster() *cluster.Cluster {
	cfg := cluster.Small()
	cfg.MaxSkew = 0
	cfg.MaxDrift = 0
	return cluster.New(cfg)
}

func TestPatternsLeaveExpectedSizes(t *testing.T) {
	for _, pat := range []Pattern{NToN, N1NonStrided, N1Strided} {
		c := testCluster()
		params := Params{
			Pattern:   pat,
			BlockSize: 64 << 10,
			NObj:      8,
			Path:      "/pfs/testfile",
		}
		res := Run(c.World, params)
		if res.Bytes != params.TotalBytes(c.Ranks()) {
			t.Fatalf("%v: bytes = %d, want %d", pat, res.Bytes, params.TotalBytes(c.Ranks()))
		}
		for path, wantSize := range params.ExpectedSizes(c.Ranks()) {
			size, _, _, ok := c.PFS.Snapshot(path)
			if !ok {
				t.Fatalf("%v: %s missing", pat, path)
			}
			if size != wantSize {
				t.Fatalf("%v: %s size = %d, want %d", pat, path, size, wantSize)
			}
		}
	}
}

func TestOffsetsDisjointAndComplete(t *testing.T) {
	// Property: for shared-file patterns, the union of all rank objects
	// tiles [0, ranks*nobj*bs) with no overlap.
	f := func(patRaw, ranksRaw, nobjRaw uint8) bool {
		pat := Pattern(int(patRaw)%2 + 1) // N1NonStrided or N1Strided
		ranks := int(ranksRaw)%6 + 1
		nobj := int(nobjRaw)%6 + 1
		const bs = 1024
		params := Params{Pattern: pat, BlockSize: bs, NObj: nobj, Path: "/f"}
		seen := make(map[int64]bool)
		for r := 0; r < ranks; r++ {
			for i := 0; i < nobj; i++ {
				off := params.OffsetFor(ranks, r, i)
				if off%bs != 0 || seen[off] {
					return false
				}
				seen[off] = true
			}
		}
		return len(seen) == ranks*nobj
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStridedInterleavesRanks(t *testing.T) {
	params := Params{Pattern: N1Strided, BlockSize: 100, NObj: 4, Path: "/f"}
	// With 4 ranks, rank 0 obj 0 at 0, rank 1 obj 0 at 100, rank 0 obj 1 at 400.
	if params.OffsetFor(4, 0, 0) != 0 || params.OffsetFor(4, 1, 0) != 100 {
		t.Fatal("strided offsets wrong at object 0")
	}
	if params.OffsetFor(4, 0, 1) != 400 {
		t.Fatalf("strided offset = %d, want 400", params.OffsetFor(4, 0, 1))
	}
}

func TestNonStridedSegments(t *testing.T) {
	params := Params{Pattern: N1NonStrided, BlockSize: 100, NObj: 4, Path: "/f"}
	if params.OffsetFor(4, 1, 0) != 400 {
		t.Fatalf("segment base = %d, want 400", params.OffsetFor(4, 1, 0))
	}
	if params.OffsetFor(4, 1, 3) != 700 {
		t.Fatalf("segment end = %d, want 700", params.OffsetFor(4, 1, 3))
	}
}

func TestBandwidthPositiveAndBounded(t *testing.T) {
	c := testCluster()
	res := Run(c.World, Params{Pattern: N1Strided, BlockSize: 256 << 10, NObj: 4, Path: "/pfs/bw"})
	bw := res.BandwidthBps()
	if bw <= 0 {
		t.Fatal("bandwidth not positive")
	}
	// Cannot exceed aggregate NIC bandwidth of the servers.
	maxBW := float64(c.Cfg.PFS.Servers) * c.Cfg.Net.BandwidthBps
	if bw > maxBW {
		t.Fatalf("bandwidth %g exceeds physical limit %g", bw, maxBW)
	}
}

func TestElapsedCoversIOPhase(t *testing.T) {
	c := testCluster()
	res := Run(c.World, Params{Pattern: NToN, BlockSize: 64 << 10, NObj: 4, Path: "/pfs/e"})
	if res.IOElapsed <= 0 || res.Elapsed < res.IOElapsed {
		t.Fatalf("elapsed=%v io=%v", res.Elapsed, res.IOElapsed)
	}
}

func TestCommandLineMatchesFigure1Style(t *testing.T) {
	cl := Params{Pattern: N1Strided, BlockSize: 32768, NObj: 1, Path: "/pfs/f"}.CommandLine()
	if !strings.Contains(cl, `"-strided" "1"`) || !strings.Contains(cl, `"-size" "32768"`) {
		t.Fatalf("command line: %s", cl)
	}
}

func TestTouchReadsBack(t *testing.T) {
	c := testCluster()
	res := Run(c.World, Params{Pattern: NToN, BlockSize: 64 << 10, NObj: 2, Path: "/pfs/t", Touch: true})
	if res.Bytes != int64(c.Ranks())*2*(64<<10) {
		t.Fatalf("bytes = %d", res.Bytes)
	}
}

func TestLargerBlocksHigherBandwidth(t *testing.T) {
	// The headline phenomenon: aggregate bandwidth grows with block size.
	run := func(bs int64, nobj int) float64 {
		c := testCluster()
		res := Run(c.World, Params{Pattern: N1NonStrided, BlockSize: bs, NObj: nobj, Path: "/pfs/s"})
		return res.BandwidthBps()
	}
	small := run(16<<10, 16)
	large := run(256<<10, 1)
	if large <= small {
		t.Fatalf("bandwidth did not grow with block size: %g vs %g", small, large)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() sim.Duration {
		c := testCluster()
		return Run(c.World, Params{Pattern: N1Strided, BlockSize: 64 << 10, NObj: 4, Path: "/pfs/d"}).Elapsed
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
}

func TestPatternStrings(t *testing.T) {
	for _, pat := range []Pattern{NToN, N1NonStrided, N1Strided} {
		if pat.String() == "" || strings.HasPrefix(pat.String(), "pattern(") {
			t.Fatalf("bad string for %d", int(pat))
		}
	}
}

func TestReadBackPhase(t *testing.T) {
	c := testCluster()
	res := Run(c.World, Params{
		Pattern: N1Strided, BlockSize: 64 << 10, NObj: 4,
		Path: "/pfs/rb", ReadBack: true,
	})
	if res.BytesRead != res.Bytes {
		t.Fatalf("read back %d of %d bytes", res.BytesRead, res.Bytes)
	}
	if res.ReadBandwidthBps() <= 0 {
		t.Fatal("read bandwidth not positive")
	}
	if res.ReadElapsed <= 0 || res.Elapsed < res.IOElapsed+res.ReadElapsed {
		t.Fatalf("phase accounting: elapsed=%v io=%v read=%v", res.Elapsed, res.IOElapsed, res.ReadElapsed)
	}
}

func TestReadBackAllPatterns(t *testing.T) {
	for _, pat := range []Pattern{NToN, N1NonStrided, N1Strided} {
		c := testCluster()
		res := Run(c.World, Params{
			Pattern: pat, BlockSize: 64 << 10, NObj: 2,
			Path: "/pfs/rbp", ReadBack: true,
		})
		if res.BytesRead != res.Bytes {
			t.Fatalf("%v: read %d of %d", pat, res.BytesRead, res.Bytes)
		}
	}
}

func TestCollectiveWorkloadMatchesIndependentEndState(t *testing.T) {
	run := func(collective bool) (int64, uint64) {
		c := testCluster()
		Run(c.World, Params{
			Pattern: N1Strided, BlockSize: 64 << 10, NObj: 4,
			Path: "/pfs/cw", Collective: collective,
		})
		size, digest, _, _ := c.PFS.Snapshot("/pfs/cw")
		return size, digest
	}
	s1, d1 := run(false)
	s2, d2 := run(true)
	if s1 != s2 || d1 != d2 {
		t.Fatalf("collective workload end state differs: (%d,%x) vs (%d,%x)", s1, d1, s2, d2)
	}
}
