package workload

// The producer-consumer scenario: ranks pair up, the even partner writes a
// segment of a shared file and the odd partner reads it back after an MPI
// handshake. The file system is the coupling channel — the write/sync/
// signal/read chain is a genuine cross-rank causal dependency, the kind
// //TRACE's throttling discovers and the kind pure per-rank tracers cannot
// see. Half the ranks exercise the write path, half the read path, in the
// same run.

import (
	"fmt"

	"iotaxo/internal/mpi"
	"iotaxo/internal/sim"
)

const (
	prodConsPath = "/pfs/prodcons.dat"
	prodConsTag  = 77
)

func init() {
	Register(scenario{
		name: "producer-consumer",
		desc: "paired ranks: producers write shared-file segments their partner rank reads back",
		spec: prodConsSpec,
	})
}

func prodConsSpec(sc Scale) Spec {
	block := sc.BlockSize
	nobj := sc.Objects()
	return Spec{
		Workload: "producer-consumer",
		CommandLine: fmt.Sprintf("/prod_cons.exe \"-size\" \"%d\" \"-nobj\" \"%d\"",
			block, nobj),
		Program: func(p *sim.Proc, r *mpi.Rank, stats *RankStats) {
			ranks := r.CommSize(p)
			me := r.CommRank(p)
			r.Init(p)
			r.Barrier(p)

			// Pair (2k, 2k+1) shares segment k. With an odd world size the
			// last rank has no partner and plays both roles itself.
			partner := me ^ 1
			segBase := int64(me/2) * int64(nobj) * block

			open := func(amode int) *mpi.File {
				f, err := r.FileOpen(p, prodConsPath, amode)
				if err != nil {
					panic(fmt.Sprintf("workload: rank %d prodcons open: %v", me, err))
				}
				return f
			}
			produce := func(f *mpi.File) {
				if stats != nil {
					stats.IOStart = p.Now()
				}
				for i := 0; i < nobj; i++ {
					n, werr := f.WriteAt(p, segBase+int64(i)*block, block)
					if werr != nil {
						panic(fmt.Sprintf("workload: rank %d produce: %v", me, werr))
					}
					if stats != nil {
						stats.Bytes += n
					}
				}
				if stats != nil {
					stats.IOEnd = p.Now()
				}
				// The segment must be durable — size pushed to the metadata
				// server — before the consumer is signalled.
				if serr := f.Sync(p); serr != nil {
					panic(fmt.Sprintf("workload: rank %d produce sync: %v", me, serr))
				}
			}
			consume := func(f *mpi.File) {
				if stats != nil {
					stats.ReadStart = p.Now()
				}
				for i := 0; i < nobj; i++ {
					n, rerr := f.ReadAt(p, segBase+int64(i)*block, block)
					if rerr != nil {
						panic(fmt.Sprintf("workload: rank %d consume: %v", me, rerr))
					}
					if stats != nil {
						stats.BytesRead += n
					}
				}
				if stats != nil {
					stats.ReadEnd = p.Now()
				}
			}
			closeFile := func(f *mpi.File) {
				if err := f.Close(p); err != nil {
					panic(fmt.Sprintf("workload: rank %d prodcons close: %v", me, err))
				}
			}

			switch {
			case partner >= ranks:
				// Unpaired trailing rank: produce, then read back its own
				// segment through the same handle.
				f := open(mpi.ModeCreate | mpi.ModeRdwr)
				produce(f)
				consume(f)
				closeFile(f)
			case me%2 == 0:
				f := open(mpi.ModeCreate | mpi.ModeWronly)
				produce(f)
				closeFile(f)
				// The handshake: the segment is durable, go read it.
				r.Send(p, partner, prodConsTag, 8)
			default:
				// Consumers do not write; pin the write window to the wait
				// start so the aggregate I/O phase spans real activity.
				if stats != nil {
					stats.IOStart = p.Now()
					stats.IOEnd = stats.IOStart
				}
				r.Recv(p, partner, prodConsTag)
				// Open after the handshake: the fresh handle sees the
				// producer's pushed size (both pair members share segment
				// index me/2).
				f := open(mpi.ModeRdonly)
				consume(f)
				closeFile(f)
			}
			r.Barrier(p)
		},
	}
}
