package workload

// The analytics scan scenario: a read-mostly strided sweep over a shared
// dataset, the access shape of post-hoc analysis jobs (and of the paper's
// own trace-analysis tooling). A short contiguous populate phase lays the
// dataset down; the measured phase is the scan, where each rank reads every
// ranks-th object across the whole file — crossing segment (and therefore
// stripe-server) boundaries on nearly every call. Read-path interposition
// costs, invisible to the write-only figures, surface here.

import (
	"fmt"

	"iotaxo/internal/mpi"
	"iotaxo/internal/sim"
)

const scanPath = "/pfs/analytics.dat"

func init() {
	Register(scenario{
		name: "analytics-scan",
		desc: "read-mostly strided scan over a pre-populated shared file",
		spec: scanSpec,
	})
}

func scanSpec(sc Scale) Spec {
	block := sc.BlockSize
	nobj := sc.Objects()
	return Spec{
		Workload: "analytics-scan",
		CommandLine: fmt.Sprintf("/analytics_scan.exe \"-size\" \"%d\" \"-nobj\" \"%d\"",
			block, nobj),
		Program: func(p *sim.Proc, r *mpi.Rank, stats *RankStats) {
			ranks := r.CommSize(p)
			me := r.CommRank(p)
			r.Init(p)
			r.Barrier(p)

			// Populate: contiguous per-rank segments, the cheap setup pass.
			// It is deliberately left out of the rank's I/O window — the
			// scenario's measured phase is the scan.
			f, err := r.FileOpen(p, scanPath, mpi.ModeCreate|mpi.ModeWronly)
			if err != nil {
				panic(fmt.Sprintf("workload: rank %d scan open: %v", me, err))
			}
			segBase := int64(me) * int64(nobj) * block
			for i := 0; i < nobj; i++ {
				if _, err := f.WriteAt(p, segBase+int64(i)*block, block); err != nil {
					panic(fmt.Sprintf("workload: rank %d scan populate: %v", me, err))
				}
			}
			// Close pushes the size to the metadata server; the barrier
			// makes every segment durable before anyone scans.
			if err := f.Close(p); err != nil {
				panic(fmt.Sprintf("workload: rank %d scan populate close: %v", me, err))
			}
			r.Barrier(p)

			// Re-open read-only: the fresh handle sees the full dataset,
			// the way an analysis job opens a pre-populated file.
			f, err = r.FileOpen(p, scanPath, mpi.ModeRdonly)
			if err != nil {
				panic(fmt.Sprintf("workload: rank %d scan reopen: %v", me, err))
			}

			// Scan: rank r reads global objects r, r+ranks, r+2*ranks, ...
			// striding across every rank's segment.
			if stats != nil {
				stats.IOStart = p.Now()
				stats.ReadStart = stats.IOStart
			}
			total := ranks * nobj
			for g := me; g < total; g += ranks {
				n, err := f.ReadAt(p, int64(g)*block, block)
				if err != nil {
					panic(fmt.Sprintf("workload: rank %d scan read: %v", me, err))
				}
				if stats != nil {
					stats.Bytes += n
					stats.BytesRead += n
				}
			}
			if stats != nil {
				stats.IOEnd = p.Now()
				stats.ReadEnd = stats.IOEnd
			}
			if err := f.Close(p); err != nil {
				panic(fmt.Sprintf("workload: rank %d scan close: %v", me, err))
			}
			r.Barrier(p)
		},
	}
}
