// Package workload reimplements LANL's mpi_io_test synthetic benchmark (the
// application the paper traces in its overhead experiments) on the simulated
// cluster. It supports the three parallel I/O access patterns of Figures
// 2-4:
//
//   - N-N: every rank writes its own file;
//   - N-1 non-strided (segmented): one shared file, rank r owns the
//     contiguous segment [r*nobj*size, (r+1)*nobj*size);
//   - N-1 strided: one shared file, object i of rank r lands at offset
//     (i*N + r) * size, interleaving ranks block by block.
//
// Parameters mirror the tool's command line shown in Figure 1:
// -type (pattern), -strided, -size (block size), -nobj (objects per rank).
package workload

import (
	"fmt"

	"iotaxo/internal/mpi"
	"iotaxo/internal/sim"
)

// Pattern is a parallel I/O access pattern.
type Pattern int

const (
	// NToN writes one file per rank.
	NToN Pattern = iota
	// N1NonStrided writes one shared file in per-rank contiguous segments.
	N1NonStrided
	// N1Strided writes one shared file with block-interleaved ranks.
	N1Strided
)

// String implements fmt.Stringer using the paper's terminology.
func (p Pattern) String() string {
	switch p {
	case NToN:
		return "N-N"
	case N1NonStrided:
		return "N-1 non-strided"
	case N1Strided:
		return "N-1 strided"
	default:
		return fmt.Sprintf("pattern(%d)", int(p))
	}
}

// Params parameterizes one benchmark run.
type Params struct {
	Pattern   Pattern
	BlockSize int64  // bytes per write call ("-size")
	NObj      int    // objects (blocks) written per rank ("-nobj")
	Path      string // shared-file path, or per-rank prefix for N-N
	Touch     bool   // read back the first object after writing (sanity)
	// BarrierEvery inserts an MPI barrier after every k objects (0 = none):
	// the phase-synchronized structure of checkpointing applications, and
	// the coupling //TRACE's throttling technique discovers.
	BarrierEvery int
	// ReadBack adds a full read phase after the write phase (barrier
	// between them): every rank reads back its own objects, exercising the
	// read path of the parallel file system.
	ReadBack bool
	// Collective uses MPI_File_write_at_all (two-phase collective I/O)
	// instead of independent writes.
	Collective bool
}

// CommandLine renders the equivalent mpi_io_test invocation, used in the
// LANL-Trace aggregate-timing output (Figure 1).
func (pr Params) CommandLine() string {
	strided := 0
	if pr.Pattern == N1Strided {
		strided = 1
	}
	typ := 1
	if pr.Pattern == NToN {
		typ = 2
	}
	return fmt.Sprintf("/mpi_io_test.exe \"-type\" \"%d\" \"-strided\" \"%d\" \"-size\" \"%d\" \"-nobj\" \"%d\"",
		typ, strided, pr.BlockSize, pr.NObj)
}

// TotalBytes is the aggregate data volume across ranks.
func (pr Params) TotalBytes(ranks int) int64 {
	return int64(ranks) * int64(pr.NObj) * pr.BlockSize
}

// FileFor returns the path rank r writes to.
func (pr Params) FileFor(rank int) string {
	if pr.Pattern == NToN {
		return fmt.Sprintf("%s.%d", pr.Path, rank)
	}
	return pr.Path
}

// OffsetFor returns the file offset of rank r's i-th object.
func (pr Params) OffsetFor(ranks, r, i int) int64 {
	switch pr.Pattern {
	case NToN:
		return int64(i) * pr.BlockSize
	case N1NonStrided:
		return (int64(r)*int64(pr.NObj) + int64(i)) * pr.BlockSize
	case N1Strided:
		return (int64(i)*int64(ranks) + int64(r)) * pr.BlockSize
	default:
		panic("workload: unknown pattern")
	}
}

// RankStats captures one rank's I/O phases.
type RankStats struct {
	IOStart   sim.Time // global time the rank began its first write
	IOEnd     sim.Time // global time its last write returned
	Bytes     int64
	ReadStart sim.Time
	ReadEnd   sim.Time
	BytesRead int64
}

// Result summarizes a run.
type Result struct {
	// Workload is the registered scenario name for Spec-driven runs
	// (empty for direct Params runs).
	Workload    string
	Params      Params
	Ranks       int
	Elapsed     sim.Duration // job wall-clock (launch to last rank exit)
	IOElapsed   sim.Duration // first write start to last write end, global
	Bytes       int64
	ReadElapsed sim.Duration // read phase span, when ReadBack is enabled
	BytesRead   int64
	PerRank     []RankStats
}

// BandwidthBps is the aggregate write bandwidth over the I/O phase.
func (r Result) BandwidthBps() float64 {
	if r.IOElapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / r.IOElapsed.Seconds()
}

// ReadBandwidthBps is the aggregate read bandwidth over the read phase.
func (r Result) ReadBandwidthBps() float64 {
	if r.ReadElapsed <= 0 {
		return 0
	}
	return float64(r.BytesRead) / r.ReadElapsed.Seconds()
}

// Run executes the benchmark on a world and returns the measurement. The
// world's environment is driven to completion, so each Run needs a fresh
// cluster.
func Run(w *mpi.World, params Params) Result {
	perRank := make([]RankStats, w.Size())
	elapsed := w.RunToCompletion(func(p *sim.Proc, r *mpi.Rank) {
		Program(p, r, params, &perRank[r.RankID()])
	})
	return ResultFromStats(params, elapsed, perRank)
}

// ResultFromStats assembles a Result from per-rank statistics gathered by a
// caller that drove Program itself (e.g. under a tracing framework).
func ResultFromStats(params Params, elapsed sim.Duration, perRank []RankStats) Result {
	res := Result{
		Params:  params,
		Ranks:   len(perRank),
		PerRank: perRank,
		Elapsed: elapsed,
	}
	var first, last sim.Time
	var rFirst, rLast sim.Time
	seenRead := false
	for i, st := range perRank {
		res.Bytes += st.Bytes
		res.BytesRead += st.BytesRead
		if i == 0 || st.IOStart < first {
			first = st.IOStart
		}
		if st.IOEnd > last {
			last = st.IOEnd
		}
		// Only ranks that ran a read phase contribute to the read window:
		// in mixed-role scenarios (producer-consumer) the writers' zero
		// ReadStart must not stretch the window back to launch.
		if st.ReadEnd > 0 {
			if !seenRead || st.ReadStart < rFirst {
				rFirst = st.ReadStart
			}
			if st.ReadEnd > rLast {
				rLast = st.ReadEnd
			}
			seenRead = true
		}
	}
	res.IOElapsed = last - first
	if rLast > rFirst {
		res.ReadElapsed = rLast - rFirst
	}
	return res
}

// Program is the per-rank body of mpi_io_test, exposed separately so
// tracing frameworks can wrap and replay it. stats may be nil.
func Program(p *sim.Proc, r *mpi.Rank, params Params, stats *RankStats) {
	ranks := r.CommSize(p)
	me := r.CommRank(p)
	r.Init(p)

	// "# Barrier before /mpi_io_test.exe ..." — Figure 1.
	r.Barrier(p)

	amode := mpi.ModeCreate | mpi.ModeWronly
	if params.Touch || params.ReadBack {
		amode = mpi.ModeCreate | mpi.ModeRdwr
	}
	f, err := r.FileOpen(p, params.FileFor(me), amode)
	if err != nil {
		panic(fmt.Sprintf("workload: rank %d open: %v", me, err))
	}

	if stats != nil {
		stats.IOStart = p.Now()
	}
	if params.Collective {
		// One collective covers the rank's whole strided access set, as
		// real applications drive two-phase I/O (via MPI file views).
		offsets := make([]int64, params.NObj)
		for i := 0; i < params.NObj; i++ {
			offsets[i] = params.OffsetFor(ranks, me, i)
		}
		n, err := f.WriteStridedAll(p, offsets, params.BlockSize)
		if err != nil {
			panic(fmt.Sprintf("workload: rank %d collective write: %v", me, err))
		}
		if stats != nil {
			stats.Bytes += n
		}
	} else {
		for i := 0; i < params.NObj; i++ {
			off := params.OffsetFor(ranks, me, i)
			n, err := f.WriteAt(p, off, params.BlockSize)
			if err != nil {
				panic(fmt.Sprintf("workload: rank %d write: %v", me, err))
			}
			if stats != nil {
				stats.Bytes += n
			}
			if params.BarrierEvery > 0 && (i+1)%params.BarrierEvery == 0 && i+1 < params.NObj {
				r.Barrier(p)
			}
		}
	}
	if stats != nil {
		stats.IOEnd = p.Now()
	}

	if params.Touch {
		f.ReadAt(p, params.OffsetFor(ranks, me, 0), params.BlockSize)
	}

	if params.ReadBack {
		// Make every rank's writes visible before the read phase.
		if err := f.Sync(p); err != nil {
			panic(fmt.Sprintf("workload: rank %d sync: %v", me, err))
		}
		r.Barrier(p)
		if stats != nil {
			stats.ReadStart = p.Now()
		}
		for i := 0; i < params.NObj; i++ {
			off := params.OffsetFor(ranks, me, i)
			n, err := f.ReadAt(p, off, params.BlockSize)
			if err != nil {
				panic(fmt.Sprintf("workload: rank %d read: %v", me, err))
			}
			if stats != nil {
				stats.BytesRead += n
			}
		}
		if stats != nil {
			stats.ReadEnd = p.Now()
		}
	}
	if err := f.Close(p); err != nil {
		panic(fmt.Sprintf("workload: rank %d close: %v", me, err))
	}

	// "# Barrier after /mpi_io_test.exe ..." — Figure 1.
	r.Barrier(p)
}

// ExpectedSizes returns the file sizes the pattern must leave behind, keyed
// by path: the end-state oracle for integration tests.
func (pr Params) ExpectedSizes(ranks int) map[string]int64 {
	out := make(map[string]int64)
	perRank := int64(pr.NObj) * pr.BlockSize
	switch pr.Pattern {
	case NToN:
		for r := 0; r < ranks; r++ {
			out[pr.FileFor(r)] = perRank
		}
	default:
		out[pr.Path] = perRank * int64(ranks)
	}
	return out
}
