package workload

// The metadata storm scenario: an N-N job dominated by create/stat/unlink
// traffic on many small files — the inverse of the bandwidth-bound
// mpi_io_test patterns. Every rank creates a directory's worth of tiny
// files, stats its own and a neighbor's (cross-rank metadata reads hit the
// PFS metadata path, not the stripe servers), then unlinks everything it
// created. Per-event tracer costs that vanish under megabyte writes
// dominate here, which is exactly the fidelity shift the syscall
// observability studies report for metadata-heavy workloads.

import (
	"fmt"

	"iotaxo/internal/mpi"
	"iotaxo/internal/sim"
)

// metaPayload caps the per-file write so the scenario stays
// metadata-dominated at every block size.
const metaPayload = 4 << 10

func init() {
	Register(scenario{
		name: "metadata-storm",
		desc: "N-N create/stat/unlink storm over many small files",
		spec: metaStormSpec,
	})
}

func metaStormSpec(sc Scale) Spec {
	nfiles := sc.Objects()
	payload := sc.BlockSize
	if payload > metaPayload {
		payload = metaPayload
	}
	return Spec{
		Workload: "metadata-storm",
		CommandLine: fmt.Sprintf("/meta_storm.exe \"-nfiles\" \"%d\" \"-size\" \"%d\"",
			nfiles, payload),
		Program: func(p *sim.Proc, r *mpi.Rank, stats *RankStats) {
			ranks := r.CommSize(p)
			me := r.CommRank(p)
			r.Init(p)
			r.Barrier(p)

			path := func(rank, i int) string {
				return fmt.Sprintf("/pfs/meta.%d.%d", rank, i)
			}
			if stats != nil {
				stats.IOStart = p.Now()
			}
			// Create burst: one tiny file per object.
			for i := 0; i < nfiles; i++ {
				f, err := r.FileOpen(p, path(me, i), mpi.ModeCreate|mpi.ModeWronly)
				if err != nil {
					panic(fmt.Sprintf("workload: rank %d meta create: %v", me, err))
				}
				n, err := f.WriteAt(p, 0, payload)
				if err != nil {
					panic(fmt.Sprintf("workload: rank %d meta write: %v", me, err))
				}
				if stats != nil {
					stats.Bytes += n
				}
				if err := f.Close(p); err != nil {
					panic(fmt.Sprintf("workload: rank %d meta close: %v", me, err))
				}
			}
			// All files exist before the cross-rank stat phase.
			r.Barrier(p)

			pc := r.Proc()
			neighbor := (me + 1) % ranks
			for i := 0; i < nfiles; i++ {
				if _, err := pc.Stat(p, path(me, i)); err != nil {
					panic(fmt.Sprintf("workload: rank %d stat own: %v", me, err))
				}
				if _, err := pc.Stat(p, path(neighbor, i)); err != nil {
					panic(fmt.Sprintf("workload: rank %d stat neighbor: %v", me, err))
				}
			}
			// No unlink until every rank has finished stat-ing.
			r.Barrier(p)

			for i := 0; i < nfiles; i++ {
				if err := pc.Unlink(p, path(me, i)); err != nil {
					panic(fmt.Sprintf("workload: rank %d unlink: %v", me, err))
				}
			}
			if stats != nil {
				stats.IOEnd = p.Now()
			}
			r.Barrier(p)
		},
	}
}
