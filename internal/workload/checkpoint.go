package workload

// The checkpoint/restart scenario: the phase-synchronized write-burst
// structure of bulk-synchronous HPC applications. Each epoch every rank
// dumps its state segment into a per-epoch shared checkpoint file behind a
// barrier (the burst), and after the last epoch the job "restarts" by
// reading the final checkpoint back in full. The pattern stresses the
// write path in synchronized bursts (peak PFS load, then silence) and the
// read path in one cold sweep — the shape Recorder-style studies show
// tracers mispredict when measured only on steady-state benchmarks.

import (
	"fmt"

	"iotaxo/internal/mpi"
	"iotaxo/internal/sim"
)

// checkpointEpochs is the number of checkpoint phases; the per-rank byte
// budget is split evenly across them.
const checkpointEpochs = 4

func init() {
	Register(scenario{
		name: "checkpoint-restart",
		desc: "barrier-phased checkpoint write bursts, then a full restart read of the last checkpoint",
		spec: checkpointSpec,
	})
}

func checkpointSpec(sc Scale) Spec {
	block := sc.BlockSize
	nobj := sc.ObjectsPer(checkpointEpochs)
	return Spec{
		Workload: "checkpoint-restart",
		CommandLine: fmt.Sprintf("/ckpt_restart.exe \"-epochs\" \"%d\" \"-size\" \"%d\" \"-nobj\" \"%d\"",
			checkpointEpochs, block, nobj),
		Program: func(p *sim.Proc, r *mpi.Rank, stats *RankStats) {
			me := r.CommRank(p)
			r.Init(p)
			r.Barrier(p)

			segBase := int64(me) * int64(nobj) * block
			for e := 0; e < checkpointEpochs; e++ {
				f, err := r.FileOpen(p, checkpointPath(e), mpi.ModeCreate|mpi.ModeWronly)
				if err != nil {
					panic(fmt.Sprintf("workload: rank %d checkpoint open: %v", me, err))
				}
				if stats != nil && e == 0 {
					stats.IOStart = p.Now()
				}
				for i := 0; i < nobj; i++ {
					n, err := f.WriteAt(p, segBase+int64(i)*block, block)
					if err != nil {
						panic(fmt.Sprintf("workload: rank %d checkpoint write: %v", me, err))
					}
					if stats != nil {
						stats.Bytes += n
					}
				}
				if err := f.Sync(p); err != nil {
					panic(fmt.Sprintf("workload: rank %d checkpoint sync: %v", me, err))
				}
				if err := f.Close(p); err != nil {
					panic(fmt.Sprintf("workload: rank %d checkpoint close: %v", me, err))
				}
				if stats != nil {
					stats.IOEnd = p.Now()
				}
				// The epoch barrier: no rank resumes compute until the
				// checkpoint is globally complete.
				r.Barrier(p)
			}

			// Restart: every rank reads its segment of the last checkpoint,
			// collectively re-loading the full file.
			f, err := r.FileOpen(p, checkpointPath(checkpointEpochs-1), mpi.ModeRdonly)
			if err != nil {
				panic(fmt.Sprintf("workload: rank %d restart open: %v", me, err))
			}
			if stats != nil {
				stats.ReadStart = p.Now()
			}
			for i := 0; i < nobj; i++ {
				n, err := f.ReadAt(p, segBase+int64(i)*block, block)
				if err != nil {
					panic(fmt.Sprintf("workload: rank %d restart read: %v", me, err))
				}
				if stats != nil {
					stats.BytesRead += n
				}
			}
			if stats != nil {
				stats.ReadEnd = p.Now()
			}
			if err := f.Close(p); err != nil {
				panic(fmt.Sprintf("workload: rank %d restart close: %v", me, err))
			}
			r.Barrier(p)
		},
	}
}

func checkpointPath(epoch int) string { return fmt.Sprintf("/pfs/ckpt.%d", epoch) }
