package workload

// This file is the workload half of the taxonomy's measurement matrix: a
// Workload interface with a package-level registry, mirroring
// internal/framework's Register/Lookup/All design. A registered workload is
// one I/O scenario the harness can run under any tracing framework; the
// overhead matrix is registered frameworks x registered workloads, and
// adding a scenario is a one-file change (implement Workload, call Register
// from init), symmetric with adding a framework.
//
// The three mpi_io_test access patterns of Figures 2-4 register here as the
// legacy axis; checkpoint.go, metastorm.go, scan.go, and prodcons.go grow
// it with scenarios exercising different kernel/VFS/PFS paths.

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"iotaxo/internal/mpi"
	"iotaxo/internal/sim"
)

// Scale is the workload-independent size knob of one run: every scenario
// derives its own concrete parameterization (object counts, file counts,
// epoch sizes) from it, so the harness can sweep any workload along the
// same block-size axis the paper's figures use.
type Scale struct {
	// BlockSize is the bytes moved per I/O call (the sweep's x-axis).
	BlockSize int64
	// PerRankBytes is each rank's target data volume.
	PerRankBytes int64
}

// WeakScale returns one rung of a weak-scaling ladder: the per-rank volume
// is fixed, so the job's total volume grows linearly with the rank count.
func WeakScale(blockSize, perRankBytes int64) Scale {
	return Scale{BlockSize: blockSize, PerRankBytes: perRankBytes}
}

// StrongScale returns one rung of a strong-scaling ladder: the job's total
// volume is fixed and divided evenly across ranks. Per-rank volume floors
// at one block (every rank writes at least one object — see Objects), so
// at extreme rank counts the realized total exceeds totalBytes; TotalBytes
// reports the realized volume.
func StrongScale(blockSize, totalBytes int64, ranks int) Scale {
	if ranks < 1 {
		ranks = 1
	}
	return Scale{BlockSize: blockSize, PerRankBytes: totalBytes / int64(ranks)}
}

// Objects is the per-rank object count the scale implies (floor 1).
func (sc Scale) Objects() int {
	n := int(sc.PerRankBytes / sc.BlockSize)
	if n < 1 {
		n = 1
	}
	return n
}

// TotalBytes reports the job-wide data volume the scale implies at a rank
// count, after the one-object-per-rank floor.
func (sc Scale) TotalBytes(ranks int) int64 {
	return int64(ranks) * int64(sc.Objects()) * sc.BlockSize
}

// ObjectsPer splits the per-rank object budget across parts phases
// (floor 1 per phase).
func (sc Scale) ObjectsPer(parts int) int {
	n := sc.Objects() / parts
	if n < 1 {
		n = 1
	}
	return n
}

// MPIIOParams derives the mpi_io_test parameterization for a pattern at
// this scale: the bridge between the generic Scale and the legacy Params.
func (sc Scale) MPIIOParams(p Pattern) Params {
	return Params{
		Pattern:   p,
		BlockSize: sc.BlockSize,
		NObj:      sc.Objects(),
		Path:      "/pfs/mpi_io_test.out",
	}
}

// Body is the per-rank program of a scenario. Bodies must be pure functions
// of their arguments — reusable across fresh clusters (multi-run frameworks
// re-execute them for dependency probes) and safe with a nil stats.
type Body func(p *sim.Proc, r *mpi.Rank, stats *RankStats)

// Spec is one fully-parameterized run plan: the per-rank program plus the
// metadata a tracing framework needs to label what it observed. A Spec is
// what framework.Session.Run receives — frameworks wrap Program with their
// probes and never learn which scenario they are measuring.
type Spec struct {
	// Workload is the registered scenario name (Workload.Name).
	Workload string
	// CommandLine is the equivalent command invocation, rendered in the
	// Figure 1 style for trace headers.
	CommandLine string
	// Program is the per-rank body.
	Program Body

	// params carries the mpi_io_test parameterization for specs derived
	// from Params, so Result.Params keeps working for the legacy patterns.
	params Params
}

// Spec adapts an mpi_io_test parameterization to the generic run plan.
func (pr Params) Spec() Spec {
	return Spec{
		Workload:    pr.Pattern.String(),
		CommandLine: pr.CommandLine(),
		Program: func(p *sim.Proc, r *mpi.Rank, stats *RankStats) {
			Program(p, r, pr, stats)
		},
		params: pr,
	}
}

// Run executes the spec untraced on a world and returns the measurement.
// The world's environment is driven to completion, so each Run needs a
// fresh cluster.
func (s Spec) Run(w *mpi.World) Result {
	perRank := make([]RankStats, w.Size())
	elapsed := w.RunToCompletion(func(p *sim.Proc, r *mpi.Rank) {
		s.Program(p, r, &perRank[r.RankID()])
	})
	return s.ResultFromStats(elapsed, perRank)
}

// ResultFromStats assembles a Result from per-rank statistics gathered by a
// caller that drove Program itself (e.g. under a tracing framework).
func (s Spec) ResultFromStats(elapsed sim.Duration, perRank []RankStats) Result {
	res := ResultFromStats(s.params, elapsed, perRank)
	res.Workload = s.Workload
	return res
}

// Workload is one registered I/O scenario: the second axis of the overhead
// matrix, peer to framework.Framework on the first.
type Workload interface {
	// Name is the canonical scenario name and a stable CLI token (the
	// matrix column header; resolvable by ByName).
	Name() string
	// Description is the one-line listing text.
	Description() string
	// Spec instantiates the scenario at a scale. The returned Spec must be
	// reusable: the harness runs it on many fresh clusters.
	Spec(sc Scale) Spec
	// Run executes the scenario untraced on a world at the given scale.
	Run(w *mpi.World, sc Scale) Result
}

// scenario is the common Workload implementation: a name, a description,
// and a spec builder. Run is always Spec followed by Spec.Run.
type scenario struct {
	name string
	desc string
	spec func(sc Scale) Spec
}

func (s scenario) Name() string                      { return s.name }
func (s scenario) Description() string               { return s.desc }
func (s scenario) Spec(sc Scale) Spec                { return s.spec(sc) }
func (s scenario) Run(w *mpi.World, sc Scale) Result { return s.spec(sc).Run(w) }

// --- registry ---

var (
	regMu    sync.RWMutex
	registry = make(map[string]Workload)
)

// Register adds a workload to the package registry, keyed by Name. It
// panics on an empty name or a duplicate registration: both are programming
// errors in the registering package's init.
func Register(w Workload) {
	name := w.Name()
	if name == "" {
		panic("workload: Register with empty name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	for existing := range registry {
		if normalize(existing) == normalize(name) {
			panic(fmt.Sprintf("workload: duplicate registration of %q (collides with %q)", name, existing))
		}
	}
	registry[name] = w
}

// normalize reduces a workload name to its comparison key: lower-cased,
// punctuation and spaces dropped, so "N-1 strided", "n-1-strided", and
// "n1strided" all resolve to the same scenario.
func normalize(name string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(name) {
		if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' {
			b.WriteRune(r)
		}
	}
	return b.String()
}

// ByName resolves a workload by name: the round-trip parse helper for
// Workload.Name (and Pattern.String) CLI tokens. Matching is forgiving —
// case-insensitive with punctuation ignored — so flag values like
// "n-1-strided" or "metadata_storm" resolve.
func ByName(name string) (Workload, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	key := normalize(name)
	if key == "" {
		return nil, false
	}
	// Register guarantees normalized keys are unique, so one deterministic
	// pass resolves exact and munged spellings alike.
	for _, n := range sortedNamesLocked() {
		if normalize(n) == key {
			return registry[n], true
		}
	}
	return nil, false
}

// MustByName is ByName that panics on a miss, for callers that refer to a
// workload the repository itself registers.
func MustByName(name string) Workload {
	w, ok := ByName(name)
	if !ok {
		panic(fmt.Sprintf("workload: %q is not registered (have %s)", name, strings.Join(Names(), ", ")))
	}
	return w
}

// All returns every registered workload in deterministic (name-sorted)
// order — the column order of the overhead matrix and `iotaxo
// -list-workloads`.
func All() []Workload {
	regMu.RLock()
	defer regMu.RUnlock()
	names := sortedNamesLocked()
	out := make([]Workload, len(names))
	for i, n := range names {
		out[i] = registry[n]
	}
	return out
}

// Names returns the registered workload names in deterministic order, for
// error messages and listings.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return sortedNamesLocked()
}

func sortedNamesLocked() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ParsePattern round-trips Pattern.String: it resolves a pattern CLI token
// back to the Pattern value, with the same forgiving matching as ByName.
func ParsePattern(name string) (Pattern, bool) {
	for _, p := range []Pattern{NToN, N1NonStrided, N1Strided} {
		if normalize(p.String()) == normalize(name) {
			return p, true
		}
	}
	return 0, false
}

// PatternWorkload returns the registered workload wrapping an mpi_io_test
// access pattern: the bridge the figure experiments use.
func PatternWorkload(p Pattern) Workload { return MustByName(p.String()) }

// The paper's three mpi_io_test access patterns register as workloads under
// their Figure 2-4 names, making the legacy axis and the scenario axis one.
func init() {
	for _, reg := range []struct {
		p    Pattern
		desc string
	}{
		{NToN, "mpi_io_test: every rank writes its own file (Figure 4)"},
		{N1NonStrided, "mpi_io_test: one shared file, per-rank contiguous segments (Figure 3)"},
		{N1Strided, "mpi_io_test: one shared file, block-interleaved ranks (Figure 2)"},
	} {
		p := reg.p
		Register(scenario{
			name: p.String(),
			desc: reg.desc,
			spec: func(sc Scale) Spec { return sc.MPIIOParams(p).Spec() },
		})
	}
}
