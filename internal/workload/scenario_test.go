package workload

import (
	"strings"
	"testing"
)

// testScale is a small parameterization every scenario can run at on the
// Small cluster: 4 objects of 64 KB per rank.
func testScale() Scale {
	return Scale{BlockSize: 64 << 10, PerRankBytes: 256 << 10}
}

func TestRegistryCoversPatternsAndScenarios(t *testing.T) {
	all := All()
	if len(all) < 7 {
		t.Fatalf("registry has %d workloads, want >= 7 (3 patterns + 4 scenarios)", len(all))
	}
	for _, want := range []string{
		"N-N", "N-1 non-strided", "N-1 strided",
		"checkpoint-restart", "metadata-storm", "analytics-scan", "producer-consumer",
	} {
		if _, ok := ByName(want); !ok {
			t.Errorf("registry missing %q (have %s)", want, strings.Join(Names(), ", "))
		}
	}
	// All() order is deterministic and matches Names().
	names := Names()
	for i, w := range all {
		if w.Name() != names[i] {
			t.Fatalf("All()[%d] = %q, Names()[%d] = %q", i, w.Name(), i, names[i])
		}
		if w.Description() == "" {
			t.Errorf("%s has no description", w.Name())
		}
	}
}

func TestByNameRoundTripsEveryRegisteredName(t *testing.T) {
	for _, name := range Names() {
		w, ok := ByName(name)
		if !ok || w.Name() != name {
			t.Fatalf("ByName(%q) = %v, %v", name, w, ok)
		}
	}
	// CLI-friendly mungings resolve to the same scenario.
	for token, want := range map[string]string{
		"n-1-strided":        "N-1 strided",
		"N1NonStrided":       "N-1 non-strided",
		"n-n":                "N-N",
		"metadata_storm":     "metadata-storm",
		"CHECKPOINT-RESTART": "checkpoint-restart",
		"producerconsumer":   "producer-consumer",
	} {
		w, ok := ByName(token)
		if !ok || w.Name() != want {
			t.Fatalf("ByName(%q) = %v, %v; want %q", token, w, ok, want)
		}
	}
	if _, ok := ByName("no-such-workload"); ok {
		t.Fatal("ByName hit on unregistered name")
	}
	if _, ok := ByName(""); ok {
		t.Fatal("ByName hit on empty name")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustByName did not panic on a miss")
		}
	}()
	MustByName("no-such-workload")
}

func TestParsePatternRoundTrip(t *testing.T) {
	for _, p := range []Pattern{NToN, N1NonStrided, N1Strided} {
		got, ok := ParsePattern(p.String())
		if !ok || got != p {
			t.Fatalf("ParsePattern(%q) = %v, %v", p.String(), got, ok)
		}
		if PatternWorkload(p).Name() != p.String() {
			t.Fatalf("PatternWorkload(%v) = %q", p, PatternWorkload(p).Name())
		}
	}
	if _, ok := ParsePattern("mystery"); ok {
		t.Fatal("ParsePattern hit on unknown token")
	}
}

func TestDuplicateWorkloadRegisterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("normalized-collision Register did not panic")
		}
	}()
	// Collides with "N-1 strided" after normalization.
	Register(scenario{name: "n1strided", desc: "dup", spec: func(Scale) Spec { return Spec{} }})
}

func TestPatternWorkloadMatchesDirectRun(t *testing.T) {
	// The registered pattern workloads are the same program as a direct
	// Params run: identical elapsed time and byte counts.
	sc := testScale()
	for _, p := range []Pattern{NToN, N1NonStrided, N1Strided} {
		direct := Run(testCluster().World, sc.MPIIOParams(p))
		viaReg := PatternWorkload(p).Run(testCluster().World, sc)
		if direct.Elapsed != viaReg.Elapsed || direct.Bytes != viaReg.Bytes {
			t.Fatalf("%v: registry run diverged: %v/%d vs %v/%d",
				p, direct.Elapsed, direct.Bytes, viaReg.Elapsed, viaReg.Bytes)
		}
		if viaReg.Workload != p.String() {
			t.Fatalf("%v: result workload = %q", p, viaReg.Workload)
		}
		if viaReg.Params.Pattern != p {
			t.Fatalf("%v: result params lost", p)
		}
	}
}

func TestCheckpointRestartEndState(t *testing.T) {
	c := testCluster()
	sc := testScale()
	res := MustByName("checkpoint-restart").Run(c.World, sc)
	ranks := c.Ranks()
	nobj := sc.ObjectsPer(checkpointEpochs)
	perEpoch := int64(ranks) * int64(nobj) * sc.BlockSize
	for e := 0; e < checkpointEpochs; e++ {
		size, _, _, ok := c.PFS.Snapshot(checkpointPath(e))
		if !ok || size != perEpoch {
			t.Fatalf("epoch %d: size = %d, ok = %v, want %d", e, size, ok, perEpoch)
		}
	}
	if res.Bytes != perEpoch*checkpointEpochs {
		t.Fatalf("bytes = %d, want %d", res.Bytes, perEpoch*checkpointEpochs)
	}
	// The restart reads the last checkpoint back in full.
	if res.BytesRead != perEpoch {
		t.Fatalf("restart read %d bytes, want %d", res.BytesRead, perEpoch)
	}
	if res.ReadElapsed <= 0 || res.IOElapsed <= 0 {
		t.Fatalf("phase accounting: io=%v read=%v", res.IOElapsed, res.ReadElapsed)
	}
}

func TestMetadataStormLeavesNothingBehind(t *testing.T) {
	c := testCluster()
	sc := testScale()
	res := MustByName("metadata-storm").Run(c.World, sc)
	ranks := c.Ranks()
	nfiles := sc.Objects()
	payload := sc.BlockSize
	if payload > metaPayload {
		payload = metaPayload
	}
	if want := int64(ranks) * int64(nfiles) * payload; res.Bytes != want {
		t.Fatalf("bytes = %d, want %d", res.Bytes, want)
	}
	// Every file was unlinked.
	for r := 0; r < ranks; r++ {
		for i := 0; i < nfiles; i++ {
			if _, _, _, ok := c.PFS.Snapshot(pfsMetaPath(r, i)); ok {
				t.Fatalf("meta file %d/%d survived the unlink phase", r, i)
			}
		}
	}
	if res.Workload != "metadata-storm" {
		t.Fatalf("workload = %q", res.Workload)
	}
}

func pfsMetaPath(rank, i int) string {
	return "/pfs/meta." + itoa(rank) + "." + itoa(i)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestAnalyticsScanReadsWholeDataset(t *testing.T) {
	c := testCluster()
	sc := testScale()
	res := MustByName("analytics-scan").Run(c.World, sc)
	total := int64(c.Ranks()) * int64(sc.Objects()) * sc.BlockSize
	size, _, _, ok := c.PFS.Snapshot(scanPath)
	if !ok || size != total {
		t.Fatalf("dataset size = %d, ok = %v, want %d", size, ok, total)
	}
	// The scan collectively re-reads the full dataset; the measured I/O
	// phase is the read phase.
	if res.BytesRead != total || res.Bytes != total {
		t.Fatalf("scan read %d / counted %d, want %d", res.BytesRead, res.Bytes, total)
	}
	if res.ReadBandwidthBps() <= 0 {
		t.Fatal("scan bandwidth not positive")
	}
}

func TestProducerConsumerReadsEveryWrittenByte(t *testing.T) {
	c := testCluster()
	sc := testScale()
	res := MustByName("producer-consumer").Run(c.World, sc)
	pairs := (c.Ranks() + 1) / 2
	total := int64(pairs) * int64(sc.Objects()) * sc.BlockSize
	size, _, _, ok := c.PFS.Snapshot(prodConsPath)
	if !ok || size != total {
		t.Fatalf("shared file size = %d, ok = %v, want %d", size, ok, total)
	}
	if res.Bytes != total {
		t.Fatalf("produced %d bytes, want %d", res.Bytes, total)
	}
	if res.BytesRead != total {
		t.Fatalf("consumed %d bytes, want %d", res.BytesRead, total)
	}
	// The read window spans only the consume phase: producers (who never
	// read) must not drag ReadStart back to launch time.
	if res.ReadElapsed <= 0 || res.ReadElapsed >= res.Elapsed {
		t.Fatalf("read window %v should cover only the consume phase of %v", res.ReadElapsed, res.Elapsed)
	}
}

func TestScenariosDeterministicAndRerunnable(t *testing.T) {
	// Every registered scenario is deterministic across fresh clusters,
	// and a single Spec is reusable (multi-run frameworks re-execute it).
	sc := testScale()
	for _, w := range All() {
		spec := w.Spec(sc)
		a := spec.Run(testCluster().World)
		b := spec.Run(testCluster().World)
		if a.Elapsed != b.Elapsed || a.Bytes != b.Bytes || a.BytesRead != b.BytesRead {
			t.Fatalf("%s: non-deterministic: (%v,%d,%d) vs (%v,%d,%d)",
				w.Name(), a.Elapsed, a.Bytes, a.BytesRead, b.Elapsed, b.Bytes, b.BytesRead)
		}
		if a.Elapsed <= 0 {
			t.Fatalf("%s: no elapsed time", w.Name())
		}
		if a.Bytes <= 0 {
			t.Fatalf("%s: no bytes moved", w.Name())
		}
		if a.Workload != w.Name() {
			t.Fatalf("%s: result labeled %q", w.Name(), a.Workload)
		}
		if spec.CommandLine == "" {
			t.Fatalf("%s: no command line", w.Name())
		}
	}
}

func TestScaleObjects(t *testing.T) {
	sc := Scale{BlockSize: 64 << 10, PerRankBytes: 1 << 20}
	if sc.Objects() != 16 {
		t.Fatalf("objects = %d", sc.Objects())
	}
	if sc.ObjectsPer(4) != 4 {
		t.Fatalf("objects per 4 = %d", sc.ObjectsPer(4))
	}
	tiny := Scale{BlockSize: 1 << 20, PerRankBytes: 1}
	if tiny.Objects() != 1 || tiny.ObjectsPer(8) != 1 {
		t.Fatal("object floors broken")
	}
}
