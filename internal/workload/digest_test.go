package workload

import "testing"

// TestScaleDigestStable pins the smoke-scale digest (the value the harness
// cache-key pinning test embeds) and checks the equality contract: equal
// scales hash equal, any field change hashes different.
func TestScaleDigestStable(t *testing.T) {
	smoke := Scale{BlockSize: 256 << 10, PerRankBytes: 1 << 20}
	const pinned = 0x0c6868357317be46
	if got := smoke.Digest(); got != pinned {
		t.Errorf("smoke Scale digest drifted: got %#016x, want %#016x (cache keys orphaned; bump the harness cacheSchema if deliberate)", got, pinned)
	}
	if smoke.Digest() != (Scale{BlockSize: 256 << 10, PerRankBytes: 1 << 20}).Digest() {
		t.Error("equal scales must produce equal digests")
	}
	variants := []Scale{
		{BlockSize: 256<<10 + 1, PerRankBytes: 1 << 20},
		{BlockSize: 256 << 10, PerRankBytes: 1<<20 + 1},
		// Swapped values must not collide: each field folds under its own
		// name-seeded stream.
		{BlockSize: 1 << 20, PerRankBytes: 256 << 10},
	}
	for _, v := range variants {
		if v.Digest() == smoke.Digest() {
			t.Errorf("scale %+v collides with the smoke scale digest", v)
		}
	}
}
