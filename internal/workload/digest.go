package workload

// Stable fingerprinting of a Scale, used by the harness's content-addressed
// leaf cache to key simulations by their inputs. The digest is
// field-order-independent: each field is hashed into its own FNV-1a stream
// seeded by the field name, and the streams are XOR-combined, so reordering
// the struct (or the fold below) cannot silently change cache keys. Adding
// a field DOES change every digest — which is exactly the invalidation we
// want, since a new field means a new input dimension.

import "iotaxo/internal/fnvhash"

// Digest returns a stable, field-order-independent fingerprint of the
// scale. Equal scales always produce equal digests across processes; the
// value is pinned by tests to catch accidental cache-key drift.
func (sc Scale) Digest() uint64 {
	var d uint64
	d ^= fnvhash.Int64(fnvhash.String(fnvhash.Offset64, "BlockSize"), sc.BlockSize)
	d ^= fnvhash.Int64(fnvhash.String(fnvhash.Offset64, "PerRankBytes"), sc.PerRankBytes)
	return d
}
