// Package core implements the paper's contribution: the I/O Tracing
// Framework taxonomy. It defines the twelve qualitative feature axes and
// the quantitative overhead axes of Section 3, a Classification record, and
// renderers for the paper's two tables: the single-framework summary-table
// template (Table 1) and the multi-framework comparison (Table 2).
//
// The taxonomy "consists of two elements: feature classification and
// overhead measurement". Feature classification is done by inspection and
// lives in this package as data; overhead measurement is empirical and is
// produced by the harness package driving the simulated cluster, then folded
// into the classification for rendering.
package core

import (
	"fmt"
	"strings"
)

// YesNo is a boolean axis with the paper's rendering.
type YesNo bool

// String implements fmt.Stringer.
func (y YesNo) String() string {
	if y {
		return "Yes"
	}
	return "No"
}

// Scale is a 1..5 ordinal axis; 0 means "not applicable / none".
type Scale int

// Scale bounds.
const (
	ScaleNone Scale = 0
	ScaleMin  Scale = 1
	ScaleMax  Scale = 5
)

// Valid reports whether the scale value is in range.
func (s Scale) Valid() bool { return s >= ScaleNone && s <= ScaleMax }

// label renders a scale with a qualitative gloss.
func (s Scale) label(glosses [6]string) string {
	if !s.Valid() {
		return fmt.Sprintf("invalid(%d)", int(s))
	}
	if glosses[s] == "" {
		return fmt.Sprintf("%d", int(s))
	}
	if s == 0 {
		return glosses[0]
	}
	return fmt.Sprintf("%d (%s)", int(s), glosses[s])
}

var easeGlosses = [6]string{"", "V. Easy", "Easy", "Moderate", "Difficult", "V. Difficult"}
var anonGlosses = [6]string{"No", "Simple", "Basic", "Moderate", "Advanced", "V. Advanced"}
var intrusiveGlosses = [6]string{"", "Passive", "Mostly passive", "Mixed", "Intrusive", "V. Intrusive"}
var granGlosses = [6]string{"No", "Simple", "Basic", "Moderate", "Advanced", "V. Advanced"}

// EventType is one kind of event a framework can capture.
type EventType string

// Event types observed in the survey.
const (
	EventSyscalls   EventType = "System calls"
	EventLibCalls   EventType = "Library calls"
	EventIOSyscalls EventType = "I/O system calls"
	EventFSOps      EventType = "File system operations"
	EventNetwork    EventType = "Network messages"
)

// DataFormat is the trace output format axis.
type DataFormat string

// Data formats.
const (
	FormatHumanReadable DataFormat = "Human readable"
	FormatBinary        DataFormat = "Binary"
)

// OverheadReport is the quantitative element of the taxonomy for one
// framework: empirical elapsed-time overhead and, when measured, bandwidth
// overhead. Free-text descriptions match the paper's summary rows.
type OverheadReport struct {
	// ElapsedMin/Max bound the observed elapsed-time overhead fraction
	// ((traced - untraced)/untraced) across the experiment sweep.
	ElapsedMin, ElapsedMax float64
	// Description is the free-text cell for the summary table.
	Description string
	Measured    bool
}

// String renders the overhead cell.
func (o OverheadReport) String() string {
	if !o.Measured {
		if o.Description != "" {
			return o.Description
		}
		return "N/A"
	}
	if o.Description != "" {
		return fmt.Sprintf("%.0f%% - %.0f%% (%s)", o.ElapsedMin*100, o.ElapsedMax*100, o.Description)
	}
	return fmt.Sprintf("%.0f%% - %.0f%%", o.ElapsedMin*100, o.ElapsedMax*100)
}

// FidelityReport is the trace-replay-fidelity axis.
type FidelityReport struct {
	Supported   bool
	ErrorFrac   float64 // replay timing error fraction (e.g. 0.06)
	Description string
}

// String renders the fidelity cell.
func (f FidelityReport) String() string {
	if !f.Supported {
		return "N/A"
	}
	if f.Description != "" {
		return f.Description
	}
	return fmt.Sprintf("As low as %.0f%%", f.ErrorFrac*100)
}

// Classification is one framework's position on every taxonomy axis —
// a filled-in copy of Table 1.
type Classification struct {
	Name string

	ParallelFSCompat  YesNo
	EaseOfInstall     Scale // 1 very easy .. 5 very difficult
	Anonymization     Scale // 0 none .. 5 very advanced
	EventTypes        []EventType
	TraceGranularity  Scale // 0 none .. 5 very advanced control
	ReplayableTraces  YesNo
	ReplayFidelity    FidelityReport
	RevealsDeps       YesNo
	Intrusiveness     Scale // 1 very passive .. 5 very intrusive
	AnalysisTools     YesNo
	DataFormat        DataFormat
	AccountsSkewDrift string // "Yes", "No", or "N/A" per Table 2
	// CrossLayerSlicing marks frameworks that can attribute one operation's
	// latency across instrumentation layers (library/kernel/servers/disks),
	// the ReLayTracer-style capability causal spans enable.
	CrossLayerSlicing YesNo
	ElapsedOverhead   OverheadReport

	// Notes holds free-text qualifications rendered as footnotes.
	Notes []string
}

// Validate checks scale ranges and required fields.
func (c *Classification) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("core: classification needs a name")
	}
	for _, s := range []struct {
		name string
		v    Scale
		min  Scale
	}{
		{"ease of installation", c.EaseOfInstall, ScaleMin},
		{"anonymization", c.Anonymization, ScaleNone},
		{"trace granularity", c.TraceGranularity, ScaleNone},
		{"intrusiveness", c.Intrusiveness, ScaleMin},
	} {
		if !s.v.Valid() || s.v < s.min {
			return fmt.Errorf("core: %s scale %d out of range [%d,%d]", s.name, s.v, s.min, ScaleMax)
		}
	}
	if len(c.EventTypes) == 0 {
		return fmt.Errorf("core: classification needs at least one event type")
	}
	switch c.AccountsSkewDrift {
	case "Yes", "No", "N/A":
	default:
		return fmt.Errorf("core: AccountsSkewDrift must be Yes/No/N/A, got %q", c.AccountsSkewDrift)
	}
	return nil
}

// eventTypesCell renders the event-type list.
func (c *Classification) eventTypesCell() string {
	out := make([]string, len(c.EventTypes))
	for i, e := range c.EventTypes {
		out[i] = string(e)
	}
	return strings.Join(out, ", ")
}

// FeatureRows returns the (feature, value) pairs in the paper's Table 1/2
// row order.
func (c *Classification) FeatureRows() [][2]string {
	granCell := c.TraceGranularity.label(granGlosses)
	replayCell := c.ReplayableTraces.String()
	return [][2]string{
		{"Parallel file system compatibility", c.ParallelFSCompat.String()},
		{"Ease of installation and use", c.EaseOfInstall.label(easeGlosses)},
		{"Anonymization", c.Anonymization.label(anonGlosses)},
		{"Events types", c.eventTypesCell()},
		{"Control of trace granularity", granCell},
		{"Replayable trace generation", replayCell},
		{"Trace replay fidelity", c.ReplayFidelity.String()},
		{"Reveals dependencies", c.RevealsDeps.String()},
		{"Intrusive vs. Passive", c.Intrusiveness.label(intrusiveGlosses)},
		{"Analysis tools", c.AnalysisTools.String()},
		{"Trace data format", string(c.DataFormat)},
		{"Accounts for time skew and drift", c.AccountsSkewDrift},
		{"Cross-layer latency slicing", c.CrossLayerSlicing.String()},
		{"Elapsed time overhead", c.ElapsedOverhead.String()},
	}
}
