package core

import (
	"fmt"
	"strings"
)

// Table1Template renders the empty summary-table template of the paper's
// Table 1: feature names against the value domains a classifier fills in.
func Table1Template() string {
	rows := [][2]string{
		{"Parallel file system compatibility", "[Yes or No]"},
		{"Ease of installation and use", "[1 (V. Easy) thru 5 (V. Difficult)]"},
		{"Anonymization", "[None or 1 (Simple) thru 5 (V. Advanced)]"},
		{"Events types", "[System calls, library calls, FS events]"},
		{"Control of trace granularity", "[Yes or No]"},
		{"Replayable trace generation", "[Yes or No]"},
		{"Trace replay fidelity", "Describe experiment results"},
		{"Reveals dependencies", "[Yes or No]"},
		{"Intrusive vs. Passive", "[1 (V. Passive) thru 5 (V. Intrusive)]"},
		{"Analysis tools", "[Yes or No]"},
		{"Trace data format", "[Binary or Human readable]"},
		{"Accounts for time skew and drift", "[Yes or No]"},
		{"Cross-layer latency slicing", "[Yes or No]"},
		{"Elapsed time overhead", "Describe experiment results"},
	}
	return renderTable([]string{"Feature", "<I/O Tracing Framework Name>"},
		rowsToCells(rows))
}

// RenderCard renders a single classification as a filled-in Table 1.
func RenderCard(c *Classification) string {
	return renderTable([]string{"Feature", c.Name}, rowsToCells(c.FeatureRows()))
}

// RenderComparison renders several classifications side by side: the
// paper's Table 2 ("Classification summary table for various Traces").
func RenderComparison(cs ...*Classification) string {
	if len(cs) == 0 {
		return ""
	}
	header := []string{"Feature"}
	for _, c := range cs {
		header = append(header, c.Name)
	}
	base := cs[0].FeatureRows()
	cells := make([][]string, len(base))
	for i := range base {
		cells[i] = []string{base[i][0]}
	}
	for _, c := range cs {
		for i, row := range c.FeatureRows() {
			cells[i] = append(cells[i], row[1])
		}
	}
	out := renderTable(header, cells)
	var notes []string
	for _, c := range cs {
		for _, n := range c.Notes {
			notes = append(notes, fmt.Sprintf("  - %s: %s", c.Name, n))
		}
	}
	if len(notes) > 0 {
		out += "Notes:\n" + strings.Join(notes, "\n") + "\n"
	}
	return out
}

// RenderMarkdown renders the comparison as a GitHub-flavored markdown table.
func RenderMarkdown(cs ...*Classification) string {
	if len(cs) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("| Feature |")
	for _, c := range cs {
		fmt.Fprintf(&b, " %s |", c.Name)
	}
	b.WriteString("\n|---|")
	for range cs {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	base := cs[0].FeatureRows()
	for i := range base {
		fmt.Fprintf(&b, "| %s |", base[i][0])
		for _, c := range cs {
			fmt.Fprintf(&b, " %s |", c.FeatureRows()[i][1])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderCSV renders the comparison as CSV for downstream tooling.
func RenderCSV(cs ...*Classification) string {
	if len(cs) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("feature")
	for _, c := range cs {
		fmt.Fprintf(&b, ",%s", csvEscape(c.Name))
	}
	b.WriteString("\n")
	base := cs[0].FeatureRows()
	for i := range base {
		b.WriteString(csvEscape(base[i][0]))
		for _, c := range cs {
			fmt.Fprintf(&b, ",%s", csvEscape(c.FeatureRows()[i][1]))
		}
		b.WriteString("\n")
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

func rowsToCells(rows [][2]string) [][]string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r[0], r[1]}
	}
	return out
}

// renderTable draws an aligned ASCII table.
func renderTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString(" | ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	line(header)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+3*(len(widths)-1)) + "\n")
	for _, row := range rows {
		line(row)
	}
	return b.String()
}
