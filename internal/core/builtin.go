package core

// Built-in classifications transcribing the paper's Table 2 exactly. They
// are the ground truth measured values are compared against, and the
// baseline the framework implementations must match.

// PaperLANLTrace returns the paper's classification of LANL-Trace.
func PaperLANLTrace() *Classification {
	return &Classification{
		Name:              "LANL-Trace",
		ParallelFSCompat:  true,
		EaseOfInstall:     2,
		Anonymization:     ScaleNone,
		EventTypes:        []EventType{EventSyscalls, EventLibCalls},
		TraceGranularity:  1, // "1 (Simple)": strace vs ltrace choice
		ReplayableTraces:  false,
		ReplayFidelity:    FidelityReport{Supported: false},
		RevealsDeps:       false,
		Intrusiveness:     1,
		AnalysisTools:     false,
		DataFormat:        FormatHumanReadable,
		AccountsSkewDrift: "Yes",
		CrossLayerSlicing: false,
		ElapsedOverhead: OverheadReport{
			Measured:    true,
			ElapsedMin:  0.24,
			ElapsedMax:  2.22,
			Description: "high variance across I/O access patterns",
		},
		Notes: []string{
			"Perl, strace and ltrace required on all compute nodes",
			"cannot track memory-mapped I/O",
			"aggregate node-timing output supports skew/drift correction",
		},
	}
}

// PaperTracefs returns the paper's classification of Tracefs.
func PaperTracefs() *Classification {
	return &Classification{
		Name:              "Tracefs",
		ParallelFSCompat:  false,
		EaseOfInstall:     4,
		Anonymization:     4, // "Advanced": CBC encryption with field selection
		EventTypes:        []EventType{EventFSOps},
		TraceGranularity:  5, // "5 (V. Advanced)": declarative filter language
		ReplayableTraces:  false,
		ReplayFidelity:    FidelityReport{Supported: false},
		RevealsDeps:       false,
		Intrusiveness:     1,
		AnalysisTools:     false,
		DataFormat:        FormatBinary,
		AccountsSkewDrift: "N/A",
		CrossLayerSlicing: false,
		ElapsedOverhead: OverheadReport{
			Measured:    true,
			ElapsedMin:  0,
			ElapsedMax:  0.124,
			Description: "developer-reported maximum, I/O intensive benchmark",
		},
		Notes: []string{
			"kernel module: root access and configuration effort required",
			"encryption is not true anonymization (key compromise risk)",
			"sees memory-mapped and NFS I/O missed at the syscall layer",
		},
	}
}

// PaperParallelTrace returns the paper's classification of //TRACE.
func PaperParallelTrace() *Classification {
	return &Classification{
		Name:             "//TRACE",
		ParallelFSCompat: true,
		EaseOfInstall:    2,
		Anonymization:    ScaleNone,
		EventTypes:       []EventType{EventIOSyscalls},
		TraceGranularity: ScaleNone, // "No": everything is captured by design
		ReplayableTraces: true,
		ReplayFidelity: FidelityReport{
			Supported: true,
			ErrorFrac: 0.06,
		},
		RevealsDeps:       true,
		Intrusiveness:     1,
		AnalysisTools:     false,
		DataFormat:        FormatHumanReadable,
		AccountsSkewDrift: "No",
		CrossLayerSlicing: false,
		ElapsedOverhead: OverheadReport{
			Measured:    true,
			ElapsedMin:  0,
			ElapsedMax:  2.05,
			Description: "adjustable by design via throttling sampling",
		},
		Notes: []string{
			"pre-release version evaluated",
			"dynamic library interposition: cannot track memory-mapped I/O",
			"fidelity/overhead trade-off controlled by sampling",
		},
	}
}

// PaperTable2 renders the paper's Table 2 from the built-in classifications.
func PaperTable2() string {
	return RenderComparison(PaperLANLTrace(), PaperTracefs(), PaperParallelTrace())
}

// AllPaperClassifications returns the three survey subjects.
func AllPaperClassifications() []*Classification {
	return []*Classification{PaperLANLTrace(), PaperTracefs(), PaperParallelTrace()}
}
