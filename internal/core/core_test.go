package core

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestBuiltinsValidate(t *testing.T) {
	for _, c := range AllPaperClassifications() {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestValidateCatchesBadValues(t *testing.T) {
	good := PaperLANLTrace()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(c *Classification){
		func(c *Classification) { c.Name = "" },
		func(c *Classification) { c.EaseOfInstall = 0 },
		func(c *Classification) { c.EaseOfInstall = 6 },
		func(c *Classification) { c.Anonymization = -1 },
		func(c *Classification) { c.Intrusiveness = 0 },
		func(c *Classification) { c.EventTypes = nil },
		func(c *Classification) { c.AccountsSkewDrift = "maybe" },
	}
	for i, mutate := range cases {
		c := PaperLANLTrace()
		mutate(c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestTable2MatchesPaperValues(t *testing.T) {
	table := PaperTable2()
	for _, want := range []string{
		"LANL-Trace", "Tracefs", "//TRACE",
		"Parallel file system compatibility",
		"2 (Easy)",
		"4 (Difficult)",
		"4 (Advanced)",
		"5 (V. Advanced)",
		"System calls, Library calls",
		"File system operations",
		"I/O system calls",
		"As low as 6%",
		"1 (Passive)",
		"Binary",
		"Human readable",
		"24% - 222%",
		"0% - 12%",
		"0% - 205%",
	} {
		if !strings.Contains(table, want) {
			t.Errorf("Table 2 missing %q\n%s", want, table)
		}
	}
}

func TestTable1TemplateHasAllAxes(t *testing.T) {
	tmpl := Table1Template()
	for _, axis := range []string{
		"Parallel file system compatibility",
		"Ease of installation and use",
		"Anonymization",
		"Events types",
		"Control of trace granularity",
		"Replayable trace generation",
		"Trace replay fidelity",
		"Reveals dependencies",
		"Intrusive vs. Passive",
		"Analysis tools",
		"Trace data format",
		"Accounts for time skew and drift",
		"Cross-layer latency slicing",
		"Elapsed time overhead",
	} {
		if !strings.Contains(tmpl, axis) {
			t.Errorf("template missing axis %q", axis)
		}
	}
}

func TestRenderCardSingleColumn(t *testing.T) {
	card := RenderCard(PaperTracefs())
	if !strings.Contains(card, "Tracefs") || !strings.Contains(card, "Binary") {
		t.Fatalf("card:\n%s", card)
	}
}

func TestFeatureRowsStableOrderAcrossClassifications(t *testing.T) {
	a := PaperLANLTrace().FeatureRows()
	b := PaperParallelTrace().FeatureRows()
	if len(a) != len(b) || len(a) != 14 {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i][0] != b[i][0] {
			t.Fatalf("row %d feature mismatch: %q vs %q", i, a[i][0], b[i][0])
		}
	}
}

func TestRenderMarkdown(t *testing.T) {
	md := RenderMarkdown(AllPaperClassifications()...)
	if !strings.HasPrefix(md, "| Feature |") {
		t.Fatalf("markdown:\n%s", md)
	}
	lines := strings.Split(strings.TrimSpace(md), "\n")
	// Header + separator + 14 feature rows.
	if len(lines) != 16 {
		t.Fatalf("markdown has %d lines", len(lines))
	}
}

func TestRenderCSVEscaping(t *testing.T) {
	c := PaperLANLTrace()
	c.Name = `weird,"name"`
	csv := RenderCSV(c)
	if !strings.Contains(csv, `"weird,""name"""`) {
		t.Fatalf("csv escaping failed:\n%s", csv)
	}
}

func TestEmptyComparisons(t *testing.T) {
	if RenderComparison() != "" || RenderMarkdown() != "" || RenderCSV() != "" {
		t.Fatal("empty renders should be empty strings")
	}
}

func TestOverheadReportRendering(t *testing.T) {
	if got := (OverheadReport{}).String(); got != "N/A" {
		t.Fatalf("empty = %q", got)
	}
	if got := (OverheadReport{Measured: true, ElapsedMin: 0.1, ElapsedMax: 0.5}).String(); got != "10% - 50%" {
		t.Fatalf("range = %q", got)
	}
	if got := (OverheadReport{Description: "adjustable"}).String(); got != "adjustable" {
		t.Fatalf("desc = %q", got)
	}
}

func TestFidelityReportRendering(t *testing.T) {
	if got := (FidelityReport{}).String(); got != "N/A" {
		t.Fatalf("unsupported = %q", got)
	}
	if got := (FidelityReport{Supported: true, ErrorFrac: 0.06}).String(); got != "As low as 6%" {
		t.Fatalf("supported = %q", got)
	}
}

// Property: any in-range scale assignment validates.
func TestScaleRangeProperty(t *testing.T) {
	f := func(ease, anon, gran, intr uint8) bool {
		c := PaperLANLTrace()
		c.EaseOfInstall = Scale(ease%5) + 1
		c.Anonymization = Scale(anon % 6)
		c.TraceGranularity = Scale(gran % 6)
		c.Intrusiveness = Scale(intr%5) + 1
		return c.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestYesNoString(t *testing.T) {
	if YesNo(true).String() != "Yes" || YesNo(false).String() != "No" {
		t.Fatal("YesNo rendering broken")
	}
}

func TestNotesRenderedAsFootnotes(t *testing.T) {
	out := RenderComparison(PaperLANLTrace())
	if !strings.Contains(out, "Notes:") || !strings.Contains(out, "memory-mapped") {
		t.Fatalf("notes missing:\n%s", out)
	}
}
