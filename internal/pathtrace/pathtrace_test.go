package pathtrace

import (
	"strings"
	"testing"

	"iotaxo/internal/cluster"
	"iotaxo/internal/mpi"
	"iotaxo/internal/sim"
)

func simpleEnv() *sim.Env { return sim.NewEnv(1) }

func TestLinearPath(t *testing.T) {
	env := simpleEnv()
	tr := NewTracer()
	env.Go("app", func(p *sim.Proc) {
		ctx := tr.StartTask(p, "n1", 0, "start")
		p.Sleep(10)
		ctx.Record(p, "step1")
		p.Sleep(10)
		ctx.Record(p, "step2")
	})
	env.Run()
	events := tr.Events()
	if len(events) != 3 {
		t.Fatalf("events = %d", len(events))
	}
	g := tr.Graph(events[0].Task)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	cp := g.CriticalPath()
	if len(cp) != 3 || cp[0].Label != "start" || cp[2].Label != "step2" {
		t.Fatalf("critical path: %+v", cp)
	}
}

func TestBaggageJoinAcrossProcs(t *testing.T) {
	env := simpleEnv()
	tr := NewTracer()
	handoff := sim.NewMailbox[Baggage](env)
	env.Go("sender", func(p *sim.Proc) {
		ctx := tr.StartTask(p, "n1", 0, "request")
		p.Sleep(5)
		handoff.Put(ctx.Baggage(p, "send"))
	})
	env.Go("receiver", func(p *sim.Proc) {
		b := handoff.Get(p)
		ctx := tr.Join(p, b, "n2", 1, "recv")
		p.Sleep(7)
		ctx.Record(p, "reply")
	})
	env.Run()
	events := tr.Events()
	if len(events) != 4 {
		t.Fatalf("events = %d", len(events))
	}
	g := tr.Graph(events[0].Task)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// The receive event's parent must be the send event.
	var send, recv Event
	for _, e := range events {
		switch e.Label {
		case "send":
			send = e
		case "recv":
			recv = e
		}
	}
	if len(recv.Parents) != 1 || recv.Parents[0] != send.ID {
		t.Fatalf("recv parents = %v, want [%d]", recv.Parents, send.ID)
	}
}

func TestMergeMultipleParents(t *testing.T) {
	env := simpleEnv()
	tr := NewTracer()
	env.Go("app", func(p *sim.Proc) {
		ctx := tr.StartTask(p, "n1", 0, "fan-out")
		b1 := ctx.Baggage(p, "branch1")
		b2 := ctx.Baggage(p, "branch2")
		p.Sleep(3)
		ctx.Merge(p, "join", b1, b2)
	})
	env.Run()
	g := tr.Graph(1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	var join Event
	for _, e := range tr.Events() {
		if e.Label == "join" {
			join = e
		}
	}
	if len(join.Parents) != 3 { // previous ctx event + two baggages
		t.Fatalf("join parents = %v", join.Parents)
	}
}

func TestMergeIgnoresForeignTasks(t *testing.T) {
	env := simpleEnv()
	tr := NewTracer()
	env.Go("app", func(p *sim.Proc) {
		a := tr.StartTask(p, "n1", 0, "a")
		bCtx := tr.StartTask(p, "n1", 0, "b")
		foreign := bCtx.Baggage(p, "b-send")
		a.Merge(p, "a-join", foreign)
	})
	env.Run()
	for _, e := range tr.TaskEvents(1) {
		if e.Label == "a-join" && len(e.Parents) != 1 {
			t.Fatalf("foreign baggage leaked into parents: %v", e.Parents)
		}
	}
}

func TestCriticalPathPicksSlowBranch(t *testing.T) {
	env := simpleEnv()
	tr := NewTracer()
	env.Go("app", func(p *sim.Proc) {
		ctx := tr.StartTask(p, "n1", 0, "root")
		fast := ctx.Baggage(p, "to-fast")
		slow := ctx.Baggage(p, "to-slow")
		// Two branches joined later; slow one dominates.
		fastCtx := tr.Join(p, fast, "n2", 1, "fast-work")
		p.Sleep(100)
		slowCtx := tr.Join(p, slow, "n3", 2, "slow-work")
		_ = fastCtx
		p.Sleep(5)
		slowCtx.Record(p, "slow-done")
	})
	env.Run()
	cp := tr.Graph(1).CriticalPath()
	labels := make([]string, len(cp))
	for i, e := range cp {
		labels[i] = e.Label
	}
	joined := strings.Join(labels, ">")
	if !strings.Contains(joined, "slow-work") || !strings.Contains(joined, "slow-done") {
		t.Fatalf("critical path missed slow branch: %s", joined)
	}
}

func TestPropagationThroughMPI(t *testing.T) {
	// End-to-end: baggage piggybacks on real MPI messages between ranks.
	cfg := cluster.Small()
	cfg.MaxSkew = 0
	cfg.MaxDrift = 0
	c := cluster.New(cfg)
	tr := NewTracer()
	c.World.RunToCompletion(func(p *sim.Proc, r *mpi.Rank) {
		switch r.RankID() {
		case 0:
			ctx := tr.StartTask(p, r.Node(), 0, "coordinator")
			b := ctx.Baggage(p, "dispatch")
			r.SendData(p, 1, 7, 1024, b)
			_, reply := r.RecvData(p, 1, 8)
			ctx.Merge(p, "complete", reply.(Baggage))
		case 1:
			_, raw := r.RecvData(p, 0, 7)
			ctx := tr.Join(p, raw.(Baggage), r.Node(), 1, "worker-recv")
			// Worker does I/O as part of the task.
			f, _ := r.FileOpen(p, "/pfs/task.out", mpi.ModeCreate|mpi.ModeWronly)
			f.WriteAt(p, 0, 64<<10)
			f.Close(p)
			ctx.Record(p, "worker-io")
			r.SendData(p, 0, 8, 64, ctx.Baggage(p, "worker-reply"))
		default:
			// Idle ranks.
		}
	})
	g := tr.Graph(1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Events) != 6 {
		t.Fatalf("events = %d, want 6", len(g.Events))
	}
	// The critical path must cross both nodes.
	nodes := map[string]bool{}
	for _, e := range g.CriticalPath() {
		nodes[e.Node] = true
	}
	if len(nodes) < 2 {
		t.Fatalf("critical path stayed on one node: %v", nodes)
	}
}

func TestFormatAndDOT(t *testing.T) {
	env := simpleEnv()
	tr := NewTracer()
	env.Go("app", func(p *sim.Proc) {
		ctx := tr.StartTask(p, "n1", 0, "root")
		ctx.Record(p, "leaf")
	})
	env.Run()
	g := tr.Graph(1)
	txt := g.Format()
	if !strings.Contains(txt, "root") || !strings.Contains(txt, "leaf") {
		t.Fatalf("format:\n%s", txt)
	}
	dot := g.DOT()
	if !strings.HasPrefix(dot, "digraph") || !strings.Contains(dot, "->") {
		t.Fatalf("dot:\n%s", dot)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := &Graph{
		Task: 1,
		Events: map[EventID]Event{
			2: {ID: 2, Parents: []EventID{9}},
		},
		Kids: map[EventID][]EventID{},
	}
	if err := g.Validate(); err == nil {
		t.Fatal("unknown parent accepted")
	}
}

func TestTasksAreIndependent(t *testing.T) {
	env := simpleEnv()
	tr := NewTracer()
	env.Go("app", func(p *sim.Proc) {
		a := tr.StartTask(p, "n1", 0, "a")
		b := tr.StartTask(p, "n1", 0, "b")
		a.Record(p, "a1")
		b.Record(p, "b1")
	})
	env.Run()
	if len(tr.TaskEvents(1)) != 2 || len(tr.TaskEvents(2)) != 2 {
		t.Fatalf("task separation broken: %d/%d", len(tr.TaskEvents(1)), len(tr.TaskEvents(2)))
	}
}

func TestClassificationValidates(t *testing.T) {
	c := Classification()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Intrusiveness <= 1 {
		t.Fatal("path tracing must classify as intrusive — that is the point of the contrast")
	}
	if !bool(c.RevealsDeps) {
		t.Fatal("path tracing reveals dependencies by construction")
	}
}

func TestEmptyGraphCriticalPath(t *testing.T) {
	tr := NewTracer()
	if cp := tr.Graph(42).CriticalPath(); cp != nil {
		t.Fatalf("expected nil, got %v", cp)
	}
}
