package pathtrace

import (
	"iotaxo/internal/cluster"
	"iotaxo/internal/core"
	"iotaxo/internal/framework"
	"iotaxo/internal/sim"
	"iotaxo/internal/trace"
	"iotaxo/internal/workload"
)

// AsFramework adapts path-based tracing to the common framework registry
// interface. Path tracing is intrusive — the real deployment instruments
// application source — so the session stands in for that instrumentation
// with a per-rank library shim: every MPI call becomes one event on the
// job's causal path, and each rank's path joins from a shared root event,
// the metadata propagation an X-Trace header would carry in MPI_Init's
// startup messages.
func AsFramework() framework.Framework { return fwAdapter{} }

func init() { framework.Register(AsFramework()) }

// perEventCost is the in-process metadata append per instrumented call:
// negligible next to any interposition mechanism, which is the framework's
// selling point on the overhead axis.
const perEventCost = 400 * sim.Nanosecond

type fwAdapter struct{}

func (fwAdapter) Name() string                         { return "PathTrace (X-Trace style)" }
func (fwAdapter) Classification() *core.Classification { return Classification() }

func (fwAdapter) Attach(c *cluster.Cluster) framework.Session {
	s := &fwSession{c: c, tracer: NewTracer()}
	for i := 0; i < c.World.Size(); i++ {
		r := c.World.Rank(i)
		h := &pathHook{s: s, rank: i, node: r.Node()}
		r.AttachLibHook(h)
		s.hooks = append(s.hooks, h)
	}
	return s
}

type fwSession struct {
	c      *cluster.Cluster
	tracer *Tracer
	hooks  []*pathHook
	root   *Baggage
	joins  int
}

// pathHook is the instrumentation shim for one rank.
type pathHook struct {
	s    *fwSession
	rank int
	node string
	ctx  *Ctx
	recs []trace.Record
}

// Enter implements mpi.LibHook.
func (h *pathHook) Enter(p *sim.Proc, name string) {}

// Exit implements mpi.LibHook: record the call as a path event, joining the
// job's causal path on the rank's first call.
func (h *pathHook) Exit(p *sim.Proc, rec *trace.Record) {
	p.Sleep(perEventCost)
	if h.ctx == nil {
		if h.s.root == nil {
			ctx := h.s.tracer.StartTask(p, h.node, h.rank, "job-start")
			b := ctx.Baggage(p, "fan-out")
			h.s.root = &b
			h.ctx = ctx
		} else {
			h.ctx = h.s.tracer.Join(p, *h.s.root, h.node, h.rank, "rank-start")
			h.s.joins++
		}
	}
	h.ctx.Record(p, rec.Name)
	h.recs = append(h.recs, rec.Clone())
}

// Run executes the workload with the path instrumentation active.
func (s *fwSession) Run(spec workload.Spec) (framework.Report, error) {
	res := framework.RunWorkload(s.c, spec)
	rep := framework.Report{
		Result:         res,
		TracingElapsed: res.Elapsed,
		Runs:           1,
		Deps:           s.joins,
	}
	for _, e := range s.tracer.Events() {
		rep.TraceEvents++
		rep.TraceBytes += int64(24 + len(e.Label) + len(e.Node)) // task+event ids, parents, label
	}
	return rep, nil
}

// Sources streams each rank's instrumented call stream.
func (s *fwSession) Sources() []trace.Source {
	out := make([]trace.Source, 0, len(s.hooks))
	for _, h := range s.hooks {
		out = append(out, trace.SliceSource(h.recs))
	}
	return out
}

// Tracer exposes the collected causal path for graph analysis.
func (s *fwSession) Tracer() *Tracer { return s.tracer }
