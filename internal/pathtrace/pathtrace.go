// Package pathtrace implements path-based event tracing in the style of
// X-Trace (Fonseca et al., NSDI'07 — reference [8] of the paper), the class
// of "diverse general data collection mechanisms" the paper's future-work
// section wants its taxonomy extended to cover:
//
//	"we believe our methodology can be expanded to define a more global
//	 taxonomy for describing diverse general data collection mechanisms,
//	 i.e. non-I/O Tracing Frameworks, such as path based event tracing in
//	 distributed applications."
//
// A task's causal path is a DAG of events; propagation metadata (task id +
// last event id) travels with messages between ranks and is rejoined on
// receipt. Unlike the three surveyed frameworks, path tracing is
// *intrusive*: the application calls the tracing API itself — which is
// exactly the contrast the taxonomy's Intrusive-vs-Passive axis exists to
// express (see Classification).
package pathtrace

import (
	"fmt"
	"sort"
	"strings"

	"iotaxo/internal/core"
	"iotaxo/internal/sim"
)

// TaskID identifies one causal path (e.g. one request, one checkpoint).
type TaskID uint64

// EventID identifies one event within a tracer.
type EventID uint64

// Event is one node of a task's causal DAG.
type Event struct {
	Task    TaskID
	ID      EventID
	Parents []EventID
	Node    string
	Rank    int
	Label   string
	Time    sim.Time
}

// Tracer collects events for all tasks in a job. It is not safe for real
// concurrent use; the deterministic simulator serializes access.
type Tracer struct {
	events   []Event
	nextTask TaskID
	nextID   EventID
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Events returns all collected events in creation order.
func (tr *Tracer) Events() []Event { return append([]Event(nil), tr.events...) }

// TaskEvents returns one task's events in creation order.
func (tr *Tracer) TaskEvents(task TaskID) []Event {
	var out []Event
	for _, e := range tr.events {
		if e.Task == task {
			out = append(out, e)
		}
	}
	return out
}

// record appends an event and returns its id.
func (tr *Tracer) record(task TaskID, parents []EventID, node string, rank int, label string, at sim.Time) EventID {
	tr.nextID++
	tr.events = append(tr.events, Event{
		Task:    task,
		ID:      tr.nextID,
		Parents: append([]EventID(nil), parents...),
		Node:    node,
		Rank:    rank,
		Label:   label,
		Time:    at,
	})
	return tr.nextID
}

// Ctx is the propagation context a participant holds while working on a
// task: the task id plus the causally latest event observed here.
type Ctx struct {
	tracer *Tracer
	task   TaskID
	last   EventID
	node   string
	rank   int
}

// StartTask opens a new causal path, recording its root event.
func (tr *Tracer) StartTask(p *sim.Proc, node string, rank int, label string) *Ctx {
	tr.nextTask++
	ctx := &Ctx{tracer: tr, task: tr.nextTask, node: node, rank: rank}
	ctx.last = tr.record(ctx.task, nil, node, rank, label, p.Now())
	return ctx
}

// Task returns the context's task id.
func (c *Ctx) Task() TaskID { return c.task }

// Record appends an event whose parent is the context's previous event,
// advancing the context.
func (c *Ctx) Record(p *sim.Proc, label string) EventID {
	c.last = c.tracer.record(c.task, []EventID{c.last}, c.node, c.rank, label, p.Now())
	return c.last
}

// Baggage is the metadata that travels inside messages (an X-Trace
// metadata header): enough to resume the path on the receiving side.
type Baggage struct {
	Task TaskID
	From EventID
}

// Baggage exports the context for piggybacking on a message, recording the
// send event.
func (c *Ctx) Baggage(p *sim.Proc, label string) Baggage {
	id := c.Record(p, label)
	return Baggage{Task: c.task, From: id}
}

// Join resumes a path on the receiving participant: the receive event's
// parent is the sender's event carried in the baggage.
func (tr *Tracer) Join(p *sim.Proc, b Baggage, node string, rank int, label string) *Ctx {
	ctx := &Ctx{tracer: tr, task: b.Task, node: node, rank: rank}
	ctx.last = tr.record(b.Task, []EventID{b.From}, node, rank, label, p.Now())
	return ctx
}

// Merge records an event with multiple parents: a join point (e.g. a rank
// continuing after receiving from several peers).
func (c *Ctx) Merge(p *sim.Proc, label string, others ...Baggage) EventID {
	parents := []EventID{c.last}
	for _, b := range others {
		if b.Task != c.task {
			continue // cross-task edges are not representable in one path
		}
		parents = append(parents, b.From)
	}
	c.last = c.tracer.record(c.task, parents, c.node, c.rank, label, p.Now())
	return c.last
}

// --- graph analysis ---

// Graph is one task's causal DAG.
type Graph struct {
	Task   TaskID
	Events map[EventID]Event
	Kids   map[EventID][]EventID
	Roots  []EventID
}

// Graph builds the DAG for a task.
func (tr *Tracer) Graph(task TaskID) *Graph {
	g := &Graph{
		Task:   task,
		Events: make(map[EventID]Event),
		Kids:   make(map[EventID][]EventID),
	}
	for _, e := range tr.TaskEvents(task) {
		g.Events[e.ID] = e
		if len(e.Parents) == 0 {
			g.Roots = append(g.Roots, e.ID)
		}
		for _, pid := range e.Parents {
			g.Kids[pid] = append(g.Kids[pid], e.ID)
		}
	}
	return g
}

// Validate checks the DAG is well formed: parents exist and precede their
// children in time, and event ids are acyclic by construction (ids are
// monotone and parents always have smaller ids).
func (g *Graph) Validate() error {
	for _, e := range g.Events {
		for _, pid := range e.Parents {
			parent, ok := g.Events[pid]
			if !ok {
				return fmt.Errorf("pathtrace: event %d references unknown parent %d", e.ID, pid)
			}
			if parent.ID >= e.ID {
				return fmt.Errorf("pathtrace: event %d has non-causal parent %d", e.ID, pid)
			}
			if parent.Time > e.Time {
				return fmt.Errorf("pathtrace: event %d earlier than its parent %d", e.ID, pid)
			}
		}
	}
	if len(g.Roots) == 0 && len(g.Events) > 0 {
		return fmt.Errorf("pathtrace: task %d has no root event", g.Task)
	}
	return nil
}

// CriticalPath returns the chain of events that gated the task's
// completion: starting from the last event, it repeatedly steps to the
// latest-finishing parent — at every join, the parent that arrived last is
// the one the join actually waited for. (A naive "longest elapsed path"
// is degenerate here: event timestamps telescope, making every
// root-to-end path equal.)
func (g *Graph) CriticalPath() []Event {
	if len(g.Events) == 0 {
		return nil
	}
	var endID EventID
	var endTime sim.Time = -1
	ids := make([]EventID, 0, len(g.Events))
	for id := range g.Events {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if e := g.Events[id]; e.Time >= endTime {
			endTime, endID = e.Time, id
		}
	}
	var chain []Event
	for id := endID; ; {
		e := g.Events[id]
		chain = append(chain, e)
		if len(e.Parents) == 0 {
			break
		}
		next := e.Parents[0]
		for _, pid := range e.Parents[1:] {
			p, q := g.Events[pid], g.Events[next]
			if p.Time > q.Time || (p.Time == q.Time && p.ID > q.ID) {
				next = pid
			}
		}
		id = next
	}
	// Reverse into causal order.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain
}

// Format renders the DAG as an indented tree (children under parents; join
// nodes appear under their first parent with a marker).
func (g *Graph) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "task %d: %d events\n", g.Task, len(g.Events))
	seen := make(map[EventID]bool)
	var walk func(id EventID, depth int)
	walk = func(id EventID, depth int) {
		e := g.Events[id]
		marker := ""
		if len(e.Parents) > 1 {
			marker = " (join)"
		}
		if seen[id] {
			fmt.Fprintf(&b, "%s^ %d%s\n", strings.Repeat("  ", depth), id, marker)
			return
		}
		seen[id] = true
		fmt.Fprintf(&b, "%s- [%d] %s @%v rank=%d %s%s\n",
			strings.Repeat("  ", depth), id, e.Label, e.Time, e.Rank, e.Node, marker)
		kids := append([]EventID(nil), g.Kids[id]...)
		sort.Slice(kids, func(i, j int) bool { return kids[i] < kids[j] })
		for _, k := range kids {
			walk(k, depth+1)
		}
	}
	roots := append([]EventID(nil), g.Roots...)
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	for _, r := range roots {
		walk(r, 0)
	}
	return b.String()
}

// DOT renders the DAG in Graphviz format.
func (g *Graph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph task%d {\n", g.Task)
	ids := make([]EventID, 0, len(g.Events))
	for id := range g.Events {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		e := g.Events[id]
		fmt.Fprintf(&b, "  e%d [label=\"%s\\nrank %d @%v\"];\n", id, e.Label, e.Rank, e.Time)
	}
	for _, id := range ids {
		for _, pid := range g.Events[id].Parents {
			fmt.Fprintf(&b, "  e%d -> e%d;\n", pid, id)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// Classification positions path-based tracing in the (extended) taxonomy —
// the exercise the paper's future work proposes. The telling contrast with
// the surveyed frameworks: it is intrusive (source instrumentation) but
// reveals causality directly instead of inferring it by throttling.
func Classification() *core.Classification {
	return &core.Classification{
		Name:              "PathTrace (X-Trace style)",
		ParallelFSCompat:  true,
		EaseOfInstall:     3,
		Anonymization:     core.ScaleNone,
		EventTypes:        []core.EventType{core.EventNetwork, core.EventLibCalls},
		TraceGranularity:  3,
		ReplayableTraces:  false,
		ReplayFidelity:    core.FidelityReport{Supported: false},
		RevealsDeps:       true,
		Intrusiveness:     4, // requires application instrumentation
		AnalysisTools:     true,
		DataFormat:        core.FormatHumanReadable,
		AccountsSkewDrift: "No",
		CrossLayerSlicing: true, // path metadata crosses layer boundaries by design
		ElapsedOverhead: core.OverheadReport{
			Measured:    false,
			Description: "negligible per-event cost; instrumentation effort instead",
		},
		Notes: []string{
			"demonstrates the paper's future-work 'global taxonomy' extension",
			"causality captured by metadata propagation, not throttling",
		},
	}
}
