package mpi_test

import (
	"testing"

	"iotaxo/internal/cluster"
	"iotaxo/internal/mpi"
	"iotaxo/internal/sim"
	"iotaxo/internal/trace"
	"iotaxo/internal/vfs"
)

func smallCluster(nodes int) *cluster.Cluster {
	cfg := cluster.Small()
	cfg.ComputeNodes = nodes
	cfg.MaxSkew = 0
	cfg.MaxDrift = 0
	return cluster.New(cfg)
}

func TestCommRankAndSize(t *testing.T) {
	c := smallCluster(4)
	got := make([]int, 4)
	sizes := make([]int, 4)
	c.World.RunToCompletion(func(p *sim.Proc, r *mpi.Rank) {
		got[r.RankID()] = r.CommRank(p)
		sizes[r.RankID()] = r.CommSize(p)
	})
	for i := 0; i < 4; i++ {
		if got[i] != i || sizes[i] != 4 {
			t.Fatalf("rank %d: CommRank=%d CommSize=%d", i, got[i], sizes[i])
		}
	}
}

func TestSendRecv(t *testing.T) {
	c := smallCluster(2)
	var received int64
	c.World.RunToCompletion(func(p *sim.Proc, r *mpi.Rank) {
		if r.RankID() == 0 {
			r.Send(p, 1, 42, 1<<20)
		} else {
			received = r.Recv(p, 0, 42)
		}
	})
	if received != 1<<20 {
		t.Fatalf("received = %d", received)
	}
}

func TestRecvMatchesTagOutOfOrder(t *testing.T) {
	c := smallCluster(2)
	var first, second int64
	c.World.RunToCompletion(func(p *sim.Proc, r *mpi.Rank) {
		if r.RankID() == 0 {
			r.Send(p, 1, 1, 100)
			r.Send(p, 1, 2, 200)
		} else {
			// Receive in reverse tag order: matching must buffer.
			second = r.Recv(p, 0, 2)
			first = r.Recv(p, 0, 1)
		}
	})
	if first != 100 || second != 200 {
		t.Fatalf("first=%d second=%d", first, second)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	c := smallCluster(4)
	exitTimes := make([]sim.Time, 4)
	arrive := make([]sim.Time, 4)
	c.World.RunToCompletion(func(p *sim.Proc, r *mpi.Rank) {
		// Stagger arrivals: rank i sleeps i*10ms.
		p.Sleep(sim.Duration(r.RankID()) * 10 * sim.Millisecond)
		arrive[r.RankID()] = p.Now()
		r.Barrier(p)
		exitTimes[r.RankID()] = p.Now()
	})
	// No rank may exit before the last arrival.
	var lastArrive sim.Time
	for _, a := range arrive {
		if a > lastArrive {
			lastArrive = a
		}
	}
	for i, e := range exitTimes {
		if e < lastArrive {
			t.Fatalf("rank %d exited barrier at %v before last arrival %v", i, e, lastArrive)
		}
	}
}

func TestRepeatedBarriers(t *testing.T) {
	c := smallCluster(4)
	counts := make([]int, 4)
	c.World.RunToCompletion(func(p *sim.Proc, r *mpi.Rank) {
		for i := 0; i < 5; i++ {
			r.Barrier(p)
			counts[r.RankID()]++
		}
	})
	for i, n := range counts {
		if n != 5 {
			t.Fatalf("rank %d completed %d barriers", i, n)
		}
	}
}

func TestBcastFromEveryRoot(t *testing.T) {
	for root := 0; root < 3; root++ {
		c := smallCluster(3)
		got := make([]any, 3)
		c.World.RunToCompletion(func(p *sim.Proc, r *mpi.Rank) {
			var data any
			if r.RankID() == root {
				data = "payload"
			}
			got[r.RankID()] = r.Bcast(p, root, 64, data)
		})
		for i, g := range got {
			if g != "payload" {
				t.Fatalf("root %d: rank %d got %v", root, i, g)
			}
		}
	}
}

func TestGather(t *testing.T) {
	c := smallCluster(4)
	var collected []any
	c.World.RunToCompletion(func(p *sim.Proc, r *mpi.Rank) {
		res := r.Gather(p, 0, 8, r.RankID()*10)
		if r.RankID() == 0 {
			collected = res
		}
	})
	if len(collected) != 4 {
		t.Fatalf("collected %d", len(collected))
	}
	for i, v := range collected {
		if v != i*10 {
			t.Fatalf("collected[%d] = %v", i, v)
		}
	}
}

func TestAllreduceMax(t *testing.T) {
	c := smallCluster(4)
	results := make([]int64, 4)
	c.World.RunToCompletion(func(p *sim.Proc, r *mpi.Rank) {
		results[r.RankID()] = r.AllreduceMax(p, int64(r.RankID()*7))
	})
	for i, v := range results {
		if v != 21 {
			t.Fatalf("rank %d allreduce = %d, want 21", i, v)
		}
	}
}

func TestFileOpenWriteClose(t *testing.T) {
	c := smallCluster(2)
	c.World.RunToCompletion(func(p *sim.Proc, r *mpi.Rank) {
		f, err := r.FileOpen(p, "/pfs/out", mpi.ModeCreate|mpi.ModeWronly)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		if n, err := f.WriteAt(p, int64(r.RankID())*1<<20, 1<<20); n != 1<<20 || err != nil {
			t.Errorf("write: n=%d err=%v", n, err)
		}
		if err := f.Close(p); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	size, _, _, ok := c.PFS.Snapshot("/pfs/out")
	if !ok || size != 2<<20 {
		t.Fatalf("snapshot size=%d ok=%v", size, ok)
	}
}

// hookRecorder collects MPI library call records.
type hookRecorder struct{ recs []trace.Record }

func (h *hookRecorder) Enter(p *sim.Proc, name string)      {}
func (h *hookRecorder) Exit(p *sim.Proc, rec *trace.Record) { h.recs = append(h.recs, rec.Clone()) }
func (h *hookRecorder) names() map[string]int {
	m := make(map[string]int)
	for _, r := range h.recs {
		m[r.Name]++
	}
	return m
}

func TestLibHookSeesMPICalls(t *testing.T) {
	c := smallCluster(2)
	hooks := make([]*hookRecorder, 2)
	for i := 0; i < 2; i++ {
		hooks[i] = &hookRecorder{}
		c.World.Rank(i).AttachLibHook(hooks[i])
	}
	c.World.RunToCompletion(func(p *sim.Proc, r *mpi.Rank) {
		r.Init(p)
		r.Barrier(p)
		f, _ := r.FileOpen(p, "/pfs/x", mpi.ModeCreate|mpi.ModeWronly)
		f.WriteAt(p, 0, 64<<10)
		f.Close(p)
	})
	for i, h := range hooks {
		names := h.names()
		for _, want := range []string{"MPI_Init", "MPI_Barrier", "MPI_File_open", "MPI_File_write_at", "MPI_File_close"} {
			if names[want] != 1 {
				t.Fatalf("rank %d: %s count = %d (%v)", i, want, names[want], names)
			}
		}
	}
	// The write record must carry structured I/O fields.
	for _, r := range hooks[0].recs {
		if r.Name == "MPI_File_write_at" {
			if r.Bytes != 64<<10 || r.Class != trace.ClassMPI {
				t.Fatalf("write record: %+v", r)
			}
		}
	}
}

// syscallRecorder collects syscall records (strace view).
type syscallRecorder struct{ recs []trace.Record }

func (h *syscallRecorder) Enter(p *sim.Proc, name string)      {}
func (h *syscallRecorder) Exit(p *sim.Proc, rec *trace.Record) { h.recs = append(h.recs, rec.Clone()) }

func TestMPIFileOpenEmitsFigure1Syscalls(t *testing.T) {
	c := smallCluster(1)
	sys := &syscallRecorder{}
	c.World.Rank(0).Proc().AttachHook(sys)
	c.World.RunToCompletion(func(p *sim.Proc, r *mpi.Rank) {
		r.Init(p)
		f, err := r.FileOpen(p, "/pfs/data", mpi.ModeCreate|mpi.ModeWronly)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		f.Close(p)
	})
	var names []string
	for _, r := range sys.recs {
		names = append(names, r.Name)
	}
	// MPI_Init opens /etc/hosts; MPI_File_open does statfs64 + open + fcntl64
	// (the Figure 1 sequence).
	want := map[string]bool{"SYS_open": false, "SYS_statfs64": false, "SYS_fcntl64": false, "SYS_read": false, "SYS_close": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Fatalf("syscall %s not observed; saw %v", n, names)
		}
	}
}

func TestWtimeReflectsClockSkew(t *testing.T) {
	cfg := cluster.Small()
	cfg.ComputeNodes = 2
	cfg.MaxSkew = 100 * sim.Millisecond
	cfg.MaxDrift = 0
	c := cluster.New(cfg)
	times := make([]sim.Time, 2)
	c.World.RunToCompletion(func(p *sim.Proc, r *mpi.Rank) {
		r.Barrier(p)
		times[r.RankID()] = r.Wtime(p)
	})
	// With different skews the two Wtime readings should differ even though
	// barrier exit is nearly simultaneous in global time.
	if times[0] == times[1] {
		t.Fatal("skewed clocks read identical times (suspicious)")
	}
}

func TestRunToCompletionElapsed(t *testing.T) {
	c := smallCluster(2)
	elapsed := c.World.RunToCompletion(func(p *sim.Proc, r *mpi.Rank) {
		p.Sleep(3 * sim.Second)
	})
	if elapsed < 3*sim.Second {
		t.Fatalf("elapsed = %v, want >= 3s", elapsed)
	}
}

func TestDetachLibHooks(t *testing.T) {
	c := smallCluster(1)
	h := &hookRecorder{}
	c.World.Rank(0).AttachLibHook(h)
	c.World.Rank(0).DetachLibHooks()
	c.World.RunToCompletion(func(p *sim.Proc, r *mpi.Rank) {
		r.Barrier(p)
	})
	if len(h.recs) != 0 {
		t.Fatal("detached hook saw records")
	}
}

func TestLocalFSPreloaded(t *testing.T) {
	c := smallCluster(1)
	var err error
	c.World.RunToCompletion(func(p *sim.Proc, r *mpi.Rank) {
		_, err = r.Proc().Stat(p, "/etc/hosts")
	})
	if err != nil {
		t.Fatalf("/etc/hosts missing: %v", err)
	}
	_ = vfs.ErrNotExist
}
