// Package mpi simulates the MPI library of the paper's testbed (mpich
// 1.2.6): ranks with point-to-point messaging and tag matching, a
// dissemination barrier, binomial-tree collectives, and MPI-IO.
//
// MPI-IO calls execute real system calls through the node kernel, so an
// strace-style tracer attached at the syscall boundary observes the nested
// SYS_statfs64/SYS_open/... sequence of Figure 1, while an ltrace-style
// tracer additionally observes the MPI_* library calls via LibHook — exactly
// the strace/ltrace distinction LANL-Trace exposes as its granularity knob.
package mpi

import (
	"iotaxo/internal/netsim"
	"iotaxo/internal/sim"
	"iotaxo/internal/trace"
	"iotaxo/internal/vfs"
)

// PortBase is the first network port used by MPI ranks (one port per rank).
const PortBase = 7200

// LibHook observes library calls on one rank: the attachment point for
// ltrace-style tracing (LANL-Trace in ltrace mode) and for LD_PRELOAD
// interposition (//TRACE). Both phases may charge virtual time.
type LibHook interface {
	Enter(p *sim.Proc, name string)
	Exit(p *sim.Proc, rec *trace.Record)
}

// World is an MPI job: a set of ranks bound to node kernels. Ranks live in
// one contiguous slab (65536-rank worlds allocate one array, not 65536
// objects); they are addressed by pointer into it and never copied.
type World struct {
	env     *sim.Env
	net     *netsim.Network
	ranks   []Rank
	started bool

	// FinishedAt records each rank's completion time of the last Launch.
	FinishedAt []sim.Time
}

// NewWorld creates a world with one rank per kernel entry. The same kernel
// may appear multiple times to place several ranks on one node.
func NewWorld(net_ *netsim.Network, kernels []*vfs.Kernel) *World {
	w := &World{env: net_.Env(), net: net_}
	w.ranks = make([]Rank, len(kernels))
	for i, k := range kernels {
		pc := k.Spawn(vfs.Cred{UID: 500, GID: 500, User: "mpiuser"})
		pc.SetRank(i)
		w.ranks[i] = Rank{
			world: w,
			rank:  i,
			node:  k.Node(),
			pc:    pc,
			inbox: net_.Listen(k.Node(), PortBase+i),
		}
	}
	w.FinishedAt = make([]sim.Time, len(kernels))
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// Rank returns rank i.
func (w *World) Rank(i int) *Rank { return &w.ranks[i] }

// Env returns the simulation environment.
func (w *World) Env() *sim.Env { return w.env }

// Launch spawns every rank's program as a simulated process. It returns a
// latch that opens when all ranks have finished; run the environment to
// drive them. Per-rank completion times land in FinishedAt.
func (w *World) Launch(program func(p *sim.Proc, r *Rank)) *sim.Latch {
	done := sim.NewLatch(w.env)
	wg := sim.NewWaitGroup(w.env)
	wg.Add(len(w.ranks))
	for i := range w.ranks {
		r := &w.ranks[i]
		// All ranks share one spawn name: per-rank identity lives in the
		// process context (pid/rank), and a shared literal keeps Launch free
		// of per-rank Sprintf allocations at 65536 ranks.
		w.env.Go("mpi.rank", func(p *sim.Proc) {
			program(p, r)
			w.FinishedAt[r.rank] = p.Now()
			wg.Done()
		})
	}
	w.env.Go("mpi.join", func(p *sim.Proc) {
		wg.Wait(p)
		done.Open()
	})
	return done
}

// RunToCompletion launches the program and drives the environment until all
// ranks finish, returning the elapsed virtual time (job wall-clock).
func (w *World) RunToCompletion(program func(p *sim.Proc, r *Rank)) sim.Duration {
	start := w.env.Now()
	w.Launch(program)
	w.env.Run()
	var end sim.Time
	for _, t := range w.FinishedAt {
		if t > end {
			end = t
		}
	}
	return end - start
}

// mpiMsg is one point-to-point payload.
type mpiMsg struct {
	From  int
	Tag   int
	Bytes int64
	Data  any
}
