package mpi

import (
	"strconv"

	"iotaxo/internal/sim"
	"iotaxo/internal/trace"
	"iotaxo/internal/vfs"
)

// MPI-IO access modes (subset of MPI_MODE_*).
const (
	ModeRdonly = 0x2
	ModeWronly = 0x4
	ModeRdwr   = 0x8
	ModeCreate = 0x1
)

// File is an MPI-IO file handle bound to one rank. Its operations are
// traced as MPI library calls and execute real system calls underneath, so
// both tracing granularities observe them.
type File struct {
	rank *Rank
	fd   int
	path string
	open bool
}

// FileOpen opens path with MPI-IO semantics. It reproduces the syscall
// footprint Figure 1 shows inside MPI_File_open: a statfs64 to identify the
// file system, the open itself, and an fcntl on the new descriptor.
func (r *Rank) FileOpen(p *sim.Proc, path string, amode int) (*File, error) {
	var f *File
	var err error
	r.libcall(p, "MPI_File_open",
		func() []string { return []string{"92", strconv.Quote(path), strconv.Itoa(amode)} },
		func() string {
			flags := vfs.ORdonly
			switch {
			case amode&ModeRdwr != 0:
				flags = vfs.ORdwr
			case amode&ModeWronly != 0:
				flags = vfs.OWronly
			}
			if amode&ModeCreate != 0 {
				flags |= vfs.OCreate
			}
			if _, serr := r.pc.Statfs(p, path); serr != nil {
				err = serr
				return "-1"
			}
			var fd int
			fd, err = r.pc.Open(p, path, flags, 0o644)
			if err != nil {
				return "-1"
			}
			r.pc.Fcntl(p, fd, 1, 0)
			f = &File{rank: r, fd: fd, path: path, open: true}
			return "0"
		})
	return f, err
}

// WriteAt writes length bytes at offset (traced as MPI_File_write_at).
func (f *File) WriteAt(p *sim.Proc, offset, length int64) (int64, error) {
	var n int64
	var err error
	f.rank.libcallEnrich(p, "MPI_File_write_at",
		func() []string {
			return []string{strconv.Itoa(f.fd), strconv.FormatInt(offset, 10), strconv.FormatInt(length, 10)}
		},
		func() (string, func(*trace.Record)) {
			n, err = f.rank.pc.PWrite(p, f.fd, offset, length)
			if err != nil {
				return "-1", nil
			}
			return strconv.FormatInt(n, 10), func(r *trace.Record) { r.Path = f.path }
		})
	return n, err
}

// ReadAt reads length bytes at offset (traced as MPI_File_read_at).
func (f *File) ReadAt(p *sim.Proc, offset, length int64) (int64, error) {
	var n int64
	var err error
	f.rank.libcallEnrich(p, "MPI_File_read_at",
		func() []string {
			return []string{strconv.Itoa(f.fd), strconv.FormatInt(offset, 10), strconv.FormatInt(length, 10)}
		},
		func() (string, func(*trace.Record)) {
			n, err = f.rank.pc.PRead(p, f.fd, offset, length)
			if err != nil {
				return "-1", nil
			}
			return strconv.FormatInt(n, 10), func(r *trace.Record) { r.Path = f.path }
		})
	return n, err
}

// Sync flushes the file (traced as MPI_File_sync).
func (f *File) Sync(p *sim.Proc) error {
	var err error
	f.rank.libcallEnrich(p, "MPI_File_sync",
		func() []string { return []string{strconv.Itoa(f.fd)} },
		func() (string, func(*trace.Record)) {
			err = f.rank.pc.Fsync(p, f.fd)
			if err != nil {
				return "-1", nil
			}
			return "0", func(r *trace.Record) { r.Path = f.path }
		})
	return err
}

// Close closes the handle (traced as MPI_File_close).
func (f *File) Close(p *sim.Proc) error {
	var err error
	f.rank.libcallEnrich(p, "MPI_File_close",
		func() []string { return []string{strconv.Itoa(f.fd)} },
		func() (string, func(*trace.Record)) {
			err = f.rank.pc.Close(p, f.fd)
			f.open = false
			if err != nil {
				return "-1", nil
			}
			return "0", func(r *trace.Record) { r.Path = f.path }
		})
	return err
}

// Path returns the file path.
func (f *File) Path() string { return f.path }
