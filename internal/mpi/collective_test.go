package mpi_test

import (
	"testing"

	"iotaxo/internal/mpi"
	"iotaxo/internal/sim"
)

func TestWriteAtAllProducesSameEndStateAsIndependent(t *testing.T) {
	// Strided stripe-aligned pattern: collective and independent writes
	// must leave an identical file (size, digest, write count at the
	// stripe-unit granularity).
	const ranks, block, nobj = 4, 64 << 10, 4
	run := func(collective bool) (int64, uint64) {
		c := smallCluster(ranks)
		c.World.RunToCompletion(func(p *sim.Proc, r *mpi.Rank) {
			f, err := r.FileOpen(p, "/pfs/coll", mpi.ModeCreate|mpi.ModeWronly)
			if err != nil {
				t.Errorf("open: %v", err)
				return
			}
			for i := 0; i < nobj; i++ {
				off := int64(i*ranks+r.RankID()) * block
				var werr error
				if collective {
					_, werr = f.WriteAtAll(p, off, block)
				} else {
					_, werr = f.WriteAt(p, off, block)
				}
				if werr != nil {
					t.Errorf("write: %v", werr)
				}
			}
			f.Close(p)
		})
		size, digest, _, ok := c.PFS.Snapshot("/pfs/coll")
		if !ok {
			t.Fatal("file missing")
		}
		return size, digest
	}
	s1, d1 := run(false)
	s2, d2 := run(true)
	if s1 != s2 || d1 != d2 {
		t.Fatalf("end states differ: independent (%d,%x) vs collective (%d,%x)", s1, d1, s2, d2)
	}
}

func TestWriteAtAllFasterForSmallStridedBlocks(t *testing.T) {
	// The classic two-phase I/O result: at small strided blocks the
	// collective path beats independent writes by batching.
	const ranks, block, nobj = 8, 16 << 10, 8
	run := func(collective bool) sim.Duration {
		c := smallCluster(ranks)
		return c.World.RunToCompletion(func(p *sim.Proc, r *mpi.Rank) {
			f, _ := r.FileOpen(p, "/pfs/coll", mpi.ModeCreate|mpi.ModeWronly)
			for i := 0; i < nobj; i++ {
				off := int64(i*ranks+r.RankID()) * block
				if collective {
					f.WriteAtAll(p, off, block)
				} else {
					f.WriteAt(p, off, block)
				}
			}
			f.Close(p)
		})
	}
	indep := run(false)
	coll := run(true)
	if coll >= indep {
		t.Fatalf("collective (%v) not faster than independent (%v) at small strided blocks", coll, indep)
	}
}

func TestWriteAtAllZeroLengthRanks(t *testing.T) {
	// Ranks may contribute nothing; the collective must still complete.
	c := smallCluster(4)
	c.World.RunToCompletion(func(p *sim.Proc, r *mpi.Rank) {
		f, _ := r.FileOpen(p, "/pfs/zl", mpi.ModeCreate|mpi.ModeWronly)
		length := int64(0)
		if r.RankID() == 2 {
			length = 128 << 10
		}
		if _, err := f.WriteAtAll(p, int64(r.RankID())*(128<<10), length); err != nil {
			t.Errorf("rank %d: %v", r.RankID(), err)
		}
		f.Close(p)
	})
	size, _, _, ok := c.PFS.Snapshot("/pfs/zl")
	if !ok || size != 3*(128<<10) {
		t.Fatalf("size = %d ok=%v, want end of rank 2's extent", size, ok)
	}
}

func TestWriteAtAllAllZero(t *testing.T) {
	c := smallCluster(2)
	c.World.RunToCompletion(func(p *sim.Proc, r *mpi.Rank) {
		f, _ := r.FileOpen(p, "/pfs/empty", mpi.ModeCreate|mpi.ModeWronly)
		if _, err := f.WriteAtAll(p, 0, 0); err != nil {
			t.Errorf("rank %d: %v", r.RankID(), err)
		}
		f.Close(p)
	})
	size, _, _, _ := c.PFS.Snapshot("/pfs/empty")
	if size != 0 {
		t.Fatalf("size = %d", size)
	}
}

func TestWriteAtAllOnlyAggregatorsIssueSyscalls(t *testing.T) {
	const ranks = 8
	c := smallCluster(ranks)
	recorders := make([]*syscallRecorder, ranks)
	for i := 0; i < ranks; i++ {
		recorders[i] = &syscallRecorder{}
		c.World.Rank(i).Proc().AttachHook(recorders[i])
	}
	c.World.RunToCompletion(func(p *sim.Proc, r *mpi.Rank) {
		f, _ := r.FileOpen(p, "/pfs/agg", mpi.ModeCreate|mpi.ModeWronly)
		f.WriteAtAll(p, int64(r.RankID())*65536, 65536)
		f.Close(p)
	})
	aggs := c.World.CBNodes()
	for i, rec := range recorders {
		writes := 0
		for _, r := range rec.recs {
			if r.Name == "SYS_pwrite" {
				writes++
			}
		}
		if i < aggs && writes == 0 {
			t.Errorf("aggregator rank %d issued no writes", i)
		}
		if i >= aggs && writes != 0 {
			t.Errorf("non-aggregator rank %d issued %d writes", i, writes)
		}
	}
}

func TestWriteAtAllTracedAsCollective(t *testing.T) {
	c := smallCluster(2)
	h := &hookRecorder{}
	c.World.Rank(0).AttachLibHook(h)
	c.World.RunToCompletion(func(p *sim.Proc, r *mpi.Rank) {
		f, _ := r.FileOpen(p, "/pfs/t", mpi.ModeCreate|mpi.ModeWronly)
		f.WriteAtAll(p, int64(r.RankID())*4096, 4096)
		f.Close(p)
	})
	if h.names()["MPI_File_write_at_all"] != 1 {
		t.Fatalf("collective call not traced: %v", h.names())
	}
	for _, r := range h.recs {
		if r.Name == "MPI_File_write_at_all" && r.Path != "/pfs/t" {
			t.Fatalf("record missing path: %+v", r)
		}
	}
}
