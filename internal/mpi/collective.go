package mpi

import (
	"fmt"
	"sort"
	"strconv"

	"iotaxo/internal/sim"
	"iotaxo/internal/trace"
)

// Collective (two-phase) I/O in the style of ROMIO's generalized two-phase
// optimization, which the paper-era mpich 1.2.6 shipped: ranks exchange
// their intended accesses, a subset of ranks (aggregators) each own a
// contiguous slice of the file, data is shuffled over the network to its
// owning aggregator, and the aggregators issue large contiguous writes.
//
// The win case is exactly the paper's "most demanding" pattern: strided
// sub-stripe blocks, where independent writes pay the RAID-5
// read-modify-write on every fragment while the merged aggregator writes
// cover full stripe rows. For large contiguous accesses the extra data
// shuffle makes two-phase I/O a loss — the crossover the harness's
// collective ablation charts.

// CBNodes returns the number of collective-buffering aggregator ranks used
// by the collective writes: every fourth rank, at least one (ROMIO's
// cb_nodes-style knob, fixed to a sensible default here).
func (w *World) CBNodes() int {
	n := len(w.ranks) / 4
	if n < 1 {
		n = 1
	}
	return n
}

// collPiece is one contiguous file extent in a collective exchange.
type collPiece struct {
	Offset int64
	Length int64
}

// collContribution is one rank's declared access set.
type collContribution struct {
	Rank   int
	Pieces []collPiece
}

// WriteAtAll performs a collective write of one contiguous extent per rank:
// every rank of the communicator must call it. Traced as
// MPI_File_write_at_all. Returns the rank's own contributed byte count.
func (f *File) WriteAtAll(p *sim.Proc, offset, length int64) (int64, error) {
	var n int64
	var err error
	f.rank.libcallEnrich(p, "MPI_File_write_at_all",
		func() []string {
			return []string{strconv.Itoa(f.fd), strconv.FormatInt(offset, 10), strconv.FormatInt(length, 10)}
		},
		func() (string, func(*trace.Record)) {
			pieces := []collPiece{}
			if length > 0 {
				pieces = append(pieces, collPiece{Offset: offset, Length: length})
			}
			n, err = f.writeCollectiveBody(p, pieces)
			if err != nil {
				return "-1", nil
			}
			return strconv.FormatInt(n, 10), func(r *trace.Record) {
				r.Path, r.Offset, r.Bytes = f.path, offset, length
			}
		})
	return n, err
}

// WriteStridedAll performs a collective write of a strided access set: each
// rank passes the offsets of its equally-sized blocks (a flattened MPI file
// view). One collective exchange covers the whole set, which is how real
// applications drive two-phase I/O. Traced as MPI_File_write_at_all.
func (f *File) WriteStridedAll(p *sim.Proc, offsets []int64, blockLen int64) (int64, error) {
	var n int64
	var err error
	total := int64(len(offsets)) * blockLen
	f.rank.libcallEnrich(p, "MPI_File_write_at_all",
		func() []string {
			return []string{strconv.Itoa(f.fd), fmt.Sprintf("nblocks=%d", len(offsets)), strconv.FormatInt(blockLen, 10)}
		},
		func() (string, func(*trace.Record)) {
			pieces := make([]collPiece, 0, len(offsets))
			for _, off := range offsets {
				if blockLen > 0 {
					pieces = append(pieces, collPiece{Offset: off, Length: blockLen})
				}
			}
			n, err = f.writeCollectiveBody(p, pieces)
			if err != nil {
				return "-1", nil
			}
			return strconv.FormatInt(n, 10), func(r *trace.Record) {
				r.Path, r.Bytes = f.path, total
			}
		})
	return n, err
}

// writeCollectiveBody runs the two-phase exchange for this rank's pieces.
func (f *File) writeCollectiveBody(p *sim.Proc, mine []collPiece) (int64, error) {
	r := f.rank
	size := len(r.world.ranks)

	// Phase 0: allgather every rank's access set (gather to rank 0,
	// broadcast the full vector), so all ranks compute the identical
	// exchange schedule with no further coordination.
	var myBytes int64
	for _, pc := range mine {
		myBytes += pc.Length
	}
	contribution := collContribution{Rank: r.rank, Pieces: mine}
	gathered := r.gatherRaw(p, 0, 16+int64(len(mine))*16, contribution)
	var all []collContribution
	if r.rank == 0 {
		all = make([]collContribution, 0, size)
		for _, raw := range gathered {
			c, ok := raw.(collContribution)
			if !ok {
				return 0, fmt.Errorf("mpi: bad collective contribution payload %T", raw)
			}
			all = append(all, c)
		}
		sort.Slice(all, func(i, j int) bool { return all[i].Rank < all[j].Rank })
	}
	bcasted := r.bcastBody(p, 0, int64(size)*64, all)
	all, _ = bcasted.([]collContribution)
	if len(all) != size {
		return 0, fmt.Errorf("mpi: collective exchange failed (%d/%d)", len(all), size)
	}

	// Aggregate file domain.
	lo, hi := int64(1<<62), int64(0)
	for _, c := range all {
		for _, pc := range c.Pieces {
			if pc.Offset < lo {
				lo = pc.Offset
			}
			if end := pc.Offset + pc.Length; end > hi {
				hi = end
			}
		}
	}
	if hi <= lo {
		r.barrierBody(p)
		return 0, nil
	}
	aggs := r.world.CBNodes()
	domain := (hi - lo + int64(aggs) - 1) / int64(aggs)
	aggOf := func(off int64) int {
		a := int((off - lo) / domain)
		if a >= aggs {
			a = aggs - 1
		}
		return a
	}
	domainEnd := func(a int) int64 {
		e := lo + int64(a+1)*domain
		if e > hi {
			e = hi
		}
		return e
	}

	// Phase 1: ship data to the owning aggregators, one message per
	// (sender, aggregator) pair carrying all intersecting fragments.
	const collTag = -950
	myByAgg := splitContribution(mine, aggOf, domainEnd)
	// Aggregators are visited in index order, not map-iteration order: the
	// send sequence reaches the shared simulation clock through tx/rx
	// serialization, so a randomized order made every multi-aggregator
	// collective run nondeterministic.
	aggOrder := make([]int, 0, len(myByAgg))
	for agg := range myByAgg {
		aggOrder = append(aggOrder, agg)
	}
	sort.Ints(aggOrder)
	for _, agg := range aggOrder {
		if agg == r.rank {
			continue // local fragments need no network hop
		}
		var bytes int64
		for _, pc := range myByAgg[agg] {
			bytes += pc.Length
		}
		r.sendRaw(p, agg, collTag, bytes+64, myByAgg[agg])
	}

	// Phase 2: aggregators collect, merge, coalesce, and write.
	if r.rank < aggs {
		var incoming []collPiece
		incoming = append(incoming, myByAgg[r.rank]...)
		for _, c := range all {
			if c.Rank == r.rank {
				continue
			}
			theirByAgg := splitContribution(c.Pieces, aggOf, domainEnd)
			if len(theirByAgg[r.rank]) == 0 {
				continue
			}
			m := r.recvRaw(p, c.Rank, collTag)
			got, ok := m.Data.([]collPiece)
			if !ok {
				return 0, fmt.Errorf("mpi: bad collective piece payload %T", m.Data)
			}
			incoming = append(incoming, got...)
		}
		for _, run := range coalescePieces(incoming) {
			if _, err := r.pc.PWrite(p, f.fd, run.Offset, run.Length); err != nil {
				return 0, err
			}
		}
	}

	// Phase 3: collective completion.
	r.barrierBody(p)
	return myBytes, nil
}

// splitContribution fragments an access set across aggregator domains.
func splitContribution(pieces []collPiece, aggOf func(int64) int, domainEnd func(int) int64) map[int][]collPiece {
	out := make(map[int][]collPiece)
	for _, pc := range pieces {
		offset, length := pc.Offset, pc.Length
		for length > 0 {
			a := aggOf(offset)
			end := domainEnd(a)
			chunk := end - offset
			if chunk > length {
				chunk = length
			}
			if chunk <= 0 {
				break
			}
			out[a] = append(out[a], collPiece{Offset: offset, Length: chunk})
			offset += chunk
			length -= chunk
		}
	}
	return out
}

// coalescePieces sorts fragments and merges adjacent/overlapping runs.
func coalescePieces(pieces []collPiece) []collPiece {
	if len(pieces) == 0 {
		return nil
	}
	sort.Slice(pieces, func(i, j int) bool { return pieces[i].Offset < pieces[j].Offset })
	out := []collPiece{pieces[0]}
	for _, pc := range pieces[1:] {
		last := &out[len(out)-1]
		if pc.Offset <= last.Offset+last.Length {
			if end := pc.Offset + pc.Length; end > last.Offset+last.Length {
				last.Length = end - last.Offset
			}
			continue
		}
		out = append(out, pc)
	}
	return out
}
