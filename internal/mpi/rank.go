package mpi

import (
	"strconv"

	"iotaxo/internal/netsim"
	"iotaxo/internal/sim"
	"iotaxo/internal/trace"
	"iotaxo/internal/vfs"
)

// Rank is one MPI process.
type Rank struct {
	world *World
	rank  int
	node  string
	pc    *vfs.ProcCtx
	inbox *sim.Mailbox[netsim.Message]

	pending  []mpiMsg // arrived but unmatched messages
	barGen   int      // barrier generation counter
	libHooks []LibHook

	// Stats.
	LibCalls int64
}

// RankID returns the rank number.
func (r *Rank) RankID() int { return r.rank }

// Node returns the node name the rank runs on.
func (r *Rank) Node() string { return r.node }

// Proc returns the kernel process context (for attaching syscall tracers).
func (r *Rank) Proc() *vfs.ProcCtx { return r.pc }

// World returns the owning world.
func (r *Rank) World() *World { return r.world }

// AttachLibHook installs a library-call hook (ltrace / LD_PRELOAD style).
func (r *Rank) AttachLibHook(h LibHook) { r.libHooks = append(r.libHooks, h) }

// DetachLibHooks removes all library hooks.
func (r *Rank) DetachLibHooks() { r.libHooks = nil }

// libcall wraps an MPI library call with hook entry/exit and a trace record,
// mirroring ProcCtx.syscall at the library boundary. args renders the
// formatted argument list and is only invoked when a library hook is
// attached, so untraced runs pay no per-call formatting cost.
func (r *Rank) libcall(p *sim.Proc, name string, args func() []string, body func() string) {
	r.libcallEnrich(p, name, args, func() (string, func(*trace.Record)) {
		return body(), nil
	})
}

// libcallEnrich is libcall with a record-enrichment callback, used by MPI-IO
// calls to attach the file path behind the descriptor.
func (r *Rank) libcallEnrich(p *sim.Proc, name string, args func() []string, body func() (string, func(*trace.Record))) {
	for _, h := range r.libHooks {
		h.Enter(p, name)
	}
	// Span allocation is unconditional: the counter has zero effect on the
	// schedule, and child layers need the context even when only a deeper
	// tracer is attached.
	span := p.Env().NextSpanID()
	parent := p.SetSpan(span)
	start := p.Now()
	ret, enrich := body()
	dur := p.Now() - start
	p.SetSpan(parent)
	r.LibCalls++
	if len(r.libHooks) > 0 {
		rec := trace.Record{
			Time:   r.pc.Kernel().LocalTime(start),
			Dur:    dur,
			Node:   r.node,
			Rank:   r.rank,
			PID:    r.pc.PID(),
			Class:  trace.ClassMPI,
			Name:   name,
			Args:   args(),
			Ret:    ret,
			Span:   span,
			Parent: parent,
		}
		trace.InferIOFields(&rec)
		if enrich != nil {
			enrich(&rec)
		}
		for _, h := range r.libHooks {
			h.Exit(p, &rec)
		}
	}
}

// Init models MPI_Init's startup chatter: it reads the host database through
// the kernel, which is where Figure 1's SYS_open("/etc/hosts", ...) lines
// come from.
func (r *Rank) Init(p *sim.Proc) {
	r.libcall(p, "MPI_Init", func() []string { return []string{"0", "0"} }, func() string {
		fd, err := r.pc.Open(p, "/etc/hosts", vfs.ORdonly, 0)
		if err == nil {
			r.pc.Fcntl(p, fd, 1, 0)
			r.pc.Read(p, fd, 4096)
			r.pc.Close(p, fd)
		}
		p.Sleep(200 * sim.Microsecond) // connection setup
		return "0"
	})
}

// CommRank returns the rank id (traced as MPI_Comm_rank).
func (r *Rank) CommRank(p *sim.Proc) int {
	r.libcall(p, "MPI_Comm_rank", func() []string { return []string{"92"} }, func() string {
		p.Sleep(100 * sim.Nanosecond)
		return "0"
	})
	return r.rank
}

// CommSize returns the world size (traced as MPI_Comm_size).
func (r *Rank) CommSize(p *sim.Proc) int {
	r.libcall(p, "MPI_Comm_size", func() []string { return []string{"92"} }, func() string {
		p.Sleep(100 * sim.Nanosecond)
		return "0"
	})
	return len(r.world.ranks)
}

// Wtime reads the node-local wall clock — including its skew and drift,
// which is precisely why LANL-Trace runs its barrier timing job.
func (r *Rank) Wtime(p *sim.Proc) sim.Time {
	return r.pc.Kernel().LocalTime(p.Now())
}

// sendRaw transmits without tracing (internal transport for collectives).
func (r *Rank) sendRaw(p *sim.Proc, dest, tag int, bytes int64, data any) {
	dst := &r.world.ranks[dest]
	r.world.net.Send(p, netsim.Message{
		From: r.node,
		To:   dst.node,
		Port: PortBase + dest,
		Size: bytes + 64, // MPI envelope
		Payload: mpiMsg{
			From: r.rank, Tag: tag, Bytes: bytes, Data: data,
		},
	})
}

// recvRaw blocks until a message with the given source and tag arrives.
func (r *Rank) recvRaw(p *sim.Proc, src, tag int) mpiMsg {
	for i, m := range r.pending {
		if m.From == src && m.Tag == tag {
			r.pending = append(r.pending[:i], r.pending[i+1:]...)
			return m
		}
	}
	for {
		msg := r.inbox.Get(p)
		m, ok := msg.Payload.(mpiMsg)
		if !ok {
			continue
		}
		if m.From == src && m.Tag == tag {
			return m
		}
		r.pending = append(r.pending, m)
	}
}

// Send transmits bytes to dest with a tag (traced as MPI_Send).
func (r *Rank) Send(p *sim.Proc, dest, tag int, bytes int64) {
	r.SendData(p, dest, tag, bytes, nil)
}

// SendData is Send with an application payload attached, the way real MPI
// messages carry buffers. Layers such as path-based tracing piggyback their
// propagation metadata through it.
func (r *Rank) SendData(p *sim.Proc, dest, tag int, bytes int64, data any) {
	r.libcall(p, "MPI_Send",
		func() []string { return []string{strconv.FormatInt(bytes, 10), strconv.Itoa(dest), strconv.Itoa(tag)} },
		func() string {
			r.sendRaw(p, dest, tag, bytes, data)
			return "0"
		})
}

// Recv blocks for a message from src with a tag (traced as MPI_Recv).
func (r *Rank) Recv(p *sim.Proc, src, tag int) int64 {
	n, _ := r.RecvData(p, src, tag)
	return n
}

// RecvData is Recv returning the attached payload as well.
func (r *Rank) RecvData(p *sim.Proc, src, tag int) (int64, any) {
	var n int64
	var data any
	r.libcall(p, "MPI_Recv",
		func() []string { return []string{strconv.Itoa(src), strconv.Itoa(tag)} },
		func() string {
			m := r.recvRaw(p, src, tag)
			n = m.Bytes
			data = m.Data
			return "0"
		})
	return n, data
}

// Barrier synchronizes all ranks with a dissemination barrier: ceil(log2 N)
// rounds of pairwise messages (traced as MPI_Barrier).
func (r *Rank) Barrier(p *sim.Proc) {
	r.libcall(p, "MPI_Barrier", func() []string { return []string{"92"} }, func() string {
		r.barrierBody(p)
		return "0"
	})
}

func (r *Rank) barrierBody(p *sim.Proc) {
	n := len(r.world.ranks)
	if n == 1 {
		return
	}
	gen := r.barGen
	r.barGen++
	for round, dist := 0, 1; dist < n; round, dist = round+1, dist*2 {
		peerTo := (r.rank + dist) % n
		peerFrom := (r.rank - dist + n) % n
		tag := -(1000 + gen*64 + round)
		r.sendRaw(p, peerTo, tag, 8, nil)
		r.recvRaw(p, peerFrom, tag)
	}
}

// Bcast distributes bytes from root over a binomial tree (traced as
// MPI_Bcast). The payload travels by value in Data for control uses.
func (r *Rank) Bcast(p *sim.Proc, root int, bytes int64, data any) any {
	var out any = data
	r.libcall(p, "MPI_Bcast",
		func() []string { return []string{strconv.FormatInt(bytes, 10), strconv.Itoa(root)} },
		func() string {
			out = r.bcastBody(p, root, bytes, data)
			return "0"
		})
	return out
}

// bcastBody runs the classic MPICH binomial-tree broadcast: a nonzero
// relative rank receives from (rel - lowbit(rel)), then forwards to
// (rel + mask) for each mask below its receive round.
func (r *Rank) bcastBody(p *sim.Proc, root int, bytes int64, data any) any {
	n := len(r.world.ranks)
	if n == 1 {
		return data
	}
	rel := (r.rank - root + n) % n
	const tag = -777
	got := data
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			parent := (rel - mask + root) % n
			m := r.recvRaw(p, parent, tag)
			got = m.Data
			break
		}
		mask <<= 1
	}
	for mask >>= 1; mask > 0; mask >>= 1 {
		if rel+mask < n {
			child := (rel + mask + root) % n
			r.sendRaw(p, child, tag, bytes, got)
		}
	}
	return got
}

// Gather collects one value per rank at root (traced as MPI_Gather); ranks
// pass their contribution, root receives the slice indexed by rank.
func (r *Rank) Gather(p *sim.Proc, root int, bytes int64, contribution any) []any {
	var out []any
	r.libcall(p, "MPI_Gather",
		func() []string { return []string{strconv.FormatInt(bytes, 10), strconv.Itoa(root)} },
		func() string {
			n := len(r.world.ranks)
			const tag = -888
			if r.rank != root {
				r.sendRaw(p, root, tag, bytes, contribution)
				return "0"
			}
			out = make([]any, n)
			out[root] = contribution
			for i := 0; i < n; i++ {
				if i == root {
					continue
				}
				m := r.recvRaw(p, i, tag)
				out[m.From] = m.Data
			}
			return "0"
		})
	return out
}

// AllreduceMax computes the maximum of an int64 across ranks (traced as
// MPI_Allreduce): gather to rank 0, then broadcast.
func (r *Rank) AllreduceMax(p *sim.Proc, v int64) int64 {
	var result int64
	r.libcall(p, "MPI_Allreduce", func() []string { return []string{strconv.FormatInt(v, 10)} }, func() string {
		vals := r.gatherRaw(p, 0, 8, v)
		if r.rank == 0 {
			m := v
			for _, raw := range vals {
				if x, ok := raw.(int64); ok && x > m {
					m = x
				}
			}
			result = m
		}
		out := r.bcastBody(p, 0, 8, result)
		if x, ok := out.(int64); ok {
			result = x
		}
		return "0"
	})
	return result
}

// gatherRaw is Gather without tracing, used inside other collectives.
func (r *Rank) gatherRaw(p *sim.Proc, root int, bytes int64, contribution any) []any {
	n := len(r.world.ranks)
	const tag = -889
	if r.rank != root {
		r.sendRaw(p, root, tag, bytes, contribution)
		return nil
	}
	out := make([]any, n)
	out[root] = contribution
	for i := 0; i < n; i++ {
		if i == root {
			continue
		}
		m := r.recvRaw(p, i, tag)
		out[m.From] = m.Data
	}
	return out
}
