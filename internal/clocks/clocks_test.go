package clocks

import (
	"testing"
	"testing/quick"

	"iotaxo/internal/sim"
)

func TestZeroClockIsIdentity(t *testing.T) {
	c := New(0, 0)
	for _, g := range []sim.Time{0, 1, sim.Second, 123456789} {
		if c.Local(g) != g {
			t.Fatalf("Local(%v) = %v", g, c.Local(g))
		}
		if c.Global(g) != g {
			t.Fatalf("Global(%v) = %v", g, c.Global(g))
		}
	}
}

func TestSkewOnly(t *testing.T) {
	c := New(5*sim.Second, 0)
	if got := c.Local(10 * sim.Second); got != 15*sim.Second {
		t.Fatalf("Local = %v, want 15s", got)
	}
	if got := c.SkewAt(999); got != 5*sim.Second {
		t.Fatalf("SkewAt = %v, want 5s", got)
	}
}

func TestDriftGrowsSkew(t *testing.T) {
	c := New(0, 100e-6) // 100 ppm fast
	s1 := c.SkewAt(1 * sim.Second)
	s2 := c.SkewAt(100 * sim.Second)
	if s2 <= s1 {
		t.Fatalf("drifting clock skew did not grow: %v then %v", s1, s2)
	}
	// 100 ppm over 100 s = 10 ms.
	if want := 10 * sim.Millisecond; s2 != want {
		t.Fatalf("skew at 100s = %v, want %v", s2, want)
	}
}

func TestNegativeDriftClockRunsSlow(t *testing.T) {
	c := New(0, -200e-6)
	if c.Local(sim.Second) >= sim.Second {
		t.Fatal("slow clock reads fast")
	}
}

func TestExtremeDriftPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0, -1.5)
}

// Property: Global(Local(t)) == t within 1 ns rounding for sane drifts.
func TestRoundTripProperty(t *testing.T) {
	f := func(gRaw int32, skewRaw int16, driftStep int8) bool {
		g := sim.Time(gRaw) * sim.Millisecond
		if g < 0 {
			g = -g
		}
		c := New(sim.Duration(skewRaw)*sim.Microsecond, float64(driftStep)*10e-6)
		back := c.Global(c.Local(g))
		diff := back - g
		if diff < 0 {
			diff = -diff
		}
		return diff <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Local is strictly monotone for drift > -1.
func TestLocalMonotoneProperty(t *testing.T) {
	f := func(aRaw, bRaw uint32, driftStep int8) bool {
		a, b := sim.Time(aRaw), sim.Time(bRaw)
		if a > b {
			a, b = b, a
		}
		if a == b {
			return true
		}
		c := New(0, float64(driftStep)*100e-6)
		return c.Local(a) <= c.Local(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateRecoversParameters(t *testing.T) {
	true_ := New(3*sim.Millisecond, 250e-6)
	r1, r2 := 10*sim.Second, 110*sim.Second
	est, err := EstimateFromSamples(
		Sample{Ref: r1, Local: true_.Local(r1)},
		Sample{Ref: r2, Local: true_.Local(r2)},
	)
	if err != nil {
		t.Fatal(err)
	}
	if d := est.Skew - true_.Skew; d < -2 || d > 2 {
		t.Fatalf("skew estimate %v, want %v", est.Skew, true_.Skew)
	}
	if d := est.Drift - true_.Drift; d < -1e-9 || d > 1e-9 {
		t.Fatalf("drift estimate %v, want %v", est.Drift, true_.Drift)
	}
}

func TestEstimateRejectsBadOrder(t *testing.T) {
	_, err := EstimateFromSamples(Sample{Ref: 10}, Sample{Ref: 10})
	if err == nil {
		t.Fatal("expected error for zero reference interval")
	}
	_, err = EstimateFromSamples(Sample{Ref: 20}, Sample{Ref: 10})
	if err == nil {
		t.Fatal("expected error for reversed samples")
	}
}

// Property: correcting a local timestamp with the exact estimate returns the
// original global instant (within rounding) for instants inside the window.
func TestCorrectInvertsLocalProperty(t *testing.T) {
	f := func(skewRaw int16, driftStep int8, gRaw uint16) bool {
		c := New(sim.Duration(skewRaw)*sim.Millisecond, float64(driftStep)*50e-6)
		r1, r2 := sim.Second, 1000*sim.Second
		est, err := EstimateFromSamples(
			Sample{Ref: r1, Local: c.Local(r1)},
			Sample{Ref: r2, Local: c.Local(r2)},
		)
		if err != nil {
			return false
		}
		g := sim.Time(gRaw) * 10 * sim.Millisecond
		back := est.Correct(c.Local(g))
		diff := back - g
		if diff < 0 {
			diff = -diff
		}
		return diff <= 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateString(t *testing.T) {
	e := Estimate{Skew: sim.Millisecond, Drift: 42e-6}
	if got := e.String(); got == "" {
		t.Fatal("empty String")
	}
}
