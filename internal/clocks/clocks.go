// Package clocks models per-node wall clocks in a distributed system.
//
// Global virtual time (the DES clock) is the ground truth that no real node
// can observe. Each node reads its own Clock, which differs from global time
// by a constant offset (skew) and a linear rate error (drift), the two
// phenomena the paper's taxonomy requires tracing frameworks to account for:
//
//	"Time skew is the difference between distributed clocks at any single
//	 moment in time. Time drift is the change in time skew over time."
//
// LANL-Trace's pre/post barrier timing job is reproduced on top of this
// package: each node reports its local time at two globally synchronized
// instants, from which offset and drift are estimated and corrected.
package clocks

import (
	"fmt"
	"math"

	"iotaxo/internal/sim"
)

// Clock converts between global simulation time and the local wall clock of
// one node. local(t) = t + Skew + Drift*t, with Drift expressed as a
// dimensionless rate error (e.g. 50e-6 = 50 ppm fast).
type Clock struct {
	Skew  sim.Duration // constant offset at global time zero
	Drift float64      // fractional rate error; must be > -1 for monotonicity
}

// New returns a clock with the given skew and drift. It panics if drift
// would make the local clock non-monotonic.
func New(skew sim.Duration, drift float64) *Clock {
	if drift <= -1 {
		panic(fmt.Sprintf("clocks: drift %v makes clock run backwards", drift))
	}
	return &Clock{Skew: skew, Drift: drift}
}

// Local converts a global instant to this node's local timestamp.
func (c *Clock) Local(global sim.Time) sim.Time {
	return global + c.Skew + sim.Time(math.Round(c.Drift*float64(global)))
}

// Global converts a local timestamp back to global time (inverse of Local,
// up to rounding of under a nanosecond).
func (c *Clock) Global(local sim.Time) sim.Time {
	return sim.Time(math.Round(float64(local-c.Skew) / (1 + c.Drift)))
}

// SkewAt reports the instantaneous skew (local - global) at a global time.
func (c *Clock) SkewAt(global sim.Time) sim.Duration {
	return c.Local(global) - global
}

// Estimate holds a two-point linear estimate of another clock's parameters,
// produced by comparing local timestamps against reference timestamps at two
// synchronization instants (the LANL-Trace pre/post barrier jobs).
type Estimate struct {
	Skew  sim.Duration // estimated offset at reference time zero
	Drift float64      // estimated fractional rate error
}

// Sample is one synchronization observation: the reference (coordinator)
// time and the node's local time captured at the same global instant.
type Sample struct {
	Ref   sim.Time
	Local sim.Time
}

// EstimateFromSamples fits skew and drift from exactly two samples, the
// minimum LANL-Trace collects (one barrier before the application, one
// after). With s1 taken at reference r1 and s2 at r2 (r2 > r1):
//
//	drift = (Δlocal - Δref) / Δref
//	skew  = local1 - r1 - drift*r1
func EstimateFromSamples(s1, s2 Sample) (Estimate, error) {
	dr := s2.Ref - s1.Ref
	if dr <= 0 {
		return Estimate{}, fmt.Errorf("clocks: samples not in increasing reference order (Δref=%v)", dr)
	}
	dl := s2.Local - s1.Local
	drift := float64(dl-dr) / float64(dr)
	skew := s1.Local - s1.Ref - sim.Time(math.Round(drift*float64(s1.Ref)))
	return Estimate{Skew: skew, Drift: drift}, nil
}

// Correct maps a node-local timestamp onto the reference timeline using the
// fitted parameters: the operation trace-analysis tools apply when merging
// per-node traces.
func (e Estimate) Correct(local sim.Time) sim.Time {
	return sim.Time(math.Round(float64(local-e.Skew) / (1 + e.Drift)))
}

// String implements fmt.Stringer.
func (e Estimate) String() string {
	return fmt.Sprintf("skew=%v drift=%.3gppm", e.Skew, e.Drift*1e6)
}
