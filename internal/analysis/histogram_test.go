package analysis

import (
	"strings"
	"testing"
	"testing/quick"

	"iotaxo/internal/sim"
	"iotaxo/internal/trace"
)

func ioRecs() []trace.Record {
	return []trace.Record{
		{Name: "SYS_pwrite", Rank: 0, Bytes: 4096, Time: 0, Dur: 10},
		{Name: "SYS_pwrite", Rank: 0, Bytes: 4096, Time: 100, Dur: 10},
		{Name: "SYS_pwrite", Rank: 0, Bytes: 65536, Time: 300, Dur: 50},
		{Name: "SYS_pwrite", Rank: 1, Bytes: 65536, Time: 50, Dur: 50},
		{Name: "MPI_Barrier", Rank: 1, Time: 150}, // not I/O
	}
}

func TestHistogramSizes(t *testing.T) {
	h := HistogramSizes(ioRecs())
	if h.Total != 4 {
		t.Fatalf("total = %d", h.Total)
	}
	if h.Buckets[12] != 2 { // 4096 = 2^12
		t.Fatalf("4K bucket = %d", h.Buckets[12])
	}
	if h.Buckets[16] != 2 { // 65536 = 2^16
		t.Fatalf("64K bucket = %d", h.Buckets[16])
	}
	out := h.Format()
	if !strings.Contains(out, "<=4KiB") || !strings.Contains(out, "<=64KiB") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := HistogramSizes(nil)
	if !strings.Contains(h.Format(), "no I/O") {
		t.Fatal("empty histogram format")
	}
}

// Property: log2Ceil returns the smallest b with 2^b >= n.
func TestLog2CeilProperty(t *testing.T) {
	f := func(raw uint16) bool {
		n := int64(raw) + 1
		b := log2Ceil(n)
		pow := int64(1) << b
		return pow >= n && (b == 0 || (int64(1)<<(b-1)) < n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSizeLabels(t *testing.T) {
	cases := map[int]string{
		0:  "<=1B",
		12: "<=4KiB",
		20: "<=1MiB",
		30: "<=1GiB",
	}
	for log2, want := range cases {
		if got := sizeLabel(log2); got != want {
			t.Errorf("sizeLabel(%d) = %q, want %q", log2, got, want)
		}
	}
}

func TestRankBalance(t *testing.T) {
	rb := ComputeRankBalance(ioRecs())
	if len(rb.PerRank) != 2 {
		t.Fatalf("ranks = %d", len(rb.PerRank))
	}
	if rb.PerRank[0].Bytes != 4096*2+65536 || rb.PerRank[0].Calls != 3 {
		t.Fatalf("rank 0 load: %+v", rb.PerRank[0])
	}
	f := rb.ImbalanceFactor()
	if f <= 1.0 || f > 2.0 {
		t.Fatalf("imbalance = %v", f)
	}
	out := rb.Format()
	if !strings.Contains(out, "imbalance factor") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestRankBalancePerfectlyEven(t *testing.T) {
	recs := []trace.Record{
		{Name: "SYS_pwrite", Rank: 0, Bytes: 100},
		{Name: "SYS_pwrite", Rank: 1, Bytes: 100},
	}
	if f := ComputeRankBalance(recs).ImbalanceFactor(); f != 1.0 {
		t.Fatalf("even imbalance = %v", f)
	}
}

func TestRankBalanceEmpty(t *testing.T) {
	if f := ComputeRankBalance(nil).ImbalanceFactor(); f != 0 {
		t.Fatalf("empty imbalance = %v", f)
	}
}

func TestInterarrival(t *testing.T) {
	st := ComputeInterarrival(ioRecs())
	// Rank 0 gaps: 100, 200. Rank 1 has one op: no gaps.
	if st.Count != 2 {
		t.Fatalf("count = %d", st.Count)
	}
	if st.Min != 100 || st.Max != 200 || st.Mean != 150 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestInterarrivalEmpty(t *testing.T) {
	st := ComputeInterarrival(nil)
	if st.Count != 0 || st.Min != 0 {
		t.Fatalf("empty stats: %+v", st)
	}
}

// TestHistogramSmallBucketStillVisible pins the bar-rendering fix: a
// nonzero bucket under 1/40 of the max count used to truncate to an empty
// bar, making rare-but-present request sizes invisible.
func TestHistogramSmallBucketStillVisible(t *testing.T) {
	recs := make([]trace.Record, 0, 101)
	for i := 0; i < 100; i++ {
		recs = append(recs, trace.Record{Name: "SYS_pwrite", Bytes: 4096})
	}
	// One lone 64 KiB request: 40*1/100 truncates to 0 marks.
	recs = append(recs, trace.Record{Name: "SYS_pwrite", Bytes: 64 << 10})
	out := HistogramSizes(recs).Format()
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "<=64KiB") && !strings.Contains(line, "#") {
			t.Fatalf("nonzero bucket rendered without a bar:\n%s", out)
		}
	}
	if !strings.Contains(out, "<=64KiB") {
		t.Fatalf("64KiB bucket missing:\n%s", out)
	}
}

// Property: histogram total always equals the number of I/O records.
func TestHistogramTotalProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		var recs []trace.Record
		io := 0
		for _, s := range sizes {
			b := int64(s)
			recs = append(recs, trace.Record{Name: "SYS_pwrite", Bytes: b})
			if b > 0 {
				io++
			}
		}
		return HistogramSizes(recs).Total == int64(io)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	_ = sim.Second
}
