package analysis

import (
	"strings"
	"testing"

	"iotaxo/internal/sim"
	"iotaxo/internal/trace"
)

// chainRecords builds MPI(100) -> syscall(80) -> fsop(60) plus one
// span-less record, with spans 1..3.
func chainRecords() []trace.Record {
	return []trace.Record{
		{Class: trace.ClassMPI, Name: "MPI_File_write_at", Dur: 100, Span: 1},
		{Class: trace.ClassSyscall, Name: "SYS_pwrite", Dur: 80, Span: 2, Parent: 1},
		{Class: trace.ClassFSOp, Name: "VFS_write", Dur: 60, Span: 3, Parent: 2},
		{Class: trace.ClassSyscall, Name: "SYS_close", Dur: 5},
	}
}

func TestSliceExclusiveTime(t *testing.T) {
	s := SliceRecords(chainRecords(), 1)
	if s.Spanless != 1 {
		t.Fatalf("spanless = %d, want 1", s.Spanless)
	}
	want := map[string]sim.Duration{"library": 20, "kernel": 20, "vfs": 60}
	for _, ls := range s.Layers {
		if ls.Exclusive != want[ls.Layer] {
			t.Fatalf("%s exclusive = %v, want %v", ls.Layer, ls.Exclusive, want[ls.Layer])
		}
		delete(want, ls.Layer)
	}
	if len(want) != 0 {
		t.Fatalf("layers missing from slice: %v", want)
	}
	if len(s.Paths) != 1 || len(s.Paths[0].Steps) != 2 {
		t.Fatalf("critical path = %+v, want 2 steps below the MPI root", s.Paths)
	}
	if s.Paths[0].Root.Name != "MPI_File_write_at" || s.Paths[0].Steps[1].Layer != "vfs" {
		t.Fatalf("critical path wrong shape: %+v", s.Paths[0])
	}
}

func TestSliceClampsParallelChildren(t *testing.T) {
	// Two concurrent children whose summed duration exceeds the parent
	// (striped RPC fan-out): exclusive time clamps at zero, not negative.
	recs := []trace.Record{
		{Class: trace.ClassFSOp, Name: "VFS_write", Dur: 50, Span: 1},
		{Class: trace.ClassNetMsg, Name: "NET_deliver", Dur: 40, Span: 2, Parent: 1},
		{Class: trace.ClassNetMsg, Name: "NET_deliver", Dur: 45, Span: 3, Parent: 1},
	}
	s := SliceRecords(recs, 0)
	for _, ls := range s.Layers {
		if ls.Layer == "vfs" && ls.Exclusive != 0 {
			t.Fatalf("vfs exclusive = %v, want 0 (clamped)", ls.Exclusive)
		}
		if ls.Exclusive < 0 {
			t.Fatalf("negative exclusive time: %+v", ls)
		}
	}
}

func TestSliceFormatSpanless(t *testing.T) {
	s := SliceRecords([]trace.Record{{Class: trace.ClassSyscall, Dur: 10}}, 3)
	out := s.Format()
	if !strings.Contains(out, "no span-carrying records") {
		t.Fatalf("span-less slice did not degrade gracefully:\n%s", out)
	}
}
