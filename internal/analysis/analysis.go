// Package analysis provides the trace-consumption tools the taxonomy's
// "Analysis tools" axis asks about: per-call summaries (the third LANL-Trace
// output in Figure 1), skew/drift correction of per-node timestamps onto a
// shared timeline, stream merging, and I/O statistics.
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"iotaxo/internal/clocks"
	"iotaxo/internal/sim"
	"iotaxo/internal/trace"
)

// SummaryRow is one line of a call summary.
type SummaryRow struct {
	Name      string
	Calls     int64
	TotalTime sim.Duration
}

// CallSummary aggregates records by call name.
type CallSummary struct {
	rows map[string]*SummaryRow
}

// NewCallSummary returns an empty summary ready for incremental Add calls.
func NewCallSummary() *CallSummary {
	return &CallSummary{rows: make(map[string]*SummaryRow)}
}

// Summarize builds a call summary over records.
func Summarize(recs []trace.Record) *CallSummary {
	s, _ := SummarizeSource(trace.SliceSource(recs))
	return s
}

// SummarizeSource folds a record stream into a call summary with O(1)
// memory per distinct call name.
func SummarizeSource(src trace.Source) (*CallSummary, error) {
	s := NewCallSummary()
	_, err := trace.Copy(s.Sink(), src)
	return s, err
}

// Sink exposes the summary as a streaming consumer.
func (s *CallSummary) Sink() trace.Sink {
	return trace.SinkFunc(func(r *trace.Record) error {
		s.Add(r)
		return nil
	})
}

// Add folds one record into the summary.
func (s *CallSummary) Add(r *trace.Record) {
	row, ok := s.rows[r.Name]
	if !ok {
		row = &SummaryRow{Name: r.Name}
		s.rows[r.Name] = row
	}
	row.Calls++
	row.TotalTime += r.Dur
}

// Rows returns the summary sorted by call name.
func (s *CallSummary) Rows() []SummaryRow {
	out := make([]SummaryRow, 0, len(s.rows))
	for _, r := range s.rows {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Format renders the summary in the style of Figure 1:
//
//	#                     SUMMARY COUNT OF TRACED CALL(S)
//	#  Function Name            Number of Calls            Total time (s)
//	=====================================================================
//	   MPI_Barrier                           29                  2.156431
func (s *CallSummary) Format() string {
	var b strings.Builder
	b.WriteString("#                     SUMMARY COUNT OF TRACED CALL(S)\n")
	b.WriteString("#  Function Name            Number of Calls            Total time (s)\n")
	b.WriteString(strings.Repeat("=", 77) + "\n")
	for _, row := range s.Rows() {
		secs := float64(row.TotalTime) / float64(sim.Second)
		fmt.Fprintf(&b, "   %-24s %15d %25.6f\n", row.Name, row.Calls, secs)
	}
	return b.String()
}

// CorrectingTransform returns a transform mapping node-local timestamps
// onto the reference timeline using per-node clock estimates. Records from
// nodes without an estimate pass through unchanged.
func CorrectingTransform(est map[string]clocks.Estimate) trace.Transform {
	return func(r *trace.Record) (bool, error) {
		if e, ok := est[r.Node]; ok {
			r.Time = e.Correct(r.Time)
		}
		return true, nil
	}
}

// CorrectingSource wraps src so records stream out skew-corrected (cloned,
// leaving the producer's storage untouched).
func CorrectingSource(src trace.Source, est map[string]clocks.Estimate) trace.Source {
	return trace.TransformSource(src, trace.CloneTransform, CorrectingTransform(est))
}

// CorrectTimeline maps each record's node-local timestamp onto the
// reference timeline using per-node clock estimates (from the LANL-Trace
// barrier timing job): the slice wrapper over CorrectingSource.
func CorrectTimeline(recs []trace.Record, est map[string]clocks.Estimate) []trace.Record {
	out, _ := trace.Collect(CorrectingSource(trace.SliceSource(recs), est))
	if out == nil {
		out = []trace.Record{}
	}
	return out
}

// MergeSorted merges per-process record streams into one stream ordered by
// timestamp (stable across equal timestamps by input order).
func MergeSorted(streams ...[]trace.Record) []trace.Record {
	var out []trace.Record
	for _, s := range streams {
		out = append(out, s...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}

// IOStats aggregates data-movement statistics from a record stream.
// ReadBytes and WriteBytes bucket directional data movement only; bytes
// carried by direction-less records (mmap regions, syncs) count toward
// Bytes but neither directional bucket.
type IOStats struct {
	Calls        int64
	Bytes        int64
	ReadBytes    int64
	WriteBytes   int64
	TimeInIO     sim.Duration
	DistinctPath map[string]struct{}
}

// NewIOStats returns empty stats ready for incremental Add calls.
func NewIOStats() *IOStats {
	return &IOStats{DistinctPath: make(map[string]struct{})}
}

// Add folds one record into the stats.
func (s *IOStats) Add(r *trace.Record) {
	if !r.IsIO() {
		return
	}
	s.Calls++
	s.Bytes += r.Bytes
	s.TimeInIO += r.Dur
	switch r.Direction() {
	case trace.DirRead:
		s.ReadBytes += r.Bytes
	case trace.DirWrite:
		s.WriteBytes += r.Bytes
	}
	if r.Path != "" {
		s.DistinctPath[r.Path] = struct{}{}
	}
}

// Sink exposes the stats as a streaming consumer.
func (s *IOStats) Sink() trace.Sink {
	return trace.SinkFunc(func(r *trace.Record) error {
		s.Add(r)
		return nil
	})
}

// ComputeIOStats scans records for I/O operations.
func ComputeIOStats(recs []trace.Record) IOStats {
	st, _ := ComputeIOStatsSource(trace.SliceSource(recs))
	return *st
}

// ComputeIOStatsSource folds a record stream into I/O statistics with
// memory proportional to the number of distinct paths only.
func ComputeIOStatsSource(src trace.Source) (*IOStats, error) {
	st := NewIOStats()
	_, err := trace.Copy(st.Sink(), src)
	return st, err
}

// Bandwidth reports bytes moved per second of in-call time, 0 when unknown.
func (s IOStats) Bandwidth() float64 {
	if s.TimeInIO <= 0 {
		return 0
	}
	return float64(s.Bytes) / s.TimeInIO.Seconds()
}

// TimelineSpan reports the first and last record timestamps.
func TimelineSpan(recs []trace.Record) (first, last sim.Time) {
	for i := range recs {
		t := recs[i].Time
		if i == 0 || t < first {
			first = t
		}
		if end := t + recs[i].Dur; end > last {
			last = end
		}
	}
	return first, last
}
