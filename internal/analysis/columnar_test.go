package analysis

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"iotaxo/internal/sim"
	"iotaxo/internal/trace"
)

// columnarTrace encodes recs as a Closed v2 stream and opens it indexed.
func columnarTrace(t *testing.T, recs []trace.Record, perBlock int) *trace.ColumnarReader {
	t.Helper()
	var buf bytes.Buffer
	w := trace.NewColumnarWriter(&buf, trace.ColumnarOptions{RecordsPerBlock: perBlock})
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	cr, err := trace.NewColumnarReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	return cr
}

// mixedRecords builds a trace with reads, writes, direction-less I/O, and
// non-I/O calls across many ranks and times.
func mixedRecords(n int, seed int64) []trace.Record {
	rng := rand.New(rand.NewSource(seed))
	names := []string{"SYS_read", "SYS_pwrite", "MPI_Barrier", "SYS_mmap", "VFS_write", "MPI_File_read_at"}
	out := make([]trace.Record, n)
	for i := range out {
		name := names[rng.Intn(len(names))]
		var b int64
		if name != "MPI_Barrier" {
			b = rng.Int63n(1 << 20)
		}
		out[i] = trace.Record{
			Time: sim.Time(i) * sim.Millisecond, Dur: sim.Duration(rng.Int63n(int64(sim.Millisecond))),
			Node: fmt.Sprintf("n%d", rng.Intn(8)), Rank: rng.Intn(256), PID: 100 + rng.Intn(64),
			Class: trace.EventClass(rng.Intn(4)), Name: name, Ret: "0",
			Path:  fmt.Sprintf("/scratch/f%d", rng.Intn(32)),
			Bytes: b,
		}
	}
	return out
}

// filter applies q to a record slice: the brute-force reference.
func filter(recs []trace.Record, q trace.Query) []trace.Record {
	var out []trace.Record
	for i := range recs {
		if q.Matches(&recs[i]) {
			out = append(out, recs[i])
		}
	}
	return out
}

func TestColumnarIOStatsMatchesFullScan(t *testing.T) {
	recs := mixedRecords(4000, 11)
	cr := columnarTrace(t, recs, 256)
	queries := []trace.Query{
		trace.MatchAll(),
		trace.MatchAll().WithRanks(64, 128),
		trace.MatchAll().WithWindow(500*sim.Millisecond, 2500*sim.Millisecond),
		trace.MatchAll().WithRanks(10, 40).WithWindow(0, 3*sim.Second).WithClasses(trace.ClassSyscall),
	}
	for qi, q := range queries {
		fast, scan, err := ColumnarIOStats(cr, q, 4)
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		slow := ComputeIOStats(filter(recs, q))
		if !reflect.DeepEqual(*fast, slow) {
			t.Fatalf("query %d: columnar %+v != full scan %+v", qi, *fast, slow)
		}
		if scan.BlocksDecoded > scan.BlocksTotal {
			t.Fatalf("query %d: decoded %d of %d", qi, scan.BlocksDecoded, scan.BlocksTotal)
		}
	}
}

func TestColumnarSummaryMatchesFullScan(t *testing.T) {
	recs := mixedRecords(4000, 23)
	cr := columnarTrace(t, recs, 512)
	q := trace.MatchAll().WithRanks(0, 99)
	fast, _, err := ColumnarSummary(cr, q, 4)
	if err != nil {
		t.Fatal(err)
	}
	slow := Summarize(filter(recs, q))
	if !reflect.DeepEqual(fast.Rows(), slow.Rows()) {
		t.Fatalf("columnar rows %+v != full scan rows %+v", fast.Rows(), slow.Rows())
	}
	if fast.Format() != slow.Format() {
		t.Fatal("rendered summaries differ")
	}
}
