package analysis

import (
	"fmt"
	"sort"
	"strings"

	"iotaxo/internal/sim"
	"iotaxo/internal/trace"
)

// SizeHistogram buckets I/O request sizes by power of two: the first plot
// any I/O analyst draws over a new trace.
type SizeHistogram struct {
	Buckets map[int]int64 // log2(ceil) bucket -> request count
	Total   int64
	Bytes   int64
}

// NewSizeHistogram returns an empty histogram ready for incremental Add.
func NewSizeHistogram() *SizeHistogram {
	return &SizeHistogram{Buckets: make(map[int]int64)}
}

// Add folds one record into the histogram.
func (h *SizeHistogram) Add(r *trace.Record) {
	if !r.IsIO() {
		return
	}
	h.Buckets[log2Ceil(r.Bytes)]++
	h.Total++
	h.Bytes += r.Bytes
}

// Sink exposes the histogram as a streaming consumer.
func (h *SizeHistogram) Sink() trace.Sink {
	return trace.SinkFunc(func(r *trace.Record) error {
		h.Add(r)
		return nil
	})
}

// HistogramSizes builds a request-size histogram over the I/O records.
func HistogramSizes(recs []trace.Record) SizeHistogram {
	h, _ := HistogramSizesSource(trace.SliceSource(recs))
	return *h
}

// HistogramSizesSource folds a record stream into the histogram with O(1)
// memory per bucket.
func HistogramSizesSource(src trace.Source) (*SizeHistogram, error) {
	h := NewSizeHistogram()
	_, err := trace.Copy(h.Sink(), src)
	return h, err
}

func log2Ceil(n int64) int {
	if n <= 1 {
		return 0
	}
	b := 0
	v := int64(1)
	for v < n {
		v <<= 1
		b++
	}
	return b
}

// Format renders the histogram with proportional bars.
func (h SizeHistogram) Format() string {
	if h.Total == 0 {
		return "# no I/O requests\n"
	}
	keys := make([]int, 0, len(h.Buckets))
	for k := range h.Buckets {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var max int64
	for _, k := range keys {
		if h.Buckets[k] > max {
			max = h.Buckets[k]
		}
	}
	var b strings.Builder
	b.WriteString("# request size histogram\n")
	for _, k := range keys {
		n := h.Buckets[k]
		// A nonzero bucket always shows at least one mark: integer division
		// would otherwise render buckets under 1/40 of the max as empty.
		width := int(40 * n / max)
		if width == 0 && n > 0 {
			width = 1
		}
		bar := strings.Repeat("#", width)
		fmt.Fprintf(&b, "%10s %8d %s\n", sizeLabel(k), n, bar)
	}
	fmt.Fprintf(&b, "# %d requests, %d bytes total\n", h.Total, h.Bytes)
	return b.String()
}

func sizeLabel(log2 int) string {
	size := int64(1) << log2
	switch {
	case size >= 1<<30:
		return fmt.Sprintf("<=%dGiB", size>>30)
	case size >= 1<<20:
		return fmt.Sprintf("<=%dMiB", size>>20)
	case size >= 1<<10:
		return fmt.Sprintf("<=%dKiB", size>>10)
	default:
		return fmt.Sprintf("<=%dB", size)
	}
}

// RankBalance quantifies the per-rank distribution of I/O work: ranks doing
// unequal I/O indicate load imbalance, the first thing a parallel-I/O
// debugger looks for in a merged trace.
type RankBalance struct {
	PerRank map[int]*RankLoad
}

// RankLoad is one rank's I/O totals.
type RankLoad struct {
	Rank   int
	Calls  int64
	Bytes  int64
	InCall sim.Duration
}

// ComputeRankBalance aggregates I/O per rank.
func ComputeRankBalance(recs []trace.Record) RankBalance {
	rb := RankBalance{PerRank: make(map[int]*RankLoad)}
	for i := range recs {
		r := &recs[i]
		if !r.IsIO() {
			continue
		}
		load, ok := rb.PerRank[r.Rank]
		if !ok {
			load = &RankLoad{Rank: r.Rank}
			rb.PerRank[r.Rank] = load
		}
		load.Calls++
		load.Bytes += r.Bytes
		load.InCall += r.Dur
	}
	return rb
}

// ImbalanceFactor is max/mean bytes across ranks (1.0 = perfectly even; 0
// when there is no I/O).
func (rb RankBalance) ImbalanceFactor() float64 {
	if len(rb.PerRank) == 0 {
		return 0
	}
	var total, max int64
	for _, l := range rb.PerRank {
		total += l.Bytes
		if l.Bytes > max {
			max = l.Bytes
		}
	}
	mean := float64(total) / float64(len(rb.PerRank))
	if mean == 0 {
		return 0
	}
	return float64(max) / mean
}

// Format renders the per-rank table.
func (rb RankBalance) Format() string {
	ranks := make([]int, 0, len(rb.PerRank))
	for r := range rb.PerRank {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	var b strings.Builder
	b.WriteString("# per-rank I/O balance\n")
	fmt.Fprintf(&b, "%6s %8s %12s %14s\n", "rank", "calls", "bytes", "time in I/O")
	for _, r := range ranks {
		l := rb.PerRank[r]
		fmt.Fprintf(&b, "%6d %8d %12d %14v\n", l.Rank, l.Calls, l.Bytes, l.InCall)
	}
	fmt.Fprintf(&b, "# imbalance factor (max/mean bytes): %.2f\n", rb.ImbalanceFactor())
	return b.String()
}

// InterarrivalStats summarizes gaps between consecutive I/O calls within
// each rank: the burstiness signature replay tools must reproduce.
type InterarrivalStats struct {
	Count          int64
	Min, Max, Mean sim.Duration
}

// ComputeInterarrival measures per-rank consecutive I/O start-time gaps.
func ComputeInterarrival(recs []trace.Record) InterarrivalStats {
	byRank := make(map[int][]sim.Time)
	for i := range recs {
		r := &recs[i]
		if !r.IsIO() {
			continue
		}
		byRank[r.Rank] = append(byRank[r.Rank], r.Time)
	}
	st := InterarrivalStats{Min: sim.MaxTime}
	var total sim.Duration
	for _, times := range byRank {
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		for i := 1; i < len(times); i++ {
			gap := times[i] - times[i-1]
			st.Count++
			total += gap
			if gap < st.Min {
				st.Min = gap
			}
			if gap > st.Max {
				st.Max = gap
			}
		}
	}
	if st.Count > 0 {
		st.Mean = total / sim.Duration(st.Count)
	} else {
		st.Min = 0
	}
	return st
}
