package analysis

import (
	"strings"
	"testing"
	"testing/quick"

	"iotaxo/internal/clocks"
	"iotaxo/internal/sim"
	"iotaxo/internal/trace"
)

func records() []trace.Record {
	return []trace.Record{
		{Name: "MPI_Barrier", Dur: 2 * sim.Second, Time: 10, Node: "a"},
		{Name: "MPI_Barrier", Dur: 156431 * sim.Microsecond, Time: 30, Node: "a"},
		{Name: "SYS_read", Dur: 22 * sim.Microsecond, Time: 20, Node: "a", Bytes: 4096},
		{Name: "SYS_read", Dur: 22 * sim.Microsecond, Time: 40, Node: "b", Bytes: 4096},
		{Name: "SYS_open", Dur: 5 * sim.Microsecond, Time: 5, Node: "b", Path: "/f"},
		{Name: "SYS_pwrite", Dur: 100 * sim.Microsecond, Time: 50, Node: "b", Bytes: 8192, Path: "/f"},
	}
}

func TestSummarizeCountsAndTimes(t *testing.T) {
	s := Summarize(records())
	rows := s.Rows()
	byName := map[string]SummaryRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if byName["MPI_Barrier"].Calls != 2 {
		t.Fatalf("barrier calls = %d", byName["MPI_Barrier"].Calls)
	}
	if byName["MPI_Barrier"].TotalTime != 2*sim.Second+156431*sim.Microsecond {
		t.Fatalf("barrier time = %v", byName["MPI_Barrier"].TotalTime)
	}
	if byName["SYS_read"].Calls != 2 {
		t.Fatalf("read calls = %d", byName["SYS_read"].Calls)
	}
}

func TestSummaryRowsSorted(t *testing.T) {
	rows := Summarize(records()).Rows()
	for i := 1; i < len(rows); i++ {
		if rows[i].Name < rows[i-1].Name {
			t.Fatal("rows not sorted")
		}
	}
}

func TestFormatMatchesFigure1(t *testing.T) {
	out := Summarize(records()).Format()
	for _, want := range []string{
		"SUMMARY COUNT OF TRACED CALL(S)",
		"Function Name",
		"Number of Calls",
		"Total time (s)",
		"MPI_Barrier",
		"2.156431",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestCorrectTimelineAppliesEstimates(t *testing.T) {
	recs := []trace.Record{
		{Node: "a", Time: 1000},
		{Node: "b", Time: 1000},
		{Node: "c", Time: 1000},
	}
	est := map[string]clocks.Estimate{
		"a": {Skew: 100},
		"b": {Skew: -100},
	}
	out := CorrectTimeline(recs, est)
	if out[0].Time != 900 || out[1].Time != 1100 {
		t.Fatalf("corrected times: %v %v", out[0].Time, out[1].Time)
	}
	if out[2].Time != 1000 {
		t.Fatalf("unknown node altered: %v", out[2].Time)
	}
	// Original untouched.
	if recs[0].Time != 1000 {
		t.Fatal("input mutated")
	}
}

func TestMergeSortedOrders(t *testing.T) {
	a := []trace.Record{{Time: 10}, {Time: 30}}
	b := []trace.Record{{Time: 20}, {Time: 40}}
	out := MergeSorted(a, b)
	for i := 1; i < len(out); i++ {
		if out[i].Time < out[i-1].Time {
			t.Fatal("not sorted")
		}
	}
	if len(out) != 4 {
		t.Fatalf("len = %d", len(out))
	}
}

// Property: MergeSorted output is always nondecreasing in Time.
func TestMergeSortedProperty(t *testing.T) {
	f := func(times []int16) bool {
		var a, b []trace.Record
		for i, tm := range times {
			r := trace.Record{Time: sim.Time(tm)}
			if i%2 == 0 {
				a = append(a, r)
			} else {
				b = append(b, r)
			}
		}
		out := MergeSorted(a, b)
		for i := 1; i < len(out); i++ {
			if out[i].Time < out[i-1].Time {
				return false
			}
		}
		return len(out) == len(times)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestComputeIOStats(t *testing.T) {
	st := ComputeIOStats(records())
	if st.Calls != 3 {
		t.Fatalf("io calls = %d", st.Calls)
	}
	if st.Bytes != 4096*2+8192 {
		t.Fatalf("bytes = %d", st.Bytes)
	}
	if st.ReadBytes != 8192 || st.WriteBytes != 8192 {
		t.Fatalf("read=%d write=%d", st.ReadBytes, st.WriteBytes)
	}
	if len(st.DistinctPath) != 1 {
		t.Fatalf("paths = %d", len(st.DistinctPath))
	}
	if st.Bandwidth() <= 0 {
		t.Fatal("bandwidth not positive")
	}
}

// TestIOStatsNeitherReadNorWrite pins the direction-classification fix:
// byte-carrying records that move data in no single direction (mmap
// regions, readdir-style metadata) must not inflate WriteBytes — the old
// "anything without read in the name is a write" rule counted them all.
func TestIOStatsNeitherReadNorWrite(t *testing.T) {
	recs := []trace.Record{
		{Name: "SYS_pwrite", Bytes: 4096, Dur: sim.Microsecond},
		{Name: "SYS_pread", Bytes: 1024, Dur: sim.Microsecond},
		{Name: "SYS_mmap", Bytes: 65536, Dur: sim.Microsecond},
		{Name: "SYS_readdir", Bytes: 512, Dur: sim.Microsecond},
	}
	st := ComputeIOStats(recs)
	if st.WriteBytes != 4096 {
		t.Fatalf("WriteBytes = %d, want 4096 (mmap/readdir bytes leaked in)", st.WriteBytes)
	}
	if st.ReadBytes != 1024 {
		t.Fatalf("ReadBytes = %d, want 1024 (readdir misclassified as read)", st.ReadBytes)
	}
	// All byte-carrying records still count toward the aggregate volume.
	if st.Bytes != 4096+1024+65536+512 {
		t.Fatalf("Bytes = %d", st.Bytes)
	}
	if st.Calls != 4 {
		t.Fatalf("Calls = %d", st.Calls)
	}
}

func TestRecordDirection(t *testing.T) {
	cases := []struct {
		name string
		want trace.IODir
	}{
		{"SYS_pwrite", trace.DirWrite},
		{"SYS_write", trace.DirWrite},
		{"MPI_File_write_at_all", trace.DirWrite},
		{"VFS_writepage", trace.DirWrite},
		{"SYS_pread", trace.DirRead},
		{"MPI_File_read_at", trace.DirRead},
		{"VFS_read", trace.DirRead},
		{"SYS_mmap", trace.DirNone},
		{"MPI_File_sync", trace.DirNone},
		{"SYS_readdir", trace.DirNone},
		{"custom_readwrite_probe", trace.DirWrite}, // heuristic: write wins
		{"custom_read_probe", trace.DirRead},
	}
	for _, c := range cases {
		r := trace.Record{Name: c.name}
		if got := r.Direction(); got != c.want {
			t.Errorf("Direction(%s) = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestBandwidthZeroWhenNoTime(t *testing.T) {
	st := IOStats{}
	if st.Bandwidth() != 0 {
		t.Fatal("expected 0")
	}
}

func TestTimelineSpan(t *testing.T) {
	first, last := TimelineSpan(records())
	if first != 5 {
		t.Fatalf("first = %v", first)
	}
	if last != 30+sim.Time(156431*sim.Microsecond) && last < 30 {
		t.Fatalf("last = %v", last)
	}
}

func TestSummaryAddIncremental(t *testing.T) {
	s := &CallSummary{}
	s2 := Summarize(nil)
	r := trace.Record{Name: "X", Dur: 5}
	s2.Add(&r)
	s2.Add(&r)
	if rows := s2.Rows(); len(rows) != 1 || rows[0].Calls != 2 || rows[0].TotalTime != 10 {
		t.Fatalf("rows: %+v", rows)
	}
	_ = s
}
