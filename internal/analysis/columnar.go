package analysis

// Columnar fast paths: analysis folds that need only a few fields run
// directly over v2 column views — no record materialization, blocks pruned
// by the footer index, decode fanned out over the scan pool. Each fold's
// semantics are identical to streaming its row-based counterpart over the
// same query's records (asserted in tests).

import (
	"iotaxo/internal/sim"
	"iotaxo/internal/trace"
)

// ColumnarIOStats folds the records matching q into I/O statistics reading
// only the bytes, duration, direction, and path columns. The direction
// column carries the bits Record.Direction would recompute, so the buckets
// agree with ComputeIOStats exactly.
func ColumnarIOStats(cr *trace.ColumnarReader, q trace.Query, workers int) (*IOStats, trace.ScanStats, error) {
	st := NewIOStats()
	scan, err := cr.ScanViews(q, workers, func(v *trace.BlockView, rows []int) error {
		bs, err := v.Bytes()
		if err != nil {
			return err
		}
		durs, err := v.Durs()
		if err != nil {
			return err
		}
		dirs, err := v.Dirs()
		if err != nil {
			return err
		}
		paths, err := v.Paths()
		if err != nil {
			return err
		}
		for _, i := range rows {
			if bs[i] <= 0 {
				continue
			}
			st.Calls++
			st.Bytes += bs[i]
			st.TimeInIO += sim.Duration(durs[i])
			switch dirs[i] {
			case trace.DirRead:
				st.ReadBytes += bs[i]
			case trace.DirWrite:
				st.WriteBytes += bs[i]
			}
			if paths[i] != "" {
				st.DistinctPath[paths[i]] = struct{}{}
			}
		}
		return nil
	})
	return st, scan, err
}

// ColumnarSummary folds the records matching q into a call summary reading
// only the name and duration columns.
func ColumnarSummary(cr *trace.ColumnarReader, q trace.Query, workers int) (*CallSummary, trace.ScanStats, error) {
	s := NewCallSummary()
	scan, err := cr.ScanViews(q, workers, func(v *trace.BlockView, rows []int) error {
		names, err := v.Names()
		if err != nil {
			return err
		}
		durs, err := v.Durs()
		if err != nil {
			return err
		}
		for _, i := range rows {
			row, ok := s.rows[names[i]]
			if !ok {
				row = &SummaryRow{Name: names[i]}
				s.rows[names[i]] = row
			}
			row.Calls++
			row.TotalTime += sim.Duration(durs[i])
		}
		return nil
	})
	return s, scan, err
}
