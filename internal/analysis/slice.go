package analysis

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"iotaxo/internal/sim"
	"iotaxo/internal/trace"
)

// Cross-layer latency slicing over causal spans (ReLayTracer-style): every
// record carries the span of the operation that issued it, so a trace that
// mixes library, kernel, VFS, network, PFS and disk records can be sliced
// into per-layer exclusive times — the time each layer spent that is NOT
// covered by the operations it caused one layer down.

// SliceLayer buckets record classes into slicing layers.
func SliceLayer(c trace.EventClass) string {
	switch c {
	case trace.ClassMPI:
		return "library"
	case trace.ClassSyscall:
		return "kernel"
	case trace.ClassFSOp:
		return "vfs"
	case trace.ClassNetMsg:
		return "net"
	case trace.ClassPFSOp:
		return "pfs"
	case trace.ClassDiskIO:
		return "disk"
	default:
		return c.String()
	}
}

// sliceLayerOrder fixes the top-down rendering order of the layers.
var sliceLayerOrder = []string{"library", "kernel", "vfs", "net", "pfs", "disk"}

// LayerSlice is one layer's share of a slicing result.
type LayerSlice struct {
	Layer     string
	Records   int
	Total     sim.Duration // sum of record durations in this layer
	Exclusive sim.Duration // total minus time covered by direct children
}

// PathStep is one hop of a critical path: the longest-duration child chain
// below a root operation.
type PathStep struct {
	Layer string
	Name  string
	Node  string
	Dur   sim.Duration
}

// CriticalPath is the max-duration descent from one slow root operation.
type CriticalPath struct {
	Root  trace.Record
	Steps []PathStep
}

// Slice is the full slicing result for a record set.
type Slice struct {
	Layers   []LayerSlice
	Spanless int // records without span info (excluded from attribution)
	Paths    []CriticalPath
}

// SliceRecords attributes latency across layers by exclusive time: each
// record's duration minus the summed durations of its direct children
// (clamped at zero — concurrent children can overlap their parent). Roots
// are records whose parent span does not appear in the set. maxPaths limits
// the critical-path breakdowns reported for the slowest roots (0 = none).
func SliceRecords(recs []trace.Record, maxPaths int) *Slice {
	out := &Slice{}
	layers := make(map[string]*LayerSlice)
	layerOf := func(name string) *LayerSlice {
		ls, ok := layers[name]
		if !ok {
			ls = &LayerSlice{Layer: name}
			layers[name] = ls
		}
		return ls
	}
	// Index children by parent span and accumulate per-layer totals.
	children := make(map[uint64][]int)
	haveSpan := make(map[uint64]bool, len(recs))
	for i := range recs {
		r := &recs[i]
		if !r.HasSpan() {
			out.Spanless++
			continue
		}
		haveSpan[r.Span] = true
		if r.Parent != 0 {
			children[r.Parent] = append(children[r.Parent], i)
		}
		ls := layerOf(SliceLayer(r.Class))
		ls.Records++
		ls.Total += r.Dur
	}
	var roots []int
	for i := range recs {
		r := &recs[i]
		if !r.HasSpan() {
			continue
		}
		var childTime sim.Duration
		for _, c := range children[r.Span] {
			childTime += recs[c].Dur
		}
		excl := r.Dur - childTime
		if excl < 0 {
			excl = 0 // parallel children (striped RPCs, RAID fan-out)
		}
		layerOf(SliceLayer(r.Class)).Exclusive += excl
		if r.Parent == 0 || !haveSpan[r.Parent] {
			roots = append(roots, i)
		}
	}
	for _, name := range sliceLayerOrder {
		if ls, ok := layers[name]; ok {
			out.Layers = append(out.Layers, *ls)
			delete(layers, name)
		}
	}
	// Any layer outside the canonical six (unknown classes) goes last.
	var rest []string
	for name := range layers {
		rest = append(rest, name)
	}
	sort.Strings(rest)
	for _, name := range rest {
		out.Layers = append(out.Layers, *layers[name])
	}
	if maxPaths > 0 {
		sort.SliceStable(roots, func(a, b int) bool { return recs[roots[a]].Dur > recs[roots[b]].Dur })
		if len(roots) > maxPaths {
			roots = roots[:maxPaths]
		}
		for _, ri := range roots {
			out.Paths = append(out.Paths, criticalPath(recs, children, ri))
		}
	}
	return out
}

// criticalPath walks the max-duration child at every level below root.
func criticalPath(recs []trace.Record, children map[uint64][]int, root int) CriticalPath {
	cp := CriticalPath{Root: recs[root]}
	cur := root
	for {
		kids := children[recs[cur].Span]
		if len(kids) == 0 {
			break
		}
		best := kids[0]
		for _, k := range kids[1:] {
			if recs[k].Dur > recs[best].Dur {
				best = k
			}
		}
		r := &recs[best]
		cp.Steps = append(cp.Steps, PathStep{
			Layer: SliceLayer(r.Class), Name: r.Name, Node: r.Node, Dur: r.Dur,
		})
		cur = best
	}
	return cp
}

// SliceSource drains a record stream and slices it.
func SliceSource(src trace.Source, maxPaths int) (*Slice, error) {
	var recs []trace.Record
	for {
		r, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		recs = append(recs, r)
	}
	return SliceRecords(recs, maxPaths), nil
}

// Format renders the slicing result.
func (s *Slice) Format() string {
	var b strings.Builder
	b.WriteString("# cross-layer latency slicing (exclusive time per layer)\n")
	var exclSum sim.Duration
	for _, ls := range s.Layers {
		exclSum += ls.Exclusive
	}
	if exclSum == 0 {
		b.WriteString("# no span-carrying records\n")
		return b.String()
	}
	fmt.Fprintf(&b, "%-10s %8s %14s %14s %8s\n", "layer", "records", "total", "exclusive", "share")
	for _, ls := range s.Layers {
		fmt.Fprintf(&b, "%-10s %8d %14v %14v %7.1f%%\n",
			ls.Layer, ls.Records, ls.Total, ls.Exclusive,
			100*float64(ls.Exclusive)/float64(exclSum))
	}
	if s.Spanless > 0 {
		fmt.Fprintf(&b, "# %d records without span info excluded\n", s.Spanless)
	}
	for i, cp := range s.Paths {
		fmt.Fprintf(&b, "# critical path %d: %s rank=%d %v\n", i+1, cp.Root.Name, cp.Root.Rank, cp.Root.Dur)
		for _, st := range cp.Steps {
			fmt.Fprintf(&b, "#   %-8s %-16s %-14s %v\n", st.Layer, st.Name, st.Node, st.Dur)
		}
	}
	return b.String()
}
