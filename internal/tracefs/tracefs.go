// Package tracefs reimplements Tracefs (Aranya, Wright, Zadok, FAST'04) as
// described by the paper's survey: a stackable file system mounted on top of
// a lower file system, tracing every VFS operation that passes through it
// at a user-selected granularity, with binary output and optional
// buffering, compression, checksumming and CBC anonymization — each feature
// adding measurable overhead.
//
// Behavioural details reproduced from the paper:
//
//   - Tracefs mounts over ordinary file systems (ext3, NFS) but is NOT
//     compatible with the parallel file system "out of the box": Mount
//     returns vfs.ErrIncompatible unless ForceStack simulates porting work.
//   - Because it sits at the VFS layer, it observes operations invisible to
//     syscall tracers, such as memory-mapped writeback.
//   - Aggregation via event counters is always maintained.
//   - It has no parallel awareness: no timestamps correction, no rank
//     labels beyond what the kernel knows (skew/drift axis: N/A).
package tracefs

import (
	"bytes"
	"fmt"
	"strconv"

	"iotaxo/internal/anonymize"
	"iotaxo/internal/interpose"
	"iotaxo/internal/sim"
	"iotaxo/internal/trace"
	"iotaxo/internal/vfs"
)

// Config selects Tracefs features. The zero value traces everything with
// plain binary output and default in-kernel hook costs.
type Config struct {
	// Filter is the granularity specification; nil traces everything.
	Filter *Filter
	// Buffer batches this many records before paying output cost (the
	// paper: "buffering (to improve performance)"); <=1 disables.
	Buffer int
	// Compress enables flate compression of output blocks.
	Compress bool
	// Columnar selects the columnar v2 trace format instead of the
	// row-ordered v1 binary format (both are "Binary" on the taxonomy's
	// output-format axis; v2 is several times smaller and column-scannable).
	Columnar bool
	// Checksum enables per-block checksum verification cost accounting.
	// (The binary format always carries CRCs; this models the optional
	// stronger checksumming Tracefs charges extra for.)
	Checksum bool
	// Encrypt enables CBC anonymization of the selected fields.
	Encrypt     bool
	EncryptSpec anonymize.Spec
	Key         []byte
	// ForceStack overrides the vnode-stacking compatibility check,
	// modelling the porting effort the paper alludes to.
	ForceStack bool
	// Model is the base per-event cost; zero selects interpose.VFSHook.
	Model interpose.CostModel
}

// DefaultConfig traces all operations with buffering enabled.
func DefaultConfig() Config {
	return Config{Buffer: 64, Model: interpose.VFSHook()}
}

// traceWriter is what the emitter needs from either trace format's writer:
// buffered encode plus block cut-over on demand.
type traceWriter interface {
	Write(*trace.Record) error
	Flush() error
}

// Per-byte feature costs (charged on top of the base model).
const (
	checksumCostPerByte = 12 * sim.Nanosecond
	compressCostPerByte = 45 * sim.Nanosecond
	encryptCostPerByte  = 90 * sim.Nanosecond
)

// FS is a mounted Tracefs layer. It implements vfs.Filesystem by wrapping
// every operation of the lower file system.
type FS struct {
	lower vfs.Filesystem
	cfg   Config
	enc   *anonymize.Encryptor

	out    bytes.Buffer
	writer traceWriter
	buffer []trace.Record

	// Counters aggregates events per operation name ("aggregation (via
	// event counters)").
	Counters map[string]int64
	// Stats.
	Events     int64
	Suppressed int64
	TimeSpent  sim.Duration
}

// Mount wraps lower in a Tracefs layer. It fails with vfs.ErrIncompatible
// when the lower file system does not support vnode stacking (the parallel
// file system case from the paper) unless cfg.ForceStack is set.
func Mount(lower vfs.Filesystem, cfg Config) (*FS, error) {
	if !vfs.CanStack(lower) && !cfg.ForceStack {
		return nil, fmt.Errorf("tracefs: cannot mount over %s: %w", lower.FSName(), vfs.ErrIncompatible)
	}
	if cfg.Model == (interpose.CostModel{}) {
		cfg.Model = interpose.VFSHook()
	}
	f := &FS{
		lower:    lower,
		cfg:      cfg,
		Counters: make(map[string]int64),
	}
	if cfg.Columnar {
		f.writer = trace.NewColumnarWriter(&f.out, trace.ColumnarOptions{
			Compress:   cfg.Compress,
			Anonymized: cfg.Encrypt,
		})
	} else {
		f.writer = trace.NewBinaryWriter(&f.out, trace.BinaryOptions{
			Compress:   cfg.Compress,
			Anonymized: cfg.Encrypt,
		})
	}
	if cfg.Encrypt {
		key := cfg.Key
		if len(key) == 0 {
			key = []byte("tracefs-default-")
		}
		spec := cfg.EncryptSpec
		if len(spec) == 0 {
			spec, _ = anonymize.ParseSpec("path,uid,gid")
		}
		enc, err := anonymize.NewEncryptor(spec, key)
		if err != nil {
			return nil, err
		}
		f.enc = enc
	}
	return f, nil
}

// FSName implements vfs.Filesystem.
func (f *FS) FSName() string { return "tracefs(" + f.lower.FSName() + ")" }

// VNodeStackingSupported: a Tracefs layer can itself be stacked on.
func (f *FS) VNodeStackingSupported() bool { return true }

// perByteCost sums the enabled features' per-byte charges.
func (f *FS) perByteCost() sim.Duration {
	c := f.cfg.Model.PerOutputByte
	if f.cfg.Checksum {
		c += checksumCostPerByte
	}
	if f.cfg.Compress {
		c += compressCostPerByte
	}
	if f.cfg.Encrypt {
		c += encryptCostPerByte
	}
	return c
}

// observe records one VFS event, charging the calling process.
func (f *FS) observe(p *sim.Proc, rec trace.Record) {
	start := p.Now()
	if f.cfg.Model.EnterCost+f.cfg.Model.ExitCost > 0 {
		p.Sleep(f.cfg.Model.EnterCost + f.cfg.Model.ExitCost)
	}
	op := rec.Name
	f.Counters[op]++
	if f.cfg.Filter != nil && !f.cfg.Filter.Match(&rec) {
		f.Suppressed++
		f.TimeSpent += p.Now() - start
		return
	}
	f.Events++
	if f.enc != nil {
		f.enc.Apply(&rec)
	}
	f.buffer = append(f.buffer, rec)
	if f.cfg.Buffer <= 1 || len(f.buffer) >= f.cfg.Buffer {
		f.flush(p)
	}
	f.TimeSpent += p.Now() - start
}

// flush drains the record buffer to the binary writer, charging output and
// feature costs to the flushing process (the thread unlucky enough to fill
// the buffer, as in the real kernel module).
func (f *FS) flush(p *sim.Proc) {
	if len(f.buffer) == 0 {
		return
	}
	var bytesOut int64
	for i := range f.buffer {
		bytesOut += f.buffer[i].EstimatedTextSize()
		f.writer.Write(&f.buffer[i])
	}
	f.writer.Flush()
	cost := sim.Duration(bytesOut) * f.perByteCost()
	if cost > 0 {
		p.Sleep(cost)
	}
	f.buffer = f.buffer[:0]
}

// SyncTrace flushes buffered trace records, charging the calling process
// (the unmount path).
func (f *FS) SyncTrace(p *sim.Proc) {
	f.flush(p)
}

// DrainForAnalysis flushes any buffered records into the binary stream
// without charging simulated time: for reading the trace back after the
// simulation has ended.
func (f *FS) DrainForAnalysis() {
	for i := range f.buffer {
		f.writer.Write(&f.buffer[i])
	}
	f.buffer = f.buffer[:0]
	f.writer.Flush()
}

// OutputBytes reports the size of the binary trace produced so far.
func (f *FS) OutputBytes() int64 {
	f.DrainForAnalysis()
	return int64(f.out.Len())
}

// OpenTrace streams the binary output back as records, decoding one block
// at a time (analysis side). Each call opens an independent cursor; the
// format is sniffed, so v1 and columnar emitters read back identically.
func (f *FS) OpenTrace() trace.Source {
	f.DrainForAnalysis()
	src, _, _ := trace.OpenAuto(bytes.NewReader(f.out.Bytes()))
	return src
}

// TraceRecords decodes the binary output back into records: the slice
// wrapper over OpenTrace.
func (f *FS) TraceRecords() ([]trace.Record, error) {
	return trace.Collect(f.OpenTrace())
}

// TraceBinary returns a copy of the raw binary trace stream.
func (f *FS) TraceBinary() []byte {
	f.DrainForAnalysis()
	return append([]byte(nil), f.out.Bytes()...)
}

// record builds a VFS-op record. Tracefs has no parallel awareness: Rank is
// whatever the kernel reports (-1 for non-MPI), timestamps are raw local.
func (f *FS) record(p *sim.Proc, name, path string, offset, bytes_ int64, cred vfs.Cred, ret string, dur sim.Duration) trace.Record {
	return trace.Record{
		Time:   p.Now() - sim.Time(dur),
		Dur:    dur,
		Node:   "",
		Rank:   -1,
		Class:  trace.ClassFSOp,
		Name:   name,
		Args:   []string{strconv.Quote(path), strconv.FormatInt(offset, 10), strconv.FormatInt(bytes_, 10)},
		Ret:    ret,
		Path:   path,
		Offset: offset,
		Bytes:  bytes_,
		UID:    cred.UID,
		GID:    cred.GID,
	}
}

// Open implements vfs.Filesystem.
func (f *FS) Open(p *sim.Proc, path string, flags vfs.OpenFlag, mode int, cred vfs.Cred) (vfs.File, error) {
	start := p.Now()
	file, err := f.lower.Open(p, path, flags, mode, cred)
	f.observe(p, f.record(p, "VFS_open", path, 0, 0, cred, errRet(err), p.Now()-start))
	if err != nil {
		return nil, err
	}
	return &tracedFile{fs: f, lower: file, path: path, cred: cred}, nil
}

// Stat implements vfs.Filesystem.
func (f *FS) Stat(p *sim.Proc, path string) (vfs.FileAttr, error) {
	start := p.Now()
	attr, err := f.lower.Stat(p, path)
	f.observe(p, f.record(p, "VFS_lookup", path, 0, 0, vfs.Cred{UID: attr.UID, GID: attr.GID}, errRet(err), p.Now()-start))
	return attr, err
}

// Unlink implements vfs.Filesystem.
func (f *FS) Unlink(p *sim.Proc, path string, cred vfs.Cred) error {
	start := p.Now()
	err := f.lower.Unlink(p, path, cred)
	f.observe(p, f.record(p, "VFS_unlink", path, 0, 0, cred, errRet(err), p.Now()-start))
	return err
}

// Statfs implements vfs.Filesystem (not traced; trivial metadata).
func (f *FS) Statfs(p *sim.Proc) (vfs.StatfsInfo, error) {
	info, err := f.lower.Statfs(p)
	info.FSType = f.FSName()
	return info, err
}

func errRet(err error) string {
	if err != nil {
		return "-1"
	}
	return "0"
}

// tracedFile wraps a lower file handle.
type tracedFile struct {
	fs    *FS
	lower vfs.File
	path  string
	cred  vfs.Cred
}

// WriteAt implements vfs.File.
func (t *tracedFile) WriteAt(p *sim.Proc, offset, length int64) (int64, error) {
	start := p.Now()
	n, err := t.lower.WriteAt(p, offset, length)
	t.fs.observe(p, t.fs.record(p, "VFS_write", t.path, offset, n, t.cred, errRet(err), p.Now()-start))
	return n, err
}

// ReadAt implements vfs.File.
func (t *tracedFile) ReadAt(p *sim.Proc, offset, length int64) (int64, error) {
	start := p.Now()
	n, err := t.lower.ReadAt(p, offset, length)
	t.fs.observe(p, t.fs.record(p, "VFS_read", t.path, offset, n, t.cred, errRet(err), p.Now()-start))
	return n, err
}

// Sync implements vfs.File.
func (t *tracedFile) Sync(p *sim.Proc) error {
	start := p.Now()
	err := t.lower.Sync(p)
	t.fs.observe(p, t.fs.record(p, "VFS_sync", t.path, 0, 0, t.cred, errRet(err), p.Now()-start))
	return err
}

// Close implements vfs.File.
func (t *tracedFile) Close(p *sim.Proc) error {
	start := p.Now()
	err := t.lower.Close(p)
	t.fs.observe(p, t.fs.record(p, "VFS_close", t.path, 0, 0, t.cred, errRet(err), p.Now()-start))
	return err
}

// Attr implements vfs.File.
func (t *tracedFile) Attr() vfs.FileAttr { return t.lower.Attr() }
