package tracefs

import (
	"fmt"
	"path"
	"strconv"
	"strings"
	"unicode"

	"iotaxo/internal/trace"
)

// The granularity filter language — the "flexible declarative syntax ...
// for user-level specification of file system operations to be traced"
// that earns Tracefs its "5 (V. Advanced)" granularity rating.
//
// Grammar:
//
//	expr  := or
//	or    := and ( "||" and )*
//	and   := unary ( "&&" unary )*
//	unary := "!" unary | "(" expr ")" | pred
//	pred  := field cmp value
//	       | field "in" "{" value ("," value)* "}"
//	       | field "~" glob
//	field := op | path | bytes | offset | uid | gid | node | rank
//	cmp   := "==" | "!=" | ">=" | "<=" | ">" | "<"
//
// Examples:
//
//	op in {read, write} && path ~ "/pfs/*"
//	bytes >= 4096 || op == unlink
//	!(op == statfs)
//
// "op" matches the short operation name ("open", "read", ...), i.e. the
// record name with its "VFS_" prefix stripped.

// Filter is a compiled predicate over trace records.
type Filter struct {
	src  string
	eval func(*trace.Record) bool
}

// CompileFilter parses and compiles a filter expression. An empty source
// compiles to match-everything.
func CompileFilter(src string) (*Filter, error) {
	trimmed := strings.TrimSpace(src)
	if trimmed == "" {
		return &Filter{src: src, eval: func(*trace.Record) bool { return true }}, nil
	}
	p := &parser{toks: lex(trimmed)}
	eval, err := p.parseOr()
	if err != nil {
		return nil, fmt.Errorf("tracefs: filter %q: %w", src, err)
	}
	if !p.eof() {
		return nil, fmt.Errorf("tracefs: filter %q: trailing tokens at %q", src, p.peek().text)
	}
	return &Filter{src: src, eval: eval}, nil
}

// MustCompileFilter panics on error; for tests and constants.
func MustCompileFilter(src string) *Filter {
	f, err := CompileFilter(src)
	if err != nil {
		panic(err)
	}
	return f
}

// Match evaluates the filter on a record.
func (f *Filter) Match(r *trace.Record) bool { return f.eval(r) }

// String returns the source expression.
func (f *Filter) String() string { return f.src }

// --- lexer ---

type token struct {
	text string
	kind tokenKind
}

type tokenKind int

const (
	tokIdent tokenKind = iota
	tokNumber
	tokString
	tokOp // punctuation and operators
	tokEOF
)

func lex(src string) []token {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case unicode.IsSpace(rune(c)):
			i++
		case c == '"':
			j := i + 1
			for j < len(src) && src[j] != '"' {
				j++
			}
			if j < len(src) {
				j++
			}
			toks = append(toks, token{text: src[i:j], kind: tokString})
			i = j
		case strings.ContainsRune("(){},", rune(c)):
			toks = append(toks, token{text: string(c), kind: tokOp})
			i++
		case strings.ContainsRune("&|=!<>~", rune(c)):
			j := i + 1
			for j < len(src) && strings.ContainsRune("&|=!<>~", rune(src[j])) {
				j++
			}
			toks = append(toks, token{text: src[i:j], kind: tokOp})
			i = j
		case c >= '0' && c <= '9' || c == '-':
			j := i + 1
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == 'K' || src[j] == 'M' || src[j] == 'G') {
				j++
			}
			toks = append(toks, token{text: src[i:j], kind: tokNumber})
			i = j
		default:
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_' || src[j] == '.' || src[j] == '/' || src[j] == '*') {
				j++
			}
			if j == i { // unknown byte: emit as op token to fail in parser
				toks = append(toks, token{text: string(c), kind: tokOp})
				i++
				continue
			}
			toks = append(toks, token{text: src[i:j], kind: tokIdent})
			i = j
		}
	}
	toks = append(toks, token{kind: tokEOF})
	return toks
}

// --- parser ---

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) eof() bool { return p.peek().kind == tokEOF }

func (p *parser) expect(text string) error {
	if p.peek().text != text {
		return fmt.Errorf("expected %q, got %q", text, p.peek().text)
	}
	p.next()
	return nil
}

type predFn = func(*trace.Record) bool

func (p *parser) parseOr() (predFn, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().text == "||" {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l, r := left, right
		left = func(rec *trace.Record) bool { return l(rec) || r(rec) }
	}
	return left, nil
}

func (p *parser) parseAnd() (predFn, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.peek().text == "&&" {
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l, r := left, right
		left = func(rec *trace.Record) bool { return l(rec) && r(rec) }
	}
	return left, nil
}

func (p *parser) parseUnary() (predFn, error) {
	switch {
	case p.peek().text == "!":
		p.next()
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return func(rec *trace.Record) bool { return !inner(rec) }, nil
	case p.peek().text == "(":
		p.next()
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return inner, nil
	default:
		return p.parsePred()
	}
}

// knownFields maps field names to record accessors.
var stringFields = map[string]func(*trace.Record) string{
	"op":   func(r *trace.Record) string { return strings.TrimPrefix(r.Name, "VFS_") },
	"path": func(r *trace.Record) string { return r.Path },
	"node": func(r *trace.Record) string { return r.Node },
}

var intFields = map[string]func(*trace.Record) int64{
	"bytes":  func(r *trace.Record) int64 { return r.Bytes },
	"offset": func(r *trace.Record) int64 { return r.Offset },
	"uid":    func(r *trace.Record) int64 { return int64(r.UID) },
	"gid":    func(r *trace.Record) int64 { return int64(r.GID) },
	"rank":   func(r *trace.Record) int64 { return int64(r.Rank) },
}

func (p *parser) parsePred() (predFn, error) {
	fieldTok := p.next()
	if fieldTok.kind != tokIdent {
		return nil, fmt.Errorf("expected field name, got %q", fieldTok.text)
	}
	field := fieldTok.text
	opTok := p.next()
	op := opTok.text

	strGet, isStr := stringFields[field]
	intGet, isInt := intFields[field]
	if !isStr && !isInt {
		return nil, fmt.Errorf("unknown field %q", field)
	}

	switch op {
	case "in":
		if !isStr {
			return nil, fmt.Errorf("field %q does not support 'in'", field)
		}
		if err := p.expect("{"); err != nil {
			return nil, err
		}
		set := make(map[string]bool)
		for {
			v := p.next()
			if v.kind != tokIdent && v.kind != tokString {
				return nil, fmt.Errorf("bad set member %q", v.text)
			}
			set[unquote(v.text)] = true
			if p.peek().text == "," {
				p.next()
				continue
			}
			break
		}
		if err := p.expect("}"); err != nil {
			return nil, err
		}
		return func(rec *trace.Record) bool { return set[strGet(rec)] }, nil

	case "~":
		if !isStr {
			return nil, fmt.Errorf("field %q does not support '~'", field)
		}
		v := p.next()
		if v.kind != tokString && v.kind != tokIdent {
			return nil, fmt.Errorf("bad glob %q", v.text)
		}
		pattern := unquote(v.text)
		if _, err := path.Match(pattern, "probe"); err != nil {
			return nil, fmt.Errorf("bad glob %q: %w", pattern, err)
		}
		return func(rec *trace.Record) bool {
			ok, _ := path.Match(pattern, strGet(rec))
			if ok {
				return true
			}
			// Allow trailing "/*" globs to match deeper hierarchies.
			if strings.HasSuffix(pattern, "/*") {
				return strings.HasPrefix(strGet(rec), strings.TrimSuffix(pattern, "*"))
			}
			return false
		}, nil

	case "==", "!=":
		v := p.next()
		if isStr && (v.kind == tokIdent || v.kind == tokString) {
			want := unquote(v.text)
			if op == "==" {
				return func(rec *trace.Record) bool { return strGet(rec) == want }, nil
			}
			return func(rec *trace.Record) bool { return strGet(rec) != want }, nil
		}
		if isInt && v.kind == tokNumber {
			n, err := parseSize(v.text)
			if err != nil {
				return nil, err
			}
			if op == "==" {
				return func(rec *trace.Record) bool { return intGet(rec) == n }, nil
			}
			return func(rec *trace.Record) bool { return intGet(rec) != n }, nil
		}
		return nil, fmt.Errorf("type mismatch: %s %s %q", field, op, v.text)

	case ">=", "<=", ">", "<":
		if !isInt {
			return nil, fmt.Errorf("field %q does not support %q", field, op)
		}
		v := p.next()
		if v.kind != tokNumber {
			return nil, fmt.Errorf("expected number, got %q", v.text)
		}
		n, err := parseSize(v.text)
		if err != nil {
			return nil, err
		}
		switch op {
		case ">=":
			return func(rec *trace.Record) bool { return intGet(rec) >= n }, nil
		case "<=":
			return func(rec *trace.Record) bool { return intGet(rec) <= n }, nil
		case ">":
			return func(rec *trace.Record) bool { return intGet(rec) > n }, nil
		default:
			return func(rec *trace.Record) bool { return intGet(rec) < n }, nil
		}

	default:
		return nil, fmt.Errorf("unknown operator %q", op)
	}
}

func unquote(s string) string {
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		return s[1 : len(s)-1]
	}
	return s
}

// parseSize parses an integer with an optional K/M/G suffix.
func parseSize(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"):
		mult, s = 1<<10, strings.TrimSuffix(s, "K")
	case strings.HasSuffix(s, "M"):
		mult, s = 1<<20, strings.TrimSuffix(s, "M")
	case strings.HasSuffix(s, "G"):
		mult, s = 1<<30, strings.TrimSuffix(s, "G")
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	return n * mult, nil
}
