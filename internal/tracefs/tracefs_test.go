package tracefs

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"iotaxo/internal/anonymize"
	"iotaxo/internal/clocks"
	"iotaxo/internal/disk"
	"iotaxo/internal/netsim"
	"iotaxo/internal/pfs"
	"iotaxo/internal/sim"
	"iotaxo/internal/trace"
	"iotaxo/internal/vfs"
)

// --- filter language tests ---

func rec(name, path string, bytes_ int64, uid int) trace.Record {
	return trace.Record{Name: name, Path: path, Bytes: bytes_, UID: uid, Class: trace.ClassFSOp}
}

func TestFilterBasics(t *testing.T) {
	cases := []struct {
		src   string
		rec   trace.Record
		match bool
	}{
		{"", rec("VFS_write", "/a", 10, 0), true},
		{"op == write", rec("VFS_write", "/a", 10, 0), true},
		{"op == write", rec("VFS_read", "/a", 10, 0), false},
		{"op != write", rec("VFS_read", "/a", 10, 0), true},
		{"op in {read, write}", rec("VFS_read", "/a", 0, 0), true},
		{"op in {read, write}", rec("VFS_unlink", "/a", 0, 0), false},
		{`path ~ "/pfs/*"`, rec("VFS_write", "/pfs/data/file", 0, 0), true},
		{`path ~ "/pfs/*"`, rec("VFS_write", "/home/file", 0, 0), false},
		{"bytes >= 4096", rec("VFS_write", "/a", 4096, 0), true},
		{"bytes >= 4096", rec("VFS_write", "/a", 4095, 0), false},
		{"bytes < 1K", rec("VFS_write", "/a", 1023, 0), true},
		{"bytes > 1M", rec("VFS_write", "/a", 2<<20, 0), true},
		{"uid == 500", rec("VFS_write", "/a", 0, 500), true},
		{"op == write && bytes >= 100", rec("VFS_write", "/a", 200, 0), true},
		{"op == write && bytes >= 100", rec("VFS_write", "/a", 50, 0), false},
		{"op == read || op == write", rec("VFS_write", "/a", 0, 0), true},
		{"!(op == write)", rec("VFS_read", "/a", 0, 0), true},
		{"!(op == write)", rec("VFS_write", "/a", 0, 0), false},
		{"(op == read || op == write) && bytes > 10", rec("VFS_read", "/a", 11, 0), true},
	}
	for _, c := range cases {
		f, err := CompileFilter(c.src)
		if err != nil {
			t.Fatalf("compile %q: %v", c.src, err)
		}
		if got := f.Match(&c.rec); got != c.match {
			t.Errorf("%q on %s/%d = %v, want %v", c.src, c.rec.Name, c.rec.Bytes, got, c.match)
		}
	}
}

func TestFilterErrors(t *testing.T) {
	for _, src := range []string{
		"bogusfield == 1",
		"op >> write",
		"bytes == ",
		"op in {read",
		"(op == read",
		"op == read extra",
		"bytes ~ \"x\"",
		"op >= 5",
		"bytes in {1,2}",
	} {
		if _, err := CompileFilter(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestFilterSizeSuffixes(t *testing.T) {
	f := MustCompileFilter("bytes == 64K")
	r := rec("VFS_write", "/a", 64<<10, 0)
	if !f.Match(&r) {
		t.Fatal("64K suffix broken")
	}
}

// Property: ! is an involution for arbitrary op names.
func TestFilterNegationProperty(t *testing.T) {
	f1 := MustCompileFilter("op == write")
	f2 := MustCompileFilter("!(op == write)")
	g := func(nameIdx uint8) bool {
		names := []string{"VFS_write", "VFS_read", "VFS_open", "VFS_close"}
		r := rec(names[int(nameIdx)%len(names)], "/x", 0, 0)
		return f1.Match(&r) != f2.Match(&r)
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// --- stacking tests ---

func newLowerFS(env *sim.Env) *vfs.MemFS {
	return vfs.NewMemFS(env, "ext3", disk.DefaultDisk())
}

func mountOver(t *testing.T, env *sim.Env, cfg Config) (*FS, *vfs.MemFS) {
	t.Helper()
	lower := newLowerFS(env)
	f, err := Mount(lower, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f, lower
}

func runApp(t *testing.T, env *sim.Env, k *vfs.Kernel, nWrites int) sim.Duration {
	t.Helper()
	pc := k.Spawn(vfs.Cred{UID: 500, GID: 100})
	var elapsed sim.Duration
	env.Go("app", func(p *sim.Proc) {
		start := p.Now()
		fd, err := pc.Open(p, "/data/file", vfs.OCreate|vfs.ORdwr, 0o644)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		for i := 0; i < nWrites; i++ {
			pc.PWrite(p, fd, int64(i)*4096, 4096)
		}
		pc.PRead(p, fd, 0, 4096)
		pc.Close(p, fd)
		elapsed = p.Now() - start
	})
	env.Run()
	return elapsed
}

func kernelWith(env *sim.Env, fs vfs.Filesystem) *vfs.Kernel {
	k := vfs.NewKernel(env, "n1", clocks.New(0, 0), vfs.DefaultKernelConfig())
	k.Mount("/", fs)
	return k
}

func TestMountRefusesNonStackable(t *testing.T) {
	env := sim.NewEnv(1)
	net_ := netsim.New(env, netsim.GigabitEthernet())
	net_.AddNode("c")
	sys := pfs.New(net_, pfs.DefaultNFS())
	nfsClient := pfs.NewClient(sys, "c")
	if _, err := Mount(nfsClient, DefaultConfig()); err != nil {
		t.Fatalf("NFS should stack: %v", err)
	}

	env2 := sim.NewEnv(1)
	net2 := netsim.New(env2, netsim.GigabitEthernet())
	net2.AddNode("c")
	par := pfs.New(net2, pfs.Config{Name: "panfs", Servers: 2, Stackable: false})
	parClient := pfs.NewClient(par, "c")
	_, err := Mount(parClient, DefaultConfig())
	if !errors.Is(err, vfs.ErrIncompatible) {
		t.Fatalf("parallel FS mounted without force: %v", err)
	}
	// ForceStack models the porting work.
	cfg := DefaultConfig()
	cfg.ForceStack = true
	if _, err := Mount(parClient, cfg); err != nil {
		t.Fatalf("ForceStack failed: %v", err)
	}
}

func TestTracesAllVFSOps(t *testing.T) {
	env := sim.NewEnv(1)
	f, _ := mountOver(t, env, DefaultConfig())
	k := kernelWith(env, f)
	runApp(t, env, k, 4)
	if f.Counters["VFS_open"] != 1 || f.Counters["VFS_write"] != 4 ||
		f.Counters["VFS_read"] != 1 || f.Counters["VFS_close"] != 1 {
		t.Fatalf("counters: %v", f.Counters)
	}
	recs, err := f.TraceRecords()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != int(f.Events) {
		t.Fatalf("decoded %d records, events %d", len(recs), f.Events)
	}
	for _, r := range recs {
		if r.Class != trace.ClassFSOp {
			t.Fatalf("record class %v", r.Class)
		}
	}
}

func TestSeesMMapWritebackUnlikeSyscallTracers(t *testing.T) {
	env := sim.NewEnv(1)
	f, _ := mountOver(t, env, DefaultConfig())
	k := kernelWith(env, f)
	pc := k.Spawn(vfs.Cred{})
	env.Go("app", func(p *sim.Proc) {
		fd, _ := pc.Open(p, "/m", vfs.OCreate|vfs.ORdwr, 0o644)
		region, _ := pc.MMap(p, fd, 0, 1<<20)
		for i := 0; i < 8; i++ {
			region.Store(p, int64(i)*4096, 4096)
		}
		pc.Close(p, fd)
	})
	env.Run()
	if f.Counters["VFS_write"] != 8 {
		t.Fatalf("tracefs missed mmap writeback: %v", f.Counters)
	}
}

func TestGranularityFilterSuppresses(t *testing.T) {
	env := sim.NewEnv(1)
	cfg := DefaultConfig()
	cfg.Filter = MustCompileFilter("op == write && bytes >= 4096")
	f, _ := mountOver(t, env, cfg)
	k := kernelWith(env, f)
	runApp(t, env, k, 4)
	recs, _ := f.TraceRecords()
	for _, r := range recs {
		if r.Name != "VFS_write" {
			t.Fatalf("filter leaked %s", r.Name)
		}
	}
	if f.Suppressed == 0 {
		t.Fatal("nothing suppressed")
	}
	// Counters still aggregate everything.
	if f.Counters["VFS_open"] != 1 {
		t.Fatalf("counters stopped: %v", f.Counters)
	}
}

func TestOverheadOrdering(t *testing.T) {
	// untraced < traced(plain) < traced(+checksum) < traced(+compress+encrypt)
	elapsed := func(cfgp *Config) sim.Duration {
		env := sim.NewEnv(1)
		var target vfs.Filesystem = newLowerFS(env)
		if cfgp != nil {
			f, err := Mount(target, *cfgp)
			if err != nil {
				t.Fatal(err)
			}
			target = f
		}
		k := kernelWith(env, target)
		return runApp(t, env, k, 64)
	}
	base := elapsed(nil)
	plain := DefaultConfig()
	tPlain := elapsed(&plain)
	ck := DefaultConfig()
	ck.Checksum = true
	tCk := elapsed(&ck)
	full := DefaultConfig()
	full.Checksum = true
	full.Compress = true
	full.Encrypt = true
	tFull := elapsed(&full)

	if !(base < tPlain && tPlain < tCk && tCk < tFull) {
		t.Fatalf("overhead ordering violated: base=%v plain=%v checksum=%v full=%v",
			base, tPlain, tCk, tFull)
	}
}

func TestOverheadModest(t *testing.T) {
	// Full tracing on an I/O intensive workload stays within the paper's
	// reported bound (<12.4%) — with margin for our synthetic setup.
	env := sim.NewEnv(1)
	base := runApp(t, env, kernelWith(env, newLowerFS(env)), 256)

	env2 := sim.NewEnv(1)
	f, _ := mountOver(t, env2, DefaultConfig())
	traced := runApp(t, env2, kernelWith(env2, f), 256)

	frac := float64(traced-base) / float64(base)
	if frac <= 0 || frac > 0.124 {
		t.Fatalf("tracefs overhead %.1f%% outside (0, 12.4%%]", frac*100)
	}
}

func TestBufferingReducesOverhead(t *testing.T) {
	run := func(buffer int) sim.Duration {
		env := sim.NewEnv(1)
		cfg := DefaultConfig()
		cfg.Buffer = buffer
		f, _ := mountOver(t, env, cfg)
		return runApp(t, env, kernelWith(env, f), 128)
	}
	unbuffered := run(1)
	buffered := run(128)
	if buffered > unbuffered {
		t.Fatalf("buffering made things slower: %v vs %v", buffered, unbuffered)
	}
}

func TestEncryptedTraceHidesPathsButDecrypts(t *testing.T) {
	env := sim.NewEnv(1)
	cfg := DefaultConfig()
	cfg.Encrypt = true
	cfg.Key = []byte("0123456789abcdef")
	spec, _ := anonymize.ParseSpec("path,uid,gid")
	cfg.EncryptSpec = spec
	f, _ := mountOver(t, env, cfg)
	k := kernelWith(env, f)
	runApp(t, env, k, 4)

	recs, err := f.TraceRecords()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no records")
	}
	for _, r := range recs {
		if strings.Contains(r.Path, "/data/") {
			t.Fatalf("path leaked: %q", r.Path)
		}
	}
	// Key holder can reverse (the paper's anonymization caveat).
	e, _ := anonymize.NewEncryptor(spec, cfg.Key)
	pt, err := e.DecryptValue(recs[0].Path)
	if err != nil || pt != "/data/file" {
		t.Fatalf("decrypt: %q %v", pt, err)
	}
	// Stream carries the anonymized flag.
	rd := trace.NewBinaryReader(strings.NewReader(string(f.TraceBinary())))
	rd.Next()
	if rd.Flags()&trace.FlagAnonymized == 0 {
		t.Fatal("anonymized flag missing")
	}
}

func TestCompressionShrinksOutput(t *testing.T) {
	run := func(compress bool) int64 {
		env := sim.NewEnv(1)
		cfg := DefaultConfig()
		cfg.Compress = compress
		f, _ := mountOver(t, env, cfg)
		k := kernelWith(env, f)
		runApp(t, env, k, 256)
		return f.OutputBytes()
	}
	plain := run(false)
	compressed := run(true)
	if compressed >= plain {
		t.Fatalf("compression did not shrink: %d vs %d", compressed, plain)
	}
}

// The columnar emitter must produce the same records as the v1 emitter —
// the format is an output option, not a semantic one — in a smaller stream
// that OpenTrace reads back transparently.
func TestColumnarEmitterMatchesBinary(t *testing.T) {
	run := func(columnar bool) (*FS, []trace.Record) {
		env := sim.NewEnv(1)
		cfg := DefaultConfig()
		cfg.Columnar = columnar
		f, _ := mountOver(t, env, cfg)
		k := kernelWith(env, f)
		runApp(t, env, k, 128)
		recs, err := f.TraceRecords()
		if err != nil {
			t.Fatal(err)
		}
		return f, recs
	}
	fBin, binRecs := run(false)
	fCol, colRecs := run(true)
	if !reflect.DeepEqual(binRecs, colRecs) {
		t.Fatalf("record streams differ: %d vs %d records", len(binRecs), len(colRecs))
	}
	if fCol.OutputBytes() >= fBin.OutputBytes() {
		t.Fatalf("columnar not smaller: %d vs %d bytes", fCol.OutputBytes(), fBin.OutputBytes())
	}
	if _, format, _ := trace.ReadAuto(bytes.NewReader(fCol.TraceBinary())); format != trace.FormatColumnar {
		t.Fatalf("columnar output detected as %v", format)
	}
}

func TestStatfsReportsLayeredName(t *testing.T) {
	env := sim.NewEnv(1)
	f, _ := mountOver(t, env, DefaultConfig())
	k := kernelWith(env, f)
	pc := k.Spawn(vfs.Cred{})
	var info vfs.StatfsInfo
	env.Go("app", func(p *sim.Proc) {
		info, _ = pc.Statfs(p, "/x")
	})
	env.Run()
	if info.FSType != "tracefs(ext3)" {
		t.Fatalf("fstype = %q", info.FSType)
	}
}

func TestLowerEndStateUnchanged(t *testing.T) {
	// Tracing must not alter what reaches the lower file system.
	env1 := sim.NewEnv(1)
	lower1 := newLowerFS(env1)
	runApp(t, env1, kernelWith(env1, lower1), 16)
	s1, d1, w1, _ := lower1.Snapshot("/data/file")

	env2 := sim.NewEnv(1)
	lower2 := newLowerFS(env2)
	f, err := Mount(lower2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	runApp(t, env2, kernelWith(env2, f), 16)
	s2, d2, w2, _ := lower2.Snapshot("/data/file")

	if s1 != s2 || d1 != d2 || w1 != w2 {
		t.Fatalf("end state differs: (%d,%x,%d) vs (%d,%x,%d)", s1, d1, w1, s2, d2, w2)
	}
}

// Property: the filter compiler never panics on arbitrary source strings.
func TestFilterCompilerFuzzProperty(t *testing.T) {
	f := func(src string) bool {
		defer func() {
			if recover() != nil {
				t.Errorf("panic compiling %q", src)
			}
		}()
		CompileFilter(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: compiled filters never panic evaluating arbitrary records.
func TestFilterMatchFuzzProperty(t *testing.T) {
	filters := []*Filter{
		MustCompileFilter(`op in {read, write} && path ~ "/pfs/*"`),
		MustCompileFilter("bytes >= 1K || uid == 0"),
		MustCompileFilter("!(op == close) && rank >= 0"),
	}
	f := func(name, path string, bytes_ int64, uid, rank int) bool {
		r := trace.Record{Name: name, Path: path, Bytes: bytes_, UID: uid, Rank: rank}
		for _, flt := range filters {
			flt.Match(&r)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
