package tracefs

import (
	"fmt"

	"iotaxo/internal/cluster"
	"iotaxo/internal/core"
	"iotaxo/internal/framework"
	"iotaxo/internal/mpi"
	"iotaxo/internal/sim"
	"iotaxo/internal/trace"
	"iotaxo/internal/workload"
)

// AsFramework adapts a Tracefs configuration to the common framework
// registry interface. Attaching stacks a Tracefs layer over each compute
// node's parallel-file-system mount with ForceStack set — the porting work
// the paper says Tracefs needs before it can observe a parallel file system
// (its out-of-the-box answer to that axis is "No").
func AsFramework(cfg Config) framework.Framework { return &fwAdapter{cfg: cfg} }

func init() { framework.Register(AsFramework(DefaultConfig())) }

type fwAdapter struct{ cfg Config }

func (a *fwAdapter) Name() string                         { return "Tracefs" }
func (a *fwAdapter) Classification() *core.Classification { return core.PaperTracefs() }

func (a *fwAdapter) Attach(c *cluster.Cluster) framework.Session {
	s := &fwSession{c: c, byNode: make(map[string]*FS)}
	for _, k := range c.Kernels {
		lower, ok := k.MountedAt(cluster.PFSMount)
		if !ok {
			continue
		}
		cfg := a.cfg
		cfg.ForceStack = true
		f, err := Mount(lower, cfg)
		if err != nil {
			// Only reachable through a misconfigured encryption key; the
			// Attach contract has no error channel because attachment to a
			// fresh cluster cannot fail for a well-formed Config.
			panic(fmt.Sprintf("tracefs: attach: %v", err))
		}
		k.Mount(cluster.PFSMount, f)
		s.mounts = append(s.mounts, f)
		s.byNode[k.Node()] = f
	}
	return s
}

type fwSession struct {
	c      *cluster.Cluster
	mounts []*FS // one per compute node
	byNode map[string]*FS
}

// Run executes the workload with every node's PFS traffic passing through
// its Tracefs layer. When the workload finishes, each rank syncs its node's
// trace buffer — the unmount-time flush of the real kernel module, which is
// where buffered output (and the per-byte feature costs of checksumming,
// compression, and encryption) get charged.
func (s *fwSession) Run(spec workload.Spec) (framework.Report, error) {
	perRank := make([]workload.RankStats, s.c.Ranks())
	elapsed := s.c.World.RunToCompletion(func(p *sim.Proc, r *mpi.Rank) {
		spec.Program(p, r, &perRank[r.RankID()])
		if f, ok := s.byNode[r.Node()]; ok {
			f.SyncTrace(p)
		}
	})
	res := spec.ResultFromStats(elapsed, perRank)
	rep := framework.Report{
		Result:         res,
		TracingElapsed: res.Elapsed,
		Runs:           1,
	}
	for _, f := range s.mounts {
		rep.TraceEvents += f.Events
		rep.TraceBytes += f.OutputBytes()
	}
	return rep, nil
}

// Sources streams each node's binary trace back as records.
func (s *fwSession) Sources() []trace.Source {
	out := make([]trace.Source, 0, len(s.mounts))
	for _, f := range s.mounts {
		out = append(out, f.OpenTrace())
	}
	return out
}

// Mounts exposes the per-node Tracefs layers for feature-level inspection
// (counters, suppressed-event stats).
func (s *fwSession) Mounts() []*FS { return s.mounts }
