// Package fnvhash is an inline, allocation-free FNV-1a used on the
// simulators' per-I/O hot paths (extent digests, inode placement), where
// hash/fnv + fmt would allocate a hasher and format buffers on every call.
//
// Both internal/vfs and internal/pfs compute their extent digests through
// this one implementation, which keeps the digests bit-identical across
// file systems — end-state comparisons between a local FS and the parallel
// FS rely on that. Only hash *equality* is meaningful to callers.
package fnvhash

import "math"

// Offset64 is the FNV-1a 64-bit offset basis.
const Offset64 = 14695981039346656037

const prime64 = 1099511628211

// String folds s into an FNV-1a hash.
func String(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// Int64 folds v's little-endian bytes into an FNV-1a hash.
func Int64(h uint64, v int64) uint64 {
	return Uint64(h, uint64(v))
}

// Uint64 folds v's little-endian bytes into an FNV-1a hash.
func Uint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= prime64
		v >>= 8
	}
	return h
}

// Float64 folds v's IEEE-754 bit pattern into an FNV-1a hash. Only hash
// equality is meaningful; distinct bit patterns of equal values (+0/-0)
// hash differently.
func Float64(h uint64, v float64) uint64 {
	return Uint64(h, math.Float64bits(v))
}

// Bool folds one byte (0 or 1) into an FNV-1a hash.
func Bool(h uint64, v bool) uint64 {
	b := uint64(0)
	if v {
		b = 1
	}
	h ^= b
	h *= prime64
	return h
}
