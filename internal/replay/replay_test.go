package replay

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"iotaxo/internal/cluster"
	"iotaxo/internal/sim"
	"iotaxo/internal/trace"
)

func testCluster() *cluster.Cluster {
	cfg := cluster.Small()
	cfg.MaxSkew = 0
	cfg.MaxDrift = 0
	return cluster.New(cfg)
}

func simpleTrace(ranks int) *Trace {
	tr := &Trace{Ranks: ranks, Ops: make([][]Op, ranks), OriginalElapsed: sim.Second}
	for r := 0; r < ranks; r++ {
		tr.Ops[r] = []Op{
			{Kind: OpOpen, Path: "/pfs/replayed", Compute: 10 * sim.Millisecond},
			{Kind: OpWrite, Path: "/pfs/replayed", Offset: int64(r) * 65536, Bytes: 65536},
			{Kind: OpClose, Path: "/pfs/replayed"},
		}
	}
	return tr
}

func TestExecuteWritesExpectedData(t *testing.T) {
	c := testCluster()
	tr := simpleTrace(4)
	res, err := Execute(c, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 || len(res.PerRank) != 4 {
		t.Fatalf("result: %+v", res)
	}
	size, _, writes, ok := c.PFS.Snapshot("/pfs/replayed")
	if !ok || size != 4*65536 || writes != 4 {
		t.Fatalf("snapshot size=%d writes=%d ok=%v", size, writes, ok)
	}
}

func TestComputeGapsDelayElapsed(t *testing.T) {
	withGap := simpleTrace(2)
	withGap.Ops[0][0].Compute = 500 * sim.Millisecond
	noGap := simpleTrace(2)
	noGap.Ops[0][0].Compute = 0

	c1 := testCluster()
	r1, err := Execute(c1, withGap)
	if err != nil {
		t.Fatal(err)
	}
	c2 := testCluster()
	r2, err := Execute(c2, noGap)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Elapsed-r2.Elapsed < 400*sim.Millisecond {
		t.Fatalf("compute gap not honored: %v vs %v", r1.Elapsed, r2.Elapsed)
	}
}

func TestDependencyOrdersExecution(t *testing.T) {
	// Rank 1's write must wait for rank 0's write via a dependency edge.
	tr := simpleTrace(2)
	tr.Ops[0][0].Compute = 300 * sim.Millisecond // rank 0 starts late
	tr.Deps = []Dep{{FromRank: 0, FromOp: 1, ToRank: 1, ToOp: 1}}
	c := testCluster()
	res, err := Execute(c, tr)
	if err != nil {
		t.Fatal(err)
	}
	// Rank 1 cannot finish before rank 0's delayed write.
	if res.PerRank[1] < 300*sim.Millisecond {
		t.Fatalf("dependency ignored: rank1 elapsed %v", res.PerRank[1])
	}
}

func TestValidateRejectsBadTraces(t *testing.T) {
	cases := []func(tr *Trace){
		func(tr *Trace) { tr.Ranks = 0 },
		func(tr *Trace) { tr.Ops = tr.Ops[:1] },
		func(tr *Trace) { tr.Deps = []Dep{{FromRank: 9, ToRank: 0}} },
		func(tr *Trace) { tr.Deps = []Dep{{FromRank: 0, FromOp: 99, ToRank: 1}} },
		func(tr *Trace) { tr.Deps = []Dep{{FromRank: 0, FromOp: 0, ToRank: 1, ToOp: 99}} },
		func(tr *Trace) { tr.Deps = []Dep{{FromRank: 1, FromOp: 0, ToRank: 1, ToOp: 1}} },
	}
	for i, mutate := range cases {
		tr := simpleTrace(2)
		mutate(tr)
		if err := tr.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestTextRoundTrip(t *testing.T) {
	tr := simpleTrace(3)
	tr.Deps = []Dep{{FromRank: 0, FromOp: 1, ToRank: 2, ToOp: 1}}
	var buf bytes.Buffer
	if err := tr.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Ranks != 3 || got.OpCount() != tr.OpCount() || len(got.Deps) != 1 {
		t.Fatalf("round trip: %+v", got)
	}
	if got.OriginalElapsed != tr.OriginalElapsed {
		t.Fatalf("elapsed lost: %v", got.OriginalElapsed)
	}
	if got.Ops[1][1].Offset != 65536 || got.Ops[1][1].Bytes != 65536 {
		t.Fatalf("op fields lost: %+v", got.Ops[1][1])
	}
}

func TestParseTextErrors(t *testing.T) {
	for _, src := range []string{
		"garbage\n",
		"# partrace replayable v1 ranks=2 original_elapsed=5\nR9 compute=0 open \"/f\" off=0 len=0\n",
		"# partrace replayable v1 ranks=1 original_elapsed=5\nR0 compute=0 explode \"/f\" off=0 len=0\n",
		"# partrace replayable v1 ranks=1 original_elapsed=5\nDEP 0:0 -> 5:0\n",
	} {
		if _, err := ParseText(strings.NewReader(src)); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

// Property: text round-trip preserves op streams for random small traces.
func TestTextRoundTripProperty(t *testing.T) {
	f := func(seed uint32) bool {
		rng := int(seed)
		ranks := rng%3 + 1
		tr := &Trace{Ranks: ranks, Ops: make([][]Op, ranks), OriginalElapsed: sim.Duration(seed)}
		kinds := []OpKind{OpOpen, OpWrite, OpRead, OpClose}
		for r := 0; r < ranks; r++ {
			nOps := (rng>>2)%4 + 1
			for i := 0; i < nOps; i++ {
				tr.Ops[r] = append(tr.Ops[r], Op{
					Kind:    kinds[(rng+i)%4],
					Compute: sim.Duration((rng * (i + 1)) % 10000),
					Path:    "/pfs/x",
					Offset:  int64(i * 100),
					Bytes:   int64(rng % 5000),
				})
			}
		}
		var buf bytes.Buffer
		if err := tr.WriteText(&buf); err != nil {
			return false
		}
		got, err := ParseText(&buf)
		if err != nil {
			return false
		}
		if got.OpCount() != tr.OpCount() {
			return false
		}
		for r := range tr.Ops {
			for i := range tr.Ops[r] {
				if got.Ops[r][i] != tr.Ops[r][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFidelityMetric(t *testing.T) {
	if Fidelity(100, 106) != 0.06 {
		t.Fatalf("fidelity = %v", Fidelity(100, 106))
	}
	if Fidelity(100, 94) != 0.06 {
		t.Fatalf("fidelity abs = %v", Fidelity(100, 94))
	}
	if Fidelity(0, 50) != 0 {
		t.Fatal("zero original should yield 0")
	}
}

func TestOpKindStrings(t *testing.T) {
	for _, k := range []OpKind{OpOpen, OpWrite, OpRead, OpClose} {
		parsed, err := parseKind(k.String())
		if err != nil || parsed != k {
			t.Fatalf("kind %v round trip failed", k)
		}
	}
	if _, err := parseKind("bogus"); err == nil {
		t.Fatal("expected error")
	}
}

func TestWriteWithoutOpenAutoOpens(t *testing.T) {
	tr := &Trace{
		Ranks:           1,
		Ops:             [][]Op{{{Kind: OpWrite, Path: "/pfs/auto", Bytes: 4096}}},
		OriginalElapsed: sim.Second,
	}
	c := testCluster()
	if _, err := Execute(c, tr); err != nil {
		t.Fatal(err)
	}
	size, _, _, ok := c.PFS.Snapshot("/pfs/auto")
	if !ok || size != 4096 {
		t.Fatalf("auto-open write failed: %d %v", size, ok)
	}
}

func TestFromRecordsBuildsReplayableTrace(t *testing.T) {
	recs := []trace.Record{
		{Time: 0, Dur: sim.Millisecond, Rank: 0, Class: trace.ClassMPI,
			Name: "MPI_File_open", Path: "/pfs/f"},
		{Time: 5 * sim.Millisecond, Dur: 2 * sim.Millisecond, Rank: 0, Class: trace.ClassMPI,
			Name: "MPI_Barrier"}, // synchronization: excluded from think time
		{Time: 10 * sim.Millisecond, Dur: 3 * sim.Millisecond, Rank: 0, Class: trace.ClassMPI,
			Name: "MPI_File_write_at", Path: "/pfs/f", Offset: 4096, Bytes: 8192},
		{Time: 20 * sim.Millisecond, Dur: sim.Millisecond, Rank: 0, Class: trace.ClassMPI,
			Name: "MPI_File_close", Path: "/pfs/f"},
		{Time: 0, Dur: sim.Millisecond, Rank: 1, Class: trace.ClassMPI,
			Name: "MPI_File_open", Path: "/pfs/f"},
		{Time: 2 * sim.Millisecond, Dur: sim.Millisecond, Rank: 1, Class: trace.ClassMPI,
			Name: "MPI_File_read_at", Path: "/pfs/f", Offset: 0, Bytes: 4096},
	}
	tr, err := FromRecords(trace.SliceSource(recs), 30*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Ranks != 2 || len(tr.Ops[0]) != 3 || len(tr.Ops[1]) != 2 {
		t.Fatalf("shape: ranks=%d ops=%v", tr.Ranks, tr.Ops)
	}
	// Think time before the write: 10ms start - 1ms open end - 2ms barrier.
	if tr.Ops[0][1].Kind != OpWrite || tr.Ops[0][1].Compute != 7*sim.Millisecond {
		t.Fatalf("write op: %+v", tr.Ops[0][1])
	}
	if tr.OriginalElapsed != 30*sim.Millisecond {
		t.Fatalf("elapsed: %v", tr.OriginalElapsed)
	}
	// The built trace must execute.
	if _, err := Execute(testCluster(), tr); err != nil {
		t.Fatal(err)
	}
}

func TestFromRecordsRejectsUnranked(t *testing.T) {
	recs := []trace.Record{{Rank: -1, Class: trace.ClassMPI, Name: "MPI_File_open"}}
	if _, err := FromRecords(trace.SliceSource(recs), 0); err == nil {
		t.Fatal("expected error for rankless record")
	}
}

func TestOpFromRecordKinds(t *testing.T) {
	cases := map[string]OpKind{
		"MPI_File_open": OpOpen, "MPI_File_write_at": OpWrite,
		"MPI_File_write": OpWrite, "MPI_File_read_at": OpRead,
		"MPI_File_read": OpRead, "MPI_File_close": OpClose,
	}
	for name, want := range cases {
		op, ok := OpFromRecord(&trace.Record{Name: name})
		if !ok || op.Kind != want {
			t.Fatalf("%s -> %v ok=%v, want %v", name, op.Kind, ok, want)
		}
	}
	for _, name := range []string{"MPI_File_sync", "MPI_Barrier", "SYS_write"} {
		if _, ok := OpFromRecord(&trace.Record{Name: name}); ok {
			t.Fatalf("%s should not be replayable", name)
		}
	}
}
