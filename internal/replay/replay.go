// Package replay implements replayable-trace execution: the
// "pseudo-application ... with the aim of reproducing the I/O signature of
// the original application" from the paper's taxonomy.
//
// A Trace holds, per rank, the sequence of I/O operations with their pure
// compute ("think") gaps, plus the inter-rank dependency edges //TRACE
// discovers by throttling. Execute replays the trace against a fresh
// simulated cluster: each pseudo-rank sleeps its think time, waits for its
// dependencies, and issues the recorded I/O through the node kernel.
// Fidelity is then judged exactly as the paper suggests: "compare the
// end-to-end run time of both using a utility such as the Linux command
// line time utility."
package replay

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"iotaxo/internal/cluster"
	"iotaxo/internal/sim"
	"iotaxo/internal/trace"
	"iotaxo/internal/vfs"
)

// OpKind is a replayable operation type.
type OpKind int

// The replayable operations.
const (
	OpOpen OpKind = iota
	OpWrite
	OpRead
	OpClose
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpOpen:
		return "open"
	case OpWrite:
		return "write"
	case OpRead:
		return "read"
	case OpClose:
		return "close"
	default:
		return fmt.Sprintf("op(%d)", int(k))
	}
}

func parseKind(s string) (OpKind, error) {
	switch s {
	case "open":
		return OpOpen, nil
	case "write":
		return OpWrite, nil
	case "read":
		return OpRead, nil
	case "close":
		return OpClose, nil
	}
	return 0, fmt.Errorf("replay: unknown op kind %q", s)
}

// Op is one replayable operation.
type Op struct {
	Kind    OpKind
	Compute sim.Duration // pure think time before the op (sync waits removed)
	Path    string
	Offset  int64
	Bytes   int64
}

// OpFromRecord maps an MPI-IO trace record to a replayable op. Records that
// do not correspond to a replayable operation (barriers, syncs, non-MPI
// calls) report ok=false.
func OpFromRecord(r *trace.Record) (Op, bool) {
	switch r.Name {
	case "MPI_File_open":
		return Op{Kind: OpOpen, Path: r.Path}, true
	case "MPI_File_write_at", "MPI_File_write":
		return Op{Kind: OpWrite, Path: r.Path, Offset: r.Offset, Bytes: r.Bytes}, true
	case "MPI_File_read_at", "MPI_File_read":
		return Op{Kind: OpRead, Path: r.Path, Offset: r.Offset, Bytes: r.Bytes}, true
	case "MPI_File_close":
		return Op{Kind: OpClose, Path: r.Path}, true
	}
	return Op{}, false
}

// FromRecords builds a replayable trace from a stream of trace records:
// the Source-consuming constructor of the pseudo-application pipeline.
// Records must be time-ordered within each rank (interleaving across ranks
// is fine); think time before each I/O op is the start-time gap from the
// previous I/O op on the same rank, minus time spent inside non-replayable
// MPI calls (synchronization becomes dependency edges, not replayed MPI).
func FromRecords(src trace.Source, originalElapsed sim.Duration) (*Trace, error) {
	type rankState struct {
		ops       []Op
		lastIOEnd sim.Time
		nonIO     sim.Duration
		started   bool
	}
	states := make(map[int]*rankState)
	maxRank := -1
	_, err := trace.Copy(trace.SinkFunc(func(r *trace.Record) error {
		if r.Rank < 0 {
			return fmt.Errorf("replay: record %s has no rank", r.Name)
		}
		st := states[r.Rank]
		if st == nil {
			st = &rankState{}
			states[r.Rank] = st
		}
		if r.Rank > maxRank {
			maxRank = r.Rank
		}
		if !st.started {
			st.started = true
			st.lastIOEnd = r.Time
		}
		op, ok := OpFromRecord(r)
		if !ok {
			if r.Class == trace.ClassMPI {
				st.nonIO += r.Dur
			}
			return nil
		}
		think := r.Time - st.lastIOEnd - sim.Time(st.nonIO)
		if think < 0 {
			think = 0
		}
		op.Compute = sim.Duration(think)
		st.ops = append(st.ops, op)
		st.lastIOEnd = r.Time + sim.Time(r.Dur)
		st.nonIO = 0
		return nil
	}), src)
	if err != nil {
		return nil, err
	}
	if maxRank < 0 {
		return nil, fmt.Errorf("replay: no ranked records in stream")
	}
	tr := &Trace{
		Ranks:           maxRank + 1,
		Ops:             make([][]Op, maxRank+1),
		OriginalElapsed: originalElapsed,
	}
	for rank, st := range states {
		tr.Ops[rank] = st.ops
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// Dep is a cross-rank ordering edge: (FromRank, FromOp) must complete
// before (ToRank, ToOp) may issue.
type Dep struct {
	FromRank, FromOp int
	ToRank, ToOp     int
}

// Trace is a replayable trace.
type Trace struct {
	Ranks           int
	Ops             [][]Op
	Deps            []Dep
	OriginalElapsed sim.Duration // untraced application elapsed, for fidelity
}

// Validate checks structural invariants: shape, edge ranges, and that every
// dependency is realizable (no self-rank edges pointing forward in ways that
// deadlock program order is checked at execution; here we check bounds).
func (t *Trace) Validate() error {
	if t.Ranks <= 0 || len(t.Ops) != t.Ranks {
		return fmt.Errorf("replay: trace has %d rank streams for %d ranks", len(t.Ops), t.Ranks)
	}
	for _, d := range t.Deps {
		if d.FromRank < 0 || d.FromRank >= t.Ranks || d.ToRank < 0 || d.ToRank >= t.Ranks {
			return fmt.Errorf("replay: dep rank out of range: %+v", d)
		}
		if d.FromOp < 0 || d.FromOp >= len(t.Ops[d.FromRank]) {
			return fmt.Errorf("replay: dep source op out of range: %+v", d)
		}
		if d.ToOp < 0 || d.ToOp >= len(t.Ops[d.ToRank]) {
			return fmt.Errorf("replay: dep target op out of range: %+v", d)
		}
		if d.FromRank == d.ToRank {
			return fmt.Errorf("replay: self-rank dependency: %+v", d)
		}
	}
	return nil
}

// OpCount returns the total operation count.
func (t *Trace) OpCount() int {
	n := 0
	for _, ops := range t.Ops {
		n += len(ops)
	}
	return n
}

// Result is the outcome of a replay.
type Result struct {
	Elapsed sim.Duration
	PerRank []sim.Duration
}

// Fidelity reports the paper's replay-fidelity metric: the absolute
// end-to-end runtime error fraction of the pseudo-application relative to
// the original.
func Fidelity(original, replayed sim.Duration) float64 {
	if original <= 0 {
		return 0
	}
	diff := replayed - original
	if diff < 0 {
		diff = -diff
	}
	return float64(diff) / float64(original)
}

// Execute replays the trace on a fresh cluster. Pseudo-ranks are plain
// kernel processes (the generated pseudo-application does not need MPI).
func Execute(c *cluster.Cluster, tr *Trace) (Result, error) {
	if err := tr.Validate(); err != nil {
		return Result{}, err
	}
	env := c.Env

	// Completion latches per (rank, op).
	done := make([][]*sim.Latch, tr.Ranks)
	for r := range done {
		done[r] = make([]*sim.Latch, len(tr.Ops[r]))
		for k := range done[r] {
			done[r][k] = sim.NewLatch(env)
		}
	}
	// Dependency lookup: deps into (rank, op).
	depsInto := make(map[[2]int][]Dep)
	for _, d := range tr.Deps {
		key := [2]int{d.ToRank, d.ToOp}
		depsInto[key] = append(depsInto[key], d)
	}

	perRank := make([]sim.Duration, tr.Ranks)
	wg := sim.NewWaitGroup(env)
	wg.Add(tr.Ranks)
	var firstErr error

	for rank := 0; rank < tr.Ranks; rank++ {
		rank := rank
		kern := c.Kernels[rank%len(c.Kernels)]
		pc := kern.Spawn(vfs.Cred{UID: 500, GID: 500, User: "replay"})
		env.Go(fmt.Sprintf("replay.rank%d", rank), func(p *sim.Proc) {
			defer wg.Done()
			start := p.Now()
			fds := make(map[string]int)
			for k, op := range tr.Ops[rank] {
				if op.Compute > 0 {
					p.Sleep(op.Compute)
				}
				for _, d := range depsInto[[2]int{rank, k}] {
					done[d.FromRank][d.FromOp].Wait(p)
				}
				if err := executeOp(p, pc, fds, op); err != nil && firstErr == nil {
					firstErr = fmt.Errorf("replay: rank %d op %d (%v %s): %w", rank, k, op.Kind, op.Path, err)
				}
				done[rank][k].Open()
			}
			perRank[rank] = p.Now() - start
		})
	}
	env.Go("replay.join", func(p *sim.Proc) { wg.Wait(p) })
	env.Run()
	if firstErr != nil {
		return Result{}, firstErr
	}
	var last sim.Duration
	for _, d := range perRank {
		if d > last {
			last = d
		}
	}
	return Result{Elapsed: last, PerRank: perRank}, nil
}

func executeOp(p *sim.Proc, pc *vfs.ProcCtx, fds map[string]int, op Op) error {
	switch op.Kind {
	case OpOpen:
		fd, err := pc.Open(p, op.Path, vfs.OCreate|vfs.ORdwr, 0o644)
		if err != nil {
			return err
		}
		fds[op.Path] = fd
		return nil
	case OpWrite:
		fd, ok := fds[op.Path]
		if !ok {
			var err error
			fd, err = pc.Open(p, op.Path, vfs.OCreate|vfs.ORdwr, 0o644)
			if err != nil {
				return err
			}
			fds[op.Path] = fd
		}
		_, err := pc.PWrite(p, fd, op.Offset, op.Bytes)
		return err
	case OpRead:
		fd, ok := fds[op.Path]
		if !ok {
			var err error
			fd, err = pc.Open(p, op.Path, vfs.ORdwr|vfs.OCreate, 0o644)
			if err != nil {
				return err
			}
			fds[op.Path] = fd
		}
		_, err := pc.PRead(p, fd, op.Offset, op.Bytes)
		return err
	case OpClose:
		fd, ok := fds[op.Path]
		if !ok {
			return nil // already closed or never opened: tolerate
		}
		delete(fds, op.Path)
		return pc.Close(p, fd)
	default:
		return fmt.Errorf("replay: bad op kind %d", op.Kind)
	}
}

// --- human-readable serialization (//TRACE emits human-readable traces) ---

// WriteText serializes the trace.
func (t *Trace) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# partrace replayable v1 ranks=%d original_elapsed=%d\n",
		t.Ranks, int64(t.OriginalElapsed))
	for rank, ops := range t.Ops {
		for _, op := range ops {
			fmt.Fprintf(bw, "R%d compute=%d %s %q off=%d len=%d\n",
				rank, int64(op.Compute), op.Kind, op.Path, op.Offset, op.Bytes)
		}
	}
	for _, d := range t.Deps {
		fmt.Fprintf(bw, "DEP %d:%d -> %d:%d\n", d.FromRank, d.FromOp, d.ToRank, d.ToOp)
	}
	return bw.Flush()
}

// ParseText inverts WriteText.
func ParseText(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	tr := &Trace{}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		switch {
		case strings.HasPrefix(text, "#"):
			var ranks int
			var orig int64
			if _, err := fmt.Sscanf(text, "# partrace replayable v1 ranks=%d original_elapsed=%d", &ranks, &orig); err == nil {
				tr.Ranks = ranks
				tr.OriginalElapsed = sim.Duration(orig)
				tr.Ops = make([][]Op, ranks)
			}
		case strings.HasPrefix(text, "DEP "):
			var d Dep
			if _, err := fmt.Sscanf(text, "DEP %d:%d -> %d:%d", &d.FromRank, &d.FromOp, &d.ToRank, &d.ToOp); err != nil {
				return nil, fmt.Errorf("replay: line %d: %w", line, err)
			}
			tr.Deps = append(tr.Deps, d)
		case strings.HasPrefix(text, "R"):
			var rank int
			var compute, off, ln int64
			var kindStr, path string
			if _, err := fmt.Sscanf(text, "R%d compute=%d %s %q off=%d len=%d",
				&rank, &compute, &kindStr, &path, &off, &ln); err != nil {
				return nil, fmt.Errorf("replay: line %d: %q: %w", line, text, err)
			}
			kind, err := parseKind(kindStr)
			if err != nil {
				return nil, fmt.Errorf("replay: line %d: %w", line, err)
			}
			if rank < 0 || rank >= len(tr.Ops) {
				return nil, fmt.Errorf("replay: line %d: rank %d out of range", line, rank)
			}
			tr.Ops[rank] = append(tr.Ops[rank], Op{
				Kind: kind, Compute: sim.Duration(compute), Path: path, Offset: off, Bytes: ln,
			})
		default:
			return nil, fmt.Errorf("replay: line %d: unrecognized %q", line, text)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}
