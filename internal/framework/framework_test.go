package framework

import (
	"reflect"
	"testing"

	"iotaxo/internal/cluster"
	"iotaxo/internal/core"
)

// stubFW is a minimal registrable framework for registry tests. The test
// binary's registry holds only what this file registers (package framework
// imports no tracer packages).
type stubFW struct{ name string }

func (s stubFW) Name() string                         { return s.name }
func (s stubFW) Classification() *core.Classification { return &core.Classification{Name: s.name} }
func (s stubFW) Attach(c *cluster.Cluster) Session    { return nil }

func stub(name string) Framework { return stubFW{name} }

func TestRegisterLookupAllOrder(t *testing.T) {
	for _, n := range []string{"Zeta-Trace (test)", "Alpha-Trace", "Mid-Trace"} {
		Register(stub(n))
	}
	want := []string{"Alpha-Trace", "Mid-Trace", "Zeta-Trace (test)"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	// All() follows the same deterministic order, run after run.
	var first []string
	for i := 0; i < 3; i++ {
		var got []string
		for _, fw := range All() {
			got = append(got, fw.Name())
		}
		if i == 0 {
			first = got
			continue
		}
		if !reflect.DeepEqual(got, first) {
			t.Fatalf("All() order not deterministic: %v vs %v", got, first)
		}
	}
	if !reflect.DeepEqual(first, want) {
		t.Fatalf("All() order = %v, want %v", first, want)
	}

	// Case-insensitive full-name and first-word lookups.
	if fw, ok := Lookup("alpha-trace"); !ok || fw.Name() != "Alpha-Trace" {
		t.Fatalf("Lookup(alpha-trace) = %v, %v", fw, ok)
	}
	if fw, ok := Lookup("zeta-trace"); !ok || fw.Name() != "Zeta-Trace (test)" {
		t.Fatalf("first-word Lookup(zeta-trace) = %v, %v", fw, ok)
	}
}

func TestLookupMiss(t *testing.T) {
	if fw, ok := Lookup("no-such-framework"); ok {
		t.Fatalf("Lookup hit on unregistered name: %v", fw)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustLookup did not panic on a miss")
		}
	}()
	MustLookup("no-such-framework")
}

func TestDuplicateRegisterPanics(t *testing.T) {
	Register(stub("Dup-Trace"))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register(stub("Dup-Trace"))
}

func TestEmptyNameRegisterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty-name Register did not panic")
		}
	}()
	Register(stub(""))
}
