// Package framework defines the first-class abstraction the taxonomy
// classifies: an I/O tracing framework that can attach to a simulated
// cluster, observe a workload, and report what it saw. Every tracer in the
// repository — LANL-Trace, Tracefs, //TRACE, the multi-layer analyzer, and
// path-based tracing — registers an implementation here, which is what lets
// the harness measure any framework on any workload through one generic
// code path, and lets cmd/iotaxo resolve framework names without a
// hardcoded list.
//
// The package-level registry is the extension point the paper's future work
// asks for: classifying a new framework means implementing Framework in one
// file and calling Register from init; the harness's MatrixSweep and the
// command-line tools pick it up with no further changes.
package framework

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"iotaxo/internal/cluster"
	"iotaxo/internal/core"
	"iotaxo/internal/sim"
	"iotaxo/internal/trace"
	"iotaxo/internal/workload"
)

// Framework is one I/O tracing framework: a name, a position on the
// taxonomy's axes, and the ability to attach to a cluster. Implementations
// must be stateless values; all per-run state lives in the Session.
type Framework interface {
	// Name is the canonical framework name (the Table 2 column header).
	Name() string
	// Classification returns the framework's qualitative taxonomy position.
	// Measured overheads are folded in by the harness, not here.
	Classification() *core.Classification
	// Attach instruments a freshly built cluster. It must run before the
	// workload is launched; the returned Session is single-use, like the
	// cluster itself.
	Attach(c *cluster.Cluster) Session
}

// Session is one attached tracing instance. Run executes a workload spec
// under tracing and reports the measurement; Sources exposes the records
// the tracer captured, one stream per trace file it would have written.
// The spec is any registered workload instantiated at some scale — sessions
// wrap spec.Program with their probes and carry no workload knowledge.
type Session interface {
	Run(spec workload.Spec) (Report, error)
	Sources() []trace.Source
}

// Report is the quantitative outcome of one traced run: everything the
// generic sweep engine needs to compute the taxonomy's overhead axes
// without knowing which framework produced it.
type Report struct {
	// Result is the application's measurement under tracing.
	Result workload.Result
	// TracingElapsed is the total wall time spent producing the trace. It
	// equals Result.Elapsed unless the framework needs extra application
	// runs (//TRACE's throttled dependency probes).
	TracingElapsed sim.Duration
	// Runs counts application executions the framework consumed (1 unless
	// the framework is multi-run by design).
	Runs int
	// TraceEvents and TraceBytes aggregate trace output volume.
	TraceEvents int64
	TraceBytes  int64
	// Deps counts causal dependency edges the framework discovered, for
	// frameworks whose classification says RevealsDeps.
	Deps int
	// ReplayMeasured reports that the framework generated a replayable
	// trace and measured its fidelity; ReplayErr is the end-to-end runtime
	// error fraction of the replayed pseudo-application.
	ReplayMeasured bool
	ReplayErr      float64
}

// Variant is optionally implemented by frameworks whose behaviour depends
// on configuration beyond the registered Name — e.g. LANL-Trace's strace
// and ltrace modes share one Name but produce different measurements. The
// digest must be a stable fingerprint of that configuration, so the
// harness's content-addressed result cache can tell the variants apart.
type Variant interface {
	VariantDigest() uint64
}

// VariantDigest returns fw's configuration fingerprint, or 0 for frameworks
// whose Name alone identifies their behaviour.
func VariantDigest(fw Framework) uint64 {
	if v, ok := fw.(Variant); ok {
		return v.VariantDigest()
	}
	return 0
}

// RunWorkload executes a workload spec on the cluster with per-rank
// statistics: the shared Session.Run body for frameworks whose probes are
// attached before launch.
func RunWorkload(c *cluster.Cluster, spec workload.Spec) workload.Result {
	return spec.Run(c.World)
}

// --- registry ---

var (
	regMu    sync.RWMutex
	registry = make(map[string]Framework)
)

// Register adds a framework to the package registry, keyed by Name. It
// panics on an empty name or a duplicate registration: both are programming
// errors in the registering package's init.
func Register(fw Framework) {
	name := fw.Name()
	if name == "" {
		panic("framework: Register with empty name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("framework: duplicate registration of %q", name))
	}
	registry[name] = fw
}

// Lookup resolves a framework by name, case-insensitively; a bare first
// word also matches ("tracefs", "PathTrace"), mirroring how users type
// framework names on the command line.
func Lookup(name string) (Framework, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	for _, fw := range registry {
		if strings.EqualFold(fw.Name(), name) {
			return fw, true
		}
	}
	for _, n := range sortedNamesLocked() {
		if strings.EqualFold(strings.Fields(n)[0], name) {
			return registry[n], true
		}
	}
	return nil, false
}

// MustLookup is Lookup that panics on a miss, for callers that refer to a
// framework the repository itself registers.
func MustLookup(name string) Framework {
	fw, ok := Lookup(name)
	if !ok {
		panic(fmt.Sprintf("framework: %q is not registered (have %s)", name, strings.Join(Names(), ", ")))
	}
	return fw
}

// All returns every registered framework in deterministic (name-sorted)
// order — the row order of MatrixSweep and `iotaxo -list`.
func All() []Framework {
	regMu.RLock()
	defer regMu.RUnlock()
	names := sortedNamesLocked()
	out := make([]Framework, len(names))
	for i, n := range names {
		out[i] = registry[n]
	}
	return out
}

// Names returns the registered framework names in deterministic order, for
// error messages and listings.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return sortedNamesLocked()
}

func sortedNamesLocked() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
