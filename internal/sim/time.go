package sim

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, measured in nanoseconds since the start
// of the simulation. It is deliberately distinct from time.Time: simulated
// clocks with skew and drift are layered on top by package clocks.
type Time int64

// Duration aliases Time for readability when a value denotes a span rather
// than an instant. The two are freely interchangeable in arithmetic.
type Duration = Time

// Common durations in virtual nanoseconds.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
)

// MaxTime is the largest representable instant; RunUntil(MaxTime) drains the
// event queue completely.
const MaxTime Time = 1<<63 - 1

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Std converts a virtual duration to a time.Duration for formatting.
func (t Time) Std() time.Duration { return time.Duration(int64(t)) }

// String formats the instant as seconds with nanosecond precision.
func (t Time) String() string {
	return fmt.Sprintf("%d.%09ds", int64(t)/int64(Second), int64(t)%int64(Second))
}

// DurationOf converts a byte count and a bandwidth in bytes/second into the
// virtual time needed to move that many bytes. Bandwidth must be positive.
func DurationOf(bytes int64, bytesPerSec float64) Duration {
	if bytesPerSec <= 0 {
		panic("sim: DurationOf requires positive bandwidth")
	}
	return Duration(float64(bytes) / bytesPerSec * float64(Second))
}
