package sim

// event is a scheduled callback. Events are ordered by time, then by the
// sequence number assigned at scheduling, which makes the simulation
// deterministic: ties are broken in scheduling order.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// eventHeap is a binary min-heap of events keyed on (at, seq). It is
// hand-rolled rather than using container/heap to avoid interface boxing on
// the hottest path in the simulator.
type eventHeap struct {
	ev []event
}

func (h *eventHeap) Len() int { return len(h.ev) }

func (h *eventHeap) less(i, j int) bool {
	a, b := &h.ev[i], &h.ev[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Push inserts an event, restoring the heap property.
func (h *eventHeap) Push(e event) {
	h.ev = append(h.ev, e)
	i := len(h.ev) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.ev[i], h.ev[parent] = h.ev[parent], h.ev[i]
		i = parent
	}
}

// Pop removes and returns the earliest event. It panics on an empty heap;
// callers check Len first.
func (h *eventHeap) Pop() event {
	n := len(h.ev)
	top := h.ev[0]
	h.ev[0] = h.ev[n-1]
	h.ev[n-1] = event{} // release the closure for GC
	h.ev = h.ev[:n-1]
	h.siftDown(0)
	return top
}

func (h *eventHeap) siftDown(i int) {
	n := len(h.ev)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.ev[i], h.ev[smallest] = h.ev[smallest], h.ev[i]
		i = smallest
	}
}

// Peek returns the earliest event without removing it.
func (h *eventHeap) Peek() event { return h.ev[0] }
