package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	env := NewEnv(1)
	var got []int
	env.At(30, func() { got = append(got, 3) })
	env.At(10, func() { got = append(got, 1) })
	env.At(20, func() { got = append(got, 2) })
	env.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	env := NewEnv(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		env.At(5, func() { got = append(got, i) })
	}
	env.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("tie order = %v, want ascending", got)
		}
	}
}

func TestAfterUsesCurrentTime(t *testing.T) {
	env := NewEnv(1)
	var at Time
	env.At(100, func() {
		env.After(50, func() { at = env.Now() })
	})
	env.Run()
	if at != 150 {
		t.Fatalf("After fired at %d, want 150", at)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	env := NewEnv(1)
	env.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		env.At(50, func() {})
	})
	env.Run()
}

func TestProcSleep(t *testing.T) {
	env := NewEnv(1)
	var wake Time
	env.Go("sleeper", func(p *Proc) {
		p.Sleep(2 * Second)
		wake = p.Now()
	})
	env.Run()
	if wake != 2*Second {
		t.Fatalf("woke at %v, want 2s", wake)
	}
}

func TestProcInterleaving(t *testing.T) {
	env := NewEnv(1)
	var order []string
	env.Go("a", func(p *Proc) {
		order = append(order, "a0")
		p.Sleep(10)
		order = append(order, "a10")
		p.Sleep(20)
		order = append(order, "a30")
	})
	env.Go("b", func(p *Proc) {
		order = append(order, "b0")
		p.Sleep(15)
		order = append(order, "b15")
	})
	env.Run()
	want := []string{"a0", "b0", "a10", "b15", "a30"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestRunUntilStopsEarlyAndKillsBlocked(t *testing.T) {
	env := NewEnv(1)
	reached := false
	env.Go("longsleep", func(p *Proc) {
		p.Sleep(100 * Second)
		reached = true
	})
	end := env.RunUntil(1 * Second)
	if reached {
		t.Error("process ran past deadline")
	}
	if end != 1*Second {
		t.Errorf("end = %v, want 1s", end)
	}
}

func TestResourceFIFO(t *testing.T) {
	env := NewEnv(1)
	res := NewResource(env, 1)
	var order []string
	worker := func(name string, hold Duration) func(*Proc) {
		return func(p *Proc) {
			res.Acquire(p)
			order = append(order, name+"+")
			p.Sleep(hold)
			order = append(order, name+"-")
			res.Release()
		}
	}
	env.Go("a", worker("a", 10))
	env.Go("b", worker("b", 10))
	env.Go("c", worker("c", 10))
	env.Run()
	want := []string{"a+", "a-", "b+", "b-", "c+", "c-"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestResourceCapacityTwo(t *testing.T) {
	env := NewEnv(1)
	res := NewResource(env, 2)
	var maxInUse int
	work := func(p *Proc) {
		res.Acquire(p)
		if res.InUse() > maxInUse {
			maxInUse = res.InUse()
		}
		p.Sleep(10)
		res.Release()
	}
	for i := 0; i < 5; i++ {
		env.Go("w", work)
	}
	env.Run()
	if maxInUse != 2 {
		t.Fatalf("max in use = %d, want 2", maxInUse)
	}
}

func TestResourceHoldForSerializes(t *testing.T) {
	env := NewEnv(1)
	res := NewResource(env, 1)
	var finish []Time
	for i := 0; i < 3; i++ {
		env.Go("h", func(p *Proc) {
			res.HoldFor(p, 10)
			finish = append(finish, p.Now())
		})
	}
	env.Run()
	want := []Time{10, 20, 30}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish = %v, want %v", finish, want)
		}
	}
}

func TestHoldForThenSerializes(t *testing.T) {
	// The event-callback hold must produce the same schedule as three
	// processes calling HoldFor (cf. TestResourceHoldForSerializes).
	env := NewEnv(1)
	res := NewResource(env, 1)
	var finish []Time
	for i := 0; i < 3; i++ {
		env.At(0, func() {
			res.HoldForThen(10, func() { finish = append(finish, env.Now()) })
		})
	}
	env.Run()
	want := []Time{10, 20, 30}
	if len(finish) != len(want) {
		t.Fatalf("finish = %v, want %v", finish, want)
	}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish = %v, want %v", finish, want)
		}
	}
}

func TestHoldForThenMatchesHoldFor(t *testing.T) {
	// Identical contention patterns through the process API and the event
	// API must finish at identical instants: the byte-identical-output
	// guarantee of the eventized network path rests on this equivalence.
	holds := []Duration{7, 13, 5, 29, 11, 3}
	run := func(eventized bool) []Time {
		env := NewEnv(1)
		res := NewResource(env, 2)
		finish := make([]Time, len(holds))
		for i, d := range holds {
			i, d := i, d
			start := Time(i) * 2
			if eventized {
				env.At(start, func() {
					res.HoldForThen(d, func() { finish[i] = env.Now() })
				})
			} else {
				env.At(start, func() {
					env.Go("h", func(p *Proc) {
						res.HoldFor(p, d)
						finish[i] = p.Now()
					})
				})
			}
		}
		env.Run()
		return finish
	}
	procs, events := run(false), run(true)
	for i := range holds {
		if procs[i] != events[i] {
			t.Fatalf("hold %d: proc engine finished at %v, event engine at %v\nprocs:  %v\nevents: %v",
				i, procs[i], events[i], procs, events)
		}
	}
}

func TestAcquireThenMixedFIFOWithProcs(t *testing.T) {
	// Process and callback claims share one queue and are served in strict
	// arrival order.
	env := NewEnv(1)
	res := NewResource(env, 1)
	var order []string
	env.Go("first", func(p *Proc) {
		res.Acquire(p)
		p.Sleep(10)
		res.Release()
	})
	env.At(1, func() {
		res.AcquireThen(func() {
			order = append(order, "event")
			res.Release()
		})
	})
	env.At(2, func() {
		env.Go("proc", func(p *Proc) {
			res.Acquire(p)
			order = append(order, "proc")
			res.Release()
		})
	})
	env.At(3, func() {
		res.AcquireThen(func() {
			order = append(order, "event2")
			res.Release()
		})
	})
	env.Run()
	want := []string{"event", "proc", "event2"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestAcquireThenImmediateRunsSynchronously(t *testing.T) {
	env := NewEnv(1)
	res := NewResource(env, 1)
	ran := false
	res.AcquireThen(func() { ran = true })
	if !ran {
		t.Fatal("uncontended AcquireThen deferred its callback")
	}
	if res.InUse() != 1 {
		t.Fatalf("InUse = %d, want 1", res.InUse())
	}
	res.Release()
}

func TestSpawnedAndLiveProcs(t *testing.T) {
	env := NewEnv(1)
	if env.LiveProcs() != 0 || env.Spawned("w") != 0 {
		t.Fatal("fresh env reports procs")
	}
	for i := 0; i < 3; i++ {
		env.Go("w", func(p *Proc) { p.Sleep(10) })
	}
	env.Go("other", func(p *Proc) { p.Sleep(5) })
	if env.LiveProcs() != 4 {
		t.Fatalf("LiveProcs = %d, want 4", env.LiveProcs())
	}
	env.Run()
	if env.Spawned("w") != 3 || env.Spawned("other") != 1 || env.Spawned("nosuch") != 0 {
		t.Fatalf("spawn counts: w=%d other=%d", env.Spawned("w"), env.Spawned("other"))
	}
	if env.LiveProcs() != 0 {
		t.Fatalf("LiveProcs after Run = %d, want 0", env.LiveProcs())
	}
}

func TestReleaseWithoutAcquirePanics(t *testing.T) {
	env := NewEnv(1)
	res := NewResource(env, 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	res.Release()
}

func TestMailboxBlockingGet(t *testing.T) {
	env := NewEnv(1)
	mb := NewMailbox[int](env)
	var got int
	var at Time
	env.Go("recv", func(p *Proc) {
		got = mb.Get(p)
		at = p.Now()
	})
	env.Go("send", func(p *Proc) {
		p.Sleep(42)
		mb.Put(7)
	})
	env.Run()
	if got != 7 || at != 42 {
		t.Fatalf("got %d at %v, want 7 at 42", got, at)
	}
}

func TestMailboxFIFOAcrossReceivers(t *testing.T) {
	env := NewEnv(1)
	mb := NewMailbox[int](env)
	var got []int
	for i := 0; i < 3; i++ {
		env.Go("recv", func(p *Proc) { got = append(got, mb.Get(p)) })
	}
	env.Go("send", func(p *Proc) {
		p.Sleep(1)
		mb.Put(1)
		mb.Put(2)
		mb.Put(3)
	})
	env.Run()
	sort.Ints(got)
	for i, v := range []int{1, 2, 3} {
		if got[i] != v {
			t.Fatalf("got %v", got)
		}
	}
}

func TestMailboxTryGet(t *testing.T) {
	env := NewEnv(1)
	mb := NewMailbox[string](env)
	if _, ok := mb.TryGet(); ok {
		t.Fatal("TryGet on empty mailbox returned ok")
	}
	mb.Put("x")
	v, ok := mb.TryGet()
	if !ok || v != "x" {
		t.Fatalf("TryGet = %q,%v", v, ok)
	}
}

func TestSignalBroadcast(t *testing.T) {
	env := NewEnv(1)
	sig := NewSignal(env)
	woke := 0
	for i := 0; i < 4; i++ {
		env.Go("w", func(p *Proc) {
			sig.Wait(p)
			woke++
		})
	}
	env.Go("firer", func(p *Proc) {
		p.Sleep(10)
		sig.Fire()
	})
	env.Run()
	if woke != 4 {
		t.Fatalf("woke = %d, want 4", woke)
	}
}

func TestLatchOpenBeforeWait(t *testing.T) {
	env := NewEnv(1)
	l := NewLatch(env)
	l.Open()
	passed := false
	env.Go("w", func(p *Proc) {
		l.Wait(p) // must not block
		passed = true
	})
	env.Run()
	if !passed {
		t.Fatal("waiter blocked on open latch")
	}
}

func TestWaitGroupForkJoin(t *testing.T) {
	env := NewEnv(1)
	var end Time
	env.Go("parent", func(p *Proc) {
		ForkJoin(p, "child",
			func(c *Proc) { c.Sleep(10) },
			func(c *Proc) { c.Sleep(30) },
			func(c *Proc) { c.Sleep(20) },
		)
		end = p.Now()
	})
	env.Run()
	if end != 30 {
		t.Fatalf("join at %v, want 30 (max child)", end)
	}
}

func TestWaitGroupZeroWaitDoesNotBlock(t *testing.T) {
	env := NewEnv(1)
	wg := NewWaitGroup(env)
	ok := false
	env.Go("w", func(p *Proc) {
		wg.Wait(p)
		ok = true
	})
	env.Run()
	if !ok {
		t.Fatal("Wait on zero counter blocked")
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	run := func() []Time {
		env := NewEnv(99)
		res := NewResource(env, 2)
		var finish []Time
		for i := 0; i < 8; i++ {
			env.Go("w", func(p *Proc) {
				d := Duration(env.Rand().Intn(100) + 1)
				res.HoldFor(p, d)
				finish = append(finish, p.Now())
			})
		}
		env.Run()
		return finish
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run differs at %d: %v vs %v", i, a, b)
		}
	}
}

// Property: popping the heap always yields events in nondecreasing (at, seq)
// order regardless of insertion order.
func TestHeapOrderingProperty(t *testing.T) {
	f := func(times []int16) bool {
		var h eventHeap
		for i, tm := range times {
			at := Time(tm)
			if at < 0 {
				at = -at
			}
			h.Push(event{at: at, seq: uint64(i)})
		}
		var prev event
		first := true
		for h.Len() > 0 {
			e := h.Pop()
			if !first {
				if e.at < prev.at || (e.at == prev.at && e.seq < prev.seq) {
					return false
				}
			}
			prev, first = e, false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: DurationOf is monotone in bytes for fixed bandwidth.
func TestDurationOfMonotoneProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return DurationOf(x, 1e9) <= DurationOf(y, 1e9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDurationOfExact(t *testing.T) {
	// 1 MiB at 1 MiB/s is exactly one second.
	got := DurationOf(1<<20, 1<<20)
	if got != Second {
		t.Fatalf("got %v, want 1s", got)
	}
}

func TestRandDeterministic(t *testing.T) {
	a := NewEnv(7).Rand().Int63()
	b := NewEnv(7).Rand().Int63()
	if a != b {
		t.Fatal("same seed produced different first values")
	}
	c := rand.New(rand.NewSource(8)).Int63()
	if a == c {
		t.Fatal("different seeds produced identical first values (suspicious)")
	}
}

func TestTimeString(t *testing.T) {
	got := (1*Second + 500*Millisecond).String()
	if got != "1.500000000s" {
		t.Fatalf("String = %q", got)
	}
}

func TestStopIdempotent(t *testing.T) {
	env := NewEnv(1)
	env.Go("p", func(p *Proc) { p.Sleep(1000) })
	env.RunUntil(10)
	env.Stop()
	env.Stop() // must not panic or deadlock
}
