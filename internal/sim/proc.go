package sim

import "fmt"

// errKilled is the sentinel recovered by the process wrapper when the
// environment shuts a blocked process down.
type killedError struct{}

func (killedError) Error() string { return "sim: process killed at shutdown" }

// Proc is a simulated process: a goroutine that runs in strict alternation
// with the scheduler. All blocking methods (Sleep, Resource.Acquire,
// Mailbox.Get, ...) must be called from the process's own goroutine.
type Proc struct {
	env    *Env
	pid    int
	name   string
	resume chan struct{}
	done   bool

	// dispatchFn is the process's reusable dispatch event, allocated once at
	// spawn. Every Sleep/unpark schedules it; caching it here keeps the
	// simulator's hottest path (hundreds of wake events per rank) from
	// allocating a fresh closure per event.
	dispatchFn func()

	// span is the causal span the process is currently executing under
	// (0 = none). Layers that start a child operation save the old value,
	// install their own span, and restore on return, so records emitted by
	// lower layers can name their parent.
	span uint64
}

// Go spawns fn as a new simulated process starting at the current virtual
// time. The returned Proc identifies the process; fn receives it for calling
// blocking primitives.
func (e *Env) Go(name string, fn func(p *Proc)) *Proc {
	if e.stopped {
		panic("sim: Go after environment stopped")
	}
	e.nextPID++
	e.spawns[name]++
	p := &Proc{env: e, pid: e.nextPID, name: name, resume: make(chan struct{})}
	p.dispatchFn = func() { e.dispatch(p) }
	e.procs[p] = struct{}{}
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killedError); !ok {
					// Re-panic on the scheduler side would deadlock the
					// handshake, so decorate and crash here.
					panic(fmt.Sprintf("sim: process %q panicked: %v", p.name, r))
				}
			}
			p.done = true
			e.yield <- struct{}{}
		}()
		if _, ok := <-p.resume; !ok {
			panic(killedError{})
		}
		fn(p)
	}()
	// First activation is a normal scheduled event at the current time.
	e.schedule(e.now, p.dispatchFn)
	return p
}

// dispatch hands the CPU to p and waits for it to block or finish.
func (e *Env) dispatch(p *Proc) {
	if p.done {
		return
	}
	p.resume <- struct{}{}
	<-e.yield
	if p.done {
		delete(e.procs, p)
	}
}

// park blocks the calling process until some event calls unpark (via
// dispatch). It must only be called by p's own goroutine.
func (p *Proc) park() {
	p.env.yield <- struct{}{}
	if _, ok := <-p.resume; !ok {
		panic(killedError{})
	}
}

// unpark schedules p to resume at the current virtual time.
func (p *Proc) unpark() { p.env.schedule(p.env.now, p.dispatchFn) }

// unparkAt schedules p to resume at instant at.
func (p *Proc) unparkAt(at Time) { p.env.schedule(at, p.dispatchFn) }

// Env returns the owning environment.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// Name returns the process name given at spawn.
func (p *Proc) Name() string { return p.name }

// PID returns the process's unique id within its environment.
func (p *Proc) PID() int { return p.pid }

// Span returns the causal span the process is currently executing under
// (0 = none).
func (p *Proc) Span() uint64 { return p.span }

// SetSpan installs a causal span as the process's current context and
// returns the previous one so callers can restore it.
func (p *Proc) SetSpan(s uint64) (prev uint64) {
	prev = p.span
	p.span = s
	return prev
}

// Sleep suspends the process for d nanoseconds of virtual time. Negative
// durations sleep zero time but still yield to the scheduler.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.unparkAt(p.env.now + d)
	p.park()
}

// Yield gives other ready processes a chance to run at the same instant.
func (p *Proc) Yield() { p.Sleep(0) }

// String implements fmt.Stringer.
func (p *Proc) String() string { return fmt.Sprintf("proc(%d,%s)", p.pid, p.name) }
