package sim

// WaitGroup counts outstanding simulated tasks; Wait blocks a process until
// the count returns to zero. Deterministic analogue of sync.WaitGroup.
//
// Like Mailbox and Signal, a WaitGroup serves process waiters (Wait) and
// event-callback waiters (WaitThen) from one FIFO queue, and the zero-count
// wake is batched: one scheduled drain event releases every waiter in wait
// order, sequencing-identical to the retired one-unpark-event-per-waiter
// scheme (those events carried consecutive sequence numbers with nothing
// schedulable between them).
type WaitGroup struct {
	env     *Env
	count   int
	waiters []waiter
}

// NewWaitGroup returns a wait group bound to env.
func NewWaitGroup(env *Env) *WaitGroup { return &WaitGroup{env: env} }

// Add increments the task count by n (n may be negative; Done is Add(-1)).
func (wg *WaitGroup) Add(n int) {
	wg.count += n
	if wg.count < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if wg.count == 0 && len(wg.waiters) > 0 {
		ws := wg.waiters
		wg.waiters = nil
		wg.env.schedule(wg.env.now, func() {
			for _, w := range ws {
				w.serve(wg.env)
			}
		})
	}
}

// Done decrements the task count.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Wait blocks p until the count is zero.
func (wg *WaitGroup) Wait(p *Proc) {
	for wg.count > 0 {
		wg.waiters = append(wg.waiters, waiter{p: p})
		p.park()
	}
}

// WaitThen runs fn once the count returns to zero — synchronously when it
// already is (mirroring a process Wait that falls straight through),
// otherwise from the batched zero-count drain. The registration is one-shot:
// unlike Wait's re-check loop, fn runs even if an earlier waiter in the same
// drain re-raises the count (which matches the unconditional unparks of the
// retired scheme; join-style users never re-raise).
func (wg *WaitGroup) WaitThen(fn func()) {
	if wg.count == 0 {
		fn()
		return
	}
	wg.waiters = append(wg.waiters, waiter{fn: fn})
}

// ForkJoin spawns one child process per element of fns and blocks p until
// all children finish: the standard pattern for a client issuing parallel
// requests (e.g. striped writes to several servers).
func ForkJoin(p *Proc, name string, fns ...func(child *Proc)) {
	wg := NewWaitGroup(p.env)
	wg.Add(len(fns))
	for _, fn := range fns {
		fn := fn
		p.env.Go(name, func(child *Proc) {
			defer wg.Done()
			fn(child)
		})
	}
	wg.Wait(p)
}
