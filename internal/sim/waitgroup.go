package sim

// WaitGroup counts outstanding simulated tasks; Wait blocks a process until
// the count returns to zero. Deterministic analogue of sync.WaitGroup.
type WaitGroup struct {
	env     *Env
	count   int
	waiters []*Proc
}

// NewWaitGroup returns a wait group bound to env.
func NewWaitGroup(env *Env) *WaitGroup { return &WaitGroup{env: env} }

// Add increments the task count by n (n may be negative; Done is Add(-1)).
func (wg *WaitGroup) Add(n int) {
	wg.count += n
	if wg.count < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if wg.count == 0 {
		ws := wg.waiters
		wg.waiters = nil
		for _, w := range ws {
			w.unpark()
		}
	}
}

// Done decrements the task count.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Wait blocks p until the count is zero.
func (wg *WaitGroup) Wait(p *Proc) {
	for wg.count > 0 {
		wg.waiters = append(wg.waiters, p)
		p.park()
	}
}

// ForkJoin spawns one child process per element of fns and blocks p until
// all children finish: the standard pattern for a client issuing parallel
// requests (e.g. striped writes to several servers).
func ForkJoin(p *Proc, name string, fns ...func(child *Proc)) {
	wg := NewWaitGroup(p.env)
	wg.Add(len(fns))
	for _, fn := range fns {
		fn := fn
		p.env.Go(name, func(child *Proc) {
			defer wg.Done()
			fn(child)
		})
	}
	wg.Wait(p)
}
