package sim

import (
	"fmt"
	"math/rand"
)

// Env is a simulation environment: a virtual clock plus an event queue.
// Create one with NewEnv, spawn processes with Go, and advance time with Run
// or RunUntil. An Env must not be shared between real OS threads while
// running; the kernel enforces a strict one-runner-at-a-time discipline
// internally.
type Env struct {
	now   Time
	queue eventHeap
	seq   uint64
	rng   *rand.Rand

	// yield is the handshake channel on which the currently running process
	// signals that it has blocked or finished, returning control to the
	// scheduler. It is unbuffered; strict alternation means there is never
	// more than one pending signal.
	yield chan struct{}

	procs   map[*Proc]struct{} // live (started, not finished) processes
	spawns  map[string]int     // processes ever spawned, by Go name
	running bool
	stopped bool
	nextPID int

	// nextSpan backs NextSpanID. It is a pure counter with no effect on
	// virtual time, the event queue, or the rng, so allocating spans cannot
	// perturb a schedule: traced and untraced runs stay byte-identical.
	nextSpan uint64
}

// NewEnv returns an environment whose random source is seeded with seed.
// The same seed and the same program yield an identical event history.
func NewEnv(seed int64) *Env {
	return &Env{
		rng:    rand.New(rand.NewSource(seed)),
		yield:  make(chan struct{}),
		procs:  make(map[*Proc]struct{}),
		spawns: make(map[string]int),
	}
}

// LiveProcs reports the number of live (started, not finished) processes:
// each owns one OS goroutine, so this is the simulation's contribution to
// the runtime's goroutine population.
func (e *Env) LiveProcs() int { return len(e.procs) }

// Spawned reports how many processes have ever been spawned under the given
// Go name. Scalability tests use it to prove hot paths (network message
// delivery) allocate no process per event.
func (e *Env) Spawned(name string) int { return e.spawns[name] }

// Spawns returns a copy of the full spawn census: processes ever spawned,
// keyed by Go name. Regression guards iterate it to assert that no
// per-request or per-message process names (".worker", ".dispatch",
// "pfs.io", ...) reappear in an eventized hot path.
func (e *Env) Spawns() map[string]int {
	out := make(map[string]int, len(e.spawns))
	for name, n := range e.spawns {
		out[name] = n
	}
	return out
}

// TotalSpawned reports the number of processes ever spawned in this
// environment, across all names. After full eventization this is
// O(ranks): one process per MPI rank plus a constant few joiners,
// regardless of request volume.
func (e *Env) TotalSpawned() int {
	total := 0
	for _, n := range e.spawns {
		total += n
	}
	return total
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// NextSpanID allocates a fresh causal span identifier. IDs start at 1 and
// increase monotonically; 0 means "no span". Allocation touches nothing but
// the counter, so it is schedule-neutral.
func (e *Env) NextSpanID() uint64 {
	e.nextSpan++
	return e.nextSpan
}

// Rand returns the environment's deterministic random source.
func (e *Env) Rand() *rand.Rand { return e.rng }

// schedule enqueues fn to run at instant at. Scheduling in the past is a
// programming error.
func (e *Env) schedule(at Time, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	e.seq++
	e.queue.Push(event{at: at, seq: e.seq, fn: fn})
}

// At schedules fn to run as a pure event (not a process) at instant at.
func (e *Env) At(at Time, fn func()) { e.schedule(at, fn) }

// After schedules fn to run d nanoseconds from now.
func (e *Env) After(d Duration, fn func()) { e.schedule(e.now+d, fn) }

// Run processes events until the queue is empty. It returns the final
// virtual time. Processes still blocked when the queue drains are killed.
func (e *Env) Run() Time { return e.RunUntil(MaxTime) }

// RunUntil processes all events with timestamps <= deadline and then stops,
// killing any process still blocked. It returns the virtual time of the last
// event processed (or deadline if it is not MaxTime and events remain).
func (e *Env) RunUntil(deadline Time) Time {
	if e.running {
		panic("sim: RunUntil called reentrantly")
	}
	if e.stopped {
		panic("sim: environment already stopped")
	}
	e.running = true
	for e.queue.Len() > 0 && e.queue.Peek().at <= deadline {
		ev := e.queue.Pop()
		e.now = ev.at
		ev.fn()
	}
	if deadline != MaxTime && deadline > e.now {
		e.now = deadline
	}
	e.running = false
	e.Stop()
	return e.now
}

// Stop kills all still-blocked processes so their goroutines exit. It is
// called automatically at the end of Run/RunUntil and is idempotent.
func (e *Env) Stop() {
	if e.stopped {
		return
	}
	e.stopped = true
	for p := range e.procs {
		close(p.resume) // parked process observes the close and unwinds
		<-e.yield       // wait for its wrapper to hand control back
	}
	e.procs = make(map[*Proc]struct{})
}

// Pending reports the number of queued events; useful in tests.
func (e *Env) Pending() int { return e.queue.Len() }
