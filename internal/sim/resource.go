package sim

// Resource is a FIFO server with fixed capacity, the workhorse for modelling
// contended hardware: a disk head, a network link, a CPU. Acquire blocks the
// calling process while the resource is saturated; waiters are served in
// arrival order, which keeps the simulation deterministic.
//
// A unit can be claimed two ways: by a process (Acquire/HoldFor, which park
// the caller's goroutine) or by a pure event callback (AcquireThen/
// HoldForThen, which allocate no goroutine at all). Both waiter kinds share
// one FIFO queue, so a mixed population is still served in arrival order.
type Resource struct {
	env     *Env
	cap     int
	inUse   int
	waiters []waiter
}

// waiter is one queued claim on a saturated resource: either a parked
// process or a pure event callback.
type waiter struct {
	p  *Proc
	fn func()
}

// NewResource returns a resource with the given capacity (>= 1).
func NewResource(env *Env, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{env: env, cap: capacity}
}

// Acquire obtains one unit of the resource, blocking p until available.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.cap {
		r.inUse++
		return
	}
	r.waiters = append(r.waiters, waiter{p: p})
	p.park()
}

// AcquireThen obtains one unit of the resource on behalf of an event chain:
// fn runs holding the unit — immediately (synchronously) when one is free,
// otherwise as a scheduled event when the queue reaches it. fn must
// eventually lead to a Release. Unlike Acquire, no process or goroutine is
// involved; this is the event-callback half of the resource API.
func (r *Resource) AcquireThen(fn func()) {
	if r.inUse < r.cap {
		r.inUse++
		fn()
		return
	}
	r.waiters = append(r.waiters, waiter{fn: fn})
}

// Release returns one unit, waking the longest-waiting claim if any.
func (r *Resource) Release() {
	if len(r.waiters) > 0 {
		w := r.waiters[0]
		copy(r.waiters, r.waiters[1:])
		r.waiters[len(r.waiters)-1] = waiter{}
		r.waiters = r.waiters[:len(r.waiters)-1]
		// The unit passes directly to the waiter; inUse unchanged. A parked
		// process resumes via its dispatch event; a callback claim is
		// scheduled the same way, so both kinds interleave identically.
		if w.p != nil {
			w.p.unpark()
		} else {
			r.env.schedule(r.env.now, w.fn)
		}
		return
	}
	if r.inUse == 0 {
		panic("sim: Release without Acquire")
	}
	r.inUse--
}

// Use runs fn while holding one unit of the resource.
func (r *Resource) Use(p *Proc, fn func()) {
	r.Acquire(p)
	defer r.Release()
	fn()
}

// HoldFor occupies one unit of the resource for d virtual nanoseconds: the
// standard pattern for a store-and-forward hop or a disk transfer.
func (r *Resource) HoldFor(p *Proc, d Duration) {
	r.Acquire(p)
	p.Sleep(d)
	r.Release()
}

// HoldForThen occupies one unit for d virtual nanoseconds and then calls fn,
// all as pure events: the zero-goroutine counterpart of HoldFor, used for
// store-and-forward hops whose initiator has no process of its own (network
// message delivery). The event sequencing exactly mirrors a process calling
// HoldFor — acquire (queue if saturated), sleep d, release, continue — so
// callback and process claims contending for one resource produce identical
// schedules.
func (r *Resource) HoldForThen(d Duration, fn func()) {
	r.AcquireThen(func() {
		r.env.After(d, func() {
			r.Release()
			fn()
		})
	})
}

// InUse reports the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen reports the number of blocked waiters.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// Mailbox is an unbounded FIFO of messages with blocking receive. Sends
// never block (use a Resource to model transmission time); receives block
// until a message arrives. Multiple receivers are served in FIFO order.
type Mailbox[T any] struct {
	env   *Env
	items []T
	recvq []*Proc
}

// NewMailbox returns an empty mailbox bound to env.
func NewMailbox[T any](env *Env) *Mailbox[T] {
	return &Mailbox[T]{env: env}
}

// Put deposits v and wakes one waiting receiver if present. Put may be
// called from a process or from a pure scheduled event.
func (m *Mailbox[T]) Put(v T) {
	m.items = append(m.items, v)
	if len(m.recvq) > 0 {
		w := m.recvq[0]
		copy(m.recvq, m.recvq[1:])
		m.recvq = m.recvq[:len(m.recvq)-1]
		w.unpark()
	}
}

// Get removes and returns the oldest message, blocking p until one exists.
func (m *Mailbox[T]) Get(p *Proc) T {
	for len(m.items) == 0 {
		m.recvq = append(m.recvq, p)
		p.park()
	}
	v := m.items[0]
	copy(m.items, m.items[1:])
	var zero T
	m.items[len(m.items)-1] = zero
	m.items = m.items[:len(m.items)-1]
	return v
}

// TryGet removes and returns the oldest message without blocking; ok is
// false when the mailbox is empty.
func (m *Mailbox[T]) TryGet() (v T, ok bool) {
	if len(m.items) == 0 {
		return v, false
	}
	v = m.items[0]
	copy(m.items, m.items[1:])
	var zero T
	m.items[len(m.items)-1] = zero
	m.items = m.items[:len(m.items)-1]
	return v, true
}

// Len reports the number of queued messages.
func (m *Mailbox[T]) Len() int { return len(m.items) }

// Signal is a broadcast condition: processes Wait on it and a later Fire
// releases every current waiter at once. Fires with no waiters are not
// remembered (it is a condition variable, not a latch).
type Signal struct {
	env     *Env
	waiters []*Proc
}

// NewSignal returns a signal bound to env.
func NewSignal(env *Env) *Signal { return &Signal{env: env} }

// Wait blocks p until the next Fire.
func (s *Signal) Wait(p *Proc) {
	s.waiters = append(s.waiters, p)
	p.park()
}

// Fire wakes every process currently waiting, in wait order.
func (s *Signal) Fire() {
	ws := s.waiters
	s.waiters = nil
	for _, w := range ws {
		w.unpark()
	}
}

// Waiting reports the number of blocked processes.
func (s *Signal) Waiting() int { return len(s.waiters) }

// Latch is a one-shot gate: Open releases all present and future waiters.
type Latch struct {
	env    *Env
	open   bool
	signal *Signal
}

// NewLatch returns a closed latch.
func NewLatch(env *Env) *Latch {
	return &Latch{env: env, signal: NewSignal(env)}
}

// Wait blocks p until the latch opens; returns immediately if already open.
func (l *Latch) Wait(p *Proc) {
	if l.open {
		return
	}
	l.signal.Wait(p)
}

// Open releases all waiters; idempotent.
func (l *Latch) Open() {
	if l.open {
		return
	}
	l.open = true
	l.signal.Fire()
}

// Opened reports whether the latch has been opened.
func (l *Latch) Opened() bool { return l.open }
