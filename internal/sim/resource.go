package sim

// Resource is a FIFO server with fixed capacity, the workhorse for modelling
// contended hardware: a disk head, a network link, a CPU. Acquire blocks the
// calling process while the resource is saturated; waiters are served in
// arrival order, which keeps the simulation deterministic.
//
// A unit can be claimed two ways: by a process (Acquire/HoldFor, which park
// the caller's goroutine) or by a pure event callback (AcquireThen/
// HoldForThen, which allocate no goroutine at all). Both waiter kinds share
// one FIFO queue, so a mixed population is still served in arrival order.
type Resource struct {
	env     *Env
	cap     int
	inUse   int
	waiters []waiter
}

// waiter is one queued claim on a saturated resource: either a parked
// process or a pure event callback.
type waiter struct {
	p  *Proc
	fn func()
}

// serve resumes one waiter: a parked process via its dispatch handshake, a
// callback claim by direct invocation. Only valid inside a running event.
func (w waiter) serve(env *Env) {
	if w.p != nil {
		env.dispatch(w.p)
	} else {
		w.fn()
	}
}

// NewResource returns a resource with the given capacity (>= 1).
func NewResource(env *Env, capacity int) *Resource {
	r := &Resource{}
	r.Init(env, capacity)
	return r
}

// Init prepares a zero Resource in place: the slab-allocation twin of
// NewResource, for embedding resources by value in preallocated arrays
// (interface slabs, disk slabs). A Resource must not be copied after Init.
func (r *Resource) Init(env *Env, capacity int) {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	r.env = env
	r.cap = capacity
}

// Acquire obtains one unit of the resource, blocking p until available.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.cap {
		r.inUse++
		return
	}
	r.waiters = append(r.waiters, waiter{p: p})
	p.park()
}

// AcquireThen obtains one unit of the resource on behalf of an event chain:
// fn runs holding the unit — immediately (synchronously) when one is free,
// otherwise as a scheduled event when the queue reaches it. fn must
// eventually lead to a Release. Unlike Acquire, no process or goroutine is
// involved; this is the event-callback half of the resource API.
func (r *Resource) AcquireThen(fn func()) {
	if r.inUse < r.cap {
		r.inUse++
		fn()
		return
	}
	r.waiters = append(r.waiters, waiter{fn: fn})
}

// Release returns one unit, waking the longest-waiting claim if any.
func (r *Resource) Release() {
	if len(r.waiters) > 0 {
		w := r.waiters[0]
		copy(r.waiters, r.waiters[1:])
		r.waiters[len(r.waiters)-1] = waiter{}
		r.waiters = r.waiters[:len(r.waiters)-1]
		// The unit passes directly to the waiter; inUse unchanged. A parked
		// process resumes via its dispatch event; a callback claim is
		// scheduled the same way, so both kinds interleave identically.
		if w.p != nil {
			w.p.unpark()
		} else {
			r.env.schedule(r.env.now, w.fn)
		}
		return
	}
	if r.inUse == 0 {
		panic("sim: Release without Acquire")
	}
	r.inUse--
}

// Use runs fn while holding one unit of the resource.
func (r *Resource) Use(p *Proc, fn func()) {
	r.Acquire(p)
	defer r.Release()
	fn()
}

// HoldFor occupies one unit of the resource for d virtual nanoseconds: the
// standard pattern for a store-and-forward hop or a disk transfer.
func (r *Resource) HoldFor(p *Proc, d Duration) {
	r.Acquire(p)
	p.Sleep(d)
	r.Release()
}

// HoldForThen occupies one unit for d virtual nanoseconds and then calls fn,
// all as pure events: the zero-goroutine counterpart of HoldFor, used for
// store-and-forward hops whose initiator has no process of its own (network
// message delivery). The event sequencing exactly mirrors a process calling
// HoldFor — acquire (queue if saturated), sleep d, release, continue — so
// callback and process claims contending for one resource produce identical
// schedules.
func (r *Resource) HoldForThen(d Duration, fn func()) {
	r.AcquireThen(func() {
		r.env.After(d, func() {
			r.Release()
			fn()
		})
	})
}

// InUse reports the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen reports the number of blocked waiters.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// Mailbox is an unbounded FIFO of messages with blocking receive. Sends
// never block (use a Resource to model transmission time); receives block
// until a message arrives. Multiple receivers are served in FIFO order.
//
// Like Resource, a Mailbox serves two kinds of receiver through one FIFO
// queue: processes (Get, which parks the caller) and event callbacks
// (GetThen, which allocate no goroutine). Wake-ups are batched: however many
// messages arrive at one instant, the mailbox schedules at most one drain
// event, which serves every (message, receiver) pair in FIFO order — the
// sequencing is identical to the retired one-wake-event-per-Put scheme
// because those wake events carried consecutive sequence numbers with
// nothing schedulable between them.
type Mailbox[T any] struct {
	env      *Env
	items    []T
	recvq    []mboxWaiter[T]
	draining bool
	drainFn  func() // bound drain method, allocated once in Init
}

// mboxWaiter is one queued receiver: a parked process (which pops the item
// itself when redispatched, via Get's re-check loop) or a one-shot callback
// (to which the drain hands the item directly).
type mboxWaiter[T any] struct {
	p  *Proc
	fn func(T)
}

// NewMailbox returns an empty mailbox bound to env.
func NewMailbox[T any](env *Env) *Mailbox[T] {
	m := &Mailbox[T]{}
	m.Init(env)
	return m
}

// Init prepares a zero Mailbox in place: the slab-allocation twin of
// NewMailbox, for preallocated per-node port arrays. A Mailbox must not be
// copied after Init.
func (m *Mailbox[T]) Init(env *Env) {
	m.env = env
	m.drainFn = m.drain
}

// Put deposits v and, if receivers are waiting, schedules the drain event
// (at most one pending at a time). Put may be called from a process or from
// a pure scheduled event.
func (m *Mailbox[T]) Put(v T) {
	m.items = append(m.items, v)
	if len(m.recvq) > 0 && !m.draining {
		m.draining = true
		m.env.schedule(m.env.now, m.drainFn)
	}
}

// drain serves queued (message, receiver) pairs in FIFO order until either
// runs out. A redispatched process consumes its message inside Get (and may
// re-queue itself or deposit more messages while the drain runs); a callback
// receiver is handed the message directly. Both paths advance the same
// queues, so the loop terminates.
func (m *Mailbox[T]) drain() {
	m.draining = false
	for len(m.items) > 0 && len(m.recvq) > 0 {
		w := m.recvq[0]
		copy(m.recvq, m.recvq[1:])
		m.recvq[len(m.recvq)-1] = mboxWaiter[T]{}
		m.recvq = m.recvq[:len(m.recvq)-1]
		if w.p != nil {
			m.env.dispatch(w.p)
			continue
		}
		w.fn(m.pop())
	}
}

// pop removes and returns the oldest message; items must be non-empty.
func (m *Mailbox[T]) pop() T {
	v := m.items[0]
	copy(m.items, m.items[1:])
	var zero T
	m.items[len(m.items)-1] = zero
	m.items = m.items[:len(m.items)-1]
	return v
}

// Get removes and returns the oldest message, blocking p until one exists.
func (m *Mailbox[T]) Get(p *Proc) T {
	for len(m.items) == 0 {
		m.recvq = append(m.recvq, mboxWaiter[T]{p: p})
		p.park()
	}
	return m.pop()
}

// GetThen receives one message on behalf of an event chain: fn runs with the
// oldest message — immediately (synchronously) when one is queued, matching
// a process Get that finds the mailbox non-empty — otherwise when the drain
// reaches this receiver. The registration is one-shot: a server loop re-arms
// by calling GetThen again from inside fn, which exactly mirrors a dispatch
// process looping back into Get (including consuming a burst of queued
// messages within one drain, as the process loop consumed them within one
// wake).
func (m *Mailbox[T]) GetThen(fn func(T)) {
	if len(m.items) > 0 {
		fn(m.pop())
		return
	}
	m.recvq = append(m.recvq, mboxWaiter[T]{fn: fn})
}

// TryGet removes and returns the oldest message without blocking; ok is
// false when the mailbox is empty.
func (m *Mailbox[T]) TryGet() (v T, ok bool) {
	if len(m.items) == 0 {
		return v, false
	}
	return m.pop(), true
}

// Len reports the number of queued messages.
func (m *Mailbox[T]) Len() int { return len(m.items) }

// Signal is a broadcast condition: processes Wait (or event chains WaitThen)
// on it and a later Fire releases every current waiter at once. Fires with
// no waiters are not remembered (it is a condition variable, not a latch).
type Signal struct {
	env     *Env
	waiters []waiter
}

// NewSignal returns a signal bound to env.
func NewSignal(env *Env) *Signal { return &Signal{env: env} }

// Wait blocks p until the next Fire.
func (s *Signal) Wait(p *Proc) {
	s.waiters = append(s.waiters, waiter{p: p})
	p.park()
}

// WaitThen registers fn to run at the next Fire: the event-callback half of
// the signal API. Like process waiters, callbacks are released in wait
// order.
func (s *Signal) WaitThen(fn func()) {
	s.waiters = append(s.waiters, waiter{fn: fn})
}

// Fire wakes every process and callback currently waiting, in wait order,
// through a single scheduled drain event. The batched drain is sequencing-
// identical to the retired one-wake-event-per-waiter scheme: those unpark
// events carried consecutive sequence numbers assigned inside Fire's loop,
// so nothing could ever be scheduled between them.
func (s *Signal) Fire() {
	ws := s.waiters
	s.waiters = nil
	if len(ws) == 0 {
		return
	}
	s.env.schedule(s.env.now, func() {
		for _, w := range ws {
			w.serve(s.env)
		}
	})
}

// Waiting reports the number of blocked waiters.
func (s *Signal) Waiting() int { return len(s.waiters) }

// Latch is a one-shot gate: Open releases all present and future waiters.
type Latch struct {
	env    *Env
	open   bool
	signal *Signal
}

// NewLatch returns a closed latch.
func NewLatch(env *Env) *Latch {
	return &Latch{env: env, signal: NewSignal(env)}
}

// Wait blocks p until the latch opens; returns immediately if already open.
func (l *Latch) Wait(p *Proc) {
	if l.open {
		return
	}
	l.signal.Wait(p)
}

// WaitThen runs fn when the latch opens — synchronously if already open,
// mirroring a process Wait that falls straight through.
func (l *Latch) WaitThen(fn func()) {
	if l.open {
		fn()
		return
	}
	l.signal.WaitThen(fn)
}

// Open releases all waiters; idempotent.
func (l *Latch) Open() {
	if l.open {
		return
	}
	l.open = true
	l.signal.Fire()
}

// Opened reports whether the latch has been opened.
func (l *Latch) Opened() bool { return l.open }
