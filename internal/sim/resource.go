package sim

// Resource is a FIFO server with fixed capacity, the workhorse for modelling
// contended hardware: a disk head, a network link, a CPU. Acquire blocks the
// calling process while the resource is saturated; waiters are served in
// arrival order, which keeps the simulation deterministic.
type Resource struct {
	env     *Env
	cap     int
	inUse   int
	waiters []*Proc
}

// NewResource returns a resource with the given capacity (>= 1).
func NewResource(env *Env, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{env: env, cap: capacity}
}

// Acquire obtains one unit of the resource, blocking p until available.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.cap {
		r.inUse++
		return
	}
	r.waiters = append(r.waiters, p)
	p.park()
}

// Release returns one unit, waking the longest-waiting process if any.
func (r *Resource) Release() {
	if len(r.waiters) > 0 {
		w := r.waiters[0]
		copy(r.waiters, r.waiters[1:])
		r.waiters = r.waiters[:len(r.waiters)-1]
		w.unpark() // unit passes directly to the waiter; inUse unchanged
		return
	}
	if r.inUse == 0 {
		panic("sim: Release without Acquire")
	}
	r.inUse--
}

// Use runs fn while holding one unit of the resource.
func (r *Resource) Use(p *Proc, fn func()) {
	r.Acquire(p)
	defer r.Release()
	fn()
}

// HoldFor occupies one unit of the resource for d virtual nanoseconds: the
// standard pattern for a store-and-forward hop or a disk transfer.
func (r *Resource) HoldFor(p *Proc, d Duration) {
	r.Acquire(p)
	p.Sleep(d)
	r.Release()
}

// InUse reports the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen reports the number of blocked waiters.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// Mailbox is an unbounded FIFO of messages with blocking receive. Sends
// never block (use a Resource to model transmission time); receives block
// until a message arrives. Multiple receivers are served in FIFO order.
type Mailbox[T any] struct {
	env   *Env
	items []T
	recvq []*Proc
}

// NewMailbox returns an empty mailbox bound to env.
func NewMailbox[T any](env *Env) *Mailbox[T] {
	return &Mailbox[T]{env: env}
}

// Put deposits v and wakes one waiting receiver if present. Put may be
// called from a process or from a pure scheduled event.
func (m *Mailbox[T]) Put(v T) {
	m.items = append(m.items, v)
	if len(m.recvq) > 0 {
		w := m.recvq[0]
		copy(m.recvq, m.recvq[1:])
		m.recvq = m.recvq[:len(m.recvq)-1]
		w.unpark()
	}
}

// Get removes and returns the oldest message, blocking p until one exists.
func (m *Mailbox[T]) Get(p *Proc) T {
	for len(m.items) == 0 {
		m.recvq = append(m.recvq, p)
		p.park()
	}
	v := m.items[0]
	copy(m.items, m.items[1:])
	var zero T
	m.items[len(m.items)-1] = zero
	m.items = m.items[:len(m.items)-1]
	return v
}

// TryGet removes and returns the oldest message without blocking; ok is
// false when the mailbox is empty.
func (m *Mailbox[T]) TryGet() (v T, ok bool) {
	if len(m.items) == 0 {
		return v, false
	}
	v = m.items[0]
	copy(m.items, m.items[1:])
	var zero T
	m.items[len(m.items)-1] = zero
	m.items = m.items[:len(m.items)-1]
	return v, true
}

// Len reports the number of queued messages.
func (m *Mailbox[T]) Len() int { return len(m.items) }

// Signal is a broadcast condition: processes Wait on it and a later Fire
// releases every current waiter at once. Fires with no waiters are not
// remembered (it is a condition variable, not a latch).
type Signal struct {
	env     *Env
	waiters []*Proc
}

// NewSignal returns a signal bound to env.
func NewSignal(env *Env) *Signal { return &Signal{env: env} }

// Wait blocks p until the next Fire.
func (s *Signal) Wait(p *Proc) {
	s.waiters = append(s.waiters, p)
	p.park()
}

// Fire wakes every process currently waiting, in wait order.
func (s *Signal) Fire() {
	ws := s.waiters
	s.waiters = nil
	for _, w := range ws {
		w.unpark()
	}
}

// Waiting reports the number of blocked processes.
func (s *Signal) Waiting() int { return len(s.waiters) }

// Latch is a one-shot gate: Open releases all present and future waiters.
type Latch struct {
	env    *Env
	open   bool
	signal *Signal
}

// NewLatch returns a closed latch.
func NewLatch(env *Env) *Latch {
	return &Latch{env: env, signal: NewSignal(env)}
}

// Wait blocks p until the latch opens; returns immediately if already open.
func (l *Latch) Wait(p *Proc) {
	if l.open {
		return
	}
	l.signal.Wait(p)
}

// Open releases all waiters; idempotent.
func (l *Latch) Open() {
	if l.open {
		return
	}
	l.open = true
	l.signal.Fire()
}

// Opened reports whether the latch has been opened.
func (l *Latch) Opened() bool { return l.open }
