// Package sim is a deterministic discrete-event simulation (DES) kernel.
//
// It provides a virtual clock, an event queue ordered by (time, sequence),
// goroutine-backed simulated processes in the style of process-oriented
// simulators (SimPy, CSIM), FIFO resources, mailboxes, and a seeded random
// number generator. Exactly one goroutine — either the scheduler or a single
// simulated process — runs at any instant, so simulations are fully
// deterministic for a given seed and program.
//
// All other substrate packages (network, disks, file systems, MPI) are built
// on this kernel; virtual time is an int64 nanosecond count.
package sim
