package sim

import (
	"testing"
)

// These tests pin down the batched wake path: Mailbox.Put, Signal.Fire, and
// WaitGroup.Add-to-zero schedule one drain event that serves every waiter in
// FIFO order, where the retired scheme scheduled one wake event per waiter.
// The batching is only sound if arrival order survives — across bursts,
// across mixed process/callback waiter populations, and across waiters that
// re-register from inside their own wake.

// TestBatchedWakeMailboxFIFO delivers a same-instant burst to several parked
// receivers: messages must map to receivers in registration order, through
// the single drain event.
func TestBatchedWakeMailboxFIFO(t *testing.T) {
	env := NewEnv(1)
	mb := NewMailbox[int](env)
	var order []int // receiver index in wake order
	var vals []int  // message seen by that receiver
	for i := 0; i < 3; i++ {
		i := i
		env.Go("recv", func(p *Proc) {
			v := mb.Get(p)
			order = append(order, i)
			vals = append(vals, v)
		})
	}
	env.Go("send", func(p *Proc) {
		p.Sleep(5)
		mb.Put(10)
		mb.Put(20)
		mb.Put(30)
		mb.Put(40) // one more than receivers; must stay queued
	})
	env.Run()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("wake order %v, want [0 1 2]", order)
	}
	if vals[0] != 10 || vals[1] != 20 || vals[2] != 30 {
		t.Fatalf("values %v, want [10 20 30]", vals)
	}
	if mb.Len() != 1 {
		t.Fatalf("queued leftovers = %d, want 1", mb.Len())
	}
}

// TestBatchedWakeMailboxMixedWaiters interleaves parked processes and
// GetThen callbacks in one receive queue: a burst must serve both kinds in
// strict arrival order.
func TestBatchedWakeMailboxMixedWaiters(t *testing.T) {
	env := NewEnv(1)
	mb := NewMailbox[int](env)
	var got []string
	env.Go("p0", func(p *Proc) {
		v := mb.Get(p)
		got = append(got, "p0", itoa(v))
	})
	env.Go("arm", func(p *Proc) {
		// Registered second, after p0 has parked (procs spawn in order).
		mb.GetThen(func(v int) { got = append(got, "cb1", itoa(v)) })
	})
	env.Go("p2", func(p *Proc) {
		p.Sleep(1) // register third, strictly after the callback
		v := mb.Get(p)
		got = append(got, "p2", itoa(v))
	})
	env.Go("send", func(p *Proc) {
		p.Sleep(5)
		mb.Put(1)
		mb.Put(2)
		mb.Put(3)
	})
	env.Run()
	want := []string{"p0", "1", "cb1", "2", "p2", "3"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// TestBatchedWakeSignalMixedWaiters fires one broadcast at a mixed
// process/callback waiter population: release order must equal wait order.
func TestBatchedWakeSignalMixedWaiters(t *testing.T) {
	env := NewEnv(1)
	sig := NewSignal(env)
	var got []string
	env.Go("p0", func(p *Proc) {
		sig.Wait(p)
		got = append(got, "p0")
	})
	env.Go("arm", func(p *Proc) {
		sig.WaitThen(func() { got = append(got, "cb1") })
	})
	env.Go("p2", func(p *Proc) {
		p.Sleep(1)
		sig.Wait(p)
		got = append(got, "p2")
	})
	env.Go("firer", func(p *Proc) {
		p.Sleep(5)
		sig.Fire()
	})
	env.Run()
	want := []string{"p0", "cb1", "p2"}
	if len(got) != len(want) {
		t.Fatalf("wake order %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("wake order %v, want %v", got, want)
		}
	}
}

// TestBatchedWakeSignalReWait re-registers a waiter from inside its own
// wake: the drain serves the captured population only, so the re-wait must
// land in the next Fire, not loop inside the current drain.
func TestBatchedWakeSignalReWait(t *testing.T) {
	env := NewEnv(1)
	sig := NewSignal(env)
	wakes := 0
	env.Go("w", func(p *Proc) {
		sig.Wait(p)
		wakes++
		sig.Wait(p)
		wakes++
	})
	env.Go("firer", func(p *Proc) {
		p.Sleep(5)
		sig.Fire()
		if sig.Waiting() != 0 {
			t.Error("waiter re-registered before the drain ran")
		}
		p.Sleep(5)
		sig.Fire()
	})
	env.Run()
	if wakes != 2 {
		t.Fatalf("wakes = %d, want 2 (one per Fire)", wakes)
	}
}

// TestBatchedWakeResourceMixedWaiters queues processes and AcquireThen
// callbacks behind a saturated unit resource: the unit must pass through
// the mixed queue in strict arrival order.
func TestBatchedWakeResourceMixedWaiters(t *testing.T) {
	env := NewEnv(1)
	res := NewResource(env, 1)
	var got []string
	env.Go("holder", func(p *Proc) {
		res.Acquire(p)
		p.Sleep(10)
		res.Release()
	})
	env.Go("p0", func(p *Proc) {
		p.Sleep(1)
		res.Acquire(p)
		got = append(got, "p0")
		p.Sleep(1)
		res.Release()
	})
	env.Go("arm", func(p *Proc) {
		p.Sleep(2)
		res.AcquireThen(func() {
			got = append(got, "cb1")
			env.After(1, res.Release)
		})
	})
	env.Go("p2", func(p *Proc) {
		p.Sleep(3)
		res.Acquire(p)
		got = append(got, "p2")
		res.Release()
	})
	env.Run()
	want := []string{"p0", "cb1", "p2"}
	if len(got) != len(want) {
		t.Fatalf("grant order %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grant order %v, want %v", got, want)
		}
	}
}

// TestBatchedWakeWaitGroupMixedWaiters parks processes and WaitThen
// callbacks on one WaitGroup: the count reaching zero must release the whole
// mixed population in wait order via one drain.
func TestBatchedWakeWaitGroupMixedWaiters(t *testing.T) {
	env := NewEnv(1)
	wg := NewWaitGroup(env)
	wg.Add(2)
	var got []string
	var at Time
	env.Go("p0", func(p *Proc) {
		wg.Wait(p)
		got = append(got, "p0")
		at = p.Now()
	})
	env.Go("arm", func(p *Proc) {
		wg.WaitThen(func() { got = append(got, "cb1") })
	})
	env.Go("p2", func(p *Proc) {
		p.Sleep(1)
		wg.Wait(p)
		got = append(got, "p2")
	})
	env.Go("done", func(p *Proc) {
		p.Sleep(5)
		wg.Done()
		wg.Done()
	})
	env.Run()
	want := []string{"p0", "cb1", "p2"}
	if len(got) != len(want) {
		t.Fatalf("release order %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("release order %v, want %v", got, want)
		}
	}
	if at != 5 {
		t.Fatalf("released at %v, want 5", at)
	}
	// Released to zero: a fresh WaitThen must run synchronously.
	ran := false
	wg.WaitThen(func() { ran = true })
	if !ran {
		t.Fatal("WaitThen on settled WaitGroup did not run synchronously")
	}
}

// TestBatchedWakeGetThenReArm re-arms a GetThen handler from inside its own
// callback: a same-instant burst must be consumed inline in FIFO order,
// exactly as a dispatch process looping Get would consume it within one
// wake.
func TestBatchedWakeGetThenReArm(t *testing.T) {
	env := NewEnv(1)
	mb := NewMailbox[int](env)
	var got []int
	var times []Time
	var arm func()
	arm = func() {
		mb.GetThen(func(v int) {
			got = append(got, v)
			times = append(times, env.Now())
			arm()
		})
	}
	arm()
	env.Go("send", func(p *Proc) {
		p.Sleep(7)
		mb.Put(1)
		mb.Put(2)
		mb.Put(3)
	})
	env.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v, want [1 2 3]", got)
	}
	for _, at := range times {
		if at != 7 {
			t.Fatalf("burst consumed at %v, want all at 7", times)
		}
	}
	if mb.Len() != 0 {
		t.Fatalf("leftover messages = %d", mb.Len())
	}
}

// itoa avoids importing strconv for two-character test labels.
func itoa(v int) string {
	if v < 0 || v > 9 {
		return "?"
	}
	return string(rune('0' + v))
}
