package trace

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"runtime"
	"sync"
)

// Parallel block codec. The binary format's block framing is a natural
// parallelism boundary: blocks are self-contained (length, CRC, optionally
// compressed payload), so compressing and decoding different blocks are
// independent. ParallelBinaryWriter runs the expensive per-block work
// (flate, CRC) on a worker pool and commits blocks to the underlying writer
// in submission order, producing output byte-identical to the serial
// BinaryWriter. ParallelBinaryReader reads framed blocks ahead of the
// consumer and decodes them on a worker pool, again delivering records in
// stream order. Each worker reuses its flate state across blocks, so even
// with a single worker the codec beats the serial path, which pays a fresh
// compressor allocation per block.
//
// Memory in both directions is bounded by O(workers × block size): the job
// channels are fixed-capacity, so a slow disk or a slow consumer
// back-pressures the pool instead of ballooning the heap.

// defaultWorkers resolves a worker-count knob.
func defaultWorkers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// --- writer ---

// encodeJob is one block making its way through the worker pool.
type encodeJob struct {
	payload []byte // varint-encoded records, not yet compressed
	framed  []byte // len+crc header and (possibly compressed) payload
	err     error
	ready   chan struct{}
}

// ParallelBinaryWriter is a Sink producing the binary trace format with the
// per-block compression and checksumming fanned out across a worker pool.
// Output is byte-identical to BinaryWriter with the same options. Close
// must be called to flush the final block and join the pool.
type ParallelBinaryWriter struct {
	opts    BinaryOptions
	buf     bytes.Buffer
	inBlock int

	jobs  chan *encodeJob
	order chan *encodeJob
	done  chan struct{}

	mu     sync.Mutex
	err    error
	n      int64
	blocks int64

	closed bool
}

// NewParallelBinaryWriter returns a writer compressing and framing blocks
// on `workers` goroutines (<=0 selects GOMAXPROCS). Close must be called.
func NewParallelBinaryWriter(w io.Writer, opts BinaryOptions, workers int) *ParallelBinaryWriter {
	if opts.RecordsPerBlock <= 0 {
		opts.RecordsPerBlock = 512
	}
	workers = defaultWorkers(workers)
	p := &ParallelBinaryWriter{
		opts:  opts,
		jobs:  make(chan *encodeJob, workers),
		order: make(chan *encodeJob, 2*workers),
		done:  make(chan struct{}),
	}
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	go p.committer(w)
	return p
}

// worker frames blocks, reusing one flate compressor across all of them.
func (p *ParallelBinaryWriter) worker() {
	var fw *flate.Writer
	var cb bytes.Buffer
	if p.opts.Compress {
		fw, _ = flate.NewWriter(io.Discard, flate.BestSpeed)
	}
	for job := range p.jobs {
		job.framed, job.err = frameBlockReusing(job.payload, fw, &cb)
		job.payload = nil
		close(job.ready)
	}
}

// frameBlockReusing is frameBlock with caller-owned compressor state; the
// returned frame does not alias cb.
func frameBlockReusing(payload []byte, fw *flate.Writer, cb *bytes.Buffer) ([]byte, error) {
	if fw != nil {
		cb.Reset()
		fw.Reset(cb)
		if _, err := fw.Write(payload); err != nil {
			return nil, err
		}
		if err := fw.Close(); err != nil {
			return nil, err
		}
		payload = cb.Bytes()
	}
	framed := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(framed[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(framed[4:], crc32.ChecksumIEEE(payload))
	copy(framed[8:], payload)
	return framed, nil
}

// committer writes the stream header and then blocks in submission order.
func (p *ParallelBinaryWriter) committer(w io.Writer) {
	defer close(p.done)
	var flags byte
	if p.opts.Compress {
		flags |= FlagCompressed
	}
	if p.opts.Anonymized {
		flags |= FlagAnonymized
	}
	if p.opts.Spans {
		flags |= FlagSpans
	}
	hdr := append(binaryMagic[:], flags)
	n, err := w.Write(hdr)
	p.mu.Lock()
	p.n += int64(n)
	if err != nil {
		p.err = err
	}
	p.mu.Unlock()
	for job := range p.order {
		<-job.ready
		p.mu.Lock()
		failed := p.err != nil
		if !failed && job.err != nil {
			p.err = job.err
			failed = true
		}
		p.mu.Unlock()
		if failed {
			continue // drain remaining jobs so Close does not deadlock
		}
		n, err := w.Write(job.framed)
		p.mu.Lock()
		p.n += int64(n)
		p.blocks++
		if err != nil {
			p.err = err
		}
		p.mu.Unlock()
	}
}

// sticky reports the first error seen anywhere in the pipeline.
func (p *ParallelBinaryWriter) sticky() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// Write encodes one record into the pending block, submitting the block to
// the pool when the threshold is reached. Varint encoding is cheap and
// stays on the caller's goroutine; compression and CRC do not.
func (p *ParallelBinaryWriter) Write(r *Record) error {
	if err := p.sticky(); err != nil {
		return err
	}
	encodeRecord(&p.buf, r, p.opts.Spans)
	p.inBlock++
	if p.inBlock >= p.opts.RecordsPerBlock {
		p.submit()
	}
	return p.sticky()
}

// submit hands the pending block's payload to the pool.
func (p *ParallelBinaryWriter) submit() {
	if p.buf.Len() == 0 {
		return
	}
	payload := make([]byte, p.buf.Len())
	copy(payload, p.buf.Bytes())
	p.buf.Reset()
	p.inBlock = 0
	job := &encodeJob{payload: payload, ready: make(chan struct{})}
	p.order <- job
	p.jobs <- job
}

// Flush submits any partial block to the pool without waiting for it to
// commit. Unlike the serial writer it does not guarantee the bytes have
// reached the underlying writer when it returns; Close does.
func (p *ParallelBinaryWriter) Flush() error {
	p.submit()
	return p.sticky()
}

// Close flushes the final block, joins the pool, and returns the first
// error encountered anywhere in the pipeline.
func (p *ParallelBinaryWriter) Close() error {
	if p.closed {
		return p.sticky()
	}
	p.closed = true
	p.submit()
	close(p.jobs)
	close(p.order)
	<-p.done
	return p.sticky()
}

// BytesWritten reports bytes committed to the underlying writer so far.
func (p *ParallelBinaryWriter) BytesWritten() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.n
}

// BlocksWritten reports blocks committed so far (all blocks after Close).
func (p *ParallelBinaryWriter) BlocksWritten() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.blocks
}

// --- reader ---

// decodeJob is one framed block being decoded by the pool.
type decodeJob struct {
	payload []byte // expected CRC in the first 4 bytes, then the payload
	recs    []Record
	err     error // terminal error delivered in stream position
	ready   chan struct{}
}

// ParallelBinaryReader decodes the binary format with block decode
// (CRC check, decompression, varint decoding) fanned out across a worker
// pool, prefetching ahead of the consumer. Records, and any mid-stream
// corruption error, are delivered in exactly the order the serial
// BinaryReader would produce them. Close releases the pool early; draining
// to io.EOF or an error also releases it.
type ParallelBinaryReader struct {
	flags byte

	order  chan *decodeJob
	jobs   chan *decodeJob
	cancel chan struct{}

	cur    []Record
	curIdx int
	err    error // sticky terminal error (io.EOF included)

	stopOnce *sync.Once
}

// NewParallelBinaryReader wraps r for decoding with `workers` goroutines
// (<=0 selects GOMAXPROCS). A reader abandoned mid-stream (e.g. a pipeline
// that aborted on a sink error) releases its pool when garbage-collected;
// call Close to release it promptly.
func NewParallelBinaryReader(r io.Reader, workers int) *ParallelBinaryReader {
	workers = defaultWorkers(workers)
	// stopOnce and cancel are allocated apart from the reader so the GC
	// cleanup below can reference them without keeping the reader alive.
	cancel := make(chan struct{})
	stopOnce := new(sync.Once)
	p := &ParallelBinaryReader{
		order:    make(chan *decodeJob, 2*workers),
		jobs:     make(chan *decodeJob, workers),
		cancel:   cancel,
		stopOnce: stopOnce,
	}
	runtime.AddCleanup(p, func(struct{}) {
		stopOnce.Do(func() { close(cancel) })
	}, struct{}{})
	var hdr [9]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		p.err = fmt.Errorf("%w: short header: %v", ErrCorrupt, err)
	} else if !bytes.Equal(hdr[:8], binaryMagic[:]) {
		p.err = fmt.Errorf("%w: bad magic", ErrCorrupt)
	} else {
		p.flags = hdr[8]
	}
	if p.err != nil {
		close(p.jobs)
		close(p.order)
		return p
	}
	compressed := p.flags&FlagCompressed != 0
	spans := p.flags&FlagSpans != 0
	for i := 0; i < workers; i++ {
		go p.worker(compressed, spans)
	}
	go p.fetch(r)
	return p
}

// fetch reads framed blocks sequentially and fans payloads out to the pool,
// preserving submission order for the consumer.
func (p *ParallelBinaryReader) fetch(r io.Reader) {
	defer close(p.jobs)
	defer close(p.order)
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err != io.EOF {
				p.deliverErr(fmt.Errorf("%w: short block header", ErrCorrupt))
			}
			return
		}
		plen := binary.LittleEndian.Uint32(hdr[0:])
		want := binary.LittleEndian.Uint32(hdr[4:])
		if plen > 1<<30 {
			p.deliverErr(fmt.Errorf("%w: unreasonable block size %d", ErrCorrupt, plen))
			return
		}
		payload := make([]byte, 4+plen)
		binary.LittleEndian.PutUint32(payload[0:], want)
		if _, err := io.ReadFull(r, payload[4:]); err != nil {
			p.deliverErr(fmt.Errorf("%w: truncated block", ErrCorrupt))
			return
		}
		job := &decodeJob{payload: payload, ready: make(chan struct{})}
		select {
		case p.order <- job:
		case <-p.cancel:
			return
		}
		select {
		case p.jobs <- job:
		case <-p.cancel:
			// The job is already queued for the consumer but will never
			// reach a worker: resolve it empty here, or a post-Close drain
			// would block forever on its ready channel.
			close(job.ready)
			return
		}
	}
}

// deliverErr enqueues a terminal error in stream position.
func (p *ParallelBinaryReader) deliverErr(err error) {
	job := &decodeJob{err: err, ready: make(chan struct{})}
	close(job.ready)
	select {
	case p.order <- job:
	case <-p.cancel:
	}
}

// worker decodes blocks, reusing one flate decompressor and one scratch
// buffer across all of them.
func (p *ParallelBinaryReader) worker(compressed, spans bool) {
	var fr io.ReadCloser
	var db bytes.Buffer
	if compressed {
		fr = flate.NewReader(bytes.NewReader(nil))
	}
	for job := range p.jobs {
		job.recs, job.err = decodeBlock(job.payload, fr, &db, spans)
		job.payload = nil
		close(job.ready)
	}
}

// decodeBlock verifies and decodes one block payload prefixed with its
// expected CRC. fr is a reusable flate reader (nil for uncompressed
// streams); db is reusable decompression scratch. The returned records do
// not alias either.
func decodeBlock(crcAndPayload []byte, fr io.ReadCloser, db *bytes.Buffer, spans bool) ([]Record, error) {
	want := binary.LittleEndian.Uint32(crcAndPayload[0:])
	payload := crcAndPayload[4:]
	if crc32.ChecksumIEEE(payload) != want {
		return nil, fmt.Errorf("%w: block CRC mismatch", ErrCorrupt)
	}
	if fr != nil {
		if err := fr.(flate.Resetter).Reset(bytes.NewReader(payload), nil); err != nil {
			return nil, fmt.Errorf("%w: decompress: %v", ErrCorrupt, err)
		}
		db.Reset()
		if _, err := db.ReadFrom(fr); err != nil {
			return nil, fmt.Errorf("%w: decompress: %v", ErrCorrupt, err)
		}
		payload = db.Bytes()
	}
	br := bytes.NewReader(payload)
	var recs []Record
	for br.Len() > 0 {
		rec, err := decodeRecord(br, spans)
		if err != nil {
			return recs, fmt.Errorf("%w: record decode: %v", ErrCorrupt, err)
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

// Flags returns the stream flags (valid immediately after construction).
func (p *ParallelBinaryReader) Flags() byte { return p.flags }

// Next returns the next record, io.EOF at end of stream, or the corruption
// error of the first bad block — after every record of the blocks before it.
func (p *ParallelBinaryReader) Next() (Record, error) {
	for {
		if p.curIdx < len(p.cur) {
			rec := p.cur[p.curIdx]
			p.curIdx++
			return rec, nil
		}
		if p.err != nil {
			return Record{}, p.err
		}
		job, ok := <-p.order
		if !ok {
			p.err = io.EOF
			p.release()
			return Record{}, io.EOF
		}
		<-job.ready
		p.cur, p.curIdx = job.recs, 0
		if job.err != nil {
			// Yield the block's decoded prefix first, then the error.
			p.err = job.err
			p.release()
			continue
		}
	}
}

// release stops the fetcher and lets the pool drain.
func (p *ParallelBinaryReader) release() {
	p.stopOnce.Do(func() { close(p.cancel) })
}

// Close stops prefetching and releases the worker pool. Records already
// buffered remain readable; it is safe to call at any time.
func (p *ParallelBinaryReader) Close() error {
	p.release()
	return nil
}

// ReadAll drains the stream, returning records decoded before any error.
func (p *ParallelBinaryReader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		r, err := p.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
}
