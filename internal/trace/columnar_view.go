package trace

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"strconv"

	"iotaxo/internal/sim"
)

// BlockView is a decoded v2 block exposing its columns without materializing
// records. Construction only slices the payload into sections; each column
// decodes lazily on first access and is cached, so a consumer that needs
// only times and byte counts never touches paths or args. String columns
// resolve through the block dictionary, so every row referencing the same
// path shares one string — the zero-copy half of the query plane.
//
// A BlockView aliases the payload it was parsed from; the payload must not
// be mutated while the view is live.
type BlockView struct {
	count     int
	classMask uint8
	dirMask   uint8
	secs      [maxColID + 1][]byte

	dict []string

	times   []int64
	durs    []int64
	ranks   []int64
	pids    []int64
	offsets []int64
	bytesc  []int64
	uids    []int64
	gids    []int64
	spans   []int64
	parents []int64

	nodes []string
	names []string
	paths []string
	rets  []string
	args  [][]string

	allDecoded bool
}

// parseBlockView slices a (decompressed) data-block payload into its column
// sections. Sections must appear in strictly increasing ID order, dictionary
// first — the writer's layout — which makes duplicates impossible to sneak
// past validation.
func parseBlockView(payload []byte, h blockHeader) (*BlockView, error) {
	v := &BlockView{count: h.count, classMask: h.classMask, dirMask: h.dirMask}
	rest := payload
	prev := byte(0)
	for len(rest) > 0 {
		id := rest[0]
		if id == 0 || id > maxColID || id <= prev {
			return nil, fmt.Errorf("%w: bad column section id %d", ErrCorrupt, id)
		}
		prev = id
		n, sz := binary.Uvarint(rest[1:])
		if sz <= 0 || n > uint64(len(rest)-1-sz) {
			return nil, fmt.Errorf("%w: bad column section length", ErrCorrupt)
		}
		body := rest[1+sz : 1+sz+int(n)]
		v.secs[id] = body
		rest = rest[1+sz+int(n):]
	}
	return v, nil
}

// Len reports the number of records in the block.
func (v *BlockView) Len() int { return v.count }

// section returns a column's raw bytes, failing if the writer omitted it.
func (v *BlockView) section(id byte) ([]byte, error) {
	s := v.secs[id]
	if s == nil {
		return nil, fmt.Errorf("%w: missing column section %d", ErrCorrupt, id)
	}
	return s, nil
}

// ints decodes a varint column, applying the delta chain when the column was
// delta-encoded, and caches the result.
func (v *BlockView) ints(id byte, delta bool, cache *[]int64) ([]int64, error) {
	if *cache != nil {
		return *cache, nil
	}
	sec, err := v.section(id)
	if err != nil {
		return nil, err
	}
	out := make([]int64, v.count)
	var acc int64
	for i := range out {
		x, n := binary.Varint(sec)
		if n <= 0 {
			return nil, fmt.Errorf("%w: truncated column %d", ErrCorrupt, id)
		}
		sec = sec[n:]
		if delta {
			acc += x
			out[i] = acc
		} else {
			out[i] = x
		}
	}
	if len(sec) != 0 {
		return nil, fmt.Errorf("%w: trailing bytes in column %d", ErrCorrupt, id)
	}
	*cache = out
	return out, nil
}

// Dict decodes the block's string dictionary.
func (v *BlockView) Dict() ([]string, error) {
	if v.dict != nil {
		return v.dict, nil
	}
	sec, err := v.section(colDict)
	if err != nil {
		return nil, err
	}
	br := bytes.NewReader(sec)
	n, err := binary.ReadUvarint(br)
	if err != nil || n > uint64(len(sec)) {
		return nil, fmt.Errorf("%w: bad dictionary count", ErrCorrupt)
	}
	dict := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		sl, err := binary.ReadUvarint(br)
		if err != nil || sl > uint64(br.Len()) {
			return nil, fmt.Errorf("%w: truncated dictionary entry", ErrCorrupt)
		}
		b := make([]byte, sl)
		if _, err := br.Read(b); err != nil && sl > 0 {
			return nil, fmt.Errorf("%w: truncated dictionary entry", ErrCorrupt)
		}
		dict = append(dict, string(b))
	}
	if br.Len() != 0 {
		return nil, fmt.Errorf("%w: trailing bytes in dictionary", ErrCorrupt)
	}
	v.dict = dict
	return dict, nil
}

// strs decodes a dictionary-index column, resolving each row to its shared
// dictionary string.
func (v *BlockView) strs(id byte, cache *[]string) ([]string, error) {
	if *cache != nil {
		return *cache, nil
	}
	dict, err := v.Dict()
	if err != nil {
		return nil, err
	}
	sec, err := v.section(id)
	if err != nil {
		return nil, err
	}
	out := make([]string, v.count)
	for i := range out {
		x, n := binary.Uvarint(sec)
		if n <= 0 || x >= uint64(len(dict)) {
			return nil, fmt.Errorf("%w: bad dictionary index in column %d", ErrCorrupt, id)
		}
		sec = sec[n:]
		out[i] = dict[x]
	}
	if len(sec) != 0 {
		return nil, fmt.Errorf("%w: trailing bytes in column %d", ErrCorrupt, id)
	}
	*cache = out
	return out, nil
}

// Times returns the timestamp column (node-local, like Record.Time).
func (v *BlockView) Times() ([]int64, error) { return v.ints(colTimes, true, &v.times) }

// Durs returns the duration column.
func (v *BlockView) Durs() ([]int64, error) { return v.ints(colDurs, false, &v.durs) }

// Ranks returns the MPI rank column.
func (v *BlockView) Ranks() ([]int64, error) { return v.ints(colRanks, true, &v.ranks) }

// PIDs returns the process-id column.
func (v *BlockView) PIDs() ([]int64, error) { return v.ints(colPIDs, true, &v.pids) }

// Offsets returns the file-offset column.
func (v *BlockView) Offsets() ([]int64, error) { return v.ints(colOffsets, true, &v.offsets) }

// Bytes returns the byte-count column.
func (v *BlockView) Bytes() ([]int64, error) { return v.ints(colBytes, false, &v.bytesc) }

// UIDs returns the uid column.
func (v *BlockView) UIDs() ([]int64, error) { return v.ints(colUIDs, false, &v.uids) }

// Spans returns the causal-span column. Blocks written without spans omit
// the section; those decode as all zeros ("no span") rather than erroring,
// so span-less and pre-span traces stay readable.
func (v *BlockView) Spans() ([]int64, error) { return v.optInts(colSpans, &v.spans) }

// Parents returns the parent-span column, with the same tolerance for
// span-less blocks as Spans.
func (v *BlockView) Parents() ([]int64, error) { return v.optInts(colParents, &v.parents) }

// optInts decodes an optional delta-varint column, synthesizing zeros when
// the writer omitted the section.
func (v *BlockView) optInts(id byte, cache *[]int64) ([]int64, error) {
	if *cache != nil {
		return *cache, nil
	}
	if v.secs[id] == nil {
		*cache = make([]int64, v.count)
		return *cache, nil
	}
	return v.ints(id, true, cache)
}

// GIDs returns the gid column, decoded relative to the uid column.
func (v *BlockView) GIDs() ([]int64, error) {
	if v.gids != nil {
		return v.gids, nil
	}
	uids, err := v.UIDs()
	if err != nil {
		return nil, err
	}
	out, err := v.ints(colGIDs, false, &v.gids)
	if err != nil {
		return nil, err
	}
	for i := range out {
		out[i] += uids[i]
	}
	return out, nil
}

// Nodes returns the host-name column.
func (v *BlockView) Nodes() ([]string, error) { return v.strs(colNodes, &v.nodes) }

// Names returns the call-name column.
func (v *BlockView) Names() ([]string, error) { return v.strs(colNames, &v.names) }

// Paths returns the path column.
func (v *BlockView) Paths() ([]string, error) { return v.strs(colPaths, &v.paths) }

// Rets returns the formatted-return column.
func (v *BlockView) Rets() ([]string, error) { return v.strs(colRets, &v.rets) }

// classDir returns the packed class/direction column, validated.
func (v *BlockView) classDir() ([]byte, error) {
	sec, err := v.section(colClassDir)
	if err != nil {
		return nil, err
	}
	if len(sec) != v.count {
		return nil, fmt.Errorf("%w: class/dir column length", ErrCorrupt)
	}
	for _, b := range sec {
		if EventClass(b&0x0f) >= numClasses || IODir(b>>4) > DirWrite {
			return nil, fmt.Errorf("%w: bad class/dir byte", ErrCorrupt)
		}
	}
	return sec, nil
}

// Classes returns the event-class column.
func (v *BlockView) Classes() ([]EventClass, error) {
	cd, err := v.classDir()
	if err != nil {
		return nil, err
	}
	out := make([]EventClass, len(cd))
	for i, b := range cd {
		out[i] = EventClass(b & 0x0f)
	}
	return out, nil
}

// Dirs returns the I/O-direction column as recorded at write time; it equals
// recomputing Record.Direction on materialized records, decoded from one
// byte instead of the name strings.
func (v *BlockView) Dirs() ([]IODir, error) {
	cd, err := v.classDir()
	if err != nil {
		return nil, err
	}
	out := make([]IODir, len(cd))
	for i, b := range cd {
		out[i] = IODir(b >> 4)
	}
	return out, nil
}

// Args returns the per-record argument lists.
func (v *BlockView) Args() ([][]string, error) {
	if v.args != nil {
		return v.args, nil
	}
	dict, err := v.Dict()
	if err != nil {
		return nil, err
	}
	sec, err := v.section(colArgs)
	if err != nil {
		return nil, err
	}
	out := make([][]string, v.count)
	for i := range out {
		argc, n := binary.Uvarint(sec)
		if n <= 0 || argc > 1<<16 {
			return nil, fmt.Errorf("%w: bad argc", ErrCorrupt)
		}
		sec = sec[n:]
		if argc == 0 {
			continue
		}
		row := make([]string, argc)
		for j := range row {
			x, n := binary.Uvarint(sec)
			if n <= 0 {
				return nil, fmt.Errorf("%w: bad arg tag", ErrCorrupt)
			}
			sec = sec[n:]
			if x&1 == 1 {
				row[j] = strconv.FormatInt(unzigzag(x>>1), 10)
				continue
			}
			if x>>1 >= uint64(len(dict)) {
				return nil, fmt.Errorf("%w: bad dictionary index in args", ErrCorrupt)
			}
			row[j] = dict[x>>1]
		}
		out[i] = row
	}
	if len(sec) != 0 {
		return nil, fmt.Errorf("%w: trailing bytes in args column", ErrCorrupt)
	}
	v.args = out
	return out, nil
}

// decodeAll forces every column, so Record can index without rechecking.
func (v *BlockView) decodeAll() error {
	for _, f := range []func() error{
		func() error { _, err := v.Times(); return err },
		func() error { _, err := v.Durs(); return err },
		func() error { _, err := v.classDir(); return err },
		func() error { _, err := v.Ranks(); return err },
		func() error { _, err := v.PIDs(); return err },
		func() error { _, err := v.Nodes(); return err },
		func() error { _, err := v.Names(); return err },
		func() error { _, err := v.Paths(); return err },
		func() error { _, err := v.Rets(); return err },
		func() error { _, err := v.Args(); return err },
		func() error { _, err := v.Offsets(); return err },
		func() error { _, err := v.Bytes(); return err },
		func() error { _, err := v.UIDs(); return err },
		func() error { _, err := v.GIDs(); return err },
		func() error { _, err := v.Spans(); return err },
		func() error { _, err := v.Parents(); return err },
	} {
		if err := f(); err != nil {
			return err
		}
	}
	v.allDecoded = true
	return nil
}

// Record materializes row i. All columns are decoded (and cached) on first
// use; the row's strings still share the dictionary's backing.
func (v *BlockView) Record(i int) (Record, error) {
	if !v.allDecoded {
		if err := v.decodeAll(); err != nil {
			return Record{}, err
		}
	}
	if i < 0 || i >= v.count {
		return Record{}, fmt.Errorf("trace: block row %d out of range", i)
	}
	cd := v.secs[colClassDir]
	return Record{
		Time:   sim.Time(v.times[i]),
		Dur:    sim.Duration(v.durs[i]),
		Node:   v.nodes[i],
		Rank:   int(v.ranks[i]),
		PID:    int(v.pids[i]),
		Class:  EventClass(cd[i] & 0x0f),
		Name:   v.names[i],
		Args:   v.args[i],
		Ret:    v.rets[i],
		Path:   v.paths[i],
		Offset: v.offsets[i],
		Bytes:  v.bytesc[i],
		UID:    int(v.uids[i]),
		GID:    int(v.gids[i]),
		Span:   uint64(v.spans[i]),
		Parent: uint64(v.parents[i]),
	}, nil
}

// Records materializes the whole block.
func (v *BlockView) Records() ([]Record, error) {
	if err := v.decodeAll(); err != nil {
		return nil, err
	}
	out := make([]Record, v.count)
	for i := range out {
		r, err := v.Record(i)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}
