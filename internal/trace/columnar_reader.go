package trace

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"

	"iotaxo/internal/sim"
)

// --- sequential source ---

// ColumnarSource decodes a v2 stream front to back: the Source adapter used
// by OpenAuto and any consumer without random access. It verifies every
// block CRC, and when the stream carries a footer index it verifies that
// the index matches the blocks actually read and that the trailer closes
// the file; an index-less stream (a writer that Flushed but never Closed)
// simply ends at the last data block.
type ColumnarSource struct {
	r       io.Reader
	flags   byte
	started bool
	off     int64
	cur     []Record
	curIdx  int
	blocks  int64
	err     error
}

// NewColumnarSource wraps r for sequential decoding.
func NewColumnarSource(r io.Reader) *ColumnarSource { return &ColumnarSource{r: r} }

// Flags returns the stream flags after the first Next call.
func (c *ColumnarSource) Flags() byte { return c.flags }

// BlocksRead reports the number of data blocks decoded so far.
func (c *ColumnarSource) BlocksRead() int64 { return c.blocks }

// readFull reads exactly len(b) bytes, tracking the stream offset.
func (c *ColumnarSource) readFull(b []byte) error {
	n, err := io.ReadFull(c.r, b)
	c.off += int64(n)
	return err
}

func (c *ColumnarSource) readHeader() error {
	if c.started {
		return nil
	}
	c.started = true
	var hdr [columnarHeaderLen]byte
	if err := c.readFull(hdr[:]); err != nil {
		return fmt.Errorf("%w: short header: %v", ErrCorrupt, err)
	}
	if !bytes.Equal(hdr[:8], columnarMagic[:]) {
		return fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	c.flags = hdr[8]
	return nil
}

// nextBlock reads and decodes the next data block into c.cur, or returns
// io.EOF after validating the footer (when present) and end of stream.
func (c *ColumnarSource) nextBlock() error {
	var hb [blockHeaderLen]byte
	start := c.off
	if err := c.readFull(hb[:]); err != nil {
		if err == io.EOF {
			return io.EOF // index-less stream ends at a block boundary
		}
		return fmt.Errorf("%w: short block header", ErrCorrupt)
	}
	h, err := parseBlockHeader(hb[:])
	if err != nil {
		return err
	}
	stored := make([]byte, h.payloadLen)
	if err := c.readFull(stored); err != nil {
		return fmt.Errorf("%w: truncated block", ErrCorrupt)
	}
	if blockCRC(hb[:], stored) != h.crc {
		return fmt.Errorf("%w: block CRC mismatch", ErrCorrupt)
	}
	if h.kind == blockIndex {
		return c.finish(h, stored, start)
	}
	payload := stored
	if c.flags&FlagCompressed != 0 {
		out, err := io.ReadAll(flate.NewReader(bytes.NewReader(stored)))
		if err != nil {
			return fmt.Errorf("%w: decompress: %v", ErrCorrupt, err)
		}
		payload = out
	}
	v, err := parseBlockView(payload, h)
	if err != nil {
		return err
	}
	recs, err := v.Records()
	if err != nil {
		return err
	}
	c.cur, c.curIdx = recs, 0
	c.blocks++
	return nil
}

// finish validates the footer index against the blocks read, consumes the
// trailer, and requires end of stream.
func (c *ColumnarSource) finish(h blockHeader, payload []byte, indexOff int64) error {
	metas, err := parseIndexPayload(payload, columnarHeaderLen, indexOff)
	if err != nil {
		return err
	}
	if int64(len(metas)) != c.blocks {
		return fmt.Errorf("%w: index lists %d blocks, stream has %d", ErrCorrupt, len(metas), c.blocks)
	}
	var trailer [trailerLen]byte
	if err := c.readFull(trailer[:]); err != nil {
		return fmt.Errorf("%w: short trailer", ErrCorrupt)
	}
	framed := int64(binary.LittleEndian.Uint32(trailer[0:]))
	if framed != int64(blockHeaderLen+len(payload)) || !bytes.Equal(trailer[4:], columnarTail[:]) {
		return fmt.Errorf("%w: bad trailer", ErrCorrupt)
	}
	var one [1]byte
	if _, err := io.ReadFull(c.r, one[:]); err != io.EOF {
		return fmt.Errorf("%w: data after trailer", ErrCorrupt)
	}
	return io.EOF
}

// Next returns the next record or io.EOF.
func (c *ColumnarSource) Next() (Record, error) {
	if c.err != nil {
		return Record{}, c.err
	}
	if err := c.readHeader(); err != nil {
		c.err = err
		return Record{}, err
	}
	for c.curIdx >= len(c.cur) {
		if err := c.nextBlock(); err != nil {
			c.err = err
			return Record{}, err
		}
	}
	rec := c.cur[c.curIdx]
	c.curIdx++
	return rec, nil
}

// ReadAll drains the stream.
func (c *ColumnarSource) ReadAll() ([]Record, error) {
	var out []Record
	for {
		r, err := c.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
}

// --- query ---

// Query is a predicate pushed down into the columnar scan: a time window,
// a rank range, and an event-class set, all inclusive. Block pruning uses
// the index ranges; rows inside surviving blocks are filtered on the three
// filter columns alone.
type Query struct {
	TimeMin, TimeMax sim.Time
	RankMin, RankMax int
	// Classes is a bitmask over EventClass (bit i = EventClass(i)); zero
	// means every class.
	Classes uint8

	// Stats predicates, pruned via the footer index's per-block min/max
	// statistics. Blocks from files written before the stats extension
	// (HasStats == false) are conservatively decoded.
	OffsetMin, OffsetMax int64
	BytesMin             int64
	SpanMin, SpanMax     uint64
}

// MatchAll returns the query matching every record.
func MatchAll() Query {
	return Query{
		TimeMin: sim.Time(math.MinInt64), TimeMax: sim.Time(math.MaxInt64),
		RankMin: math.MinInt32, RankMax: math.MaxInt32,
		OffsetMin: math.MinInt64, OffsetMax: math.MaxInt64,
		BytesMin: math.MinInt64,
		SpanMin:  0, SpanMax: math.MaxUint64,
	}
}

// WithWindow restricts the query to records with lo <= Time <= hi.
func (q Query) WithWindow(lo, hi sim.Time) Query {
	q.TimeMin, q.TimeMax = lo, hi
	return q
}

// WithRanks restricts the query to records with lo <= Rank <= hi.
func (q Query) WithRanks(lo, hi int) Query {
	q.RankMin, q.RankMax = lo, hi
	return q
}

// WithClasses restricts the query to the given event classes.
func (q Query) WithClasses(cs ...EventClass) Query {
	for _, c := range cs {
		q.Classes |= 1 << uint(c)
	}
	return q
}

// WithOffsetRange restricts the query to records with lo <= Offset <= hi.
func (q Query) WithOffsetRange(lo, hi int64) Query {
	q.OffsetMin, q.OffsetMax = lo, hi
	return q
}

// WithMinBytes restricts the query to records moving at least n bytes.
func (q Query) WithMinBytes(n int64) Query {
	q.BytesMin = n
	return q
}

// WithSpanRange restricts the query to records with lo <= Span <= hi.
func (q Query) WithSpanRange(lo, hi uint64) Query {
	q.SpanMin, q.SpanMax = lo, hi
	return q
}

// constrainsStats reports whether any stats predicate (offset/bytes/span) is
// tighter than match-all.
func (q Query) constrainsStats() bool {
	return q.OffsetMin != math.MinInt64 || q.OffsetMax != math.MaxInt64 ||
		q.BytesMin != math.MinInt64 ||
		q.SpanMin != 0 || q.SpanMax != math.MaxUint64
}

// classOK reports whether the class passes the query's class set.
func (q Query) classOK(c EventClass) bool {
	return q.Classes == 0 || q.Classes&(1<<uint(c)) != 0
}

// Matches reports whether a materialized record satisfies the query — the
// reference semantics every pushdown path must agree with.
func (q Query) Matches(r *Record) bool {
	return r.Time >= q.TimeMin && r.Time <= q.TimeMax &&
		r.Rank >= q.RankMin && r.Rank <= q.RankMax && q.classOK(r.Class) &&
		r.Offset >= q.OffsetMin && r.Offset <= q.OffsetMax &&
		r.Bytes >= q.BytesMin &&
		r.Span >= q.SpanMin && r.Span <= q.SpanMax
}

// matchesLegacyBlock is the time/rank/class half of MatchesBlock — the
// pruning available before the footer stats extension existed.
func (q Query) matchesLegacyBlock(m BlockMeta) bool {
	return m.MaxTime >= q.TimeMin && m.MinTime <= q.TimeMax &&
		m.MaxRank >= q.RankMin && m.MinRank <= q.RankMax &&
		(q.Classes == 0 || q.Classes&m.ClassMask != 0)
}

// MatchesBlock reports whether a block's index ranges can contain a
// matching record; blocks failing it are skipped without being read. Blocks
// without stats (pre-extension files) are never pruned by stats predicates.
func (q Query) MatchesBlock(m BlockMeta) bool {
	if !q.matchesLegacyBlock(m) {
		return false
	}
	if m.HasStats {
		if m.MaxOffset < q.OffsetMin || m.MinOffset > q.OffsetMax {
			return false
		}
		if m.MaxBytes < q.BytesMin {
			return false
		}
		if m.MaxSpan < q.SpanMin || m.MinSpan > q.SpanMax {
			return false
		}
	}
	return true
}

// containsBlock reports whether every record in the block matches, letting
// the scan skip even the filter-column decode.
func (q Query) containsBlock(m BlockMeta) bool {
	if q.constrainsStats() {
		if !m.HasStats {
			return false
		}
		if m.MinOffset < q.OffsetMin || m.MaxOffset > q.OffsetMax ||
			m.MinBytes < q.BytesMin ||
			m.MinSpan < q.SpanMin || m.MaxSpan > q.SpanMax {
			return false
		}
	}
	return m.MinTime >= q.TimeMin && m.MaxTime <= q.TimeMax &&
		m.MinRank >= q.RankMin && m.MaxRank <= q.RankMax &&
		(q.Classes == 0 || m.ClassMask&^q.Classes == 0)
}

// --- indexed reader ---

// ColumnarReader serves indexed queries over a Closed v2 trace through an
// io.ReaderAt: it loads only the stream header and the footer index up
// front, then Scan reads and decodes exactly the blocks a query's ranges
// admit, fanned out over a worker pool on the pattern of parallel.go.
type ColumnarReader struct {
	r     io.ReaderAt
	size  int64
	flags byte
	index []BlockMeta
}

// NewColumnarReader opens a complete (Closed) v2 trace of the given size.
// Streams without a footer index — truncated files, or writers that never
// Closed — are rejected with ErrCorrupt; they remain readable with
// ColumnarSource.
func NewColumnarReader(r io.ReaderAt, size int64) (*ColumnarReader, error) {
	minSize := int64(columnarHeaderLen + blockHeaderLen + 1 + trailerLen)
	if size < minSize {
		return nil, fmt.Errorf("%w: too short for a columnar trace", ErrCorrupt)
	}
	var hdr [columnarHeaderLen]byte
	if _, err := r.ReadAt(hdr[:], 0); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrCorrupt, err)
	}
	if !bytes.Equal(hdr[:8], columnarMagic[:]) {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	var trailer [trailerLen]byte
	if _, err := r.ReadAt(trailer[:], size-trailerLen); err != nil {
		return nil, fmt.Errorf("%w: short trailer: %v", ErrCorrupt, err)
	}
	if !bytes.Equal(trailer[4:], columnarTail[:]) {
		return nil, fmt.Errorf("%w: missing trailer (stream not Closed?)", ErrCorrupt)
	}
	framed := int64(binary.LittleEndian.Uint32(trailer[0:]))
	idxOff := size - trailerLen - framed
	if framed < blockHeaderLen+1 || idxOff < columnarHeaderLen {
		return nil, fmt.Errorf("%w: bad index length", ErrCorrupt)
	}
	buf := make([]byte, framed)
	if _, err := r.ReadAt(buf, idxOff); err != nil {
		return nil, fmt.Errorf("%w: short index block: %v", ErrCorrupt, err)
	}
	h, err := parseBlockHeader(buf[:blockHeaderLen])
	if err != nil {
		return nil, err
	}
	payload := buf[blockHeaderLen:]
	if h.kind != blockIndex || h.payloadLen != len(payload) {
		return nil, fmt.Errorf("%w: bad index block", ErrCorrupt)
	}
	if blockCRC(buf[:blockHeaderLen], payload) != h.crc {
		return nil, fmt.Errorf("%w: index CRC mismatch", ErrCorrupt)
	}
	index, err := parseIndexPayload(payload, columnarHeaderLen, idxOff)
	if err != nil {
		return nil, err
	}
	return &ColumnarReader{r: r, size: size, flags: hdr[8], index: index}, nil
}

// Flags returns the stream flags.
func (c *ColumnarReader) Flags() byte { return c.flags }

// Index returns the footer block index; callers must not mutate it.
func (c *ColumnarReader) Index() []BlockMeta { return c.index }

// NumBlocks reports the number of data blocks in the trace.
func (c *ColumnarReader) NumBlocks() int { return len(c.index) }

// NumRecords reports the number of records in the trace, from the index.
func (c *ColumnarReader) NumRecords() int64 {
	var n int64
	for _, m := range c.index {
		n += int64(m.Count)
	}
	return n
}

// ScanStats reports what a scan touched; BlocksDecoded/BlocksTotal is the
// fraction of the file the index failed to prune.
type ScanStats struct {
	BlocksTotal    int   // data blocks in the trace
	BlocksDecoded  int   // blocks read and decoded for this query
	RecordsMatched int64 // rows passing the full predicate
	BytesRead      int64 // file bytes fetched
	// BlocksPrunedByStats counts blocks the legacy time/rank/class pruning
	// would have decoded but the footer offset/bytes/span statistics skipped.
	BlocksPrunedByStats int
}

// scanJob is one matched block moving through the scan pool.
type scanJob struct {
	meta  BlockMeta
	view  *BlockView
	rows  []int // matching row indexes
	recs  []Record
	err   error
	ready chan struct{}
}

// scanEngine fans matched blocks out to workers that read, verify, decode,
// and row-filter them, delivering results in file order.
type scanEngine struct {
	r           io.ReaderAt
	q           Query
	compressed  bool
	materialize bool

	order    chan *scanJob
	jobs     chan *scanJob
	cancel   chan struct{}
	stopOnce sync.Once

	mu    sync.Mutex
	stats ScanStats
}

// newScanEngine starts the pool over the blocks matching q.
func (c *ColumnarReader) newScanEngine(q Query, workers int, materialize bool) *scanEngine {
	workers = defaultWorkers(workers)
	e := &scanEngine{
		r:           c.r,
		q:           q,
		compressed:  c.flags&FlagCompressed != 0,
		materialize: materialize,
		order:       make(chan *scanJob, 2*workers),
		jobs:        make(chan *scanJob, workers),
		cancel:      make(chan struct{}),
	}
	var matched []BlockMeta
	for _, m := range c.index {
		if q.MatchesBlock(m) {
			matched = append(matched, m)
		} else if q.matchesLegacyBlock(m) {
			e.stats.BlocksPrunedByStats++
		}
	}
	e.stats.BlocksTotal = len(c.index)
	for i := 0; i < workers; i++ {
		go e.worker()
	}
	go e.feed(matched)
	return e
}

// feed enqueues matched blocks in file order.
func (e *scanEngine) feed(matched []BlockMeta) {
	defer close(e.jobs)
	defer close(e.order)
	for _, m := range matched {
		job := &scanJob{meta: m, ready: make(chan struct{})}
		select {
		case e.order <- job:
		case <-e.cancel:
			return
		}
		select {
		case e.jobs <- job:
		case <-e.cancel:
			// Queued for the consumer but will never reach a worker; resolve
			// it here or a post-Close drain would block on ready forever.
			close(job.ready)
			return
		}
	}
}

// worker processes blocks, reusing one flate reader and scratch buffer.
func (e *scanEngine) worker() {
	var fr io.ReadCloser
	var db bytes.Buffer
	if e.compressed {
		fr = flate.NewReader(bytes.NewReader(nil))
	}
	for job := range e.jobs {
		job.view, job.rows, job.err = e.decode(job.meta, fr, &db)
		if job.err == nil && e.materialize {
			job.recs, job.err = materializeRows(job.view, job.rows)
		}
		if job.err == nil {
			e.mu.Lock()
			e.stats.BlocksDecoded++
			e.stats.RecordsMatched += int64(len(job.rows))
			e.stats.BytesRead += job.meta.Len
			e.mu.Unlock()
		}
		close(job.ready)
	}
}

// decode reads one block, verifies it against its index entry, and returns
// the view plus the rows matching the query.
func (e *scanEngine) decode(m BlockMeta, fr io.ReadCloser, db *bytes.Buffer) (*BlockView, []int, error) {
	buf := make([]byte, m.Len)
	if _, err := e.r.ReadAt(buf, m.Offset); err != nil {
		return nil, nil, fmt.Errorf("%w: short block read: %v", ErrCorrupt, err)
	}
	h, err := parseBlockHeader(buf[:blockHeaderLen])
	if err != nil {
		return nil, nil, err
	}
	if h.kind != blockData || h.count != m.Count || int64(blockHeaderLen+h.payloadLen) != m.Len {
		return nil, nil, fmt.Errorf("%w: block disagrees with index", ErrCorrupt)
	}
	stored := buf[blockHeaderLen:]
	if blockCRC(buf[:blockHeaderLen], stored) != h.crc {
		return nil, nil, fmt.Errorf("%w: block CRC mismatch", ErrCorrupt)
	}
	payload := stored
	if e.compressed {
		if err := fr.(flate.Resetter).Reset(bytes.NewReader(stored), nil); err != nil {
			return nil, nil, fmt.Errorf("%w: decompress: %v", ErrCorrupt, err)
		}
		db.Reset()
		if _, err := db.ReadFrom(fr); err != nil {
			return nil, nil, fmt.Errorf("%w: decompress: %v", ErrCorrupt, err)
		}
		payload = append([]byte(nil), db.Bytes()...)
	}
	v, err := parseBlockView(payload, h)
	if err != nil {
		return nil, nil, err
	}
	rows, err := matchRows(v, m, e.q)
	if err != nil {
		return nil, nil, err
	}
	return v, rows, nil
}

// matchRows filters a block's rows against the query using only the filter
// columns; fully-contained blocks skip even that decode.
func matchRows(v *BlockView, m BlockMeta, q Query) ([]int, error) {
	if q.containsBlock(m) {
		rows := make([]int, v.Len())
		for i := range rows {
			rows[i] = i
		}
		return rows, nil
	}
	times, err := v.Times()
	if err != nil {
		return nil, err
	}
	ranks, err := v.Ranks()
	if err != nil {
		return nil, err
	}
	classes, err := v.Classes()
	if err != nil {
		return nil, err
	}
	// Stats filter columns decode only when the query constrains them.
	var offsets, bytesc, spans []int64
	if q.OffsetMin != math.MinInt64 || q.OffsetMax != math.MaxInt64 {
		if offsets, err = v.Offsets(); err != nil {
			return nil, err
		}
	}
	if q.BytesMin != math.MinInt64 {
		if bytesc, err = v.Bytes(); err != nil {
			return nil, err
		}
	}
	if q.SpanMin != 0 || q.SpanMax != math.MaxUint64 {
		if spans, err = v.Spans(); err != nil {
			return nil, err
		}
	}
	var rows []int
	for i := 0; i < v.Len(); i++ {
		if sim.Time(times[i]) < q.TimeMin || sim.Time(times[i]) > q.TimeMax ||
			int(ranks[i]) < q.RankMin || int(ranks[i]) > q.RankMax ||
			!q.classOK(classes[i]) {
			continue
		}
		if offsets != nil && (offsets[i] < q.OffsetMin || offsets[i] > q.OffsetMax) {
			continue
		}
		if bytesc != nil && bytesc[i] < q.BytesMin {
			continue
		}
		if spans != nil && (uint64(spans[i]) < q.SpanMin || uint64(spans[i]) > q.SpanMax) {
			continue
		}
		rows = append(rows, i)
	}
	return rows, nil
}

// materializeRows builds full records for the matched rows.
func materializeRows(v *BlockView, rows []int) ([]Record, error) {
	out := make([]Record, 0, len(rows))
	for _, i := range rows {
		r, err := v.Record(i)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// release stops the feeder and lets the pool drain.
func (e *scanEngine) release() {
	e.stopOnce.Do(func() { close(e.cancel) })
}

// snapshot returns the stats so far.
func (e *scanEngine) snapshot() ScanStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// ColumnarScan is the record stream of one indexed query: a Source yielding
// matching records in file order, decoded block-parallel ahead of the
// consumer. Close releases the pool early; draining to io.EOF also does.
type ColumnarScan struct {
	eng    *scanEngine
	cur    []Record
	curIdx int
	err    error
}

// Scan runs a query with `workers` decode goroutines (<=0 selects
// GOMAXPROCS). Blocks whose index ranges cannot match are never read.
func (c *ColumnarReader) Scan(q Query, workers int) *ColumnarScan {
	eng := c.newScanEngine(q, workers, true)
	s := &ColumnarScan{eng: eng}
	// The cleanup references the engine, not the scan, so an abandoned scan
	// still collects and releases its pool.
	runtime.AddCleanup(s, func(e *scanEngine) { e.release() }, eng)
	return s
}

// Next returns the next matching record, io.EOF at end of scan, or the
// corruption error of the first bad block.
func (s *ColumnarScan) Next() (Record, error) {
	for {
		if s.curIdx < len(s.cur) {
			rec := s.cur[s.curIdx]
			s.curIdx++
			return rec, nil
		}
		if s.err != nil {
			return Record{}, s.err
		}
		job, ok := <-s.eng.order
		if !ok {
			s.err = io.EOF
			s.release()
			return Record{}, io.EOF
		}
		<-job.ready
		if job.err != nil {
			s.err = job.err
			s.release()
			return Record{}, s.err
		}
		s.cur, s.curIdx = job.recs, 0
	}
}

// release stops the engine.
func (s *ColumnarScan) release() { s.eng.release() }

// Close stops the scan and releases the worker pool; safe at any time.
func (s *ColumnarScan) Close() error {
	s.release()
	return nil
}

// Stats reports what the scan touched; complete once Next returned io.EOF.
func (s *ColumnarScan) Stats() ScanStats { return s.eng.snapshot() }

// ScanViews runs a query and hands each surviving block's view plus its
// matching row indexes to fn, in file order on the caller's goroutine,
// while workers decode ahead. This is the aggregate fast path: fn reads
// only the columns it needs and no records are materialized. It returns
// fn's first error, or the first corruption error, and the scan stats.
func (c *ColumnarReader) ScanViews(q Query, workers int, fn func(v *BlockView, rows []int) error) (ScanStats, error) {
	eng := c.newScanEngine(q, workers, false)
	defer eng.release()
	for job := range eng.order {
		<-job.ready
		if job.err != nil {
			return eng.snapshot(), job.err
		}
		if err := fn(job.view, job.rows); err != nil {
			return eng.snapshot(), err
		}
	}
	return eng.snapshot(), nil
}
