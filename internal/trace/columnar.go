package trace

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"strconv"

	"iotaxo/internal/sim"
)

// Columnar trace format (v2). Where the v1 binary format stores row-ordered
// records, v2 stores each block column by column — the layout that makes a
// trace file serving infrastructure rather than an archive:
//
//	file    := magic[8] flags[1] dataBlock* indexBlock trailer[12]
//	block   := header[40] payload
//	header  := kind[1] reserved[1] classMask[1] dirMask[1]
//	           count:u32le payloadLen:u32le crc:u32le(payload)
//	           minTime:i64le maxTime:i64le minRank:i32le maxRank:i32le
//	payload := section*          (flate-compressed in data blocks when
//	                              flags&FlagCompressed; the index payload is
//	                              never compressed)
//	section := colID:u8 len:uvarint bytes
//	trailer := indexFramedLen:u32le tailMagic[8]
//
// Per-field columns compress far better than interleaved rows: timestamps
// and offsets are delta-varint (mostly 1-byte deltas), strings go through a
// per-block dictionary (a path repeated 4096 times costs 4096 index bytes
// plus one dictionary entry), and class+direction pack into one byte per
// record. The fixed-width header carries each block's time window, rank
// range, and class/direction masks, and the footer index block repeats them
// for every data block — so a reader with io.ReaderAt answers "bytes written
// by ranks 900-1000 in window X" by decoding only the blocks whose ranges
// intersect the query. CRC-32 per block gives the same ErrCorrupt semantics
// as v1.
//
// Blocks restart their delta chains and dictionaries, so each is
// self-contained: a stream cut after any block boundary (a writer that
// Flushed but never Closed) still reads sequentially; only indexed queries
// need the footer.

var (
	columnarMagic = [8]byte{'I', 'O', 'T', 'X', 'C', 'O', 'L', '2'}
	columnarTail  = [8]byte{'I', 'O', 'T', 'X', 'E', 'N', 'D', '2'}
)

// Block kinds (header byte 0).
const (
	blockData  byte = 0
	blockIndex byte = 1
)

// indexStatsV1 tags the footer-index extension carrying per-block
// offset/bytes/span min/max statistics.
const indexStatsV1 byte = 1

const (
	columnarHeaderLen = 9  // magic + flags
	blockHeaderLen    = 40 // fixed-width block header
	trailerLen        = 12 // index framed length + tail magic
)

// Column section IDs. The dictionary section always comes first in a
// payload; column sections follow in ID order.
const (
	colDict     byte = 1  // count:uvarint (len:uvarint bytes)*
	colTimes    byte = 2  // delta varint
	colDurs     byte = 3  // varint
	colClassDir byte = 4  // 1 byte per record: class | dir<<4
	colRanks    byte = 5  // delta varint
	colPIDs     byte = 6  // delta varint
	colNodes    byte = 7  // uvarint dict index
	colNames    byte = 8  // uvarint dict index
	colPaths    byte = 9  // uvarint dict index
	colRets     byte = 10 // uvarint dict index
	colArgs     byte = 11 // argc:uvarint (tag:uvarint)*; tag bit0: 1 = inline zigzag int, 0 = dict index<<1
	colOffsets  byte = 12 // delta varint
	colBytes    byte = 13 // varint
	colUIDs     byte = 14 // varint
	colGIDs     byte = 15 // varint, relative to the row's uid (gid == uid in practice, so the column is zeros)
	colSpans    byte = 16 // delta varint; present only when the block has spans
	colParents  byte = 17 // delta varint; present only when the block has spans

	maxColID = 17
)

// DefaultColumnarRecordsPerBlock is the v2 block size. Larger than v1's 512
// because the per-block string dictionary amortizes over the block: at 4096
// records the dictionary overhead is noise and column runs are long enough
// for delta chains to pay off, while a block still decodes in well under a
// millisecond.
const DefaultColumnarRecordsPerBlock = 4096

// ColumnarOptions configures a ColumnarWriter.
type ColumnarOptions struct {
	Compress        bool
	Anonymized      bool
	RecordsPerBlock int // block cut threshold; <=0 means DefaultColumnarRecordsPerBlock
}

// BlockMeta describes one data block: its position in the file and the
// ranges the query planner prunes on. The writer records one per block and
// serializes them into the footer index.
type BlockMeta struct {
	Offset    int64 // file offset of the block header
	Len       int64 // header + stored payload
	Count     int   // records in the block
	MinTime   sim.Time
	MaxTime   sim.Time
	MinRank   int
	MaxRank   int
	ClassMask uint8 // bit i set: block contains EventClass(i)
	DirMask   uint8 // bit i set: block contains IODir(i)

	// Extended per-block statistics, carried in a versioned footer-index
	// extension appended after the legacy entries. Files written before the
	// extension existed parse with HasStats == false: such blocks can be
	// neither pruned nor wholly contained by offset/bytes/span predicates.
	HasStats  bool
	MinOffset int64
	MaxOffset int64
	MinBytes  int64
	MaxBytes  int64
	MinSpan   uint64
	MaxSpan   uint64
}

// blockEncoder accumulates one block's columns incrementally; records are
// never buffered row-wise.
type blockEncoder struct {
	count     int
	classMask uint8
	dirMask   uint8
	minTime   sim.Time
	maxTime   sim.Time
	minRank   int
	maxRank   int
	minOffset int64
	maxOffset int64
	minBytes  int64
	maxBytes  int64
	minSpan   uint64
	maxSpan   uint64
	hasSpan   bool // any record carries a nonzero Span/Parent

	prevTime   int64
	prevRank   int64
	prevPID    int64
	prevOffset int64
	prevSpan   int64
	prevParent int64

	dict map[string]uint64
	// argSeen counts inline emissions of numeric args not yet interned: a
	// value that keeps recurring graduates into the dictionary (two 3-byte
	// inline copies cost less than a dictionary entry; a third copy would
	// not), while one-shot numerics (striding offsets) never pollute it.
	argSeen  map[string]uint8
	dictBuf  bytes.Buffer
	dictLen  int
	times    bytes.Buffer
	durs     bytes.Buffer
	classdir bytes.Buffer
	ranks    bytes.Buffer
	pids     bytes.Buffer
	nodes    bytes.Buffer
	names    bytes.Buffer
	paths    bytes.Buffer
	rets     bytes.Buffer
	args     bytes.Buffer
	offsets  bytes.Buffer
	bytesCol bytes.Buffer
	uids     bytes.Buffer
	gids     bytes.Buffer
	spans    bytes.Buffer
	parents  bytes.Buffer
}

// idx interns s in the block dictionary and returns its index.
func (e *blockEncoder) idx(s string) uint64 {
	if e.dict == nil {
		e.dict = make(map[string]uint64)
	}
	if i, ok := e.dict[s]; ok {
		return i
	}
	i := uint64(e.dictLen)
	e.dict[s] = i
	e.dictLen++
	putString(&e.dictBuf, s)
	return i
}

// inlineArgInt reports whether arg is a canonical decimal integer that can
// ride inline in the args column instead of growing the block dictionary —
// the escape hatch for per-record numerics (striding offsets) where every
// value is distinct and a dictionary entry would never be reused. The
// canonical-form check guarantees exact round-trip; the range guard keeps
// zigzag<<1 from overflowing the tag varint.
func inlineArgInt(arg string) (int64, bool) {
	if arg == "" || len(arg) > 19 {
		return 0, false
	}
	v, err := strconv.ParseInt(arg, 10, 64)
	if err != nil || v <= -(1<<61) || v >= 1<<61 {
		return 0, false
	}
	if strconv.FormatInt(v, 10) != arg {
		return 0, false // non-canonical: leading zeros, "+", "-0"
	}
	return v, true
}

// zigzag / unzigzag fold signed integers into small uvarints.
func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(z uint64) int64 { return int64(z>>1) ^ -int64(z&1) }

// add appends one record to the block's columns.
func (e *blockEncoder) add(r *Record) error {
	if r.Class >= 8 {
		return fmt.Errorf("trace: class %d does not fit columnar class/dir packing", r.Class)
	}
	dir := r.Direction()
	if e.count == 0 {
		e.minTime, e.maxTime = r.Time, r.Time
		e.minRank, e.maxRank = r.Rank, r.Rank
		e.minOffset, e.maxOffset = r.Offset, r.Offset
		e.minBytes, e.maxBytes = r.Bytes, r.Bytes
		e.minSpan, e.maxSpan = r.Span, r.Span
	} else {
		if r.Time < e.minTime {
			e.minTime = r.Time
		}
		if r.Time > e.maxTime {
			e.maxTime = r.Time
		}
		if r.Rank < e.minRank {
			e.minRank = r.Rank
		}
		if r.Rank > e.maxRank {
			e.maxRank = r.Rank
		}
		if r.Offset < e.minOffset {
			e.minOffset = r.Offset
		}
		if r.Offset > e.maxOffset {
			e.maxOffset = r.Offset
		}
		if r.Bytes < e.minBytes {
			e.minBytes = r.Bytes
		}
		if r.Bytes > e.maxBytes {
			e.maxBytes = r.Bytes
		}
		if r.Span < e.minSpan {
			e.minSpan = r.Span
		}
		if r.Span > e.maxSpan {
			e.maxSpan = r.Span
		}
	}
	if r.Span != 0 || r.Parent != 0 {
		e.hasSpan = true
	}
	e.classMask |= 1 << uint(r.Class)
	e.dirMask |= 1 << uint(dir)

	putVarint(&e.times, int64(r.Time)-e.prevTime)
	e.prevTime = int64(r.Time)
	putVarint(&e.durs, int64(r.Dur))
	e.classdir.WriteByte(byte(r.Class) | byte(dir)<<4)
	putVarint(&e.ranks, int64(r.Rank)-e.prevRank)
	e.prevRank = int64(r.Rank)
	putVarint(&e.pids, int64(r.PID)-e.prevPID)
	e.prevPID = int64(r.PID)
	putUvarint(&e.nodes, e.idx(r.Node))
	putUvarint(&e.names, e.idx(r.Name))
	putUvarint(&e.paths, e.idx(r.Path))
	putUvarint(&e.rets, e.idx(r.Ret))
	putUvarint(&e.args, uint64(len(r.Args)))
	for _, a := range r.Args {
		if i, ok := e.dict[a]; ok {
			putUvarint(&e.args, i<<1) // already interned: cheapest form
			continue
		}
		if v, ok := inlineArgInt(a); ok && e.argSeen[a] < 2 {
			if e.argSeen == nil {
				e.argSeen = make(map[string]uint8)
			}
			e.argSeen[a]++
			putUvarint(&e.args, zigzag(v)<<1|1)
			continue
		}
		putUvarint(&e.args, e.idx(a)<<1)
	}
	putVarint(&e.offsets, r.Offset-e.prevOffset)
	e.prevOffset = r.Offset
	putVarint(&e.bytesCol, r.Bytes)
	putVarint(&e.uids, int64(r.UID))
	putVarint(&e.gids, int64(r.GID)-int64(r.UID))
	putVarint(&e.spans, int64(r.Span)-e.prevSpan)
	e.prevSpan = int64(r.Span)
	putVarint(&e.parents, int64(r.Parent)-e.prevParent)
	e.prevParent = int64(r.Parent)
	e.count++
	return nil
}

// payload assembles the block's sections: dictionary first, columns in ID
// order.
func (e *blockEncoder) payload() []byte {
	var out bytes.Buffer
	section := func(id byte, data []byte) {
		out.WriteByte(id)
		putUvarint(&out, uint64(len(data)))
		out.Write(data)
	}
	var dict bytes.Buffer
	putUvarint(&dict, uint64(e.dictLen))
	dict.Write(e.dictBuf.Bytes())
	section(colDict, dict.Bytes())
	section(colTimes, e.times.Bytes())
	section(colDurs, e.durs.Bytes())
	section(colClassDir, e.classdir.Bytes())
	section(colRanks, e.ranks.Bytes())
	section(colPIDs, e.pids.Bytes())
	section(colNodes, e.nodes.Bytes())
	section(colNames, e.names.Bytes())
	section(colPaths, e.paths.Bytes())
	section(colRets, e.rets.Bytes())
	section(colArgs, e.args.Bytes())
	section(colOffsets, e.offsets.Bytes())
	section(colBytes, e.bytesCol.Bytes())
	section(colUIDs, e.uids.Bytes())
	section(colGIDs, e.gids.Bytes())
	// Span columns ride only in blocks that have spans, so span-less streams
	// produce block payloads byte-identical to writers that predate them.
	if e.hasSpan {
		section(colSpans, e.spans.Bytes())
		section(colParents, e.parents.Bytes())
	}
	return out.Bytes()
}

// reset clears the encoder for the next block; delta chains and the
// dictionary restart so every block is self-contained.
func (e *blockEncoder) reset() {
	*e = blockEncoder{}
}

// packBlockHeader renders the fixed-width block header.
func packBlockHeader(kind byte, m BlockMeta, payloadLen int, crc uint32) [blockHeaderLen]byte {
	var h [blockHeaderLen]byte
	h[0] = kind
	h[2] = m.ClassMask
	h[3] = m.DirMask
	binary.LittleEndian.PutUint32(h[4:], uint32(m.Count))
	binary.LittleEndian.PutUint32(h[8:], uint32(payloadLen))
	binary.LittleEndian.PutUint32(h[12:], crc)
	binary.LittleEndian.PutUint64(h[16:], uint64(int64(m.MinTime)))
	binary.LittleEndian.PutUint64(h[24:], uint64(int64(m.MaxTime)))
	binary.LittleEndian.PutUint32(h[32:], uint32(int32(m.MinRank)))
	binary.LittleEndian.PutUint32(h[36:], uint32(int32(m.MaxRank)))
	return h
}

// blockCRC computes a block's checksum: CRC-32 over the header with its CRC
// field zeroed, then the stored payload. Covering the header extends v1's
// corruption semantics to the pruning metadata (ranges, masks, counts) that
// lives outside the payload.
func blockCRC(hdr, payload []byte) uint32 {
	var h [blockHeaderLen]byte
	copy(h[:], hdr)
	h[12], h[13], h[14], h[15] = 0, 0, 0, 0
	return crc32.Update(crc32.ChecksumIEEE(h[:]), crc32.IEEETable, payload)
}

// blockHeader is the parsed form.
type blockHeader struct {
	kind       byte
	classMask  uint8
	dirMask    uint8
	count      int
	payloadLen int
	crc        uint32
	minTime    sim.Time
	maxTime    sim.Time
	minRank    int
	maxRank    int
}

// parseBlockHeader validates and unpacks a fixed-width block header.
func parseBlockHeader(h []byte) (blockHeader, error) {
	if len(h) < blockHeaderLen {
		return blockHeader{}, fmt.Errorf("%w: short block header", ErrCorrupt)
	}
	bh := blockHeader{
		kind:       h[0],
		classMask:  h[2],
		dirMask:    h[3],
		count:      int(binary.LittleEndian.Uint32(h[4:])),
		payloadLen: int(binary.LittleEndian.Uint32(h[8:])),
		crc:        binary.LittleEndian.Uint32(h[12:]),
		minTime:    sim.Time(int64(binary.LittleEndian.Uint64(h[16:]))),
		maxTime:    sim.Time(int64(binary.LittleEndian.Uint64(h[24:]))),
		minRank:    int(int32(binary.LittleEndian.Uint32(h[32:]))),
		maxRank:    int(int32(binary.LittleEndian.Uint32(h[36:]))),
	}
	if bh.kind != blockData && bh.kind != blockIndex {
		return blockHeader{}, fmt.Errorf("%w: bad block kind %d", ErrCorrupt, bh.kind)
	}
	if h[1] != 0 {
		return blockHeader{}, fmt.Errorf("%w: bad reserved byte", ErrCorrupt)
	}
	if bh.payloadLen > 1<<30 || bh.count > 1<<28 {
		return blockHeader{}, fmt.Errorf("%w: unreasonable block size", ErrCorrupt)
	}
	return bh, nil
}

// ColumnarWriter encodes records into the columnar v2 format. Close must be
// called to flush the final block and append the footer index and trailer;
// a stream that was only Flushed remains readable sequentially but cannot
// serve indexed queries.
type ColumnarWriter struct {
	w       io.Writer
	opts    ColumnarOptions
	enc     blockEncoder
	index   []BlockMeta
	started bool
	closed  bool
	n       int64
	err     error
}

// NewColumnarWriter returns a v2 writer; Close must be called.
func NewColumnarWriter(w io.Writer, opts ColumnarOptions) *ColumnarWriter {
	if opts.RecordsPerBlock <= 0 {
		opts.RecordsPerBlock = DefaultColumnarRecordsPerBlock
	}
	return &ColumnarWriter{w: w, opts: opts}
}

func (c *ColumnarWriter) writeHeader() {
	if c.started || c.err != nil {
		return
	}
	c.started = true
	var flags byte
	if c.opts.Compress {
		flags |= FlagCompressed
	}
	if c.opts.Anonymized {
		flags |= FlagAnonymized
	}
	hdr := append(columnarMagic[:], flags)
	n, err := c.w.Write(hdr)
	c.n += int64(n)
	c.err = err
}

// Write appends one record, cutting a block when the threshold is reached.
func (c *ColumnarWriter) Write(r *Record) error {
	if c.err != nil {
		return c.err
	}
	c.writeHeader()
	if err := c.enc.add(r); err != nil {
		c.err = err
		return err
	}
	if c.enc.count >= c.opts.RecordsPerBlock {
		return c.Flush()
	}
	return c.err
}

// Flush cuts the pending partial block, if any. Frequent flushes shrink
// blocks and cost compression ratio, exactly like v1.
func (c *ColumnarWriter) Flush() error {
	if c.err != nil {
		return c.err
	}
	c.writeHeader()
	if c.enc.count == 0 {
		return c.err
	}
	meta := BlockMeta{
		Count:     c.enc.count,
		MinTime:   c.enc.minTime,
		MaxTime:   c.enc.maxTime,
		MinRank:   c.enc.minRank,
		MaxRank:   c.enc.maxRank,
		ClassMask: c.enc.classMask,
		DirMask:   c.enc.dirMask,
		HasStats:  true,
		MinOffset: c.enc.minOffset,
		MaxOffset: c.enc.maxOffset,
		MinBytes:  c.enc.minBytes,
		MaxBytes:  c.enc.maxBytes,
		MinSpan:   c.enc.minSpan,
		MaxSpan:   c.enc.maxSpan,
	}
	payload := c.enc.payload()
	c.enc.reset()
	stored := payload
	if c.opts.Compress {
		var cb bytes.Buffer
		fw, err := flate.NewWriter(&cb, flate.BestSpeed)
		if err != nil {
			c.err = err
			return err
		}
		if _, err := fw.Write(payload); err != nil {
			c.err = err
			return err
		}
		if err := fw.Close(); err != nil {
			c.err = err
			return err
		}
		stored = cb.Bytes()
	}
	meta.Offset = c.n
	meta.Len = int64(blockHeaderLen + len(stored))
	hdr := packBlockHeader(blockData, meta, len(stored), 0)
	binary.LittleEndian.PutUint32(hdr[12:], blockCRC(hdr[:], stored))
	if err := c.writeAll(hdr[:], stored); err != nil {
		return err
	}
	c.index = append(c.index, meta)
	return c.err
}

// writeAll writes the given byte slices, accounting and sticking errors.
func (c *ColumnarWriter) writeAll(bufs ...[]byte) error {
	for _, b := range bufs {
		n, err := c.w.Write(b)
		c.n += int64(n)
		if err != nil {
			c.err = err
			return err
		}
	}
	return nil
}

// Close flushes the final block and writes the footer index block and
// trailer. The index payload stores only each block's framed length plus its
// pruning ranges; offsets reconstruct by accumulation because data blocks
// are contiguous from the stream header on.
func (c *ColumnarWriter) Close() error {
	if c.closed {
		return c.err
	}
	if err := c.Flush(); err != nil {
		c.closed = true
		return err
	}
	c.closed = true

	var payload bytes.Buffer
	putUvarint(&payload, uint64(len(c.index)))
	agg := BlockMeta{Count: len(c.index)}
	for i, m := range c.index {
		putUvarint(&payload, uint64(m.Len))
		putUvarint(&payload, uint64(m.Count))
		putVarint(&payload, int64(m.MinTime))
		putUvarint(&payload, uint64(m.MaxTime-m.MinTime))
		putVarint(&payload, int64(m.MinRank))
		putUvarint(&payload, uint64(m.MaxRank-m.MinRank))
		payload.WriteByte(m.ClassMask)
		payload.WriteByte(m.DirMask)
		if i == 0 {
			agg.MinTime, agg.MaxTime = m.MinTime, m.MaxTime
			agg.MinRank, agg.MaxRank = m.MinRank, m.MaxRank
		} else {
			if m.MinTime < agg.MinTime {
				agg.MinTime = m.MinTime
			}
			if m.MaxTime > agg.MaxTime {
				agg.MaxTime = m.MaxTime
			}
			if m.MinRank < agg.MinRank {
				agg.MinRank = m.MinRank
			}
			if m.MaxRank > agg.MaxRank {
				agg.MaxRank = m.MaxRank
			}
		}
		agg.ClassMask |= m.ClassMask
		agg.DirMask |= m.DirMask
	}
	// Versioned extension after the legacy entries: per-block min/max for
	// Offset, Bytes, and Span, enabling offset/bytes/span predicate pushdown.
	// Files written before the extension end exactly at the legacy entries,
	// so the parser treats zero trailing bytes as "no stats" (HasStats false)
	// and an unknown version byte as an ignorable future extension.
	payload.WriteByte(indexStatsV1)
	for _, m := range c.index {
		putVarint(&payload, m.MinOffset)
		putUvarint(&payload, uint64(m.MaxOffset-m.MinOffset))
		putVarint(&payload, m.MinBytes)
		putUvarint(&payload, uint64(m.MaxBytes-m.MinBytes))
		putUvarint(&payload, m.MinSpan)
		putUvarint(&payload, m.MaxSpan-m.MinSpan)
	}
	hdr := packBlockHeader(blockIndex, agg, payload.Len(), 0)
	binary.LittleEndian.PutUint32(hdr[12:], blockCRC(hdr[:], payload.Bytes()))
	var trailer [trailerLen]byte
	binary.LittleEndian.PutUint32(trailer[0:], uint32(blockHeaderLen+payload.Len()))
	copy(trailer[4:], columnarTail[:])
	return c.writeAll(hdr[:], payload.Bytes(), trailer[:])
}

// BytesWritten reports the encoded size so far.
func (c *ColumnarWriter) BytesWritten() int64 { return c.n }

// BlocksWritten reports the number of data blocks emitted so far.
func (c *ColumnarWriter) BlocksWritten() int64 { return int64(len(c.index)) }

// Index returns the block metadata written so far (complete after Close).
func (c *ColumnarWriter) Index() []BlockMeta { return c.index }

// parseIndexPayload inverts the Close encoding. firstOffset is where the
// first data block starts (just past the stream header); limit is where data
// blocks must end (the index block's own offset).
func parseIndexPayload(payload []byte, firstOffset, limit int64) ([]BlockMeta, error) {
	br := bytes.NewReader(payload)
	n, err := binary.ReadUvarint(br)
	if err != nil || n > 1<<28 {
		return nil, fmt.Errorf("%w: bad index block count", ErrCorrupt)
	}
	metas := make([]BlockMeta, 0, n)
	off := firstOffset
	for i := uint64(0); i < n; i++ {
		var m BlockMeta
		u := func() uint64 {
			v, e := binary.ReadUvarint(br)
			if e != nil {
				err = e
			}
			return v
		}
		v := func() int64 {
			v, e := binary.ReadVarint(br)
			if e != nil {
				err = e
			}
			return v
		}
		m.Offset = off
		m.Len = int64(u())
		m.Count = int(u())
		m.MinTime = sim.Time(v())
		m.MaxTime = m.MinTime + sim.Time(u())
		m.MinRank = int(v())
		m.MaxRank = m.MinRank + int(u())
		cm, e1 := br.ReadByte()
		dm, e2 := br.ReadByte()
		if err != nil || e1 != nil || e2 != nil {
			return nil, fmt.Errorf("%w: truncated index entry", ErrCorrupt)
		}
		m.ClassMask, m.DirMask = cm, dm
		off += m.Len
		if m.Len <= blockHeaderLen || off > limit {
			return nil, fmt.Errorf("%w: index entry out of bounds", ErrCorrupt)
		}
		metas = append(metas, m)
	}
	if off != limit {
		return nil, fmt.Errorf("%w: index does not cover data blocks", ErrCorrupt)
	}
	if br.Len() == 0 {
		return metas, nil // pre-extension file: no per-block stats
	}
	ver, _ := br.ReadByte()
	if ver != indexStatsV1 {
		return metas, nil // future extension: stats unusable, but the file is fine
	}
	for i := range metas {
		m := &metas[i]
		u := func() uint64 {
			v, e := binary.ReadUvarint(br)
			if e != nil {
				err = e
			}
			return v
		}
		v := func() int64 {
			v, e := binary.ReadVarint(br)
			if e != nil {
				err = e
			}
			return v
		}
		m.MinOffset = v()
		m.MaxOffset = m.MinOffset + int64(u())
		m.MinBytes = v()
		m.MaxBytes = m.MinBytes + int64(u())
		m.MinSpan = u()
		m.MaxSpan = m.MinSpan + u()
		if err != nil {
			return nil, fmt.Errorf("%w: truncated index stats", ErrCorrupt)
		}
		m.HasStats = true
	}
	if br.Len() != 0 {
		return nil, fmt.Errorf("%w: trailing bytes in index block", ErrCorrupt)
	}
	return metas, nil
}
