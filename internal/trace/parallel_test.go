package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// The parallel writer must be a drop-in encoder: byte-identical output to
// the serial writer for every option combination.
func TestParallelWriterByteIdenticalToSerial(t *testing.T) {
	recs := randomRecords(1000, 17)
	for _, tc := range []struct {
		name string
		opts BinaryOptions
	}{
		{"plain", BinaryOptions{RecordsPerBlock: 64}},
		{"compressed", BinaryOptions{Compress: true, RecordsPerBlock: 64}},
		{"anonymized-flag", BinaryOptions{Anonymized: true, RecordsPerBlock: 100}},
		{"partial-final-block", BinaryOptions{RecordsPerBlock: 333}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var serial bytes.Buffer
			if err := WriteAll(NewBinaryWriter(&serial, tc.opts), recs); err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4} {
				var parallel bytes.Buffer
				if err := WriteAll(NewParallelBinaryWriter(&parallel, tc.opts, workers), recs); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
					t.Fatalf("workers=%d: parallel output differs from serial (%d vs %d bytes)",
						workers, parallel.Len(), serial.Len())
				}
			}
		})
	}
}

func TestParallelWriterEmptyStream(t *testing.T) {
	var serial, parallel bytes.Buffer
	NewBinaryWriter(&serial, BinaryOptions{}).Close()
	NewParallelBinaryWriter(&parallel, BinaryOptions{}, 2).Close()
	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		t.Fatalf("empty stream headers differ: %x vs %x", serial.Bytes(), parallel.Bytes())
	}
}

func TestParallelWriterBlockCount(t *testing.T) {
	recs := randomRecords(100, 23)
	var buf bytes.Buffer
	w := NewParallelBinaryWriter(&buf, BinaryOptions{RecordsPerBlock: 32}, 3)
	if err := WriteAll(w, recs); err != nil {
		t.Fatal(err)
	}
	if w.BlocksWritten() != 4 { // 32+32+32+4
		t.Fatalf("blocks = %d, want 4", w.BlocksWritten())
	}
	if w.BytesWritten() != int64(buf.Len()) {
		t.Fatalf("bytes = %d, buffer = %d", w.BytesWritten(), buf.Len())
	}
}

func TestParallelReaderRoundTrip(t *testing.T) {
	recs := randomRecords(2000, 29)
	for _, compress := range []bool{false, true} {
		var buf bytes.Buffer
		if err := WriteAll(NewBinaryWriter(&buf, BinaryOptions{Compress: compress, RecordsPerBlock: 128}), recs); err != nil {
			t.Fatal(err)
		}
		r := NewParallelBinaryReader(&buf, 4)
		if compress && r.Flags()&FlagCompressed == 0 {
			t.Fatal("compressed flag not exposed")
		}
		got, err := r.ReadAll()
		if err != nil {
			t.Fatalf("compress=%v: %v", compress, err)
		}
		if len(got) != len(recs) {
			t.Fatalf("compress=%v: %d records, want %d", compress, len(got), len(recs))
		}
		for i := range recs {
			a, b := recs[i], got[i]
			if len(a.Args) == 0 {
				a.Args = nil
			}
			if len(b.Args) == 0 {
				b.Args = nil
			}
			if a.Name != b.Name || a.Time != b.Time || a.Offset != b.Offset {
				t.Fatalf("record %d mismatch: %+v vs %+v", i, a, b)
			}
		}
	}
}

func TestParallelWriterToParallelReader(t *testing.T) {
	recs := randomRecords(1500, 31)
	var buf bytes.Buffer
	if err := WriteAll(NewParallelBinaryWriter(&buf, BinaryOptions{Compress: true, RecordsPerBlock: 100}, 0), recs); err != nil {
		t.Fatal(err)
	}
	got, err := NewParallelBinaryReader(&buf, 0).ReadAll()
	if err != nil || len(got) != len(recs) {
		t.Fatalf("got %d records, err=%v", len(got), err)
	}
}

// mkCorruptStream builds a stream of `blocks` blocks of `perBlock` records
// each, then returns it along with the offset of the n-th block's payload.
func mkBlocks(t *testing.T, blocks, perBlock int, compress bool) []byte {
	t.Helper()
	recs := randomRecords(blocks*perBlock, 37)
	var buf bytes.Buffer
	if err := WriteAll(NewBinaryWriter(&buf, BinaryOptions{Compress: compress, RecordsPerBlock: perBlock}), recs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// blockOffsets walks the frame headers and returns each block's start.
func blockOffsets(t *testing.T, data []byte) []int {
	t.Helper()
	var offs []int
	pos := 9 // magic + flags
	for pos < len(data) {
		offs = append(offs, pos)
		plen := int(binary.LittleEndian.Uint32(data[pos:]))
		pos += 8 + plen
	}
	return offs
}

// Satellite requirement: mid-stream CRC corruption must yield every record
// of the blocks before the bad one, then ErrCorrupt — on both readers.
func TestReadersMidStreamCRCCorruption(t *testing.T) {
	const perBlock = 16
	data := mkBlocks(t, 4, perBlock, false)
	offs := blockOffsets(t, data)
	if len(offs) != 4 {
		t.Fatalf("expected 4 blocks, found %d", len(offs))
	}
	// Flip a byte inside block 2's payload.
	bad := append([]byte(nil), data...)
	bad[offs[2]+8] ^= 0xFF

	for _, tc := range []struct {
		name string
		read func(io.Reader) ([]Record, error)
	}{
		{"serial", func(r io.Reader) ([]Record, error) { return NewBinaryReader(r).ReadAll() }},
		{"parallel", func(r io.Reader) ([]Record, error) { return NewParallelBinaryReader(r, 4).ReadAll() }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			recs, err := tc.read(bytes.NewReader(bad))
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("err = %v, want ErrCorrupt", err)
			}
			if len(recs) != 2*perBlock {
				t.Fatalf("got %d records before the corrupt block, want %d", len(recs), 2*perBlock)
			}
		})
	}
}

// ... and truncation mid-block behaves the same way.
func TestReadersMidStreamTruncation(t *testing.T) {
	const perBlock = 16
	data := mkBlocks(t, 4, perBlock, true)
	offs := blockOffsets(t, data)
	// Cut the stream in the middle of block 3's payload.
	cut := data[:offs[3]+10]

	for _, tc := range []struct {
		name string
		read func(io.Reader) ([]Record, error)
	}{
		{"serial", func(r io.Reader) ([]Record, error) { return NewBinaryReader(r).ReadAll() }},
		{"parallel", func(r io.Reader) ([]Record, error) { return NewParallelBinaryReader(r, 4).ReadAll() }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			recs, err := tc.read(bytes.NewReader(cut))
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("err = %v, want ErrCorrupt", err)
			}
			if len(recs) != 3*perBlock {
				t.Fatalf("got %d records before truncation, want %d", len(recs), 3*perBlock)
			}
		})
	}
}

func TestParallelReaderBadMagic(t *testing.T) {
	_, err := NewParallelBinaryReader(bytes.NewReader([]byte("NOTATRACEFILE")), 2).Next()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

// TestParallelReaderEarlyCloseStress pins the Close/fetch race: the fetcher
// enqueues each job for the consumer before handing it to the pool, and a
// Close landing between the two used to strand the job undecoded — the
// post-Close drain then blocked forever on its ready channel. Many
// iterations make the narrow window reliably observable.
func TestParallelReaderEarlyCloseStress(t *testing.T) {
	data := mkBlocks(t, 64, 8, false)
	for i := 0; i < 200; i++ {
		r := NewParallelBinaryReader(bytes.NewReader(data), 2)
		for j := 0; j <= i%8; j++ {
			if _, err := r.Next(); err != nil {
				t.Fatal(err)
			}
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		for {
			_, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestParallelReaderEarlyClose(t *testing.T) {
	data := mkBlocks(t, 64, 32, false)
	r := NewParallelBinaryReader(bytes.NewReader(data), 4)
	for i := 0; i < 10; i++ {
		if _, err := r.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// Records already decoded remain readable; the stream ends cleanly.
	for {
		_, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
}
