package trace

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"iotaxo/internal/sim"
)

// Binary trace format (what Tracefs emits):
//
//	file   := magic[8] flags[1] block*
//	block  := payloadLen:u32le crc:u32le(payload) payload
//	payload (flags&FlagCompressed: flate-compressed) := record*
//	record := uvarint fields in a fixed schema (see encodeRecord)
//
// Per-block checksumming detects corruption and truncation; compression and
// block size are options, mirroring the paper's description of Tracefs
// output: "Binary, with optional checksumming, compression, ... or buffering
// (to improve performance)".

var binaryMagic = [8]byte{'I', 'O', 'T', 'X', 'B', 'I', 'N', '1'}

// Binary stream flags.
const (
	FlagCompressed byte = 1 << iota
	FlagAnonymized      // set by anonymization passes for provenance
	FlagSpans           // records carry trailing Span/Parent fields
)

// ErrCorrupt is returned when a block fails its CRC or framing check.
var ErrCorrupt = errors.New("trace: corrupt binary trace")

// BinaryOptions configures a BinaryWriter.
type BinaryOptions struct {
	Compress        bool
	Anonymized      bool
	Spans           bool // encode Span/Parent fields (sets FlagSpans)
	RecordsPerBlock int  // flush threshold; <=0 means 512
}

// BinaryWriter encodes records into the binary format.
type BinaryWriter struct {
	w       io.Writer
	opts    BinaryOptions
	buf     bytes.Buffer
	inBlock int
	started bool
	n       int64
	blocks  int64
	err     error
}

// NewBinaryWriter returns a writer; Close must be called to flush the final
// block.
func NewBinaryWriter(w io.Writer, opts BinaryOptions) *BinaryWriter {
	if opts.RecordsPerBlock <= 0 {
		opts.RecordsPerBlock = 512
	}
	return &BinaryWriter{w: w, opts: opts}
}

func (b *BinaryWriter) writeHeader() {
	if b.started || b.err != nil {
		return
	}
	b.started = true
	var flags byte
	if b.opts.Compress {
		flags |= FlagCompressed
	}
	if b.opts.Anonymized {
		flags |= FlagAnonymized
	}
	if b.opts.Spans {
		flags |= FlagSpans
	}
	hdr := append(binaryMagic[:], flags)
	n, err := b.w.Write(hdr)
	b.n += int64(n)
	b.err = err
}

// Write encodes one record, flushing a block when the threshold is reached.
func (b *BinaryWriter) Write(r *Record) error {
	if b.err != nil {
		return b.err
	}
	b.writeHeader()
	encodeRecord(&b.buf, r, b.opts.Spans)
	b.inBlock++
	if b.inBlock >= b.opts.RecordsPerBlock {
		return b.Flush()
	}
	return b.err
}

// Flush emits the current block, if any.
func (b *BinaryWriter) Flush() error {
	if b.err != nil {
		return b.err
	}
	b.writeHeader()
	if b.buf.Len() == 0 {
		return nil
	}
	framed, err := frameBlock(b.buf.Bytes(), b.opts.Compress)
	if err != nil {
		b.err = err
		return err
	}
	n, err := b.w.Write(framed)
	b.n += int64(n)
	b.err = err
	b.blocks++
	b.buf.Reset()
	b.inBlock = 0
	return b.err
}

// Close flushes the final block.
func (b *BinaryWriter) Close() error { return b.Flush() }

// BytesWritten reports the encoded size so far (flushed blocks only).
func (b *BinaryWriter) BytesWritten() int64 { return b.n }

// BlocksWritten reports the number of blocks emitted so far.
func (b *BinaryWriter) BlocksWritten() int64 { return b.blocks }

// frameBlock compresses (optionally) and frames one block payload with its
// length and CRC-32: the unit of work the parallel codec distributes.
func frameBlock(payload []byte, compress bool) ([]byte, error) {
	if compress {
		var cb bytes.Buffer
		fw, err := flate.NewWriter(&cb, flate.BestSpeed)
		if err != nil {
			return nil, err
		}
		if _, err := fw.Write(payload); err != nil {
			return nil, err
		}
		if err := fw.Close(); err != nil {
			return nil, err
		}
		payload = cb.Bytes()
	}
	framed := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(framed[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(framed[4:], crc32.ChecksumIEEE(payload))
	copy(framed[8:], payload)
	return framed, nil
}

func putUvarint(buf *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	buf.Write(tmp[:n])
}

func putVarint(buf *bytes.Buffer, v int64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	buf.Write(tmp[:n])
}

func putString(buf *bytes.Buffer, s string) {
	putUvarint(buf, uint64(len(s)))
	buf.WriteString(s)
}

func encodeRecord(buf *bytes.Buffer, r *Record, spans bool) {
	putVarint(buf, int64(r.Time))
	putVarint(buf, int64(r.Dur))
	putString(buf, r.Node)
	putVarint(buf, int64(r.Rank))
	putVarint(buf, int64(r.PID))
	buf.WriteByte(byte(r.Class))
	putString(buf, r.Name)
	putUvarint(buf, uint64(len(r.Args)))
	for _, a := range r.Args {
		putString(buf, a)
	}
	putString(buf, r.Ret)
	putString(buf, r.Path)
	putVarint(buf, r.Offset)
	putVarint(buf, r.Bytes)
	putVarint(buf, int64(r.UID))
	putVarint(buf, int64(r.GID))
	if spans {
		putUvarint(buf, r.Span)
		putUvarint(buf, r.Parent)
	}
}

func decodeRecord(br *bytes.Reader, spans bool) (Record, error) {
	var r Record
	readV := func() (int64, error) { return binary.ReadVarint(br) }
	readU := func() (uint64, error) { return binary.ReadUvarint(br) }
	readS := func() (string, error) {
		n, err := readU()
		if err != nil {
			return "", err
		}
		if n > 1<<24 {
			return "", ErrCorrupt
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	var err error
	var v int64
	if v, err = readV(); err != nil {
		return r, err
	}
	r.Time = sim.Time(v)
	if v, err = readV(); err != nil {
		return r, err
	}
	r.Dur = sim.Duration(v)
	if r.Node, err = readS(); err != nil {
		return r, err
	}
	if v, err = readV(); err != nil {
		return r, err
	}
	r.Rank = int(v)
	if v, err = readV(); err != nil {
		return r, err
	}
	r.PID = int(v)
	cb, err := br.ReadByte()
	if err != nil {
		return r, err
	}
	if cb >= byte(numClasses) {
		return r, fmt.Errorf("%w: bad class %d", ErrCorrupt, cb)
	}
	r.Class = EventClass(cb)
	if r.Name, err = readS(); err != nil {
		return r, err
	}
	argc, err := readU()
	if err != nil {
		return r, err
	}
	if argc > 1<<16 {
		return r, ErrCorrupt
	}
	for i := uint64(0); i < argc; i++ {
		a, err := readS()
		if err != nil {
			return r, err
		}
		r.Args = append(r.Args, a)
	}
	if r.Ret, err = readS(); err != nil {
		return r, err
	}
	if r.Path, err = readS(); err != nil {
		return r, err
	}
	if r.Offset, err = readV(); err != nil {
		return r, err
	}
	if r.Bytes, err = readV(); err != nil {
		return r, err
	}
	if v, err = readV(); err != nil {
		return r, err
	}
	r.UID = int(v)
	if v, err = readV(); err != nil {
		return r, err
	}
	r.GID = int(v)
	if spans {
		if r.Span, err = readU(); err != nil {
			return r, err
		}
		if r.Parent, err = readU(); err != nil {
			return r, err
		}
	}
	return r, nil
}

// BinaryReader decodes the binary format, verifying per-block CRCs.
type BinaryReader struct {
	r       io.Reader
	flags   byte
	started bool
	block   *bytes.Reader
	blocks  int64
}

// BlocksRead reports the number of blocks decoded so far.
func (b *BinaryReader) BlocksRead() int64 { return b.blocks }

// NewBinaryReader wraps r for decoding.
func NewBinaryReader(r io.Reader) *BinaryReader { return &BinaryReader{r: r} }

// Flags returns the stream flags after the first Next call.
func (b *BinaryReader) Flags() byte { return b.flags }

func (b *BinaryReader) readHeader() error {
	if b.started {
		return nil
	}
	b.started = true
	var hdr [9]byte
	if _, err := io.ReadFull(b.r, hdr[:]); err != nil {
		return fmt.Errorf("%w: short header: %v", ErrCorrupt, err)
	}
	if !bytes.Equal(hdr[:8], binaryMagic[:]) {
		return fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	b.flags = hdr[8]
	return nil
}

func (b *BinaryReader) nextBlock() error {
	var hdr [8]byte
	if _, err := io.ReadFull(b.r, hdr[:]); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("%w: short block header", ErrCorrupt)
	}
	plen := binary.LittleEndian.Uint32(hdr[0:])
	want := binary.LittleEndian.Uint32(hdr[4:])
	if plen > 1<<30 {
		return fmt.Errorf("%w: unreasonable block size %d", ErrCorrupt, plen)
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(b.r, payload); err != nil {
		return fmt.Errorf("%w: truncated block", ErrCorrupt)
	}
	if crc32.ChecksumIEEE(payload) != want {
		return fmt.Errorf("%w: block CRC mismatch", ErrCorrupt)
	}
	if b.flags&FlagCompressed != 0 {
		fr := flate.NewReader(bytes.NewReader(payload))
		out, err := io.ReadAll(fr)
		if err != nil {
			return fmt.Errorf("%w: decompress: %v", ErrCorrupt, err)
		}
		payload = out
	}
	b.block = bytes.NewReader(payload)
	b.blocks++
	return nil
}

// Next returns the next record or io.EOF.
func (b *BinaryReader) Next() (Record, error) {
	if err := b.readHeader(); err != nil {
		return Record{}, err
	}
	for b.block == nil || b.block.Len() == 0 {
		if err := b.nextBlock(); err != nil {
			return Record{}, err
		}
	}
	rec, err := decodeRecord(b.block, b.flags&FlagSpans != 0)
	if err != nil {
		return Record{}, fmt.Errorf("%w: record decode: %v", ErrCorrupt, err)
	}
	return rec, nil
}

// ReadAll drains the stream.
func (b *BinaryReader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		r, err := b.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
}
