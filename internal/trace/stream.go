package trace

import (
	"container/heap"
	"io"
)

// This file is the streaming pipeline layer: every producer of trace data in
// the repository exposes a Source (a pull iterator of Records), every
// consumer accepts them through a Sink (a push consumer), and Transforms
// compose between the two. Whole-trace []Record slices remain available as
// thin wrappers (Collect, SliceSource) for callers that genuinely need
// random access, but the pipeline itself never materializes more than one
// record (or, for the block codec, one block) at a time — the property that
// keeps multi-million-event parallel traces tractable.

// Source is a pull iterator over trace records. Next returns io.EOF after
// the last record. Implementations are not required to be safe for
// concurrent use.
type Source interface {
	Next() (Record, error)
}

// Sink is a push consumer of trace records. Write may retain nothing from
// the record after it returns; Close flushes any buffered state and must be
// called exactly once when the stream ends.
type Sink interface {
	Write(r *Record) error
	Close() error
}

// Transform mutates or filters one record in place as it flows through a
// pipeline. Returning keep=false drops the record.
type Transform func(r *Record) (keep bool, err error)

// CloneTransform deep-copies the record so downstream transforms can mutate
// Args without aliasing the producer's storage. Put it first in a transform
// chain whenever the source yields shared slices (e.g. SliceSource).
func CloneTransform(r *Record) (bool, error) {
	*r = r.Clone()
	return true, nil
}

// FilterTransform adapts a predicate to a Transform.
func FilterTransform(keep func(*Record) bool) Transform {
	return func(r *Record) (bool, error) { return keep(r), nil }
}

// --- sources ---

// sliceSource yields shallow copies of a record slice.
type sliceSource struct {
	recs []Record
	i    int
}

// SliceSource adapts an in-memory trace to the streaming API. Records are
// yielded as shallow copies: Args still aliases the slice's storage, so
// mutating pipelines should lead with CloneTransform.
func SliceSource(recs []Record) Source {
	return &sliceSource{recs: recs}
}

func (s *sliceSource) Next() (Record, error) {
	if s.i >= len(s.recs) {
		return Record{}, io.EOF
	}
	r := s.recs[s.i]
	s.i++
	return r, nil
}

// emptySource yields nothing.
type emptySource struct{}

func (emptySource) Next() (Record, error) { return Record{}, io.EOF }

// EmptySource returns a source with no records.
func EmptySource() Source { return emptySource{} }

// transformSource applies a transform chain to an inner source.
type transformSource struct {
	src Source
	fns []Transform
}

// TransformSource wraps src so every record passes through the transforms in
// order. Records any transform drops are skipped.
func TransformSource(src Source, fns ...Transform) Source {
	if len(fns) == 0 {
		return src
	}
	return &transformSource{src: src, fns: fns}
}

func (t *transformSource) Next() (Record, error) {
next:
	for {
		rec, err := t.src.Next()
		if err != nil {
			return Record{}, err
		}
		for _, fn := range t.fns {
			keep, err := fn(&rec)
			if err != nil {
				return Record{}, err
			}
			if !keep {
				continue next
			}
		}
		return rec, nil
	}
}

// chainSource concatenates sources.
type chainSource struct {
	srcs []Source
}

// ChainSources yields all records of each source in turn — the per-process
// trace files of one run read back to back.
func ChainSources(srcs ...Source) Source {
	return &chainSource{srcs: srcs}
}

func (c *chainSource) Next() (Record, error) {
	for len(c.srcs) > 0 {
		rec, err := c.srcs[0].Next()
		if err == io.EOF {
			c.srcs = c.srcs[1:]
			continue
		}
		return rec, err
	}
	return Record{}, io.EOF
}

// --- streaming k-way merge ---

type mergeItem struct {
	rec Record
	idx int // source index, for stability across equal timestamps
}

type mergeHeap []mergeItem

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if h[i].rec.Time != h[j].rec.Time {
		return h[i].rec.Time < h[j].rec.Time
	}
	return h[i].idx < h[j].idx
}
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(mergeItem)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// mergeSource merges time-sorted sources with a min-heap, holding one
// record per input at a time.
type mergeSource struct {
	srcs    []Source
	h       mergeHeap
	started bool
	err     error // sticky; delivered after every record pulled before it
}

// MergeSources merges per-process record streams, each already ordered by
// Time, into one time-ordered stream (stable by source index across equal
// timestamps). Memory is O(number of sources), not O(trace).
func MergeSources(srcs ...Source) Source {
	return &mergeSource{srcs: srcs}
}

func (m *mergeSource) refill(idx int) error {
	rec, err := m.srcs[idx].Next()
	if err == io.EOF {
		return nil
	}
	if err != nil {
		return err
	}
	heap.Push(&m.h, mergeItem{rec: rec, idx: idx})
	return nil
}

func (m *mergeSource) Next() (Record, error) {
	if !m.started {
		m.started = true
		heap.Init(&m.h)
		for i := range m.srcs {
			if err := m.refill(i); err != nil {
				m.err = err
				break
			}
		}
	}
	// Drain buffered records first so a source error never swallows the
	// records pulled before it (the pipeline's records-before-error
	// contract).
	if m.h.Len() == 0 {
		if m.err != nil {
			return Record{}, m.err
		}
		return Record{}, io.EOF
	}
	item := heap.Pop(&m.h).(mergeItem)
	if m.err == nil {
		if err := m.refill(item.idx); err != nil {
			m.err = err
		}
	}
	return item.rec, nil
}

// --- sinks ---

// SinkFunc adapts a function to Sink with a no-op Close.
type SinkFunc func(r *Record) error

// Write implements Sink.
func (f SinkFunc) Write(r *Record) error { return f(r) }

// Close implements Sink.
func (f SinkFunc) Close() error { return nil }

// collectSink accumulates records.
type collectSink struct {
	recs []Record
}

func (c *collectSink) Write(r *Record) error {
	c.recs = append(c.recs, r.Clone())
	return nil
}

func (c *collectSink) Close() error { return nil }

// teeSink fans each record out to several sinks.
type teeSink struct {
	sinks []Sink
}

// TeeSink writes every record to all sinks; Close closes each and returns
// the first error.
func TeeSink(sinks ...Sink) Sink {
	return &teeSink{sinks: sinks}
}

func (t *teeSink) Write(r *Record) error {
	for _, s := range t.sinks {
		if err := s.Write(r); err != nil {
			return err
		}
	}
	return nil
}

func (t *teeSink) Close() error {
	var first error
	for _, s := range t.sinks {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// transformSink applies a transform chain before the inner sink.
type transformSink struct {
	dst Sink
	fns []Transform
}

// TransformSink wraps dst so every record passes through the transforms
// before being written; dropped records are not forwarded.
func TransformSink(dst Sink, fns ...Transform) Sink {
	if len(fns) == 0 {
		return dst
	}
	return &transformSink{dst: dst, fns: fns}
}

func (t *transformSink) Write(r *Record) error {
	for _, fn := range t.fns {
		keep, err := fn(r)
		if err != nil {
			return err
		}
		if !keep {
			return nil
		}
	}
	return t.dst.Write(r)
}

func (t *transformSink) Close() error { return t.dst.Close() }

// --- pumps and wrappers ---

// Copy pumps src into dst one record at a time, returning the record count.
// It does not Close dst, so a caller can pump several sources into one sink.
func Copy(dst Sink, src Source) (int64, error) {
	var n int64
	for {
		rec, err := src.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if err := dst.Write(&rec); err != nil {
			return n, err
		}
		n++
	}
}

// Collect drains a source into a slice: the bridge back to the slice-based
// helpers. Records already consumed are returned alongside a mid-stream
// error, mirroring the readers' ReadAll behavior.
func Collect(src Source) ([]Record, error) {
	var sink collectSink
	_, err := Copy(&sink, src)
	return sink.recs, err
}

// WriteAll pumps a record slice into a sink and closes it: the slice-based
// write helper over the streaming core.
func WriteAll(dst Sink, recs []Record) error {
	if _, err := Copy(dst, SliceSource(recs)); err != nil {
		dst.Close()
		return err
	}
	return dst.Close()
}

// The on-disk format codecs are Source/Sink adapters by construction.
var (
	_ Source = (*TextReader)(nil)
	_ Source = (*BinaryReader)(nil)
	_ Source = (*ParallelBinaryReader)(nil)
	_ Source = (*ColumnarSource)(nil)
	_ Source = (*ColumnarScan)(nil)
	_ Sink   = (*TextWriter)(nil)
	_ Sink   = (*BinaryWriter)(nil)
	_ Sink   = (*ParallelBinaryWriter)(nil)
	_ Sink   = (*ColumnarWriter)(nil)
)
