package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"iotaxo/internal/sim"
)

// TextWriter emits records in the human-readable strace-like format shown in
// Figure 1 of the paper:
//
//	10:59:47.105818 SYS_open("/etc/hosts", 0, 0666) = 3 <0.000034>
//
// A short comment header carries the node/rank/pid context, since LANL-Trace
// writes one raw trace file per process.
type TextWriter struct {
	w             *bufio.Writer
	headerWritten bool
	lazyHeader    bool
	node          string
	rank, pid     int
	n             int64 // bytes written, for overhead accounting
}

// NewTextWriter returns a writer for one process's trace stream.
func NewTextWriter(w io.Writer, node string, rank, pid int) *TextWriter {
	return &TextWriter{w: bufio.NewWriter(w), node: node, rank: rank, pid: pid}
}

// NewTextSink returns a text writer whose header context (node/rank/pid) is
// taken from the first record written: the Sink adapter for pipelines whose
// provenance is only known once records start flowing.
func NewTextSink(w io.Writer) *TextWriter {
	return &TextWriter{w: bufio.NewWriter(w), rank: -1, lazyHeader: true}
}

func (t *TextWriter) header() error {
	if t.headerWritten {
		return nil
	}
	t.headerWritten = true
	n, err := fmt.Fprintf(t.w, "# iotaxo-trace text v1\n# node=%s rank=%d pid=%d\n",
		t.node, t.rank, t.pid)
	t.n += int64(n)
	return err
}

// Write emits one record.
func (t *TextWriter) Write(r *Record) error {
	if t.lazyHeader && !t.headerWritten {
		t.node, t.rank, t.pid = r.Node, r.Rank, r.PID
	}
	if err := t.header(); err != nil {
		return err
	}
	n, err := fmt.Fprintf(t.w, "%s %s = %s <%d.%06d>\n",
		FormatLocalTime(r.Time), r.CallString(), r.Ret,
		int64(r.Dur)/int64(sim.Second), (int64(r.Dur)%int64(sim.Second))/1000)
	t.n += int64(n)
	return err
}

// BytesWritten reports the total bytes emitted so far (pre-buffer-flush).
func (t *TextWriter) BytesWritten() int64 { return t.n }

// Flush drains the internal buffer.
func (t *TextWriter) Flush() error { return t.w.Flush() }

// Close implements Sink by flushing the buffer.
func (t *TextWriter) Close() error { return t.Flush() }

// TextReader parses the text format back into records, inferring the
// structured I/O fields from well-known call signatures the way replay tools
// built on strace output must.
type TextReader struct {
	sc        *bufio.Scanner
	node      string
	rank, pid int
	line      int
}

// NewTextReader wraps r for parsing.
func NewTextReader(r io.Reader) *TextReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	return &TextReader{sc: sc, rank: -1}
}

// Next returns the next record or io.EOF.
func (t *TextReader) Next() (Record, error) {
	for t.sc.Scan() {
		t.line++
		line := strings.TrimSpace(t.sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.parseHeader(line)
			continue
		}
		rec, err := t.parseLine(line)
		if err != nil {
			return Record{}, fmt.Errorf("trace: line %d: %w", t.line, err)
		}
		return rec, nil
	}
	if err := t.sc.Err(); err != nil {
		return Record{}, err
	}
	return Record{}, io.EOF
}

// ReadAll drains the stream.
func (t *TextReader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		r, err := t.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
}

func (t *TextReader) parseHeader(line string) {
	for _, f := range strings.Fields(strings.TrimPrefix(line, "#")) {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			continue
		}
		switch k {
		case "node":
			t.node = v
		case "rank":
			if n, err := strconv.Atoi(v); err == nil {
				t.rank = n
			}
		case "pid":
			if n, err := strconv.Atoi(v); err == nil {
				t.pid = n
			}
		}
	}
}

func (t *TextReader) parseLine(line string) (Record, error) {
	rec := Record{Node: t.node, Rank: t.rank, PID: t.pid}

	// Timestamp.
	sp := strings.IndexByte(line, ' ')
	if sp < 0 {
		return rec, fmt.Errorf("no timestamp separator in %q", line)
	}
	ts, err := parseLocalTime(line[:sp])
	if err != nil {
		return rec, err
	}
	rec.Time = ts
	rest := line[sp+1:]

	// Call name and argument list.
	open := strings.IndexByte(rest, '(')
	if open < 0 {
		return rec, fmt.Errorf("no '(' in %q", rest)
	}
	rec.Name = rest[:open]
	closeIdx := findCloseParen(rest, open)
	if closeIdx < 0 {
		return rec, fmt.Errorf("unbalanced parens in %q", rest)
	}
	rec.Args = splitArgs(rest[open+1 : closeIdx])
	tail := strings.TrimSpace(rest[closeIdx+1:])

	// "= ret <dur>".
	if !strings.HasPrefix(tail, "=") {
		return rec, fmt.Errorf("missing '=' in %q", tail)
	}
	tail = strings.TrimSpace(tail[1:])
	lt := strings.LastIndexByte(tail, '<')
	if lt < 0 || !strings.HasSuffix(tail, ">") {
		return rec, fmt.Errorf("missing duration in %q", tail)
	}
	rec.Ret = strings.TrimSpace(tail[:lt])
	durStr := tail[lt+1 : len(tail)-1]
	dur, err := parseDuration(durStr)
	if err != nil {
		return rec, err
	}
	rec.Dur = dur
	rec.Class = classOf(rec.Name)
	InferIOFields(&rec)
	return rec, nil
}

// parseLocalTime inverts FormatLocalTime. The day component is lost (as with
// strace -tt), which is fine for intra-run analysis.
func parseLocalTime(s string) (sim.Time, error) {
	var h, m, sec, micro int64
	if _, err := fmt.Sscanf(s, "%d:%d:%d.%d", &h, &m, &sec, &micro); err != nil {
		return 0, fmt.Errorf("bad timestamp %q: %w", s, err)
	}
	return sim.Time(((h*3600+m*60+sec)*1e6 + micro) * 1000), nil
}

func parseDuration(s string) (sim.Duration, error) {
	var sec, micro int64
	if _, err := fmt.Sscanf(s, "%d.%d", &sec, &micro); err != nil {
		return 0, fmt.Errorf("bad duration %q: %w", s, err)
	}
	return sim.Duration((sec*1e6 + micro) * 1000), nil
}

// findCloseParen locates the ')' matching the '(' at index open, skipping
// quoted strings.
func findCloseParen(s string, open int) int {
	depth := 0
	inStr := false
	for i := open; i < len(s); i++ {
		switch {
		case inStr:
			if s[i] == '\\' {
				i++
			} else if s[i] == '"' {
				inStr = false
			}
		case s[i] == '"':
			inStr = true
		case s[i] == '(':
			depth++
		case s[i] == ')':
			depth--
			if depth == 0 {
				return i
			}
		}
	}
	return -1
}

// splitArgs splits a comma-separated argument list, respecting quotes.
func splitArgs(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	var out []string
	var cur strings.Builder
	inStr := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inStr:
			cur.WriteByte(c)
			if c == '\\' && i+1 < len(s) {
				i++
				cur.WriteByte(s[i])
			} else if c == '"' {
				inStr = false
			}
		case c == '"':
			inStr = true
			cur.WriteByte(c)
		case c == ',':
			out = append(out, strings.TrimSpace(cur.String()))
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	out = append(out, strings.TrimSpace(cur.String()))
	return out
}

// classOf infers the event class from a call name, mirroring how trace
// consumers classify strace/ltrace output.
func classOf(name string) EventClass {
	switch {
	case strings.HasPrefix(name, "SYS_"):
		return ClassSyscall
	case strings.HasPrefix(name, "MPI_") || strings.HasPrefix(name, "MPIO_"):
		return ClassMPI
	case strings.HasPrefix(name, "VFS_"):
		return ClassFSOp
	default:
		return ClassLibCall
	}
}

// InferIOFields fills Path/Offset/Bytes from well-known call signatures so
// parsed traces can drive replay. Unknown calls are left untouched.
func InferIOFields(r *Record) {
	argInt := func(i int) int64 {
		if i >= len(r.Args) {
			return 0
		}
		n, _ := strconv.ParseInt(r.Args[i], 10, 64)
		return n
	}
	argStr := func(i int) string {
		if i >= len(r.Args) {
			return ""
		}
		s := r.Args[i]
		if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
			if u, err := strconv.Unquote(s); err == nil {
				return u
			}
		}
		return s
	}
	switch r.Name {
	case "SYS_open", "SYS_creat", "SYS_stat", "SYS_statfs64", "SYS_unlink":
		r.Path = argStr(0)
	case "SYS_pwrite", "SYS_pread":
		r.Offset = argInt(1)
		r.Bytes = argInt(2)
	case "SYS_write", "SYS_read":
		r.Bytes = argInt(1)
	case "SYS_mmap":
		r.Offset = argInt(1)
		r.Bytes = argInt(2)
	case "MPI_File_open":
		r.Path = argStr(1)
	case "MPI_File_write_at", "MPI_File_read_at", "MPI_File_write", "MPI_File_read":
		r.Offset = argInt(1)
		r.Bytes = argInt(2)
	case "VFS_write", "VFS_read", "VFS_writepage":
		r.Path = argStr(0)
		r.Offset = argInt(1)
		r.Bytes = argInt(2)
	case "VFS_open", "VFS_lookup", "VFS_unlink", "VFS_create":
		r.Path = argStr(0)
	}
}
