package trace

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"testing"
)

func randomRecords(n int, seed int64) []Record {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Record, n)
	for i := range out {
		out[i] = randomRecord(rng)
	}
	return out
}

func TestSliceSourceCollectRoundTrip(t *testing.T) {
	in := randomRecords(100, 7)
	out, err := Collect(SliceSource(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatal("slice -> source -> collect not identity")
	}
}

func TestEmptySource(t *testing.T) {
	if _, err := EmptySource().Next(); err != io.EOF {
		t.Fatalf("err = %v, want EOF", err)
	}
	recs, err := Collect(EmptySource())
	if err != nil || len(recs) != 0 {
		t.Fatalf("recs=%d err=%v", len(recs), err)
	}
}

// The satellite requirement: the slice pipeline and the Source/Sink
// pipeline must produce byte-identical text output.
func TestStreamingTextEquivalence(t *testing.T) {
	recs := randomRecords(200, 11)
	for i := range recs {
		recs[i].Node, recs[i].Rank, recs[i].PID = "n0", 3, 44
	}

	// Slice pipeline (the seed's shape): loop over records, write each.
	var slicePath bytes.Buffer
	w := NewTextWriter(&slicePath, recs[0].Node, recs[0].Rank, recs[0].PID)
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()

	// Streaming pipeline: source -> sink pump.
	var streamPath bytes.Buffer
	sink := NewTextSink(&streamPath)
	if _, err := Copy(sink, SliceSource(recs)); err != nil {
		t.Fatal(err)
	}
	sink.Close()

	if !bytes.Equal(slicePath.Bytes(), streamPath.Bytes()) {
		t.Fatal("text output differs between slice and streaming pipelines")
	}
}

// ... and byte-identical binary output, for both plain and compressed.
func TestStreamingBinaryEquivalence(t *testing.T) {
	recs := randomRecords(500, 13)
	for _, compress := range []bool{false, true} {
		opts := BinaryOptions{Compress: compress, RecordsPerBlock: 64}

		var slicePath bytes.Buffer
		w := NewBinaryWriter(&slicePath, opts)
		for i := range recs {
			if err := w.Write(&recs[i]); err != nil {
				t.Fatal(err)
			}
		}
		w.Close()

		var streamPath bytes.Buffer
		if err := WriteAll(NewBinaryWriter(&streamPath, opts), recs); err != nil {
			t.Fatal(err)
		}

		if !bytes.Equal(slicePath.Bytes(), streamPath.Bytes()) {
			t.Fatalf("compress=%v: binary output differs between slice and streaming pipelines", compress)
		}
	}
}

func TestTransformSourceFiltersAndMutates(t *testing.T) {
	recs := []Record{
		{Name: "SYS_write", Bytes: 10},
		{Name: "MPI_Barrier"},
		{Name: "SYS_read", Bytes: 5},
	}
	onlyIO := FilterTransform(func(r *Record) bool { return r.IsIO() })
	double := Transform(func(r *Record) (bool, error) {
		r.Bytes *= 2
		return true, nil
	})
	out, err := Collect(TransformSource(SliceSource(recs), CloneTransform, onlyIO, double))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Bytes != 20 || out[1].Bytes != 10 {
		t.Fatalf("out = %+v", out)
	}
	// CloneTransform must have protected the input slice.
	if recs[0].Bytes != 10 {
		t.Fatal("transform mutated the source slice")
	}
}

func TestTransformSinkDropsRecords(t *testing.T) {
	var got []Record
	dst := SinkFunc(func(r *Record) error {
		got = append(got, r.Clone())
		return nil
	})
	sink := TransformSink(dst, FilterTransform(func(r *Record) bool { return r.Bytes > 0 }))
	recs := []Record{{Name: "a", Bytes: 1}, {Name: "b"}, {Name: "c", Bytes: 2}}
	if err := WriteAll(sink, recs); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "a" || got[1].Name != "c" {
		t.Fatalf("got = %+v", got)
	}
}

func TestChainSources(t *testing.T) {
	a := []Record{{Name: "a1"}, {Name: "a2"}}
	b := []Record{{Name: "b1"}}
	out, err := Collect(ChainSources(SliceSource(a), EmptySource(), SliceSource(b)))
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, r := range out {
		names = append(names, r.Name)
	}
	if !reflect.DeepEqual(names, []string{"a1", "a2", "b1"}) {
		t.Fatalf("names = %v", names)
	}
}

func TestMergeSourcesOrdersByTime(t *testing.T) {
	a := []Record{{Name: "a", Time: 1}, {Name: "a", Time: 5}, {Name: "a", Time: 9}}
	b := []Record{{Name: "b", Time: 2}, {Name: "b", Time: 5}}
	c := []Record{{Name: "c", Time: 0}}
	out, err := Collect(MergeSources(SliceSource(a), SliceSource(b), SliceSource(c)))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 6 {
		t.Fatalf("len = %d", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i].Time < out[i-1].Time {
			t.Fatalf("out of order at %d: %+v", i, out)
		}
	}
	// Stability across the equal timestamps: source a before source b.
	if out[3].Time != 5 || out[3].Name != "a" || out[4].Name != "b" {
		t.Fatalf("unstable merge: %+v", out)
	}
}

func TestTeeSinkFansOut(t *testing.T) {
	var n1, n2 int64
	s1 := SinkFunc(func(r *Record) error { n1++; return nil })
	s2 := SinkFunc(func(r *Record) error { n2++; return nil })
	recs := randomRecords(17, 3)
	if err := WriteAll(TeeSink(s1, s2), recs); err != nil {
		t.Fatal(err)
	}
	if n1 != 17 || n2 != 17 {
		t.Fatalf("n1=%d n2=%d", n1, n2)
	}
}

func TestCopyReturnsCount(t *testing.T) {
	n, err := Copy(SinkFunc(func(r *Record) error { return nil }), SliceSource(randomRecords(31, 5)))
	if err != nil || n != 31 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestOpenAutoStreamsBothFormats(t *testing.T) {
	recs := randomRecords(50, 21)

	var bin bytes.Buffer
	if err := WriteAll(NewBinaryWriter(&bin, BinaryOptions{RecordsPerBlock: 8}), recs); err != nil {
		t.Fatal(err)
	}
	src, format, err := OpenAuto(&bin)
	if err != nil || format != FormatBinary {
		t.Fatalf("format=%v err=%v", format, err)
	}
	got, err := Collect(src)
	if err != nil || len(got) != len(recs) {
		t.Fatalf("got %d records, err=%v", len(got), err)
	}
	if br, ok := src.(interface{ BlocksRead() int64 }); !ok || br.BlocksRead() != 7 {
		t.Fatalf("blocks read: %v", ok)
	}

	var txt bytes.Buffer
	tw := NewTextSink(&txt)
	rec := sampleRecord()
	tw.Write(&rec)
	tw.Close()
	src, format, err = OpenAuto(&txt)
	if err != nil || format != FormatText {
		t.Fatalf("format=%v err=%v", format, err)
	}
	if got, err := Collect(src); err != nil || len(got) != 1 {
		t.Fatalf("text stream: %d records, err=%v", len(got), err)
	}
}

func TestTextSinkLazyHeader(t *testing.T) {
	var buf bytes.Buffer
	w := NewTextSink(&buf)
	rec := sampleRecord()
	if err := w.Write(&rec); err != nil {
		t.Fatal(err)
	}
	w.Close()
	out := buf.String()
	if !bytes.Contains(buf.Bytes(), []byte("node=host13.lanl.gov rank=7 pid=10378")) {
		t.Fatalf("lazy header missing context:\n%s", out)
	}
}
