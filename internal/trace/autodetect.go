package trace

import (
	"bufio"
	"bytes"
	"io"
)

// Format identifies a trace stream encoding.
type Format int

// The stream formats.
const (
	FormatUnknown Format = iota
	FormatText
	FormatBinary
	FormatColumnar
)

// String implements fmt.Stringer.
func (f Format) String() string {
	switch f {
	case FormatText:
		return "text"
	case FormatBinary:
		return "binary"
	case FormatColumnar:
		return "columnar"
	default:
		return "unknown"
	}
}

// DetectFormat sniffs a stream's format from its first bytes without
// consuming them; the returned reader replays the full stream.
func DetectFormat(r io.Reader) (Format, io.Reader) {
	br := bufio.NewReader(r)
	head, _ := br.Peek(len(binaryMagic))
	if bytes.Equal(head, binaryMagic[:]) {
		return FormatBinary, br
	}
	if bytes.Equal(head, columnarMagic[:]) {
		return FormatColumnar, br
	}
	if len(head) > 0 {
		return FormatText, br
	}
	return FormatUnknown, br
}

// OpenAuto sniffs a trace stream's format and returns a streaming Source
// over it: the bounded-memory entry point for trace consumption. An empty
// stream yields FormatUnknown and an empty source.
func OpenAuto(r io.Reader) (Source, Format, error) {
	format, rr := DetectFormat(r)
	switch format {
	case FormatBinary:
		return NewBinaryReader(rr), format, nil
	case FormatColumnar:
		return NewColumnarSource(rr), format, nil
	case FormatText:
		return NewTextReader(rr), format, nil
	default:
		return EmptySource(), format, nil
	}
}

// ReadAuto decodes a trace stream of either format, returning the records
// and the detected format: the slice wrapper over OpenAuto.
func ReadAuto(r io.Reader) ([]Record, Format, error) {
	src, format, err := OpenAuto(r)
	if err != nil {
		return nil, format, err
	}
	recs, err := Collect(src)
	return recs, format, err
}
