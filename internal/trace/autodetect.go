package trace

import (
	"bufio"
	"bytes"
	"io"
)

// Format identifies a trace stream encoding.
type Format int

// The stream formats.
const (
	FormatUnknown Format = iota
	FormatText
	FormatBinary
)

// String implements fmt.Stringer.
func (f Format) String() string {
	switch f {
	case FormatText:
		return "text"
	case FormatBinary:
		return "binary"
	default:
		return "unknown"
	}
}

// DetectFormat sniffs a stream's format from its first bytes without
// consuming them; the returned reader replays the full stream.
func DetectFormat(r io.Reader) (Format, io.Reader) {
	br := bufio.NewReader(r)
	head, _ := br.Peek(len(binaryMagic))
	if bytes.Equal(head, binaryMagic[:]) {
		return FormatBinary, br
	}
	if len(head) > 0 {
		return FormatText, br
	}
	return FormatUnknown, br
}

// ReadAuto decodes a trace stream of either format, returning the records
// and the detected format.
func ReadAuto(r io.Reader) ([]Record, Format, error) {
	format, rr := DetectFormat(r)
	switch format {
	case FormatBinary:
		recs, err := NewBinaryReader(rr).ReadAll()
		return recs, format, err
	case FormatText:
		recs, err := NewTextReader(rr).ReadAll()
		return recs, format, err
	default:
		return nil, format, io.EOF
	}
}
