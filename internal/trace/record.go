// Package trace defines the trace data model shared by every I/O tracing
// framework in this repository, together with the two on-disk formats the
// paper's taxonomy distinguishes:
//
//   - a human-readable, strace-like text format (LANL-Trace and //TRACE emit
//     human-readable traces), round-trippable through a parser so analysis
//     and replay tools can consume it; and
//   - a binary format (Tracefs emits binary traces) with varint encoding,
//     per-block CRC-32 checksums, and optional flate compression, matching
//     Tracefs's "binary, with optional checksumming, compression, ... or
//     buffering" description.
package trace

import (
	"fmt"
	"strings"

	"iotaxo/internal/sim"
)

// EventClass partitions traced events along the taxonomy's "Event types"
// axis: system calls (strace), library calls (ltrace, LD_PRELOAD
// interposition), MPI calls, and file-system (VFS) operations (Tracefs).
type EventClass uint8

const (
	// ClassSyscall is a kernel system call (SYS_open, SYS_write, ...).
	ClassSyscall EventClass = iota
	// ClassLibCall is a linked-library call seen by ltrace-style tracing.
	ClassLibCall
	// ClassMPI is an MPI or MPI-IO library call.
	ClassMPI
	// ClassFSOp is a VFS-level file system operation (what Tracefs sees),
	// including operations invisible at the syscall boundary such as
	// memory-mapped writeback.
	ClassFSOp
	// ClassPFSOp is a parallel-file-system server-side operation (data or
	// metadata request handling on an object or metadata server).
	ClassPFSOp
	// ClassNetMsg is a network message delivery between cluster nodes.
	ClassNetMsg
	// ClassDiskIO is a physical disk/RAID array access.
	ClassDiskIO

	numClasses
)

// String implements fmt.Stringer.
func (c EventClass) String() string {
	switch c {
	case ClassSyscall:
		return "syscall"
	case ClassLibCall:
		return "libcall"
	case ClassMPI:
		return "mpi"
	case ClassFSOp:
		return "fsop"
	case ClassPFSOp:
		return "pfsop"
	case ClassNetMsg:
		return "netmsg"
	case ClassDiskIO:
		return "diskio"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// ParseClass inverts String.
func ParseClass(s string) (EventClass, error) {
	switch s {
	case "syscall":
		return ClassSyscall, nil
	case "libcall":
		return ClassLibCall, nil
	case "mpi":
		return ClassMPI, nil
	case "fsop":
		return ClassFSOp, nil
	case "pfsop":
		return ClassPFSOp, nil
	case "netmsg":
		return ClassNetMsg, nil
	case "diskio":
		return ClassDiskIO, nil
	}
	return 0, fmt.Errorf("trace: unknown event class %q", s)
}

// Record is one traced event. Time is the *local* wall-clock timestamp of
// the node that recorded it (clock skew and drift included); analysis tools
// correct it onto a shared timeline using the barrier samples LANL-Trace
// collects.
type Record struct {
	Time  sim.Time     // node-local timestamp at call entry
	Dur   sim.Duration // time spent inside the call
	Node  string       // host name
	Rank  int          // MPI rank, -1 if not an MPI process
	PID   int          // process id on the node
	Class EventClass
	Name  string   // call name, e.g. "SYS_write" or "MPI_File_open"
	Args  []string // pre-formatted arguments
	Ret   string   // formatted return value

	// Structured I/O fields, set when the event moves bytes; replay and
	// anonymization operate on these rather than re-parsing Args.
	Path   string
	Offset int64
	Bytes  int64
	UID    int
	GID    int

	// Causal span identity: Span is this operation's own span id, Parent is
	// the span of the operation that caused it (0 = none/unknown). Spans are
	// allocated by sim.Env.NextSpanID and let cross-layer analyses join
	// records exactly instead of by time-window correlation.
	Span   uint64
	Parent uint64
}

// HasSpan reports whether the record carries causal span identity.
func (r *Record) HasSpan() bool { return r.Span != 0 || r.Parent != 0 }

// IsIO reports whether the record moved file data.
func (r *Record) IsIO() bool { return r.Bytes > 0 }

// IODir classifies a record's data-movement direction.
type IODir uint8

const (
	// DirNone marks records that move bytes in no single direction an
	// analysis should bucket — mmap regions, syncs, readdir-style metadata.
	DirNone IODir = iota
	// DirRead marks data read from a file.
	DirRead
	// DirWrite marks data written to a file.
	DirWrite
)

// readOps and writeOps are the call names every emitter in this repository
// produces for directional data movement; Direction consults them before
// falling back to a name heuristic for out-of-tree frameworks.
var (
	readOps = map[string]struct{}{
		"SYS_read": {}, "SYS_pread": {},
		"MPI_File_read": {}, "MPI_File_read_at": {}, "MPI_File_read_at_all": {},
		"VFS_read": {}, "PFS_read": {}, "DISK_read": {},
	}
	writeOps = map[string]struct{}{
		"SYS_write": {}, "SYS_pwrite": {},
		"MPI_File_write": {}, "MPI_File_write_at": {}, "MPI_File_write_at_all": {},
		"VFS_write": {}, "VFS_writepage": {}, "PFS_write": {}, "DISK_write": {},
	}
)

// Direction reports which way the record moved file data. Unknown names
// fall back to a substring heuristic ("write" wins, then "read" — but not
// "readdir"); byte-carrying records that are neither (SYS_mmap, syncs)
// report DirNone, so analyses must not lump them into either bucket.
func (r *Record) Direction() IODir {
	if _, ok := writeOps[r.Name]; ok {
		return DirWrite
	}
	if _, ok := readOps[r.Name]; ok {
		return DirRead
	}
	name := strings.ToLower(r.Name)
	if strings.Contains(name, "write") {
		return DirWrite
	}
	if strings.Contains(name, "read") && !strings.Contains(name, "readdir") {
		return DirRead
	}
	return DirNone
}

// Clone returns a deep copy (Args shared slices are copied).
func (r *Record) Clone() Record {
	out := *r
	out.Args = append([]string(nil), r.Args...)
	return out
}

// FormatLocalTime renders a node-local timestamp in the HH:MM:SS.micros
// style LANL-Trace inherits from strace -tt (Figure 1 of the paper).
func FormatLocalTime(t sim.Time) string {
	ns := int64(t)
	if ns < 0 {
		ns = 0
	}
	sec := ns / int64(sim.Second)
	micro := (ns % int64(sim.Second)) / 1000
	h := sec / 3600 % 24
	m := sec / 60 % 60
	s := sec % 60
	return fmt.Sprintf("%02d:%02d:%02d.%06d", h, m, s, micro)
}

// CallString renders "Name(arg, arg, ...)".
func (r *Record) CallString() string {
	return r.Name + "(" + strings.Join(r.Args, ", ") + ")"
}

// wireSizeEstimate approximates the serialized size of the record in the
// text format; tracers use it to charge simulated output cost.
func (r *Record) wireSizeEstimate() int64 {
	n := 16 + len(r.Name) + len(r.Ret) + len(r.Node) + 24
	for _, a := range r.Args {
		n += len(a) + 2
	}
	return int64(n)
}

// EstimatedTextSize is the exported wrapper for overhead models.
func (r *Record) EstimatedTextSize() int64 { return r.wireSizeEstimate() }
