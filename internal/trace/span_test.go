package trace

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"testing"

	"iotaxo/internal/sim"
)

// withSpans stamps a deterministic causal chain onto records: each record
// gets a fresh span and a parent pointing somewhere earlier (or 0).
func withSpans(recs []Record, seed int64) []Record {
	rng := rand.New(rand.NewSource(seed))
	out := append([]Record(nil), recs...)
	for i := range out {
		out[i].Span = uint64(i + 1)
		if i > 0 && rng.Intn(3) > 0 {
			out[i].Parent = uint64(rng.Intn(i) + 1)
		} else {
			out[i].Parent = 0
		}
	}
	return out
}

func stripSpans(recs []Record) []Record {
	out := append([]Record(nil), recs...)
	for i := range out {
		out[i].Span, out[i].Parent = 0, 0
	}
	return out
}

func TestBinarySpanRoundTrip(t *testing.T) {
	in := withSpans(normalizeArgs(randomRecords(300, 11)), 12)
	for _, compress := range []bool{false, true} {
		var buf bytes.Buffer
		w := NewBinaryWriter(&buf, BinaryOptions{Compress: compress, Spans: true})
		for i := range in {
			if err := w.Write(&in[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		src := NewBinaryReader(bytes.NewReader(buf.Bytes()))
		out, err := src.ReadAll()
		if err != nil {
			t.Fatalf("compress=%v: %v", compress, err)
		}
		if src.Flags()&FlagSpans == 0 {
			t.Fatal("FlagSpans not set on span-carrying stream")
		}
		if !reflect.DeepEqual(in, normalizeArgs(out)) {
			t.Fatalf("compress=%v: span round trip mismatch", compress)
		}
	}
}

func TestParallelBinarySpanRoundTrip(t *testing.T) {
	in := withSpans(normalizeArgs(randomRecords(500, 21)), 22)
	var buf bytes.Buffer
	w := NewParallelBinaryWriter(&buf, BinaryOptions{Spans: true, RecordsPerBlock: 64}, 4)
	for i := range in {
		if err := w.Write(&in[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := NewParallelBinaryReader(bytes.NewReader(buf.Bytes()), 4).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, normalizeArgs(out)) {
		t.Fatal("parallel span round trip mismatch")
	}
}

// TestBinaryDefaultDropsSpans pins v1 backward compatibility: with spans off
// (the default), the encoded stream is byte-identical to one built from
// span-less records — existing readers and goldens see the classic format —
// and decoding returns records without span info.
func TestBinaryDefaultDropsSpans(t *testing.T) {
	spanned := withSpans(normalizeArgs(randomRecords(200, 31)), 32)
	plain := stripSpans(spanned)
	enc := func(recs []Record) []byte {
		var buf bytes.Buffer
		w := NewBinaryWriter(&buf, BinaryOptions{})
		for i := range recs {
			if err := w.Write(&recs[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := enc(spanned), enc(plain)
	if !bytes.Equal(a, b) {
		t.Fatal("span fields leaked into default v1 encoding")
	}
	src := NewBinaryReader(bytes.NewReader(a))
	out, err := src.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if src.Flags()&FlagSpans != 0 {
		t.Fatal("FlagSpans set on default stream")
	}
	for i := range out {
		if out[i].HasSpan() {
			t.Fatalf("record %d decoded with span info from flagless stream", i)
		}
	}
}

func TestColumnarSpanRoundTrip(t *testing.T) {
	in := withSpans(normalizeArgs(randomRecords(400, 41)), 42)
	for _, compress := range []bool{false, true} {
		data := writeColumnar(t, in, ColumnarOptions{Compress: compress, RecordsPerBlock: 64})
		out, err := NewColumnarSource(bytes.NewReader(data)).ReadAll()
		if err != nil {
			t.Fatalf("compress=%v: %v", compress, err)
		}
		if !reflect.DeepEqual(in, normalizeArgs(out)) {
			t.Fatalf("compress=%v: columnar span round trip mismatch", compress)
		}
	}
}

// TestColumnarSpanlessOmitsSpanColumns pins the v2 compatibility story:
// span-less records produce blocks without span sections (same payload
// shape as pre-span writers), and tolerant readers return zero spans.
func TestColumnarSpanlessOmitsSpanColumns(t *testing.T) {
	plain := stripSpans(normalizeArgs(randomRecords(200, 51)))
	spanned := withSpans(plain, 52)
	a := writeColumnar(t, plain, ColumnarOptions{RecordsPerBlock: 64})
	b := writeColumnar(t, spanned, ColumnarOptions{RecordsPerBlock: 64})
	if len(a) >= len(b) {
		t.Fatalf("span columns free? spanless %d bytes vs spanned %d", len(a), len(b))
	}
	cr, err := NewColumnarReader(bytes.NewReader(a), int64(len(a)))
	if err != nil {
		t.Fatal(err)
	}
	_, err = cr.ScanViews(MatchAll(), 2, func(v *BlockView, rows []int) error {
		spans, err := v.Spans()
		if err != nil {
			return err
		}
		for _, sp := range spans {
			if sp != 0 {
				t.Error("nonzero span from span-less block")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestColumnarLegacyIndexParses pins forward compatibility of the footer
// index: a pre-extension payload (no trailing stats) and a payload with an
// unknown future extension version must both parse, yielding metas without
// stats — which the query planner must then refuse to prune by.
func TestColumnarLegacyIndexParses(t *testing.T) {
	legacy := func() *bytes.Buffer {
		var p bytes.Buffer
		putUvarint(&p, 1)   // one block
		putUvarint(&p, 100) // Len
		putUvarint(&p, 5)   // Count
		putVarint(&p, 10)   // MinTime
		putUvarint(&p, 5)   // MaxTime delta
		putVarint(&p, 0)    // MinRank
		putUvarint(&p, 3)   // MaxRank delta
		p.WriteByte(0xff)   // ClassMask
		p.WriteByte(0x03)   // DirMask
		return &p
	}
	metas, err := parseIndexPayload(legacy().Bytes(), 0, 100)
	if err != nil || len(metas) != 1 {
		t.Fatalf("legacy index: %v, %d metas", err, len(metas))
	}
	if metas[0].HasStats {
		t.Fatal("legacy index entry claims stats")
	}
	q := MatchAll().WithSpanRange(100, 200)
	if !q.MatchesBlock(metas[0]) {
		t.Fatal("stats-constrained query pruned a stats-less block")
	}

	future := legacy()
	future.WriteByte(0x7f) // unknown extension version
	future.WriteString("opaque future payload")
	metas, err = parseIndexPayload(future.Bytes(), 0, 100)
	if err != nil || len(metas) != 1 || metas[0].HasStats {
		t.Fatalf("future-versioned index: %v, %d metas", err, len(metas))
	}
}

// blockStatsRecords builds records in three well-separated regimes of
// offset, bytes and span so per-block stats can prune.
func blockStatsRecords() []Record {
	var recs []Record
	for blk := 0; blk < 3; blk++ {
		for i := 0; i < 64; i++ {
			n := blk*64 + i
			recs = append(recs, Record{
				Time: sim.Time(n) * sim.Time(sim.Millisecond), Dur: sim.Duration(100),
				Node: "n0", Rank: 0, Class: ClassSyscall,
				Name: "SYS_pwrite", Ret: "0", Path: "/pfs/f",
				Offset: int64(blk)*1_000_000 + int64(i)*100,
				Bytes:  int64(blk+1) * 1000,
				Span:   uint64(n + 1),
				Parent: uint64(n),
			})
		}
	}
	return recs
}

func TestColumnarStatsPushdown(t *testing.T) {
	recs := blockStatsRecords()
	data := writeColumnar(t, recs, ColumnarOptions{RecordsPerBlock: 64})
	cr, err := NewColumnarReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if cr.NumBlocks() != 3 {
		t.Fatalf("blocks = %d, want 3", cr.NumBlocks())
	}
	queries := []Query{
		MatchAll().WithOffsetRange(1_000_000, 1_999_999), // only block 1
		MatchAll().WithMinBytes(2500),                    // only block 2
		MatchAll().WithSpanRange(1, 40),                  // only block 0
		MatchAll().WithOffsetRange(0, 999_999).WithMinBytes(500),
	}
	for qi, q := range queries {
		var want []Record
		for i := range recs {
			if q.Matches(&recs[i]) {
				want = append(want, recs[i])
			}
		}
		s := cr.Scan(q, 2)
		var got []Record
		for {
			r, err := s.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, r)
		}
		stats := s.Stats()
		s.Close()
		if !reflect.DeepEqual(normalizeArgs(want), normalizeArgs(got)) {
			t.Fatalf("query %d: scan/filter mismatch (%d vs %d records)", qi, len(want), len(got))
		}
		if stats.BlocksPrunedByStats == 0 {
			t.Fatalf("query %d: no blocks pruned by column stats (decoded %d of %d)",
				qi, stats.BlocksDecoded, stats.BlocksTotal)
		}
		if stats.BlocksDecoded+stats.BlocksPrunedByStats > stats.BlocksTotal {
			t.Fatalf("query %d: inconsistent stats %+v", qi, stats)
		}
	}
}
