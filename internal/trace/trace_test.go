package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"iotaxo/internal/sim"
)

func sampleRecord() Record {
	return Record{
		Time:  39587*sim.Second + 92996*sim.Microsecond,
		Dur:   34 * sim.Microsecond,
		Node:  "host13.lanl.gov",
		Rank:  7,
		PID:   10378,
		Class: ClassSyscall,
		Name:  "SYS_open",
		Args:  []string{`"/etc/hosts"`, "0", "438"},
		Ret:   "3",
		Path:  "/etc/hosts",
	}
}

func TestFormatLocalTimeMatchesFigure1Style(t *testing.T) {
	// 10:59:47.092996 from Figure 1.
	ts := sim.Time((10*3600+59*60+47)*int64(sim.Second) + 92996*int64(sim.Microsecond))
	if got := FormatLocalTime(ts); got != "10:59:47.092996" {
		t.Fatalf("got %q", got)
	}
}

func TestTextRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewTextWriter(&buf, "host13.lanl.gov", 7, 10378)
	in := sampleRecord()
	if err := w.Write(&in); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `SYS_open("/etc/hosts", 0, 438) = 3 <0.000034>`) {
		t.Fatalf("unexpected text:\n%s", out)
	}
	recs, err := NewTextReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records", len(recs))
	}
	got := recs[0]
	if got.Name != in.Name || got.Ret != in.Ret || got.Dur != in.Dur {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, in)
	}
	if got.Node != "host13.lanl.gov" || got.Rank != 7 || got.PID != 10378 {
		t.Fatalf("header context lost: %+v", got)
	}
	if got.Path != "/etc/hosts" {
		t.Fatalf("path not inferred: %q", got.Path)
	}
	if got.Class != ClassSyscall {
		t.Fatalf("class = %v", got.Class)
	}
}

func TestTextParserInfersIOFields(t *testing.T) {
	src := `# node=n1 rank=2 pid=55
00:00:01.000000 SYS_pwrite(3, 65536, 32768) = 32768 <0.000100>
00:00:02.000000 MPI_File_write_at(0, 1048576, 4096) = 4096 <0.000200>
00:00:03.000000 MPI_Barrier(92) = 0 <0.001000>
`
	recs, err := NewTextReader(strings.NewReader(src)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].Offset != 65536 || recs[0].Bytes != 32768 {
		t.Fatalf("pwrite fields: %+v", recs[0])
	}
	if recs[1].Class != ClassMPI || recs[1].Offset != 1048576 || recs[1].Bytes != 4096 {
		t.Fatalf("mpi fields: %+v", recs[1])
	}
	if recs[2].IsIO() {
		t.Fatal("barrier classified as IO")
	}
}

func TestTextParserErrors(t *testing.T) {
	bad := []string{
		"garbage line without timestamp",
		"00:00:01.000000 no_parens = 0 <0.0>",
		"00:00:01.000000 SYS_open(\"x\" = 0 <0.0>",
		"00:00:01.000000 SYS_open(\"x\") 0 <0.0>",
		"00:00:01.000000 SYS_open(\"x\") = 0",
	}
	for _, line := range bad {
		_, err := NewTextReader(strings.NewReader(line + "\n")).ReadAll()
		if err == nil {
			t.Errorf("no error for %q", line)
		}
	}
}

func TestTextQuotedCommaArgs(t *testing.T) {
	src := "00:00:01.000000 SYS_open(\"/a,b(c).txt\", 0, 438) = 3 <0.000010>\n"
	recs, err := NewTextReader(strings.NewReader(src)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Path != "/a,b(c).txt" {
		t.Fatalf("path = %q", recs[0].Path)
	}
	if len(recs[0].Args) != 3 {
		t.Fatalf("args = %v", recs[0].Args)
	}
}

func randomRecord(rng *rand.Rand) Record {
	names := []string{"SYS_write", "SYS_read", "MPI_Barrier", "MPI_File_write_at", "VFS_write", "libc_puts"}
	var args []string
	for i := 0; i < rng.Intn(4); i++ {
		args = append(args, string(rune('a'+rng.Intn(26))))
	}
	return Record{
		Time:   sim.Time(rng.Int63n(1e15)),
		Dur:    sim.Duration(rng.Int63n(1e10)),
		Node:   "node" + string(rune('0'+rng.Intn(10))),
		Rank:   rng.Intn(64) - 1,
		PID:    rng.Intn(1 << 15),
		Class:  EventClass(rng.Intn(int(numClasses))),
		Name:   names[rng.Intn(len(names))],
		Args:   args,
		Ret:    "0",
		Path:   "/scratch/file",
		Offset: rng.Int63n(1 << 40),
		Bytes:  rng.Int63n(1 << 30),
		UID:    rng.Intn(1 << 16),
		GID:    rng.Intn(1 << 16),
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var in []Record
	for i := 0; i < 1000; i++ {
		in = append(in, randomRecord(rng))
	}
	for _, compress := range []bool{false, true} {
		var buf bytes.Buffer
		w := NewBinaryWriter(&buf, BinaryOptions{Compress: compress, RecordsPerBlock: 64})
		for i := range in {
			if err := w.Write(&in[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		out, err := NewBinaryReader(&buf).ReadAll()
		if err != nil {
			t.Fatalf("compress=%v: %v", compress, err)
		}
		if len(out) != len(in) {
			t.Fatalf("compress=%v: got %d records, want %d", compress, len(out), len(in))
		}
		for i := range in {
			a, b := in[i], out[i]
			// Args nil vs empty slice normalization.
			if len(a.Args) == 0 {
				a.Args = nil
			}
			if len(b.Args) == 0 {
				b.Args = nil
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("compress=%v: record %d mismatch:\n%+v\n%+v", compress, i, a, b)
			}
		}
	}
}

func TestBinaryCompressionShrinksRepetitiveTraces(t *testing.T) {
	rec := sampleRecord()
	var plain, comp bytes.Buffer
	wp := NewBinaryWriter(&plain, BinaryOptions{})
	wc := NewBinaryWriter(&comp, BinaryOptions{Compress: true})
	for i := 0; i < 2000; i++ {
		if err := wp.Write(&rec); err != nil {
			t.Fatal(err)
		}
		if err := wc.Write(&rec); err != nil {
			t.Fatal(err)
		}
	}
	wp.Close()
	wc.Close()
	if comp.Len() >= plain.Len()/2 {
		t.Fatalf("compression ineffective: %d vs %d", comp.Len(), plain.Len())
	}
}

func TestBinaryDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf, BinaryOptions{RecordsPerBlock: 8})
	rec := sampleRecord()
	for i := 0; i < 32; i++ {
		if err := w.Write(&rec); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	data := buf.Bytes()
	// Flip a byte in the middle of the stream (inside some block payload).
	data[len(data)/2] ^= 0xFF
	_, err := NewBinaryReader(bytes.NewReader(data)).ReadAll()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestBinaryDetectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf, BinaryOptions{RecordsPerBlock: 8})
	rec := sampleRecord()
	for i := 0; i < 32; i++ {
		w.Write(&rec)
	}
	w.Close()
	data := buf.Bytes()[:buf.Len()-5]
	_, err := NewBinaryReader(bytes.NewReader(data)).ReadAll()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestBinaryBadMagic(t *testing.T) {
	_, err := NewBinaryReader(strings.NewReader("NOTATRACEFILE")).Next()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestBinaryEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf, BinaryOptions{})
	w.Close()
	recs, err := NewBinaryReader(&buf).ReadAll()
	if err != nil || len(recs) != 0 {
		t.Fatalf("recs=%d err=%v", len(recs), err)
	}
}

func TestBinaryFlagsExposed(t *testing.T) {
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf, BinaryOptions{Compress: true, Anonymized: true})
	rec := sampleRecord()
	w.Write(&rec)
	w.Close()
	r := NewBinaryReader(&buf)
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if r.Flags()&FlagCompressed == 0 || r.Flags()&FlagAnonymized == 0 {
		t.Fatalf("flags = %b", r.Flags())
	}
}

// Property: binary encode/decode is the identity on records.
func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomRecord(rng)
		var buf bytes.Buffer
		w := NewBinaryWriter(&buf, BinaryOptions{})
		if err := w.Write(&in); err != nil {
			return false
		}
		w.Close()
		out, err := NewBinaryReader(&buf).ReadAll()
		if err != nil || len(out) != 1 {
			return false
		}
		a, b := in, out[0]
		if len(a.Args) == 0 {
			a.Args = nil
		}
		if len(b.Args) == 0 {
			b.Args = nil
		}
		return reflect.DeepEqual(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: text writer output always parses back with matching name/ret/dur
// for well-formed records.
func TestTextRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomRecord(rng)
		in.Time = sim.Time(rng.Int63n(int64(24 * sim.Hour)))
		// Text format carries microsecond resolution only.
		in.Time = in.Time / 1000 * 1000
		in.Dur = in.Dur / 1000 * 1000
		var buf bytes.Buffer
		w := NewTextWriter(&buf, in.Node, in.Rank, in.PID)
		if err := w.Write(&in); err != nil {
			return false
		}
		w.Flush()
		out, err := NewTextReader(&buf).ReadAll()
		if err != nil || len(out) != 1 {
			return false
		}
		got := out[0]
		return got.Name == in.Name && got.Ret == in.Ret &&
			got.Dur == in.Dur && got.Time == in.Time &&
			got.Node == in.Node && got.Rank == in.Rank
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestClassStringRoundTrip(t *testing.T) {
	for c := EventClass(0); c < numClasses; c++ {
		got, err := ParseClass(c.String())
		if err != nil || got != c {
			t.Fatalf("class %v round trip: %v %v", c, got, err)
		}
	}
	if _, err := ParseClass("bogus"); err == nil {
		t.Fatal("expected error")
	}
}

func TestCloneIsDeep(t *testing.T) {
	r := sampleRecord()
	c := r.Clone()
	c.Args[0] = "mutated"
	if r.Args[0] == "mutated" {
		t.Fatal("Clone shares Args")
	}
}

func TestEstimatedTextSizePositive(t *testing.T) {
	r := sampleRecord()
	if r.EstimatedTextSize() <= 0 {
		t.Fatal("estimate not positive")
	}
}

func TestTextReaderEOFBehavior(t *testing.T) {
	r := NewTextReader(strings.NewReader(""))
	_, err := r.Next()
	if err != io.EOF {
		t.Fatalf("err = %v, want EOF", err)
	}
}

func TestReadAutoDetectsBoth(t *testing.T) {
	rec := sampleRecord()
	var bin bytes.Buffer
	bw := NewBinaryWriter(&bin, BinaryOptions{})
	bw.Write(&rec)
	bw.Close()
	recs, format, err := ReadAuto(&bin)
	if err != nil || format != FormatBinary || len(recs) != 1 {
		t.Fatalf("binary auto: %v %v %d", err, format, len(recs))
	}

	var txt bytes.Buffer
	tw := NewTextWriter(&txt, "n", 0, 1)
	tw.Write(&rec)
	tw.Flush()
	recs, format, err = ReadAuto(&txt)
	if err != nil || format != FormatText || len(recs) != 1 {
		t.Fatalf("text auto: %v %v %d", err, format, len(recs))
	}
}

func TestReadAutoEmpty(t *testing.T) {
	_, format, _ := ReadAuto(strings.NewReader(""))
	if format != FormatUnknown {
		t.Fatalf("format = %v", format)
	}
	if FormatUnknown.String() != "unknown" || FormatText.String() != "text" || FormatBinary.String() != "binary" {
		t.Fatal("format strings")
	}
}

// Property: the binary reader never panics on arbitrary input; it returns
// records or an error.
func TestBinaryReaderFuzzProperty(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if recover() != nil {
				t.Errorf("panic on %x", data)
			}
		}()
		NewBinaryReader(bytes.NewReader(data)).ReadAll()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	// Also with a valid header followed by garbage.
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf, BinaryOptions{})
	rec := sampleRecord()
	w.Write(&rec)
	w.Close()
	data := append(buf.Bytes(), 0xde, 0xad, 0xbe, 0xef, 0x01)
	if _, err := NewBinaryReader(bytes.NewReader(data)).ReadAll(); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

// Property: the text parser never panics on arbitrary lines.
func TestTextReaderFuzzProperty(t *testing.T) {
	f := func(line string) bool {
		defer func() {
			if recover() != nil {
				t.Errorf("panic on %q", line)
			}
		}()
		NewTextReader(strings.NewReader(line + "\n")).ReadAll()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
