package trace

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"iotaxo/internal/sim"
)

// normalizeArgs maps empty Args to nil so DeepEqual ignores the nil-vs-empty
// distinction, like the v1 round-trip tests.
func normalizeArgs(recs []Record) []Record {
	out := append([]Record(nil), recs...)
	for i := range out {
		if len(out[i].Args) == 0 {
			out[i].Args = nil
		}
	}
	return out
}

// writeColumnar encodes recs into a Closed v2 stream.
func writeColumnar(t *testing.T, recs []Record, opts ColumnarOptions) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewColumnarWriter(&buf, opts)
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestColumnarRoundTrip(t *testing.T) {
	in := normalizeArgs(randomRecords(1000, 42))
	for _, compress := range []bool{false, true} {
		data := writeColumnar(t, in, ColumnarOptions{Compress: compress, RecordsPerBlock: 64})
		out, err := NewColumnarSource(bytes.NewReader(data)).ReadAll()
		if err != nil {
			t.Fatalf("compress=%v: %v", compress, err)
		}
		if !reflect.DeepEqual(in, normalizeArgs(out)) {
			t.Fatalf("compress=%v: round trip mismatch", compress)
		}
	}
}

func TestColumnarAutodetect(t *testing.T) {
	rec := sampleRecord()
	data := writeColumnar(t, []Record{rec}, ColumnarOptions{})
	recs, format, err := ReadAuto(bytes.NewReader(data))
	if err != nil || format != FormatColumnar || len(recs) != 1 {
		t.Fatalf("columnar auto: %v %v %d", err, format, len(recs))
	}
	if FormatColumnar.String() != "columnar" {
		t.Fatal("format string")
	}
}

func TestColumnarFlagsExposed(t *testing.T) {
	rec := sampleRecord()
	var buf bytes.Buffer
	w := NewColumnarWriter(&buf, ColumnarOptions{Compress: true, Anonymized: true})
	w.Write(&rec)
	w.Close()
	src := NewColumnarSource(bytes.NewReader(buf.Bytes()))
	if _, err := src.Next(); err != nil {
		t.Fatal(err)
	}
	if src.Flags()&FlagCompressed == 0 || src.Flags()&FlagAnonymized == 0 {
		t.Fatalf("flags = %b", src.Flags())
	}
	cr, err := NewColumnarReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if cr.Flags() != src.Flags() {
		t.Fatalf("reader flags %b != source flags %b", cr.Flags(), src.Flags())
	}
}

func TestColumnarEmptyStream(t *testing.T) {
	data := writeColumnar(t, nil, ColumnarOptions{})
	recs, err := NewColumnarSource(bytes.NewReader(data)).ReadAll()
	if err != nil || len(recs) != 0 {
		t.Fatalf("recs=%d err=%v", len(recs), err)
	}
	cr, err := NewColumnarReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if cr.NumBlocks() != 0 || cr.NumRecords() != 0 {
		t.Fatalf("blocks=%d records=%d", cr.NumBlocks(), cr.NumRecords())
	}
	s := cr.Scan(MatchAll(), 2)
	if _, err := s.Next(); err != io.EOF {
		t.Fatalf("err = %v, want EOF", err)
	}
}

// A stream that was Flushed but never Closed has no footer: it must stay
// readable sequentially and be rejected by the indexed reader.
func TestColumnarFlushWithoutClose(t *testing.T) {
	in := normalizeArgs(randomRecords(100, 7))
	var buf bytes.Buffer
	w := NewColumnarWriter(&buf, ColumnarOptions{RecordsPerBlock: 16})
	for i := range in {
		if err := w.Write(&in[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	out, err := NewColumnarSource(bytes.NewReader(buf.Bytes())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, normalizeArgs(out)) {
		t.Fatal("flush-only stream round trip mismatch")
	}
	if _, err := NewColumnarReader(bytes.NewReader(buf.Bytes()), int64(buf.Len())); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("indexed open of unclosed stream: err = %v, want ErrCorrupt", err)
	}
}

// Mirror of TestBinaryDetectsCorruption: any flipped byte — payload, block
// header, or footer — must surface as ErrCorrupt on a sequential read (or,
// for trailer bytes, at least fail the indexed open below).
func TestColumnarDetectsCorruption(t *testing.T) {
	rec := sampleRecord()
	recs := make([]Record, 32)
	for i := range recs {
		recs[i] = rec
		recs[i].Time = sim.Time(i) * sim.Second
	}
	clean := writeColumnar(t, recs, ColumnarOptions{RecordsPerBlock: 8})
	data := append([]byte(nil), clean...)
	data[len(data)/2] ^= 0xFF
	if _, err := NewColumnarSource(bytes.NewReader(data)).ReadAll(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}

	// Flip every single byte past the stream header in turn: sequential read
	// or indexed open must notice each one (flag-byte flips excepted, as in
	// v1 where flags are also unprotected).
	for off := columnarHeaderLen; off < len(clean); off++ {
		data := append([]byte(nil), clean...)
		data[off] ^= 0xFF
		_, seqErr := NewColumnarSource(bytes.NewReader(data)).ReadAll()
		_, idxErr := NewColumnarReader(bytes.NewReader(data), int64(len(data)))
		if seqErr == nil && idxErr == nil {
			t.Fatalf("flipped byte %d of %d undetected", off, len(clean))
		}
	}
}

func TestColumnarDetectsTruncation(t *testing.T) {
	rec := sampleRecord()
	recs := make([]Record, 32)
	for i := range recs {
		recs[i] = rec
	}
	clean := writeColumnar(t, recs, ColumnarOptions{RecordsPerBlock: 8})
	// Cut at several depths: inside the trailer, the index, and data blocks.
	for _, cut := range []int{5, trailerLen, trailerLen + 10, len(clean) / 2} {
		data := clean[:len(clean)-cut]
		if _, err := NewColumnarSource(bytes.NewReader(data)).ReadAll(); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut %d: err = %v, want ErrCorrupt", cut, err)
		}
		if _, err := NewColumnarReader(bytes.NewReader(data), int64(len(data))); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut %d: indexed err = %v, want ErrCorrupt", cut, err)
		}
	}
}

func TestColumnarBadMagic(t *testing.T) {
	if _, err := NewColumnarSource(bytes.NewReader([]byte("NOTATRACEFILE"))).Next(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if _, err := NewColumnarReader(bytes.NewReader([]byte("NOTATRACEFILEPADDEDOUTTOSIXTYTWOBYTESLONGxxxxxxxxxxxxxxxxxxxxx")), 62); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("indexed err = %v, want ErrCorrupt", err)
	}
}

func TestColumnarTrailingGarbage(t *testing.T) {
	data := writeColumnar(t, []Record{sampleRecord()}, ColumnarOptions{})
	data = append(data, 0xde, 0xad)
	if _, err := NewColumnarSource(bytes.NewReader(data)).ReadAll(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

// Property: the columnar source never panics on arbitrary input.
func TestColumnarSourceFuzzProperty(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if recover() != nil {
				t.Errorf("panic on %x", data)
			}
		}()
		NewColumnarSource(bytes.NewReader(data)).ReadAll()
		NewColumnarReader(bytes.NewReader(data), int64(len(data)))
		withMagic := append(append([]byte(nil), columnarMagic[:]...), data...)
		NewColumnarSource(bytes.NewReader(withMagic)).ReadAll()
		NewColumnarReader(bytes.NewReader(withMagic), int64(len(withMagic)))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// queryRecords is the brute-force reference: filter materialized records.
func queryRecords(recs []Record, q Query) []Record {
	var out []Record
	for i := range recs {
		if q.Matches(&recs[i]) {
			out = append(out, recs[i])
		}
	}
	return out
}

// Property: for random time windows, rank ranges, and class sets, an indexed
// scan that skips blocks returns exactly what a full scan filters.
func TestColumnarIndexedQueryMatchesFullScan(t *testing.T) {
	in := normalizeArgs(randomRecords(3000, 99))
	for _, compress := range []bool{false, true} {
		data := writeColumnar(t, in, ColumnarOptions{Compress: compress, RecordsPerBlock: 128})
		cr, err := NewColumnarReader(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(5))
		for trial := 0; trial < 50; trial++ {
			q := MatchAll()
			if rng.Intn(2) == 0 {
				lo := sim.Time(rng.Int63n(1e15))
				q = q.WithWindow(lo, lo+sim.Time(rng.Int63n(1e15)))
			}
			if rng.Intn(2) == 0 {
				lo := rng.Intn(64) - 1
				q = q.WithRanks(lo, lo+rng.Intn(16))
			}
			if rng.Intn(3) == 0 {
				q = q.WithClasses(EventClass(rng.Intn(int(numClasses))))
			}
			scan := cr.Scan(q, 4)
			got, err := Collect(scan)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			want := queryRecords(in, q)
			if !reflect.DeepEqual(normalizeArgs(got), normalizeArgs(want)) {
				t.Fatalf("trial %d (compress=%v): scan returned %d records, brute force %d, or order/content mismatch",
					trial, compress, len(got), len(want))
			}
			st := scan.Stats()
			if st.RecordsMatched != int64(len(want)) {
				t.Fatalf("trial %d: stats.RecordsMatched=%d want %d", trial, st.RecordsMatched, len(want))
			}
			if st.BlocksDecoded > st.BlocksTotal {
				t.Fatalf("trial %d: decoded %d of %d blocks", trial, st.BlocksDecoded, st.BlocksTotal)
			}
		}
	}
}

// The acceptance-criteria shape: a rank-major 4096-rank trace, querying
// ranks 900-1000, must decode at most 20% of the blocks.
func TestColumnarIndexSkipsBlocksAt4096Ranks(t *testing.T) {
	const ranks, perRank = 4096, 16
	recs := make([]Record, 0, ranks*perRank)
	for rank := 0; rank < ranks; rank++ {
		for i := 0; i < perRank; i++ {
			recs = append(recs, Record{
				Time: sim.Time(i) * sim.Millisecond, Dur: 10 * sim.Microsecond,
				Node: fmt.Sprintf("n%04d", rank/8), Rank: rank, PID: 1000 + rank,
				Class: ClassSyscall, Name: "SYS_write", Ret: "65536",
				Path:   fmt.Sprintf("/pfs/out/rank%04d.dat", rank),
				Offset: int64(i) * 65536, Bytes: 65536,
			})
		}
	}
	data := writeColumnar(t, recs, ColumnarOptions{RecordsPerBlock: 512})
	cr, err := NewColumnarReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	q := MatchAll().WithRanks(900, 1000)
	scan := cr.Scan(q, 0)
	got, err := Collect(scan)
	if err != nil {
		t.Fatal(err)
	}
	if want := 101 * perRank; len(got) != want {
		t.Fatalf("got %d records, want %d", len(got), want)
	}
	st := scan.Stats()
	if st.BlocksTotal != ranks*perRank/512 {
		t.Fatalf("BlocksTotal = %d", st.BlocksTotal)
	}
	if frac := float64(st.BlocksDecoded) / float64(st.BlocksTotal); frac > 0.20 {
		t.Fatalf("query decoded %d of %d blocks (%.0f%%), want <= 20%%",
			st.BlocksDecoded, st.BlocksTotal, frac*100)
	}
	if st.BytesRead >= int64(len(data))/5 {
		t.Fatalf("query read %d of %d bytes", st.BytesRead, len(data))
	}
}

// ScanViews must visit exactly the rows Scan yields, in order, without
// materializing records.
func TestColumnarScanViewsMatchesScan(t *testing.T) {
	in := randomRecords(2000, 13)
	data := writeColumnar(t, in, ColumnarOptions{Compress: true, RecordsPerBlock: 256})
	cr, err := NewColumnarReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	q := MatchAll().WithRanks(0, 31).WithClasses(ClassSyscall, ClassMPI)
	var viaViews struct {
		n     int64
		bytes int64
		time  int64
	}
	st, err := cr.ScanViews(q, 3, func(v *BlockView, rows []int) error {
		bs, err := v.Bytes()
		if err != nil {
			return err
		}
		ds, err := v.Durs()
		if err != nil {
			return err
		}
		for _, i := range rows {
			viaViews.n++
			viaViews.bytes += bs[i]
			viaViews.time += ds[i]
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var viaScan struct {
		n     int64
		bytes int64
		time  int64
	}
	for _, r := range queryRecords(in, q) {
		viaScan.n++
		viaScan.bytes += r.Bytes
		viaScan.time += int64(r.Dur)
	}
	if viaViews != viaScan {
		t.Fatalf("view aggregation %+v != record aggregation %+v", viaViews, viaScan)
	}
	if st.RecordsMatched != viaScan.n {
		t.Fatalf("stats.RecordsMatched=%d want %d", st.RecordsMatched, viaScan.n)
	}
}

// Early Close must not deadlock or leak the pool (mirror of the parallel
// reader's early-close test).
func TestColumnarScanEarlyClose(t *testing.T) {
	in := randomRecords(5000, 3)
	data := writeColumnar(t, in, ColumnarOptions{RecordsPerBlock: 64})
	cr, err := NewColumnarReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		scan := cr.Scan(MatchAll(), 4)
		if _, err := scan.Next(); err != nil {
			t.Fatal(err)
		}
		scan.Close()
	}
}

// Columnar encoding must be several times smaller than v1 on realistic
// repetitive traces — the format's reason to exist.
func TestColumnarSmallerThanBinary(t *testing.T) {
	recs := make([]Record, 8192)
	for i := range recs {
		rank := i % 64
		recs[i] = Record{
			Time: sim.Time(i) * 50 * sim.Microsecond, Dur: 120 * sim.Microsecond,
			Node: fmt.Sprintf("cn%03d", rank/4), Rank: rank, PID: 4000 + rank,
			Class: ClassSyscall, Name: "SYS_write",
			Args: []string{"3", "65536"}, Ret: "65536",
			Path:   fmt.Sprintf("/pfs/out/rank%03d/part-%04d.dat", rank, i%8),
			Offset: int64(i/64) * 65536, Bytes: 65536, UID: 1001, GID: 100,
		}
	}
	var v1, v1c bytes.Buffer
	w1 := NewBinaryWriter(&v1, BinaryOptions{})
	w1c := NewBinaryWriter(&v1c, BinaryOptions{Compress: true})
	for i := range recs {
		w1.Write(&recs[i])
		w1c.Write(&recs[i])
	}
	w1.Close()
	w1c.Close()
	v2 := writeColumnar(t, recs, ColumnarOptions{})
	v2c := writeColumnar(t, recs, ColumnarOptions{Compress: true})
	if v1.Len() < 3*len(v2) {
		t.Fatalf("v2 plain not 3x smaller: v1=%d v2=%d", v1.Len(), len(v2))
	}
	if v1c.Len() < 2*len(v2c) {
		t.Fatalf("v2 compressed not 2x smaller: v1c=%d v2c=%d", v1c.Len(), len(v2c))
	}
}

// Property: single-record columnar encode/decode is the identity.
func TestColumnarRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomRecord(rng)
		var buf bytes.Buffer
		w := NewColumnarWriter(&buf, ColumnarOptions{})
		if err := w.Write(&in); err != nil {
			return false
		}
		w.Close()
		out, err := NewColumnarSource(bytes.NewReader(buf.Bytes())).ReadAll()
		if err != nil || len(out) != 1 {
			return false
		}
		a, b := normalizeArgs([]Record{in}), normalizeArgs(out)
		return reflect.DeepEqual(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// The block views must expose direction bits identical to recomputing
// Record.Direction, and lazily decoded columns must agree with records.
func TestColumnarViewColumnsAgreeWithRecords(t *testing.T) {
	in := randomRecords(600, 21)
	data := writeColumnar(t, in, ColumnarOptions{RecordsPerBlock: 100})
	cr, err := NewColumnarReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	idx := 0
	_, err = cr.ScanViews(MatchAll(), 2, func(v *BlockView, rows []int) error {
		dirs, err := v.Dirs()
		if err != nil {
			return err
		}
		names, err := v.Names()
		if err != nil {
			return err
		}
		offs, err := v.Offsets()
		if err != nil {
			return err
		}
		for _, i := range rows {
			r := &in[idx]
			if dirs[i] != r.Direction() {
				return fmt.Errorf("row %d: dir %v != %v", idx, dirs[i], r.Direction())
			}
			if names[i] != r.Name || offs[i] != r.Offset {
				return fmt.Errorf("row %d: column mismatch", idx)
			}
			idx++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if idx != len(in) {
		t.Fatalf("visited %d rows, want %d", idx, len(in))
	}
}
