package lanltrace

import (
	"strings"
	"testing"

	"iotaxo/internal/cluster"
	"iotaxo/internal/mpi"
	"iotaxo/internal/sim"
	"iotaxo/internal/trace"
	"iotaxo/internal/workload"
)

func testCluster(skew bool) *cluster.Cluster {
	cfg := cluster.Small()
	if !skew {
		cfg.MaxSkew = 0
		cfg.MaxDrift = 0
	}
	return cluster.New(cfg)
}

func smallParams() workload.Params {
	return workload.Params{
		Pattern:   workload.N1Strided,
		BlockSize: 64 << 10,
		NObj:      4,
		Path:      "/pfs/mpi_io_test.out",
	}
}

func runTraced(t *testing.T, cfg Config, skew bool) (*Report, *cluster.Cluster) {
	t.Helper()
	c := testCluster(skew)
	fw := New(cfg)
	params := smallParams()
	rep := fw.Run(c.World, params.CommandLine(), func(p *sim.Proc, r *mpi.Rank) {
		workload.Program(p, r, params, nil)
	})
	return rep, c
}

func TestTracedRunProducesRecords(t *testing.T) {
	rep, _ := runTraced(t, DefaultConfig(), false)
	if rep.TraceEvents == 0 || rep.TraceBytes == 0 {
		t.Fatalf("no trace output: %+v", rep)
	}
	for rank, col := range rep.PerRank {
		if col.Len() == 0 {
			t.Fatalf("rank %d produced no records", rank)
		}
	}
}

func TestLtraceSeesMPIAndSyscalls(t *testing.T) {
	rep, _ := runTraced(t, DefaultConfig(), false)
	classes := map[trace.EventClass]int{}
	for _, r := range rep.AllRecords() {
		classes[r.Class]++
	}
	if classes[trace.ClassMPI] == 0 {
		t.Fatal("ltrace mode saw no MPI library calls")
	}
	if classes[trace.ClassSyscall] == 0 {
		t.Fatal("ltrace mode saw no system calls")
	}
}

func TestStraceSeesOnlySyscalls(t *testing.T) {
	rep, _ := runTraced(t, StraceConfig(), false)
	for _, r := range rep.AllRecords() {
		if r.Class != trace.ClassSyscall {
			t.Fatalf("strace mode saw %v record %s", r.Class, r.Name)
		}
	}
}

func TestRawTraceOutputParses(t *testing.T) {
	rep, _ := runTraced(t, DefaultConfig(), false)
	text := rep.RawTraceText(0)
	if !strings.Contains(text, "SYS_pwrite") {
		t.Fatalf("raw trace missing writes:\n%s", text[:min(len(text), 500)])
	}
	recs, err := trace.NewTextReader(strings.NewReader(text)).ReadAll()
	if err != nil {
		t.Fatalf("raw trace does not parse: %v", err)
	}
	if len(recs) != rep.PerRank[0].Len() {
		t.Fatalf("parsed %d records, collector has %d", len(recs), rep.PerRank[0].Len())
	}
}

func TestAggregateTimingFormat(t *testing.T) {
	rep, _ := runTraced(t, DefaultConfig(), true)
	text := rep.AggregateTimingText()
	for _, want := range []string{
		"# Barrier before /mpi_io_test.exe",
		"# Barrier after /mpi_io_test.exe",
		"Entered barrier at",
		"Exited barrier at",
		"host01.lanl.gov",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("timing output missing %q:\n%s", want, text)
		}
	}
}

func TestCallSummaryFormat(t *testing.T) {
	rep, _ := runTraced(t, DefaultConfig(), false)
	text := rep.CallSummaryText()
	for _, want := range []string{
		"SUMMARY COUNT OF TRACED CALL(S)",
		"Function Name",
		"MPI_Barrier",
		"SYS_pwrite",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("summary missing %q:\n%s", want, text)
		}
	}
}

func TestTracingAddsOverhead(t *testing.T) {
	params := smallParams()
	// Untraced baseline.
	c1 := testCluster(false)
	base := workload.Run(c1.World, params)
	// Traced.
	rep, _ := runTraced(t, DefaultConfig(), false)
	if rep.Elapsed <= base.Elapsed {
		t.Fatalf("tracing did not slow the app: traced %v vs untraced %v", rep.Elapsed, base.Elapsed)
	}
}

func TestStraceCheaperThanLtrace(t *testing.T) {
	repL, _ := runTraced(t, DefaultConfig(), false)
	repS, _ := runTraced(t, StraceConfig(), false)
	if repS.Elapsed >= repL.Elapsed {
		t.Fatalf("strace (%v) not cheaper than ltrace (%v)", repS.Elapsed, repL.Elapsed)
	}
}

func TestTracedRunSameFileSystemEndState(t *testing.T) {
	params := smallParams()
	c1 := testCluster(false)
	workload.Run(c1.World, params)
	s1, d1, w1, ok1 := c1.PFS.Snapshot(params.Path)

	c2 := testCluster(false)
	fw := New(DefaultConfig())
	fw.Run(c2.World, params.CommandLine(), func(p *sim.Proc, r *mpi.Rank) {
		workload.Program(p, r, params, nil)
	})
	s2, d2, w2, ok2 := c2.PFS.Snapshot(params.Path)

	if !ok1 || !ok2 || s1 != s2 || d1 != d2 || w1 != w2 {
		t.Fatalf("end state differs: (%d,%x,%d,%v) vs (%d,%x,%d,%v)", s1, d1, w1, ok1, s2, d2, w2, ok2)
	}
}

func TestClockEstimatesRecoverSkew(t *testing.T) {
	cfg := cluster.Small()
	cfg.MaxSkew = 200 * sim.Millisecond
	cfg.MaxDrift = 50e-6
	c := cluster.New(cfg)
	fw := New(StraceConfig())
	params := smallParams()
	rep := fw.Run(c.World, params.CommandLine(), func(p *sim.Proc, r *mpi.Rank) {
		workload.Program(p, r, params, nil)
	})
	est, err := rep.ClockEstimates()
	if err != nil {
		t.Fatal(err)
	}
	if len(est) != 4 {
		t.Fatalf("estimates for %d nodes, want 4", len(est))
	}
	// Rank 0's own estimate must be ~zero (it is the reference).
	ref := est[cluster.NodeName(0)]
	if ref.Skew > sim.Millisecond || ref.Skew < -sim.Millisecond {
		t.Fatalf("reference node skew estimate %v, want ~0", ref.Skew)
	}
	// Estimated relative skews must roughly match the configured clocks:
	// check that at least one non-reference node has a visible skew.
	sawSkew := false
	for node, e := range est {
		if node == cluster.NodeName(0) {
			continue
		}
		if e.Skew > 10*sim.Millisecond || e.Skew < -10*sim.Millisecond {
			sawSkew = true
		}
	}
	if !sawSkew {
		t.Fatal("no node showed measurable skew despite configured clock error")
	}
}

func TestCorrectedTimelineIsSorted(t *testing.T) {
	cfg := cluster.Small()
	cfg.MaxSkew = 200 * sim.Millisecond
	c := cluster.New(cfg)
	fw := New(StraceConfig())
	params := smallParams()
	rep := fw.Run(c.World, params.CommandLine(), func(p *sim.Proc, r *mpi.Rank) {
		workload.Program(p, r, params, nil)
	})
	recs, err := rep.CorrectedTimeline()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Time < recs[i-1].Time {
			t.Fatalf("timeline not sorted at %d", i)
		}
	}
}

func TestSkipTimingJob(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SkipTimingJob = true
	rep, _ := runTraced(t, cfg, false)
	if _, err := rep.ClockEstimates(); err == nil {
		t.Fatal("expected error without timing job")
	}
}

func TestTimingJobNotTraced(t *testing.T) {
	// The pre/post barrier jobs must not appear in the raw traces: count
	// MPI_Barrier records; the workload itself does 2 barriers per rank.
	rep, _ := runTraced(t, DefaultConfig(), false)
	for rank, col := range rep.PerRank {
		barriers := 0
		for _, r := range col.Records {
			if r.Name == "MPI_Barrier" {
				barriers++
			}
		}
		if barriers != 2 {
			t.Fatalf("rank %d has %d MPI_Barrier records, want 2 (timing job leaked into trace)", rank, barriers)
		}
	}
}

func TestClassificationMatchesPaper(t *testing.T) {
	fw := New(DefaultConfig())
	c := fw.Classification()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Name != "LANL-Trace" || !bool(c.ParallelFSCompat) || bool(c.ReplayableTraces) {
		t.Fatalf("classification: %+v", c)
	}
}

func TestModeString(t *testing.T) {
	if ModeStrace.String() != "strace" || ModeLtrace.String() != "ltrace" {
		t.Fatal("mode strings")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
