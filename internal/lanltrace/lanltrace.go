// Package lanltrace reimplements LANL-Trace, the paper's in-house tracing
// framework: a wrapper around strace (system calls only) or ltrace (library
// calls and system calls) that produces three human-readable outputs per run
// (Figure 1):
//
//  1. raw trace data per process (strace-style lines),
//  2. aggregate timing information from a simple MPI job run before and
//     after the traced application (each node reports its local time, does a
//     barrier, and reports again — the data that lets analysis account for
//     clock skew and drift), and
//  3. a summary count of traced calls.
//
// The framework is passive (no application instrumentation), works on the
// parallel file system out of the box, and pays per-event interposition
// costs that make its overhead inversely proportional to the application's
// I/O block size — the paper's central measurement.
package lanltrace

import (
	"fmt"
	"sort"
	"strings"

	"iotaxo/internal/analysis"
	"iotaxo/internal/clocks"
	"iotaxo/internal/core"
	"iotaxo/internal/interpose"
	"iotaxo/internal/mpi"
	"iotaxo/internal/sim"
	"iotaxo/internal/trace"
)

// Mode selects the wrapped tracer.
type Mode int

const (
	// ModeStrace traces system calls only.
	ModeStrace Mode = iota
	// ModeLtrace traces library calls and system calls (the default and
	// most expensive configuration).
	ModeLtrace
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == ModeStrace {
		return "strace"
	}
	return "ltrace"
}

// Config tunes the framework.
type Config struct {
	Mode Mode
	// SyscallModel and LibModel are the per-event cost models; zero values
	// select the defaults for the mode.
	SyscallModel interpose.CostModel
	LibModel     interpose.CostModel
	// SkipTimingJob disables the pre/post barrier job (for ablations).
	SkipTimingJob bool
}

// DefaultConfig returns the standard ltrace-mode configuration.
func DefaultConfig() Config {
	return Config{
		Mode:         ModeLtrace,
		SyscallModel: interpose.Ptrace(),
		LibModel:     interpose.LtraceBreakpoint(),
	}
}

// StraceConfig returns the lighter strace-mode configuration.
func StraceConfig() Config {
	return Config{
		Mode:         ModeStrace,
		SyscallModel: interpose.Ptrace(),
	}
}

func (c Config) fix() Config {
	zero := interpose.CostModel{}
	if c.SyscallModel == zero {
		c.SyscallModel = interpose.Ptrace()
	}
	if c.Mode == ModeLtrace && c.LibModel == zero {
		c.LibModel = interpose.LtraceBreakpoint()
	}
	return c
}

// BarrierSample is one line pair of the aggregate timing output: a rank's
// local-clock readings around a barrier.
type BarrierSample struct {
	Rank    int
	Node    string
	PID     int
	Entered sim.Time // local clock at barrier entry
	Exited  sim.Time // local clock at barrier exit
}

// Report is the result of one traced run: the three outputs plus the
// elapsed-time measurement.
type Report struct {
	Command string
	Mode    Mode
	Elapsed sim.Duration

	// PerRank raw traces, indexed by rank.
	PerRank []*interpose.Collector
	// Pre and Post are the timing-job samples around the application.
	Pre, Post []BarrierSample

	// TraceEvents and TraceBytes aggregate tracer output volume.
	TraceEvents int64
	TraceBytes  int64
}

// Framework is a LANL-Trace instance bound to a configuration.
type Framework struct {
	cfg Config
}

// New returns a framework with the given configuration.
func New(cfg Config) *Framework { return &Framework{cfg: cfg.fix()} }

// Name implements the common framework interface.
func (f *Framework) Name() string { return "LANL-Trace" }

// Mode returns the wrapped tracer mode.
func (f *Framework) Mode() Mode { return f.cfg.Mode }

// Run executes program under tracing on the world and returns the report.
// The sequence mirrors the real tool: timing job, traced application,
// timing job. Elapsed covers only the application phase (what the paper
// measures with the time utility).
func (f *Framework) Run(w *mpi.World, command string, program func(p *sim.Proc, r *mpi.Rank)) *Report {
	n := w.Size()
	rep := &Report{
		Command: command,
		Mode:    f.cfg.Mode,
		PerRank: make([]*interpose.Collector, n),
		Pre:     make([]BarrierSample, n),
		Post:    make([]BarrierSample, n),
	}
	recorders := make([]*interpose.Recorder, 0, 2*n)
	appStart := make([]sim.Time, n)
	appEnd := make([]sim.Time, n)

	w.RunToCompletion(func(p *sim.Proc, r *mpi.Rank) {
		me := r.RankID()
		if !f.cfg.SkipTimingJob {
			rep.Pre[me] = timingJob(p, r)
		}

		// Attach the tracer (strace/ltrace fork+attach at app launch).
		col := &interpose.Collector{}
		rep.PerRank[me] = col
		sysRec := interpose.NewRecorder(f.cfg.SyscallModel, col)
		r.Proc().AttachHook(sysRec)
		recorders = append(recorders, sysRec)
		if f.cfg.Mode == ModeLtrace {
			libRec := interpose.NewRecorder(f.cfg.LibModel, col)
			r.AttachLibHook(libRec)
			recorders = append(recorders, libRec)
		}

		appStart[me] = p.Now()
		program(p, r)
		appEnd[me] = p.Now()

		// Detach before the post timing job.
		r.Proc().DetachHooks()
		r.DetachLibHooks()
		if !f.cfg.SkipTimingJob {
			rep.Post[me] = timingJob(p, r)
		}
	})

	var first, last sim.Time
	for i := 0; i < n; i++ {
		if i == 0 || appStart[i] < first {
			first = appStart[i]
		}
		if appEnd[i] > last {
			last = appEnd[i]
		}
	}
	rep.Elapsed = last - first
	for _, rec := range recorders {
		rep.TraceEvents += rec.Events
		rep.TraceBytes += rec.OutputBytes
	}
	return rep
}

// timingJob is the "simple MPI job" of the paper: report local time, do a
// barrier, report local time again.
func timingJob(p *sim.Proc, r *mpi.Rank) BarrierSample {
	entered := r.Wtime(p)
	r.Barrier(p)
	exited := r.Wtime(p)
	return BarrierSample{
		Rank:    r.RankID(),
		Node:    r.Node(),
		PID:     r.Proc().PID(),
		Entered: entered,
		Exited:  exited,
	}
}

// RankSource streams one rank's raw trace ordered by call start time (an
// enclosing library call appears before the system calls it issued, as
// ltrace's "<unfinished ...>" lines do).
func (rep *Report) RankSource(rank int) trace.Source {
	col := rep.PerRank[rank]
	recs := make([]trace.Record, len(col.Records))
	copy(recs, col.Records)
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Time < recs[j].Time })
	return trace.SliceSource(recs)
}

// RecordSource streams every rank's records back to back (unsorted across
// ranks, like reading the per-process trace files in sequence).
func (rep *Report) RecordSource() trace.Source {
	srcs := make([]trace.Source, 0, len(rep.PerRank))
	for _, col := range rep.PerRank {
		if col != nil {
			srcs = append(srcs, col.Source())
		}
	}
	return trace.ChainSources(srcs...)
}

// RawTraceText renders rank's raw trace in the Figure 1 format by pumping
// RankSource through a text sink.
func (rep *Report) RawTraceText(rank int) string {
	var b strings.Builder
	w := trace.NewTextSink(&b)
	trace.Copy(w, rep.RankSource(rank))
	w.Close()
	return b.String()
}

// AggregateTimingText renders the timing-job output in the Figure 1 format:
//
//	# Barrier before /mpi_io_test.exe ...
//	7: host13.lanl.gov (10378) Entered barrier at 1159808385.170918
//	7: host13.lanl.gov (10378) Exited barrier at 1159808385.173167
func (rep *Report) AggregateTimingText() string {
	var b strings.Builder
	writeSection := func(title string, samples []BarrierSample) {
		fmt.Fprintf(&b, "# Barrier %s %s\n", title, rep.Command)
		for _, s := range samples {
			fmt.Fprintf(&b, "%d: %s (%d) Entered barrier at %s\n",
				s.Rank, s.Node, s.PID, epoch(s.Entered))
			fmt.Fprintf(&b, "%d: %s (%d) Exited barrier at %s\n",
				s.Rank, s.Node, s.PID, epoch(s.Exited))
		}
	}
	writeSection("before", rep.Pre)
	writeSection("after", rep.Post)
	return b.String()
}

// EpochBase offsets simulated local times into Unix-epoch-looking values,
// matching the original tool's output (Figure 1 shows 1159808385.170918).
const EpochBase = 1159808385 * sim.Second

// epoch renders a local timestamp as epoch seconds.micros like the original
// tool. Skewed clocks can make early local times negative; the epoch base
// keeps the rendering well-formed.
func epoch(t sim.Time) string {
	ns := int64(t + EpochBase)
	neg := ""
	if ns < 0 {
		neg, ns = "-", -ns
	}
	return fmt.Sprintf("%s%d.%06d", neg, ns/int64(sim.Second),
		(ns%int64(sim.Second))/1000)
}

// CallSummaryText renders the summary-count output across all ranks,
// folding the record stream without materializing it.
func (rep *Report) CallSummaryText() string {
	sum := analysis.NewCallSummary()
	n, _ := trace.Copy(sum.Sink(), rep.RecordSource())
	return sum.Format() + fmt.Sprintf("# total traced records: %d\n", n)
}

// AllRecords merges all ranks' records, unsorted: the slice wrapper over
// RecordSource.
func (rep *Report) AllRecords() []trace.Record {
	out, _ := trace.Collect(rep.RecordSource())
	return out
}

// ClockEstimates fits per-node skew and drift from the pre/post samples,
// using rank 0's clock as the reference timeline: the analysis the
// aggregate timing output exists to enable.
func (rep *Report) ClockEstimates() (map[string]clocks.Estimate, error) {
	if len(rep.Pre) == 0 || len(rep.Post) == 0 {
		return nil, fmt.Errorf("lanltrace: timing job was not run")
	}
	ref0 := rep.Pre[0].Exited
	ref1 := rep.Post[0].Exited
	out := make(map[string]clocks.Estimate)
	seen := make(map[string]bool)
	for i := range rep.Pre {
		node := rep.Pre[i].Node
		if seen[node] {
			continue
		}
		seen[node] = true
		est, err := clocks.EstimateFromSamples(
			clocks.Sample{Ref: ref0, Local: rep.Pre[i].Exited},
			clocks.Sample{Ref: ref1, Local: rep.Post[i].Exited},
		)
		if err != nil {
			return nil, fmt.Errorf("lanltrace: node %s: %w", node, err)
		}
		out[node] = est
	}
	return out, nil
}

// CorrectedTimeline returns all records mapped onto rank 0's clock and
// merged in time order.
func (rep *Report) CorrectedTimeline() ([]trace.Record, error) {
	est, err := rep.ClockEstimates()
	if err != nil {
		return nil, err
	}
	corrected := analysis.CorrectTimeline(rep.AllRecords(), est)
	sort.SliceStable(corrected, func(i, j int) bool { return corrected[i].Time < corrected[j].Time })
	return corrected, nil
}

// Classification returns the taxonomy classification of this implementation
// (matching the paper's Table 2 column for LANL-Trace). Measured overhead
// is filled in by the harness.
func (f *Framework) Classification() *core.Classification {
	return core.PaperLANLTrace()
}
