package lanltrace

import (
	"strings"
	"testing"

	"iotaxo/internal/cluster"
	"iotaxo/internal/mpi"
	"iotaxo/internal/replay"
	"iotaxo/internal/sim"
	"iotaxo/internal/workload"
)

func TestPseudoAppReproducesIOSignature(t *testing.T) {
	params := smallParams()

	// Untraced baseline: end state + elapsed.
	c0 := testCluster(false)
	base := workload.Run(c0.World, params)
	s0, d0, w0, _ := c0.PFS.Snapshot(params.Path)

	// Traced run (strace mode keeps timing distortion low).
	c1 := testCluster(false)
	fw := New(StraceConfig())
	rep := fw.Run(c1.World, params.CommandLine(), func(p *sim.Proc, r *mpi.Rank) {
		workload.Program(p, r, params, nil)
	})

	// Generate the pseudo-application from the RAW TEXT (exercising the
	// full parse path, as an offline replayer would).
	tr, err := GeneratePseudoAppFromReport(rep, base.Elapsed)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Ranks != 4 {
		t.Fatalf("ranks = %d", tr.Ranks)
	}
	// Per rank: /etc/hosts open+read+close, then PFS open + 4 writes +
	// close = 9 replayable ops.
	for rank, ops := range tr.Ops {
		if len(ops) != 9 {
			t.Fatalf("rank %d: %d ops (%+v)", rank, len(ops), ops)
		}
	}

	// Replay on a fresh cluster and compare the I/O signature.
	c2 := testCluster(false)
	if _, err := replay.Execute(c2, tr); err != nil {
		t.Fatal(err)
	}
	s2, d2, w2, ok := c2.PFS.Snapshot(params.Path)
	if !ok || s0 != s2 || d0 != d2 || w0 != w2 {
		t.Fatalf("pseudo-app signature differs: (%d,%x,%d) vs (%d,%x,%d)", s0, d0, w0, s2, d2, w2)
	}
}

func TestPseudoAppFidelityWeakerThanParallelTrace(t *testing.T) {
	// LANL-Trace's replayer has no dependency information, and its think
	// times absorb tracer overhead: document that its fidelity is loose
	// (the reason the paper classifies "Replayable trace generation: No").
	params := smallParams()
	c0 := testCluster(false)
	base := workload.Run(c0.World, params)

	c1 := testCluster(false)
	fw := New(StraceConfig())
	rep := fw.Run(c1.World, params.CommandLine(), func(p *sim.Proc, r *mpi.Rank) {
		workload.Program(p, r, params, nil)
	})
	tr, err := GeneratePseudoAppFromReport(rep, base.Elapsed)
	if err != nil {
		t.Fatal(err)
	}
	c2 := testCluster(false)
	res, err := replay.Execute(c2, tr)
	if err != nil {
		t.Fatal(err)
	}
	fid := replay.Fidelity(base.Elapsed, res.Elapsed)
	// It should still be in the right ballpark (the ops and gaps are
	// real), just not //TRACE-grade.
	if fid > 1.0 {
		t.Fatalf("fidelity error %.0f%% beyond even the loose bound", fid*100)
	}
	t.Logf("pseudo-app fidelity error: %.1f%% (no dependency edges)", fid*100)
}

func TestGeneratePseudoAppParsesStandaloneText(t *testing.T) {
	raw := `# iotaxo-trace text v1
# node=host01 rank=0 pid=100
00:00:00.000100 SYS_open("/pfs/f", 0x41, 0644) = 3 <0.000050>
00:00:00.000200 SYS_pwrite(3, 0, 65536) = 65536 <0.000400>
00:00:00.000700 SYS_write(3, 1024) = 1024 <0.000100>
00:00:00.000900 SYS_close(3) = 0 <0.000010>
`
	tr, err := GeneratePseudoApp([]string{raw}, sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	ops := tr.Ops[0]
	if len(ops) != 4 {
		t.Fatalf("ops = %d: %+v", len(ops), ops)
	}
	if ops[1].Kind != replay.OpWrite || ops[1].Offset != 0 || ops[1].Bytes != 65536 {
		t.Fatalf("pwrite op: %+v", ops[1])
	}
	// Sequential write lands at the tracked position (65536? no: pos
	// advances only via sequential ops; pwrite does not move it).
	if ops[2].Offset != 0 || ops[2].Bytes != 1024 {
		t.Fatalf("sequential write op: %+v", ops[2])
	}
	// Think gap between pwrite end (000600) and write start (000700).
	if ops[2].Compute != 100*sim.Microsecond {
		t.Fatalf("think = %v", ops[2].Compute)
	}
}

func TestGeneratePseudoAppRejectsUnknownFD(t *testing.T) {
	raw := "# node=n rank=0 pid=1\n00:00:00.000100 SYS_pwrite(9, 0, 10) = 10 <0.000001>\n"
	if _, err := GeneratePseudoApp([]string{raw}, sim.Second); err == nil {
		t.Fatal("expected unknown-fd error")
	}
}

func TestGeneratePseudoAppSkipsFailedOpens(t *testing.T) {
	raw := `# node=n rank=0 pid=1
00:00:00.000100 SYS_open("/missing", 0x0, 0) = -1 vfs: no such file <0.000020>
00:00:00.000200 SYS_open("/pfs/f", 0x41, 0644) = 3 <0.000050>
00:00:00.000300 SYS_close(3) = 0 <0.000010>
`
	tr, err := GeneratePseudoApp([]string{raw}, sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Ops[0]) != 2 {
		t.Fatalf("ops: %+v", tr.Ops[0])
	}
}

func TestGeneratePseudoAppBadRank(t *testing.T) {
	raw := "# node=n rank=7 pid=1\n00:00:00.000100 SYS_open(\"/f\", 0x41, 0644) = 3 <0.000010>\n"
	if _, err := GeneratePseudoApp([]string{raw}, sim.Second); err == nil ||
		!strings.Contains(err.Error(), "rank") {
		t.Fatalf("err = %v", err)
	}
}

var _ = cluster.NodeName // keep the import for test helpers above
