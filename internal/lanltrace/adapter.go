package lanltrace

import (
	"iotaxo/internal/cluster"
	"iotaxo/internal/core"
	"iotaxo/internal/fnvhash"
	"iotaxo/internal/framework"
	"iotaxo/internal/interpose"
	"iotaxo/internal/mpi"
	"iotaxo/internal/sim"
	"iotaxo/internal/trace"
	"iotaxo/internal/workload"
)

// AsFramework adapts a LANL-Trace configuration to the common framework
// registry interface. The default (ltrace-mode) instance is registered at
// init; strace-mode instances are built on demand by the harness.
func AsFramework(cfg Config) framework.Framework { return &fwAdapter{cfg: cfg.fix()} }

func init() { framework.Register(AsFramework(DefaultConfig())) }

type fwAdapter struct{ cfg Config }

func (a *fwAdapter) Name() string                         { return "LANL-Trace" }
func (a *fwAdapter) Classification() *core.Classification { return core.PaperLANLTrace() }

// VariantDigest distinguishes LANL-Trace configurations that share the
// registered Name — strace vs. ltrace mode, ablated timing jobs, tuned cost
// models — so cached results from one mode are never served to another.
func (a *fwAdapter) VariantDigest() uint64 {
	f := func(name string) uint64 { return fnvhash.String(fnvhash.Offset64, name) }
	model := func(name string, m interpose.CostModel) uint64 {
		var d uint64
		d ^= fnvhash.Int64(f(name+".EnterCost"), int64(m.EnterCost))
		d ^= fnvhash.Int64(f(name+".ExitCost"), int64(m.ExitCost))
		d ^= fnvhash.Int64(f(name+".PerOutputByte"), int64(m.PerOutputByte))
		return d
	}
	var d uint64
	d ^= fnvhash.Int64(f("Mode"), int64(a.cfg.Mode))
	d ^= model("SyscallModel", a.cfg.SyscallModel)
	d ^= model("LibModel", a.cfg.LibModel)
	d ^= fnvhash.Bool(f("SkipTimingJob"), a.cfg.SkipTimingJob)
	return d
}

func (a *fwAdapter) Attach(c *cluster.Cluster) framework.Session {
	return &fwSession{fw: New(a.cfg), c: c}
}

type fwSession struct {
	fw  *Framework
	c   *cluster.Cluster
	rep *Report
}

// Run executes the workload under strace/ltrace wrapping, exactly as the
// real tool does: timing job, traced application, timing job.
func (s *fwSession) Run(spec workload.Spec) (framework.Report, error) {
	perRank := make([]workload.RankStats, s.c.Ranks())
	rep := s.fw.Run(s.c.World, spec.CommandLine, func(p *sim.Proc, r *mpi.Rank) {
		spec.Program(p, r, &perRank[r.RankID()])
	})
	s.rep = rep
	return framework.Report{
		Result:         spec.ResultFromStats(rep.Elapsed, perRank),
		TracingElapsed: rep.Elapsed,
		Runs:           1,
		TraceEvents:    rep.TraceEvents,
		TraceBytes:     rep.TraceBytes,
	}, nil
}

// Sources streams each rank's raw trace file, time-ordered within the rank.
func (s *fwSession) Sources() []trace.Source {
	if s.rep == nil {
		return nil
	}
	out := make([]trace.Source, 0, len(s.rep.PerRank))
	for i := range s.rep.PerRank {
		out = append(out, s.rep.RankSource(i))
	}
	return out
}

// Report exposes the full LANL-Trace report (timing samples, clock
// estimates) for callers that need more than the generic Report.
func (s *fwSession) Report() *Report { return s.rep }
