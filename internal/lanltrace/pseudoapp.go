package lanltrace

import (
	"fmt"
	"io"
	"strings"

	"iotaxo/internal/replay"
	"iotaxo/internal/sim"
	"iotaxo/internal/trace"
)

// Pseudo-application generation from raw trace files — the capability the
// paper reports as "beta development ... under way" for LANL-Trace ("it is
// trivial to imagine a replayer being built that reads and replays the raw
// trace files"). Unlike //TRACE, LANL-Trace has no dependency discovery, so
// the generated trace carries per-rank timing only: replay fidelity is
// correspondingly weaker, which is precisely the trade-off the taxonomy's
// "Reveals dependencies" axis captures.

// GeneratePseudoApp parses per-rank raw trace texts (the format
// Report.RawTraceText emits) and builds a replayable trace. originalElapsed
// is the untraced application's wall time, used by fidelity measurements.
func GeneratePseudoApp(rawTraces []string, originalElapsed sim.Duration) (*replay.Trace, error) {
	tr := &replay.Trace{
		Ranks:           len(rawTraces),
		Ops:             make([][]replay.Op, len(rawTraces)),
		OriginalElapsed: originalElapsed,
	}
	for i, text := range rawTraces {
		recs, err := trace.NewTextReader(strings.NewReader(text)).ReadAll()
		if err != nil && err != io.EOF {
			return nil, fmt.Errorf("lanltrace: raw trace %d: %w", i, err)
		}
		rank := i
		if len(recs) > 0 && recs[0].Rank >= 0 {
			rank = recs[0].Rank
		}
		if rank < 0 || rank >= tr.Ranks {
			return nil, fmt.Errorf("lanltrace: raw trace %d claims rank %d of %d", i, rank, tr.Ranks)
		}
		ops, err := opsFromRecords(recs)
		if err != nil {
			return nil, fmt.Errorf("lanltrace: raw trace %d: %w", i, err)
		}
		tr.Ops[rank] = ops
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// GeneratePseudoAppFromReport is the in-process convenience path.
func GeneratePseudoAppFromReport(rep *Report, originalElapsed sim.Duration) (*replay.Trace, error) {
	texts := make([]string, len(rep.PerRank))
	for rank := range rep.PerRank {
		texts[rank] = rep.RawTraceText(rank)
	}
	return GeneratePseudoApp(texts, originalElapsed)
}

// opsFromRecords converts one rank's syscall stream into replay operations,
// tracking the fd table the way a real trace replayer must. Library-call
// records (MPI_*) are skipped: their I/O appears as the nested syscalls.
func opsFromRecords(recs []trace.Record) ([]replay.Op, error) {
	type fdState struct {
		path string
		pos  int64
	}
	fds := make(map[string]*fdState) // key: fd number as string
	var ops []replay.Op
	var lastEnd sim.Time
	haveLast := false

	think := func(r *trace.Record) sim.Duration {
		if !haveLast {
			haveLast = true
			lastEnd = r.Time + r.Dur
			return 0
		}
		gap := r.Time - lastEnd
		lastEnd = r.Time + r.Dur
		if gap < 0 {
			return 0
		}
		return gap
	}

	argAt := func(r *trace.Record, i int) string {
		if i < len(r.Args) {
			return r.Args[i]
		}
		return ""
	}

	for i := range recs {
		r := &recs[i]
		if r.Class != trace.ClassSyscall {
			continue
		}
		switch r.Name {
		case "SYS_open":
			if strings.HasPrefix(r.Ret, "-1") {
				think(r)
				continue
			}
			fds[r.Ret] = &fdState{path: r.Path}
			ops = append(ops, replay.Op{Kind: replay.OpOpen, Path: r.Path, Compute: think(r)})
		case "SYS_pwrite", "SYS_pread":
			st, ok := fds[argAt(r, 0)]
			if !ok {
				return nil, fmt.Errorf("%s on unknown fd %s", r.Name, argAt(r, 0))
			}
			kind := replay.OpWrite
			if r.Name == "SYS_pread" {
				kind = replay.OpRead
			}
			ops = append(ops, replay.Op{
				Kind: kind, Path: st.path, Offset: r.Offset, Bytes: r.Bytes,
				Compute: think(r),
			})
		case "SYS_write", "SYS_read":
			st, ok := fds[argAt(r, 0)]
			if !ok {
				return nil, fmt.Errorf("%s on unknown fd %s", r.Name, argAt(r, 0))
			}
			kind := replay.OpWrite
			if r.Name == "SYS_read" {
				kind = replay.OpRead
			}
			ops = append(ops, replay.Op{
				Kind: kind, Path: st.path, Offset: st.pos, Bytes: r.Bytes,
				Compute: think(r),
			})
			st.pos += r.Bytes
		case "SYS_close":
			fd := argAt(r, 0)
			if st, ok := fds[fd]; ok {
				ops = append(ops, replay.Op{Kind: replay.OpClose, Path: st.path, Compute: think(r)})
				delete(fds, fd)
			}
		default:
			// Metadata calls (stat, statfs, fcntl, mmap, fsync) carry no
			// replayable I/O; their time folds into the next think gap.
		}
	}
	return ops, nil
}
