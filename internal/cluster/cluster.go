// Package cluster assembles the full simulated testbed of the paper's
// overhead experiments: compute nodes running Linux-like kernels with
// skewed/drifting clocks, a gigabit-Ethernet interconnect, a local file
// system per node, and the striped RAID-5 parallel file system, with an MPI
// world spanning the compute nodes.
package cluster

import (
	"fmt"

	"iotaxo/internal/clocks"
	"iotaxo/internal/disk"
	"iotaxo/internal/mpi"
	"iotaxo/internal/netsim"
	"iotaxo/internal/pfs"
	"iotaxo/internal/sim"
	"iotaxo/internal/vfs"
)

// PFSMount is the path prefix where the parallel file system is mounted on
// every compute node.
const PFSMount = "/pfs"

// Config describes a testbed.
type Config struct {
	ComputeNodes int
	RanksPerNode int
	// TotalRanks caps the MPI world size when the job does not fill the
	// last node (e.g. 4 ranks at 8 ranks per node). Zero means
	// ComputeNodes * RanksPerNode. Ranks are block-placed: node i hosts
	// ranks [i*RanksPerNode, (i+1)*RanksPerNode) up to the cap.
	TotalRanks int
	Net        netsim.Config
	PFS        pfs.Config
	Kernel     vfs.KernelConfig
	LocalDisk  disk.Config

	// MaxSkew and MaxDrift bound the per-node clock error, drawn
	// deterministically from the environment seed. Zero disables.
	MaxSkew  sim.Duration
	MaxDrift float64

	Seed int64
}

// Default approximates the paper's testbed: 32 single-rank compute nodes on
// gigabit Ethernet, 12 object servers x 21-drive RAID-5 (252 drives), 64 KB
// stripes, and realistic clock error (up to 250 ms skew, 100 ppm drift).
func Default() Config {
	return Config{
		ComputeNodes: 32,
		RanksPerNode: 1,
		Net:          netsim.GigabitEthernet(),
		PFS:          pfs.DefaultParallel(),
		Kernel:       vfs.DefaultKernelConfig(),
		LocalDisk:    disk.DefaultDisk(),
		MaxSkew:      250 * sim.Millisecond,
		MaxDrift:     100e-6,
		Seed:         1,
	}
}

// Small returns a scaled-down testbed for unit tests: 4 nodes, 4 servers.
func Small() Config {
	cfg := Default()
	cfg.ComputeNodes = 4
	cfg.PFS.Servers = 4
	cfg.PFS.Array.Disks = 5
	return cfg
}

// Cluster is a running testbed.
type Cluster struct {
	Cfg     Config
	Env     *sim.Env
	Net     *netsim.Network
	Kernels []*vfs.Kernel // one per compute node
	Locals  []*vfs.MemFS  // local FS per compute node
	PFS     *pfs.System
	World   *mpi.World
}

// NodeName returns compute node i's host name, styled after the paper's
// Figure 1 output.
func NodeName(i int) string { return fmt.Sprintf("host%02d.lanl.gov", i+1) }

// New builds and starts a testbed.
func New(cfg Config) *Cluster {
	env := sim.NewEnv(cfg.Seed)
	net_ := netsim.New(env, cfg.Net)
	c := &Cluster{Cfg: cfg, Env: env, Net: net_}

	// PFS first: server nodes register their own names.
	c.PFS = pfs.New(net_, cfg.PFS)

	// Sized up front: the constructor runs once per simulation, and the
	// scaling experiments build thousands-of-rank testbeds in a loop.
	totalRanks := cfg.ComputeNodes * cfg.RanksPerNode
	if cfg.TotalRanks > 0 {
		if cfg.TotalRanks > totalRanks {
			panic(fmt.Sprintf("cluster: TotalRanks %d exceeds %d nodes x %d ranks/node",
				cfg.TotalRanks, cfg.ComputeNodes, cfg.RanksPerNode))
		}
		totalRanks = cfg.TotalRanks
	}
	c.Kernels = make([]*vfs.Kernel, 0, cfg.ComputeNodes)
	c.Locals = make([]*vfs.MemFS, 0, cfg.ComputeNodes)
	worldKernels := make([]*vfs.Kernel, 0, totalRanks)
	for i := 0; i < cfg.ComputeNodes; i++ {
		name := NodeName(i)
		net_.AddNode(name)

		clock := clocks.New(0, 0)
		if cfg.MaxSkew > 0 || cfg.MaxDrift > 0 {
			skew := sim.Duration(0)
			if cfg.MaxSkew > 0 {
				skew = sim.Duration(env.Rand().Int63n(2*int64(cfg.MaxSkew))) - cfg.MaxSkew
			}
			drift := 0.0
			if cfg.MaxDrift > 0 {
				drift = (env.Rand().Float64()*2 - 1) * cfg.MaxDrift
			}
			clock = clocks.New(skew, drift)
		}

		k := vfs.NewKernel(env, name, clock, cfg.Kernel)
		local := vfs.NewMemFS(env, "ext3", cfg.LocalDisk)
		local.Preload("/etc/hosts", 4096) // MPI_Init reads the host database
		k.Mount("/", local)
		k.Mount(PFSMount, pfs.NewClient(c.PFS, name))

		c.Kernels = append(c.Kernels, k)
		c.Locals = append(c.Locals, local)
		for r := 0; r < cfg.RanksPerNode && len(worldKernels) < totalRanks; r++ {
			worldKernels = append(worldKernels, k)
		}
	}
	c.World = mpi.NewWorld(net_, worldKernels)
	return c
}

// Ranks returns the total rank count.
func (c *Cluster) Ranks() int { return c.World.Size() }
