package cluster_test

import (
	"strings"
	"testing"

	"iotaxo/internal/cluster"
	"iotaxo/internal/mpi"
	"iotaxo/internal/pfs"
	"iotaxo/internal/sim"
	"iotaxo/internal/tracefs"
	"iotaxo/internal/vfs"
	"iotaxo/internal/workload"
)

func TestNodeNamingMatchesFigure1Style(t *testing.T) {
	if got := cluster.NodeName(12); got != "host13.lanl.gov" {
		t.Fatalf("NodeName(12) = %q", got)
	}
}

func TestDefaultMatchesPaperTestbed(t *testing.T) {
	cfg := cluster.Default()
	if cfg.ComputeNodes != 32 {
		t.Fatalf("compute nodes = %d, want 32 (the paper: 32 processors)", cfg.ComputeNodes)
	}
	if cfg.PFS.Servers*cfg.PFS.Array.Disks != 252 {
		t.Fatalf("drives = %d, want 252", cfg.PFS.Servers*cfg.PFS.Array.Disks)
	}
	if cfg.PFS.StripeUnit != 64<<10 {
		t.Fatalf("stripe = %d, want 64KB", cfg.PFS.StripeUnit)
	}
}

func TestMountsResolve(t *testing.T) {
	c := cluster.New(cluster.Small())
	k := c.Kernels[0]
	fs, err := k.Resolve("/pfs/some/file")
	if err != nil || fs.FSName() != "panfs" {
		t.Fatalf("pfs resolve: %v %v", fs, err)
	}
	fs, err = k.Resolve("/etc/hosts")
	if err != nil || fs.FSName() != "ext3" {
		t.Fatalf("local resolve: %v %v", fs, err)
	}
}

func TestClockBoundsRespected(t *testing.T) {
	cfg := cluster.Small()
	cfg.MaxSkew = 50 * sim.Millisecond
	cfg.MaxDrift = 10e-6
	c := cluster.New(cfg)
	for i, k := range c.Kernels {
		skew := k.Clock().SkewAt(0)
		if skew > 50*sim.Millisecond || skew < -50*sim.Millisecond {
			t.Fatalf("node %d skew %v out of bounds", i, skew)
		}
	}
}

func TestRanksPerNode(t *testing.T) {
	cfg := cluster.Small()
	cfg.ComputeNodes = 2
	cfg.RanksPerNode = 3
	c := cluster.New(cfg)
	if c.Ranks() != 6 {
		t.Fatalf("ranks = %d, want 6", c.Ranks())
	}
	// Ranks 0-2 share node 0's kernel.
	if c.World.Rank(0).Node() != c.World.Rank(2).Node() {
		t.Fatal("ranks not packed per node")
	}
	if c.World.Rank(0).Node() == c.World.Rank(3).Node() {
		t.Fatal("rank 3 should live on node 1")
	}
}

func TestTotalRanksCapsLastNode(t *testing.T) {
	cfg := cluster.Small()
	cfg.ComputeNodes = 3
	cfg.RanksPerNode = 4
	cfg.TotalRanks = 10 // last node hosts only 2 ranks
	c := cluster.New(cfg)
	if c.Ranks() != 10 {
		t.Fatalf("ranks = %d, want 10", c.Ranks())
	}
	// Block placement: ranks 0-3 on node 0, 8-9 on node 2.
	if c.World.Rank(0).Node() != c.World.Rank(3).Node() {
		t.Fatal("ranks 0-3 not packed on node 0")
	}
	if c.World.Rank(8).Node() != c.World.Rank(9).Node() {
		t.Fatal("ranks 8-9 not packed on node 2")
	}
	if c.World.Rank(0).Node() == c.World.Rank(9).Node() {
		t.Fatal("rank 9 should live on the last node")
	}
}

func TestTotalRanksOverCapacityPanics(t *testing.T) {
	cfg := cluster.Small()
	cfg.ComputeNodes = 2
	cfg.RanksPerNode = 2
	cfg.TotalRanks = 5
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cluster.New(cfg)
}

func TestConstructionDeterministic(t *testing.T) {
	run := func() sim.Duration {
		c := cluster.New(cluster.Small())
		return workload.Run(c.World, workload.Params{
			Pattern: workload.N1Strided, BlockSize: 64 << 10, NObj: 2, Path: "/pfs/d",
		}).Elapsed
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("cluster construction not deterministic: %v vs %v", a, b)
	}
}

func TestDifferentSeedsDifferentClocks(t *testing.T) {
	cfgA := cluster.Small()
	cfgA.Seed = 1
	cfgB := cluster.Small()
	cfgB.Seed = 2
	a := cluster.New(cfgA)
	b := cluster.New(cfgB)
	same := true
	for i := range a.Kernels {
		if a.Kernels[i].Clock().SkewAt(0) != b.Kernels[i].Clock().SkewAt(0) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical clock assignments")
	}
}

// --- cross-subsystem integration ---

func TestDiskFailureSurfacesToApplication(t *testing.T) {
	cfg := cluster.Small()
	cfg.MaxSkew = 0
	cfg.MaxDrift = 0
	c := cluster.New(cfg)
	// Kill two drives in every server's group so any write must fail.
	for i := 0; i < cfg.PFS.Servers; i++ {
		c.PFS.Array(i).Disk(0).Fail()
		c.PFS.Array(i).Disk(1).Fail()
	}
	var writeErr error
	c.World.RunToCompletion(func(p *sim.Proc, r *mpi.Rank) {
		if r.RankID() != 0 {
			return
		}
		f, err := r.FileOpen(p, "/pfs/doomed", mpi.ModeCreate|mpi.ModeWronly)
		if err != nil {
			writeErr = err
			return
		}
		_, writeErr = f.WriteAt(p, 0, 256<<10)
	})
	if writeErr == nil {
		t.Fatal("double disk failure did not surface to the application")
	}
}

func TestDegradedModeKeepsReadsWorking(t *testing.T) {
	cfg := cluster.Small()
	cfg.MaxSkew = 0
	cfg.MaxDrift = 0
	c := cluster.New(cfg)
	var readErr error
	var n int64
	c.World.RunToCompletion(func(p *sim.Proc, r *mpi.Rank) {
		if r.RankID() != 0 {
			return
		}
		f, _ := r.FileOpen(p, "/pfs/deg", mpi.ModeCreate|mpi.ModeRdwr)
		f.WriteAt(p, 0, 256<<10)
		// One drive fails per server: RAID-5 reconstructs.
		for i := 0; i < cfg.PFS.Servers; i++ {
			c.PFS.Array(i).Disk(0).Fail()
		}
		n, readErr = f.ReadAt(p, 0, 256<<10)
		f.Close(p)
	})
	if readErr != nil || n != 256<<10 {
		t.Fatalf("degraded read: n=%d err=%v", n, readErr)
	}
}

func TestTracefsOverNFSOnCluster(t *testing.T) {
	// The paper: "tracing of I/O on the Network File System (NFS) was
	// functional". Stand up an NFS personality on the cluster network,
	// stack Tracefs over its client, and mount it on a compute node.
	cfg := cluster.Small()
	cfg.MaxSkew = 0
	cfg.MaxDrift = 0
	c := cluster.New(cfg)
	nfs := pfs.New(c.Net, pfs.DefaultNFS())
	nfsClient := pfs.NewClient(nfs, cluster.NodeName(0))
	tfs, err := tracefs.Mount(nfsClient, tracefs.DefaultConfig())
	if err != nil {
		t.Fatalf("tracefs over NFS: %v", err)
	}
	c.Kernels[0].Mount("/nfs", tfs)

	pc := c.Kernels[0].Spawn(vfs.Cred{UID: 1})
	c.Env.Go("app", func(p *sim.Proc) {
		fd, err := pc.Open(p, "/nfs/home/file", vfs.OCreate|vfs.OWronly, 0o644)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		pc.PWrite(p, fd, 0, 32<<10)
		pc.Close(p, fd)
	})
	c.Env.Run()

	if tfs.Counters["VFS_write"] != 1 || tfs.Counters["VFS_open"] != 1 {
		t.Fatalf("tracefs counters over NFS: %v", tfs.Counters)
	}
	size, _, _, ok := nfs.Snapshot("/nfs/home/file")
	if !ok || size != 32<<10 {
		t.Fatalf("NFS end state: size=%d ok=%v", size, ok)
	}
	if !strings.Contains(tfs.FSName(), "nfs") {
		t.Fatalf("layered name: %s", tfs.FSName())
	}
}

func TestSharedNetworkMultipleFilesystems(t *testing.T) {
	// Two PFS deployments coexist on one network under distinct names.
	cfg := cluster.Small()
	c := cluster.New(cfg)
	scratch := pfs.New(c.Net, pfs.Config{Name: "scratch", Servers: 2, Stackable: false})
	client := pfs.NewClient(scratch, cluster.NodeName(1))
	c.Kernels[1].Mount("/scratch", client)
	pc := c.Kernels[1].Spawn(vfs.Cred{})
	c.Env.Go("app", func(p *sim.Proc) {
		fd, err := pc.Open(p, "/scratch/x", vfs.OCreate|vfs.OWronly, 0o644)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		pc.PWrite(p, fd, 0, 128<<10)
		pc.Close(p, fd)
	})
	c.Env.Run()
	size, _, _, ok := scratch.Snapshot("/scratch/x")
	if !ok || size != 128<<10 {
		t.Fatalf("scratch end state: %d %v", size, ok)
	}
}
