package cluster

import (
	"testing"

	"iotaxo/internal/sim"
)

// TestConfigDigest checks the fingerprint's equality contract: equal
// configs hash equal; changing any field — top-level or nested in a
// simulator sub-config — changes the digest.
func TestConfigDigest(t *testing.T) {
	base := Default()
	if base.Digest() != Default().Digest() {
		t.Fatal("equal configs must produce equal digests")
	}
	mutations := map[string]func(*Config){
		"ComputeNodes":       func(c *Config) { c.ComputeNodes++ },
		"RanksPerNode":       func(c *Config) { c.RanksPerNode++ },
		"TotalRanks":         func(c *Config) { c.TotalRanks = 7 },
		"Net.BandwidthBps":   func(c *Config) { c.Net.BandwidthBps *= 2 },
		"Net.Latency":        func(c *Config) { c.Net.Latency += sim.Microsecond },
		"PFS.Name":           func(c *Config) { c.PFS.Name = "nfs" },
		"PFS.Servers":        func(c *Config) { c.PFS.Servers++ },
		"PFS.Array.Disks":    func(c *Config) { c.PFS.Array.Disks++ },
		"PFS.Array.Disk":     func(c *Config) { c.PFS.Array.Disk.Seek += sim.Microsecond },
		"PFS.Stackable":      func(c *Config) { c.PFS.Stackable = !c.PFS.Stackable },
		"Kernel.SyscallCost": func(c *Config) { c.Kernel.SyscallCost += sim.Microsecond },
		"LocalDisk.PerOp":    func(c *Config) { c.LocalDisk.PerOp += sim.Microsecond },
		"MaxSkew":            func(c *Config) { c.MaxSkew += sim.Millisecond },
		"MaxDrift":           func(c *Config) { c.MaxDrift *= 2 },
		"Seed":               func(c *Config) { c.Seed++ },
	}
	for name, mutate := range mutations {
		cfg := Default()
		mutate(&cfg)
		if cfg.Digest() == base.Digest() {
			t.Errorf("mutating %s did not change the digest", name)
		}
	}
}
