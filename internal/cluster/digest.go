package cluster

// Stable fingerprinting of a testbed Config, used by the harness's
// content-addressed leaf cache to key simulations by their inputs. Every
// field — including every nested simulator config — folds into its own
// FNV-1a stream seeded by a dotted field path, and the streams XOR-combine,
// so the digest is independent of fold order but sensitive to every value.
// Adding a config field changes all digests, which is the invalidation a
// new input dimension requires. The digest addresses *inputs* only: it
// cannot see simulator code changes (see harness cacheSchema for that).

import "iotaxo/internal/fnvhash"

// Digest returns a stable, field-order-independent fingerprint of the full
// testbed configuration, nested simulator configs included. Equal configs
// always produce equal digests across processes.
func (cfg Config) Digest() uint64 {
	f := func(name string) uint64 { return fnvhash.String(fnvhash.Offset64, name) }
	var d uint64
	d ^= fnvhash.Int64(f("ComputeNodes"), int64(cfg.ComputeNodes))
	d ^= fnvhash.Int64(f("RanksPerNode"), int64(cfg.RanksPerNode))
	d ^= fnvhash.Int64(f("TotalRanks"), int64(cfg.TotalRanks))
	d ^= fnvhash.Float64(f("Net.BandwidthBps"), cfg.Net.BandwidthBps)
	d ^= fnvhash.Int64(f("Net.Latency"), int64(cfg.Net.Latency))
	d ^= fnvhash.Int64(f("Net.FrameOverhead"), cfg.Net.FrameOverhead)
	d ^= fnvhash.Int64(f("Net.PerMessageCPU"), int64(cfg.Net.PerMessageCPU))
	d ^= fnvhash.String(f("PFS.Name"), cfg.PFS.Name)
	d ^= fnvhash.Int64(f("PFS.Servers"), int64(cfg.PFS.Servers))
	d ^= fnvhash.Int64(f("PFS.StripeUnit"), cfg.PFS.StripeUnit)
	d ^= fnvhash.Int64(f("PFS.Array.Disks"), int64(cfg.PFS.Array.Disks))
	d ^= fnvhash.Int64(f("PFS.Array.StripeUnit"), cfg.PFS.Array.StripeUnit)
	d ^= fnvhash.Int64(f("PFS.Array.Disk.PerOp"), int64(cfg.PFS.Array.Disk.PerOp))
	d ^= fnvhash.Int64(f("PFS.Array.Disk.Seek"), int64(cfg.PFS.Array.Disk.Seek))
	d ^= fnvhash.Float64(f("PFS.Array.Disk.BandwidthBps"), cfg.PFS.Array.Disk.BandwidthBps)
	d ^= fnvhash.Bool(f("PFS.Array.DisableSmallWritePenalty"), cfg.PFS.Array.DisableSmallWritePenalty)
	d ^= fnvhash.Int64(f("PFS.ServerProcs"), int64(cfg.PFS.ServerProcs))
	d ^= fnvhash.Bool(f("PFS.Stackable"), cfg.PFS.Stackable)
	d ^= fnvhash.Int64(f("PFS.MetaCost"), int64(cfg.PFS.MetaCost))
	d ^= fnvhash.Int64(f("Kernel.SyscallCost"), int64(cfg.Kernel.SyscallCost))
	d ^= fnvhash.Int64(f("LocalDisk.PerOp"), int64(cfg.LocalDisk.PerOp))
	d ^= fnvhash.Int64(f("LocalDisk.Seek"), int64(cfg.LocalDisk.Seek))
	d ^= fnvhash.Float64(f("LocalDisk.BandwidthBps"), cfg.LocalDisk.BandwidthBps)
	d ^= fnvhash.Int64(f("MaxSkew"), int64(cfg.MaxSkew))
	d ^= fnvhash.Float64(f("MaxDrift"), cfg.MaxDrift)
	d ^= fnvhash.Int64(f("Seed"), cfg.Seed)
	return d
}
