package partrace

import (
	"bytes"
	"testing"

	"iotaxo/internal/cluster"
	"iotaxo/internal/mpi"
	"iotaxo/internal/replay"
	"iotaxo/internal/sim"
	"iotaxo/internal/trace"
	"iotaxo/internal/workload"
)

func factory() *cluster.Cluster {
	cfg := cluster.Small()
	cfg.MaxSkew = 0
	cfg.MaxDrift = 0
	return cluster.New(cfg)
}

func skewedFactory() *cluster.Cluster {
	cfg := cluster.Small()
	return cluster.New(cfg)
}

func params() workload.Params {
	return workload.Params{
		Pattern:      workload.N1Strided,
		BlockSize:    64 << 10,
		NObj:         4,
		Path:         "/pfs/app.out",
		BarrierEvery: 1, // phase-synchronized, as checkpointing apps are
	}
}

func program(p *sim.Proc, r *mpi.Rank) {
	workload.Program(p, r, params(), nil)
}

func TestGenerateProducesValidTrace(t *testing.T) {
	fw := New(DefaultConfig())
	res, err := fw.Generate(factory, program)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Trace.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every rank: open + 4 writes + close = 6 ops.
	for rank, ops := range res.Trace.Ops {
		if len(ops) != 6 {
			t.Fatalf("rank %d has %d ops, want 6", rank, len(ops))
		}
		if ops[0].Kind != replay.OpOpen || ops[5].Kind != replay.OpClose {
			t.Fatalf("rank %d op kinds: %v ... %v", rank, ops[0].Kind, ops[5].Kind)
		}
		for k := 1; k <= 4; k++ {
			if ops[k].Kind != replay.OpWrite || ops[k].Bytes != 64<<10 || ops[k].Path != "/pfs/app.out" {
				t.Fatalf("rank %d op %d: %+v", rank, k, ops[k])
			}
		}
	}
}

func TestThrottlingDiscoversDependencies(t *testing.T) {
	fw := New(DefaultConfig())
	res, err := fw.Generate(factory, program)
	if err != nil {
		t.Fatal(err)
	}
	// The workload barriers before and after I/O: throttling rank 0 must
	// shift other ranks' post-barrier ops, yielding edges.
	if res.DepCount == 0 {
		t.Fatal("no dependencies discovered despite barrier coupling")
	}
	for _, d := range res.Trace.Deps {
		if d.FromRank == d.ToRank {
			t.Fatalf("self edge: %+v", d)
		}
		if d.FromRank >= 2 {
			t.Fatalf("edge from unprobed rank: %+v (sampled 2)", d)
		}
	}
}

func TestZeroSamplingNoDepsLowOverhead(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SampledRanks = 0
	fw := New(cfg)
	res, err := fw.Generate(factory, program)
	if err != nil {
		t.Fatal(err)
	}
	if res.DepCount != 0 || res.Runs != 1 {
		t.Fatalf("deps=%d runs=%d", res.DepCount, res.Runs)
	}
	// Single preload-instrumented run: overhead near zero (the paper: ~0%).
	if ov := res.OverheadFrac(); ov < 0 || ov > 0.10 {
		t.Fatalf("zero-sampling overhead %.1f%%, want ~0%%", ov*100)
	}
}

func TestOverheadGrowsWithSampling(t *testing.T) {
	overhead := func(sampled int) float64 {
		cfg := DefaultConfig()
		cfg.SampledRanks = sampled
		res, err := New(cfg).Generate(factory, program)
		if err != nil {
			t.Fatal(err)
		}
		return res.OverheadFrac()
	}
	o0 := overhead(0)
	o2 := overhead(2)
	o4 := overhead(4)
	if !(o0 < o2 && o2 < o4) {
		t.Fatalf("overhead not increasing: %.2f %.2f %.2f", o0, o2, o4)
	}
	// Two probes means roughly two extra runs (~200%), plus the throttle
	// tax, which weighs heavily on this deliberately tiny workload.
	if o2 < 1.0 || o2 > 7.0 {
		t.Fatalf("2-probe overhead %.0f%%, want roughly 2 extra runs", o2*100)
	}
}

func TestReplayFidelityImprovesWithDeps(t *testing.T) {
	fidelity := func(sampled int) float64 {
		cfg := DefaultConfig()
		cfg.SampledRanks = sampled
		res, err := New(cfg).Generate(factory, program)
		if err != nil {
			t.Fatal(err)
		}
		c := factory()
		rr, err := replay.Execute(c, res.Trace)
		if err != nil {
			t.Fatal(err)
		}
		return replay.Fidelity(res.Trace.OriginalElapsed, rr.Elapsed)
	}
	full := fidelity(4) // probe all ranks
	if full > 0.15 {
		t.Fatalf("full-sampling fidelity error %.1f%%, want small", full*100)
	}
}

func TestTraceRoundTripsThroughText(t *testing.T) {
	fw := New(DefaultConfig())
	res, err := fw.Generate(factory, program)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Trace.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := replay.ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.OpCount() != res.Trace.OpCount() || len(got.Deps) != len(res.Trace.Deps) {
		t.Fatalf("round trip lost content: %d/%d ops, %d/%d deps",
			got.OpCount(), res.Trace.OpCount(), len(got.Deps), len(res.Trace.Deps))
	}
}

func TestReplayedEndStateMatchesOriginal(t *testing.T) {
	fw := New(DefaultConfig())
	res, err := fw.Generate(factory, program)
	if err != nil {
		t.Fatal(err)
	}
	// Original end state.
	cOrig := factory()
	workload.Run(cOrig.World, params())
	s1, d1, w1, _ := cOrig.PFS.Snapshot(params().Path)
	// Replayed end state.
	cRep := factory()
	if _, err := replay.Execute(cRep, res.Trace); err != nil {
		t.Fatal(err)
	}
	s2, d2, w2, _ := cRep.PFS.Snapshot(params().Path)
	if s1 != s2 || d1 != d2 || w1 != w2 {
		t.Fatalf("replayed I/O signature differs: (%d,%x,%d) vs (%d,%x,%d)", s1, d1, w1, s2, d2, w2)
	}
}

func TestSkewedClocksStillWork(t *testing.T) {
	// Same-node comparisons cancel skew; generation must succeed and find
	// deps even with skewed/drifting clocks.
	fw := New(DefaultConfig())
	res, err := fw.Generate(skewedFactory, program)
	if err != nil {
		t.Fatal(err)
	}
	if res.DepCount == 0 {
		t.Fatal("skew broke dependency discovery")
	}
}

func TestClassificationMatchesPaper(t *testing.T) {
	fw := New(DefaultConfig())
	c := fw.Classification()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if !bool(c.ReplayableTraces) || !bool(c.RevealsDeps) {
		t.Fatalf("classification: %+v", c)
	}
	if fw.Name() != "//TRACE" {
		t.Fatalf("name = %q", fw.Name())
	}
}

func TestRawTraceStreamsBaselineRun(t *testing.T) {
	// Stream the baseline run's records straight into the binary codec as
	// they are observed — the emitter side of the pipeline.
	var buf bytes.Buffer
	bw := trace.NewParallelBinaryWriter(&buf, trace.BinaryOptions{Compress: true, RecordsPerBlock: 32}, 2)
	cfg := DefaultConfig()
	cfg.SampledRanks = 0
	cfg.RawTrace = bw
	res, err := New(cfg).Generate(factory, program)
	if err != nil {
		t.Fatal(err)
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := trace.NewParallelBinaryReader(&buf, 2).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no records streamed")
	}
	// The stream carries at least every replayable op of the result.
	if len(recs) < res.Trace.OpCount() {
		t.Fatalf("streamed %d records for %d replayable ops", len(recs), res.Trace.OpCount())
	}
	// Only the baseline run emits: re-generating with sampling must not
	// multiply the stream.
	var buf2 bytes.Buffer
	bw2 := trace.NewParallelBinaryWriter(&buf2, trace.BinaryOptions{Compress: true, RecordsPerBlock: 32}, 2)
	cfg2 := DefaultConfig()
	cfg2.SampledRanks = -1 // probe every rank
	cfg2.RawTrace = bw2
	if _, err := New(cfg2).Generate(factory, program); err != nil {
		t.Fatal(err)
	}
	if err := bw2.Close(); err != nil {
		t.Fatal(err)
	}
	recs2, err := trace.NewParallelBinaryReader(&buf2, 2).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs2) != len(recs) {
		t.Fatalf("throttled runs leaked into the raw stream: %d vs %d records", len(recs2), len(recs))
	}
}
