// Package partrace reimplements //TRACE (Mesnier et al., FAST'07) as the
// paper surveys it: a tracing framework for MPI applications that captures
// I/O system calls "using dynamic library interposition", discovers
// inter-node data dependencies "by using I/O throttling", and generates
// accurate replayable traces.
//
// Throttling works exactly as the paper describes: "manually slowing the
// response time of a single node to I/O requests associated with a
// particular parallel application and observing the behavior of other nodes
// looking for causal dependencies". Each probed rank requires one extra run
// of the application, which is why "the generation of a replayable trace is
// a time consuming process" with elapsed-time overhead "ranging between ~0%
// to 205%": the SampledRanks knob (the paper: "user-control over replay
// accuracy by using sampling for their node-throttling technique") trades
// dependency coverage — and hence replay fidelity — against total tracing
// time.
package partrace

import (
	"fmt"
	"sort"

	"iotaxo/internal/cluster"
	"iotaxo/internal/core"
	"iotaxo/internal/interpose"
	"iotaxo/internal/mpi"
	"iotaxo/internal/replay"
	"iotaxo/internal/sim"
	"iotaxo/internal/trace"
)

// Config tunes the framework.
type Config struct {
	// Model is the interposition cost; zero selects interpose.Preload.
	Model interpose.CostModel
	// ThrottleDelay is the artificial per-I/O-response delay used during
	// dependency-discovery runs.
	ThrottleDelay sim.Duration
	// SampledRanks is the number of ranks probed with throttling runs
	// (the sampling knob); 0 discovers no dependencies, -1 probes all.
	SampledRanks int
	// RawTrace, when set, receives every record of the baseline traced run
	// as it is observed — the streaming raw-trace emitter. The sink is not
	// closed by the framework; throttled discovery runs do not emit.
	RawTrace trace.Sink
}

// DefaultConfig probes two ranks, the paper's implied sweet spot (~205%
// worst-case overhead corresponds to roughly two extra runs).
func DefaultConfig() Config {
	return Config{
		Model:         interpose.Preload(),
		ThrottleDelay: 5 * sim.Millisecond,
		SampledRanks:  2,
	}
}

func (c Config) fix() Config {
	if c.Model == (interpose.CostModel{}) {
		c.Model = interpose.Preload()
	}
	if c.ThrottleDelay <= 0 {
		c.ThrottleDelay = 5 * sim.Millisecond
	}
	return c
}

// Framework is a //TRACE instance.
type Framework struct {
	cfg Config
}

// New returns a framework.
func New(cfg Config) *Framework { return &Framework{cfg: cfg.fix()} }

// Name implements the common framework interface.
func (f *Framework) Name() string { return "//TRACE" }

// Classification returns the taxonomy position (paper Table 2 column).
func (f *Framework) Classification() *core.Classification {
	return core.PaperParallelTrace()
}

// opEvent is one observed I/O call with both clocks: the local timestamp
// (what the real tool sees) and the global completion time used to order
// events across nodes when wiring dependency edges.
type opEvent struct {
	rec         trace.Record
	localStart  sim.Time
	localEnd    sim.Time
	globalStart sim.Time
	globalEnd   sim.Time
}

// ioHook is the LD_PRELOAD interposition layer for one rank.
type ioHook struct {
	model    interpose.CostModel
	throttle sim.Duration // nonzero during a dependency-discovery run
	raw      *interpose.StreamSink
	events   []opEvent
	all      []opEvent // including non-I/O MPI calls, for think-time math
	enterAt  sim.Time
}

func isIOCall(name string) bool {
	switch name {
	case "MPI_File_open", "MPI_File_write_at", "MPI_File_read_at",
		"MPI_File_write", "MPI_File_read", "MPI_File_close", "MPI_File_sync":
		return true
	}
	return false
}

// isReplayableCall reports whether the call maps to a replay op
// (replay.OpFromRecord): the op index space findDeps and buildTrace must
// share. MPI_File_sync is throttled and traced like any I/O call but has
// no replay op, so it must not shift dependency indices.
func isReplayableCall(name string) bool {
	switch name {
	case "MPI_File_open", "MPI_File_write_at", "MPI_File_read_at",
		"MPI_File_write", "MPI_File_read", "MPI_File_close":
		return true
	}
	return false
}

// Enter implements mpi.LibHook.
func (h *ioHook) Enter(p *sim.Proc, name string) {
	if h.model.EnterCost > 0 {
		p.Sleep(h.model.EnterCost)
	}
	h.enterAt = p.Now()
}

// Exit implements mpi.LibHook.
func (h *ioHook) Exit(p *sim.Proc, rec *trace.Record) {
	if h.model.ExitCost > 0 {
		p.Sleep(h.model.ExitCost)
	}
	if n := rec.EstimatedTextSize(); h.model.PerOutputByte > 0 {
		p.Sleep(sim.Duration(n) * h.model.PerOutputByte)
	}
	if h.throttle > 0 && isIOCall(rec.Name) {
		// Slow this node's I/O responses.
		p.Sleep(h.throttle)
	}
	if h.raw != nil {
		h.raw.Emit(rec)
	}
	ev := opEvent{
		rec:         rec.Clone(),
		localStart:  rec.Time,
		localEnd:    rec.Time + rec.Dur,
		globalStart: h.enterAt,
		globalEnd:   p.Now(),
	}
	h.all = append(h.all, ev)
	if isReplayableCall(rec.Name) {
		h.events = append(h.events, ev)
	}
}

// runObserved executes one traced run on a fresh cluster and returns
// per-rank hooks + elapsed.
func (f *Framework) runObserved(factory func() *cluster.Cluster, program func(*sim.Proc, *mpi.Rank), throttledRank int) ([]*ioHook, sim.Duration, error) {
	return f.runObservedOn(factory(), program, throttledRank)
}

// runObservedOn executes one traced run on the given (unused) cluster.
func (f *Framework) runObservedOn(c *cluster.Cluster, program func(*sim.Proc, *mpi.Rank), throttledRank int) ([]*ioHook, sim.Duration, error) {
	n := c.World.Size()
	var raw *interpose.StreamSink
	if f.cfg.RawTrace != nil && throttledRank < 0 {
		raw = interpose.StreamTo(f.cfg.RawTrace)
	}
	hooks := make([]*ioHook, n)
	for i := 0; i < n; i++ {
		hooks[i] = &ioHook{model: f.cfg.Model, raw: raw}
		if i == throttledRank {
			hooks[i].throttle = f.cfg.ThrottleDelay
		}
		c.World.Rank(i).AttachLibHook(hooks[i])
	}
	elapsed := c.World.RunToCompletion(program)
	if raw != nil && raw.Err() != nil {
		return hooks, elapsed, fmt.Errorf("partrace: raw trace sink: %w", raw.Err())
	}
	return hooks, elapsed, nil
}

// GenResult is the output of trace generation.
type GenResult struct {
	Trace *replay.Trace
	// UntracedElapsed is the application's baseline wall time.
	UntracedElapsed sim.Duration
	// TracingElapsed is the total beginning-to-end time spent producing
	// the replayable trace (baseline traced run + all throttled runs).
	TracingElapsed sim.Duration
	// Runs counts application executions performed by the framework.
	Runs int
	// DepCount is the number of dependency edges discovered.
	DepCount int
}

// OverheadFrac is the paper's elapsed-time overhead metric for //TRACE:
// (total trace-generation time - untraced time) / untraced time.
func (g *GenResult) OverheadFrac() float64 {
	if g.UntracedElapsed <= 0 {
		return 0
	}
	return float64(g.TracingElapsed-g.UntracedElapsed) / float64(g.UntracedElapsed)
}

// Generate produces a replayable trace for the program. factory must build
// identical fresh clusters (the deterministic simulation makes repeated
// runs comparable, as repeated batch runs were on the paper's testbed).
func (f *Framework) Generate(factory func() *cluster.Cluster, program func(*sim.Proc, *mpi.Rank)) (*GenResult, error) {
	res, _, _, err := f.generate(nil, factory, program, program)
	return res, err
}

// generate is the shared trace-generation pipeline behind Generate and the
// framework-registry adapter: untraced baseline, baseline traced run
// (on base when non-nil, else a fresh cluster) executing baseProgram, then
// one throttled discovery run of program per sampled rank. It also returns
// the baseline run's hooks and elapsed time for callers that need the raw
// observation.
func (f *Framework) generate(base *cluster.Cluster, factory func() *cluster.Cluster, baseProgram, program func(*sim.Proc, *mpi.Rank)) (*GenResult, []*ioHook, sim.Duration, error) {
	// Untraced baseline (for fidelity and overhead accounting).
	untraced := factory().World.RunToCompletion(program)

	// Baseline traced run: the replayable trace's op streams.
	if base == nil {
		base = factory()
	}
	baseHooks, baseElapsed, err := f.runObservedOn(base, baseProgram, -1)
	if err != nil {
		return nil, nil, 0, err
	}
	n := len(baseHooks)

	res := &GenResult{UntracedElapsed: untraced, Runs: 1, TracingElapsed: baseElapsed}

	// Dependency discovery: throttle sampled ranks one run at a time.
	probes := f.cfg.SampledRanks
	if probes < 0 || probes > n {
		probes = n
	}
	var deps []replay.Dep
	for probe := 0; probe < probes; probe++ {
		thrHooks, thrElapsed, err := f.runObserved(factory, program, probe)
		if err != nil {
			return nil, nil, 0, err
		}
		res.Runs++
		res.TracingElapsed += thrElapsed
		deps = append(deps, f.findDeps(baseHooks, thrHooks, probe)...)
	}
	deps = dedupeDeps(deps)

	tr, err := buildTrace(baseHooks, deps, untraced)
	if err != nil {
		return nil, nil, 0, err
	}
	res.Trace = tr
	res.DepCount = len(tr.Deps)
	return res, baseHooks, baseElapsed, nil
}

// findDeps compares a throttled run against the baseline: ops on other
// ranks that shifted by at least half the throttle delay are causally
// downstream of the probed rank. Because throttle-induced delays accumulate
// across synchronization phases, each *increase* in a rank's shift marks a
// new causal edge, whose source is the probe's latest I/O completed before
// the shifted op started.
func (f *Framework) findDeps(base, throttled []*ioHook, probe int) []replay.Dep {
	var out []replay.Dep
	threshold := f.cfg.ThrottleDelay / 2
	probeOps := throttled[probe].events
	for rank := range base {
		if rank == probe {
			continue
		}
		bOps, tOps := base[rank].events, throttled[rank].events
		m := len(bOps)
		if len(tOps) < m {
			m = len(tOps)
		}
		var prevShift sim.Duration
		for k := 0; k < m; k++ {
			// Same-node comparison across runs: local clocks cancel skew.
			shift := tOps[k].localStart - bOps[k].localStart
			if shift < 0 {
				shift = 0
			}
			if shift-prevShift >= threshold {
				if j := latestBefore(probeOps, tOps[k].globalStart); j >= 0 {
					out = append(out, replay.Dep{
						FromRank: probe, FromOp: j,
						ToRank: rank, ToOp: k,
					})
				}
			}
			prevShift = shift
		}
	}
	return out
}

// latestBefore returns the index of the last op completing before t.
func latestBefore(ops []opEvent, t sim.Time) int {
	best := -1
	for j := range ops {
		if ops[j].globalEnd <= t {
			best = j
		} else {
			break
		}
	}
	return best
}

func dedupeDeps(deps []replay.Dep) []replay.Dep {
	seen := make(map[replay.Dep]bool)
	var out []replay.Dep
	for _, d := range deps {
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.ToRank != b.ToRank {
			return a.ToRank < b.ToRank
		}
		return a.ToOp < b.ToOp
	})
	return out
}

// buildTrace converts observed streams into a replayable trace. The think
// time before each I/O op excludes time spent inside non-I/O MPI calls
// (barriers): //TRACE replaces synchronization with explicit dependency
// edges rather than replaying MPI.
func buildTrace(hooks []*ioHook, deps []replay.Dep, untraced sim.Duration) (*replay.Trace, error) {
	tr := &replay.Trace{
		Ranks:           len(hooks),
		Ops:             make([][]replay.Op, len(hooks)),
		Deps:            deps,
		OriginalElapsed: untraced,
	}
	for rank, h := range hooks {
		var lastIOEnd sim.Time
		var nonIO sim.Duration
		if len(h.all) > 0 {
			lastIOEnd = h.all[0].localStart
		}
		for _, ev := range h.all {
			if !isIOCall(ev.rec.Name) {
				nonIO += ev.rec.Dur
				continue
			}
			think := ev.localStart - lastIOEnd - nonIO
			if think < 0 {
				think = 0
			}
			op, ok := replay.OpFromRecord(&ev.rec)
			if ok {
				op.Compute = think
				tr.Ops[rank] = append(tr.Ops[rank], op)
			}
			lastIOEnd = ev.localEnd
			nonIO = 0
		}
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("partrace: generated trace invalid: %w", err)
	}
	return tr, nil
}
