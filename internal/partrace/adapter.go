package partrace

import (
	"iotaxo/internal/cluster"
	"iotaxo/internal/core"
	"iotaxo/internal/framework"
	"iotaxo/internal/mpi"
	"iotaxo/internal/replay"
	"iotaxo/internal/sim"
	"iotaxo/internal/trace"
	"iotaxo/internal/workload"
)

// AsFramework adapts a //TRACE configuration to the common framework
// registry interface. //TRACE is the one multi-run framework: producing a
// replayable trace costs one baseline traced run plus one throttled run per
// sampled rank, all folded into Report.TracingElapsed, plus a replay pass
// that measures fidelity (Report.ReplayMeasured).
func AsFramework(cfg Config) framework.Framework { return &fwAdapter{cfg: cfg.fix()} }

func init() { framework.Register(AsFramework(DefaultConfig())) }

type fwAdapter struct{ cfg Config }

func (a *fwAdapter) Name() string                         { return "//TRACE" }
func (a *fwAdapter) Classification() *core.Classification { return core.PaperParallelTrace() }

func (a *fwAdapter) Attach(c *cluster.Cluster) framework.Session {
	return &fwSession{fw: New(a.cfg), c: c}
}

type fwSession struct {
	fw    *Framework
	c     *cluster.Cluster
	hooks []*ioHook
	trace *replay.Trace
}

// Run produces a replayable trace for the workload through the same
// generate pipeline Generate uses: baseline traced run on the attached
// cluster, throttled dependency-discovery runs on identical fresh clusters
// (the deterministic simulation makes repeated runs comparable, as
// repeated batch runs were on the paper's testbed), then a replay pass
// scoring fidelity.
//
// The pipeline's internal untraced baseline re-runs the workload even
// though the sweep engine measures its own: Attach(c) gives a Session no
// channel to receive the engine's baseline, and the deterministic
// simulation keeps both runs identical — one extra run per cell buys a
// self-contained Session.
func (s *fwSession) Run(spec workload.Spec) (framework.Report, error) {
	fresh := func() *cluster.Cluster { return cluster.New(s.c.Cfg) }
	plain := func(p *sim.Proc, r *mpi.Rank) { spec.Program(p, r, nil) }
	perRank := make([]workload.RankStats, s.c.Ranks())
	withStats := func(p *sim.Proc, r *mpi.Rank) {
		spec.Program(p, r, &perRank[r.RankID()])
	}

	gen, baseHooks, baseElapsed, err := s.fw.generate(s.c, fresh, withStats, plain)
	if err != nil {
		return framework.Report{}, err
	}
	s.hooks = baseHooks
	s.trace = gen.Trace

	rep := framework.Report{
		Result:         spec.ResultFromStats(baseElapsed, perRank),
		TracingElapsed: gen.TracingElapsed,
		Runs:           gen.Runs,
		Deps:           gen.DepCount,
	}
	for _, h := range baseHooks {
		for i := range h.all {
			rep.TraceBytes += h.all[i].rec.EstimatedTextSize()
		}
		rep.TraceEvents += int64(len(h.all))
	}

	rr, err := replay.Execute(fresh(), gen.Trace)
	if err != nil {
		return framework.Report{}, err
	}
	rep.ReplayMeasured = true
	rep.ReplayErr = replay.Fidelity(gen.Trace.OriginalElapsed, rr.Elapsed)
	return rep, nil
}

// Sources streams each rank's observed call stream (I/O and MPI calls) in
// observation order — the per-rank human-readable trace files.
func (s *fwSession) Sources() []trace.Source {
	out := make([]trace.Source, 0, len(s.hooks))
	for _, h := range s.hooks {
		recs := make([]trace.Record, len(h.all))
		for i := range h.all {
			recs[i] = h.all[i].rec
		}
		out = append(out, trace.SliceSource(recs))
	}
	return out
}

// Trace exposes the generated replayable trace.
func (s *fwSession) Trace() *replay.Trace { return s.trace }
