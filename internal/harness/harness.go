// Package harness drives every experiment in the paper's evaluation
// section: the three LANL-Trace overhead figures (Figures 2-4), the in-text
// bandwidth-overhead table, the elapsed-time overhead range, the Tracefs
// feature-overhead measurements, the //TRACE fidelity/overhead sweep, the
// Figure 1 sample outputs, and the measured classification summary.
//
// The engine is generic on both axes: Sweep measures any registered
// framework (see internal/framework) against any registered workload (see
// internal/workload), and MatrixSweep runs every registered framework
// against every registered workload, folding the measured overheads into
// each framework's taxonomy classification through one code path. The
// named figure functions are LANL-Trace x mpi_io_test instances of Sweep.
//
// Experiments run at a scaled-down data volume by default (the simulation's
// cost is O(I/O events), and overhead *fractions* are volume-independent);
// Options.Full selects paper-scale sizes (one 100 GB shared file / N x 10 GB
// files).
package harness

import (
	"fmt"
	"strings"

	"iotaxo/internal/cluster"
	"iotaxo/internal/framework"
	"iotaxo/internal/lanltrace"
	"iotaxo/internal/sim"
	"iotaxo/internal/workload"

	// Importing the harness registers every built-in tracing framework, so
	// MatrixSweep and the command-line tools see the full registry. Tracefs
	// and //TRACE register through the direct imports in experiments.go.
	_ "iotaxo/internal/multilayer"
	_ "iotaxo/internal/pathtrace"
)

// Options configures an experiment sweep.
type Options struct {
	// Ranks is the MPI job size (paper: 32).
	Ranks int
	// PerRankBytes is each rank's data volume; the paper wrote 100 GB/N
	// per rank to a shared file and 10 GB per rank in N-N.
	PerRankBytes int64
	// BlockSizes is the sweep's x-axis in bytes.
	BlockSizes []int64
	// Seed feeds the deterministic simulation.
	Seed int64
	// Mode selects the LANL-Trace tracer for the figure experiments.
	Mode lanltrace.Mode
	// Workloads restricts the matrix's workload axis; nil means every
	// registered workload.
	Workloads []workload.Workload

	// MaxRanks bounds the rank ladder of the scaling experiments (ScaleSweep
	// and ScaleMatrixSweep): ranks double from 4 up to MaxRanks. Zero means
	// DefaultMaxRanks.
	MaxRanks int
	// ScaleMode selects weak scaling (fixed per-rank volume) or strong
	// scaling (fixed total volume) for the scaling experiments.
	ScaleMode ScaleMode

	// RanksPerNode is the placement axis: how many MPI ranks share one
	// compute node (and therefore its NIC, kernel, and local disk). Zero or
	// one means the paper's one-rank-per-node testbed.
	RanksPerNode int
	// PFSServers overrides the parallel file system's object server count;
	// zero keeps the testbed default. The server-count scaling experiments
	// (ServerSweep) sweep this axis.
	PFSServers int
	// MaxServers bounds the server ladder of ServerSweep and
	// ServerMatrixSweep: servers double from 1 up to MaxServers. Zero means
	// DefaultMaxServers.
	MaxServers int

	// Cache memoizes leaf-simulation summaries across engine calls (and,
	// when the cache persists to disk, across processes). Nil gives every
	// engine call a fresh in-memory cache: in-run baseline sharing still
	// applies, but nothing is reused between calls — the right default for
	// tests and benchmarks, which must measure real simulations.
	Cache *Cache
}

// DefaultOptions returns the scaled-down sweep: 32 ranks, 16 MiB per rank,
// block sizes 64 KB to 8192 KB doubling (the figures' x-axis).
func DefaultOptions() Options {
	return Options{
		Ranks:        32,
		PerRankBytes: 16 << 20,
		BlockSizes:   []int64{64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20, 8 << 20},
		Seed:         1,
		Mode:         lanltrace.ModeLtrace,
	}
}

// FullOptions returns paper-scale sizes (expensive: ~1.6 M syscalls at the
// 64 KB point).
func FullOptions() Options {
	o := DefaultOptions()
	o.PerRankBytes = 100 << 30 / 32 // one 100 GB shared file across 32 ranks
	return o
}

// QuickOptions returns a tiny sweep for unit tests and testing.B benches.
func QuickOptions() Options {
	return Options{
		Ranks:        8,
		PerRankBytes: 2 << 20,
		BlockSizes:   []int64{64 << 10, 512 << 10, 8 << 20},
		Seed:         1,
		Mode:         lanltrace.ModeLtrace,
	}
}

// MatrixSmokeOptions returns the smallest registry-wide configuration: one
// block size at 4 ranks, affordable for every framework x every workload
// under the race detector (CI's matrix-smoke step and `iotaxo -table
// matrix`).
func MatrixSmokeOptions() Options {
	o := QuickOptions()
	o.Ranks = 4
	o.PerRankBytes = 1 << 20
	o.BlockSizes = []int64{256 << 10}
	return o
}

// ranksPerNode returns the placement density, defaulted.
func (o Options) ranksPerNode() int {
	if o.RanksPerNode > 1 {
		return o.RanksPerNode
	}
	return 1
}

// clusterConfig derives the testbed configuration of one run. Ranks are
// block-placed RanksPerNode to a compute node (ceiling on the node count,
// so small rungs of the rank ladder still run when they do not fill one
// node), and PFSServers overrides the object server count when set. The
// config is the complete cluster-side input of a leaf simulation: its
// Digest (with the workload, scale, and framework) is the cache key.
func (o Options) clusterConfig() cluster.Config {
	cfg := cluster.Default()
	rpn := o.ranksPerNode()
	cfg.RanksPerNode = rpn
	cfg.ComputeNodes = (o.Ranks + rpn - 1) / rpn
	cfg.TotalRanks = o.Ranks
	if o.PFSServers > 0 {
		cfg.PFS.Servers = o.PFSServers
	}
	cfg.Seed = o.Seed
	return cfg
}

// newCluster builds a fresh testbed for one run.
func (o Options) newCluster() *cluster.Cluster {
	return cluster.New(o.clusterConfig())
}

// simKeyFor identifies one leaf simulation by its complete input set; fw is
// nil for untraced baselines.
func (o Options) simKeyFor(fw framework.Framework, w workload.Workload, sc workload.Scale) simKey {
	k := simKey{
		Workload: w.Name(),
		Scale:    sc.Digest(),
		Cluster:  o.clusterConfig().Digest(),
	}
	if fw != nil {
		k.Framework = fw.Name()
		k.Variant = framework.VariantDigest(fw)
	}
	return k
}

// scaleFor derives the workload scale at one block size.
func (o Options) scaleFor(block int64) workload.Scale {
	return workload.Scale{BlockSize: block, PerRankBytes: o.PerRankBytes}
}

// lanlFramework returns the LANL-Trace instance matching o.Mode, the tracer
// selector of the figure experiments.
func (o Options) lanlFramework() framework.Framework {
	if o.Mode == lanltrace.ModeStrace {
		return lanltrace.AsFramework(lanltrace.StraceConfig())
	}
	return lanltrace.AsFramework(lanltrace.DefaultConfig())
}

// BandwidthPoint is one x-position of a sweep (Figures 2-4 and the matrix
// cells).
type BandwidthPoint struct {
	BlockBytes       int64
	UntracedMBps     float64
	TracedMBps       float64
	UntracedElapsed  sim.Duration
	TracedElapsed    sim.Duration // total trace-production time (== traced run time for single-run frameworks)
	BandwidthOvhFrac float64      // (untraced - traced) / untraced bandwidth
	ElapsedOvhFrac   float64      // (traced - untraced) / untraced elapsed

	// Trace output volume and framework-specific extras of the traced run.
	TraceEvents int64
	TraceBytes  int64
	Runs        int // application executions the framework consumed
	Deps        int // dependency edges discovered, if the framework reveals them
	// ReplayMeasured/ReplayErr report replay fidelity for frameworks that
	// generate replayable traces.
	ReplayMeasured bool
	ReplayErr      float64
}

// FigureResult is one sweep's series: bandwidth vs block size for traced
// and untraced runs of one framework on one workload.
type FigureResult struct {
	ID        string
	Title     string
	Framework string
	Workload  string
	Points    []BandwidthPoint
}

// runUntracedAt executes one untraced benchmark run at an explicit scale.
func (o Options) runUntracedAt(w workload.Workload, sc workload.Scale) workload.Result {
	c := o.newCluster()
	return w.Run(c.World, sc)
}

// runTracedAt executes one traced benchmark run at an explicit scale
// through the generic framework interface: fresh cluster, attach, run.
func (o Options) runTracedAt(fw framework.Framework, w workload.Workload, sc workload.Scale) (framework.Report, error) {
	c := o.newCluster()
	return fw.Attach(c).Run(w.Spec(sc))
}

// runUntraced executes one untraced benchmark run of the block-size sweep.
func (o Options) runUntraced(w workload.Workload, block int64) workload.Result {
	return o.runUntracedAt(w, o.scaleFor(block))
}

// runTraced executes one traced benchmark run of the block-size sweep.
func (o Options) runTraced(fw framework.Framework, w workload.Workload, block int64) (framework.Report, error) {
	return o.runTracedAt(fw, w, o.scaleFor(block))
}

// makePoint folds one (untraced, traced) run pair into a sweep point: the
// one place overhead fractions are computed, shared by the block-size sweep
// and the rank-scaling sweep.
func makePoint(block int64, un workload.Result, rep framework.Report) BandwidthPoint {
	tr := rep.Result
	pt := BandwidthPoint{
		BlockBytes:      block,
		UntracedMBps:    un.BandwidthBps() / 1e6,
		TracedMBps:      tr.BandwidthBps() / 1e6,
		UntracedElapsed: un.Elapsed,
		TracedElapsed:   rep.TracingElapsed,
		TraceEvents:     rep.TraceEvents,
		TraceBytes:      rep.TraceBytes,
		Runs:            rep.Runs,
		Deps:            rep.Deps,
		ReplayMeasured:  rep.ReplayMeasured,
		ReplayErr:       rep.ReplayErr,
	}
	if un.BandwidthBps() > 0 {
		pt.BandwidthOvhFrac = (un.BandwidthBps() - tr.BandwidthBps()) / un.BandwidthBps()
	}
	if un.Elapsed > 0 {
		pt.ElapsedOvhFrac = float64(rep.TracingElapsed-un.Elapsed) / float64(un.Elapsed)
	}
	return pt
}

// sweepRuns collects one sweep's raw measurements, indexed by block
// position: the staging area between the scheduler's leaf tasks and point
// assembly.
type sweepRuns struct {
	uns  []workload.Result
	reps []framework.Report
	errs []error
}

func newSweepRuns(n int) *sweepRuns {
	return &sweepRuns{
		uns:  make([]workload.Result, n),
		reps: make([]framework.Report, n),
		errs: make([]error, n),
	}
}

// cacheOrEphemeral returns the options' cache, or a fresh in-memory cache
// for one engine call when none is configured.
func (o Options) cacheOrEphemeral() *Cache {
	if o.Cache != nil {
		return o.Cache
	}
	return NewCache("")
}

// simCost estimates one leaf simulation's size (roughly its simulated I/O
// event count) for the scheduler's shortest-first ordering. Traced runs pay
// for interposition and trace output on every event.
func simCost(o Options, sc workload.Scale, traced bool) int64 {
	c := int64(sc.Objects())*int64(o.Ranks) + int64(o.Ranks)
	if traced {
		c *= 3
	}
	return c
}

// taskSet stages one engine call's leaf simulations before scheduling: the
// construction-time half of the memoization layer. Identical untraced
// baselines — every framework row of a matrix needs the same one per
// workload x scale — collapse into a single task whose result fans out to
// every registered destination, so a cold full-registry matrix executes one
// untraced run per cell-column instead of one per cell. Every task then
// resolves through the cache, which adds in-flight dedup and cross-process
// reuse. Construction is single-threaded; only run() executes anything.
type taskSet struct {
	cache     *Cache
	baselines map[simKey]*fanout
	tasks     []task
}

// fanout collects every destination awaiting one shared untraced baseline.
type fanout struct {
	dsts []*workload.Result
}

func newTaskSet(c *Cache) *taskSet {
	return &taskSet{cache: c, baselines: make(map[simKey]*fanout)}
}

// untraced stages a baseline run of w at sc, fanning an already-staged
// identical run out to dst instead of scheduling a duplicate.
func (ts *taskSet) untraced(o Options, w workload.Workload, sc workload.Scale, dst *workload.Result) {
	k := o.simKeyFor(nil, w, sc)
	if f, ok := ts.baselines[k]; ok {
		f.dsts = append(f.dsts, dst)
		ts.cache.shared.Add(1)
		return
	}
	f := &fanout{dsts: []*workload.Result{dst}}
	ts.baselines[k] = f
	ts.tasks = append(ts.tasks, task{
		cost: simCost(o, sc, false),
		run: func() {
			res := ts.cache.untraced(k, func() workload.Result { return o.runUntracedAt(w, sc) })
			for _, d := range f.dsts {
				*d = res
			}
		},
	})
}

// traced stages a traced run of w under fw at sc; label contextualizes the
// error wrap ("fw, w, block 65536").
func (ts *taskSet) traced(o Options, fw framework.Framework, w workload.Workload, sc workload.Scale, label string, dst *framework.Report, errDst *error) {
	k := o.simKeyFor(fw, w, sc)
	ts.tasks = append(ts.tasks, task{
		cost: simCost(o, sc, true),
		run: func() {
			rep, err := ts.cache.traced(k, func() (framework.Report, error) { return o.runTracedAt(fw, w, sc) })
			if err != nil {
				*errDst = fmt.Errorf("harness: %s: %w", label, err)
				return
			}
			*dst = rep
		},
	})
}

// run executes the staged tasks on the shared bounded scheduler.
func (ts *taskSet) run() { sched.run(ts.tasks) }

// addSweepTasks stages the block-size sweep's leaf simulations — one shared
// untraced and one traced run per block size — writing results into runs.
// Tasks are independent, independently seeded simulations, so the scheduler
// may run them in any order or interleaving without changing any measured
// value.
func (o Options) addSweepTasks(ts *taskSet, fw framework.Framework, w workload.Workload, runs *sweepRuns) {
	for i, block := range o.BlockSizes {
		sc := o.scaleFor(block)
		ts.untraced(o, w, sc, &runs.uns[i])
		ts.traced(o, fw, w, sc,
			fmt.Sprintf("%s, %s, block %d", fw.Name(), w.Name(), block),
			&runs.reps[i], &runs.errs[i])
	}
}

// assemble folds completed runs into the figure's points.
func (o Options) assemble(fig *FigureResult, runs *sweepRuns) error {
	for i, block := range o.BlockSizes {
		if err := runs.errs[i]; err != nil {
			return err
		}
		fig.Points[i] = makePoint(block, runs.uns[i], runs.reps[i])
	}
	return nil
}

// Sweep measures one framework against one workload across the options'
// block sizes: the generic engine behind the figures and the matrix. Each
// (block size, traced?) run is an independent simulation environment
// executed on the shared bounded scheduler; results are deterministic
// regardless of scheduling because every environment is seeded identically.
func Sweep(fw framework.Framework, w workload.Workload, o Options) (FigureResult, error) {
	return o.sweep("sweep", fmt.Sprintf("%s overhead, %s", fw.Name(), w.Name()), fw, w)
}

func (o Options) sweep(id, title string, fw framework.Framework, w workload.Workload) (FigureResult, error) {
	fig := FigureResult{
		ID: id, Title: title, Framework: fw.Name(), Workload: w.Name(),
		Points: make([]BandwidthPoint, len(o.BlockSizes)),
	}
	runs := newSweepRuns(len(o.BlockSizes))
	ts := newTaskSet(o.cacheOrEphemeral())
	o.addSweepTasks(ts, fw, w, runs)
	ts.run()
	if err := o.assemble(&fig, runs); err != nil {
		return fig, err
	}
	return fig, nil
}

// mustSweep wraps sweep for the built-in figures, whose frameworks cannot
// fail a run.
func (o Options) mustSweep(id, title string, fw framework.Framework, w workload.Workload) FigureResult {
	fig, err := o.sweep(id, title, fw, w)
	if err != nil {
		panic(err)
	}
	return fig
}

// Figure2 regenerates Figure 2: N processes writing one shared file,
// strided — "the benchmark parameterization most demanding on the parallel
// I/O file system".
func Figure2(o Options) FigureResult {
	return o.mustSweep("fig2", "LANL-Trace overhead, N procs writing one shared file, strided", o.lanlFramework(), workload.PatternWorkload(workload.N1Strided))
}

// Figure3 regenerates Figure 3: N processes writing one shared file,
// non-strided.
func Figure3(o Options) FigureResult {
	return o.mustSweep("fig3", "LANL-Trace overhead, N procs writing one shared file, non-strided", o.lanlFramework(), workload.PatternWorkload(workload.N1NonStrided))
}

// Figure4 regenerates Figure 4: N processes writing N files.
func Figure4(o Options) FigureResult {
	return o.mustSweep("fig4", "LANL-Trace overhead, N procs writing N files", o.lanlFramework(), workload.PatternWorkload(workload.NToN))
}

// Format renders the figure as an aligned text table (the repo's stand-in
// for the paper's plots).
func (f FigureResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s: %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "%10s %14s %14s %12s %12s\n",
		"block(KB)", "untraced MB/s", "traced MB/s", "bw ovh %", "elapsed ovh %")
	for _, p := range f.Points {
		fmt.Fprintf(&b, "%10d %14.1f %14.1f %12.1f %12.1f\n",
			p.BlockBytes>>10, p.UntracedMBps, p.TracedMBps,
			p.BandwidthOvhFrac*100, p.ElapsedOvhFrac*100)
	}
	return b.String()
}

// CSV renders the figure series for plotting.
func (f FigureResult) CSV() string {
	var b strings.Builder
	b.WriteString("block_kb,untraced_mbps,traced_mbps,bw_overhead_frac,elapsed_overhead_frac\n")
	for _, p := range f.Points {
		fmt.Fprintf(&b, "%d,%.3f,%.3f,%.4f,%.4f\n",
			p.BlockBytes>>10, p.UntracedMBps, p.TracedMBps, p.BandwidthOvhFrac, p.ElapsedOvhFrac)
	}
	return b.String()
}
