// Package harness drives every experiment in the paper's evaluation
// section: the three LANL-Trace overhead figures (Figures 2-4), the in-text
// bandwidth-overhead table, the elapsed-time overhead range, the Tracefs
// feature-overhead measurements, the //TRACE fidelity/overhead sweep, the
// Figure 1 sample outputs, and the measured classification summary.
//
// The engine is generic: Sweep measures any registered framework (see
// internal/framework) against any workload pattern, and MatrixSweep runs
// every registered framework against every pattern, folding the measured
// overheads into each framework's taxonomy classification through one code
// path. The named figure functions are LANL-Trace instances of Sweep.
//
// Experiments run at a scaled-down data volume by default (the simulation's
// cost is O(I/O events), and overhead *fractions* are volume-independent);
// Options.Full selects paper-scale sizes (one 100 GB shared file / N x 10 GB
// files).
package harness

import (
	"fmt"
	"strings"
	"sync"

	"iotaxo/internal/cluster"
	"iotaxo/internal/framework"
	"iotaxo/internal/lanltrace"
	"iotaxo/internal/sim"
	"iotaxo/internal/workload"

	// Importing the harness registers every built-in tracing framework, so
	// MatrixSweep and the command-line tools see the full registry. Tracefs
	// and //TRACE register through the direct imports in experiments.go.
	_ "iotaxo/internal/multilayer"
	_ "iotaxo/internal/pathtrace"
)

// Options configures an experiment sweep.
type Options struct {
	// Ranks is the MPI job size (paper: 32).
	Ranks int
	// PerRankBytes is each rank's data volume; the paper wrote 100 GB/N
	// per rank to a shared file and 10 GB per rank in N-N.
	PerRankBytes int64
	// BlockSizes is the sweep's x-axis in bytes.
	BlockSizes []int64
	// Seed feeds the deterministic simulation.
	Seed int64
	// Mode selects the LANL-Trace tracer for the figure experiments.
	Mode lanltrace.Mode
}

// DefaultOptions returns the scaled-down sweep: 32 ranks, 16 MiB per rank,
// block sizes 64 KB to 8192 KB doubling (the figures' x-axis).
func DefaultOptions() Options {
	return Options{
		Ranks:        32,
		PerRankBytes: 16 << 20,
		BlockSizes:   []int64{64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20, 8 << 20},
		Seed:         1,
		Mode:         lanltrace.ModeLtrace,
	}
}

// FullOptions returns paper-scale sizes (expensive: ~1.6 M syscalls at the
// 64 KB point).
func FullOptions() Options {
	o := DefaultOptions()
	o.PerRankBytes = 100 << 30 / 32 // one 100 GB shared file across 32 ranks
	return o
}

// QuickOptions returns a tiny sweep for unit tests and testing.B benches.
func QuickOptions() Options {
	return Options{
		Ranks:        8,
		PerRankBytes: 2 << 20,
		BlockSizes:   []int64{64 << 10, 512 << 10, 8 << 20},
		Seed:         1,
		Mode:         lanltrace.ModeLtrace,
	}
}

// newCluster builds a fresh testbed for one run.
func (o Options) newCluster() *cluster.Cluster {
	cfg := cluster.Default()
	cfg.ComputeNodes = o.Ranks
	cfg.Seed = o.Seed
	return cluster.New(cfg)
}

// paramsFor derives workload parameters for a pattern and block size.
func (o Options) paramsFor(pattern workload.Pattern, block int64) workload.Params {
	nobj := int(o.PerRankBytes / block)
	if nobj < 1 {
		nobj = 1
	}
	return workload.Params{
		Pattern:   pattern,
		BlockSize: block,
		NObj:      nobj,
		Path:      "/pfs/mpi_io_test.out",
	}
}

// lanlFramework returns the LANL-Trace instance matching o.Mode, the tracer
// selector of the figure experiments.
func (o Options) lanlFramework() framework.Framework {
	if o.Mode == lanltrace.ModeStrace {
		return lanltrace.AsFramework(lanltrace.StraceConfig())
	}
	return lanltrace.AsFramework(lanltrace.DefaultConfig())
}

// BandwidthPoint is one x-position of a sweep (Figures 2-4 and the matrix
// cells).
type BandwidthPoint struct {
	BlockBytes       int64
	UntracedMBps     float64
	TracedMBps       float64
	UntracedElapsed  sim.Duration
	TracedElapsed    sim.Duration // total trace-production time (== traced run time for single-run frameworks)
	BandwidthOvhFrac float64      // (untraced - traced) / untraced bandwidth
	ElapsedOvhFrac   float64      // (traced - untraced) / untraced elapsed

	// Trace output volume and framework-specific extras of the traced run.
	TraceEvents int64
	TraceBytes  int64
	Runs        int // application executions the framework consumed
	Deps        int // dependency edges discovered, if the framework reveals them
	// ReplayMeasured/ReplayErr report replay fidelity for frameworks that
	// generate replayable traces.
	ReplayMeasured bool
	ReplayErr      float64
}

// FigureResult is one sweep's series: bandwidth vs block size for traced
// and untraced runs of one framework on one pattern.
type FigureResult struct {
	ID        string
	Title     string
	Framework string
	Pattern   workload.Pattern
	Points    []BandwidthPoint
}

// runUntraced executes one untraced benchmark run.
func (o Options) runUntraced(pattern workload.Pattern, block int64) workload.Result {
	c := o.newCluster()
	return workload.Run(c.World, o.paramsFor(pattern, block))
}

// runTraced executes one traced benchmark run through the generic framework
// interface: fresh cluster, attach, run.
func (o Options) runTraced(fw framework.Framework, pattern workload.Pattern, block int64) (framework.Report, error) {
	c := o.newCluster()
	return fw.Attach(c).Run(o.paramsFor(pattern, block))
}

// Sweep measures one framework against one workload pattern across the
// options' block sizes: the generic engine behind the figures and the
// matrix. Each (block size, traced?) run is an independent simulation
// environment, so the sweep fans out across OS threads; results are
// deterministic regardless of scheduling because every environment is
// seeded identically.
func Sweep(fw framework.Framework, pattern workload.Pattern, o Options) (FigureResult, error) {
	return o.sweep("sweep", fmt.Sprintf("%s overhead, %s", fw.Name(), pattern), fw, pattern)
}

func (o Options) sweep(id, title string, fw framework.Framework, pattern workload.Pattern) (FigureResult, error) {
	fig := FigureResult{
		ID: id, Title: title, Framework: fw.Name(), Pattern: pattern,
		Points: make([]BandwidthPoint, len(o.BlockSizes)),
	}
	errs := make([]error, len(o.BlockSizes))
	var wg sync.WaitGroup
	for i, block := range o.BlockSizes {
		i, block := i, block
		wg.Add(1)
		go func() {
			defer wg.Done()
			var un workload.Result
			var rep framework.Report
			var err error
			var inner sync.WaitGroup
			inner.Add(2)
			go func() { defer inner.Done(); un = o.runUntraced(pattern, block) }()
			go func() { defer inner.Done(); rep, err = o.runTraced(fw, pattern, block) }()
			inner.Wait()
			if err != nil {
				errs[i] = fmt.Errorf("harness: %s, %s, block %d: %w", fw.Name(), pattern, block, err)
				return
			}
			tr := rep.Result
			pt := BandwidthPoint{
				BlockBytes:      block,
				UntracedMBps:    un.BandwidthBps() / 1e6,
				TracedMBps:      tr.BandwidthBps() / 1e6,
				UntracedElapsed: un.Elapsed,
				TracedElapsed:   rep.TracingElapsed,
				TraceEvents:     rep.TraceEvents,
				TraceBytes:      rep.TraceBytes,
				Runs:            rep.Runs,
				Deps:            rep.Deps,
				ReplayMeasured:  rep.ReplayMeasured,
				ReplayErr:       rep.ReplayErr,
			}
			if un.BandwidthBps() > 0 {
				pt.BandwidthOvhFrac = (un.BandwidthBps() - tr.BandwidthBps()) / un.BandwidthBps()
			}
			if un.Elapsed > 0 {
				pt.ElapsedOvhFrac = float64(rep.TracingElapsed-un.Elapsed) / float64(un.Elapsed)
			}
			fig.Points[i] = pt
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return fig, err
		}
	}
	return fig, nil
}

// mustSweep wraps sweep for the built-in figures, whose frameworks cannot
// fail a run.
func (o Options) mustSweep(id, title string, fw framework.Framework, pattern workload.Pattern) FigureResult {
	fig, err := o.sweep(id, title, fw, pattern)
	if err != nil {
		panic(err)
	}
	return fig
}

// Figure2 regenerates Figure 2: N processes writing one shared file,
// strided — "the benchmark parameterization most demanding on the parallel
// I/O file system".
func Figure2(o Options) FigureResult {
	return o.mustSweep("fig2", "LANL-Trace overhead, N procs writing one shared file, strided", o.lanlFramework(), workload.N1Strided)
}

// Figure3 regenerates Figure 3: N processes writing one shared file,
// non-strided.
func Figure3(o Options) FigureResult {
	return o.mustSweep("fig3", "LANL-Trace overhead, N procs writing one shared file, non-strided", o.lanlFramework(), workload.N1NonStrided)
}

// Figure4 regenerates Figure 4: N processes writing N files.
func Figure4(o Options) FigureResult {
	return o.mustSweep("fig4", "LANL-Trace overhead, N procs writing N files", o.lanlFramework(), workload.NToN)
}

// Format renders the figure as an aligned text table (the repo's stand-in
// for the paper's plots).
func (f FigureResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s: %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "%10s %14s %14s %12s %12s\n",
		"block(KB)", "untraced MB/s", "traced MB/s", "bw ovh %", "elapsed ovh %")
	for _, p := range f.Points {
		fmt.Fprintf(&b, "%10d %14.1f %14.1f %12.1f %12.1f\n",
			p.BlockBytes>>10, p.UntracedMBps, p.TracedMBps,
			p.BandwidthOvhFrac*100, p.ElapsedOvhFrac*100)
	}
	return b.String()
}

// CSV renders the figure series for plotting.
func (f FigureResult) CSV() string {
	var b strings.Builder
	b.WriteString("block_kb,untraced_mbps,traced_mbps,bw_overhead_frac,elapsed_overhead_frac\n")
	for _, p := range f.Points {
		fmt.Fprintf(&b, "%d,%.3f,%.3f,%.4f,%.4f\n",
			p.BlockBytes>>10, p.UntracedMBps, p.TracedMBps, p.BandwidthOvhFrac, p.ElapsedOvhFrac)
	}
	return b.String()
}
