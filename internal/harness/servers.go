package harness

import (
	"fmt"
	"strings"

	"iotaxo/internal/framework"
	"iotaxo/internal/workload"
)

// This file is the storage-scaling axis of the measurement engine: the dual
// of scale.go. Where ScaleSweep grows the job against a fixed file system,
// ServerSweep fixes the job (ranks and block size) and sweeps the parallel
// file system's object server count instead — 1 doubling to
// Options.MaxServers. Tracer overhead is relative to the untraced run *at
// the same server count*, so each rung isolates how interposition cost
// composes with storage parallelism: a tracer whose stalls hide behind a
// saturated 1-server file system may dominate once 16 servers absorb the
// I/O. ServerMatrixSweep folds the sweep into the matrix path, all through
// the shared bounded scheduler.

// DefaultMaxServers is the server ladder's default top rung, chosen to
// bracket the paper testbed's 12 object servers.
const DefaultMaxServers = 16

// minScaleServers is the server ladder's base rung.
const minScaleServers = 1

// ServerOptions returns the default server-sweep configuration: the paper's
// 32-rank job, 64 KB blocks, 1 MiB per rank, server ladder 1 doubling to 16.
func ServerOptions() Options {
	o := DefaultOptions()
	o.PerRankBytes = 1 << 20
	o.BlockSizes = []int64{64 << 10}
	o.MaxServers = DefaultMaxServers
	return o
}

// ServerSmokeOptions returns the smallest server ladder (1 to 4 servers, 8
// ranks, 256 KiB per rank), affordable for the full registry under the race
// detector: CI's server-sweep smoke step.
func ServerSmokeOptions() Options {
	o := ServerOptions()
	o.Ranks = 8
	o.PerRankBytes = 256 << 10
	o.MaxServers = 4
	return o
}

// maxServers returns the server ladder's top rung, defaulted.
func (o Options) maxServers() int {
	if o.MaxServers > 0 {
		return o.MaxServers
	}
	return DefaultMaxServers
}

// serverLadder returns the server sweep's x-axis: object server counts
// doubling from 1 to MaxServers, with MaxServers itself always the top rung.
func (o Options) serverLadder() []int {
	return doublingLadder(minScaleServers, o.maxServers())
}

// ResolveServerOptions builds the server-sweep configuration from CLI flag
// values, shared by `iotaxo -exp servers` and `tracebench -exp servers` so
// the two front ends cannot drift: maxServers and ranks override when
// positive, ranksPerNode sets the placement density, and the workload token
// selects the column axis with the same semantics as the rank-scaling
// experiment.
func ResolveServerOptions(base Options, maxServers, ranks, ranksPerNode int, workloadName string) (Options, error) {
	o := base
	if maxServers > 0 {
		o.MaxServers = maxServers
	}
	if ranks > 0 {
		o.Ranks = ranks
	}
	if err := o.resolvePlacement(ranksPerNode); err != nil {
		return o, err
	}
	if err := o.resolveWorkloadAxis(workloadName); err != nil {
		return o, err
	}
	return o, nil
}

// ServerPoint is one server-count position of a server sweep.
type ServerPoint struct {
	Servers int
	BandwidthPoint
}

// ServerResult is one framework x workload overhead-vs-servers series: the
// storage mirror of ScaleResult.
type ServerResult struct {
	ID           string
	Title        string
	Framework    string
	Workload     string
	Block        int64
	Ranks        int
	RanksPerNode int
	Points       []ServerPoint
}

// ServerSweep measures one framework against one workload across the server
// ladder at fixed ranks and block size. Every (server count, traced?) run is
// an independently seeded simulation executed on the shared bounded
// scheduler, so output is deterministic and peak concurrency is PoolSize.
func ServerSweep(fw framework.Framework, w workload.Workload, o Options) (ServerResult, error) {
	runs := newSweepRuns(len(o.serverLadder()))
	ts := newTaskSet(o.cacheOrEphemeral())
	o.addServerTasks(ts, fw, w, runs)
	ts.run()
	return o.assembleServers(fw, w, runs)
}

// addServerTasks stages the server sweep's leaf simulations, one shared
// untraced and one traced run per ladder rung. Each rung's tasks carry the
// rung-specific options (PFSServers), so cache keys fingerprint the rung's
// actual testbed.
func (o Options) addServerTasks(ts *taskSet, fw framework.Framework, w workload.Workload, runs *sweepRuns) {
	sc := workload.Scale{BlockSize: o.scaleBlock(), PerRankBytes: o.PerRankBytes}
	for i, servers := range o.serverLadder() {
		so := o
		so.PFSServers = servers
		ts.untraced(so, w, sc, &runs.uns[i])
		ts.traced(so, fw, w, sc,
			fmt.Sprintf("%s, %s, servers %d", fw.Name(), w.Name(), servers),
			&runs.reps[i], &runs.errs[i])
	}
}

// assembleServers folds completed rung runs into the series.
func (o Options) assembleServers(fw framework.Framework, w workload.Workload, runs *sweepRuns) (ServerResult, error) {
	ladder := o.serverLadder()
	res := ServerResult{
		ID:           "servers",
		Title:        fmt.Sprintf("%s overhead vs PFS servers, %s", fw.Name(), w.Name()),
		Framework:    fw.Name(),
		Workload:     w.Name(),
		Block:        o.scaleBlock(),
		Ranks:        o.Ranks,
		RanksPerNode: o.ranksPerNode(),
		Points:       make([]ServerPoint, len(ladder)),
	}
	for i, servers := range ladder {
		if err := runs.errs[i]; err != nil {
			return res, err
		}
		res.Points[i] = ServerPoint{
			Servers:        servers,
			BandwidthPoint: makePoint(o.scaleBlock(), runs.uns[i], runs.reps[i]),
		}
	}
	return res, nil
}

// Placement mirrors ScaleResult.Placement for CSV consumers.
func (r ServerResult) Placement() string { return placementLabel(r.RanksPerNode) }

// Format renders the series as an aligned text table, mirroring
// ScaleResult.Format with object servers on the x-axis.
func (r ServerResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s: %s (%d ranks, block %d KB%s)\n", r.ID, r.Title, r.Ranks, r.Block>>10, placementLabel(r.RanksPerNode))
	fmt.Fprintf(&b, "%8s %14s %14s %12s %12s\n",
		"servers", "untraced MB/s", "traced MB/s", "bw ovh %", "elapsed ovh %")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%8d %14.1f %14.1f %12.1f %12.1f\n",
			p.Servers, p.UntracedMBps, p.TracedMBps,
			p.BandwidthOvhFrac*100, p.ElapsedOvhFrac*100)
	}
	return b.String()
}

// CSV renders the series for plotting, mirroring ScaleResult.CSV.
func (r ServerResult) CSV() string {
	var b strings.Builder
	b.WriteString("servers,untraced_mbps,traced_mbps,bw_overhead_frac,elapsed_overhead_frac\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%d,%.3f,%.3f,%.4f,%.4f\n",
			p.Servers, p.UntracedMBps, p.TracedMBps,
			p.BandwidthOvhFrac, p.ElapsedOvhFrac)
	}
	return b.String()
}

// ServerMatrixResult is the storage-scaling matrix: one overhead-vs-servers
// series per framework x workload pair, row-major in framework order.
type ServerMatrixResult struct {
	Series []ServerResult
	// Stats is the sweep's cache/scheduler accounting, reported beside the
	// measurements (never inside Format, which must stay byte-identical
	// between cold and warm runs).
	Stats SweepStats
}

// ServerMatrixSweep runs the server sweep for every registered framework on
// every registered workload (Options.Workloads restricts the column axis).
func ServerMatrixSweep(o Options) (ServerMatrixResult, error) {
	return ServerMatrixSweepOf(o, framework.All()...)
}

// ServerMatrixSweepOf is ServerMatrixSweep restricted to the given
// frameworks. All series' runs are staged into one task set for the shared
// bounded scheduler — sharing untraced baselines across framework rows and
// memoizing through Options.Cache — so peak concurrency stays at PoolSize
// however large the registries grow.
func ServerMatrixSweepOf(o Options, fws ...framework.Framework) (ServerMatrixResult, error) {
	series, stats, err := matrixSweepOf(o, fws, len(o.serverLadder()), Options.addServerTasks, o.assembleServers)
	return ServerMatrixResult{Series: series, Stats: stats}, err
}

// Format renders every series' table, separated by blank lines, in matrix
// (framework-major) order.
func (m ServerMatrixResult) Format() string {
	return formatMatrix("framework x workload server-count matrix", m.Series)
}
