package harness

// This file is the content-addressed leaf-result cache under every sweep
// engine. The taxonomy's overhead numbers are built from comparisons against
// identical, deterministically seeded untraced baselines, so a full-registry
// matrix used to spend nearly half its simulations recomputing byte-identical
// results — one untraced run per framework row instead of one per
// workload-column. Each leaf simulation is a pure function of its inputs
// (workload, scale, cluster config including seed, and the tracing framework
// or its absence), so its summary can be addressed by a digest of those
// inputs and reused:
//
//   - within a run, the engines' task sets collapse identical untraced
//     baselines into one scheduled task that fans out to every row
//     (construction-time sharing; see taskSet in harness.go);
//   - across concurrent engine calls, identical in-flight keys collapse via
//     singleflight;
//   - across processes, summaries persist as versioned JSON files
//     (`workload.Result`/`framework.Report` with per-rank detail stripped,
//     never raw traces), so a repeated run executes zero simulations.
//
// The key addresses *inputs*, not simulator code: editing a simulator
// changes what a key should produce without changing the key. cacheSchema
// exists for exactly that — bump it whenever simulated behaviour changes,
// which invalidates every persisted entry at load time. Corrupt, stale, or
// foreign files are silently treated as misses; caching is always
// best-effort and never a correctness dependency.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"iotaxo/internal/fnvhash"
	"iotaxo/internal/framework"
	"iotaxo/internal/workload"
)

// cacheSchema versions the persisted entry format AND the simulated
// behaviour it captures. Bump on any change to the simulators, cost models,
// or result summaries: entries written under another schema are ignored.
const cacheSchema = 1

// simKey identifies one leaf simulation by its complete input set. Two runs
// with equal keys are the same deterministic simulation and must produce
// the same summary.
type simKey struct {
	// Framework is the registered framework name; empty for an untraced
	// baseline run.
	Framework string
	// Variant distinguishes framework configurations that share a Name
	// (framework.VariantDigest; 0 when the Name says it all).
	Variant uint64
	// Workload is the registered scenario name.
	Workload string
	// Scale and Cluster fingerprint the run size and the full testbed
	// configuration (seed included).
	Scale   uint64
	Cluster uint64
}

// id renders the canonical, schema-versioned key string persisted alongside
// each disk entry, so hash-filename collisions can never alias entries.
func (k simKey) id() string {
	return fmt.Sprintf("v%d|%s|%016x|%s|%016x|%016x",
		cacheSchema, k.Framework, k.Variant, k.Workload, k.Scale, k.Cluster)
}

// fileName is the key's on-disk entry name: a digest of id, so arbitrary
// framework/workload names never need path escaping.
func (k simKey) fileName() string {
	return fmt.Sprintf("%016x.json", fnvhash.String(fnvhash.Offset64, k.id()))
}

// cacheEntry is one cached leaf summary: an untraced Result or a traced
// Report, per-rank detail already stripped.
type cacheEntry struct {
	res    workload.Result
	rep    framework.Report
	traced bool
}

// diskEntry is the persisted JSON form of a cacheEntry.
type diskEntry struct {
	Schema int               `json:"schema"`
	Key    string            `json:"key"`
	Result *workload.Result  `json:"result,omitempty"`
	Report *framework.Report `json:"report,omitempty"`
}

// CacheStats is a point-in-time counter snapshot of a Cache. Engines report
// per-call deltas (SweepStats); the counters themselves are cumulative over
// the Cache's lifetime.
type CacheStats struct {
	// Executed counts leaf simulations actually run.
	Executed int64
	// Shared counts simulations avoided by in-run baseline sharing: fan-out
	// destinations beyond the first for one untraced key.
	Shared int64
	// MemHits and DiskHits count simulations avoided by the in-memory and
	// persisted layers (a singleflight wait resolves as a MemHit).
	MemHits  int64
	DiskHits int64
}

// sub returns the counter delta since an earlier snapshot.
func (s CacheStats) sub(before CacheStats) CacheStats {
	return CacheStats{
		Executed: s.Executed - before.Executed,
		Shared:   s.Shared - before.Shared,
		MemHits:  s.MemHits - before.MemHits,
		DiskHits: s.DiskHits - before.DiskHits,
	}
}

// Hits is the total count of simulations answered from a cache layer.
func (s CacheStats) Hits() int64 { return s.MemHits + s.DiskHits }

// Cache is a content-addressed store of leaf-simulation summaries: an
// in-memory map with singleflight dedup of concurrent identical runs, plus
// an optional persisted layer under dir. The zero dir means memory-only.
// A Cache is safe for concurrent use and is only ever a performance layer:
// every hit returns a summary byte-identical to re-running the simulation.
type Cache struct {
	dir string

	mu     sync.Mutex
	mem    map[simKey]cacheEntry
	flight map[simKey]chan struct{}

	executed atomic.Int64
	shared   atomic.Int64
	memHits  atomic.Int64
	diskHits atomic.Int64
}

// NewCache returns a cache persisting under dir; dir == "" is memory-only.
// An unusable directory degrades to memory-only rather than failing: the
// cache is an accelerator, not a dependency.
func NewCache(dir string) *Cache {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			dir = ""
		}
	}
	return &Cache{
		dir:    dir,
		mem:    make(map[simKey]cacheEntry),
		flight: make(map[simKey]chan struct{}),
	}
}

// DefaultCacheDir returns the conventional persisted-cache location
// (~/.cache/iotaxo or the platform equivalent), or "" when the user cache
// directory is unknown (callers then get a memory-only cache).
func DefaultCacheDir() string {
	base, err := os.UserCacheDir()
	if err != nil {
		return ""
	}
	return filepath.Join(base, "iotaxo")
}

// Dir reports the persisted layer's directory ("" when memory-only).
func (c *Cache) Dir() string { return c.dir }

// Stats snapshots the cumulative counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		Executed: c.executed.Load(),
		Shared:   c.shared.Load(),
		MemHits:  c.memHits.Load(),
		DiskHits: c.diskHits.Load(),
	}
}

// untraced returns the cached baseline summary for k, running the
// simulation on a miss. The summary's per-rank detail is stripped: cached
// and fresh results must be indistinguishable to sweep consumers, and the
// sweeps only fold whole-job aggregates.
func (c *Cache) untraced(k simKey, run func() workload.Result) workload.Result {
	e, _ := c.do(k, func() (cacheEntry, error) {
		res := run()
		res.PerRank = nil
		return cacheEntry{res: res}, nil
	})
	return e.res
}

// traced returns the cached traced-run summary for k, running the
// simulation on a miss. Errors are returned to the caller and never cached.
func (c *Cache) traced(k simKey, run func() (framework.Report, error)) (framework.Report, error) {
	e, err := c.do(k, func() (cacheEntry, error) {
		rep, err := run()
		if err != nil {
			return cacheEntry{}, err
		}
		rep.Result.PerRank = nil
		return cacheEntry{rep: rep, traced: true}, nil
	})
	return e.rep, err
}

// do is the memoization core: memory hit, else singleflight-coordinated
// disk load or execution. Concurrent callers with the same key wait for the
// first and then re-check memory, so one key never simulates twice at once.
func (c *Cache) do(k simKey, run func() (cacheEntry, error)) (cacheEntry, error) {
	for {
		c.mu.Lock()
		if e, ok := c.mem[k]; ok {
			c.mu.Unlock()
			c.memHits.Add(1)
			return e, nil
		}
		if ch, ok := c.flight[k]; ok {
			c.mu.Unlock()
			<-ch
			// The flight either populated memory (hit on the next pass) or
			// failed (this caller takes over the flight and re-runs).
			continue
		}
		ch := make(chan struct{})
		c.flight[k] = ch
		c.mu.Unlock()

		e, err := c.fill(k, run)

		c.mu.Lock()
		delete(c.flight, k)
		c.mu.Unlock()
		close(ch)
		return e, err
	}
}

// fill resolves a missed key while holding its flight: persisted layer
// first, execution otherwise.
func (c *Cache) fill(k simKey, run func() (cacheEntry, error)) (cacheEntry, error) {
	if e, ok := c.loadDisk(k); ok {
		c.diskHits.Add(1)
		c.storeMem(k, e)
		return e, nil
	}
	c.executed.Add(1)
	e, err := run()
	if err != nil {
		return e, err
	}
	c.storeMem(k, e)
	c.storeDisk(k, e)
	return e, nil
}

func (c *Cache) storeMem(k simKey, e cacheEntry) {
	c.mu.Lock()
	c.mem[k] = e
	c.mu.Unlock()
}

// loadDisk reads k's persisted entry. Any failure — missing file, corrupt
// JSON, stale schema, key mismatch after a filename-hash collision — is a
// silent miss.
func (c *Cache) loadDisk(k simKey) (cacheEntry, bool) {
	var e cacheEntry
	if c.dir == "" {
		return e, false
	}
	b, err := os.ReadFile(filepath.Join(c.dir, k.fileName()))
	if err != nil {
		return e, false
	}
	var d diskEntry
	if json.Unmarshal(b, &d) != nil {
		return e, false
	}
	if d.Schema != cacheSchema || d.Key != k.id() {
		return e, false
	}
	switch {
	case k.Framework == "" && d.Result != nil:
		e.res = *d.Result
		return e, true
	case k.Framework != "" && d.Report != nil:
		e.rep = *d.Report
		e.traced = true
		return e, true
	}
	return e, false
}

// storeDisk persists k's entry via temp-file + rename, so a concurrent
// reader never observes a torn write. Failures are ignored: the memory
// layer already holds the result.
func (c *Cache) storeDisk(k simKey, e cacheEntry) {
	if c.dir == "" {
		return
	}
	d := diskEntry{Schema: cacheSchema, Key: k.id()}
	if e.traced {
		d.Report = &e.rep
	} else {
		d.Result = &e.res
	}
	b, err := json.Marshal(d)
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(c.dir, ".tmp-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	_, werr := tmp.Write(b)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(name)
		return
	}
	if os.Rename(name, filepath.Join(c.dir, k.fileName())) != nil {
		os.Remove(name)
	}
}

// SweepStats is one engine call's performance accounting: the cache-counter
// delta over the call plus the scheduler's concurrency envelope. It lives
// beside the measurement results — never inside Format/CSV output, which
// must stay byte-identical between cold and warm runs — and is rendered by
// the CLIs as a stderr footer.
type SweepStats struct {
	CacheStats
	// PeakConcurrency is the scheduler's high-water mark of simultaneously
	// live simulations (process-wide since the last reset).
	PeakConcurrency int
	// PoolSize is the scheduler's concurrency bound.
	PoolSize int
	// PeakHeapBytes is the process heap high-water (HeapAlloc) sampled by
	// the scheduler while this call's tasks ran.
	PeakHeapBytes uint64
	// MemBudget is the pool's memory budget in bytes (0 = unlimited).
	MemBudget int64
}

// Footer renders the one-line accounting summary the CLIs print to stderr.
func (s SweepStats) Footer() string {
	f := fmt.Sprintf("# simulations: %d executed, %d shared baselines, %d cached (%d memory, %d disk); scheduler peak %d/%d; heap peak %s",
		s.Executed, s.Shared, s.Hits(), s.MemHits, s.DiskHits, s.PeakConcurrency, s.PoolSize, fmtBytes(s.PeakHeapBytes))
	if s.MemBudget > 0 {
		f += fmt.Sprintf(" of %s budget", fmtBytes(uint64(s.MemBudget)))
	}
	return f
}

// fmtBytes renders a byte count with a binary-unit suffix for the footer.
func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%d B", b)
}

// sweepStatsSince folds the cache delta since before with the scheduler
// envelope: the per-engine-call accounting constructor.
func sweepStatsSince(c *Cache, before CacheStats) SweepStats {
	return SweepStats{
		CacheStats:      c.Stats().sub(before),
		PeakConcurrency: sched.peakConcurrency(),
		PoolSize:        sched.size(),
		PeakHeapBytes:   sched.peakHeapBytes(),
		MemBudget:       sched.memBudgetBytes(),
	}
}
