package harness

import (
	"strings"
	"testing"

	"iotaxo/internal/framework"
	"iotaxo/internal/workload"
)

func TestServerLadder(t *testing.T) {
	o := Options{MaxServers: 16}
	want := []int{1, 2, 4, 8, 16}
	got := o.serverLadder()
	if len(got) != len(want) {
		t.Fatalf("ladder = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ladder = %v, want %v", got, want)
		}
	}
	// A top rung off the doubling grid — the paper testbed's 12 servers —
	// is still included.
	o.MaxServers = 12
	got = o.serverLadder()
	if got[len(got)-1] != 12 || got[len(got)-2] != 8 {
		t.Fatalf("off-grid ladder = %v", got)
	}
	// Zero defaults.
	if top := (Options{}).serverLadder(); top[len(top)-1] != DefaultMaxServers {
		t.Fatalf("default ladder top = %d", top[len(top)-1])
	}
}

func TestResolveServerOptions(t *testing.T) {
	o, err := ResolveServerOptions(ServerOptions(), 8, 16, 2, "")
	if err != nil {
		t.Fatal(err)
	}
	if o.MaxServers != 8 || o.Ranks != 16 || o.RanksPerNode != 2 {
		t.Fatalf("resolved %+v", o)
	}
	if len(o.Workloads) != 1 || o.Workloads[0].Name() != workload.N1Strided.String() {
		t.Fatalf("default workload axis = %v", o.Workloads)
	}
	if o, err = ResolveServerOptions(ServerOptions(), 0, 0, 0, "all"); err != nil || o.Workloads != nil {
		t.Fatalf("all: %v %v", o.Workloads, err)
	}
	if _, err = ResolveServerOptions(ServerOptions(), 0, 0, 0, "nosuch"); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err = ResolveServerOptions(ServerOptions(), 0, 0, -1, ""); err == nil {
		t.Fatal("negative ranks-per-node accepted")
	}
}

func TestServerSweepShape(t *testing.T) {
	o := ServerSmokeOptions()
	res, err := ServerSweep(framework.MustLookup("LANL-Trace"), workload.PatternWorkload(workload.N1Strided), o)
	if err != nil {
		t.Fatal(err)
	}
	ladder := o.serverLadder()
	if len(res.Points) != len(ladder) {
		t.Fatalf("points = %d, want %d", len(res.Points), len(ladder))
	}
	for i, p := range res.Points {
		if p.Servers != ladder[i] {
			t.Fatalf("point %d servers = %d, want %d", i, p.Servers, ladder[i])
		}
		if p.UntracedMBps <= 0 || p.TracedMBps <= 0 {
			t.Fatalf("no bandwidth at %d servers", p.Servers)
		}
	}
	// More object servers must raise untraced bandwidth across the ladder
	// (the sweep's reason to exist: the file system stops being the
	// bottleneck, exposing tracer overhead).
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if last.UntracedMBps <= first.UntracedMBps {
		t.Fatalf("untraced bandwidth did not scale with servers: %v -> %v",
			first.UntracedMBps, last.UntracedMBps)
	}
	out := res.Format()
	for _, want := range []string{"servers", "untraced MB/s", "elapsed ovh %", "LANL-Trace", "8 ranks"} {
		if !strings.Contains(out, want) {
			t.Fatalf("format missing %q:\n%s", want, out)
		}
	}
	csv := res.CSV()
	if !strings.HasPrefix(csv, "servers,") || strings.Count(csv, "\n") != len(ladder)+1 {
		t.Fatalf("csv:\n%s", csv)
	}
}

func TestServerMatrixCoversRegistry(t *testing.T) {
	o := ServerSmokeOptions()
	o.MaxServers = 2
	o.Workloads = []workload.Workload{workload.PatternWorkload(workload.N1Strided)}
	m, err := ServerMatrixSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Series) != len(framework.Names()) {
		t.Fatalf("series = %d, want %d", len(m.Series), len(framework.Names()))
	}
	for i, name := range framework.Names() {
		if m.Series[i].Framework != name {
			t.Fatalf("series %d framework = %q, want %q", i, m.Series[i].Framework, name)
		}
	}
	out := m.Format()
	if !strings.Contains(out, "server-count matrix") || strings.Count(out, "# servers:") != len(m.Series) {
		t.Fatalf("matrix format:\n%s", out)
	}
}

// TestServerSweepDeterministic runs the same server sweep twice and requires
// byte-identical rendering; rungs run concurrently on the shared scheduler,
// so each must be an independently seeded simulation with no shared state.
func TestServerSweepDeterministic(t *testing.T) {
	o := ServerSmokeOptions()
	run := func() string {
		res, err := ServerSweep(framework.MustLookup("LANL-Trace"), workload.PatternWorkload(workload.N1Strided), o)
		if err != nil {
			t.Fatal(err)
		}
		return res.Format() + res.CSV()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("server sweep not deterministic:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}

// TestPlacementSweepDeterministic is the RanksPerNode counterpart: a 4-ranks
// -per-node scaling sweep must be byte-identical across runs, and its output
// must carry the placement label.
func TestPlacementSweepDeterministic(t *testing.T) {
	o := ScaleSmokeOptions()
	o.RanksPerNode = 4
	run := func() string {
		res, err := ScaleSweep(framework.MustLookup("Tracefs"), workload.PatternWorkload(workload.N1Strided), o)
		if err != nil {
			t.Fatal(err)
		}
		return res.Format() + res.CSV()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("placement sweep not deterministic:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
	if !strings.Contains(a, "4 ranks/node") {
		t.Fatalf("placement label missing:\n%s", a)
	}
}

// TestPlacementChangesContention sanity-checks the placement axis: packing 4
// ranks onto each node makes them share one NIC and kernel, which must not
// produce the same testbed as one rank per node.
func TestPlacementChangesContention(t *testing.T) {
	o := ScaleSmokeOptions()
	o.Ranks = 16
	base := o.runUntracedAt(workload.PatternWorkload(workload.N1Strided), o.scaleRung(16))
	o.RanksPerNode = 4
	packed := o.runUntracedAt(workload.PatternWorkload(workload.N1Strided), o.scaleRung(16))
	if base.Ranks != 16 || packed.Ranks != 16 {
		t.Fatalf("ranks: base %d, packed %d", base.Ranks, packed.Ranks)
	}
	if base.Elapsed == packed.Elapsed {
		t.Fatal("4 ranks/node produced an identical schedule to 1 rank/node")
	}
}
