package harness

import (
	"reflect"
	"strings"
	"testing"

	"iotaxo/internal/framework"
	"iotaxo/internal/workload"
)

// The harness tests assert the *shape* claims of the paper's evaluation at
// a scaled-down data volume: who wins, by roughly what factor, and where
// the curves bend. Absolute MB/s values are simulation artifacts.

func TestFigure2Shape(t *testing.T) {
	o := QuickOptions()
	fig := Figure2(o)
	if len(fig.Points) != len(o.BlockSizes) {
		t.Fatalf("points = %d", len(fig.Points))
	}
	// Untraced bandwidth grows with block size.
	first, last := fig.Points[0], fig.Points[len(fig.Points)-1]
	if last.UntracedMBps <= first.UntracedMBps {
		t.Fatalf("bandwidth did not grow: %v -> %v", first.UntracedMBps, last.UntracedMBps)
	}
	// Tracing costs bandwidth at small blocks...
	if first.BandwidthOvhFrac < 0.2 {
		t.Fatalf("64KB bandwidth overhead %.1f%%, want tens of %%", first.BandwidthOvhFrac*100)
	}
	// ...and much less at large blocks.
	if last.BandwidthOvhFrac > 0.15 {
		t.Fatalf("8MB bandwidth overhead %.1f%%, want <15%%", last.BandwidthOvhFrac*100)
	}
	if first.BandwidthOvhFrac <= last.BandwidthOvhFrac {
		t.Fatal("overhead did not fall with block size")
	}
}

func TestFigure3And4SameShape(t *testing.T) {
	o := QuickOptions()
	for _, fig := range []FigureResult{Figure3(o), Figure4(o)} {
		first := fig.Points[0]
		last := fig.Points[len(fig.Points)-1]
		if first.BandwidthOvhFrac <= last.BandwidthOvhFrac {
			t.Fatalf("%s: overhead flat or rising: %.2f -> %.2f",
				fig.ID, first.BandwidthOvhFrac, last.BandwidthOvhFrac)
		}
		if first.TracedMBps >= first.UntracedMBps {
			t.Fatalf("%s: tracing did not cost bandwidth at 64KB", fig.ID)
		}
	}
}

func TestInTextOverheadBands(t *testing.T) {
	o := QuickOptions()
	res := InTextOverheads(o)
	if len(res.Cells) != 6 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	for _, c := range res.Cells {
		switch c.Block {
		case 64 << 10:
			// Paper: 51.3-68.6%. Accept a generous band around it.
			if c.BwOvhFrac < 0.25 || c.BwOvhFrac > 0.95 {
				t.Errorf("%v @64KB: %.1f%%, want 25-95%%", c.Pattern, c.BwOvhFrac*100)
			}
		case 8192 << 10:
			// Paper: 0.6-6.1%.
			if c.BwOvhFrac < -0.05 || c.BwOvhFrac > 0.15 {
				t.Errorf("%v @8MB: %.1f%%, want <15%%", c.Pattern, c.BwOvhFrac*100)
			}
		}
	}
	out := res.Format()
	if !strings.Contains(out, "paper %") || !strings.Contains(out, "N-1 strided") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestElapsedRangeBand(t *testing.T) {
	o := QuickOptions()
	res := ElapsedRange(o)
	if res.Min >= res.Max {
		t.Fatalf("range degenerate: %v..%v", res.Min, res.Max)
	}
	// Paper: 24%-222%; variability must be large and block-size-driven.
	if res.Max < 0.5 {
		t.Fatalf("max elapsed overhead %.0f%%, want >50%%", res.Max*100)
	}
	if res.Min > 0.5 {
		t.Fatalf("min elapsed overhead %.0f%%, want <50%%", res.Min*100)
	}
	if !strings.Contains(res.Format(), "24% - 222%") {
		t.Fatal("format missing paper reference")
	}
}

func TestTracefsExperimentBands(t *testing.T) {
	o := QuickOptions()
	res := TracefsExperiment(o)
	rows := map[string]TracefsRow{}
	for _, r := range res.Rows {
		rows[r.Name] = r
	}
	plain := rows["trace all ops (buffered)"]
	// Paper bound for plain full tracing: <=12.4%.
	if plain.ElapsedOvh <= 0 || plain.ElapsedOvh > 0.124 {
		t.Fatalf("plain tracing overhead %.1f%%, want (0, 12.4%%]", plain.ElapsedOvh*100)
	}
	// Feature costs escalate.
	if rows["+checksumming"].ElapsedOvh < plain.ElapsedOvh {
		t.Fatal("checksumming did not add cost")
	}
	if rows["+CBC encryption (full)"].ElapsedOvh <= rows["+checksumming"].ElapsedOvh {
		t.Fatal("encryption did not add cost over checksumming")
	}
	// Granularity filtering reduces output volume.
	if rows["granularity: large writes only"].OutputBytes >= plain.OutputBytes {
		t.Fatal("filter did not shrink output")
	}
	// Compression shrinks output.
	if rows["+compression"].OutputBytes >= plain.OutputBytes {
		t.Fatal("compression did not shrink output")
	}
}

func TestParallelTraceFrontier(t *testing.T) {
	o := QuickOptions()
	res := ParallelTraceExperiment(o)
	if len(res.Rows) < 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Overhead rises with sampling; fidelity error falls.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].OverheadFrac <= res.Rows[i-1].OverheadFrac {
			t.Fatalf("overhead not increasing at row %d", i)
		}
	}
	zero := res.Rows[0]
	fullest := res.Rows[len(res.Rows)-1]
	if zero.OverheadFrac > 0.10 {
		t.Fatalf("zero-sampling overhead %.1f%%, want ~0%%", zero.OverheadFrac*100)
	}
	if fullest.FidelityErr >= zero.FidelityErr {
		t.Fatal("dependencies did not improve fidelity")
	}
	// Paper: fidelity as low as 6%.
	if res.BestFidelity() > 0.12 {
		t.Fatalf("best fidelity error %.1f%%, want <=12%%", res.BestFidelity()*100)
	}
}

func TestFigure1OutputsLookRight(t *testing.T) {
	res := Figure1(QuickOptions())
	for _, want := range []string{"SYS_pwrite", "MPI_File_open", "SYS_statfs64"} {
		if !strings.Contains(res.Raw, want) {
			t.Errorf("raw output missing %q:\n%s", want, res.Raw)
		}
	}
	for _, want := range []string{"# Barrier before", "Entered barrier at", "Exited barrier at"} {
		if !strings.Contains(res.Timing, want) {
			t.Errorf("timing output missing %q", want)
		}
	}
	for _, want := range []string{"SUMMARY COUNT OF TRACED CALL(S)", "MPI_Barrier", "SYS_open"} {
		if !strings.Contains(res.Summary, want) {
			t.Errorf("summary missing %q", want)
		}
	}
	if !strings.Contains(res.CmdLine, `"-size" "32768"`) {
		t.Errorf("command line: %s", res.CmdLine)
	}
}

// matrixOptions is a minimal configuration for registry-wide matrix tests:
// one block size keeps every framework x every workload affordable.
func matrixOptions() Options {
	return MatrixSmokeOptions()
}

func TestMatrixSweepCoversEveryRegisteredFrameworkAndWorkload(t *testing.T) {
	m, err := MatrixSweep(matrixOptions())
	if err != nil {
		t.Fatal(err)
	}
	names := m.FrameworkNames()
	if !reflect.DeepEqual(names, framework.Names()) {
		t.Fatalf("matrix rows %v != registry %v", names, framework.Names())
	}
	if !reflect.DeepEqual(m.WorkloadNames(), workload.Names()) {
		t.Fatalf("matrix columns %v != registry %v", m.WorkloadNames(), workload.Names())
	}
	if len(m.Workloads) < 7 {
		t.Fatalf("workload axis has %d entries, want >= 7 (3 patterns + 4 scenarios)", len(m.Workloads))
	}
	for _, want := range []string{"LANL-Trace", "Tracefs", "//TRACE", "Multi-Layer Trace Analysis", "PathTrace (X-Trace style)"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("registry missing %q (have %v)", want, names)
		}
	}
	if len(m.Cells) != len(names)*len(m.Workloads) {
		t.Fatalf("cells = %d, want %d", len(m.Cells), len(names)*len(m.Workloads))
	}
	for _, cell := range m.Cells {
		if len(cell.Points) != 1 {
			t.Fatalf("cell %s/%s has %d points", cell.Framework, cell.Workload, len(cell.Points))
		}
		p := cell.Points[0]
		if p.TraceEvents == 0 {
			t.Errorf("%s on %s traced no events", cell.Framework, cell.Workload)
		}
		if p.Runs < 1 {
			t.Errorf("%s on %s reports %d runs", cell.Framework, cell.Workload, p.Runs)
		}
	}
}

// TestMatrixSweepDeterministic runs the full registry x registry matrix
// twice and requires byte-identical rendering: cells run concurrently, so
// each must be an independently seeded simulation with no cross-cell
// state.
func TestMatrixSweepDeterministic(t *testing.T) {
	o := matrixOptions()
	run := func() string {
		m, err := MatrixSweepOf(o, framework.All()...)
		if err != nil {
			t.Fatal(err)
		}
		return m.Format()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("matrix output not deterministic:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}

// TestMatrixEmptyEnvelope pins the sentinel-leak fix: a sweep with no
// block sizes must render a zero envelope and leave classifications
// unmeasured, not leak the 1e9/-1e9 accumulator seeds.
func TestMatrixEmptyEnvelope(t *testing.T) {
	if min, max := (MatrixCell{}).ElapsedOvhRange(); min != 0 || max != 0 {
		t.Fatalf("empty cell envelope = %v..%v, want 0..0", min, max)
	}
	o := matrixOptions()
	o.BlockSizes = nil
	m, err := MatrixSweepOf(o, framework.MustLookup("Tracefs"))
	if err != nil {
		t.Fatal(err)
	}
	out := m.Format()
	if strings.Contains(out, "100000000000") {
		t.Fatalf("sentinel leaked into matrix rendering:\n%s", out)
	}
	if !strings.Contains(out, "0.0 - 0.0") {
		t.Fatalf("empty cells should render a zero envelope:\n%s", out)
	}
	// With zero points the classification must keep its registered (paper)
	// overhead report, not claim a fresh measurement.
	if c := m.Classifications()[0]; c.ElapsedOverhead.Description == "measured, this repository" {
		t.Fatalf("zero-point sweep claimed a measured overhead: %+v", c.ElapsedOverhead)
	}
}

func TestMatrixClassificationsFoldMeasurements(t *testing.T) {
	m, err := MatrixSweep(matrixOptions())
	if err != nil {
		t.Fatal(err)
	}
	cs := m.Classifications()
	if len(cs) != len(m.FrameworkNames()) {
		t.Fatalf("classifications = %d", len(cs))
	}
	sawReplay := false
	for _, c := range cs {
		if !c.ElapsedOverhead.Measured {
			t.Errorf("%s: overhead not folded in", c.Name)
		}
		if c.ElapsedOverhead.Description != "measured, this repository" {
			t.Errorf("%s: description %q", c.Name, c.ElapsedOverhead.Description)
		}
		if c.Name == "//TRACE" {
			if !c.ReplayFidelity.Supported {
				t.Error("//TRACE replay fidelity not folded in")
			}
			sawReplay = true
		}
	}
	if !sawReplay {
		t.Fatal("no //TRACE row in classifications")
	}
	table := m.RenderComparison()
	for _, want := range []string{"LANL-Trace", "Tracefs", "//TRACE", "Multi-Layer", "PathTrace", "measured, this repository"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
	if !strings.Contains(m.Format(), "framework x workload") {
		t.Fatalf("matrix format:\n%s", m.Format())
	}
}

func TestGenericSweepMatchesFigure2(t *testing.T) {
	// Figure 2 is a LANL-Trace instance of the generic sweep: the same
	// framework/pattern through Sweep must produce identical points.
	o := QuickOptions()
	o.BlockSizes = o.BlockSizes[:2]
	fig := Figure2(o)
	sw, err := Sweep(framework.MustLookup("LANL-Trace"), workload.PatternWorkload(workload.N1Strided), o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fig.Points, sw.Points) {
		t.Fatalf("generic sweep diverged from Figure2:\n%+v\nvs\n%+v", fig.Points, sw.Points)
	}
}

func TestMatrixSweepOfSingleFramework(t *testing.T) {
	o := matrixOptions()
	fw := framework.MustLookup("Tracefs")
	m, err := MatrixSweepOf(o, fw)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.FrameworkNames(); len(got) != 1 || got[0] != "Tracefs" {
		t.Fatalf("names = %v", got)
	}
	c := m.Classifications()[0]
	if !c.ElapsedOverhead.Measured {
		t.Fatal("single-framework sweep did not fold overhead")
	}
}

func TestFigureCSV(t *testing.T) {
	o := QuickOptions()
	o.BlockSizes = o.BlockSizes[:1]
	csv := Figure2(o).CSV()
	if !strings.HasPrefix(csv, "block_kb,") || strings.Count(csv, "\n") != 2 {
		t.Fatalf("csv:\n%s", csv)
	}
}

func TestScaleForDerivesNObj(t *testing.T) {
	o := DefaultOptions()
	p := o.scaleFor(64 << 10).MPIIOParams(workload.N1Strided)
	if p.NObj != int(o.PerRankBytes/(64<<10)) {
		t.Fatalf("nobj = %d", p.NObj)
	}
	p = o.scaleFor(o.PerRankBytes * 2).MPIIOParams(workload.NToN)
	if p.NObj != 1 {
		t.Fatalf("nobj floor = %d", p.NObj)
	}
}

func TestOptionsPresets(t *testing.T) {
	if FullOptions().PerRankBytes != 100<<30/32 {
		t.Fatal("full options not paper scale")
	}
	if len(DefaultOptions().BlockSizes) != 8 {
		t.Fatal("default sweep should cover 8 block sizes")
	}
}
