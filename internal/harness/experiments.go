package harness

import (
	"fmt"
	"strings"
	"sync"

	"iotaxo/internal/anonymize"
	"iotaxo/internal/cluster"
	"iotaxo/internal/framework"
	"iotaxo/internal/lanltrace"
	"iotaxo/internal/mpi"
	"iotaxo/internal/partrace"
	"iotaxo/internal/sim"
	"iotaxo/internal/tracefs"
	"iotaxo/internal/workload"
)

// --- Figure 1: the three LANL-Trace outputs ---

// Figure1Outputs holds sample text of the three output types.
type Figure1Outputs struct {
	Raw        string // strace-style raw trace (first lines)
	Timing     string // aggregate barrier timing
	Summary    string // call summary
	CmdLine    string
	RawRecords int
}

// Figure1 regenerates the paper's Figure 1 sample outputs with the same
// benchmark parameterization shown there (-type 1 -strided 1 -size 32768
// -nobj 1).
func Figure1(o Options) Figure1Outputs {
	cfg := cluster.Default()
	cfg.ComputeNodes = 8
	cfg.Seed = o.Seed
	c := cluster.New(cfg)
	spec := workload.Params{
		Pattern:   workload.N1Strided,
		BlockSize: 32768,
		NObj:      1,
		Path:      "/pfs/mpi_io_test.out",
	}.Spec()
	fw := lanltrace.New(lanltrace.DefaultConfig())
	rep := fw.Run(c.World, spec.CommandLine, func(p *sim.Proc, r *mpi.Rank) {
		spec.Program(p, r, nil)
	})
	raw := rep.RawTraceText(0)
	// Clip the raw sample like the figure does.
	lines := strings.SplitN(raw, "\n", 21)
	if len(lines) > 20 {
		lines = lines[:20]
		lines = append(lines, "...")
	}
	return Figure1Outputs{
		Raw:        strings.Join(lines, "\n") + "\n",
		Timing:     rep.AggregateTimingText(),
		Summary:    rep.CallSummaryText(),
		CmdLine:    spec.CommandLine,
		RawRecords: rep.PerRank[0].Len(),
	}
}

// --- In-text overhead table (Section 4.1.2) ---

// OverheadCell is one pattern x blocksize measurement.
type OverheadCell struct {
	Pattern   workload.Pattern
	Block     int64
	BwOvhFrac float64
}

// InTextResult reproduces the in-text table: bandwidth overheads for the
// three patterns at 64 KB and 8192 KB.
type InTextResult struct {
	Cells []OverheadCell
}

// InTextOverheads measures the six numbers quoted in Section 4.1.2 (paper:
// 51.3/64.7/68.6 % at 64 KB; 5.5/6.1/0.6 % at 8192 KB). Each cell's runs
// stage through the memoizing task set — their keys coincide with the
// figure sweeps', so with a shared Options.Cache the cells come for free
// after any figure has run.
func InTextOverheads(o Options) InTextResult {
	patterns := []workload.Pattern{workload.N1Strided, workload.N1NonStrided, workload.NToN}
	blocks := []int64{64 << 10, 8192 << 10}
	fw := o.lanlFramework()
	n := len(patterns) * len(blocks)
	res := InTextResult{Cells: make([]OverheadCell, n)}
	uns := make([]workload.Result, n)
	reps := make([]framework.Report, n)
	errs := make([]error, n)
	ts := newTaskSet(o.cacheOrEphemeral())
	for pi, pattern := range patterns {
		for bi, block := range blocks {
			idx := pi*len(blocks) + bi
			wl := workload.PatternWorkload(pattern)
			sc := o.scaleFor(block)
			ts.untraced(o, wl, sc, &uns[idx])
			ts.traced(o, fw, wl, sc,
				fmt.Sprintf("%s, %s, block %d", fw.Name(), wl.Name(), block),
				&reps[idx], &errs[idx])
		}
	}
	ts.run()
	for pi, pattern := range patterns {
		for bi, block := range blocks {
			idx := pi*len(blocks) + bi
			if errs[idx] != nil {
				panic(errs[idx])
			}
			frac := 0.0
			if uns[idx].BandwidthBps() > 0 {
				frac = (uns[idx].BandwidthBps() - reps[idx].Result.BandwidthBps()) / uns[idx].BandwidthBps()
			}
			res.Cells[idx] = OverheadCell{Pattern: pattern, Block: block, BwOvhFrac: frac}
		}
	}
	return res
}

// Format renders the in-text table with the paper's values alongside.
func (r InTextResult) Format() string {
	paper := map[string]map[int64]float64{
		"N-1 strided":     {64 << 10: 0.513, 8192 << 10: 0.055},
		"N-1 non-strided": {64 << 10: 0.647, 8192 << 10: 0.061},
		"N-N":             {64 << 10: 0.686, 8192 << 10: 0.006},
	}
	var b strings.Builder
	b.WriteString("# In-text bandwidth overhead table (Section 4.1.2)\n")
	fmt.Fprintf(&b, "%-18s %10s %14s %14s\n", "pattern", "block(KB)", "measured %", "paper %")
	for _, c := range r.Cells {
		want := paper[c.Pattern.String()][c.Block]
		fmt.Fprintf(&b, "%-18s %10d %14.1f %14.1f\n",
			c.Pattern, c.Block>>10, c.BwOvhFrac*100, want*100)
	}
	return b.String()
}

// --- Elapsed-time overhead range (Section 4.1.1) ---

// ElapsedRangeResult is the observed elapsed-overhead envelope.
type ElapsedRangeResult struct {
	Min, Max  float64
	Points    []BandwidthPoint
	Workloads []string
}

// ElapsedRange sweeps all patterns and block sizes, reporting the
// elapsed-time overhead range (paper: 24% to 222%). With no measured
// points the envelope is zero, never a sentinel.
func ElapsedRange(o Options) ElapsedRangeResult {
	var res ElapsedRangeResult
	figs := make([]FigureResult, 3)
	var wg sync.WaitGroup
	for i, fn := range []func(Options) FigureResult{Figure2, Figure3, Figure4} {
		i, fn := i, fn
		wg.Add(1)
		go func() {
			defer wg.Done()
			figs[i] = fn(o)
		}()
	}
	wg.Wait()
	for _, fig := range figs {
		for _, p := range fig.Points {
			res.Points = append(res.Points, p)
			res.Workloads = append(res.Workloads, fig.Workload)
		}
	}
	res.Min, res.Max = rangeOver(len(res.Points), func(i int) float64 { return res.Points[i].ElapsedOvhFrac })
	return res
}

// Format renders the range against the paper's.
func (r ElapsedRangeResult) Format() string {
	return fmt.Sprintf("# Elapsed-time overhead range (Section 4.1.1)\nmeasured: %.0f%% - %.0f%%\npaper:    24%% - 222%%\n",
		r.Min*100, r.Max*100)
}

// --- Tracefs experiment (Section 4.2) ---

// TracefsRow is one feature configuration's measurement.
type TracefsRow struct {
	Name        string
	ElapsedOvh  float64
	OutputBytes int64
	Events      int64
}

// TracefsResult is the feature ablation table.
type TracefsResult struct {
	Rows []TracefsRow
}

// tracefsVariants is the escalating feature ladder of Section 4.2.
func tracefsVariants() []struct {
	name string
	cfg  tracefs.Config
} {
	cfgF := tracefs.DefaultConfig()
	cfgF.Filter = tracefs.MustCompileFilter("op == write && bytes >= 4096")

	cfgU := tracefs.DefaultConfig()
	cfgU.Buffer = 1

	cfgC := tracefs.DefaultConfig()
	cfgC.Checksum = true

	cfgZ := tracefs.DefaultConfig()
	cfgZ.Checksum = true
	cfgZ.Compress = true

	cfgE := tracefs.DefaultConfig()
	cfgE.Checksum = true
	cfgE.Compress = true
	cfgE.Encrypt = true
	cfgE.Key = []byte("0123456789abcdef")
	spec, _ := anonymize.ParseSpec("path,uid,gid")
	cfgE.EncryptSpec = spec

	return []struct {
		name string
		cfg  tracefs.Config
	}{
		{"trace all ops (buffered)", tracefs.DefaultConfig()},
		{"granularity: large writes only", cfgF},
		{"unbuffered", cfgU},
		{"+checksumming", cfgC},
		{"+compression", cfgZ},
		{"+CBC encryption (full)", cfgE},
	}
}

// TracefsExperiment measures elapsed overhead for escalating feature sets
// (paper bound: <=12.4% for full tracing of an I/O-intensive workload, with
// "additional overhead for advanced features such as encryption and
// checksum calculation"). Each configuration runs through the registry's
// framework adapter: a Tracefs layer stacked over every compute node's
// parallel-file-system mount, observing the small-block N-1 strided
// workload — the I/O-intensive end of the sweep.
func TracefsExperiment(o Options) TracefsResult {
	const block = 64 << 10
	wl := workload.PatternWorkload(workload.N1Strided)
	// The baseline is a leaf simulation like any other: it takes a pool slot
	// so the scheduler's global bound holds even across concurrent callers,
	// and it stages through the memoizing task set (its key coincides with
	// the figure sweeps' 64 KB baseline). The variant runs below stay
	// uncached: every configured Tracefs instance shares one registered
	// Name with no variant fingerprint, so caching them would alias
	// distinct feature sets.
	var base workload.Result
	ts := newTaskSet(o.cacheOrEphemeral())
	ts.untraced(o, wl, o.scaleFor(block), &base)
	ts.run()

	variants := tracefsVariants()
	res := TracefsResult{Rows: make([]TracefsRow, len(variants)+1)}
	res.Rows[0] = TracefsRow{Name: "untraced (baseline)"}
	tasks := make([]func(), 0, len(variants))
	for i, v := range variants {
		i, v := i, v
		tasks = append(tasks, func() {
			rep, err := o.runTraced(tracefs.AsFramework(v.cfg), wl, block)
			if err != nil {
				panic(err)
			}
			res.Rows[i+1] = TracefsRow{
				Name:        v.name,
				ElapsedOvh:  float64(rep.TracingElapsed-base.Elapsed) / float64(base.Elapsed),
				OutputBytes: rep.TraceBytes,
				Events:      rep.TraceEvents,
			}
		})
	}
	sched.runAll(tasks)
	return res
}

// Format renders the ablation table.
func (r TracefsResult) Format() string {
	var b strings.Builder
	b.WriteString("# Tracefs elapsed-time overhead by feature set (Section 4.2; paper bound <=12.4%)\n")
	fmt.Fprintf(&b, "%-34s %12s %12s %10s\n", "configuration", "elapsed ovh %", "trace bytes", "events")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-34s %12.1f %12d %10d\n", row.Name, row.ElapsedOvh*100, row.OutputBytes, row.Events)
	}
	return b.String()
}

// MaxOverhead returns the worst overhead across rows.
func (r TracefsResult) MaxOverhead() float64 {
	m := 0.0
	for _, row := range r.Rows {
		if row.ElapsedOvh > m {
			m = row.ElapsedOvh
		}
	}
	return m
}

// --- //TRACE experiment (Section 4.3) ---

// PartraceRow is one sampling level's measurement.
type PartraceRow struct {
	SampledRanks int
	Runs         int
	OverheadFrac float64
	DepCount     int
	FidelityErr  float64
}

// PartraceResult is the fidelity/overhead frontier.
type PartraceResult struct {
	Rows []PartraceRow
}

// ParallelTraceExperiment sweeps the sampling knob, measuring total
// trace-generation overhead (paper: ~0% to 205%) and replay fidelity
// (paper: as low as 6%). Each sampling level runs through the registry's
// framework adapter, which folds the throttled discovery runs and the
// replay pass into the generic Report.
func ParallelTraceExperiment(o Options) PartraceResult {
	po := o
	if po.Ranks > 8 {
		po.Ranks = 8 // dependency probing is O(runs); keep the sweep tractable
	}
	spec := workload.Params{
		Pattern:      workload.N1Strided,
		BlockSize:    256 << 10,
		NObj:         8,
		Path:         "/pfs/app.out",
		BarrierEvery: 2,
	}.Spec()
	var un workload.Result
	sched.runAll([]func(){func() { un = spec.Run(po.newCluster().World) }})

	levels := []int{0, 1, 2, po.Ranks}
	res := PartraceResult{Rows: make([]PartraceRow, len(levels))}
	tasks := make([]func(), 0, len(levels))
	for i, sampled := range levels {
		i, sampled := i, sampled
		tasks = append(tasks, func() {
			// One sampling level is one leaf task: its discovery runs and
			// replay pass execute sequentially inside the session, so the
			// scheduler's bound still holds per live simulation.
			cfg := partrace.DefaultConfig()
			cfg.SampledRanks = sampled
			rep, err := partrace.AsFramework(cfg).Attach(po.newCluster()).Run(spec)
			if err != nil {
				panic(err)
			}
			ovh := 0.0
			if un.Elapsed > 0 {
				ovh = float64(rep.TracingElapsed-un.Elapsed) / float64(un.Elapsed)
			}
			res.Rows[i] = PartraceRow{
				SampledRanks: sampled,
				Runs:         rep.Runs,
				OverheadFrac: ovh,
				DepCount:     rep.Deps,
				FidelityErr:  rep.ReplayErr,
			}
		})
	}
	sched.runAll(tasks)
	return res
}

// Format renders the frontier.
func (r PartraceResult) Format() string {
	var b strings.Builder
	b.WriteString("# //TRACE sampling sweep (Section 4.3; paper: overhead ~0%-205%, fidelity as low as 6%)\n")
	fmt.Fprintf(&b, "%8s %6s %14s %8s %14s\n", "sampled", "runs", "overhead %", "deps", "fidelity err %")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8d %6d %14.0f %8d %14.1f\n",
			row.SampledRanks, row.Runs, row.OverheadFrac*100, row.DepCount, row.FidelityErr*100)
	}
	return b.String()
}

// BestFidelity returns the smallest fidelity error across rows (0 when no
// rows were measured).
func (r PartraceResult) BestFidelity() float64 {
	best := 0.0
	for i, row := range r.Rows {
		if i == 0 || row.FidelityErr < best {
			best = row.FidelityErr
		}
	}
	return best
}

// OverheadRange returns the overhead envelope (zero when no rows were
// measured, never a sentinel).
func (r PartraceResult) OverheadRange() (min, max float64) {
	return rangeOver(len(r.Rows), func(i int) float64 { return r.Rows[i].OverheadFrac })
}
