package harness

// This file is the in-repo perf trajectory: BenchSweep times the registry
// smoke matrix cold (empty cache) and warm (same cache, same call) and
// packages wall time, executed-vs-cached simulation counts, and the
// scheduler envelope as a JSON-ready snapshot. `tracebench -bench-json`
// writes it to BENCH_sweep.json, which is committed each PR so the
// engine's performance history lives in the repository next to the code
// that produced it.

import (
	"encoding/json"
	"fmt"
	"time"

	"iotaxo/internal/framework"
	"iotaxo/internal/workload"
)

// BenchPhase is one timed pass of the bench sweep.
type BenchPhase struct {
	WallMS   float64 `json:"wall_ms"`
	Executed int64   `json:"executed"`
	Shared   int64   `json:"shared"`
	MemHits  int64   `json:"mem_hits"`
	DiskHits int64   `json:"disk_hits"`
}

// BenchSnapshot is one BENCH_sweep.json record: the smoke matrix timed
// cold and warm against one in-memory cache.
type BenchSnapshot struct {
	// Schema is the cache schema the snapshot was produced under.
	Schema     int    `json:"schema"`
	Experiment string `json:"experiment"`
	// Frameworks/Workloads/Blocks describe the swept matrix shape.
	Frameworks int `json:"frameworks"`
	Workloads  int `json:"workloads"`
	Blocks     int `json:"blocks"`

	Cold BenchPhase `json:"cold"`
	Warm BenchPhase `json:"warm"`

	PoolSize        int `json:"pool_size"`
	PeakConcurrency int `json:"peak_concurrency"`
	// Identical reports that the cold and warm Format renderings matched
	// byte for byte — the memoization-correctness invariant.
	Identical bool `json:"identical"`
}

// JSON renders the snapshot, indented, newline-terminated.
func (s BenchSnapshot) JSON() string {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		panic(err) // plain struct of scalars; cannot fail
	}
	return string(b) + "\n"
}

// BenchSweep runs the full-registry smoke matrix twice against one fresh
// in-memory cache — cold, then warm — and reports the perf snapshot. An
// error means the sweep itself failed; a snapshot with Identical == false
// or Warm.Executed != 0 means the memoization layer is broken (the
// -bench-json CLI path treats both as fatal).
func BenchSweep() (BenchSnapshot, error) {
	o := MatrixSmokeOptions()
	o.Cache = NewCache("")

	start := time.Now()
	cold, err := MatrixSweep(o)
	coldWall := time.Since(start)
	if err != nil {
		return BenchSnapshot{}, fmt.Errorf("cold sweep: %w", err)
	}

	start = time.Now()
	warm, err := MatrixSweep(o)
	warmWall := time.Since(start)
	if err != nil {
		return BenchSnapshot{}, fmt.Errorf("warm sweep: %w", err)
	}

	phase := func(wall time.Duration, s SweepStats) BenchPhase {
		return BenchPhase{
			WallMS:   float64(wall.Microseconds()) / 1e3,
			Executed: s.Executed,
			Shared:   s.Shared,
			MemHits:  s.MemHits,
			DiskHits: s.DiskHits,
		}
	}
	return BenchSnapshot{
		Schema:          cacheSchema,
		Experiment:      "matrix-smoke",
		Frameworks:      len(cold.FrameworkNames()),
		Workloads:       len(cold.Workloads),
		Blocks:          len(o.BlockSizes),
		Cold:            phase(coldWall, cold.Stats),
		Warm:            phase(warmWall, warm.Stats),
		PoolSize:        warm.Stats.PoolSize,
		PeakConcurrency: cold.Stats.PeakConcurrency,
		Identical:       cold.Format() == warm.Format() && warm.Stats.Executed == 0,
	}, nil
}

// BenchLadderMinRanks is the ladder benchmark's base rung: where the
// fully-eventized engine's scaling story starts (the paper's own curves
// stop well below it).
const BenchLadderMinRanks = 512

// BenchRung is one rank-count rung of the ladder benchmark: one untraced
// plus one traced single-cell simulation, timed uncached.
type BenchRung struct {
	Ranks  int     `json:"ranks"`
	WallMS float64 `json:"wall_ms"`
	// PeakHeapMB is the scheduler-sampled heap high-water (HeapAlloc, MiB)
	// while this rung's two simulations ran.
	PeakHeapMB float64 `json:"peak_heap_mb"`
}

// BenchLadderSnapshot is one BENCH_ladder.json record: the single-cell
// scaling ladder timed rung by rung with heap watermarks. It is the resource
// trajectory of the eventized engine — wall time and peak heap per rung —
// committed beside BENCH_sweep.json so rank-scaling regressions show up in
// review diffs.
type BenchLadderSnapshot struct {
	Schema       int         `json:"schema"`
	Experiment   string      `json:"experiment"`
	Framework    string      `json:"framework"`
	Workload     string      `json:"workload"`
	Mode         string      `json:"mode"`
	PerRankBytes int64       `json:"per_rank_bytes"`
	PoolSize     int         `json:"pool_size"`
	Rungs        []BenchRung `json:"rungs"`
}

// JSON renders the snapshot, indented, newline-terminated.
func (s BenchLadderSnapshot) JSON() string {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		panic(err) // plain struct of scalars; cannot fail
	}
	return string(b) + "\n"
}

// BenchLadder times one single-cell (one framework, one workload) rung at
// each rank count doubling from BenchLadderMinRanks to maxRanks, uncached,
// and reports wall time plus the scheduler's heap high-water per rung. The
// cell is the paper's own — LANL-Trace on the N-1 strided pattern, weak
// scaling — at one block per rank: the ladder tracks the engine's per-rank
// fixed costs (construction, messaging, scheduling, tracing), which data
// volume would only dilute, and one block keeps the 65536-rank rung
// minutes, not hours.
func BenchLadder(maxRanks int) (BenchLadderSnapshot, error) {
	if maxRanks < BenchLadderMinRanks {
		maxRanks = BenchLadderMinRanks
	}
	o := ScaleOptions()
	o.PerRankBytes = o.scaleBlock()
	o.Cache = NewCache("")
	fw := benchFramework()
	w := workload.PatternWorkload(workload.N1Strided)
	snap := BenchLadderSnapshot{
		Schema:       cacheSchema,
		Experiment:   "scale-ladder",
		Framework:    fw.Name(),
		Workload:     w.Name(),
		Mode:         o.ScaleMode.String(),
		PerRankBytes: o.PerRankBytes,
		PoolSize:     PoolSize(),
	}
	for _, ranks := range doublingLadder(BenchLadderMinRanks, maxRanks) {
		sched.resetPeak()
		start := time.Now()
		if err := benchRung(o, fw, w, ranks); err != nil {
			return snap, fmt.Errorf("rung %d: %w", ranks, err)
		}
		snap.Rungs = append(snap.Rungs, BenchRung{
			Ranks:      ranks,
			WallMS:     float64(time.Since(start).Microseconds()) / 1e3,
			PeakHeapMB: float64(sched.peakHeapBytes()) / (1 << 20),
		})
	}
	return snap, nil
}

// benchRung runs one rung's untraced baseline and traced measurement
// through the shared scheduler, uncached.
func benchRung(o Options, fw framework.Framework, w workload.Workload, ranks int) error {
	runs := newSweepRuns(1)
	ts := newTaskSet(o.cacheOrEphemeral())
	ro := o
	ro.Ranks = ranks
	sc := o.scaleRung(ranks)
	ts.untraced(ro, w, sc, &runs.uns[0])
	ts.traced(ro, fw, w, sc,
		fmt.Sprintf("%s, %s, ranks %d", fw.Name(), w.Name(), ranks),
		&runs.reps[0], &runs.errs[0])
	ts.run()
	return runs.errs[0]
}

// benchFramework picks the ladder cell's framework: the paper's LANL-Trace,
// falling back to the registry's first entry.
func benchFramework() framework.Framework {
	all := framework.All()
	for _, fw := range all {
		if fw.Name() == "LANL-Trace" {
			return fw
		}
	}
	return all[0]
}
