package harness

// This file is the in-repo perf trajectory: BenchSweep times the registry
// smoke matrix cold (empty cache) and warm (same cache, same call) and
// packages wall time, executed-vs-cached simulation counts, and the
// scheduler envelope as a JSON-ready snapshot. `tracebench -bench-json`
// writes it to BENCH_sweep.json, which is committed each PR so the
// engine's performance history lives in the repository next to the code
// that produced it.

import (
	"encoding/json"
	"fmt"
	"time"
)

// BenchPhase is one timed pass of the bench sweep.
type BenchPhase struct {
	WallMS   float64 `json:"wall_ms"`
	Executed int64   `json:"executed"`
	Shared   int64   `json:"shared"`
	MemHits  int64   `json:"mem_hits"`
	DiskHits int64   `json:"disk_hits"`
}

// BenchSnapshot is one BENCH_sweep.json record: the smoke matrix timed
// cold and warm against one in-memory cache.
type BenchSnapshot struct {
	// Schema is the cache schema the snapshot was produced under.
	Schema     int    `json:"schema"`
	Experiment string `json:"experiment"`
	// Frameworks/Workloads/Blocks describe the swept matrix shape.
	Frameworks int `json:"frameworks"`
	Workloads  int `json:"workloads"`
	Blocks     int `json:"blocks"`

	Cold BenchPhase `json:"cold"`
	Warm BenchPhase `json:"warm"`

	PoolSize        int `json:"pool_size"`
	PeakConcurrency int `json:"peak_concurrency"`
	// Identical reports that the cold and warm Format renderings matched
	// byte for byte — the memoization-correctness invariant.
	Identical bool `json:"identical"`
}

// JSON renders the snapshot, indented, newline-terminated.
func (s BenchSnapshot) JSON() string {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		panic(err) // plain struct of scalars; cannot fail
	}
	return string(b) + "\n"
}

// BenchSweep runs the full-registry smoke matrix twice against one fresh
// in-memory cache — cold, then warm — and reports the perf snapshot. An
// error means the sweep itself failed; a snapshot with Identical == false
// or Warm.Executed != 0 means the memoization layer is broken (the
// -bench-json CLI path treats both as fatal).
func BenchSweep() (BenchSnapshot, error) {
	o := MatrixSmokeOptions()
	o.Cache = NewCache("")

	start := time.Now()
	cold, err := MatrixSweep(o)
	coldWall := time.Since(start)
	if err != nil {
		return BenchSnapshot{}, fmt.Errorf("cold sweep: %w", err)
	}

	start = time.Now()
	warm, err := MatrixSweep(o)
	warmWall := time.Since(start)
	if err != nil {
		return BenchSnapshot{}, fmt.Errorf("warm sweep: %w", err)
	}

	phase := func(wall time.Duration, s SweepStats) BenchPhase {
		return BenchPhase{
			WallMS:   float64(wall.Microseconds()) / 1e3,
			Executed: s.Executed,
			Shared:   s.Shared,
			MemHits:  s.MemHits,
			DiskHits: s.DiskHits,
		}
	}
	return BenchSnapshot{
		Schema:          cacheSchema,
		Experiment:      "matrix-smoke",
		Frameworks:      len(cold.FrameworkNames()),
		Workloads:       len(cold.Workloads),
		Blocks:          len(o.BlockSizes),
		Cold:            phase(coldWall, cold.Stats),
		Warm:            phase(warmWall, warm.Stats),
		PoolSize:        warm.Stats.PoolSize,
		PeakConcurrency: cold.Stats.PeakConcurrency,
		Identical:       cold.Format() == warm.Format() && warm.Stats.Executed == 0,
	}, nil
}
