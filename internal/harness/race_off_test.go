//go:build !race

package harness

// raceEnabled reports that this test binary was built with -race.
const raceEnabled = false
