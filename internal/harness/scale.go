package harness

import (
	"fmt"
	"strings"

	"iotaxo/internal/framework"
	"iotaxo/internal/workload"
)

// This file is the scalability axis of the measurement engine. The paper's
// evaluation fixes the job size at 32 ranks, but its taxonomy is about how
// tracing frameworks behave as parallel jobs grow; ScaleSweep holds the
// block size fixed and sweeps the rank count instead (4 doubling to
// Options.MaxRanks), in weak mode (fixed per-rank volume) or strong mode
// (fixed total volume). ScaleMatrixSweep folds the sweep into the matrix
// path: every registered framework x every registered workload gets an
// overhead-vs-ranks series, all through the shared bounded scheduler.

// ScaleMode selects how data volume scales with the rank count.
type ScaleMode int

const (
	// WeakScaling fixes the per-rank volume: total volume grows with the
	// job, the checkpoint-style regime most HPC I/O scales in.
	WeakScaling ScaleMode = iota
	// StrongScaling fixes the total volume (the ladder's base job size
	// Ranks x PerRankBytes), divided evenly across ranks.
	StrongScaling
)

// String implements fmt.Stringer with the CLI tokens.
func (m ScaleMode) String() string {
	if m == StrongScaling {
		return "strong"
	}
	return "weak"
}

// ParseScaleMode inverts String for the -scale-mode flags.
func ParseScaleMode(s string) (ScaleMode, bool) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "weak", "":
		return WeakScaling, true
	case "strong":
		return StrongScaling, true
	}
	return WeakScaling, false
}

// DefaultMaxRanks is the scaling ladder's default top rung.
const DefaultMaxRanks = 512

// minScaleRanks is the ladder's base rung.
const minScaleRanks = 4

// ScaleOptions returns the default scaling-sweep configuration: 64 KB
// blocks, 1 MiB per rank at every rung (weak) or 4 ranks x 1 MiB total
// (strong), rank ladder 4 doubling to 512. Event counts stay proportional
// to ranks, so the top rung is CI-affordable.
func ScaleOptions() Options {
	o := DefaultOptions()
	o.Ranks = minScaleRanks
	o.PerRankBytes = 1 << 20
	o.BlockSizes = []int64{64 << 10}
	o.MaxRanks = DefaultMaxRanks
	return o
}

// ScaleSmokeOptions returns the smallest scaling ladder (4 to 16 ranks,
// 256 KiB per rank), affordable for the full registry under the race
// detector: CI's scaling-smoke step.
func ScaleSmokeOptions() Options {
	o := ScaleOptions()
	o.PerRankBytes = 256 << 10
	o.MaxRanks = 16
	return o
}

// maxRanks returns the ladder's top rung, defaulted.
func (o Options) maxRanks() int {
	if o.MaxRanks > 0 {
		return o.MaxRanks
	}
	return DefaultMaxRanks
}

// rankLadder returns the scaling sweep's x-axis: rank counts doubling from
// 4 to MaxRanks, with MaxRanks itself always the top rung.
func (o Options) rankLadder() []int {
	return doublingLadder(minScaleRanks, o.maxRanks())
}

// doublingLadder returns a sweep x-axis doubling from min toward max, with
// max itself always the top rung even when it is off the doubling grid:
// shared by the rank and server ladders.
func doublingLadder(min, max int) []int {
	var ladder []int
	for v := min; v < max; v *= 2 {
		ladder = append(ladder, v)
	}
	if n := len(ladder); n == 0 || ladder[n-1] < max {
		ladder = append(ladder, max)
	}
	return ladder
}

// scaleBlock is the fixed block size of the scaling sweep: the first
// configured block size.
func (o Options) scaleBlock() int64 {
	if len(o.BlockSizes) > 0 {
		return o.BlockSizes[0]
	}
	return 64 << 10
}

// scaleRung derives one rung's scale from the mode: weak keeps PerRankBytes
// per rank; strong divides the ladder-base total (minScaleRanks x
// PerRankBytes) across the rung's ranks, flooring at one block per rank.
func (o Options) scaleRung(ranks int) workload.Scale {
	block := o.scaleBlock()
	if o.ScaleMode == StrongScaling {
		return workload.StrongScale(block, o.PerRankBytes*int64(minScaleRanks), ranks)
	}
	return workload.WeakScale(block, o.PerRankBytes)
}

// ResolveScaleOptions builds the scaling-experiment configuration from CLI
// flag values, shared by `iotaxo -exp scaling` and `tracebench -exp
// scaling` so the two front ends cannot drift: mode must parse, maxRanks
// overrides when positive, ranksPerNode sets the placement density (0/1 is
// the paper's one-rank-per-node testbed), and the workload token selects the
// column axis — empty means the paper's most demanding pattern (N-1 strided,
// keeping the default run affordable), "all" the whole registry, anything
// else one registered scenario.
func ResolveScaleOptions(base Options, mode string, maxRanks, ranksPerNode int, workloadName string) (Options, error) {
	sm, ok := ParseScaleMode(mode)
	if !ok {
		return base, fmt.Errorf("unknown scale mode %q (have weak, strong)", mode)
	}
	o := base
	o.ScaleMode = sm
	if maxRanks > 0 {
		o.MaxRanks = maxRanks
	}
	if err := o.resolvePlacement(ranksPerNode); err != nil {
		return o, err
	}
	if err := o.resolveWorkloadAxis(workloadName); err != nil {
		return o, err
	}
	return o, nil
}

// resolvePlacement validates and applies the -ranks-per-node flag value,
// shared by every sweep resolver. Zero keeps the base options' placement,
// mirroring the other override-when-positive flags.
func (o *Options) resolvePlacement(ranksPerNode int) error {
	if ranksPerNode < 0 {
		return fmt.Errorf("ranks per node must be >= 1 (0 keeps the default), got %d", ranksPerNode)
	}
	if ranksPerNode > 0 {
		o.RanksPerNode = ranksPerNode
	}
	return nil
}

// resolveWorkloadAxis applies the -workload token with the sweep
// experiments' shared semantics: empty means the paper's most demanding
// pattern (N-1 strided, keeping default runs affordable), "all" the whole
// registry, anything else one registered scenario.
func (o *Options) resolveWorkloadAxis(workloadName string) error {
	switch workloadName {
	case "":
		o.Workloads = []workload.Workload{workload.PatternWorkload(workload.N1Strided)}
	case "all":
		o.Workloads = nil // full workload registry
	default:
		w, ok := workload.ByName(workloadName)
		if !ok {
			return fmt.Errorf("unknown workload %q (have all, %s)",
				workloadName, strings.Join(workload.Names(), ", "))
		}
		o.Workloads = []workload.Workload{w}
	}
	return nil
}

// Placement renders the series' ", N ranks/node" header suffix — empty for
// the default one-rank-per-node placement. CSV consumers prepend it to their
// own series headers so multi-rank-per-node data stays distinguishable.
func (r ScaleResult) Placement() string { return placementLabel(r.RanksPerNode) }

// placementLabel renders the ", N ranks/node" table-header suffix for
// multi-rank-per-node series; default one-rank-per-node output is unchanged.
func placementLabel(ranksPerNode int) string {
	if ranksPerNode > 1 {
		return fmt.Sprintf(", %d ranks/node", ranksPerNode)
	}
	return ""
}

// ScalePoint is one rank-count position of a scaling sweep.
type ScalePoint struct {
	Ranks        int
	PerRankBytes int64 // realized per-rank volume (after the one-block floor)
	BandwidthPoint
}

// ScaleResult is one framework x workload overhead-vs-ranks series: the
// scalability mirror of FigureResult.
type ScaleResult struct {
	ID           string
	Title        string
	Framework    string
	Workload     string
	Mode         ScaleMode
	Block        int64
	RanksPerNode int // placement density; 1 is one rank per node
	Points       []ScalePoint
}

// ScaleSweep measures one framework against one workload across the rank
// ladder at a fixed block size. Every (rank count, traced?) run is an
// independently seeded simulation executed on the shared bounded scheduler,
// so output is deterministic and peak concurrency is PoolSize.
func ScaleSweep(fw framework.Framework, w workload.Workload, o Options) (ScaleResult, error) {
	runs := newSweepRuns(len(o.rankLadder()))
	ts := newTaskSet(o.cacheOrEphemeral())
	o.addScaleTasks(ts, fw, w, runs)
	ts.run()
	return o.assembleScale(fw, w, runs)
}

// addScaleTasks stages the scaling sweep's leaf simulations, one shared
// untraced and one traced run per ladder rung. Each rung's tasks carry the
// rung-specific options (Ranks), so cache keys fingerprint the rung's
// actual testbed and the scheduler's shortest-first ordering sees the
// rung's actual size.
func (o Options) addScaleTasks(ts *taskSet, fw framework.Framework, w workload.Workload, runs *sweepRuns) {
	for i, ranks := range o.rankLadder() {
		ro := o
		ro.Ranks = ranks
		sc := o.scaleRung(ranks)
		ts.untraced(ro, w, sc, &runs.uns[i])
		ts.traced(ro, fw, w, sc,
			fmt.Sprintf("%s, %s, ranks %d", fw.Name(), w.Name(), ranks),
			&runs.reps[i], &runs.errs[i])
	}
}

// assembleScale folds completed rung runs into the series.
func (o Options) assembleScale(fw framework.Framework, w workload.Workload, runs *sweepRuns) (ScaleResult, error) {
	ladder := o.rankLadder()
	res := ScaleResult{
		ID:           "scale",
		Title:        fmt.Sprintf("%s overhead vs ranks, %s", fw.Name(), w.Name()),
		Framework:    fw.Name(),
		Workload:     w.Name(),
		Mode:         o.ScaleMode,
		Block:        o.scaleBlock(),
		RanksPerNode: o.ranksPerNode(),
		Points:       make([]ScalePoint, len(ladder)),
	}
	for i, ranks := range ladder {
		if err := runs.errs[i]; err != nil {
			return res, err
		}
		sc := o.scaleRung(ranks)
		res.Points[i] = ScalePoint{
			Ranks:          ranks,
			PerRankBytes:   int64(sc.Objects()) * sc.BlockSize,
			BandwidthPoint: makePoint(sc.BlockSize, runs.uns[i], runs.reps[i]),
		}
	}
	return res, nil
}

// Format renders the series as an aligned text table, mirroring
// FigureResult.Format with ranks on the x-axis.
func (r ScaleResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s: %s (%s scaling, block %d KB%s)\n", r.ID, r.Title, r.Mode, r.Block>>10, placementLabel(r.RanksPerNode))
	fmt.Fprintf(&b, "%8s %12s %14s %14s %12s %12s\n",
		"ranks", "per-rank(KB)", "untraced MB/s", "traced MB/s", "bw ovh %", "elapsed ovh %")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%8d %12d %14.1f %14.1f %12.1f %12.1f\n",
			p.Ranks, p.PerRankBytes>>10, p.UntracedMBps, p.TracedMBps,
			p.BandwidthOvhFrac*100, p.ElapsedOvhFrac*100)
	}
	return b.String()
}

// CSV renders the series for plotting, mirroring FigureResult.CSV.
func (r ScaleResult) CSV() string {
	var b strings.Builder
	b.WriteString("ranks,per_rank_kb,untraced_mbps,traced_mbps,bw_overhead_frac,elapsed_overhead_frac\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%d,%d,%.3f,%.3f,%.4f,%.4f\n",
			p.Ranks, p.PerRankBytes>>10, p.UntracedMBps, p.TracedMBps,
			p.BandwidthOvhFrac, p.ElapsedOvhFrac)
	}
	return b.String()
}

// ScaleMatrixResult is the scalability matrix: one overhead-vs-ranks series
// per framework x workload pair, row-major in framework order. Each series
// carries its own framework/workload labels, so the result is just the
// flattened series list.
type ScaleMatrixResult struct {
	Series []ScaleResult
	// Stats is the sweep's cache/scheduler accounting, reported beside the
	// measurements (never inside Format, which must stay byte-identical
	// between cold and warm runs).
	Stats SweepStats
}

// ScaleMatrixSweep runs the scaling sweep for every registered framework on
// every registered workload (Options.Workloads restricts the column axis).
func ScaleMatrixSweep(o Options) (ScaleMatrixResult, error) {
	return ScaleMatrixSweepOf(o, framework.All()...)
}

// ScaleMatrixSweepOf is ScaleMatrixSweep restricted to the given
// frameworks. All series' runs are staged into one task set for the shared
// bounded scheduler — sharing untraced baselines across framework rows and
// memoizing through Options.Cache — so peak concurrency stays at PoolSize
// however large the registries grow.
func ScaleMatrixSweepOf(o Options, fws ...framework.Framework) (ScaleMatrixResult, error) {
	series, stats, err := matrixSweepOf(o, fws, len(o.rankLadder()), Options.addScaleTasks, o.assembleScale)
	return ScaleMatrixResult{Series: series, Stats: stats}, err
}

// matrixSweepOf is the shared framework x workload fan-out behind
// ScaleMatrixSweepOf and ServerMatrixSweepOf: every pair's rung runs are
// staged into one task set for the bounded scheduler (shared baselines,
// cache memoization, shortest-first ordering), then assembled into a
// row-major (framework-major) series slice with the call's cache/scheduler
// accounting.
func matrixSweepOf[R any](
	o Options, fws []framework.Framework, rungs int,
	add func(Options, *taskSet, framework.Framework, workload.Workload, *sweepRuns),
	assemble func(framework.Framework, workload.Workload, *sweepRuns) (R, error),
) ([]R, SweepStats, error) {
	workloads := o.matrixWorkloads()
	series := make([]R, len(fws)*len(workloads))
	runs := make([]*sweepRuns, len(series))
	cache := o.cacheOrEphemeral()
	before := cache.Stats()
	ts := newTaskSet(cache)
	for fi, fw := range fws {
		for wi, w := range workloads {
			idx := fi*len(workloads) + wi
			runs[idx] = newSweepRuns(rungs)
			add(o, ts, fw, w, runs[idx])
		}
	}
	ts.run()
	stats := sweepStatsSince(cache, before)
	for fi, fw := range fws {
		for wi, w := range workloads {
			idx := fi*len(workloads) + wi
			s, err := assemble(fw, w, runs[idx])
			if err != nil {
				return series, stats, err
			}
			series[idx] = s
		}
	}
	return series, stats, nil
}

// formatMatrix renders a matrix's series tables under one header, separated
// by blank lines, in matrix (framework-major) order.
func formatMatrix[R interface{ Format() string }](header string, series []R) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s (%d series)\n", header, len(series))
	for _, s := range series {
		b.WriteByte('\n')
		b.WriteString(s.Format())
	}
	return b.String()
}

// Format renders every series' table, separated by blank lines, in matrix
// (framework-major) order.
func (m ScaleMatrixResult) Format() string {
	return formatMatrix("framework x workload scaling matrix", m.Series)
}
