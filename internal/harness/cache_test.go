package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"iotaxo/internal/framework"
	"iotaxo/internal/lanltrace"
	"iotaxo/internal/workload"
)

// matrixLeafCounts returns the expected simulation counts of a cold
// full-registry matrix at o: one shared untraced baseline per workload x
// block column plus one traced run per cell x block, and the per-cell
// baseline reuses that sharing saves.
func matrixLeafCounts(o Options) (executed, shared int64) {
	f := int64(len(framework.All()))
	w := int64(len(workload.All()))
	b := int64(len(o.BlockSizes))
	return w*b + f*w*b, (f - 1) * w * b
}

// TestMatrixBaselineSharing pins the tentpole's cold-run arithmetic: the
// full-registry smoke matrix executes exactly one untraced run per
// workload x block (not one per framework row), meeting the (1+F)/2F bound
// over the previous 2·F·W·B simulation count.
func TestMatrixBaselineSharing(t *testing.T) {
	o := MatrixSmokeOptions()
	o.Cache = NewCache("")
	m, err := MatrixSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	wantExecuted, wantShared := matrixLeafCounts(o)
	if m.Stats.Executed != wantExecuted {
		t.Errorf("cold matrix executed %d simulations, want %d (one untraced per workload x block)", m.Stats.Executed, wantExecuted)
	}
	if m.Stats.Shared != wantShared {
		t.Errorf("cold matrix shared %d baselines, want %d", m.Stats.Shared, wantShared)
	}
	// The acceptance bound: at most (1+F)/2F of the pre-cache count 2·F·W·B.
	f := int64(len(framework.All()))
	previous := 2 * f * int64(len(workload.All())) * int64(len(o.BlockSizes))
	if m.Stats.Executed*2*f > previous*(1+f) {
		t.Errorf("executed %d > (1+F)/2F of previous %d", m.Stats.Executed, previous)
	}
}

// TestMatrixWarmCacheByteIdentical is the memoization-correctness
// invariant: a warm repeat of the same matrix executes zero simulations and
// renders byte-identically.
func TestMatrixWarmCacheByteIdentical(t *testing.T) {
	o := MatrixSmokeOptions()
	o.Cache = NewCache("")
	cold, err := MatrixSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := MatrixSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.Executed != 0 {
		t.Errorf("warm matrix executed %d simulations, want 0", warm.Stats.Executed)
	}
	if warm.Stats.MemHits == 0 {
		t.Error("warm matrix reported no memory hits")
	}
	if cold.Format() != warm.Format() {
		t.Errorf("warm Format differs from cold:\ncold:\n%s\nwarm:\n%s", cold.Format(), warm.Format())
	}
	if core, warmCore := cold.RenderComparison(), warm.RenderComparison(); core != warmCore {
		t.Error("warm RenderComparison differs from cold")
	}
}

// TestScaleMatrixWarmCacheByteIdentical mirrors the warm-run invariant on
// the rank-ladder engine.
func TestScaleMatrixWarmCacheByteIdentical(t *testing.T) {
	o := ScaleSmokeOptions()
	o.Workloads = []workload.Workload{workload.PatternWorkload(workload.N1Strided)}
	o.Cache = NewCache("")
	cold, err := ScaleMatrixSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.Executed == 0 {
		t.Fatal("cold scale matrix executed no simulations")
	}
	warm, err := ScaleMatrixSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.Executed != 0 {
		t.Errorf("warm scale matrix executed %d simulations, want 0", warm.Stats.Executed)
	}
	if cold.Format() != warm.Format() {
		t.Error("warm scale-matrix Format differs from cold")
	}
}

// TestServerMatrixWarmCache mirrors the warm-run invariant on the
// server-ladder engine.
func TestServerMatrixWarmCache(t *testing.T) {
	o := ServerSmokeOptions()
	o.Workloads = []workload.Workload{workload.PatternWorkload(workload.NToN)}
	o.Cache = NewCache("")
	cold, err := ServerMatrixSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := ServerMatrixSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.Executed != 0 {
		t.Errorf("warm server matrix executed %d simulations, want 0", warm.Stats.Executed)
	}
	if cold.Format() != warm.Format() {
		t.Error("warm server-matrix Format differs from cold")
	}
}

// restrictedSmoke returns a one-framework, one-workload smoke configuration
// for the disk-layer tests, which re-execute several cold runs.
func restrictedSmoke(dir string) Options {
	o := MatrixSmokeOptions()
	o.Workloads = []workload.Workload{workload.PatternWorkload(workload.N1Strided)}
	o.Cache = NewCache(dir)
	return o
}

// TestCachePersistsAcrossProcesses simulates two processes sharing one
// cache directory: a fresh Cache on the same dir answers every leaf from
// disk and executes nothing.
func TestCachePersistsAcrossProcesses(t *testing.T) {
	dir := t.TempDir()
	o := restrictedSmoke(dir)
	fw := framework.All()[0]
	cold, err := MatrixSweepOf(o, fw)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.Executed == 0 {
		t.Fatal("cold run executed no simulations")
	}

	o.Cache = NewCache(dir) // a "new process": empty memory, same disk
	warm, err := MatrixSweepOf(o, fw)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.Executed != 0 {
		t.Errorf("disk-warm run executed %d simulations, want 0", warm.Stats.Executed)
	}
	if warm.Stats.DiskHits != cold.Stats.Executed {
		t.Errorf("disk-warm run hit disk %d times, want %d", warm.Stats.DiskHits, cold.Stats.Executed)
	}
	if cold.Format() != warm.Format() {
		t.Error("disk-warm Format differs from cold")
	}
}

// mangleCacheFiles applies f to every persisted entry in dir.
func mangleCacheFiles(t *testing.T, dir string, f func([]byte) []byte) {
	t.Helper()
	entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("no cache entries to mangle in %s (err %v)", dir, err)
	}
	for _, p := range entries {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, f(b), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCorruptedCacheFileIgnored: garbage entries are silent misses, never
// fatal, and the re-executed output is unchanged.
func TestCorruptedCacheFileIgnored(t *testing.T) {
	dir := t.TempDir()
	o := restrictedSmoke(dir)
	fw := framework.All()[0]
	cold, err := MatrixSweepOf(o, fw)
	if err != nil {
		t.Fatal(err)
	}
	mangleCacheFiles(t, dir, func([]byte) []byte { return []byte("not json{{{") })

	o.Cache = NewCache(dir)
	rerun, err := MatrixSweepOf(o, fw)
	if err != nil {
		t.Fatal(err)
	}
	if rerun.Stats.Executed != cold.Stats.Executed {
		t.Errorf("corrupted cache: executed %d, want full re-execution %d", rerun.Stats.Executed, cold.Stats.Executed)
	}
	if rerun.Stats.DiskHits != 0 {
		t.Errorf("corrupted cache served %d disk hits, want 0", rerun.Stats.DiskHits)
	}
	if cold.Format() != rerun.Format() {
		t.Error("re-executed Format differs from cold")
	}
}

// TestStaleSchemaVersionIgnored: entries written under another cacheSchema
// are invalidated at load, forcing re-execution.
func TestStaleSchemaVersionIgnored(t *testing.T) {
	dir := t.TempDir()
	o := restrictedSmoke(dir)
	fw := framework.All()[0]
	cold, err := MatrixSweepOf(o, fw)
	if err != nil {
		t.Fatal(err)
	}
	mangleCacheFiles(t, dir, func(b []byte) []byte {
		return bytes.Replace(b, []byte(`{"schema":1,`), []byte(`{"schema":0,`), 1)
	})

	o.Cache = NewCache(dir)
	rerun, err := MatrixSweepOf(o, fw)
	if err != nil {
		t.Fatal(err)
	}
	if rerun.Stats.Executed != cold.Stats.Executed {
		t.Errorf("stale-schema cache: executed %d, want full re-execution %d", rerun.Stats.Executed, cold.Stats.Executed)
	}
	if rerun.Stats.DiskHits != 0 {
		t.Errorf("stale-schema cache served %d disk hits, want 0", rerun.Stats.DiskHits)
	}
}

// TestSimKeysPinned pins each registered workload's cache key at the smoke
// scale. Key drift silently orphans every persisted cache entry (and, far
// worse, a drift that *merges* keys would alias distinct simulations), so
// any change here must be deliberate — and almost always paired with a
// cacheSchema bump.
func TestSimKeysPinned(t *testing.T) {
	want := map[string]string{
		"N-1 non-strided":    "v1||0000000000000000|N-1 non-strided|0c6868357317be46|2137a13ba9160b71",
		"N-1 strided":        "v1||0000000000000000|N-1 strided|0c6868357317be46|2137a13ba9160b71",
		"N-N":                "v1||0000000000000000|N-N|0c6868357317be46|2137a13ba9160b71",
		"analytics-scan":     "v1||0000000000000000|analytics-scan|0c6868357317be46|2137a13ba9160b71",
		"checkpoint-restart": "v1||0000000000000000|checkpoint-restart|0c6868357317be46|2137a13ba9160b71",
		"metadata-storm":     "v1||0000000000000000|metadata-storm|0c6868357317be46|2137a13ba9160b71",
		"producer-consumer":  "v1||0000000000000000|producer-consumer|0c6868357317be46|2137a13ba9160b71",
	}
	o := MatrixSmokeOptions()
	sc := o.scaleFor(o.BlockSizes[0])
	for _, w := range workload.All() {
		got := o.simKeyFor(nil, w, sc).id()
		if pinned, ok := want[w.Name()]; !ok {
			t.Errorf("workload %q has no pinned key; add %q", w.Name(), got)
		} else if got != pinned {
			t.Errorf("workload %q key drifted:\n got %s\nwant %s", w.Name(), got, pinned)
		}
	}
}

// TestLANLTraceVariantsGetDistinctKeys guards the one known Name collision:
// strace- and ltrace-mode LANL-Trace share a registered Name and must not
// share cache entries.
func TestLANLTraceVariantsGetDistinctKeys(t *testing.T) {
	o := MatrixSmokeOptions()
	sc := o.scaleFor(o.BlockSizes[0])
	w := workload.PatternWorkload(workload.N1Strided)
	ltrace := o.simKeyFor(o.lanlFramework(), w, sc)
	so := o
	so.Mode = lanltrace.ModeStrace
	strace := so.simKeyFor(so.lanlFramework(), w, sc)
	if ltrace == strace {
		t.Fatalf("ltrace and strace modes share cache key %s", ltrace.id())
	}
	if ltrace.Variant == 0 || strace.Variant == 0 {
		t.Errorf("LANL-Trace variants must fingerprint their config (got %016x, %016x)", ltrace.Variant, strace.Variant)
	}
}

// TestCacheSingleflight: concurrent identical keys execute once.
func TestCacheSingleflight(t *testing.T) {
	c := NewCache("")
	k := simKey{Workload: "w", Scale: 1, Cluster: 2}
	var executions int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.untraced(k, func() workload.Result {
				mu.Lock()
				executions++
				mu.Unlock()
				return workload.Result{Workload: "w", Ranks: 4}
			})
		}()
	}
	wg.Wait()
	if executions != 1 {
		t.Errorf("singleflight ran %d executions, want 1", executions)
	}
	if s := c.Stats(); s.Executed != 1 || s.Executed+s.MemHits != 8 {
		t.Errorf("stats %+v: want 1 executed, 7 memory hits", s)
	}
}

// TestSchedulerShortestFirst: run() starts tasks in ascending cost order,
// stable on ties, so big ladder rungs cannot head-of-line-block small ones.
func TestSchedulerShortestFirst(t *testing.T) {
	s := newScheduler(1) // serial: start order == completion order
	var order []int
	var mu sync.Mutex
	mk := func(id int) func() {
		return func() {
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
		}
	}
	s.run([]task{
		{cost: 30, run: mk(0)},
		{cost: 10, run: mk(1)},
		{cost: 20, run: mk(2)},
		{cost: 10, run: mk(3)},
	})
	want := []int{1, 3, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order %v, want %v (shortest-first, stable ties)", order, want)
		}
	}
}

// TestBenchSweep exercises the perf-trajectory path end to end: the
// snapshot must report a self-consistent cold/warm pair.
func TestBenchSweep(t *testing.T) {
	snap, err := BenchSweep()
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Identical {
		t.Error("bench snapshot: cold and warm runs were not identical")
	}
	if snap.Warm.Executed != 0 {
		t.Errorf("bench snapshot: warm run executed %d simulations, want 0", snap.Warm.Executed)
	}
	o := MatrixSmokeOptions()
	wantExecuted, wantShared := matrixLeafCounts(o)
	if snap.Cold.Executed != wantExecuted || snap.Cold.Shared != wantShared {
		t.Errorf("bench snapshot cold counts executed=%d shared=%d, want %d/%d",
			snap.Cold.Executed, snap.Cold.Shared, wantExecuted, wantShared)
	}
	if !strings.Contains(snap.JSON(), `"experiment": "matrix-smoke"`) {
		t.Errorf("bench JSON missing experiment tag:\n%s", snap.JSON())
	}
}

// TestSweepStatsFooter pins the stderr accounting line's shape.
func TestSweepStatsFooter(t *testing.T) {
	s := SweepStats{
		CacheStats:      CacheStats{Executed: 2, Shared: 1, MemHits: 3, DiskHits: 4},
		PeakConcurrency: 5,
		PoolSize:        8,
	}
	f := s.Footer()
	for _, want := range []string{"2 executed", "1 shared", "7 cached", "3 memory", "4 disk", "peak 5/8"} {
		if !strings.Contains(f, want) {
			t.Errorf("footer %q missing %q", f, want)
		}
	}
}
