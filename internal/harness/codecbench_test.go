package harness

import (
	"encoding/json"
	"testing"
)

// TestBenchCodec asserts the codec acceptance bars on real registry
// streams: v2 at least 3x smaller than v1, and the 4096-rank pruning probe
// decoding at most 20% of blocks.
func TestBenchCodec(t *testing.T) {
	if testing.Short() {
		t.Skip("full-registry codec bench")
	}
	snap, err := BenchCodec()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Rows) == 0 || snap.TotalRecords == 0 {
		t.Fatalf("empty snapshot: %+v", snap)
	}
	for _, row := range snap.Rows {
		if row.Records == 0 {
			t.Errorf("workload %s produced no records", row.Workload)
		}
		if row.V2Bytes >= row.V1Bytes {
			t.Errorf("workload %s: v2 (%d) not smaller than v1 (%d)", row.Workload, row.V2Bytes, row.V1Bytes)
		}
	}
	if snap.SizeRatio < CodecSizeRatioFloor {
		t.Errorf("size ratio %.2f below the %.1fx floor", snap.SizeRatio, CodecSizeRatioFloor)
	}
	if snap.IndexFraction > CodecIndexFractionCeil {
		t.Errorf("indexed query decoded %.0f%% of blocks (ceiling %.0f%%)",
			snap.IndexFraction*100, CodecIndexFractionCeil*100)
	}
	if snap.IndexedMatched != 101*8 {
		t.Errorf("indexed query matched %d records, want %d", snap.IndexedMatched, 101*8)
	}
	if !snap.Passed {
		t.Errorf("snapshot not passed: %+v", snap)
	}
	var back CodecSnapshot
	if err := json.Unmarshal([]byte(snap.JSON()), &back); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if back.SizeRatio != snap.SizeRatio || back.IndexDecoded != snap.IndexDecoded {
		t.Fatal("snapshot JSON round-trip diverged")
	}
}
