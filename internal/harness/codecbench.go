package harness

// This file is the trace-codec trajectory: BenchCodec runs the full
// workload registry under LANL-Trace at smoke scale, encodes every cell's
// real record stream in both trace formats (v1 row-ordered, v2 columnar),
// and packages bytes-per-record, scan throughput, and the block index's
// pruning power as a JSON-ready snapshot. `tracebench -bench-codec` writes
// it to BENCH_codec.json, committed each PR so format regressions (size
// ratio, decoded-block fraction) show up in review diffs.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"iotaxo/internal/lanltrace"
	"iotaxo/internal/sim"
	"iotaxo/internal/trace"
	"iotaxo/internal/workload"
)

// CodecSizeRatioFloor is the acceptance bar: v2 must be at least this many
// times smaller than v1 on the registry's real record streams.
const CodecSizeRatioFloor = 3.0

// CodecIndexFractionCeil is the pruning bar: a 101-rank query against a
// 4096-rank trace must decode at most this fraction of the blocks.
const CodecIndexFractionCeil = 0.20

// CodecRow is one workload's size comparison: the same record stream
// encoded by both codecs, plain and compressed.
type CodecRow struct {
	Workload     string `json:"workload"`
	Records      int64  `json:"records"`
	V1Bytes      int64  `json:"v1_bytes"`
	V2Bytes      int64  `json:"v2_bytes"`
	V1Compressed int64  `json:"v1_compressed"`
	V2Compressed int64  `json:"v2_compressed"`
}

// CodecSnapshot is one BENCH_codec.json record: v1-vs-v2 size on the
// full-registry matrix streams, scan throughput, and index pruning.
type CodecSnapshot struct {
	Schema     int    `json:"schema"`
	Experiment string `json:"experiment"`
	Framework  string `json:"framework"`
	Ranks      int    `json:"ranks"`

	Rows []CodecRow `json:"rows"`

	TotalRecords   int64   `json:"total_records"`
	V1PerRecord    float64 `json:"v1_bytes_per_record"`
	V2PerRecord    float64 `json:"v2_bytes_per_record"`
	SizeRatio      float64 `json:"size_ratio"`            // v1 / v2, plain
	SizeRatioComp  float64 `json:"size_ratio_compressed"` // v1 / v2, deflated
	V1DecodeMBps   float64 `json:"v1_decode_mbps"`
	V2ScanMBps     float64 `json:"v2_scan_mbps"`        // full record materialization
	V2ColumnMBps   float64 `json:"v2_column_scan_mbps"` // bytes+durs columns only
	IndexRanks     int     `json:"index_ranks"`
	IndexBlocks    int     `json:"index_blocks"`
	IndexDecoded   int     `json:"index_blocks_decoded"`
	IndexFraction  float64 `json:"index_decoded_fraction"`
	IndexedMatched int64   `json:"indexed_records_matched"`

	// Passed folds the acceptance bars: SizeRatio >= 3 and a rank-range
	// query on the 4096-rank trace decoding <= 20% of blocks.
	Passed bool `json:"passed"`
}

// JSON renders the snapshot, indented, newline-terminated.
func (s CodecSnapshot) JSON() string {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		panic(err) // plain struct of scalars; cannot fail
	}
	return string(b) + "\n"
}

// codecBenchOptions is the codec bench's scale: the smoke matrix cluster
// shape, but at 64 KB blocks over 4 MB per rank so every workload emits
// thousands of records — enough stream for the columnar dictionaries to
// amortize, while each run stays well under a second.
func codecBenchOptions() Options {
	o := MatrixSmokeOptions()
	o.PerRankBytes = 4 << 20
	o.BlockSizes = []int64{64 << 10}
	return o
}

// matrixRecords runs one registry workload under LANL-Trace at smoke scale
// and returns the real merged record stream.
func matrixRecords(o Options, w workload.Workload) ([]trace.Record, error) {
	sess := o.lanlFramework().Attach(o.newCluster())
	if _, err := sess.Run(w.Spec(o.scaleFor(o.BlockSizes[0]))); err != nil {
		return nil, err
	}
	rep := sess.(interface{ Report() *lanltrace.Report }).Report()
	recs := rep.AllRecords()
	// The bench compares the codecs on the classic record corpus. Causal
	// spans are stripped: v1 only carries them behind an opt-in flag, so
	// leaving them in would charge the span columns to v2 alone and skew
	// the ratio.
	for i := range recs {
		recs[i].Span, recs[i].Parent = 0, 0
	}
	return recs, nil
}

// encodeV1 / encodeV2 report the encoded size of recs.
func encodeV1(recs []trace.Record, compress bool) ([]byte, error) {
	var buf bytes.Buffer
	w := trace.NewBinaryWriter(&buf, trace.BinaryOptions{Compress: compress})
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			return nil, err
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func encodeV2(recs []trace.Record, compress bool) ([]byte, error) {
	var buf bytes.Buffer
	w := trace.NewColumnarWriter(&buf, trace.ColumnarOptions{Compress: compress})
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			return nil, err
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// mbps converts an encoded size and wall time into scan throughput.
func mbps(encoded int, wall time.Duration) float64 {
	if wall <= 0 {
		return 0
	}
	return float64(encoded) / 1e6 / wall.Seconds()
}

// indexRankTrace builds the 4096-rank rank-major trace the pruning probe
// queries: real-shaped write records, one block per 512.
func indexRankTrace(ranks, perRank int) ([]byte, error) {
	var buf bytes.Buffer
	w := trace.NewColumnarWriter(&buf, trace.ColumnarOptions{})
	i := 0
	for rank := 0; rank < ranks; rank++ {
		for k := 0; k < perRank; k++ {
			r := trace.Record{
				Time: sim.Time(i) * sim.Microsecond, Dur: 20 * sim.Microsecond,
				Node: fmt.Sprintf("cn%04d", rank/8), Rank: rank, PID: 4000 + rank,
				Class: trace.ClassSyscall, Name: "SYS_write", Ret: "65536",
				Path:   fmt.Sprintf("/pfs/out/rank%04d.dat", rank),
				Offset: int64(k) << 16, Bytes: 1 << 16,
			}
			if err := w.Write(&r); err != nil {
				return nil, err
			}
			i++
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// BenchCodec measures the two trace codecs against each other on the full
// workload registry's real record streams, then probes the v2 block index
// with a rank-range query on a 4096-rank trace. An error means a run or an
// encode failed; Passed == false means a format regression (the
// -bench-codec CLI path treats both as fatal).
func BenchCodec() (CodecSnapshot, error) {
	o := codecBenchOptions()
	snap := CodecSnapshot{
		Schema:     cacheSchema,
		Experiment: "codec-matrix",
		Framework:  o.lanlFramework().Name(),
		Ranks:      o.Ranks,
	}

	var all []trace.Record
	var v1Total, v2Total, v1CompTotal, v2CompTotal int64
	for _, w := range workload.All() {
		recs, err := matrixRecords(o, w)
		if err != nil {
			return snap, fmt.Errorf("%s: %w", w.Name(), err)
		}
		v1, err := encodeV1(recs, false)
		if err != nil {
			return snap, fmt.Errorf("%s: v1 encode: %w", w.Name(), err)
		}
		v2, err := encodeV2(recs, false)
		if err != nil {
			return snap, fmt.Errorf("%s: v2 encode: %w", w.Name(), err)
		}
		v1c, err := encodeV1(recs, true)
		if err != nil {
			return snap, fmt.Errorf("%s: v1 compress: %w", w.Name(), err)
		}
		v2c, err := encodeV2(recs, true)
		if err != nil {
			return snap, fmt.Errorf("%s: v2 compress: %w", w.Name(), err)
		}
		snap.Rows = append(snap.Rows, CodecRow{
			Workload: w.Name(), Records: int64(len(recs)),
			V1Bytes: int64(len(v1)), V2Bytes: int64(len(v2)),
			V1Compressed: int64(len(v1c)), V2Compressed: int64(len(v2c)),
		})
		snap.TotalRecords += int64(len(recs))
		v1Total += int64(len(v1))
		v2Total += int64(len(v2))
		v1CompTotal += int64(len(v1c))
		v2CompTotal += int64(len(v2c))
		all = append(all, recs...)
	}
	if snap.TotalRecords == 0 {
		return snap, fmt.Errorf("registry produced no records")
	}
	snap.V1PerRecord = float64(v1Total) / float64(snap.TotalRecords)
	snap.V2PerRecord = float64(v2Total) / float64(snap.TotalRecords)
	snap.SizeRatio = float64(v1Total) / float64(v2Total)
	snap.SizeRatioComp = float64(v1CompTotal) / float64(v2CompTotal)

	// Scan throughput over the combined stream.
	v1All, err := encodeV1(all, false)
	if err != nil {
		return snap, err
	}
	v2All, err := encodeV2(all, false)
	if err != nil {
		return snap, err
	}
	start := time.Now()
	n1, err := trace.Copy(discardSink{}, trace.NewParallelBinaryReader(bytes.NewReader(v1All), 0))
	if err != nil {
		return snap, fmt.Errorf("v1 decode: %w", err)
	}
	snap.V1DecodeMBps = mbps(len(v1All), time.Since(start))

	cr, err := trace.NewColumnarReader(bytes.NewReader(v2All), int64(len(v2All)))
	if err != nil {
		return snap, err
	}
	start = time.Now()
	n2, err := trace.Copy(discardSink{}, cr.Scan(trace.MatchAll(), 0))
	if err != nil {
		return snap, fmt.Errorf("v2 scan: %w", err)
	}
	snap.V2ScanMBps = mbps(len(v2All), time.Since(start))
	if n1 != n2 || n1 != snap.TotalRecords {
		return snap, fmt.Errorf("scan counts diverge: v1 %d, v2 %d, encoded %d", n1, n2, snap.TotalRecords)
	}

	start = time.Now()
	var colBytes int64
	_, err = cr.ScanViews(trace.MatchAll(), 0, func(v *trace.BlockView, rows []int) error {
		bs, err := v.Bytes()
		if err != nil {
			return err
		}
		durs, err := v.Durs()
		if err != nil {
			return err
		}
		for _, i := range rows {
			colBytes += bs[i] + int64(durs[i])
		}
		return nil
	})
	if err != nil {
		return snap, fmt.Errorf("v2 column scan: %w", err)
	}
	snap.V2ColumnMBps = mbps(len(v2All), time.Since(start))

	// Index pruning probe: ranks 900-1000 of a 4096-rank rank-major trace.
	const probeRanks = 4096
	idxTrace, err := indexRankTrace(probeRanks, 8)
	if err != nil {
		return snap, err
	}
	icr, err := trace.NewColumnarReader(bytes.NewReader(idxTrace), int64(len(idxTrace)))
	if err != nil {
		return snap, err
	}
	q := trace.MatchAll().WithRanks(900, 1000)
	scan, err := icr.ScanViews(q, 0, func(v *trace.BlockView, rows []int) error { return nil })
	if err != nil {
		return snap, fmt.Errorf("indexed query: %w", err)
	}
	snap.IndexRanks = probeRanks
	snap.IndexBlocks = scan.BlocksTotal
	snap.IndexDecoded = scan.BlocksDecoded
	snap.IndexFraction = float64(scan.BlocksDecoded) / float64(scan.BlocksTotal)
	snap.IndexedMatched = scan.RecordsMatched

	snap.Passed = snap.SizeRatio >= CodecSizeRatioFloor &&
		snap.IndexFraction <= CodecIndexFractionCeil &&
		snap.IndexedMatched == 101*8
	return snap, nil
}

// discardSink counts records through Copy without keeping them.
type discardSink struct{}

func (discardSink) Write(*trace.Record) error { return nil }
func (discardSink) Close() error              { return nil }
