package harness

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// This file is the bounded simulation scheduler behind every experiment
// engine in the package. A full-registry matrix is frameworks x workloads x
// block sizes x {untraced, traced} independent cluster simulations; before
// the scheduler, each layer fanned out a goroutine per element, so peak
// concurrency grew multiplicatively with the registries (~560 live cluster
// simulations for the built-in registry) and peak memory with it. Every
// simulation now runs as one leaf task on a shared worker pool sized
// min(GOMAXPROCS, simPoolCap), so peak concurrency is a hardware-shaped
// constant no matter how large the registries grow.
//
// Results are unaffected: every leaf task is an independently seeded
// simulation environment, so scheduling order cannot change any measured
// value — only how many simulations are live at once.

// simPoolCap caps the worker pool: beyond this, extra concurrent cluster
// simulations stop paying for their memory (each holds a full simulated
// testbed plus its trace buffers).
const simPoolCap = 16

// PoolSize reports the scheduler's concurrency bound:
// min(GOMAXPROCS, simPoolCap), floored at 1.
func PoolSize() int { return sched.size() }

// sched is the package-wide scheduler shared by Sweep, MatrixSweepOf,
// ScaleSweep, and the deep-dive experiments: concurrent engines draw from
// one slot pool, so the bound holds globally, not per call.
var sched = newScheduler(defaultPoolSize())

func defaultPoolSize() int {
	n := runtime.GOMAXPROCS(0)
	if n > simPoolCap {
		n = simPoolCap
	}
	if n < 1 {
		n = 1
	}
	return n
}

// scheduler is a counting-semaphore worker pool with peak-concurrency
// instrumentation (the scheduler-bound regression test reads the peak).
type scheduler struct {
	slots  chan struct{}
	active atomic.Int64
	peak   atomic.Int64
}

func newScheduler(size int) *scheduler {
	if size < 1 {
		size = 1
	}
	return &scheduler{slots: make(chan struct{}, size)}
}

// size returns the concurrency bound.
func (s *scheduler) size() int { return cap(s.slots) }

// resetPeak clears the peak-concurrency watermark (test hook).
func (s *scheduler) resetPeak() { s.peak.Store(0) }

// peakConcurrency reports the highest number of simultaneously running
// tasks observed since the last resetPeak.
func (s *scheduler) peakConcurrency() int { return int(s.peak.Load()) }

// task is one schedulable leaf simulation with an a-priori cost estimate,
// used to order a batch shortest-first.
type task struct {
	// cost is a unitless size estimate (roughly proportional to simulated
	// I/O event count). Zero-cost tasks keep submission order.
	cost int64
	run  func()
}

// runAll executes every task and returns when all have finished, in
// submission order. See run for the scheduling contract.
func (s *scheduler) runAll(tasks []func()) {
	ts := make([]task, len(tasks))
	for i, fn := range tasks {
		ts[i] = task{run: fn}
	}
	s.run(ts)
}

// run executes every task and returns when all have finished. Tasks start
// shortest-first (stable on the cost estimate), so a ladder's 4096-rank
// rungs cannot head-of-line-block its cheap rungs behind a full pool. At
// most size() tasks run at once, enforced by the shared slot pool even
// across concurrent run calls. Ordering cannot change any measured value —
// every task is an independently seeded simulation — only when each starts.
// Tasks must be leaf work (they must not call run themselves): a task that
// waited on nested tasks while holding a slot could starve the pool.
func (s *scheduler) run(tasks []task) {
	if len(tasks) == 0 {
		return
	}
	ordered := make([]task, len(tasks))
	copy(ordered, tasks)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].cost < ordered[j].cost })
	workers := s.size()
	if workers > len(ordered) {
		workers = len(ordered)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ordered) {
					return
				}
				s.slots <- struct{}{}
				a := s.active.Add(1)
				for {
					p := s.peak.Load()
					if a <= p || s.peak.CompareAndSwap(p, a) {
						break
					}
				}
				ordered[i].run()
				s.active.Add(-1)
				<-s.slots
			}
		}()
	}
	wg.Wait()
}
