package harness

import (
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the bounded simulation scheduler behind every experiment
// engine in the package. A full-registry matrix is frameworks x workloads x
// block sizes x {untraced, traced} independent cluster simulations; before
// the scheduler, each layer fanned out a goroutine per element, so peak
// concurrency grew multiplicatively with the registries (~560 live cluster
// simulations for the built-in registry) and peak memory with it. Every
// simulation now runs as one leaf task on a shared worker pool sized
// min(GOMAXPROCS, simPoolCap), so peak concurrency is a hardware-shaped
// constant no matter how large the registries grow.
//
// Results are unaffected: every leaf task is an independently seeded
// simulation environment, so scheduling order cannot change any measured
// value — only how many simulations are live at once.

// simPoolCap caps the worker pool: beyond this, extra concurrent cluster
// simulations stop paying for their memory (each holds a full simulated
// testbed plus its trace buffers).
const simPoolCap = 16

// PoolSize reports the scheduler's concurrency bound:
// min(GOMAXPROCS, simPoolCap), floored at 1.
func PoolSize() int { return sched.size() }

// SetPoolMemBudget bounds the pool by memory as well as by slots: while the
// estimated heap footprint of running tasks would exceed budget bytes, new
// tasks wait — except that one task is always admitted, so the pool cannot
// deadlock and a budget smaller than any single simulation degrades to
// serial execution rather than failure. Zero (the default) means unlimited.
// The per-task footprint estimate is the largest heap growth observed across
// completed tasks, so the first wave runs unthrottled and the bound tightens
// as real measurements arrive.
func SetPoolMemBudget(bytes int64) { sched.setMemBudget(bytes) }

// PoolMemBudget reports the pool's memory budget in bytes (0 = unlimited).
func PoolMemBudget() int64 { return sched.memBudgetBytes() }

// ParseMemBudget parses a human-readable -pool-mem value: a decimal number
// with an optional B/KB/MB/GB/TB (or KiB/MiB/GiB/TiB) suffix, all binary
// powers of 1024. Empty and "0" mean unlimited.
func ParseMemBudget(s string) (int64, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, nil
	}
	upper := strings.ToUpper(t)
	shift := 0
	for _, u := range []struct {
		suffix string
		shift  int
	}{
		{"KIB", 10}, {"MIB", 20}, {"GIB", 30}, {"TIB", 40},
		{"KB", 10}, {"MB", 20}, {"GB", 30}, {"TB", 40}, {"B", 0},
	} {
		if strings.HasSuffix(upper, u.suffix) {
			upper = strings.TrimSuffix(upper, u.suffix)
			shift = u.shift
			break
		}
	}
	n, err := strconv.ParseFloat(strings.TrimSpace(upper), 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("harness: bad memory budget %q (want e.g. 2GB, 512MB)", s)
	}
	return int64(n * float64(int64(1)<<shift)), nil
}

// sched is the package-wide scheduler shared by Sweep, MatrixSweepOf,
// ScaleSweep, and the deep-dive experiments: concurrent engines draw from
// one slot pool, so the bound holds globally, not per call.
var sched = newScheduler(defaultPoolSize())

func defaultPoolSize() int {
	n := runtime.GOMAXPROCS(0)
	if n > simPoolCap {
		n = simPoolCap
	}
	if n < 1 {
		n = 1
	}
	return n
}

// scheduler is a counting-semaphore worker pool with peak-concurrency and
// heap high-water instrumentation (the scheduler-bound regression test reads
// the concurrency peak; SweepStats reports both in the stderr footer).
type scheduler struct {
	slots  chan struct{}
	active atomic.Int64
	peak   atomic.Int64

	// peakHeap is the highest HeapAlloc observed while tasks ran: sampled
	// at every task boundary and by a coarse ticker during run calls, so it
	// tracks mid-task highs, not just settle points.
	peakHeap atomic.Uint64
	// taskHW is the largest single-task heap growth observed (bytes): the
	// per-task footprint estimate driving memory-budget admission. With
	// concurrent tasks the boundary delta over-attributes neighbours'
	// allocations; that errs toward admitting less, which is the safe side.
	taskHW atomic.Int64

	// Memory-budget admission gate. memReserved totals the footprint
	// estimates of admitted-but-unfinished tasks; memRunning keeps the
	// always-admit-one guarantee deadlock-free. All guarded by memMu.
	memMu       sync.Mutex
	memCond     *sync.Cond
	memBudget   int64
	memReserved int64
	memRunning  int
}

func newScheduler(size int) *scheduler {
	if size < 1 {
		size = 1
	}
	s := &scheduler{slots: make(chan struct{}, size)}
	s.memCond = sync.NewCond(&s.memMu)
	return s
}

// size returns the concurrency bound.
func (s *scheduler) size() int { return cap(s.slots) }

// resetPeak clears the peak-concurrency and heap watermarks (test hook).
func (s *scheduler) resetPeak() {
	s.peak.Store(0)
	s.peakHeap.Store(0)
}

// peakConcurrency reports the highest number of simultaneously running
// tasks observed since the last resetPeak.
func (s *scheduler) peakConcurrency() int { return int(s.peak.Load()) }

// peakHeapBytes reports the heap high-water (HeapAlloc) observed while
// tasks ran since the last resetPeak.
func (s *scheduler) peakHeapBytes() uint64 { return s.peakHeap.Load() }

func (s *scheduler) setMemBudget(b int64) {
	s.memMu.Lock()
	s.memBudget = b
	s.memMu.Unlock()
	s.memCond.Broadcast()
}

func (s *scheduler) memBudgetBytes() int64 {
	s.memMu.Lock()
	defer s.memMu.Unlock()
	return s.memBudget
}

// sampleHeap reads the live heap size and folds it into the high-water mark.
func (s *scheduler) sampleHeap() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	for {
		p := s.peakHeap.Load()
		if ms.HeapAlloc <= p || s.peakHeap.CompareAndSwap(p, ms.HeapAlloc) {
			return ms.HeapAlloc
		}
	}
}

// memAcquire admits one task under the memory budget, blocking until its
// estimated footprint fits (or the pool is idle — one task always runs).
// It returns the bytes reserved, which memRelease must return verbatim.
func (s *scheduler) memAcquire() int64 {
	s.memMu.Lock()
	defer s.memMu.Unlock()
	est := s.taskHW.Load()
	for s.memBudget > 0 && s.memRunning > 0 && s.memReserved+est > s.memBudget {
		s.memCond.Wait()
		est = s.taskHW.Load()
	}
	s.memReserved += est
	s.memRunning++
	return est
}

func (s *scheduler) memRelease(reserved int64) {
	s.memMu.Lock()
	s.memReserved -= reserved
	s.memRunning--
	s.memMu.Unlock()
	s.memCond.Broadcast()
}

// noteTaskGrowth folds one task's boundary heap delta into the per-task
// footprint estimate (monotone max).
func (s *scheduler) noteTaskGrowth(growth int64) {
	for {
		p := s.taskHW.Load()
		if growth <= p || s.taskHW.CompareAndSwap(p, growth) {
			return
		}
	}
}

// task is one schedulable leaf simulation with an a-priori cost estimate,
// used to order a batch shortest-first.
type task struct {
	// cost is a unitless size estimate (roughly proportional to simulated
	// I/O event count). Zero-cost tasks keep submission order.
	cost int64
	run  func()
}

// runAll executes every task and returns when all have finished, in
// submission order. See run for the scheduling contract.
func (s *scheduler) runAll(tasks []func()) {
	ts := make([]task, len(tasks))
	for i, fn := range tasks {
		ts[i] = task{run: fn}
	}
	s.run(ts)
}

// run executes every task and returns when all have finished. Tasks start
// shortest-first (stable on the cost estimate), so a ladder's 4096-rank
// rungs cannot head-of-line-block its cheap rungs behind a full pool. At
// most size() tasks run at once, enforced by the shared slot pool even
// across concurrent run calls. Ordering cannot change any measured value —
// every task is an independently seeded simulation — only when each starts.
// Tasks must be leaf work (they must not call run themselves): a task that
// waited on nested tasks while holding a slot could starve the pool.
func (s *scheduler) run(tasks []task) {
	if len(tasks) == 0 {
		return
	}
	ordered := make([]task, len(tasks))
	copy(ordered, tasks)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].cost < ordered[j].cost })
	workers := s.size()
	if workers > len(ordered) {
		workers = len(ordered)
	}
	// Coarse heap sampler for the duration of this call: task-boundary
	// samples alone would miss mid-task highs (a simulation's trace buffers
	// peak before summarisation frees them). Stats only — never results —
	// so the ticker's nondeterminism cannot touch golden output.
	stopSampler := make(chan struct{})
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	go func() {
		defer samplerWG.Done()
		t := time.NewTicker(20 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stopSampler:
				return
			case <-t.C:
				s.sampleHeap()
			}
		}
	}()
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ordered) {
					return
				}
				s.slots <- struct{}{}
				reserved := s.memAcquire()
				a := s.active.Add(1)
				for {
					p := s.peak.Load()
					if a <= p || s.peak.CompareAndSwap(p, a) {
						break
					}
				}
				h0 := s.sampleHeap()
				ordered[i].run()
				h1 := s.sampleHeap()
				s.noteTaskGrowth(int64(h1) - int64(h0))
				s.active.Add(-1)
				s.memRelease(reserved)
				<-s.slots
			}
		}()
	}
	wg.Wait()
	close(stopSampler)
	samplerWG.Wait()
}
