package harness

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"iotaxo/internal/framework"
	"iotaxo/internal/workload"
)

// --- scheduler ---

func TestSchedulerBoundsConcurrency(t *testing.T) {
	s := newScheduler(3)
	var ran atomic.Int64
	tasks := make([]func(), 20)
	for i := range tasks {
		tasks[i] = func() {
			time.Sleep(time.Millisecond)
			ran.Add(1)
		}
	}
	s.runAll(tasks)
	if got := ran.Load(); got != 20 {
		t.Fatalf("ran %d tasks, want 20", got)
	}
	if peak := s.peakConcurrency(); peak < 1 || peak > 3 {
		t.Fatalf("peak concurrency %d, want within [1, 3]", peak)
	}
}

// TestSchedulerSharedBoundAcrossCallers verifies the slot pool is a global
// bound: two concurrent runAll calls together never exceed the size.
func TestSchedulerSharedBoundAcrossCallers(t *testing.T) {
	s := newScheduler(2)
	mk := func() []func() {
		tasks := make([]func(), 8)
		for i := range tasks {
			tasks[i] = func() { time.Sleep(time.Millisecond) }
		}
		return tasks
	}
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.runAll(mk())
		}()
	}
	wg.Wait()
	if peak := s.peakConcurrency(); peak > 2 {
		t.Fatalf("peak concurrency %d across concurrent callers, want <= 2", peak)
	}
}

func TestSchedulerEmptyAndZeroSize(t *testing.T) {
	newScheduler(0).runAll(nil) // must not hang or panic
	s := newScheduler(-1)
	if s.size() != 1 {
		t.Fatalf("size = %d, want floor 1", s.size())
	}
}

// TestSchedulerMemBudgetSerializes pins the memory-sized pool: once the
// per-task footprint estimate exists, a budget that fits only one task at a
// time must degrade a wide pool to serial execution — never deadlock, never
// exceed the budget with a second admission.
func TestSchedulerMemBudgetSerializes(t *testing.T) {
	s := newScheduler(4)
	s.setMemBudget(100)
	s.noteTaskGrowth(80) // one task's estimated footprint: only one fits
	var ran atomic.Int64
	tasks := make([]func(), 12)
	for i := range tasks {
		tasks[i] = func() {
			time.Sleep(time.Millisecond)
			ran.Add(1)
		}
	}
	s.runAll(tasks)
	if got := ran.Load(); got != 12 {
		t.Fatalf("ran %d tasks, want 12", got)
	}
	if peak := s.peakConcurrency(); peak != 1 {
		t.Fatalf("peak concurrency %d under one-task budget, want 1", peak)
	}
	// A budget with room for the whole pool re-widens it (sized off the
	// live estimate, which the instrumented phase above has updated with
	// real measurements).
	s.resetPeak()
	s.setMemBudget(s.taskHW.Load()*int64(s.size()) + 1)
	s.runAll(tasks)
	if peak := s.peakConcurrency(); peak < 2 {
		t.Fatalf("peak concurrency %d under ample budget, want > 1", peak)
	}
}

// TestSchedulerColdPoolUnthrottled: with no completed task to estimate
// from, a budget must not serialize the first wave (the estimate is zero).
func TestSchedulerColdPoolUnthrottled(t *testing.T) {
	s := newScheduler(4)
	s.setMemBudget(1)
	var wg sync.WaitGroup
	wg.Add(1)
	gate := make(chan struct{})
	tasks := []func(){
		func() { wg.Done(); <-gate },
		func() { wg.Wait(); close(gate) }, // deadlocks unless both admitted
		func() {}, func() {},
	}
	done := make(chan struct{})
	go func() { s.runAll(tasks); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("cold pool serialized under budget: concurrent tasks deadlocked")
	}
}

func TestSchedulerHeapWatermark(t *testing.T) {
	s := newScheduler(2)
	s.resetPeak()
	var sink [][]byte
	s.runAll([]func(){func() {
		sink = append(sink, make([]byte, 8<<20))
	}})
	if got := s.peakHeapBytes(); got < 8<<20 {
		t.Fatalf("heap watermark %d after an 8 MiB allocation, want >= 8 MiB", got)
	}
	_ = sink
}

func TestParseMemBudget(t *testing.T) {
	for _, c := range []struct {
		in   string
		want int64
		ok   bool
	}{
		{"", 0, true},
		{"0", 0, true},
		{"512MB", 512 << 20, true},
		{"512MiB", 512 << 20, true},
		{"2GB", 2 << 30, true},
		{"2gb", 2 << 30, true},
		{" 1.5 GB ", 3 << 29, true},
		{"64KB", 64 << 10, true},
		{"1TB", 1 << 40, true},
		{"123", 123, true},
		{"123B", 123, true},
		{"-1GB", 0, false},
		{"lots", 0, false},
	} {
		got, err := ParseMemBudget(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Errorf("ParseMemBudget(%q) = %d, %v; want %d, ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
}

func TestSweepStatsFooterRendersMemory(t *testing.T) {
	s := SweepStats{PeakHeapBytes: 5 << 20}
	if f := s.Footer(); !strings.Contains(f, "heap peak 5.0 MiB") {
		t.Fatalf("footer missing heap peak: %q", f)
	}
	s.MemBudget = 2 << 30
	if f := s.Footer(); !strings.Contains(f, "of 2.0 GiB budget") {
		t.Fatalf("footer missing budget: %q", f)
	}
}

// TestMatrixSweepNeverExceedsPool is the scheduler-bound regression test
// the bugfix exists for: a full-registry matrix sweep used to launch one
// goroutine (and one live cluster simulation) per framework x workload x
// block x {traced, untraced}; now the instrumented peak must stay at or
// under the shared pool size.
func TestMatrixSweepNeverExceedsPool(t *testing.T) {
	sched.resetPeak()
	if _, err := MatrixSweep(MatrixSmokeOptions()); err != nil {
		t.Fatal(err)
	}
	peak := sched.peakConcurrency()
	if peak < 1 {
		t.Fatal("scheduler saw no tasks")
	}
	if peak > PoolSize() {
		t.Fatalf("peak concurrent simulations %d exceeded pool size %d", peak, PoolSize())
	}
}

func TestScaleSweepNeverExceedsPool(t *testing.T) {
	o := ScaleSmokeOptions()
	sched.resetPeak()
	if _, err := ScaleSweep(framework.MustLookup("Tracefs"), workload.PatternWorkload(workload.N1Strided), o); err != nil {
		t.Fatal(err)
	}
	if peak := sched.peakConcurrency(); peak < 1 || peak > PoolSize() {
		t.Fatalf("peak concurrent simulations %d, want within [1, %d]", peak, PoolSize())
	}
}

// --- scaling sweep ---

func TestParseScaleMode(t *testing.T) {
	for _, c := range []struct {
		in   string
		want ScaleMode
		ok   bool
	}{
		{"weak", WeakScaling, true},
		{"Strong", StrongScaling, true},
		{" strong ", StrongScaling, true},
		{"", WeakScaling, true},
		{"linear", WeakScaling, false},
	} {
		got, ok := ParseScaleMode(c.in)
		if got != c.want || ok != c.ok {
			t.Errorf("ParseScaleMode(%q) = %v, %v", c.in, got, ok)
		}
	}
	if WeakScaling.String() != "weak" || StrongScaling.String() != "strong" {
		t.Fatal("ScaleMode.String mismatch")
	}
}

func TestRankLadder(t *testing.T) {
	o := Options{MaxRanks: 512}
	want := []int{4, 8, 16, 32, 64, 128, 256, 512}
	got := o.rankLadder()
	if len(got) != len(want) {
		t.Fatalf("ladder = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ladder = %v, want %v", got, want)
		}
	}
	// A top rung off the doubling grid is still included.
	o.MaxRanks = 48
	got = o.rankLadder()
	if got[len(got)-1] != 48 || got[len(got)-2] != 32 {
		t.Fatalf("off-grid ladder = %v", got)
	}
	// Zero defaults.
	if top := (Options{}).rankLadder(); top[len(top)-1] != DefaultMaxRanks {
		t.Fatalf("default ladder top = %d", top[len(top)-1])
	}
}

func TestScaleSweepWeakShape(t *testing.T) {
	o := ScaleSmokeOptions()
	res, err := ScaleSweep(framework.MustLookup("LANL-Trace"), workload.PatternWorkload(workload.N1Strided), o)
	if err != nil {
		t.Fatal(err)
	}
	ladder := o.rankLadder()
	if len(res.Points) != len(ladder) {
		t.Fatalf("points = %d, want %d", len(res.Points), len(ladder))
	}
	for i, p := range res.Points {
		if p.Ranks != ladder[i] {
			t.Fatalf("point %d ranks = %d, want %d", i, p.Ranks, ladder[i])
		}
		// Weak scaling: per-rank volume is constant along the ladder.
		if p.PerRankBytes != o.PerRankBytes {
			t.Fatalf("weak per-rank = %d at %d ranks, want %d", p.PerRankBytes, p.Ranks, o.PerRankBytes)
		}
		// ltrace-style interposition must cost elapsed time at every rung.
		if p.ElapsedOvhFrac <= 0 {
			t.Fatalf("no overhead at %d ranks", p.Ranks)
		}
		if p.TraceEvents == 0 {
			t.Fatalf("no events traced at %d ranks", p.Ranks)
		}
	}
	out := res.Format()
	for _, want := range []string{"weak scaling", "ranks", "elapsed ovh %", "LANL-Trace"} {
		if !strings.Contains(out, want) {
			t.Fatalf("format missing %q:\n%s", want, out)
		}
	}
	csv := res.CSV()
	if !strings.HasPrefix(csv, "ranks,") || strings.Count(csv, "\n") != len(ladder)+1 {
		t.Fatalf("csv:\n%s", csv)
	}
}

func TestScaleSweepStrongHalvesPerRank(t *testing.T) {
	o := ScaleSmokeOptions()
	o.ScaleMode = StrongScaling
	res, err := ScaleSweep(framework.MustLookup("Tracefs"), workload.PatternWorkload(workload.NToN), o)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Points); i++ {
		prev, cur := res.Points[i-1], res.Points[i]
		if cur.Ranks == prev.Ranks*2 && cur.PerRankBytes > prev.PerRankBytes {
			t.Fatalf("strong scaling per-rank grew: %d ranks = %d bytes, %d ranks = %d bytes",
				prev.Ranks, prev.PerRankBytes, cur.Ranks, cur.PerRankBytes)
		}
	}
	if !strings.Contains(res.Format(), "strong scaling") {
		t.Fatal("format missing mode")
	}
}

// TestScaleSweepDeterministic runs the same sweep twice and requires
// byte-identical rendering: rungs run concurrently on the scheduler, so
// each must be an independently seeded simulation with no shared state.
func TestScaleSweepDeterministic(t *testing.T) {
	o := ScaleSmokeOptions()
	run := func() string {
		res, err := ScaleSweep(framework.MustLookup("LANL-Trace"), workload.PatternWorkload(workload.N1Strided), o)
		if err != nil {
			t.Fatal(err)
		}
		return res.Format()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("scale sweep not deterministic:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}

// TestScaleSweepDeterministic4096 is the batched-wake determinism test at
// ladder scale: two identical single-framework sweeps to a 4096-rank top
// rung, each against a fresh cache, must render byte-identically. The
// batched drain events (Mailbox.Put, Signal.Fire, WaitGroup.Add-to-zero)
// and the event-chain server paths carry no hidden iteration-order or
// timing dependence, however many waiters one instant accumulates at 4096
// ranks. Under -race (CI's determinism step) or -short the top rung drops
// to 1024 so the race-detector run stays affordable; the plain `go test`
// run exercises the full 4096 ladder.
func TestScaleSweepDeterministic4096(t *testing.T) {
	o := ScaleOptions()
	o.MaxRanks = 4096
	o.PerRankBytes = 256 << 10
	if raceEnabled || testing.Short() {
		o.MaxRanks = 1024
	}
	run := func() string {
		res, err := ScaleSweep(framework.MustLookup("LANL-Trace"), workload.PatternWorkload(workload.N1Strided), o)
		if err != nil {
			t.Fatal(err)
		}
		return res.Format()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("4096-rank scale sweep not deterministic:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}

func TestScaleMatrixCoversRegistry(t *testing.T) {
	o := ScaleSmokeOptions()
	o.MaxRanks = 8
	o.Workloads = []workload.Workload{workload.PatternWorkload(workload.N1Strided)}
	m, err := ScaleMatrixSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Series) != len(framework.Names()) {
		t.Fatalf("series = %d, want %d", len(m.Series), len(framework.Names()))
	}
	for i, name := range framework.Names() {
		if m.Series[i].Framework != name {
			t.Fatalf("series %d framework = %q, want %q", i, m.Series[i].Framework, name)
		}
		if len(m.Series[i].Points) != len(o.rankLadder()) {
			t.Fatalf("series %d has %d points", i, len(m.Series[i].Points))
		}
	}
	out := m.Format()
	if !strings.Contains(out, "scaling matrix") || strings.Count(out, "# scale:") != len(m.Series) {
		t.Fatalf("matrix format:\n%s", out)
	}
}

func TestStrongScaleFloorsAtOneBlock(t *testing.T) {
	sc := workload.StrongScale(64<<10, 1<<20, 1024)
	if sc.Objects() != 1 {
		t.Fatalf("objects = %d, want floor 1", sc.Objects())
	}
	if got := sc.TotalBytes(1024); got != 1024*(64<<10) {
		t.Fatalf("realized total = %d", got)
	}
	weak := workload.WeakScale(64<<10, 1<<20)
	if weak.Objects() != 16 || weak.TotalBytes(8) != 8<<20 {
		t.Fatalf("weak scale: objects=%d total=%d", weak.Objects(), weak.TotalBytes(8))
	}
}
