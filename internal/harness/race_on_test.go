//go:build race

package harness

// raceEnabled reports that this test binary was built with -race: the
// ladder-scale determinism test caps its top rung accordingly, since the
// race detector multiplies a 4096-rank sweep's wall time past CI budgets.
const raceEnabled = true
