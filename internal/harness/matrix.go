package harness

import (
	"fmt"
	"strings"
	"sync"

	"iotaxo/internal/core"
	"iotaxo/internal/framework"
	"iotaxo/internal/workload"
)

// This file is the framework x workload matrix engine: MatrixSweep runs
// every registered framework against every workload pattern through the
// generic Sweep, then folds the measured overheads (and replay fidelity,
// where a framework measures it) into each framework's classification.
// There are no framework-specific branches here: adding a framework to the
// registry adds a row to the matrix and a column to the measured Table 2.

// MatrixPatterns returns the workload axis of the matrix: the paper's three
// parallel I/O access patterns.
func MatrixPatterns() []workload.Pattern {
	return []workload.Pattern{workload.N1Strided, workload.N1NonStrided, workload.NToN}
}

// MatrixCell is one framework x pattern sweep.
type MatrixCell struct {
	Framework string
	Pattern   workload.Pattern
	Points    []BandwidthPoint
}

// ElapsedOvhRange returns the cell's elapsed-overhead envelope across block
// sizes.
func (c MatrixCell) ElapsedOvhRange() (min, max float64) {
	min, max = 1e9, -1e9
	for _, p := range c.Points {
		if p.ElapsedOvhFrac < min {
			min = p.ElapsedOvhFrac
		}
		if p.ElapsedOvhFrac > max {
			max = p.ElapsedOvhFrac
		}
	}
	return min, max
}

// MatrixResult is the full framework x pattern overhead matrix.
type MatrixResult struct {
	Patterns []workload.Pattern
	// Cells is row-major: frameworks (in registry order) x Patterns.
	Cells []MatrixCell

	fws []framework.Framework
}

// MatrixSweep measures every registered framework on every workload pattern
// through the generic sweep engine.
func MatrixSweep(o Options) (MatrixResult, error) {
	return MatrixSweepOf(o, framework.All()...)
}

// MatrixSweepOf is MatrixSweep restricted to the given frameworks (e.g. one
// framework for `iotaxo -table card -measured`). Cells run concurrently;
// every cell is a deterministic, independently seeded simulation.
func MatrixSweepOf(o Options, fws ...framework.Framework) (MatrixResult, error) {
	patterns := MatrixPatterns()
	m := MatrixResult{
		Patterns: patterns,
		Cells:    make([]MatrixCell, len(fws)*len(patterns)),
		fws:      fws,
	}
	errs := make([]error, len(m.Cells))
	var wg sync.WaitGroup
	for fi, fw := range fws {
		for pi, pattern := range patterns {
			idx, fw, pattern := fi*len(patterns)+pi, fw, pattern
			wg.Add(1)
			go func() {
				defer wg.Done()
				fig, err := o.sweep("matrix", fmt.Sprintf("%s on %s", fw.Name(), pattern), fw, pattern)
				if err != nil {
					errs[idx] = err
					return
				}
				m.Cells[idx] = MatrixCell{Framework: fw.Name(), Pattern: pattern, Points: fig.Points}
			}()
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return m, err
		}
	}
	return m, nil
}

// FrameworkNames returns the matrix's row order.
func (m MatrixResult) FrameworkNames() []string {
	out := make([]string, len(m.fws))
	for i, fw := range m.fws {
		out[i] = fw.Name()
	}
	return out
}

// row returns framework fi's cells.
func (m MatrixResult) row(fi int) []MatrixCell {
	return m.Cells[fi*len(m.Patterns) : (fi+1)*len(m.Patterns)]
}

// Classifications returns each swept framework's classification with the
// measured elapsed-overhead envelope — and replay fidelity, where the
// framework measured it — folded in. This is the one generic path from
// measurement to the taxonomy's quantitative axes.
//
// The envelope spans workload patterns and block sizes for each framework
// *as registered* (its default configuration). Configuration frontiers —
// Tracefs's feature ladder, //TRACE's sampling levels (where zero sampling
// drives overhead toward the paper's ~0% floor) — are the deep-dive
// experiments' job: TracefsExperiment and ParallelTraceExperiment.
func (m MatrixResult) Classifications() []*core.Classification {
	out := make([]*core.Classification, 0, len(m.fws))
	for fi, fw := range m.fws {
		c := fw.Classification()
		min, max := 1e9, -1e9
		bestReplay, replayed := 1e9, false
		points := 0
		for _, cell := range m.row(fi) {
			for _, p := range cell.Points {
				points++
				if p.ElapsedOvhFrac < min {
					min = p.ElapsedOvhFrac
				}
				if p.ElapsedOvhFrac > max {
					max = p.ElapsedOvhFrac
				}
				if p.ReplayMeasured {
					replayed = true
					if p.ReplayErr < bestReplay {
						bestReplay = p.ReplayErr
					}
				}
			}
		}
		if points > 0 {
			c.ElapsedOverhead = core.OverheadReport{
				Measured:    true,
				ElapsedMin:  min,
				ElapsedMax:  max,
				Description: "measured, this repository",
			}
		}
		if replayed {
			c.ReplayFidelity = core.FidelityReport{Supported: true, ErrorFrac: bestReplay}
		}
		out = append(out, c)
	}
	return out
}

// RenderComparison renders the measured classification summary (Table 2
// extended to every swept framework).
func (m MatrixResult) RenderComparison() string {
	return core.RenderComparison(m.Classifications()...)
}

// Format renders the overhead matrix: one row per framework, one column per
// pattern, each cell the elapsed-overhead range across block sizes.
func (m MatrixResult) Format() string {
	var b strings.Builder
	b.WriteString("# framework x workload elapsed-overhead matrix (min-max % across block sizes)\n")
	nameW := len("framework")
	for _, fw := range m.fws {
		if n := len(fw.Name()); n > nameW {
			nameW = n
		}
	}
	fmt.Fprintf(&b, "%-*s", nameW, "framework")
	for _, p := range m.Patterns {
		fmt.Fprintf(&b, " %18s", p)
	}
	fmt.Fprintf(&b, " %8s %6s\n", "events", "runs")
	for fi, fw := range m.fws {
		fmt.Fprintf(&b, "%-*s", nameW, fw.Name())
		var events int64
		runs := 0
		for _, cell := range m.row(fi) {
			min, max := cell.ElapsedOvhRange()
			fmt.Fprintf(&b, " %17s%%", fmt.Sprintf("%.1f - %.1f", min*100, max*100))
			for _, p := range cell.Points {
				events += p.TraceEvents
				if p.Runs > runs {
					runs = p.Runs
				}
			}
		}
		fmt.Fprintf(&b, " %8d %6d\n", events, runs)
	}
	return b.String()
}
