package harness

import (
	"fmt"
	"strings"

	"iotaxo/internal/core"
	"iotaxo/internal/framework"
	"iotaxo/internal/workload"
)

// This file is the framework x workload matrix engine: MatrixSweep runs
// every registered framework against every registered workload through the
// generic Sweep, then folds the measured overheads (and replay fidelity,
// where a framework measures it) into each framework's classification.
// There are no framework- or workload-specific branches here: registering
// a framework adds a row, registering a workload adds a column.

// MatrixWorkloads returns the default workload axis of the matrix: every
// registered workload, in registry order.
func MatrixWorkloads() []workload.Workload {
	return workload.All()
}

// matrixWorkloads is the options' workload axis: the explicit restriction
// when set, the full registry otherwise.
func (o Options) matrixWorkloads() []workload.Workload {
	if len(o.Workloads) > 0 {
		return o.Workloads
	}
	return MatrixWorkloads()
}

// MatrixCell is one framework x workload sweep.
type MatrixCell struct {
	Framework string
	Workload  string
	Points    []BandwidthPoint
}

// ElapsedOvhRange returns the cell's elapsed-overhead envelope across block
// sizes. A cell with no points reports the zero (unmeasured) envelope.
func (c MatrixCell) ElapsedOvhRange() (min, max float64) {
	return rangeOver(len(c.Points), func(i int) float64 { return c.Points[i].ElapsedOvhFrac })
}

// rangeOver folds n indexed values into their [lo, hi] envelope: the shared
// min/max fold behind every overhead-range accessor. An empty set reports
// the zero (unmeasured) envelope, never a sentinel.
func rangeOver(n int, v func(int) float64) (lo, hi float64) {
	for i := 0; i < n; i++ {
		x := v(i)
		if i == 0 {
			lo, hi = x, x
			continue
		}
		lo, hi = min(lo, x), max(hi, x)
	}
	return lo, hi
}

// MatrixResult is the full framework x workload overhead matrix.
type MatrixResult struct {
	// Workloads is the column axis, in sweep order.
	Workloads []workload.Workload
	// Cells is row-major: frameworks (in registry order) x Workloads.
	Cells []MatrixCell
	// Stats is the sweep's cache/scheduler accounting. It is reported
	// beside the measurements (CLI stderr footer), never inside Format/CSV:
	// cold and warm runs must render byte-identically.
	Stats SweepStats

	fws []framework.Framework
}

// MatrixSweep measures every registered framework on every registered
// workload through the generic sweep engine.
func MatrixSweep(o Options) (MatrixResult, error) {
	return MatrixSweepOf(o, framework.All()...)
}

// MatrixSweepOf is MatrixSweep restricted to the given frameworks (e.g. one
// framework for `iotaxo -table card -measured`); Options.Workloads
// restricts the workload axis the same way. Every cell's runs are staged
// into one task set for the shared bounded scheduler, so peak concurrency
// stays at PoolSize no matter how many cells the registries imply; every
// run is a deterministic, independently seeded simulation. The task set
// shares each workload x block untraced baseline across all framework rows
// and memoizes leaves through Options.Cache, so a cold full-registry matrix
// executes one untraced run per cell-column and a warm repeat executes
// nothing — with byte-identical output either way.
func MatrixSweepOf(o Options, fws ...framework.Framework) (MatrixResult, error) {
	workloads := o.matrixWorkloads()
	m := MatrixResult{
		Workloads: workloads,
		Cells:     make([]MatrixCell, len(fws)*len(workloads)),
		fws:       fws,
	}
	cache := o.cacheOrEphemeral()
	before := cache.Stats()
	ts := newTaskSet(cache)
	runs := make([]*sweepRuns, len(m.Cells))
	for fi, fw := range fws {
		for wi, w := range workloads {
			idx := fi*len(workloads) + wi
			runs[idx] = newSweepRuns(len(o.BlockSizes))
			o.addSweepTasks(ts, fw, w, runs[idx])
		}
	}
	ts.run()
	m.Stats = sweepStatsSince(cache, before)
	for fi, fw := range fws {
		for wi, w := range workloads {
			idx := fi*len(workloads) + wi
			fig := FigureResult{Points: make([]BandwidthPoint, len(o.BlockSizes))}
			if err := o.assemble(&fig, runs[idx]); err != nil {
				return m, err
			}
			m.Cells[idx] = MatrixCell{Framework: fw.Name(), Workload: w.Name(), Points: fig.Points}
		}
	}
	return m, nil
}

// FrameworkNames returns the matrix's row order.
func (m MatrixResult) FrameworkNames() []string {
	out := make([]string, len(m.fws))
	for i, fw := range m.fws {
		out[i] = fw.Name()
	}
	return out
}

// WorkloadNames returns the matrix's column order.
func (m MatrixResult) WorkloadNames() []string {
	out := make([]string, len(m.Workloads))
	for i, w := range m.Workloads {
		out[i] = w.Name()
	}
	return out
}

// row returns framework fi's cells.
func (m MatrixResult) row(fi int) []MatrixCell {
	return m.Cells[fi*len(m.Workloads) : (fi+1)*len(m.Workloads)]
}

// Classifications returns each swept framework's classification with the
// measured elapsed-overhead envelope — and replay fidelity, where the
// framework measured it — folded in. This is the one generic path from
// measurement to the taxonomy's quantitative axes. A framework with no
// measured points keeps its unmeasured (zero-envelope) overhead report.
//
// The envelope spans workloads and block sizes for each framework *as
// registered* (its default configuration). Configuration frontiers —
// Tracefs's feature ladder, //TRACE's sampling levels (where zero sampling
// drives overhead toward the paper's ~0% floor) — are the deep-dive
// experiments' job: TracefsExperiment and ParallelTraceExperiment.
func (m MatrixResult) Classifications() []*core.Classification {
	out := make([]*core.Classification, 0, len(m.fws))
	for fi, fw := range m.fws {
		c := fw.Classification()
		bestReplay, replayed := 0.0, false
		var ovh []float64
		for _, cell := range m.row(fi) {
			for _, p := range cell.Points {
				ovh = append(ovh, p.ElapsedOvhFrac)
				if p.ReplayMeasured {
					if !replayed || p.ReplayErr < bestReplay {
						bestReplay = p.ReplayErr
					}
					replayed = true
				}
			}
		}
		min, max := rangeOver(len(ovh), func(i int) float64 { return ovh[i] })
		if len(ovh) > 0 {
			c.ElapsedOverhead = core.OverheadReport{
				Measured:    true,
				ElapsedMin:  min,
				ElapsedMax:  max,
				Description: "measured, this repository",
			}
		}
		if replayed {
			c.ReplayFidelity = core.FidelityReport{Supported: true, ErrorFrac: bestReplay}
		}
		out = append(out, c)
	}
	return out
}

// RenderComparison renders the measured classification summary (Table 2
// extended to every swept framework).
func (m MatrixResult) RenderComparison() string {
	return core.RenderComparison(m.Classifications()...)
}

// Format renders the overhead matrix: one row per framework, one column per
// workload, each cell the elapsed-overhead range across block sizes.
func (m MatrixResult) Format() string {
	var b strings.Builder
	b.WriteString("# framework x workload elapsed-overhead matrix (min-max % across block sizes)\n")
	nameW := len("framework")
	for _, fw := range m.fws {
		if n := len(fw.Name()); n > nameW {
			nameW = n
		}
	}
	colW := 18
	for _, w := range m.Workloads {
		if n := len(w.Name()); n > colW {
			colW = n
		}
	}
	fmt.Fprintf(&b, "%-*s", nameW, "framework")
	for _, w := range m.Workloads {
		fmt.Fprintf(&b, " %*s", colW, w.Name())
	}
	fmt.Fprintf(&b, " %8s %6s\n", "events", "runs")
	for fi, fw := range m.fws {
		fmt.Fprintf(&b, "%-*s", nameW, fw.Name())
		var events int64
		runs := 0
		for _, cell := range m.row(fi) {
			min, max := cell.ElapsedOvhRange()
			fmt.Fprintf(&b, " %*s%%", colW-1, fmt.Sprintf("%.1f - %.1f", min*100, max*100))
			for _, p := range cell.Points {
				events += p.TraceEvents
				if p.Runs > runs {
					runs = p.Runs
				}
			}
		}
		fmt.Fprintf(&b, " %8d %6d\n", events, runs)
	}
	return b.String()
}
