package harness

import (
	"fmt"
	"strings"

	"iotaxo/internal/workload"
)

// CollectiveRow compares independent and collective writes at one block
// size.
type CollectiveRow struct {
	Block             int64
	IndependentMBps   float64
	CollectiveMBps    float64
	SpeedupCollective float64
}

// CollectiveResult is the two-phase-I/O ablation: the optimization the
// paper-era MPI-IO stacks (ROMIO in mpich 1.2.6) applied to exactly the
// strided small-block pattern the paper calls "most demanding on the
// parallel I/O file system".
type CollectiveResult struct {
	Rows []CollectiveRow
}

// CollectiveAblation sweeps block sizes for the N-1 strided pattern,
// measuring independent vs collective write bandwidth. The sweep covers
// sub-stripe sizes: that is where two-phase I/O wins (merging sub-stripe
// fragments into full stripe units avoids the RAID-5 read-modify-write),
// while at large contiguous blocks the extra data shuffle makes it lose —
// the crossover ROMIO's heuristics exist to navigate.
func CollectiveAblation(o Options) CollectiveResult {
	blocks := []int64{4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10, 256 << 10}
	inds := make([]workload.Result, len(blocks))
	colls := make([]workload.Result, len(blocks))
	tasks := make([]func(), 0, 2*len(blocks))
	for i, block := range blocks {
		i := i
		params := o.scaleFor(block).MPIIOParams(workload.N1Strided)
		collParams := params
		collParams.Collective = true
		tasks = append(tasks,
			func() { inds[i] = workload.Run(o.newCluster().World, params) },
			func() { colls[i] = workload.Run(o.newCluster().World, collParams) })
	}
	sched.runAll(tasks)
	res := CollectiveResult{Rows: make([]CollectiveRow, len(blocks))}
	for i, block := range blocks {
		row := CollectiveRow{
			Block:           block,
			IndependentMBps: inds[i].BandwidthBps() / 1e6,
			CollectiveMBps:  colls[i].BandwidthBps() / 1e6,
		}
		if inds[i].BandwidthBps() > 0 {
			row.SpeedupCollective = colls[i].BandwidthBps() / inds[i].BandwidthBps()
		}
		res.Rows[i] = row
	}
	return res
}

// Format renders the ablation table.
func (r CollectiveResult) Format() string {
	var b strings.Builder
	b.WriteString("# Collective (two-phase) vs independent I/O, N-1 strided\n")
	fmt.Fprintf(&b, "%10s %16s %16s %10s\n", "block(KB)", "independent MB/s", "collective MB/s", "speedup")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%10d %16.1f %16.1f %9.2fx\n",
			row.Block>>10, row.IndependentMBps, row.CollectiveMBps, row.SpeedupCollective)
	}
	return b.String()
}
