package harness

import (
	"runtime"
	"testing"

	"iotaxo/internal/framework"
	"iotaxo/internal/sim"
	"iotaxo/internal/workload"
)

// watermark samples the runtime goroutine population and the simulation's
// live process count on a virtual-time tick for the whole run, recording the
// peaks. The tick re-arms itself only while other events remain queued, so
// it never keeps the event loop alive on its own.
func watermark(env *sim.Env, peakGoroutines, peakLive *int) {
	watermarkEvery(env, 50*sim.Microsecond, peakGoroutines, peakLive)
}

// watermarkEvery is watermark with a chosen sampling period: the 65536-rank
// run uses a coarser tick so sampling does not dominate its wall time.
func watermarkEvery(env *sim.Env, period sim.Duration, peakGoroutines, peakLive *int) {
	baseline := runtime.NumGoroutine()
	var tick func()
	tick = func() {
		if g := runtime.NumGoroutine() - baseline; g > *peakGoroutines {
			*peakGoroutines = g
		}
		if l := env.LiveProcs(); l > *peakLive {
			*peakLive = l
		}
		if env.Pending() > 0 {
			env.After(period, tick)
		}
	}
	env.After(0, tick)
}

// TestGoroutineWatermark512Ranks is the scalability regression test behind
// the eventized network path: during a full 512-rank matrix cell (untraced
// run plus a traced LANL-Trace run at the scaling ladder's default top
// rung), live goroutines must stay bounded by the simulated process count —
// O(procs), not O(messages) — and message delivery must spawn no
// net.courier process at all. The retired goroutine-per-message engine
// allocated one goroutine and one resume channel per in-flight message,
// which is what kept the 4096-rank ladder out of reach.
func TestGoroutineWatermark512Ranks(t *testing.T) {
	if testing.Short() {
		t.Skip("512-rank watermark run skipped in -short mode")
	}
	const ranks = 512
	o := ScaleOptions()
	o.Ranks = ranks
	w := workload.PatternWorkload(workload.N1Strided)
	sc := o.scaleRung(ranks)

	// The bound: every simulated process owns one goroutine, so the
	// runtime population above baseline may exceed the live-proc peak only
	// by a small constant (test harness, GC workers). The proc population
	// itself must be a small multiple of ranks + servers, however many
	// messages are in flight (~16 objects x several PFS round trips per
	// rank here).
	const procSlack = 64
	procBound := 4*ranks + 256

	// Untraced half of the matrix cell.
	{
		c := o.newCluster()
		var peakG, peakLive int
		watermark(c.Env, &peakG, &peakLive)
		res := w.Run(c.World, sc)
		if res.Ranks != ranks {
			t.Fatalf("untraced run covered %d ranks, want %d", res.Ranks, ranks)
		}
		verifyWatermark(t, "untraced", c.Env, peakG, peakLive, procBound, procSlack)
	}

	// Traced half: LANL-Trace, the costliest (most message-intensive)
	// single-run framework.
	{
		c := o.newCluster()
		var peakG, peakLive int
		watermark(c.Env, &peakG, &peakLive)
		rep, err := framework.MustLookup("LANL-Trace").Attach(c).Run(w.Spec(sc))
		if err != nil {
			t.Fatal(err)
		}
		if rep.TraceEvents == 0 {
			t.Fatal("traced run produced no events")
		}
		verifyWatermark(t, "traced", c.Env, peakG, peakLive, procBound, procSlack)
	}
}

// TestSpawnGuardMatrixCell is the spawn-regression guard: a full matrix
// cell (untraced baseline plus a traced LANL-Trace run) must spawn exactly
// the processes the workload itself owns — one mpi.rank per rank and one
// mpi.join — and nothing else. Every infrastructure path is a pure event
// chain now: message delivery (retired net.courier), PFS request service
// (retired <node>.worker), metadata service, RAID fan-out (retired raid.io
// children), and client I/O fan-out. This test is what keeps per-request
// and per-message goroutines from silently creeping back in.
func TestSpawnGuardMatrixCell(t *testing.T) {
	const ranks = 256
	o := ScaleOptions()
	o.Ranks = ranks
	w := workload.PatternWorkload(workload.N1Strided)
	sc := o.scaleRung(ranks)

	check := func(name string, env *sim.Env) {
		t.Helper()
		spawns := env.Spawns()
		for spawn, n := range spawns {
			if spawn != "mpi.rank" && spawn != "mpi.join" {
				t.Errorf("%s: %d %q procs spawned; infrastructure must spawn none", name, n, spawn)
			}
		}
		if got := spawns["mpi.rank"]; got != ranks {
			t.Errorf("%s: %d mpi.rank procs, want %d", name, got, ranks)
		}
		if total := env.TotalSpawned(); total != ranks+1 {
			t.Errorf("%s: %d total spawns, want ranks+1 = %d (spawns: %v)",
				name, total, ranks+1, spawns)
		}
	}

	{
		c := o.newCluster()
		res := w.Run(c.World, sc)
		if res.Ranks != ranks {
			t.Fatalf("untraced run covered %d ranks, want %d", res.Ranks, ranks)
		}
		check("untraced", c.Env)
	}
	{
		c := o.newCluster()
		rep, err := framework.MustLookup("LANL-Trace").Attach(c).Run(w.Spec(sc))
		if err != nil {
			t.Fatal(err)
		}
		if rep.TraceEvents == 0 {
			t.Fatal("traced run produced no events")
		}
		check("traced", c.Env)
	}
}

// TestGoroutineWatermark65536Ranks is the scaling-ladder acceptance test:
// the 65536-rank single-cell run must complete with the goroutine
// population explained entirely by the workload's own rank processes. The
// simulator infrastructure — nodes, object servers, the metadata server,
// the network, the RAID arrays — contributes zero resident goroutines and
// zero spawns at any rank count: total spawns are exactly ranks+1 (the rank
// programs plus mpi.join), so everything beyond the programs themselves is
// O(nodes+servers) state on the event heap, not goroutines.
func TestGoroutineWatermark65536Ranks(t *testing.T) {
	if testing.Short() {
		t.Skip("65536-rank watermark run skipped in -short mode")
	}
	const ranks = 65536
	o := ScaleOptions()
	o.Ranks = ranks
	w := workload.PatternWorkload(workload.N1Strided)
	sc := o.scaleRung(ranks)

	c := o.newCluster()
	var peakG, peakLive int
	watermarkEvery(c.Env, sim.Millisecond, &peakG, &peakLive)
	res := w.Run(c.World, sc)
	if res.Ranks != ranks {
		t.Fatalf("run covered %d ranks, want %d", res.Ranks, ranks)
	}
	// One goroutine per live simulated process plus a small constant; the
	// proc population is the rank programs plus mpi.join, nothing per
	// message, request, or waiter wake.
	const procSlack = 64
	verifyWatermark(t, "untraced", c.Env, peakG, peakLive, ranks+procSlack, procSlack)
	if total := c.Env.TotalSpawned(); total != ranks+1 {
		t.Fatalf("%d total spawns, want ranks+1 = %d (spawns: %v)",
			total, ranks+1, c.Env.Spawns())
	}
}

func verifyWatermark(t *testing.T, name string, env *sim.Env, peakG, peakLive, procBound, procSlack int) {
	t.Helper()
	t.Logf("%s: peak live procs %d, peak goroutines above baseline %d", name, peakLive, peakG)
	if peakLive == 0 {
		t.Fatalf("%s: watermark sampled no live procs", name)
	}
	if peakLive > procBound {
		t.Fatalf("%s: peak live procs %d exceeds O(procs) bound %d", name, peakLive, procBound)
	}
	if peakG > peakLive+procSlack {
		t.Fatalf("%s: peak goroutines %d not bounded by live procs %d + %d",
			name, peakG, peakLive, procSlack)
	}
	if couriers := env.Spawned("net.courier"); couriers != 0 {
		t.Fatalf("%s: %d net.courier procs spawned, want 0", name, couriers)
	}
}
