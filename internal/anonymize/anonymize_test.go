package anonymize

import (
	"strings"
	"testing"
	"testing/quick"

	"iotaxo/internal/trace"
)

func sampleRecords() []trace.Record {
	return []trace.Record{
		{
			Node: "host13.lanl.gov", Rank: 7, PID: 10378,
			Name: "SYS_open", Args: []string{`"/secret/project/weapons.dat"`, "0", "438"},
			Ret: "3", Path: "/secret/project/weapons.dat", UID: 500, GID: 100,
		},
		{
			Node: "host13.lanl.gov", Rank: 7, PID: 10378,
			Name: "SYS_pwrite", Args: []string{"3", "0", "4096"},
			Ret: "4096", Path: "/secret/project/weapons.dat", Offset: 0, Bytes: 4096,
			UID: 500, GID: 100,
		},
		{
			Node: "host17.lanl.gov", Rank: 3, PID: 11335,
			Name: "SYS_open", Args: []string{`"/secret/other.txt"`, "0", "438"},
			Ret: "4", Path: "/secret/other.txt", UID: 501, GID: 100,
		},
	}
}

func TestParseSpec(t *testing.T) {
	spec, err := ParseSpec("path, uid,gid")
	if err != nil {
		t.Fatal(err)
	}
	if !spec[FieldPath] || !spec[FieldUID] || !spec[FieldGID] || spec[FieldNode] {
		t.Fatalf("spec = %v", spec)
	}
	if _, err := ParseSpec("bogus"); err == nil {
		t.Fatal("expected error for unknown field")
	}
	all, err := ParseSpec("all")
	if err != nil || len(all) != len(AllFields()) {
		t.Fatalf("all = %v err = %v", all, err)
	}
	empty, err := ParseSpec("  ")
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty spec: %v %v", empty, err)
	}
}

func TestRandomizerRemovesSensitiveText(t *testing.T) {
	spec, _ := ParseSpec("all")
	r := NewRandomizer(spec, []byte("salt"))
	out := Records(sampleRecords(), r)
	if ContainsAny(out, []string{"secret", "weapons", "lanl.gov"}) {
		t.Fatalf("sensitive text survived: %+v", out)
	}
	// Originals untouched.
	if !ContainsAny(sampleRecords(), []string{"secret"}) {
		t.Fatal("test fixture broken")
	}
}

func TestRandomizerConsistentMapping(t *testing.T) {
	spec, _ := ParseSpec("path,uid")
	r := NewRandomizer(spec, []byte("salt"))
	out := Records(sampleRecords(), r)
	// Records 0 and 1 share a path: pseudonyms must match so joins survive.
	if out[0].Path != out[1].Path {
		t.Fatalf("same path mapped differently: %q vs %q", out[0].Path, out[1].Path)
	}
	// Records 0 and 2 have different paths: pseudonyms must differ.
	if out[0].Path == out[2].Path {
		t.Fatal("different paths mapped identically")
	}
	// Same UID maps consistently.
	if out[0].UID != out[1].UID {
		t.Fatal("same UID mapped differently")
	}
}

func TestRandomizerPreservesPathStructure(t *testing.T) {
	spec, _ := ParseSpec("path")
	r := NewRandomizer(spec, []byte("salt"))
	out := Records(sampleRecords(), r)
	if strings.Count(out[0].Path, "/") != strings.Count("/secret/project/weapons.dat", "/") {
		t.Fatalf("path depth changed: %q", out[0].Path)
	}
	if !strings.HasPrefix(out[0].Path, "/") {
		t.Fatalf("lost leading slash: %q", out[0].Path)
	}
}

func TestRandomizerDifferentSaltsDiffer(t *testing.T) {
	spec, _ := ParseSpec("path")
	a := Records(sampleRecords(), NewRandomizer(spec, []byte("salt-a")))
	b := Records(sampleRecords(), NewRandomizer(spec, []byte("salt-b")))
	if a[0].Path == b[0].Path {
		t.Fatal("different salts produced identical pseudonyms")
	}
}

func TestRandomizerRewritesArgs(t *testing.T) {
	spec, _ := ParseSpec("path")
	r := NewRandomizer(spec, []byte("salt"))
	out := Records(sampleRecords(), r)
	for _, a := range out[0].Args {
		if strings.Contains(a, "weapons") {
			t.Fatalf("args still contain path: %v", out[0].Args)
		}
	}
}

func TestEncryptorRoundTrip(t *testing.T) {
	spec, _ := ParseSpec("path,uid,gid,node")
	key := []byte("0123456789abcdef")
	e, err := NewEncryptor(spec, key)
	if err != nil {
		t.Fatal(err)
	}
	ct := e.EncryptValue("/secret/file")
	if !strings.HasPrefix(ct, "enc:") || strings.Contains(ct, "secret") {
		t.Fatalf("ciphertext leaks: %q", ct)
	}
	pt, err := e.DecryptValue(ct)
	if err != nil || pt != "/secret/file" {
		t.Fatalf("decrypt: %q %v", pt, err)
	}
}

func TestEncryptorApplyHidesFields(t *testing.T) {
	spec, _ := ParseSpec("path,uid,gid,node")
	e, _ := NewEncryptor(spec, []byte("0123456789abcdef"))
	out := Records(sampleRecords(), e)
	if ContainsAny(out, []string{"secret", "lanl.gov"}) {
		t.Fatalf("sensitive text survived encryption: %+v", out[0])
	}
	if out[0].UID != 0 || out[0].GID != 0 {
		t.Fatalf("ids not cleared: %+v", out[0])
	}
}

func TestEncryptorIsReversibleUnlikeRandomizer(t *testing.T) {
	// The paper's reason Tracefs is "Advanced" not "Very advanced".
	spec, _ := ParseSpec("path")
	key := []byte("0123456789abcdef")
	e, _ := NewEncryptor(spec, key)
	out := Records(sampleRecords(), e)
	// An attacker with the key recovers the original.
	e2, _ := NewEncryptor(spec, key)
	pt, err := e2.DecryptValue(out[0].Path)
	if err != nil || pt != "/secret/project/weapons.dat" {
		t.Fatalf("key holder could not recover: %q %v", pt, err)
	}
}

func TestEncryptorBadKey(t *testing.T) {
	if _, err := NewEncryptor(Spec{}, []byte("short")); err == nil {
		t.Fatal("expected error for bad key size")
	}
}

func TestDecryptErrors(t *testing.T) {
	e, _ := NewEncryptor(Spec{}, []byte("0123456789abcdef"))
	for _, bad := range []string{"plain", "enc:zz", "enc:abcd", "enc:" + strings.Repeat("00", 15)} {
		if _, err := e.DecryptValue(bad); err == nil {
			t.Errorf("no error for %q", bad)
		}
	}
	// Tampered ciphertext must fail padding or produce garbage != original.
	ct := e.EncryptValue("hello world")
	raw := []byte(ct)
	raw[len(raw)-1] ^= 1
	if pt, err := e.DecryptValue(string(raw)); err == nil && pt == "hello world" {
		t.Fatal("tampered ciphertext decrypted to original")
	}
}

// Property: encrypt/decrypt is the identity for arbitrary strings.
func TestEncryptRoundTripProperty(t *testing.T) {
	e, _ := NewEncryptor(Spec{}, []byte("0123456789abcdef0123456789abcdef"))
	f := func(s string) bool {
		pt, err := e.DecryptValue(e.EncryptValue(s))
		return err == nil && pt == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: pseudonyms are deterministic and collision-free for distinct
// short inputs (within a reasonable sample).
func TestPseudonymConsistencyProperty(t *testing.T) {
	spec, _ := ParseSpec("path")
	r := NewRandomizer(spec, []byte("s"))
	f := func(a, b string) bool {
		pa1 := r.anonPath("/" + a)
		pa2 := r.anonPath("/" + a)
		if pa1 != pa2 {
			return false
		}
		if a != b && a != "" && b != "" {
			return r.anonPath("/"+a) != r.anonPath("/"+b) || a == b
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestContainsAnyOnArgs(t *testing.T) {
	recs := []trace.Record{{Args: []string{`"hello secret"`}}}
	if !ContainsAny(recs, []string{"secret"}) {
		t.Fatal("missed sensitive arg")
	}
	if ContainsAny(recs, []string{"absent"}) {
		t.Fatal("false positive")
	}
}
