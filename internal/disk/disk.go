// Package disk models rotating disks and RAID-5 arrays.
//
// The paper's overhead experiments wrote "constant sized output files under
// RAID 5 with a stripe width of 64 kilobytes across 252 hard drives". The
// two behaviours that matter for reproducing its bandwidth curves are
// captured here explicitly:
//
//   - per-request fixed costs (controller overhead, head positioning) that
//     penalize small transfers, and
//   - the RAID-5 small-write penalty: a write that does not cover a full
//     stripe row must read old data and old parity before writing new data
//     and new parity (read-modify-write), roughly quadrupling the I/O for
//     sub-stripe updates.
package disk

import (
	"errors"
	"fmt"

	"iotaxo/internal/sim"
	"iotaxo/internal/trace"
)

// Config fixes one drive's performance envelope (2007-era SATA/FC drive).
type Config struct {
	PerOp        sim.Duration // controller + command overhead per request
	Seek         sim.Duration // average positioning cost per discontiguous run
	BandwidthBps float64      // sequential media rate, bytes/second
}

// DefaultDisk returns parameters for a typical 2007 enterprise drive behind
// a caching RAID controller: the effective seek penalty is far below the
// mechanical ~8 ms because the controller's write-back cache and queue
// reordering absorb most head movement.
func DefaultDisk() Config {
	return Config{
		PerOp:        100 * sim.Microsecond,
		Seek:         300 * sim.Microsecond,
		BandwidthBps: 80e6,
	}
}

// ErrFailed is returned by operations on a failed drive.
var ErrFailed = errors.New("disk: drive failed")

// Disk is a single drive with a serially-shared head.
type Disk struct {
	cfg     Config
	head    *sim.Resource
	nextSeq int64 // next sequential byte position; access elsewhere seeks

	failed bool

	// Stats.
	Ops          int64
	BytesRead    int64
	BytesWritten int64
	Seeks        int64
}

// NewDisk returns an idle drive.
func NewDisk(env *sim.Env, cfg Config) *Disk {
	if cfg.BandwidthBps <= 0 {
		panic("disk: bandwidth must be positive")
	}
	return &Disk{cfg: cfg, head: sim.NewResource(env, 1), nextSeq: -1}
}

// Fail marks the drive failed; subsequent operations return ErrFailed.
func (d *Disk) Fail() { d.failed = true }

// Failed reports whether the drive has failed.
func (d *Disk) Failed() bool { return d.failed }

// Repair returns a failed drive to service.
func (d *Disk) Repair() { d.failed = false }

// access performs one contiguous transfer at the given byte position.
func (d *Disk) access(p *sim.Proc, pos, length int64, write bool) error {
	if d.failed {
		return ErrFailed
	}
	cost := d.cfg.PerOp
	if pos != d.nextSeq {
		cost += d.cfg.Seek
		d.Seeks++
	}
	cost += sim.DurationOf(length, d.cfg.BandwidthBps)
	d.head.HoldFor(p, cost)
	d.nextSeq = pos + length
	d.Ops++
	if write {
		d.BytesWritten += length
	} else {
		d.BytesRead += length
	}
	return nil
}

// accessThen is the event-chain twin of access: the same transfer performed
// without a process, calling done(err) when the head releases. The cost
// (including the seek decision against nextSeq) is computed at call time —
// before the head is acquired — exactly as access computes it before
// HoldFor, so chained and process-driven accesses contending for one head
// produce identical schedules.
func (d *Disk) accessThen(pos, length int64, write bool, done func(error)) {
	if d.failed {
		done(ErrFailed)
		return
	}
	cost := d.cfg.PerOp
	if pos != d.nextSeq {
		cost += d.cfg.Seek
		d.Seeks++
	}
	cost += sim.DurationOf(length, d.cfg.BandwidthBps)
	d.head.HoldForThen(cost, func() {
		d.nextSeq = pos + length
		d.Ops++
		if write {
			d.BytesWritten += length
		} else {
			d.BytesRead += length
		}
		done(nil)
	})
}

// Read transfers length bytes starting at pos from the drive.
func (d *Disk) Read(p *sim.Proc, pos, length int64) error {
	return d.access(p, pos, length, false)
}

// Write transfers length bytes starting at pos to the drive.
func (d *Disk) Write(p *sim.Proc, pos, length int64) error {
	return d.access(p, pos, length, true)
}

// ReadThen transfers length bytes starting at pos from the drive as a pure
// event chain, calling done(err) on completion.
func (d *Disk) ReadThen(pos, length int64, done func(error)) {
	d.accessThen(pos, length, false, done)
}

// WriteThen transfers length bytes starting at pos to the drive as a pure
// event chain, calling done(err) on completion.
func (d *Disk) WriteThen(pos, length int64, done func(error)) {
	d.accessThen(pos, length, true, done)
}

// ArrayConfig describes a RAID-5 group.
type ArrayConfig struct {
	Disks      int   // total drives in the group (data + rotating parity)
	StripeUnit int64 // bytes per stripe unit (the paper: 64 KB)
	Disk       Config
	// DisableSmallWritePenalty turns off read-modify-write accounting; used
	// by the ablation benchmark to show the penalty drives the low-blocksize
	// bandwidth droop.
	DisableSmallWritePenalty bool
}

// DefaultArray returns a 9-drive RAID-5 group with 64 KB stripe units.
func DefaultArray() ArrayConfig {
	return ArrayConfig{Disks: 9, StripeUnit: 64 << 10, Disk: DefaultDisk()}
}

// Array is a RAID-5 group: data striped across Disks-1 units per row with
// one rotating parity unit.
type Array struct {
	cfg   ArrayConfig
	env   *sim.Env
	disks []*Disk

	// tracer, when set, receives one coarse ClassDiskIO record per array
	// call (not per member-drive transfer), labelled with node.
	tracer func(*trace.Record)
	node   string
}

// SetTracer installs (or, with nil fn, removes) the array-call tracer.
// node labels emitted records with the owning server's node name.
func (a *Array) SetTracer(node string, fn func(*trace.Record)) {
	a.node, a.tracer = node, fn
}

// traceDone wraps an array call's completion to emit one ClassDiskIO record
// spanning the whole call. With no tracer attached it is the identity, so
// untraced arrays allocate no span and pay nothing.
func (a *Array) traceDone(name string, off, length int64, parent uint64, done func(error)) func(error) {
	if a.tracer == nil {
		return done
	}
	span := a.env.NextSpanID()
	start := a.env.Now()
	return func(err error) {
		ret := "0"
		if err != nil {
			ret = "-1 " + err.Error()
		}
		a.tracer(&trace.Record{
			Time:   start,
			Dur:    a.env.Now() - start,
			Node:   a.node,
			Rank:   -1,
			Class:  trace.ClassDiskIO,
			Name:   name,
			Ret:    ret,
			Offset: off,
			Bytes:  length,
			Span:   span,
			Parent: parent,
		})
		done(err)
	}
}

// NewArray builds the group. Disks must be >= 3 for RAID-5.
func NewArray(env *sim.Env, cfg ArrayConfig) *Array {
	if cfg.Disks < 3 {
		panic(fmt.Sprintf("disk: RAID-5 needs >= 3 drives, got %d", cfg.Disks))
	}
	if cfg.StripeUnit <= 0 {
		panic("disk: stripe unit must be positive")
	}
	a := &Array{cfg: cfg, env: env}
	for i := 0; i < cfg.Disks; i++ {
		a.disks = append(a.disks, NewDisk(env, cfg.Disk))
	}
	return a
}

// Config returns the array configuration.
func (a *Array) Config() ArrayConfig { return a.cfg }

// Disk returns drive i, for failure injection in tests.
func (a *Array) Disk(i int) *Disk { return a.disks[i] }

// DataWidth is the number of data units per stripe row.
func (a *Array) DataWidth() int { return a.cfg.Disks - 1 }

// RowSize is the number of data bytes per full stripe row.
func (a *Array) RowSize() int64 { return int64(a.DataWidth()) * a.cfg.StripeUnit }

// unitOp is one physical transfer planned on one member drive.
type unitOp struct {
	disk   int
	pos    int64
	length int64
	write  bool
}

// Layout maps a logical byte range to the member drives. Exposed for the
// property tests that verify completeness and disjointness of the mapping.
//
// Logical unit u = off/StripeUnit lives in row r = u/DataWidth. Within a
// row, parity occupies drive (Disks-1 - r%Disks + Disks) % Disks (rotating,
// RAID-5 left-symmetric style) and data units fill the remaining drives in
// order.
func (a *Array) Layout(off, length int64) []unitOp {
	var ops []unitOp
	su := a.cfg.StripeUnit
	dw := int64(a.DataWidth())
	for length > 0 {
		u := off / su
		within := off % su
		chunk := su - within
		if chunk > length {
			chunk = length
		}
		row := u / dw
		idxInRow := int(u % dw)
		parity := a.parityDisk(row)
		diskIdx := idxInRow
		if diskIdx >= parity {
			diskIdx++
		}
		ops = append(ops, unitOp{
			disk:   diskIdx,
			pos:    row*su + within,
			length: chunk,
		})
		off += chunk
		length -= chunk
	}
	return ops
}

// parityDisk returns the drive holding parity for a stripe row.
func (a *Array) parityDisk(row int64) int {
	n := int64(a.cfg.Disks)
	return int((n - 1 - row%n + n) % n)
}

// Read transfers a logical byte range from the array. Member-drive
// transfers proceed in parallel; the call completes when the slowest drive
// finishes. Reads on a group with one failed drive are reconstructed from
// the surviving drives (degraded mode); two failures return ErrFailed.
func (a *Array) Read(p *sim.Proc, off, length int64) error {
	fin := a.traceDone("DISK_read", off, length, p.Span(), func(error) {})
	if err := a.checkHealth(); err != nil && errors.Is(err, ErrFailed) {
		fin(err)
		return err
	}
	ops := a.Layout(off, length)
	degraded := a.failedCount() == 1
	if degraded {
		ops = a.degradeReads(ops)
	}
	err := a.execute(p, ops)
	fin(err)
	return err
}

// Write transfers a logical byte range to the array, adding parity I/O:
// full stripe rows write parity once; partial rows pay read-modify-write
// (read old data + old parity, write new data + new parity) unless the
// ablation flag disables it.
func (a *Array) Write(p *sim.Proc, off, length int64) error {
	fin := a.traceDone("DISK_write", off, length, p.Span(), func(error) {})
	if err := a.checkHealth(); err != nil {
		fin(err)
		return err
	}
	ops := a.Layout(off, length)
	for i := range ops {
		ops[i].write = true
	}
	ops = append(ops, a.parityOps(off, length)...)
	err := a.execute(p, ops)
	fin(err)
	return err
}

// parityOps plans the parity (and RMW) traffic for a write.
func (a *Array) parityOps(off, length int64) []unitOp {
	var ops []unitOp
	su := a.cfg.StripeUnit
	row0 := off / a.RowSize()
	rowN := (off + length - 1) / a.RowSize()
	for row := row0; row <= rowN; row++ {
		rowStart := row * a.RowSize()
		rowEnd := rowStart + a.RowSize()
		covStart, covEnd := off, off+length
		if covStart < rowStart {
			covStart = rowStart
		}
		if covEnd > rowEnd {
			covEnd = rowEnd
		}
		covered := covEnd - covStart
		parity := a.parityDisk(row)
		full := covered == a.RowSize()
		// New parity is always written.
		ops = append(ops, unitOp{disk: parity, pos: row * su, length: su, write: true})
		if !full && !a.cfg.DisableSmallWritePenalty {
			// Read-modify-write: read old parity, and re-read the written
			// range (old data) to compute the delta.
			ops = append(ops, unitOp{disk: parity, pos: row * su, length: su})
			for _, ro := range a.Layout(covStart, covered) {
				ops = append(ops, ro)
			}
		}
	}
	return ops
}

// degradeReads rewrites ops touching the failed drive into reconstruction
// reads of every surviving drive in the affected rows.
func (a *Array) degradeReads(ops []unitOp) []unitOp {
	failed := -1
	for i, d := range a.disks {
		if d.Failed() {
			failed = i
			break
		}
	}
	var out []unitOp
	for _, op := range ops {
		if op.disk != failed {
			out = append(out, op)
			continue
		}
		for i := range a.disks {
			if i == failed {
				continue
			}
			out = append(out, unitOp{disk: i, pos: op.pos, length: op.length})
		}
	}
	return out
}

// ReadThen is the event-chain twin of Read: the same degraded-mode planning
// and parallel member transfers, driven entirely by scheduled events, with
// done(err) called when the slowest drive finishes.
func (a *Array) ReadThen(off, length int64, done func(error)) {
	a.ReadThenSpan(off, length, 0, done)
}

// ReadThenSpan is ReadThen with the caller's causal span; the emitted
// DISK_read record (if a tracer is attached) is parented under it.
func (a *Array) ReadThenSpan(off, length int64, parent uint64, done func(error)) {
	done = a.traceDone("DISK_read", off, length, parent, done)
	if err := a.checkHealth(); err != nil && errors.Is(err, ErrFailed) {
		done(err)
		return
	}
	ops := a.Layout(off, length)
	degraded := a.failedCount() == 1
	if degraded {
		ops = a.degradeReads(ops)
	}
	a.executeThen(ops, done)
}

// WriteThen is the event-chain twin of Write, including parity and
// read-modify-write traffic.
func (a *Array) WriteThen(off, length int64, done func(error)) {
	a.WriteThenSpan(off, length, 0, done)
}

// WriteThenSpan is WriteThen with the caller's causal span.
func (a *Array) WriteThenSpan(off, length int64, parent uint64, done func(error)) {
	done = a.traceDone("DISK_write", off, length, parent, done)
	if err := a.checkHealth(); err != nil {
		done(err)
		return
	}
	ops := a.Layout(off, length)
	for i := range ops {
		ops[i].write = true
	}
	ops = append(ops, a.parityOps(off, length)...)
	a.executeThen(ops, done)
}

// execute groups planned ops per drive and runs the drives in parallel.
func (a *Array) execute(p *sim.Proc, ops []unitOp) error {
	perDisk := make(map[int][]unitOp)
	for _, op := range ops {
		perDisk[op.disk] = append(perDisk[op.disk], op)
	}
	var firstErr error
	var fns []func(*sim.Proc)
	for idx := 0; idx < a.cfg.Disks; idx++ {
		batch := perDisk[idx]
		if len(batch) == 0 {
			continue
		}
		d := a.disks[idx]
		fns = append(fns, func(c *sim.Proc) {
			for _, op := range batch {
				var err error
				if op.write {
					err = d.Write(c, op.pos, op.length)
				} else {
					err = d.Read(c, op.pos, op.length)
				}
				if err != nil && firstErr == nil {
					firstErr = err
				}
			}
		})
	}
	sim.ForkJoin(p, "raid.io", fns...)
	return firstErr
}

// executeThen is the event-chain twin of execute: one event chain per busy
// member drive instead of one forked process, joined by a counter. The event
// accounting mirrors ForkJoin exactly — one scheduled kickoff event per
// drive batch in drive-index order (where ForkJoin scheduled one spawn
// dispatch per child), then one completion event from the last batch (where
// the last Done scheduled the parent's wake) — so chained and process-driven
// array calls produce identical schedules. Errors are recorded per operation
// as they surface, matching the shared firstErr the forked children wrote.
func (a *Array) executeThen(ops []unitOp, done func(error)) {
	perDisk := make(map[int][]unitOp)
	for _, op := range ops {
		perDisk[op.disk] = append(perDisk[op.disk], op)
	}
	var firstErr error
	record := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	remaining := 0
	for idx := 0; idx < a.cfg.Disks; idx++ {
		if len(perDisk[idx]) > 0 {
			remaining++
		}
	}
	if remaining == 0 {
		done(nil)
		return
	}
	finish := func() {
		remaining--
		if remaining == 0 {
			a.env.After(0, func() { done(firstErr) })
		}
	}
	for idx := 0; idx < a.cfg.Disks; idx++ {
		batch := perDisk[idx]
		if len(batch) == 0 {
			continue
		}
		d := a.disks[idx]
		a.env.After(0, func() { a.runBatchThen(d, batch, record, finish) })
	}
}

// runBatchThen runs one drive's planned ops serially as an event chain,
// recording each error as it surfaces and calling done when the batch
// completes — the chained mirror of one forked raid.io child.
func (a *Array) runBatchThen(d *Disk, batch []unitOp, record func(error), done func()) {
	var step func(i int)
	step = func(i int) {
		if i == len(batch) {
			done()
			return
		}
		op := batch[i]
		d.accessThen(op.pos, op.length, op.write, func(err error) {
			record(err)
			step(i + 1)
		})
	}
	step(0)
}

// failedCount reports the number of failed member drives.
func (a *Array) failedCount() int {
	n := 0
	for _, d := range a.disks {
		if d.Failed() {
			n++
		}
	}
	return n
}

// checkHealth returns ErrFailed when the group cannot serve I/O.
func (a *Array) checkHealth() error {
	if a.failedCount() >= 2 {
		return fmt.Errorf("raid5 group lost %d drives: %w", a.failedCount(), ErrFailed)
	}
	return nil
}

// TotalOps sums member-drive operation counts (stats for analysis).
func (a *Array) TotalOps() int64 {
	var n int64
	for _, d := range a.disks {
		n += d.Ops
	}
	return n
}
