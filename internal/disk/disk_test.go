package disk

import (
	"errors"
	"testing"
	"testing/quick"

	"iotaxo/internal/sim"
)

func run(t *testing.T, fn func(p *sim.Proc)) sim.Time {
	t.Helper()
	env := sim.NewEnv(1)
	var end sim.Time
	env.Go("test", func(p *sim.Proc) {
		fn(p)
		end = p.Now()
	})
	env.Run()
	return end
}

func TestDiskSequentialVsRandom(t *testing.T) {
	env := sim.NewEnv(1)
	d := NewDisk(env, DefaultDisk())
	var seq, rnd sim.Time
	env.Go("seq", func(p *sim.Proc) {
		start := p.Now()
		for i := int64(0); i < 8; i++ {
			if err := d.Read(p, i*4096, 4096); err != nil {
				t.Errorf("read: %v", err)
			}
		}
		seq = p.Now() - start
	})
	env.Run()

	env2 := sim.NewEnv(1)
	d2 := NewDisk(env2, DefaultDisk())
	env2.Go("rnd", func(p *sim.Proc) {
		start := p.Now()
		for i := int64(0); i < 8; i++ {
			if err := d2.Read(p, (7-i)*1<<20, 4096); err != nil {
				t.Errorf("read: %v", err)
			}
		}
		rnd = p.Now() - start
	})
	env2.Run()
	if rnd <= seq {
		t.Fatalf("random (%v) not slower than sequential (%v)", rnd, seq)
	}
	if d.Seeks != 1 { // only the first access seeks
		t.Fatalf("sequential seeks = %d, want 1", d.Seeks)
	}
	if d2.Seeks != 8 {
		t.Fatalf("random seeks = %d, want 8", d2.Seeks)
	}
}

func TestDiskFailure(t *testing.T) {
	env := sim.NewEnv(1)
	d := NewDisk(env, DefaultDisk())
	d.Fail()
	var err error
	env.Go("t", func(p *sim.Proc) { err = d.Write(p, 0, 100) })
	env.Run()
	if !errors.Is(err, ErrFailed) {
		t.Fatalf("err = %v, want ErrFailed", err)
	}
	d.Repair()
	env2 := sim.NewEnv(1)
	d2 := NewDisk(env2, DefaultDisk())
	d2.Fail()
	d2.Repair()
	env2.Go("t", func(p *sim.Proc) { err = d2.Write(p, 0, 100) })
	env2.Run()
	if err != nil {
		t.Fatalf("after repair: %v", err)
	}
}

func TestLayoutSingleUnit(t *testing.T) {
	env := sim.NewEnv(1)
	a := NewArray(env, ArrayConfig{Disks: 5, StripeUnit: 64 << 10, Disk: DefaultDisk()})
	ops := a.Layout(0, 64<<10)
	if len(ops) != 1 {
		t.Fatalf("ops = %d, want 1", len(ops))
	}
	if ops[0].length != 64<<10 {
		t.Fatalf("length = %d", ops[0].length)
	}
	// Row 0 parity is on the last drive; data unit 0 is drive 0.
	if ops[0].disk != 0 {
		t.Fatalf("disk = %d, want 0", ops[0].disk)
	}
}

func TestLayoutAvoidsParityDisk(t *testing.T) {
	env := sim.NewEnv(1)
	a := NewArray(env, ArrayConfig{Disks: 5, StripeUnit: 1 << 10, Disk: DefaultDisk()})
	// Walk several rows; data ops must never land on that row's parity disk.
	ops := a.Layout(0, 40<<10)
	for _, op := range ops {
		row := op.pos / a.cfg.StripeUnit
		if op.disk == a.parityDisk(row) {
			t.Fatalf("data op on parity disk: %+v (row %d)", op, row)
		}
	}
}

// Property: the layout covers exactly the requested bytes, in order, with
// unit-sized or smaller chunks and no overlap.
func TestLayoutCoverageProperty(t *testing.T) {
	env := sim.NewEnv(1)
	a := NewArray(env, ArrayConfig{Disks: 7, StripeUnit: 4096, Disk: DefaultDisk()})
	f := func(offRaw, lenRaw uint16) bool {
		off := int64(offRaw)
		length := int64(lenRaw)%20000 + 1
		ops := a.Layout(off, length)
		var total int64
		cursor := off
		for _, op := range ops {
			if op.length <= 0 || op.length > a.cfg.StripeUnit {
				return false
			}
			// Each op must map the next logical chunk: reconstruct the
			// logical offset from (row,pos,disk) and compare with cursor.
			row := op.pos / a.cfg.StripeUnit
			within := op.pos % a.cfg.StripeUnit
			parity := a.parityDisk(row)
			idxInRow := op.disk
			if idxInRow > parity {
				idxInRow--
			}
			logical := (row*int64(a.DataWidth())+int64(idxInRow))*a.cfg.StripeUnit + within
			if logical != cursor {
				return false
			}
			cursor += op.length
			total += op.length
		}
		return total == length
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: parity rotates across all drives.
func TestParityRotationProperty(t *testing.T) {
	env := sim.NewEnv(1)
	a := NewArray(env, ArrayConfig{Disks: 5, StripeUnit: 1024, Disk: DefaultDisk()})
	seen := make(map[int]bool)
	for row := int64(0); row < 5; row++ {
		p := a.parityDisk(row)
		if p < 0 || p >= 5 {
			t.Fatalf("parity disk %d out of range", p)
		}
		seen[p] = true
	}
	if len(seen) != 5 {
		t.Fatalf("parity used %d/5 drives", len(seen))
	}
}

func TestSmallWriteSlowerPerByteThanFullStripe(t *testing.T) {
	cfg := ArrayConfig{Disks: 5, StripeUnit: 64 << 10, Disk: DefaultDisk()}
	env := sim.NewEnv(1)
	a := NewArray(env, cfg)
	rowSize := a.RowSize()

	var fullT, smallT sim.Time
	env.Go("full", func(p *sim.Proc) {
		start := p.Now()
		if err := a.Write(p, 0, rowSize); err != nil {
			t.Errorf("write: %v", err)
		}
		fullT = p.Now() - start
	})
	env.Run()

	env2 := sim.NewEnv(1)
	a2 := NewArray(env2, cfg)
	env2.Go("small", func(p *sim.Proc) {
		start := p.Now()
		if err := a2.Write(p, 0, 4096); err != nil {
			t.Errorf("write: %v", err)
		}
		smallT = p.Now() - start
	})
	env2.Run()

	perByteFull := fullT.Seconds() / float64(rowSize)
	perByteSmall := smallT.Seconds() / 4096
	if perByteSmall <= perByteFull {
		t.Fatalf("small-write penalty missing: %g <= %g", perByteSmall, perByteFull)
	}
}

func TestSmallWritePenaltyAblation(t *testing.T) {
	base := ArrayConfig{Disks: 5, StripeUnit: 64 << 10, Disk: DefaultDisk()}
	withPenalty := base
	without := base
	without.DisableSmallWritePenalty = true

	timeFor := func(cfg ArrayConfig) sim.Time {
		env := sim.NewEnv(1)
		a := NewArray(env, cfg)
		var d sim.Time
		env.Go("w", func(p *sim.Proc) {
			start := p.Now()
			if err := a.Write(p, 0, 4096); err != nil {
				t.Errorf("write: %v", err)
			}
			d = p.Now() - start
		})
		env.Run()
		return d
	}
	if timeFor(without) >= timeFor(withPenalty) {
		t.Fatal("disabling the small-write penalty did not speed up sub-stripe writes")
	}
}

func TestDegradedReadReconstructs(t *testing.T) {
	env := sim.NewEnv(1)
	a := NewArray(env, ArrayConfig{Disks: 4, StripeUnit: 1024, Disk: DefaultDisk()})
	a.Disk(0).Fail()
	var err error
	var healthyOps, degradedExtra bool
	env.Go("r", func(p *sim.Proc) {
		err = a.Read(p, 0, 1024) // unit 0 lives on drive 0 (failed)
	})
	env.Run()
	if err != nil {
		t.Fatalf("degraded read failed: %v", err)
	}
	// Reconstruction must have touched the surviving drives.
	for i := 1; i < 4; i++ {
		if a.Disk(i).Ops > 0 {
			degradedExtra = true
		}
	}
	if !degradedExtra {
		t.Fatal("no reconstruction reads on surviving drives")
	}
	_ = healthyOps
}

func TestDoubleFailureFails(t *testing.T) {
	env := sim.NewEnv(1)
	a := NewArray(env, ArrayConfig{Disks: 4, StripeUnit: 1024, Disk: DefaultDisk()})
	a.Disk(0).Fail()
	a.Disk(1).Fail()
	var rerr, werr error
	env.Go("t", func(p *sim.Proc) {
		rerr = a.Read(p, 0, 100)
		werr = a.Write(p, 0, 100)
	})
	env.Run()
	if !errors.Is(rerr, ErrFailed) || !errors.Is(werr, ErrFailed) {
		t.Fatalf("read=%v write=%v, want ErrFailed", rerr, werr)
	}
}

func TestArrayParallelism(t *testing.T) {
	// A full-row write spread over 4 data drives should take much less than
	// 4x a single-unit transfer (drives work in parallel).
	cfg := ArrayConfig{Disks: 5, StripeUnit: 1 << 20, Disk: DefaultDisk()}
	env := sim.NewEnv(1)
	a := NewArray(env, cfg)
	var rowT sim.Time
	env.Go("row", func(p *sim.Proc) {
		start := p.Now()
		if err := a.Write(p, 0, a.RowSize()); err != nil {
			t.Errorf("write: %v", err)
		}
		rowT = p.Now() - start
	})
	env.Run()
	unit := sim.DurationOf(1<<20, cfg.Disk.BandwidthBps) + cfg.Disk.PerOp + cfg.Disk.Seek
	if rowT > 2*unit {
		t.Fatalf("full-row write %v not parallel (unit %v)", rowT, unit)
	}
}

func TestBadConfigsPanic(t *testing.T) {
	env := sim.NewEnv(1)
	for _, fn := range []func(){
		func() { NewArray(env, ArrayConfig{Disks: 2, StripeUnit: 1024, Disk: DefaultDisk()}) },
		func() { NewArray(env, ArrayConfig{Disks: 5, StripeUnit: 0, Disk: DefaultDisk()}) },
		func() { NewDisk(env, Config{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestTotalOpsCounts(t *testing.T) {
	env := sim.NewEnv(1)
	a := NewArray(env, DefaultArray())
	env.Go("w", func(p *sim.Proc) {
		if err := a.Write(p, 0, a.RowSize()); err != nil {
			t.Errorf("write: %v", err)
		}
	})
	env.Run()
	if a.TotalOps() < int64(a.DataWidth())+1 {
		t.Fatalf("TotalOps = %d, want >= %d", a.TotalOps(), a.DataWidth()+1)
	}
}
