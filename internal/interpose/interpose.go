// Package interpose provides the shared machinery every tracing framework
// in the repository is built from: per-event cost models for the different
// interposition mechanisms (ptrace, breakpoint-based library tracing,
// LD_PRELOAD, in-kernel VFS hooks) and a Recorder that implements both the
// syscall-hook and library-hook interfaces, charging virtual time per event
// and forwarding records to a sink.
//
// The per-event charge is the mechanism behind the paper's central overhead
// observation: "a constant number of traced events are generated for each
// block. The number of such events is inversely proportional to block size,
// thus a smaller block size implies more events to trace."
package interpose

import (
	"iotaxo/internal/sim"
	"iotaxo/internal/trace"
)

// CostModel is the virtual-time price of observing one event.
type CostModel struct {
	// EnterCost is charged when the call is entered (e.g. the first ptrace
	// stop: two context switches into the tracer and back).
	EnterCost sim.Duration
	// ExitCost is charged when the call returns (the second stop, plus
	// argument decoding and formatting).
	ExitCost sim.Duration
	// PerOutputByte is charged per byte of trace data emitted (synchronous
	// write of the trace line/record to the trace file).
	PerOutputByte sim.Duration
}

// EventCost reports the total charge for one event producing n output bytes.
func (m CostModel) EventCost(n int64) sim.Duration {
	return m.EnterCost + m.ExitCost + sim.Duration(n)*m.PerOutputByte
}

// Ptrace approximates strace with timestamped output (-tt -T) written
// synchronously to a per-process trace file: two ptrace stops per syscall
// (four context switches), register and argument fetches via PTRACE_PEEKDATA,
// and the formatted line write.
func Ptrace() CostModel {
	return CostModel{
		EnterCost:     60 * sim.Microsecond,
		ExitCost:      90 * sim.Microsecond,
		PerOutputByte: 600 * sim.Nanosecond,
	}
}

// LtraceBreakpoint approximates ltrace on library calls: software
// breakpoints with single-stepping through the PLT, symbol resolution, and
// argument formatting make it two orders of magnitude more expensive than a
// plain function call — the reason LANL-Trace's ltrace mode is its
// high-overhead configuration (ltrace slowdowns of 100-1000x on
// call-intensive code were normal in this era).
func LtraceBreakpoint() CostModel {
	return CostModel{
		EnterCost:     2200 * sim.Microsecond,
		ExitCost:      2800 * sim.Microsecond,
		PerOutputByte: 15 * sim.Microsecond,
	}
}

// Preload approximates LD_PRELOAD interposition (//TRACE): an in-process
// wrapper function, orders of magnitude cheaper than ptrace.
func Preload() CostModel {
	return CostModel{
		EnterCost:     800 * sim.Nanosecond,
		ExitCost:      1200 * sim.Nanosecond,
		PerOutputByte: 60 * sim.Nanosecond,
	}
}

// VFSHook approximates an in-kernel stackable-layer hook (Tracefs): a
// function call on the VFS path plus buffered binary output.
func VFSHook() CostModel {
	return CostModel{
		EnterCost:     300 * sim.Nanosecond,
		ExitCost:      500 * sim.Nanosecond,
		PerOutputByte: 25 * sim.Nanosecond,
	}
}

// Zero is the free model, used by the ablation benchmark that demonstrates
// the overhead curves collapse without per-event charges.
func Zero() CostModel { return CostModel{} }

// Sink receives completed trace records.
type Sink interface {
	Emit(rec *trace.Record)
}

// SinkFunc adapts a function to Sink.
type SinkFunc func(rec *trace.Record)

// Emit implements Sink.
func (f SinkFunc) Emit(rec *trace.Record) { f(rec) }

// StreamSink adapts a pipeline sink to the hook-facing Sink interface, so a
// framework can stream records straight into a codec or transform chain as
// they are observed.
type StreamSink struct {
	dst trace.Sink
	err error
}

// StreamTo wraps a pipeline sink. Check Err after the run; closing the
// underlying trace.Sink remains the caller's job.
func StreamTo(dst trace.Sink) *StreamSink { return &StreamSink{dst: dst} }

// Emit implements Sink. Pipeline errors are sticky and reported by Err —
// the hook interfaces have no error channel of their own.
func (s *StreamSink) Emit(rec *trace.Record) {
	if s.err == nil {
		s.err = s.dst.Write(rec)
	}
}

// Err reports the first error returned by the underlying pipeline sink.
func (s *StreamSink) Err() error { return s.err }

// Recorder charges a cost model per observed event and forwards records to
// a sink. It implements vfs.SyscallHook and mpi.LibHook (the two interfaces
// share their method set by design).
type Recorder struct {
	Model  CostModel
	Sink   Sink
	Filter func(*trace.Record) bool // nil traces everything

	// Stats.
	Events      int64
	Suppressed  int64
	OutputBytes int64
}

// NewRecorder returns a recorder with the given model and sink.
func NewRecorder(model CostModel, sink Sink) *Recorder {
	return &Recorder{Model: model, Sink: sink}
}

// Enter implements the hook entry phase.
func (r *Recorder) Enter(p *sim.Proc, name string) {
	if r.Model.EnterCost > 0 {
		p.Sleep(r.Model.EnterCost)
	}
}

// Exit implements the hook exit phase: filter, charge, forward.
func (r *Recorder) Exit(p *sim.Proc, rec *trace.Record) {
	if r.Model.ExitCost > 0 {
		p.Sleep(r.Model.ExitCost)
	}
	if r.Filter != nil && !r.Filter(rec) {
		r.Suppressed++
		return
	}
	n := rec.EstimatedTextSize()
	if r.Model.PerOutputByte > 0 {
		p.Sleep(sim.Duration(n) * r.Model.PerOutputByte)
	}
	r.Events++
	r.OutputBytes += n
	if r.Sink != nil {
		r.Sink.Emit(rec)
	}
}

// Collector is a Sink that retains records in memory, standing in for the
// per-process trace file.
type Collector struct {
	Records []trace.Record
}

// Emit implements Sink.
func (c *Collector) Emit(rec *trace.Record) { c.Records = append(c.Records, rec.Clone()) }

// Len returns the number of collected records.
func (c *Collector) Len() int { return len(c.Records) }

// Source streams the collected records: how downstream pipelines read a
// per-process trace back out of its in-memory "trace file".
func (c *Collector) Source() trace.Source { return trace.SliceSource(c.Records) }
