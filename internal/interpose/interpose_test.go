package interpose

import (
	"testing"
	"testing/quick"

	"iotaxo/internal/sim"
	"iotaxo/internal/trace"
)

func sampleRecord() trace.Record {
	return trace.Record{
		Name: "SYS_pwrite", Args: []string{"3", "0", "65536"}, Ret: "65536",
		Path: "/pfs/f", Bytes: 65536, Class: trace.ClassSyscall,
	}
}

func TestRecorderChargesTime(t *testing.T) {
	env := sim.NewEnv(1)
	col := &Collector{}
	rec := NewRecorder(Ptrace(), col)
	var elapsed sim.Duration
	env.Go("app", func(p *sim.Proc) {
		start := p.Now()
		r := sampleRecord()
		rec.Enter(p, r.Name)
		rec.Exit(p, &r)
		elapsed = p.Now() - start
	})
	env.Run()
	sr := sampleRecord()
	want := Ptrace().EventCost(sr.EstimatedTextSize())
	if elapsed != want {
		t.Fatalf("charged %v, want %v", elapsed, want)
	}
	if col.Len() != 1 || rec.Events != 1 {
		t.Fatalf("capture failed: %d %d", col.Len(), rec.Events)
	}
}

func TestZeroModelFree(t *testing.T) {
	env := sim.NewEnv(1)
	rec := NewRecorder(Zero(), &Collector{})
	var elapsed sim.Duration
	env.Go("app", func(p *sim.Proc) {
		start := p.Now()
		r := sampleRecord()
		rec.Enter(p, r.Name)
		rec.Exit(p, &r)
		elapsed = p.Now() - start
	})
	env.Run()
	if elapsed != 0 {
		t.Fatalf("zero model charged %v", elapsed)
	}
}

func TestFilterSuppresses(t *testing.T) {
	env := sim.NewEnv(1)
	col := &Collector{}
	rec := NewRecorder(Zero(), col)
	rec.Filter = func(r *trace.Record) bool { return r.Name != "SYS_pwrite" }
	env.Go("app", func(p *sim.Proc) {
		r := sampleRecord()
		rec.Enter(p, r.Name)
		rec.Exit(p, &r)
		other := sampleRecord()
		other.Name = "SYS_open"
		rec.Enter(p, other.Name)
		rec.Exit(p, &other)
	})
	env.Run()
	if col.Len() != 1 || rec.Suppressed != 1 || rec.Events != 1 {
		t.Fatalf("filter accounting: len=%d sup=%d ev=%d", col.Len(), rec.Suppressed, rec.Events)
	}
}

func TestModelOrdering(t *testing.T) {
	// The mechanisms must be ordered by invasiveness: VFS hook < preload <
	// ptrace < ltrace breakpoints.
	size := int64(120)
	v := VFSHook().EventCost(size)
	pre := Preload().EventCost(size)
	pt := Ptrace().EventCost(size)
	lt := LtraceBreakpoint().EventCost(size)
	if !(v < pre && pre < pt && pt < lt) {
		t.Fatalf("cost ordering broken: vfs=%v preload=%v ptrace=%v ltrace=%v", v, pre, pt, lt)
	}
}

// Property: EventCost is monotone in output size.
func TestEventCostMonotoneProperty(t *testing.T) {
	m := Ptrace()
	f := func(a, b uint16) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return m.EventCost(x) <= m.EventCost(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSinkFunc(t *testing.T) {
	var got *trace.Record
	s := SinkFunc(func(r *trace.Record) { got = r })
	r := sampleRecord()
	s.Emit(&r)
	if got == nil || got.Name != "SYS_pwrite" {
		t.Fatal("SinkFunc did not forward")
	}
}

func TestCollectorClones(t *testing.T) {
	col := &Collector{}
	r := sampleRecord()
	col.Emit(&r)
	r.Args[0] = "mutated"
	if col.Records[0].Args[0] == "mutated" {
		t.Fatal("collector shares arg storage with caller")
	}
}

func TestRecorderStatsAccumulate(t *testing.T) {
	env := sim.NewEnv(1)
	rec := NewRecorder(Zero(), &Collector{})
	env.Go("app", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			r := sampleRecord()
			rec.Enter(p, r.Name)
			rec.Exit(p, &r)
		}
	})
	env.Run()
	sr := sampleRecord()
	if rec.Events != 5 || rec.OutputBytes != 5*sr.EstimatedTextSize() {
		t.Fatalf("stats: %d events, %d bytes", rec.Events, rec.OutputBytes)
	}
}
