package main

import (
	"strings"
	"testing"
)

// TestListGolden pins the -list rendering: registry-ordered, one framework
// per line with its event types. A new registered framework is expected to
// change this output — update the golden text alongside the registration.
func TestListGolden(t *testing.T) {
	want := `# registered I/O tracing frameworks
//TRACE                      I/O system calls
LANL-Trace                   System calls, Library calls
Multi-Layer Trace Analysis   Library calls, System calls, File system operations
PathTrace (X-Trace style)    Network messages, Library calls
Tracefs                      File system operations
`
	if got := listOutput(); got != want {
		t.Fatalf("-list output drifted:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestListWorkloadsGolden pins the -list-workloads rendering: registry-
// ordered, one scenario per line with its description. A new registered
// workload is expected to change this output — update the golden text
// alongside the registration.
func TestListWorkloadsGolden(t *testing.T) {
	want := `# registered workload scenarios
N-1 non-strided      mpi_io_test: one shared file, per-rank contiguous segments (Figure 3)
N-1 strided          mpi_io_test: one shared file, block-interleaved ranks (Figure 2)
N-N                  mpi_io_test: every rank writes its own file (Figure 4)
analytics-scan       read-mostly strided scan over a pre-populated shared file
checkpoint-restart   barrier-phased checkpoint write bursts, then a full restart read of the last checkpoint
metadata-storm       N-N create/stat/unlink storm over many small files
producer-consumer    paired ranks: producers write shared-file segments their partner rank reads back
`
	if got := listWorkloadsOutput(); got != want {
		t.Fatalf("-list-workloads output drifted:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestExtendedTableSmoke checks the -table extended rendering covers every
// registered framework and every taxonomy axis row.
func TestExtendedTableSmoke(t *testing.T) {
	out := extendedTable()
	lines := strings.Split(out, "\n")
	if len(lines) < 14 {
		t.Fatalf("extended table too short (%d lines):\n%s", len(lines), out)
	}
	header := lines[0]
	for _, name := range []string{"//TRACE", "LANL-Trace", "Multi-Layer Trace Analysis", "PathTrace (X-Trace style)", "Tracefs"} {
		if !strings.Contains(header, name) {
			t.Errorf("header missing %q: %s", name, header)
		}
	}
	// Registry order is deterministic: //TRACE before LANL-Trace before Tracefs.
	if !(strings.Index(header, "//TRACE") < strings.Index(header, "LANL-Trace") &&
		strings.Index(header, "LANL-Trace") < strings.Index(header, "Tracefs")) {
		t.Errorf("header columns out of registry order: %s", header)
	}
	for _, row := range []string{
		"Parallel file system compatibility",
		"Ease of installation and use",
		"Anonymization",
		"Events types",
		"Control of trace granularity",
		"Replayable trace generation",
		"Trace replay fidelity",
		"Reveals dependencies",
		"Intrusive vs. Passive",
		"Analysis tools",
		"Trace data format",
		"Accounts for time skew and drift",
		"Elapsed time overhead",
	} {
		if !strings.Contains(out, row) {
			t.Errorf("extended table missing row %q", row)
		}
	}
	// The future-work frameworks carry their footnotes.
	if !strings.Contains(out, "Notes:") {
		t.Error("extended table missing notes section")
	}
}
