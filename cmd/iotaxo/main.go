// Command iotaxo prints the paper's taxonomy tables: the Table 1 template,
// the built-in Table 2 classification of LANL-Trace, Tracefs and //TRACE,
// single-framework cards, and (with -measured) classifications with
// overheads re-measured on the simulated cluster. Framework names resolve
// through the registry in internal/framework, so every registered framework
// — including the future-work ones — works with -table card and -measured.
//
// Usage:
//
//	iotaxo -list
//	iotaxo -table template
//	iotaxo -table summary -format markdown
//	iotaxo -table card -framework Tracefs
//	iotaxo -table card -framework PathTrace -measured
//	iotaxo -table summary -measured
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"iotaxo/internal/core"
	"iotaxo/internal/framework"
	"iotaxo/internal/harness"
)

func main() {
	table := flag.String("table", "summary", "which table: template | summary | extended | card")
	format := flag.String("format", "text", "output format: text | markdown | csv")
	fwName := flag.String("framework", "LANL-Trace", "framework name for -table card (see -list)")
	measured := flag.Bool("measured", false, "re-measure overheads on the simulated cluster (slow)")
	list := flag.Bool("list", false, "list registered frameworks and exit")
	flag.Parse()

	if *list {
		fmt.Print(listOutput())
		return
	}

	switch *table {
	case "template":
		fmt.Print(core.Table1Template())
	case "card":
		fw, ok := framework.Lookup(*fwName)
		if !ok {
			fmt.Fprintf(os.Stderr, "iotaxo: unknown framework %q (have %s)\n",
				*fwName, strings.Join(framework.Names(), ", "))
			os.Exit(2)
		}
		c := fw.Classification()
		if *measured {
			fmt.Println("# measuring on the simulated cluster (scaled-down volumes)...")
			m, err := harness.MatrixSweepOf(harness.QuickOptions(), fw)
			if err != nil {
				fmt.Fprintf(os.Stderr, "iotaxo: %v\n", err)
				os.Exit(1)
			}
			c = m.Classifications()[0]
		}
		fmt.Print(core.RenderCard(c))
	case "extended":
		fmt.Print(extendedTable())
	case "summary":
		if *measured {
			fmt.Println("# measuring on the simulated cluster (scaled-down volumes)...")
			m, err := harness.MatrixSweep(harness.QuickOptions())
			if err != nil {
				fmt.Fprintf(os.Stderr, "iotaxo: %v\n", err)
				os.Exit(1)
			}
			fmt.Print(m.RenderComparison())
			return
		}
		cs := core.AllPaperClassifications()
		switch *format {
		case "text":
			fmt.Print(core.RenderComparison(cs...))
		case "markdown":
			fmt.Print(core.RenderMarkdown(cs...))
		case "csv":
			fmt.Print(core.RenderCSV(cs...))
		default:
			fmt.Fprintf(os.Stderr, "iotaxo: unknown format %q\n", *format)
			os.Exit(2)
		}
	default:
		fmt.Fprintf(os.Stderr, "iotaxo: unknown table %q\n", *table)
		os.Exit(2)
	}
}

// listOutput renders the registry: every framework that can be classified
// and measured, in deterministic order.
func listOutput() string {
	var b strings.Builder
	b.WriteString("# registered I/O tracing frameworks\n")
	for _, fw := range framework.All() {
		c := fw.Classification()
		events := make([]string, len(c.EventTypes))
		for i, e := range c.EventTypes {
			events[i] = string(e)
		}
		fmt.Fprintf(&b, "%-28s %s\n", fw.Name(), strings.Join(events, ", "))
	}
	return b.String()
}

// extendedTable renders the future-work "global taxonomy": every registered
// framework side by side — the three surveyed frameworks plus the two
// Section 6 names next (multi-layer trace analysis [6] and path-based
// event tracing [8]), and any framework registered since.
func extendedTable() string {
	cs := make([]*core.Classification, 0)
	for _, fw := range framework.All() {
		cs = append(cs, fw.Classification())
	}
	return core.RenderComparison(cs...)
}
