// Command iotaxo prints the paper's taxonomy tables: the Table 1 template,
// the built-in Table 2 classification of LANL-Trace, Tracefs and //TRACE,
// single-framework cards, the framework x workload overhead matrix, and
// (with -measured) classifications with overheads re-measured on the
// simulated cluster. Framework names resolve through the registry in
// internal/framework and workload names through the registry in
// internal/workload, so every registered framework and scenario — including
// ones added after this command was written — works with -table card,
// -table matrix, -measured, and -workload.
//
// Usage:
//
//	iotaxo -list
//	iotaxo -list-workloads
//	iotaxo -table template
//	iotaxo -table summary -format markdown
//	iotaxo -table card -framework Tracefs
//	iotaxo -table card -framework PathTrace -measured
//	iotaxo -table card -framework Tracefs -measured -workload metadata-storm
//	iotaxo -table summary -measured
//	iotaxo -table matrix
//	iotaxo -table matrix -workload checkpoint-restart
//	iotaxo -exp scaling
//	iotaxo -exp scaling -scale-mode strong -max-ranks 64
//	iotaxo -exp scaling -max-ranks 4096
//	iotaxo -exp scaling -ranks-per-node 4
//	iotaxo -exp servers
//	iotaxo -exp servers -max-servers 32 -workload checkpoint-restart
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"iotaxo/internal/core"
	"iotaxo/internal/framework"
	"iotaxo/internal/harness"
	"iotaxo/internal/workload"
)

func main() {
	table := flag.String("table", "summary", "which table: template | summary | extended | card | matrix")
	format := flag.String("format", "text", "output format: text | markdown | csv")
	fwName := flag.String("framework", "LANL-Trace", "framework name for -table card (see -list)")
	wlName := flag.String("workload", "", "restrict measurement to one workload (see -list-workloads); empty or all = every workload for tables, but -exp scaling/servers default to N-1 strided (all = registry)")
	measured := flag.Bool("measured", false, "re-measure overheads on the simulated cluster (slow)")
	list := flag.Bool("list", false, "list registered frameworks and exit")
	listWorkloads := flag.Bool("list-workloads", false, "list registered workloads and exit")
	exp := flag.String("exp", "", "run an experiment instead of printing a table: scaling | servers")
	scaleMode := flag.String("scale-mode", "weak", "scaling mode for -exp scaling: weak | strong")
	maxRanks := flag.Int("max-ranks", harness.DefaultMaxRanks, "top rung of the -exp scaling rank ladder (e.g. 4096)")
	maxServers := flag.Int("max-servers", harness.DefaultMaxServers, "top rung of the -exp servers object-server ladder")
	ranksPerNode := flag.Int("ranks-per-node", 1, "MPI ranks placed per compute node (placement axis)")
	cacheDir := flag.String("cache-dir", harness.DefaultCacheDir(), "directory for the persisted simulation-result cache (empty = in-memory only)")
	noCache := flag.Bool("no-cache", false, "disable the persisted simulation-result cache (in-run baseline sharing still applies)")
	poolMem := flag.String("pool-mem", "", "memory budget for the simulation worker pool, e.g. 2GB or 512MB (empty = unlimited)")
	flag.Parse()

	if budget, err := harness.ParseMemBudget(*poolMem); err != nil {
		fmt.Fprintf(os.Stderr, "iotaxo: %v\n", err)
		os.Exit(2)
	} else {
		harness.SetPoolMemBudget(budget)
	}

	cache := resolveCache(*cacheDir, *noCache)

	if *list {
		fmt.Print(listOutput())
		return
	}
	if *listWorkloads {
		fmt.Print(listWorkloadsOutput())
		return
	}
	if *exp != "" {
		switch *exp {
		case "scaling":
			runScaling(cache, *scaleMode, *maxRanks, *ranksPerNode, *wlName)
		case "servers":
			runServers(cache, *maxServers, *ranksPerNode, *wlName)
		default:
			fmt.Fprintf(os.Stderr, "iotaxo: unknown experiment %q (have scaling, servers)\n", *exp)
			os.Exit(2)
		}
		return
	}

	// -measured keeps the QuickOptions block-size sweep (a real min-max
	// envelope per cell); -table matrix runs the cheaper single-point smoke
	// configuration, sized for the full registry x registry grid.
	o := harness.QuickOptions()
	if *table == "matrix" {
		o = harness.MatrixSmokeOptions()
	}
	o.Cache = cache
	if *wlName != "" && *wlName != "all" {
		w, ok := workload.ByName(*wlName)
		if !ok {
			fmt.Fprintf(os.Stderr, "iotaxo: unknown workload %q (have all, %s)\n",
				*wlName, strings.Join(workload.Names(), ", "))
			os.Exit(2)
		}
		o.Workloads = []workload.Workload{w}
	}

	switch *table {
	case "template":
		fmt.Print(core.Table1Template())
	case "card":
		fw, ok := framework.Lookup(*fwName)
		if !ok {
			fmt.Fprintf(os.Stderr, "iotaxo: unknown framework %q (have %s)\n",
				*fwName, strings.Join(framework.Names(), ", "))
			os.Exit(2)
		}
		c := fw.Classification()
		if *measured {
			fmt.Println("# measuring on the simulated cluster (scaled-down volumes)...")
			m, err := harness.MatrixSweepOf(o, fw)
			if err != nil {
				fmt.Fprintf(os.Stderr, "iotaxo: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintln(os.Stderr, m.Stats.Footer())
			c = m.Classifications()[0]
		}
		fmt.Print(core.RenderCard(c))
	case "matrix":
		fmt.Println("# measuring on the simulated cluster (scaled-down volumes)...")
		m, err := harness.MatrixSweep(o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iotaxo: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(m.Format())
		fmt.Fprintln(os.Stderr, m.Stats.Footer())
	case "extended":
		fmt.Print(extendedTable())
	case "summary":
		if *measured {
			fmt.Println("# measuring on the simulated cluster (scaled-down volumes)...")
			m, err := harness.MatrixSweep(o)
			if err != nil {
				fmt.Fprintf(os.Stderr, "iotaxo: %v\n", err)
				os.Exit(1)
			}
			fmt.Print(m.RenderComparison())
			fmt.Fprintln(os.Stderr, m.Stats.Footer())
			return
		}
		cs := core.AllPaperClassifications()
		switch *format {
		case "text":
			fmt.Print(core.RenderComparison(cs...))
		case "markdown":
			fmt.Print(core.RenderMarkdown(cs...))
		case "csv":
			fmt.Print(core.RenderCSV(cs...))
		default:
			fmt.Fprintf(os.Stderr, "iotaxo: unknown format %q\n", *format)
			os.Exit(2)
		}
	default:
		fmt.Fprintf(os.Stderr, "iotaxo: unknown table %q\n", *table)
		os.Exit(2)
	}
}

// resolveCache builds the CLI's simulation-result cache: persisted under
// dir by default, in-memory only with -no-cache (in-run baseline sharing
// needs no directory). The cache only ever accelerates — results are
// byte-identical with or without it — but it addresses simulation *inputs*:
// after changing simulator code, clear the directory (or run -no-cache).
func resolveCache(dir string, noCache bool) *harness.Cache {
	if noCache {
		return harness.NewCache("")
	}
	return harness.NewCache(dir)
}

// runScaling measures overhead vs rank count for every registered
// framework: the -exp scaling experiment. Flag resolution (mode, rank
// ladder, placement, workload axis) is shared with tracebench via
// harness.ResolveScaleOptions.
func runScaling(cache *harness.Cache, mode string, maxRanks, ranksPerNode int, wlName string) {
	o, err := harness.ResolveScaleOptions(harness.ScaleOptions(), mode, maxRanks, ranksPerNode, wlName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iotaxo: %v\n", err)
		os.Exit(2)
	}
	o.Cache = cache
	fmt.Println("# measuring overhead vs ranks on the simulated cluster...")
	res, err := harness.ScaleMatrixSweep(o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iotaxo: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(res.Format())
	fmt.Fprintln(os.Stderr, res.Stats.Footer())
}

// runServers measures overhead vs object server count for every registered
// framework: the -exp servers experiment, the storage dual of -exp scaling.
func runServers(cache *harness.Cache, maxServers, ranksPerNode int, wlName string) {
	o, err := harness.ResolveServerOptions(harness.ServerOptions(), maxServers, 0, ranksPerNode, wlName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iotaxo: %v\n", err)
		os.Exit(2)
	}
	o.Cache = cache
	fmt.Println("# measuring overhead vs PFS object servers on the simulated cluster...")
	res, err := harness.ServerMatrixSweep(o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iotaxo: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(res.Format())
	fmt.Fprintln(os.Stderr, res.Stats.Footer())
}

// listOutput renders the framework registry: every framework that can be
// classified and measured, in deterministic order.
func listOutput() string {
	var b strings.Builder
	b.WriteString("# registered I/O tracing frameworks\n")
	for _, fw := range framework.All() {
		c := fw.Classification()
		events := make([]string, len(c.EventTypes))
		for i, e := range c.EventTypes {
			events[i] = string(e)
		}
		fmt.Fprintf(&b, "%-28s %s\n", fw.Name(), strings.Join(events, ", "))
	}
	return b.String()
}

// listWorkloadsOutput renders the workload registry: every scenario the
// overhead matrix measures frameworks against, in deterministic order.
func listWorkloadsOutput() string {
	var b strings.Builder
	b.WriteString("# registered workload scenarios\n")
	for _, w := range workload.All() {
		fmt.Fprintf(&b, "%-20s %s\n", w.Name(), w.Description())
	}
	return b.String()
}

// extendedTable renders the future-work "global taxonomy": every registered
// framework side by side — the three surveyed frameworks plus the two
// Section 6 names next (multi-layer trace analysis [6] and path-based
// event tracing [8]), and any framework registered since.
func extendedTable() string {
	cs := make([]*core.Classification, 0)
	for _, fw := range framework.All() {
		cs = append(cs, fw.Classification())
	}
	return core.RenderComparison(cs...)
}
