// Command iotaxo prints the paper's taxonomy tables: the Table 1 template,
// the built-in Table 2 classification of LANL-Trace, Tracefs and //TRACE,
// single-framework cards, and (with -measured) Table 2 with overheads
// re-measured on the simulated cluster.
//
// Usage:
//
//	iotaxo -table template
//	iotaxo -table summary -format markdown
//	iotaxo -table card -framework Tracefs
//	iotaxo -table summary -measured
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"iotaxo/internal/core"
	"iotaxo/internal/harness"
	"iotaxo/internal/multilayer"
	"iotaxo/internal/pathtrace"
)

func main() {
	table := flag.String("table", "summary", "which table: template | summary | extended | card")
	format := flag.String("format", "text", "output format: text | markdown | csv")
	framework := flag.String("framework", "LANL-Trace", "framework name for -table card")
	measured := flag.Bool("measured", false, "re-measure overheads on the simulated cluster (slow)")
	flag.Parse()

	switch *table {
	case "template":
		fmt.Print(core.Table1Template())
	case "card":
		c := findClassification(*framework)
		if c == nil {
			fmt.Fprintf(os.Stderr, "iotaxo: unknown framework %q (have LANL-Trace, Tracefs, //TRACE)\n", *framework)
			os.Exit(2)
		}
		fmt.Print(core.RenderCard(c))
	case "extended":
		// The future-work "global taxonomy": the three surveyed frameworks
		// plus the two frameworks Section 6 names next — multi-layer trace
		// analysis [6] and path-based event tracing [8].
		cs := append(core.AllPaperClassifications(),
			multilayer.Classification(), pathtrace.Classification())
		fmt.Print(core.RenderComparison(cs...))
	case "summary":
		if *measured {
			o := harness.QuickOptions()
			fmt.Println("# measuring on the simulated cluster (scaled-down volumes)...")
			fmt.Print(harness.Table2Measured(
				harness.ElapsedRange(o),
				harness.TracefsExperiment(o),
				harness.ParallelTraceExperiment(o),
			))
			return
		}
		cs := core.AllPaperClassifications()
		switch *format {
		case "text":
			fmt.Print(core.RenderComparison(cs...))
		case "markdown":
			fmt.Print(core.RenderMarkdown(cs...))
		case "csv":
			fmt.Print(core.RenderCSV(cs...))
		default:
			fmt.Fprintf(os.Stderr, "iotaxo: unknown format %q\n", *format)
			os.Exit(2)
		}
	default:
		fmt.Fprintf(os.Stderr, "iotaxo: unknown table %q\n", *table)
		os.Exit(2)
	}
}

func findClassification(name string) *core.Classification {
	all := append(core.AllPaperClassifications(),
		multilayer.Classification(), pathtrace.Classification())
	for _, c := range all {
		if strings.EqualFold(c.Name, name) ||
			strings.EqualFold(strings.Fields(c.Name)[0], name) {
			return c
		}
	}
	return nil
}
