// Command tracebench regenerates every table and figure of the paper's
// evaluation section on the simulated testbed.
//
// Usage:
//
//	tracebench                  # everything, scaled-down sizes
//	tracebench -exp fig2        # one experiment
//	tracebench -exp fig2 -csv   # CSV series for plotting
//	tracebench -full            # paper-scale data volumes (slow)
//	tracebench -bench-json BENCH_sweep.json   # cold/warm cache benchmark
//	tracebench -bench-codec BENCH_codec.json  # v1 vs v2 trace codec benchmark
//
// Experiments: fig1 fig2 fig3 fig4 overheads elapsed tracefs ptrace
// collective matrix scaling servers table1 table2 all. The matrix and
// table2 experiments sweep every registered framework (see
// internal/framework) against every registered workload scenario (see
// internal/workload); use -quick to keep them CI-friendly, or -workload to
// restrict the workload axis. The scaling experiment holds block size fixed
// and sweeps rank counts (-max-ranks, -scale-mode weak|strong,
// -ranks-per-node for multi-rank placement) for every registered framework;
// the servers experiment fixes the job and sweeps the parallel file
// system's object server count instead (-max-servers). Both default to the
// N-1 strided workload; -workload all sweeps the whole registry.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"iotaxo/internal/core"
	"iotaxo/internal/harness"
	"iotaxo/internal/lanltrace"
	"iotaxo/internal/workload"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (fig1..fig4, overheads, elapsed, tracefs, ptrace, collective, matrix, scaling, servers, table1, table2, all)")
	csv := flag.Bool("csv", false, "emit CSV instead of text tables (figures and scaling)")
	full := flag.Bool("full", false, "paper-scale data volumes (very slow)")
	quick := flag.Bool("quick", false, "tiny volumes (CI-friendly)")
	ranks := flag.Int("ranks", 0, "override rank count")
	mode := flag.String("mode", "ltrace", "LANL-Trace mode for overhead runs: strace | ltrace")
	seed := flag.Int64("seed", 1, "simulation seed")
	wlName := flag.String("workload", "", "restrict matrix/table2/scaling to one registered workload (default: all; scaling: N-1 strided, 'all' for the registry)")
	scaleMode := flag.String("scale-mode", "weak", "scaling mode for -exp scaling: weak | strong")
	maxRanks := flag.Int("max-ranks", 0, "top rung of the -exp scaling rank ladder, e.g. 4096 (default 512, 16 with -quick)")
	maxServers := flag.Int("max-servers", 0, "top rung of the -exp servers object-server ladder (default 16, 4 with -quick)")
	ranksPerNode := flag.Int("ranks-per-node", 1, "MPI ranks placed per compute node for -exp scaling/servers (placement axis)")
	cacheDir := flag.String("cache-dir", harness.DefaultCacheDir(), "directory for the persisted simulation-result cache (empty = in-memory only)")
	noCache := flag.Bool("no-cache", false, "disable the persisted simulation-result cache (in-run baseline sharing still applies)")
	benchJSON := flag.String("bench-json", "", "run the cold/warm cache benchmark and write the snapshot to this file, then exit (nonzero if warm output diverges)")
	benchLadder := flag.String("bench-ladder", "", "run the rank-ladder benchmark (wall time + peak heap per rung up to -max-ranks, default 65536) and write the JSON snapshot to this file, then exit")
	benchCodec := flag.String("bench-codec", "", "run the trace-codec benchmark (v1 vs v2 size, scan throughput, index pruning) and write the JSON snapshot to this file, then exit (nonzero on a format regression)")
	poolMem := flag.String("pool-mem", "", "memory budget for the simulation worker pool, e.g. 2GB or 512MB (empty = unlimited)")
	flag.Parse()

	if budget, err := harness.ParseMemBudget(*poolMem); err != nil {
		fmt.Fprintf(os.Stderr, "tracebench: %v\n", err)
		os.Exit(2)
	} else {
		harness.SetPoolMemBudget(budget)
	}

	if *benchLadder != "" {
		runBenchLadder(*benchLadder, *maxRanks)
		return
	}
	if *benchCodec != "" {
		runBenchCodec(*benchCodec)
		return
	}
	if *benchJSON != "" {
		runBench(*benchJSON)
		return
	}

	cache := harness.NewCache(*cacheDir)
	if *noCache {
		cache = harness.NewCache("")
	}

	o := harness.DefaultOptions()
	if *full {
		o = harness.FullOptions()
	}
	if *quick {
		o = harness.QuickOptions()
	}
	if *ranks > 0 {
		o.Ranks = *ranks
	}
	if *mode == "strace" {
		o.Mode = lanltrace.ModeStrace
	}
	o.Seed = *seed
	o.Cache = cache
	if *wlName != "" && *wlName != "all" {
		w, ok := workload.ByName(*wlName)
		if !ok {
			fmt.Fprintf(os.Stderr, "tracebench: unknown workload %q (have all, %s)\n",
				*wlName, strings.Join(workload.Names(), ", "))
			os.Exit(2)
		}
		o.Workloads = []workload.Workload{w}
	}

	// The scaling experiment has its own options: block size held fixed,
	// rank ladder swept instead.
	scaling := func() harness.ScaleMatrixResult {
		base := harness.ScaleOptions()
		if *quick {
			base = harness.ScaleSmokeOptions()
		}
		if *full {
			// Paper-scale per-rank volume; with the default 512-rank ladder
			// this is an overnight run, like -full everywhere else. -ranks
			// does not apply here: the rank axis is the ladder (-max-ranks).
			base.PerRankBytes = harness.FullOptions().PerRankBytes
		}
		base.Seed = *seed
		base.Cache = cache
		so, err := harness.ResolveScaleOptions(base, *scaleMode, *maxRanks, *ranksPerNode, *wlName)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracebench: %v\n", err)
			os.Exit(2)
		}
		res, err := harness.ScaleMatrixSweep(so)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracebench: scaling: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, res.Stats.Footer())
		return res
	}

	// The servers experiment is the storage dual: fixed job, object server
	// count swept instead.
	servers := func() harness.ServerMatrixResult {
		base := harness.ServerOptions()
		if *quick {
			base = harness.ServerSmokeOptions()
		}
		if *full {
			base.PerRankBytes = harness.FullOptions().PerRankBytes
		}
		base.Seed = *seed
		base.Cache = cache
		so, err := harness.ResolveServerOptions(base, *maxServers, *ranks, *ranksPerNode, *wlName)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracebench: %v\n", err)
			os.Exit(2)
		}
		res, err := harness.ServerMatrixSweep(so)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracebench: servers: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, res.Stats.Footer())
		return res
	}

	// matrix and table2 render the same MatrixSweep; compute it once when
	// -exp all asks for both.
	var matrixCache *harness.MatrixResult
	matrix := func() harness.MatrixResult {
		if matrixCache == nil {
			m, err := harness.MatrixSweep(o)
			if err != nil {
				fmt.Fprintf(os.Stderr, "tracebench: matrix: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintln(os.Stderr, m.Stats.Footer())
			matrixCache = &m
		}
		return *matrixCache
	}

	run := func(id string) {
		switch id {
		case "fig1":
			f1 := harness.Figure1(o)
			fmt.Println("# Figure 1: LANL-Trace sample outputs")
			fmt.Println("\n## Raw Trace Data (rank 0, first lines)")
			fmt.Print(f1.Raw)
			fmt.Println("\n## Aggregate Timing Information")
			fmt.Print(f1.Timing)
			fmt.Println("\n## Call Summary")
			fmt.Print(f1.Summary)
		case "fig2":
			emitFigure(harness.Figure2(o), *csv)
		case "fig3":
			emitFigure(harness.Figure3(o), *csv)
		case "fig4":
			emitFigure(harness.Figure4(o), *csv)
		case "overheads":
			fmt.Print(harness.InTextOverheads(o).Format())
		case "elapsed":
			fmt.Print(harness.ElapsedRange(o).Format())
		case "tracefs":
			fmt.Print(harness.TracefsExperiment(o).Format())
		case "ptrace":
			fmt.Print(harness.ParallelTraceExperiment(o).Format())
		case "collective":
			fmt.Print(harness.CollectiveAblation(o).Format())
		case "matrix":
			fmt.Println("# Framework x workload overhead matrix (every registered framework x every registered workload)")
			fmt.Print(matrix().Format())
		case "scaling":
			res := scaling()
			if *csv {
				for _, s := range res.Series {
					fmt.Printf("# %s on %s (%s scaling%s)\n%s", s.Framework, s.Workload, s.Mode, s.Placement(), s.CSV())
				}
				return
			}
			fmt.Println("# Overhead vs ranks (every registered framework)")
			fmt.Print(res.Format())
		case "servers":
			res := servers()
			if *csv {
				for _, s := range res.Series {
					fmt.Printf("# %s on %s (%d ranks%s)\n%s", s.Framework, s.Workload, s.Ranks, s.Placement(), s.CSV())
				}
				return
			}
			fmt.Println("# Overhead vs PFS object servers (every registered framework)")
			fmt.Print(res.Format())
		case "table1":
			fmt.Println("# Table 1: summary table template")
			fmt.Print(core.Table1Template())
		case "table2":
			fmt.Println("# Table 2: classification summary with measured overheads (every registered framework)")
			fmt.Print(matrix().RenderComparison())
		default:
			fmt.Fprintf(os.Stderr, "tracebench: unknown experiment %q\n", id)
			os.Exit(2)
		}
	}

	if *exp == "all" {
		for _, id := range []string{"table1", "fig1", "fig2", "fig3", "fig4", "overheads", "elapsed", "tracefs", "ptrace", "collective", "matrix", "scaling", "servers", "table2"} {
			fmt.Printf("\n%s\n", strings.Repeat("=", 78))
			run(id)
		}
		return
	}
	run(*exp)
}

// runBench measures the memoizing sweep engine itself: a cold then warm
// full-registry matrix smoke sweep against a fresh cache, written as one
// JSON snapshot (the in-repo BENCH_sweep.json trajectory point). Exits
// nonzero if the warm run diverged from the cold run — a caching bug, not
// a performance regression.
func runBench(path string) {
	snap, err := harness.BenchSweep()
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracebench: bench: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, []byte(snap.JSON()), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "tracebench: bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "# bench: cold %.0fms (%d executed), warm %.0fms (%d executed, %d cached), identical=%v -> %s\n",
		snap.Cold.WallMS, snap.Cold.Executed, snap.Warm.WallMS, snap.Warm.Executed,
		snap.Warm.MemHits+snap.Warm.DiskHits, snap.Identical, path)
	if !snap.Identical {
		fmt.Fprintln(os.Stderr, "tracebench: bench: warm sweep output diverged from cold sweep")
		os.Exit(1)
	}
}

// runBenchLadder measures the engine's rank-scaling trajectory: the
// single-cell ladder timed rung by rung (wall time + peak heap), written as
// the in-repo BENCH_ladder.json snapshot. maxRanks caps the top rung (0 =
// the full 65536-rank ladder); CI runs the 16384 smoke.
func runBenchLadder(path string, maxRanks int) {
	if maxRanks <= 0 {
		maxRanks = 65536
	}
	snap, err := harness.BenchLadder(maxRanks)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracebench: bench-ladder: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, []byte(snap.JSON()), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "tracebench: bench-ladder: %v\n", err)
		os.Exit(1)
	}
	for _, r := range snap.Rungs {
		fmt.Fprintf(os.Stderr, "# ladder: %6d ranks  %9.0f ms  heap peak %7.1f MB\n", r.Ranks, r.WallMS, r.PeakHeapMB)
	}
	fmt.Fprintf(os.Stderr, "# ladder: %d rungs (%s on %s, %s scaling) -> %s\n",
		len(snap.Rungs), snap.Framework, snap.Workload, snap.Mode, path)
}

// runBenchCodec measures the two trace codecs against each other on the
// full-registry matrix streams and probes the v2 block index, written as the
// in-repo BENCH_codec.json snapshot. Exits nonzero if a run fails or the
// snapshot misses an acceptance bar (size ratio, pruning fraction) — a
// format regression, not a performance blip.
func runBenchCodec(path string) {
	snap, err := harness.BenchCodec()
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracebench: bench-codec: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, []byte(snap.JSON()), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "tracebench: bench-codec: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "# codec: %d records, v1 %.1f B/rec, v2 %.1f B/rec (%.2fx, %.2fx deflated); index decoded %d/%d blocks; passed=%v -> %s\n",
		snap.TotalRecords, snap.V1PerRecord, snap.V2PerRecord, snap.SizeRatio, snap.SizeRatioComp,
		snap.IndexDecoded, snap.IndexBlocks, snap.Passed, path)
	if !snap.Passed {
		fmt.Fprintln(os.Stderr, "tracebench: bench-codec: snapshot failed an acceptance bar")
		os.Exit(1)
	}
}

func emitFigure(fig harness.FigureResult, csv bool) {
	if csv {
		fmt.Print(fig.CSV())
		return
	}
	fmt.Print(fig.Format())
}
