// Command traceconv inspects and converts trace files between the two
// formats the taxonomy distinguishes, and runs anonymization passes over
// them — the workflow behind LANL's anonymized trace releases.
//
// The tool is a single streaming pass: records are pulled from the input
// decoder, through the optional anonymization transform, and pushed into the
// statistics folds and the output encoder one at a time. Memory stays
// O(block), not O(trace), so multi-gigabyte traces convert in constant
// space; binary encoding fans out across a worker pool.
//
// Usage:
//
//	traceconv -in raw.trace -stats
//	traceconv -in raw.trace -to binary -out trace.bin -compress
//	traceconv -in trace.bin -to text -out back.trace
//	traceconv -in raw.trace -anonymize path,uid,gid -mode randomize -out anon.trace
//	traceconv -in raw.trace -anonymize path -mode encrypt -key 0123456789abcdef -out enc.trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"iotaxo/internal/analysis"
	"iotaxo/internal/anonymize"
	"iotaxo/internal/trace"
)

func main() {
	in := flag.String("in", "", "input trace file (text or binary, auto-detected)")
	out := flag.String("out", "", "output file (default stdout)")
	to := flag.String("to", "", "convert to format: text | binary")
	compress := flag.Bool("compress", false, "compress binary output")
	workers := flag.Int("workers", 0, "binary codec worker goroutines (0 = GOMAXPROCS)")
	blockRecs := flag.Int("block", 0, "records per binary output block (0 = default 512)")
	stats := flag.Bool("stats", false, "print a call summary and I/O statistics")
	anonSpec := flag.String("anonymize", "", "fields to anonymize (e.g. path,uid,gid or all)")
	mode := flag.String("mode", "randomize", "anonymization mode: randomize | encrypt")
	key := flag.String("key", "", "AES key for -mode encrypt (16/24/32 bytes)")
	salt := flag.String("salt", "iotaxo", "salt for -mode randomize")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "traceconv: -in is required")
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	src, format, err := trace.OpenAuto(f)
	if err != nil {
		fail(err)
	}
	input := src // keep the decoder handle for its block count

	// Optional anonymization transform in the stream.
	anonymized := false
	if *anonSpec != "" {
		spec, err := anonymize.ParseSpec(*anonSpec)
		if err != nil {
			fail(err)
		}
		var a anonymize.Anonymizer
		switch *mode {
		case "randomize":
			a = anonymize.NewRandomizer(spec, []byte(*salt))
		case "encrypt":
			if *key == "" {
				fail(fmt.Errorf("-mode encrypt requires -key"))
			}
			enc, err := anonymize.NewEncryptor(spec, []byte(*key))
			if err != nil {
				fail(err)
			}
			a = enc
		default:
			fail(fmt.Errorf("unknown -mode %q", *mode))
		}
		src = trace.TransformSource(src, anonymize.Transform(a))
		anonymized = true
	}

	// Assemble the sink fan-out: statistics folds and/or the re-encoder.
	var sinks []trace.Sink
	sum := analysis.NewCallSummary()
	ioStats := analysis.NewIOStats()
	if *stats {
		sinks = append(sinks, sum.Sink(), ioStats.Sink())
	}

	target := *to
	if target == "" && anonymized {
		if format == trace.FormatUnknown {
			target = "text" // empty input: emit a valid (empty) text trace
		} else {
			target = format.String() // keep input format
		}
	}
	var binOut *trace.ParallelBinaryWriter
	var closeOut func()
	switch target {
	case "":
		if !*stats {
			return // nothing to do
		}
	case "text":
		w, cl, err := openOut(*out)
		if err != nil {
			fail(err)
		}
		closeOut = cl
		sinks = append(sinks, trace.NewTextSink(w))
	case "binary":
		w, cl, err := openOut(*out)
		if err != nil {
			fail(err)
		}
		closeOut = cl
		binOut = trace.NewParallelBinaryWriter(w, trace.BinaryOptions{
			Compress:        *compress,
			Anonymized:      anonymized,
			RecordsPerBlock: *blockRecs,
		}, *workers)
		sinks = append(sinks, binOut)
	default:
		fail(fmt.Errorf("unknown -to format %q", target))
	}

	// The single streaming pass.
	dst := trace.TeeSink(sinks...)
	records, err := trace.Copy(dst, src)
	if cerr := dst.Close(); err == nil {
		err = cerr
	}
	if closeOut != nil {
		closeOut()
	}
	if err != nil {
		fail(err)
	}

	if *stats {
		fmt.Printf("# %d records (%s input%s)\n", records, format, blockNote(input))
		fmt.Print(sum.Format())
		fmt.Printf("# I/O: %d calls, %d bytes (%d read / %d written), %d distinct paths\n",
			ioStats.Calls, ioStats.Bytes, ioStats.ReadBytes, ioStats.WriteBytes,
			len(ioStats.DistinctPath))
	}
	if target != "" {
		fmt.Fprintf(os.Stderr, "traceconv: %d records -> %s%s\n",
			records, target, writeNote(binOut))
	}
}

// blockNote reports the input decoder's block count when it has one.
func blockNote(src trace.Source) string {
	if br, ok := src.(interface{ BlocksRead() int64 }); ok {
		return fmt.Sprintf(", %d blocks", br.BlocksRead())
	}
	return ""
}

// writeNote reports the output encoder's block and byte counts.
func writeNote(w *trace.ParallelBinaryWriter) string {
	if w == nil {
		return ""
	}
	return fmt.Sprintf(" (%d blocks, %d bytes)", w.BlocksWritten(), w.BytesWritten())
}

func openOut(path string) (io.Writer, func(), error) {
	if path == "" {
		return os.Stdout, func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "traceconv:", err)
	os.Exit(1)
}
