// Command traceconv inspects and converts trace files between the two
// formats the taxonomy distinguishes, and runs anonymization passes over
// them — the workflow behind LANL's anonymized trace releases.
//
// Usage:
//
//	traceconv -in raw.trace -stats
//	traceconv -in raw.trace -to binary -out trace.bin -compress
//	traceconv -in trace.bin -to text -out back.trace
//	traceconv -in raw.trace -anonymize path,uid,gid -mode randomize -out anon.trace
//	traceconv -in raw.trace -anonymize path -mode encrypt -key 0123456789abcdef -out enc.trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"iotaxo/internal/analysis"
	"iotaxo/internal/anonymize"
	"iotaxo/internal/trace"
)

func main() {
	in := flag.String("in", "", "input trace file (text or binary, auto-detected)")
	out := flag.String("out", "", "output file (default stdout)")
	to := flag.String("to", "", "convert to format: text | binary")
	compress := flag.Bool("compress", false, "compress binary output")
	stats := flag.Bool("stats", false, "print a call summary and I/O statistics")
	anonSpec := flag.String("anonymize", "", "fields to anonymize (e.g. path,uid,gid or all)")
	mode := flag.String("mode", "randomize", "anonymization mode: randomize | encrypt")
	key := flag.String("key", "", "AES key for -mode encrypt (16/24/32 bytes)")
	salt := flag.String("salt", "iotaxo", "salt for -mode randomize")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "traceconv: -in is required")
		os.Exit(2)
	}
	recs, wasBinary, err := readTrace(*in)
	if err != nil {
		fail(err)
	}

	anonymized := false
	if *anonSpec != "" {
		spec, err := anonymize.ParseSpec(*anonSpec)
		if err != nil {
			fail(err)
		}
		var a anonymize.Anonymizer
		switch *mode {
		case "randomize":
			a = anonymize.NewRandomizer(spec, []byte(*salt))
		case "encrypt":
			if *key == "" {
				fail(fmt.Errorf("-mode encrypt requires -key"))
			}
			enc, err := anonymize.NewEncryptor(spec, []byte(*key))
			if err != nil {
				fail(err)
			}
			a = enc
		default:
			fail(fmt.Errorf("unknown -mode %q", *mode))
		}
		recs = anonymize.Records(recs, a)
		anonymized = true
	}

	if *stats {
		fmt.Printf("# %d records (%s input)\n", len(recs), formatName(wasBinary))
		fmt.Print(analysis.Summarize(recs).Format())
		st := analysis.ComputeIOStats(recs)
		fmt.Printf("# I/O: %d calls, %d bytes (%d read / %d written), %d distinct paths\n",
			st.Calls, st.Bytes, st.ReadBytes, st.WriteBytes, len(st.DistinctPath))
		if *to == "" && *anonSpec == "" {
			return
		}
	}

	target := *to
	if target == "" {
		if *anonSpec == "" {
			return
		}
		target = formatName(wasBinary) // keep input format
	}
	w, closeFn, err := openOut(*out)
	if err != nil {
		fail(err)
	}
	defer closeFn()
	switch target {
	case "text":
		if err := writeText(w, recs); err != nil {
			fail(err)
		}
	case "binary":
		bw := trace.NewBinaryWriter(w, trace.BinaryOptions{Compress: *compress, Anonymized: anonymized})
		for i := range recs {
			if err := bw.Write(&recs[i]); err != nil {
				fail(err)
			}
		}
		if err := bw.Close(); err != nil {
			fail(err)
		}
	default:
		fail(fmt.Errorf("unknown -to format %q", target))
	}
}

// readTrace auto-detects the input format by magic bytes.
func readTrace(path string) ([]trace.Record, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	recs, format, err := trace.ReadAuto(f)
	return recs, format == trace.FormatBinary, err
}

func writeText(w io.Writer, recs []trace.Record) error {
	node, rank, pid := "", -1, 0
	if len(recs) > 0 {
		node, rank, pid = recs[0].Node, recs[0].Rank, recs[0].PID
	}
	tw := trace.NewTextWriter(w, node, rank, pid)
	for i := range recs {
		if err := tw.Write(&recs[i]); err != nil {
			return err
		}
	}
	return tw.Flush()
}

func openOut(path string) (io.Writer, func(), error) {
	if path == "" {
		return os.Stdout, func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}

func formatName(binary bool) string {
	if binary {
		return "binary"
	}
	return "text"
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "traceconv:", err)
	os.Exit(1)
}
