// Command traceconv inspects and converts trace files between the formats
// the taxonomy distinguishes — text, row-ordered binary (v1), and columnar
// (v2) — and runs anonymization passes over them: the workflow behind LANL's
// anonymized trace releases.
//
// The tool is a single streaming pass: records are pulled from the input
// decoder, through the optional anonymization transform, and pushed into the
// statistics folds and the output encoder one at a time. Memory stays
// O(block), not O(trace), so multi-gigabyte traces convert in constant
// space; v1 encoding fans out across a worker pool.
//
// Usage:
//
//	traceconv -in raw.trace -stats
//	traceconv -in raw.trace -to v1 -out trace.bin -compress
//	traceconv -in trace.bin -to v2 -out trace.col
//	traceconv -in trace.col -to text -out back.trace
//	traceconv -in raw.trace -anonymize path,uid,gid -mode randomize -out anon.trace
//	traceconv -in raw.trace -anonymize path -mode encrypt -key 0123456789abcdef -out enc.trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"iotaxo/internal/analysis"
	"iotaxo/internal/anonymize"
	"iotaxo/internal/trace"
)

// options carries the parsed flag set; run is pure in terms of it so tests
// drive conversions without a subprocess.
type options struct {
	in, out, to               string
	compress                  bool
	spans                     bool
	workers, blockRecs        int
	stats                     bool
	anonSpec, mode, key, salt string
}

func main() {
	var o options
	flag.StringVar(&o.in, "in", "", "input trace file (text, v1 binary, or v2 columnar; auto-detected)")
	flag.StringVar(&o.out, "out", "", "output file (default stdout)")
	flag.StringVar(&o.to, "to", "", "convert to format: v1 | v2 | text (aliases: binary = v1, columnar = v2)")
	flag.BoolVar(&o.compress, "compress", false, "compress binary/columnar output")
	flag.BoolVar(&o.spans, "spans", false, "encode causal span fields in v1 output (v2 stores them automatically)")
	flag.IntVar(&o.workers, "workers", 0, "v1 codec worker goroutines (0 = GOMAXPROCS)")
	flag.IntVar(&o.blockRecs, "block", 0, "records per output block (0 = format default: 512 for v1, 4096 for v2)")
	flag.BoolVar(&o.stats, "stats", false, "print a call summary and I/O statistics")
	flag.StringVar(&o.anonSpec, "anonymize", "", "fields to anonymize (e.g. path,uid,gid or all)")
	flag.StringVar(&o.mode, "mode", "randomize", "anonymization mode: randomize | encrypt")
	flag.StringVar(&o.key, "key", "", "AES key for -mode encrypt (16/24/32 bytes)")
	flag.StringVar(&o.salt, "salt", "iotaxo", "salt for -mode randomize")
	flag.Parse()

	if o.in == "" {
		fmt.Fprintln(os.Stderr, "traceconv: -in is required")
		os.Exit(2)
	}
	if err := run(o, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "traceconv:", err)
		os.Exit(1)
	}
}

// normalizeTarget folds format aliases onto the canonical names.
func normalizeTarget(target string) string {
	switch target {
	case "binary":
		return "v1"
	case "columnar":
		return "v2"
	}
	return target
}

// run is the whole conversion: one streaming pass from the input decoder
// through the optional anonymizer into the statistics folds and re-encoder.
func run(o options, stdout, stderr io.Writer) error {
	f, err := os.Open(o.in)
	if err != nil {
		return err
	}
	defer f.Close()
	src, format, err := trace.OpenAuto(f)
	if err != nil {
		return err
	}
	input := src // keep the decoder handle for its block count

	// Optional anonymization transform in the stream.
	anonymized := false
	if o.anonSpec != "" {
		spec, err := anonymize.ParseSpec(o.anonSpec)
		if err != nil {
			return err
		}
		var a anonymize.Anonymizer
		switch o.mode {
		case "randomize":
			a = anonymize.NewRandomizer(spec, []byte(o.salt))
		case "encrypt":
			if o.key == "" {
				return fmt.Errorf("-mode encrypt requires -key")
			}
			enc, err := anonymize.NewEncryptor(spec, []byte(o.key))
			if err != nil {
				return err
			}
			a = enc
		default:
			return fmt.Errorf("unknown -mode %q", o.mode)
		}
		src = trace.TransformSource(src, anonymize.Transform(a))
		anonymized = true
	}

	// Assemble the sink fan-out: statistics folds and/or the re-encoder.
	var sinks []trace.Sink
	sum := analysis.NewCallSummary()
	ioStats := analysis.NewIOStats()
	if o.stats {
		sinks = append(sinks, sum.Sink(), ioStats.Sink())
	}

	target := normalizeTarget(o.to)
	if target == "" && anonymized {
		if format == trace.FormatUnknown {
			target = "text" // empty input: emit a valid (empty) text trace
		} else {
			target = normalizeTarget(format.String()) // keep input format
		}
	}
	var encOut blockEncoder
	var closeOut func()
	switch target {
	case "":
		if !o.stats {
			return nil // nothing to do
		}
	case "text":
		w, cl, err := openOut(o.out)
		if err != nil {
			return err
		}
		closeOut = cl
		sinks = append(sinks, trace.NewTextSink(w))
	case "v1":
		w, cl, err := openOut(o.out)
		if err != nil {
			return err
		}
		closeOut = cl
		encOut = trace.NewParallelBinaryWriter(w, trace.BinaryOptions{
			Compress:        o.compress,
			Anonymized:      anonymized,
			Spans:           o.spans,
			RecordsPerBlock: o.blockRecs,
		}, o.workers)
		sinks = append(sinks, encOut)
	case "v2":
		w, cl, err := openOut(o.out)
		if err != nil {
			return err
		}
		closeOut = cl
		encOut = trace.NewColumnarWriter(w, trace.ColumnarOptions{
			Compress:        o.compress,
			Anonymized:      anonymized,
			RecordsPerBlock: o.blockRecs,
		})
		sinks = append(sinks, encOut)
	default:
		return fmt.Errorf("unknown -to format %q", target)
	}

	// The single streaming pass.
	dst := trace.TeeSink(sinks...)
	records, err := trace.Copy(dst, src)
	if cerr := dst.Close(); err == nil {
		err = cerr
	}
	if closeOut != nil {
		closeOut()
	}
	if err != nil {
		return err
	}

	if o.stats {
		fmt.Fprintf(stdout, "# %d records (%s input%s)\n", records, format, blockNote(input))
		fmt.Fprint(stdout, sum.Format())
		fmt.Fprintf(stdout, "# I/O: %d calls, %d bytes (%d read / %d written), %d distinct paths\n",
			ioStats.Calls, ioStats.Bytes, ioStats.ReadBytes, ioStats.WriteBytes,
			len(ioStats.DistinctPath))
	}
	if target != "" {
		fmt.Fprintf(stderr, "traceconv: %d records -> %s%s\n",
			records, target, writeNote(encOut))
	}
	return nil
}

// blockEncoder is what both binary encoders report about their output.
type blockEncoder interface {
	trace.Sink
	BlocksWritten() int64
	BytesWritten() int64
}

// blockNote reports the input decoder's block count when it has one.
func blockNote(src trace.Source) string {
	if br, ok := src.(interface{ BlocksRead() int64 }); ok {
		return fmt.Sprintf(", %d blocks", br.BlocksRead())
	}
	return ""
}

// writeNote reports the output encoder's block and byte counts.
func writeNote(w blockEncoder) string {
	if w == nil {
		return ""
	}
	return fmt.Sprintf(" (%d blocks, %d bytes)", w.BlocksWritten(), w.BytesWritten())
}

func openOut(path string) (io.Writer, func(), error) {
	if path == "" {
		return os.Stdout, func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}
