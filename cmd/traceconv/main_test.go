package main

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"iotaxo/internal/sim"
	"iotaxo/internal/trace"
)

// convTestRecords builds a deterministic mixed workload touching every field.
func convTestRecords(n int, seed int64) []trace.Record {
	rng := rand.New(rand.NewSource(seed))
	names := []string{"SYS_read", "SYS_write", "SYS_open", "MPI_Barrier", "MPI_File_write_at", "VFS_read"}
	out := make([]trace.Record, n)
	for i := range out {
		name := names[rng.Intn(len(names))]
		r := trace.Record{
			Time:  sim.Time(i) * sim.Microsecond,
			Dur:   sim.Duration(rng.Int63n(int64(sim.Millisecond))),
			Node:  fmt.Sprintf("cn%03d", rng.Intn(16)),
			Rank:  rng.Intn(1024),
			PID:   4000 + rng.Intn(512),
			Class: trace.EventClass(rng.Intn(4)),
			Name:  name,
			Ret:   fmt.Sprintf("%d", rng.Intn(2)),
		}
		if name != "MPI_Barrier" {
			r.Path = fmt.Sprintf("/pfs/run/rank%04d/out-%02d.dat", r.Rank, rng.Intn(4))
			r.Offset = rng.Int63n(1 << 30)
			r.Bytes = 1 + rng.Int63n(1<<20)
			r.UID = 1000 + rng.Intn(4)
			r.GID = 100
			r.Args = []string{fmt.Sprintf("fd=%d", rng.Intn(64)), fmt.Sprintf("%d", r.Bytes)}
		}
		out[i] = r
	}
	return out
}

// writeV1 encodes recs with the default serial v1 encoder.
func writeV1(t *testing.T, path string, recs []trace.Record) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.NewBinaryWriter(f, trace.BinaryOptions{})
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func runConv(t *testing.T, o options) {
	t.Helper()
	var out, errs bytes.Buffer
	if err := run(o, &out, &errs); err != nil {
		t.Fatalf("run(%+v): %v\nstderr: %s", o, err, errs.String())
	}
}

// TestRoundTripV1V2V1 checks the satellite equivalence property: converting
// a v1 trace to columnar v2 and back yields a byte-identical v1 file.
func TestRoundTripV1V2V1(t *testing.T) {
	dir := t.TempDir()
	v1a := filepath.Join(dir, "a.bin")
	v2 := filepath.Join(dir, "b.col")
	v1b := filepath.Join(dir, "c.bin")

	recs := convTestRecords(3000, 42)
	writeV1(t, v1a, recs)

	runConv(t, options{in: v1a, out: v2, to: "v2"})
	runConv(t, options{in: v2, out: v1b, to: "v1"})

	colBytes, err := os.ReadFile(v2)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := trace.DetectFormat(bytes.NewReader(colBytes)); got != trace.FormatColumnar {
		t.Fatalf("intermediate format = %v, want columnar", got)
	}

	a, err := os.ReadFile(v1a)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(v1b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("v1 -> v2 -> v1 not byte-identical: %d vs %d bytes", len(a), len(b))
	}
	if len(colBytes) >= len(a) {
		t.Fatalf("v2 (%d bytes) not smaller than v1 (%d bytes)", len(colBytes), len(a))
	}
}

// TestFormatAliases checks that the historical names map onto v1/v2 and that
// text output decodes back to the same records.
func TestFormatAliases(t *testing.T) {
	for alias, want := range map[string]string{"binary": "v1", "columnar": "v2", "v1": "v1", "v2": "v2", "text": "text"} {
		if got := normalizeTarget(alias); got != want {
			t.Fatalf("normalizeTarget(%q) = %q, want %q", alias, got, want)
		}
	}

	dir := t.TempDir()
	v1 := filepath.Join(dir, "a.bin")
	col := filepath.Join(dir, "b.col")
	txt := filepath.Join(dir, "c.trace")
	recs := convTestRecords(400, 7)
	writeV1(t, v1, recs)

	runConv(t, options{in: v1, out: col, to: "columnar"})
	runConv(t, options{in: col, out: txt, to: "text"})

	f, err := os.Open(txt)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	src, format, err := trace.OpenAuto(f)
	if err != nil {
		t.Fatal(err)
	}
	if format != trace.FormatText {
		t.Fatalf("format = %v, want text", format)
	}
	// The text format is per-process (node/rank/pid live in the file header,
	// like strace output), so only the call line itself round-trips.
	n := 0
	for {
		rec, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if rec.Name != recs[n].Name || rec.Ret != recs[n].Ret {
			t.Fatalf("record %d mismatch: %+v vs %+v", n, rec, recs[n])
		}
		n++
	}
	if n != len(recs) {
		t.Fatalf("decoded %d records, want %d", n, len(recs))
	}
}

// TestUnknownTarget checks the flag error path.
func TestUnknownTarget(t *testing.T) {
	dir := t.TempDir()
	v1 := filepath.Join(dir, "a.bin")
	writeV1(t, v1, convTestRecords(10, 1))
	var out, errs bytes.Buffer
	if err := run(options{in: v1, to: "v3"}, &out, &errs); err == nil {
		t.Fatal("run accepted -to v3")
	}
}
